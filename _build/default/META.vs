package "analysis" (
  directory = "analysis"
  description = ""
  requires = "fmt vs.bytecode vs.diag vs.mir vs.runtime"
  archive(byte) = "analysis.cma"
  archive(native) = "analysis.cmxa"
  plugin(byte) = "analysis.cma"
  plugin(native) = "analysis.cmxs"
)
package "bytecode" (
  directory = "bytecode"
  description = ""
  requires = "fmt vs.jsfront vs.runtime"
  archive(byte) = "bytecode.cma"
  archive(native) = "bytecode.cmxa"
  plugin(byte) = "bytecode.cma"
  plugin(native) = "bytecode.cmxs"
)
package "diag" (
  directory = "diag"
  description = ""
  requires = ""
  archive(byte) = "diag.cma"
  archive(native) = "diag.cmxa"
  plugin(byte) = "diag.cma"
  plugin(native) = "diag.cmxs"
)
package "engine" (
  directory = "engine"
  description = ""
  requires =
  "fmt
   vs.analysis
   vs.bytecode
   vs.diag
   vs.interp
   vs.jsfront
   vs.lir
   vs.mir
   vs.native
   vs.opt
   vs.runtime"
  archive(byte) = "engine.cma"
  archive(native) = "engine.cmxa"
  plugin(byte) = "engine.cma"
  plugin(native) = "engine.cmxs"
)
package "fuzz" (
  directory = "fuzz"
  description = ""
  requires =
  "vs.analysis
   vs.bytecode
   vs.diag
   vs.engine
   vs.interp
   vs.jsfront
   vs.lir
   vs.mir
   vs.native
   vs.opt
   vs.runtime
   vs.support"
  archive(byte) = "fuzz.cma"
  archive(native) = "fuzz.cmxa"
  plugin(byte) = "fuzz.cma"
  plugin(native) = "fuzz.cmxs"
)
package "harness" (
  directory = "harness"
  description = ""
  requires =
  "fmt
   vs.bytecode
   vs.engine
   vs.interp
   vs.jsfront
   vs.lir
   vs.mir
   vs.native
   vs.opt
   vs.runtime
   vs.support
   vs.workloads"
  archive(byte) = "harness.cma"
  archive(native) = "harness.cmxa"
  plugin(byte) = "harness.cma"
  plugin(native) = "harness.cmxs"
)
package "interp" (
  directory = "interp"
  description = ""
  requires = "vs.bytecode vs.runtime"
  archive(byte) = "interp.cma"
  archive(native) = "interp.cmxa"
  plugin(byte) = "interp.cma"
  plugin(native) = "interp.cmxs"
)
package "jsfront" (
  directory = "jsfront"
  description = ""
  requires = "fmt vs.support"
  archive(byte) = "jsfront.cma"
  archive(native) = "jsfront.cmxa"
  plugin(byte) = "jsfront.cma"
  plugin(native) = "jsfront.cmxs"
)
package "lir" (
  directory = "lir"
  description = ""
  requires = "fmt vs.bytecode vs.diag vs.mir vs.runtime"
  archive(byte) = "lir.cma"
  archive(native) = "lir.cmxa"
  plugin(byte) = "lir.cma"
  plugin(native) = "lir.cmxs"
)
package "mir" (
  directory = "mir"
  description = ""
  requires = "fmt vs.bytecode vs.diag vs.runtime"
  archive(byte) = "mirlib.cma"
  archive(native) = "mirlib.cmxa"
  plugin(byte) = "mirlib.cma"
  plugin(native) = "mirlib.cmxs"
)
package "native" (
  directory = "native"
  description = ""
  requires = "fmt vs.bytecode vs.lir vs.mir vs.runtime"
  archive(byte) = "native.cma"
  archive(native) = "native.cmxa"
  plugin(byte) = "native.cma"
  plugin(native) = "native.cmxs"
)
package "opt" (
  directory = "opt"
  description = ""
  requires = "fmt vs.bytecode vs.diag vs.mir vs.runtime"
  archive(byte) = "opt.cma"
  archive(native) = "opt.cmxa"
  plugin(byte) = "opt.cma"
  plugin(native) = "opt.cmxs"
)
package "runtime" (
  directory = "runtime"
  description = ""
  requires = "fmt"
  archive(byte) = "runtime.cma"
  archive(native) = "runtime.cmxa"
  plugin(byte) = "runtime.cma"
  plugin(native) = "runtime.cmxs"
)
package "support" (
  directory = "support"
  description = ""
  requires = "fmt"
  archive(byte) = "support.cma"
  archive(native) = "support.cmxa"
  plugin(byte) = "support.cma"
  plugin(native) = "support.cmxs"
)
package "workloads" (
  directory = "workloads"
  description = ""
  requires = "fmt vs.bytecode vs.jsfront vs.runtime vs.support"
  archive(byte) = "workloads.cma"
  archive(native) = "workloads.cmxa"
  plugin(byte) = "workloads.cma"
  plugin(native) = "workloads.cmxs"
)