bin/experiments.ml: Array Fig_codesize Fig_policy Fig_recompile Fig_speedup Fig_suite_calls Fig_web List Printf String Sys
