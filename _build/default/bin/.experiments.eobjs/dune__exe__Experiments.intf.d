bin/experiments.mli:
