bin/fuzz.ml: Arg Cmd Cmdliner Fuzz_diff Fuzz_gen Printf Random String Term
