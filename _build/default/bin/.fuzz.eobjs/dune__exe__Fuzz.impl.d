bin/fuzz.ml: Arg Cmd Cmdliner Diag Fuzz_diff Fuzz_gen Printf Random String Term
