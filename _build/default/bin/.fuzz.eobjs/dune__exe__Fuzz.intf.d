bin/fuzz.mli:
