bin/irlint.ml: Arg Bc_verify Bytecode Cmd Cmdliner Diag Engine Hashtbl List Option Pipeline Printexc Printf Runner String Suite Suites Term
