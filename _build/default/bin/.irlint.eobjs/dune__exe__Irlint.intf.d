bin/irlint.mli:
