bin/jsvm.ml: Arg Bytecode Cmd Cmdliner Code Cost Diag Engine Exec Fuzz_diff Hashtbl In_channel Jsfront List Mir Option Pipeline Printf String Support Term
