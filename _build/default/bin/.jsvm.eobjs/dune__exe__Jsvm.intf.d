bin/jsvm.mli:
