examples/deopt_policy.ml: Engine List Pipeline Printf
