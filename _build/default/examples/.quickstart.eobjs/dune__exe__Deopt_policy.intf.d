examples/deopt_policy.mli:
