examples/map_inc.ml: Array Bounds_check Builder Bytecode Code Constprop Dce Engine Gvn Inline List Loop_inversion Lower Mir Pipeline Printf Regalloc Runtime Typer Value Verify
