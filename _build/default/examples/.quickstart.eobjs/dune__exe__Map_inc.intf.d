examples/map_inc.mli:
