examples/quickstart.ml: Engine Pipeline Printf
