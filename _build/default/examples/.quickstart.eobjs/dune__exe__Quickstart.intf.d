examples/quickstart.mli:
