examples/selective.ml: Engine List Pipeline Printf String
