examples/selective.mli:
