examples/web_session.ml: Engine List Pipeline Printf Runtime Web
