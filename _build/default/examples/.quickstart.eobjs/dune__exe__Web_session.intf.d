examples/web_session.mli:
