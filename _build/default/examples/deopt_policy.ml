(* The specialization policy of the paper's Section 4, step by step:

   1. a function becomes hot and is compiled specialized to its arguments;
   2. calls with the same arguments reuse the cached binary (win-win);
   3. a call with different arguments discards the binary, recompiles
      generic code immediately, and blacklists the function;
   4. guard failures in generic code bail out to the interpreter.

     dune exec examples/deopt_policy.exe *)

let source =
  {|
function classify(x) {
  if (typeof x == "number") return x < 0 ? "neg" : "pos";
  if (typeof x == "string") return "str";
  return "other";
}

// Phase 1: many calls with the same argument -> specialized and cached.
var hits = 0;
for (var i = 0; i < 50; i++) {
  if (classify(42) == "pos") hits++;
}

// Phase 2: one call with a different argument -> deopt, recompile generic.
var s = classify("hello");

// Phase 3: keeps running generically, never re-specializes.
for (var i = 0; i < 50; i++) {
  classify(i - 25);
}

print(hits, s);
|}

let () =
  let config = Engine.default_config ~opt:Pipeline.all_on () in
  let report = Engine.run_source config source in
  print_newline ();
  Printf.printf "engine summary:\n";
  Printf.printf "  compilations        : %d\n" report.Engine.compilations;
  Printf.printf "  recompilations      : %d\n" report.Engine.recompilations;
  Printf.printf "  specialized funcs   : %d\n" report.Engine.specialized_funcs;
  Printf.printf "  successful funcs    : %d\n" report.Engine.successful_funcs;
  Printf.printf "  deoptimized funcs   : %d\n" report.Engine.deoptimized_funcs;
  print_newline ();
  List.iter
    (fun (f : Engine.func_report) ->
      if f.Engine.fr_compiles > 0 then begin
        Printf.printf "function %s:\n" f.Engine.fr_name;
        Printf.printf "  calls=%d compiles=%d bailouts=%d\n" f.Engine.fr_calls
          f.Engine.fr_compiles f.Engine.fr_bailouts;
        List.iteri
          (fun i (specialized, size) ->
            Printf.printf "  compile #%d: %s, %d native instructions\n" (i + 1)
              (if specialized then "specialized" else "generic")
              size)
          f.Engine.fr_sizes;
        if f.Engine.fr_deoptimized then
          Printf.printf
            "  -> deoptimized: a second argument tuple arrived; the specialized\n\
            \     binary was discarded and the function blacklisted (paper §4)\n"
      end)
    report.Engine.functions
