(* Quickstart: embed the VM, run a MiniJS snippet under three execution
   strategies, and read the engine's report.

     dune exec examples/quickstart.exe *)

let source =
  {|
function hypot(a, b) {
  return Math.sqrt(a * a + b * b);
}

var total = 0;
for (var i = 0; i < 200; i++) {
  total += hypot(3, 4);
}
print("total:", total);
|}

let run label config =
  Printf.printf "--- %s ---\n" label;
  let report = Engine.run_source config source in
  Printf.printf
    "cycles: total=%d (interp %d, native %d, compile %d); compilations=%d\n\n"
    report.Engine.total_cycles report.Engine.interp_cycles report.Engine.native_cycles
    report.Engine.compile_cycles report.Engine.compilations

let () =
  (* 1. Pure interpretation: the reference semantics. *)
  run "interpreter only" Engine.interp_only;
  (* 2. The baseline JIT: IonMonkey-style type specialization, GVN, LICM. *)
  run "baseline JIT" (Engine.default_config ());
  (* 3. Parameter-based value specialization (the paper's contribution):
     hypot is always called with (3, 4), so its compiled code is the
     constant 5 behind a cache check. *)
  run "value specialization" (Engine.default_config ~opt:Pipeline.all_on ())
