(* Selective specialization (extension; cf. paper §6 on caching policies):
   the same mixed-stability workload run under the paper's one-entry
   policy and under selective narrowing, side by side.

   The workload is the map/inc pattern the paper opens with, at its most
   hostile: `apply` always receives the same closure (worth burning in —
   it unlocks inlining) next to a scalar that changes every call (fatal to
   whole-tuple caching).

     dune exec examples/selective.exe *)

let source =
  {|
function kernel(a, b) { return (a * 2 + b) | 0; }

function apply(f, n) {
  var t = 0;
  for (var i = 0; i < 8; i++) t = (t + f(n + i, i)) | 0;
  return t;
}

var r = 0;
for (var k = 0; k < 300; k++) r = (r + apply(kernel, k % 11)) | 0;
print(r);
|}

let describe label config =
  Printf.printf "--- %s ---\n" label;
  let report = Engine.run_source config source in
  Printf.printf "  total cycles        : %d\n" report.Engine.total_cycles;
  Printf.printf "  compilations        : %d\n" report.Engine.compilations;
  Printf.printf "  deoptimized funcs   : %d\n" report.Engine.deoptimized_funcs;
  List.iter
    (fun (f : Engine.func_report) ->
      if f.Engine.fr_name = "apply" || f.Engine.fr_name = "kernel" then
        Printf.printf "  %-8s calls=%-5d compiles=%d [%s]%s\n" f.Engine.fr_name
          f.Engine.fr_calls f.Engine.fr_compiles
          (String.concat ";"
             (List.map
                (fun (s, n) ->
                  Printf.sprintf "%s:%d" (if s then "spec" else "gen") n)
                f.Engine.fr_sizes))
          (if f.Engine.fr_deoptimized then " deoptimized" else ""))
    report.Engine.functions;
  print_newline ();
  report.Engine.total_cycles

let () =
  print_endline "mixed-stability arguments: stable closure + varying scalar";
  print_newline ();
  let full =
    describe "one-entry cache, whole-tuple key (paper §4)"
      (Engine.default_config ~opt:Pipeline.all_on ())
  in
  let sel =
    describe "selective: burn in only the stable argument (extension)"
      (Engine.default_config ~opt:Pipeline.all_on ~selective:true ())
  in
  Printf.printf
    "selective keeps kernel inlined inside apply and never deoptimizes:\n\
    \  %d vs %d cycles (%.1f%% less)\n"
    sel full
    (100. *. float_of_int (full - sel) /. float_of_int full)
