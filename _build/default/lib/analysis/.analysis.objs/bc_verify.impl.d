lib/analysis/bc_verify.ml: Array Bytecode Diag Instr List Program Queue
