lib/analysis/spec_check.ml: Array Bytecode Diag Format Hashtbl List Mir Printf Runtime Value
