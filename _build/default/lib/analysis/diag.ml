(* Structured diagnostics for the IR lint layer.

   Every verifier in the pipeline — the bytecode verifier, the MIR
   structural/type verifier, the LIR code verifier, the specialization
   soundness checker — reports findings as a [Diag.t] instead of a bare
   string, so a failure carries machine-usable attribution: which layer
   found it, which pipeline pass introduced it, and where (function, block,
   value, pc). The pretty renderer is for humans; the machine renderer is
   one tab-separated line per finding, for CI tooling (bin/irlint). *)

type severity = Error | Warning

type t = {
  severity : severity;
  layer : string;  (* "bytecode" | "mir" | "lir" | "spec" *)
  pass : string option;  (* pipeline pass the finding is attributed to *)
  func : string option;  (* source-level function name *)
  fid : int option;
  block : int option;  (* MIR basic block *)
  value : int option;  (* MIR def / LIR virtual register *)
  pc : int option;  (* bytecode pc / LIR code offset *)
  message : string;
}

(* Raised by verifiers that abort on the first error. Collecting verifiers
   return a [t list] instead and never raise. *)
exception Failed of t

let make ?(severity = Error) ~layer ?pass ?func ?fid ?block ?value ?pc message =
  { severity; layer; pass; func; fid; block; value; pc; message }

let is_error d = d.severity = Error
let is_warning d = d.severity = Warning
let errors ds = List.filter is_error ds
let warnings ds = List.filter is_warning ds
let with_pass pass d = { d with pass = Some pass }

let severity_to_string = function Error -> "error" | Warning -> "warning"

let location_to_string d =
  let parts =
    List.filter_map Fun.id
      [
        (match (d.func, d.fid) with
        | Some n, Some fid -> Some (Printf.sprintf "%s(f%d)" n fid)
        | Some n, None -> Some n
        | None, Some fid -> Some (Printf.sprintf "f%d" fid)
        | None, None -> None);
        Option.map (Printf.sprintf "B%d") d.block;
        Option.map (Printf.sprintf "v%d") d.value;
        Option.map (Printf.sprintf "@%d") d.pc;
      ]
  in
  match parts with [] -> "<no location>" | _ -> String.concat " " parts

let to_string d =
  Printf.sprintf "%s[%s%s] %s: %s"
    (severity_to_string d.severity)
    d.layer
    (match d.pass with Some p -> "/" ^ p | None -> "")
    (location_to_string d) d.message

(* severity, layer, pass, func, fid, block, value, pc, message — "-" for
   absent fields. Stable field order; greppable and splittable on tabs. *)
let to_machine_string d =
  let oi = function Some i -> string_of_int i | None -> "-" in
  let os = function Some s -> s | None -> "-" in
  String.concat "\t"
    [
      severity_to_string d.severity; d.layer; os d.pass; os d.func; oi d.fid;
      oi d.block; oi d.value; oi d.pc; d.message;
    ]

(* Printf-style constructor that raises [Failed] — the one-liner verifiers
   use at each check site. *)
let error ~layer ?pass ?func ?fid ?block ?value ?pc fmt =
  Printf.ksprintf
    (fun message ->
      raise (Failed (make ~layer ?pass ?func ?fid ?block ?value ?pc message)))
    fmt
