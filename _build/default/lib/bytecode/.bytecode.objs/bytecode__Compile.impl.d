lib/bytecode/compile.ml: Array Ast Hashtbl Instr Jsfront List Option Parser Printf Program Runtime Set String
