lib/bytecode/compile.mli: Jsfront Program
