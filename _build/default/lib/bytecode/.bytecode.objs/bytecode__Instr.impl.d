lib/bytecode/instr.ml: Array Format Printf Runtime String
