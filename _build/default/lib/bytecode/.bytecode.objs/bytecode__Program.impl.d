lib/bytecode/program.ml: Array Buffer Instr Printf Queue String
