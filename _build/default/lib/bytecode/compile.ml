open Jsfront

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module String_set = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Scope analysis                                                      *)
(* ------------------------------------------------------------------ *)

(* Names declared directly inside a function body: parameters, hoisted
   [var]s, and nested function-declaration names. Does not descend into
   nested function bodies. *)
let declared_names (params : string list) (body : Ast.stmt list) =
  let acc = ref (String_set.of_list params) in
  let add name = acc := String_set.add name !acc in
  let rec stmt s =
    match s with
    | Ast.Var_decl decls -> List.iter (fun (name, _) -> add name) decls
    | Ast.Func_decl f -> Option.iter add f.Ast.name
    | Ast.If (_, a, b) ->
      List.iter stmt a;
      List.iter stmt b
    | Ast.While (_, b) | Ast.Do_while (b, _) -> List.iter stmt b
    | Ast.For (init, _, _, b) ->
      Option.iter stmt init;
      List.iter stmt b
    | Ast.For_in (name, _, b) ->
      add name;
      List.iter stmt b
    | Ast.Block b -> List.iter stmt b
    | Ast.Switch (_, cases) -> List.iter (fun (_, body) -> List.iter stmt body) cases
    | Ast.Expr_stmt _ | Ast.Return _ | Ast.Break | Ast.Continue -> ()
  in
  List.iter stmt body;
  !acc

(* Free variables of a function: names referenced anywhere in its body
   (including transitively nested functions) that it does not declare. *)
let rec free_vars (params : string list) (body : Ast.stmt list) =
  let declared = declared_names params body in
  let acc = ref String_set.empty in
  let reference name = if not (String_set.mem name declared) then acc := String_set.add name !acc in
  let rec expr e =
    match e with
    | Ast.Var name -> reference name
    | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Bool _ | Ast.Null | Ast.Undefined -> ()
    | Ast.Binop (_, a, b) | Ast.Cmp (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
      expr a;
      expr b
    | Ast.Unop (_, a) -> expr a
    | Ast.Cond (c, t, e2) ->
      expr c;
      expr t;
      expr e2
    | Ast.Assign (l, e2) | Ast.Op_assign (_, l, e2) ->
      lhs l;
      expr e2
    | Ast.Update (_, _, l) -> lhs l
    | Ast.Call (f, args) ->
      expr f;
      List.iter expr args
    | Ast.Method_call (o, _, args) ->
      expr o;
      List.iter expr args
    | Ast.Index (a, i) ->
      expr a;
      expr i
    | Ast.Prop (o, _) -> expr o
    | Ast.Array_lit es -> List.iter expr es
    | Ast.Object_lit fields -> List.iter (fun (_, v) -> expr v) fields
    | Ast.Func f -> String_set.iter reference (free_vars f.Ast.params f.Ast.body)
    | Ast.New (_, args) -> List.iter expr args
  and lhs = function
    | Ast.L_var name -> reference name
    | Ast.L_index (a, i) ->
      expr a;
      expr i
    | Ast.L_prop (o, _) -> expr o
  and stmt s =
    match s with
    | Ast.Expr_stmt e -> expr e
    | Ast.Var_decl decls -> List.iter (fun (_, init) -> Option.iter expr init) decls
    | Ast.If (c, a, b) ->
      expr c;
      List.iter stmt a;
      List.iter stmt b
    | Ast.While (c, b) | Ast.Do_while (b, c) ->
      expr c;
      List.iter stmt b
    | Ast.For (init, cond, step, b) ->
      Option.iter stmt init;
      Option.iter expr cond;
      Option.iter expr step;
      List.iter stmt b
    | Ast.For_in (_, obj, b) ->
      expr obj;
      List.iter stmt b
    | Ast.Return e -> Option.iter expr e
    | Ast.Func_decl f -> String_set.iter reference (free_vars f.Ast.params f.Ast.body)
    | Ast.Block b -> List.iter stmt b
    | Ast.Switch (disc, cases) ->
      expr disc;
      List.iter
        (fun (test, body) ->
          Option.iter expr test;
          List.iter stmt body)
        cases
    | Ast.Break | Ast.Continue -> ()
  in
  List.iter stmt body;
  !acc

(* Names declared by this function that some nested function captures. *)
let captured_names (params : string list) (body : Ast.stmt list) =
  let declared = declared_names params body in
  let acc = ref String_set.empty in
  let from_nested f =
    let free = free_vars f.Ast.params f.Ast.body in
    String_set.iter
      (fun name -> if String_set.mem name declared then acc := String_set.add name !acc)
      free
  in
  let rec expr e =
    match e with
    | Ast.Func f -> from_nested f
    | Ast.Var _ | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Bool _ | Ast.Null
    | Ast.Undefined ->
      ()
    | Ast.Binop (_, a, b) | Ast.Cmp (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
      expr a;
      expr b
    | Ast.Unop (_, a) -> expr a
    | Ast.Cond (c, t, e2) ->
      expr c;
      expr t;
      expr e2
    | Ast.Assign (l, e2) | Ast.Op_assign (_, l, e2) ->
      lhs l;
      expr e2
    | Ast.Update (_, _, l) -> lhs l
    | Ast.Call (f, args) ->
      expr f;
      List.iter expr args
    | Ast.Method_call (o, _, args) ->
      expr o;
      List.iter expr args
    | Ast.Index (a, i) ->
      expr a;
      expr i
    | Ast.Prop (o, _) -> expr o
    | Ast.Array_lit es -> List.iter expr es
    | Ast.Object_lit fields -> List.iter (fun (_, v) -> expr v) fields
    | Ast.New (_, args) -> List.iter expr args
  and lhs = function
    | Ast.L_var _ -> ()
    | Ast.L_index (a, i) ->
      expr a;
      expr i
    | Ast.L_prop (o, _) -> expr o
  and stmt s =
    match s with
    | Ast.Expr_stmt e -> expr e
    | Ast.Var_decl decls -> List.iter (fun (_, init) -> Option.iter expr init) decls
    | Ast.If (c, a, b) ->
      expr c;
      List.iter stmt a;
      List.iter stmt b
    | Ast.While (c, b) | Ast.Do_while (b, c) ->
      expr c;
      List.iter stmt b
    | Ast.For (init, cond, step, b) ->
      Option.iter stmt init;
      Option.iter expr cond;
      Option.iter expr step;
      List.iter stmt b
    | Ast.For_in (_, obj, b) ->
      expr obj;
      List.iter stmt b
    | Ast.Return e -> Option.iter expr e
    | Ast.Func_decl f -> from_nested f
    | Ast.Block b -> List.iter stmt b
    | Ast.Switch (disc, cases) ->
      expr disc;
      List.iter
        (fun (test, body) ->
          Option.iter expr test;
          List.iter stmt body)
        cases
    | Ast.Break | Ast.Continue -> ()
  in
  List.iter stmt body;
  !acc

(* ------------------------------------------------------------------ *)
(* Code emission                                                       *)
(* ------------------------------------------------------------------ *)

type site = Arg of int | Local of int | Cell of int | Upval of int | Global of int

type loop_ctx = {
  mutable break_fixups : int list;
  continue_target : [ `Known of int | `Fixups of int list ref ];
  is_switch : bool;  (* `break` binds to switches too; `continue` does not *)
}

type gctx = {
  mutable funcs : Program.func list;  (* reverse order *)
  mutable next_fid : int;
  global_table : (string, int) Hashtbl.t;
  mutable global_order : string list;  (* reverse order *)
}

type fctx = {
  g : gctx;
  parent : fctx option;
  table : (string, site) Hashtbl.t;
  is_toplevel : bool;
  mutable upvals : (string * Instr.capture) list;  (* reverse order *)
  mutable nupvals : int;
  mutable nlocals : int;
  mutable ncells : int;
  mutable nloops : int;
  mutable code : Instr.t list;  (* reverse order *)
  mutable pc : int;
  mutable loops : loop_ctx list;
}

let emit fx instr =
  fx.code <- instr :: fx.code;
  fx.pc <- fx.pc + 1

(* Emit a placeholder jump; returns the pc to patch later. *)
let emit_jump_placeholder fx make =
  let at = fx.pc in
  emit fx (make (-1));
  at

let patch fx at target =
  let idx = fx.pc - 1 - at in
  let rec set i = function
    | [] -> assert false
    | instr :: rest ->
      if i = 0 then
        let patched =
          match instr with
          | Instr.Jump _ -> Instr.Jump target
          | Instr.Jump_if_false _ -> Instr.Jump_if_false target
          | Instr.Jump_if_true _ -> Instr.Jump_if_true target
          | _ -> assert false
        in
        patched :: rest
      else instr :: set (i - 1) rest
  in
  fx.code <- set idx fx.code

let global_slot g name =
  match Hashtbl.find_opt g.global_table name with
  | Some slot -> slot
  | None ->
    let slot = Hashtbl.length g.global_table in
    Hashtbl.add g.global_table name slot;
    g.global_order <- name :: g.global_order;
    slot

let fresh_local fx =
  let slot = fx.nlocals in
  fx.nlocals <- fx.nlocals + 1;
  slot

(* Resolve a name to its access site, creating upvalue chains on demand. *)
let rec resolve fx name =
  match Hashtbl.find_opt fx.table name with
  | Some site -> site
  | None -> (
    match fx.parent with
    | None -> Global (global_slot fx.g name)
    | Some parent -> (
      match resolve parent name with
      | Global _ as g -> g
      | Cell i -> add_upval fx name (Instr.Cap_cell i)
      | Upval i -> add_upval fx name (Instr.Cap_upval i)
      | Arg _ | Local _ ->
        (* The capture analysis boxes every captured variable, so a
           captured name can never resolve to a plain arg/local. *)
        assert false))

and add_upval fx name cap =
  let idx = fx.nupvals in
  fx.upvals <- (name, cap) :: fx.upvals;
  fx.nupvals <- fx.nupvals + 1;
  let site = Upval idx in
  Hashtbl.add fx.table name site;
  site

let emit_get fx = function
  | Arg i -> emit fx (Instr.Get_arg i)
  | Local i -> emit fx (Instr.Get_local i)
  | Cell i -> emit fx (Instr.Get_cell i)
  | Upval i -> emit fx (Instr.Get_upval i)
  | Global i -> emit fx (Instr.Get_global i)

let emit_set fx = function
  | Arg i -> emit fx (Instr.Set_arg i)
  | Local i -> emit fx (Instr.Set_local i)
  | Cell i -> emit fx (Instr.Set_cell i)
  | Upval i -> emit fx (Instr.Set_upval i)
  | Global i -> emit fx (Instr.Set_global i)

let const_of_literal (e : Ast.expr) : Runtime.Value.t option =
  match e with
  | Ast.Int n -> Some (Runtime.Value.of_int n)
  | Ast.Float f -> Some (Runtime.Value.norm_num f)
  | Ast.Str s -> Some (Runtime.Value.Str s)
  | Ast.Bool b -> Some (Runtime.Value.Bool b)
  | Ast.Null -> Some Runtime.Value.Null
  | Ast.Undefined -> Some Runtime.Value.Undefined
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Function compilation                                                *)
(* ------------------------------------------------------------------ *)

let rec compile_function g ~parent ~name ~params ~body ~is_toplevel =
  let fid = g.next_fid in
  g.next_fid <- g.next_fid + 1;
  (* Reserve the slot so nested functions get later fids. *)
  let fx =
    {
      g;
      parent;
      table = Hashtbl.create 16;
      is_toplevel;
      upvals = [];
      nupvals = 0;
      nlocals = 0;
      ncells = 0;
      nloops = 0;
      code = [];
      pc = 0;
      loops = [];
    }
  in
  let captured = if is_toplevel then String_set.empty else captured_names params body in
  (* Parameters. Captured parameters are copied into cells in the prologue. *)
  List.iteri
    (fun i p ->
      if String_set.mem p captured then begin
        let cell = fx.ncells in
        fx.ncells <- fx.ncells + 1;
        Hashtbl.replace fx.table p (Cell cell);
        emit fx (Instr.Get_arg i);
        emit fx (Instr.Set_cell cell)
      end
      else if not (Hashtbl.mem fx.table p) then Hashtbl.replace fx.table p (Arg i))
    params;
  (* Hoisted var declarations. At toplevel they are globals. *)
  if not is_toplevel then
    String_set.iter
      (fun v ->
        if not (Hashtbl.mem fx.table v) then
          if String_set.mem v captured then begin
            let cell = fx.ncells in
            fx.ncells <- fx.ncells + 1;
            Hashtbl.replace fx.table v (Cell cell)
          end
          else Hashtbl.replace fx.table v (Local (fresh_local fx)))
      (declared_names params body);
  (* Hoisted nested function declarations, in source order. *)
  let rec function_decls acc stmts =
    List.fold_left
      (fun acc s ->
        match s with
        | Ast.Func_decl f -> f :: acc
        | Ast.If (_, a, b) -> function_decls (function_decls acc a) b
        | Ast.While (_, b) | Ast.Do_while (b, _) -> function_decls acc b
        | Ast.For (init, _, _, b) ->
          let acc = match init with Some s -> function_decls acc [ s ] | None -> acc in
          function_decls acc b
        | Ast.For_in (_, _, b) -> function_decls acc b
        | Ast.Block b -> function_decls acc b
        | Ast.Switch (_, cases) ->
          List.fold_left (fun acc (_, body) -> function_decls acc body) acc cases
        | Ast.Expr_stmt _ | Ast.Var_decl _ | Ast.Return _ | Ast.Break | Ast.Continue ->
          acc)
      acc stmts
  in
  let decls = List.rev (function_decls [] body) in
  List.iter
    (fun (f : Ast.func) ->
      let fname = Option.get f.Ast.name in
      compile_closure fx ~name:(Some fname) ~params:f.Ast.params ~body:f.Ast.body;
      let site = resolve fx fname in
      emit_set fx site)
    decls;
  List.iter (compile_stmt fx) body;
  emit fx Instr.Return_undefined;
  let code = Array.of_list (List.rev fx.code) in
  let func =
    {
      Program.fid;
      name = (match name with Some n -> n | None -> Printf.sprintf "<anonymous:%d>" fid);
      arity = List.length params;
      nlocals = fx.nlocals;
      ncells = fx.ncells;
      nupvals = fx.nupvals;
      code;
      max_stack = Program.compute_max_stack code;
      nloops = fx.nloops;
    }
  in
  g.funcs <- func :: g.funcs;
  (fid, List.rev_map snd fx.upvals)

and compile_closure fx ~name ~params ~body =
  let fid, captures =
    compile_function fx.g ~parent:(Some fx) ~name ~params ~body ~is_toplevel:false
  in
  emit fx (Instr.Make_closure (fid, Array.of_list captures))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and compile_stmt fx (s : Ast.stmt) =
  match s with
  | Ast.Expr_stmt e ->
    compile_expr fx e;
    emit fx Instr.Pop
  | Ast.Var_decl decls ->
    List.iter
      (fun (name, init) ->
        match init with
        | None -> ()
        | Some e ->
          compile_expr fx e;
          emit_set fx (resolve fx name))
      decls
  | Ast.If (cond, then_b, else_b) ->
    compile_expr fx cond;
    let to_else = emit_jump_placeholder fx (fun t -> Instr.Jump_if_false t) in
    List.iter (compile_stmt fx) then_b;
    if else_b = [] then patch fx to_else fx.pc
    else begin
      let to_end = emit_jump_placeholder fx (fun t -> Instr.Jump t) in
      patch fx to_else fx.pc;
      List.iter (compile_stmt fx) else_b;
      patch fx to_end fx.pc
    end
  | Ast.While (cond, body) ->
    let loop_id = fx.nloops in
    fx.nloops <- fx.nloops + 1;
    let head = fx.pc in
    emit fx (Instr.Loop_head loop_id);
    compile_expr fx cond;
    let to_exit = emit_jump_placeholder fx (fun t -> Instr.Jump_if_false t) in
    let ctx = { break_fixups = []; continue_target = `Known head; is_switch = false } in
    fx.loops <- ctx :: fx.loops;
    List.iter (compile_stmt fx) body;
    fx.loops <- List.tl fx.loops;
    emit fx (Instr.Jump head);
    patch fx to_exit fx.pc;
    List.iter (fun at -> patch fx at fx.pc) ctx.break_fixups
  | Ast.Do_while (body, cond) ->
    let loop_id = fx.nloops in
    fx.nloops <- fx.nloops + 1;
    let head = fx.pc in
    emit fx (Instr.Loop_head loop_id);
    let continue_fixups = ref [] in
    let ctx =
      { break_fixups = []; continue_target = `Fixups continue_fixups; is_switch = false }
    in
    fx.loops <- ctx :: fx.loops;
    List.iter (compile_stmt fx) body;
    fx.loops <- List.tl fx.loops;
    List.iter (fun at -> patch fx at fx.pc) !continue_fixups;
    compile_expr fx cond;
    emit fx (Instr.Jump_if_true head);
    List.iter (fun at -> patch fx at fx.pc) ctx.break_fixups
  | Ast.For (init, cond, step, body) ->
    Option.iter (compile_stmt fx) init;
    let loop_id = fx.nloops in
    fx.nloops <- fx.nloops + 1;
    let head = fx.pc in
    emit fx (Instr.Loop_head loop_id);
    let to_exit =
      match cond with
      | None -> None
      | Some c ->
        compile_expr fx c;
        Some (emit_jump_placeholder fx (fun t -> Instr.Jump_if_false t))
    in
    let continue_fixups = ref [] in
    let ctx =
      { break_fixups = []; continue_target = `Fixups continue_fixups; is_switch = false }
    in
    fx.loops <- ctx :: fx.loops;
    List.iter (compile_stmt fx) body;
    fx.loops <- List.tl fx.loops;
    List.iter (fun at -> patch fx at fx.pc) !continue_fixups;
    (match step with
    | None -> ()
    | Some e ->
      compile_expr fx e;
      emit fx Instr.Pop);
    emit fx (Instr.Jump head);
    Option.iter (fun at -> patch fx at fx.pc) to_exit;
    List.iter (fun at -> patch fx at fx.pc) ctx.break_fixups
  | Ast.For_in (name, obj, body) ->
    (* Desugared enumeration: snapshot the keys once, then index through
       them (JS semantics for the common no-mutation case; key order is
       the object's insertion order). *)
    let t_keys = fresh_local fx and t_idx = fresh_local fx in
    compile_expr fx obj;
    emit fx Instr.Keys;
    emit fx (Instr.Set_local t_keys);
    emit fx (Instr.Const (Runtime.Value.Int 0));
    emit fx (Instr.Set_local t_idx);
    let loop_id = fx.nloops in
    fx.nloops <- fx.nloops + 1;
    let head = fx.pc in
    emit fx (Instr.Loop_head loop_id);
    emit fx (Instr.Get_local t_idx);
    emit fx (Instr.Get_local t_keys);
    emit fx (Instr.Get_prop "length");
    emit fx (Instr.Cmp Runtime.Ops.Lt);
    let to_exit = emit_jump_placeholder fx (fun t -> Instr.Jump_if_false t) in
    emit fx (Instr.Get_local t_keys);
    emit fx (Instr.Get_local t_idx);
    emit fx Instr.Get_elem;
    emit_set fx (resolve fx name);
    let continue_fixups = ref [] in
    let ctx =
      { break_fixups = []; continue_target = `Fixups continue_fixups; is_switch = false }
    in
    fx.loops <- ctx :: fx.loops;
    List.iter (compile_stmt fx) body;
    fx.loops <- List.tl fx.loops;
    List.iter (fun at -> patch fx at fx.pc) !continue_fixups;
    emit fx (Instr.Get_local t_idx);
    emit fx (Instr.Const (Runtime.Value.Int 1));
    emit fx (Instr.Binop Runtime.Ops.Add);
    emit fx (Instr.Set_local t_idx);
    emit fx (Instr.Jump head);
    patch fx to_exit fx.pc;
    List.iter (fun at -> patch fx at fx.pc) ctx.break_fixups
  | Ast.Return None -> emit fx Instr.Return_undefined
  | Ast.Return (Some e) ->
    compile_expr fx e;
    emit fx Instr.Return
  | Ast.Break -> (
    match fx.loops with
    | [] -> error "break outside of a loop or switch"
    | ctx :: _ ->
      let at = emit_jump_placeholder fx (fun t -> Instr.Jump t) in
      ctx.break_fixups <- at :: ctx.break_fixups)
  | Ast.Continue -> (
    (* continue binds to the nearest enclosing LOOP, skipping switches. *)
    match List.find_opt (fun ctx -> not ctx.is_switch) fx.loops with
    | None -> error "continue outside of a loop"
    | Some ctx -> (
      match ctx.continue_target with
      | `Known target -> emit fx (Instr.Jump target)
      | `Fixups cell ->
        let at = emit_jump_placeholder fx (fun t -> Instr.Jump t) in
        cell := at :: !cell))
  | Ast.Switch (disc, cases) ->
    (* Evaluate the discriminant once, test the case expressions in source
       order with ===, then lay the bodies out sequentially so execution
       falls through until a break (JavaScript switch semantics). *)
    let t_disc = fresh_local fx in
    compile_expr fx disc;
    emit fx (Instr.Set_local t_disc);
    let case_jumps =
      List.filter_map
        (fun (test, _) ->
          match test with
          | None -> None
          | Some e ->
            emit fx (Instr.Get_local t_disc);
            compile_expr fx e;
            emit fx (Instr.Cmp Runtime.Ops.Strict_eq);
            Some (Some (emit_jump_placeholder fx (fun t -> Instr.Jump_if_true t))))
        cases
    in
    (* No match: jump to the default clause's body if there is one. *)
    let to_default = emit_jump_placeholder fx (fun t -> Instr.Jump t) in
    let dead_continue = ref [] in
    let ctx =
      { break_fixups = []; continue_target = `Fixups dead_continue; is_switch = true }
    in
    fx.loops <- ctx :: fx.loops;
    let case_jumps = ref case_jumps in
    let default_at = ref None in
    List.iter
      (fun (test, body) ->
        (match test with
        | Some _ -> (
          match !case_jumps with
          | Some at :: rest ->
            patch fx at fx.pc;
            case_jumps := rest
          | _ -> assert false)
        | None -> default_at := Some fx.pc);
        List.iter (compile_stmt fx) body)
      cases;
    fx.loops <- List.tl fx.loops;
    assert (!dead_continue = []);
    (match !default_at with
    | Some target ->
      (* patch the no-match jump backwards into the laid-out default *)
      patch fx to_default target
    | None -> patch fx to_default fx.pc);
    List.iter (fun at -> patch fx at fx.pc) ctx.break_fixups
  | Ast.Func_decl _ -> ()  (* hoisted in the prologue *)
  | Ast.Block body -> List.iter (compile_stmt fx) body

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

and compile_expr fx (e : Ast.expr) =
  match const_of_literal e with
  | Some v -> emit fx (Instr.Const v)
  | None -> (
    match e with
    | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Bool _ | Ast.Null | Ast.Undefined ->
      assert false
    | Ast.Var name -> emit_get fx (resolve fx name)
    | Ast.Binop (op, a, b) ->
      compile_expr fx a;
      compile_expr fx b;
      emit fx (Instr.Binop (binop_of_ast op))
    | Ast.Cmp (op, a, b) ->
      compile_expr fx a;
      compile_expr fx b;
      emit fx (Instr.Cmp (cmp_of_ast op))
    | Ast.Unop (op, a) ->
      compile_expr fx a;
      emit fx (Instr.Unop (unop_of_ast op))
    | Ast.And (a, b) ->
      compile_expr fx a;
      emit fx Instr.Dup;
      let to_end = emit_jump_placeholder fx (fun t -> Instr.Jump_if_false t) in
      emit fx Instr.Pop;
      compile_expr fx b;
      patch fx to_end fx.pc
    | Ast.Or (a, b) ->
      compile_expr fx a;
      emit fx Instr.Dup;
      let to_end = emit_jump_placeholder fx (fun t -> Instr.Jump_if_true t) in
      emit fx Instr.Pop;
      compile_expr fx b;
      patch fx to_end fx.pc
    | Ast.Cond (c, t, e2) ->
      compile_expr fx c;
      let to_else = emit_jump_placeholder fx (fun t -> Instr.Jump_if_false t) in
      compile_expr fx t;
      let to_end = emit_jump_placeholder fx (fun t -> Instr.Jump t) in
      patch fx to_else fx.pc;
      compile_expr fx e2;
      patch fx to_end fx.pc
    | Ast.Assign (lhs, rhs) -> compile_assign fx lhs rhs
    | Ast.Op_assign (op, lhs, rhs) -> compile_op_assign fx (binop_of_ast op) lhs rhs
    | Ast.Update (op, prefix, lhs) -> compile_update fx op prefix lhs
    | Ast.Call (f, args) ->
      compile_expr fx f;
      List.iter (compile_expr fx) args;
      emit fx (Instr.Call (List.length args))
    | Ast.Method_call (o, m, args) ->
      compile_expr fx o;
      List.iter (compile_expr fx) args;
      emit fx (Instr.Method_call (m, List.length args))
    | Ast.Index (a, i) ->
      compile_expr fx a;
      compile_expr fx i;
      emit fx Instr.Get_elem
    | Ast.Prop (o, p) ->
      compile_expr fx o;
      emit fx (Instr.Get_prop p)
    | Ast.Array_lit es ->
      List.iter (compile_expr fx) es;
      emit fx (Instr.New_array (List.length es))
    | Ast.Object_lit fields ->
      List.iter (fun (_, v) -> compile_expr fx v) fields;
      emit fx (Instr.New_object (Array.of_list (List.map fst fields)))
    | Ast.Func f -> compile_closure fx ~name:f.Ast.name ~params:f.Ast.params ~body:f.Ast.body
    | Ast.New (ctor, args) ->
      if ctor <> "Array" && ctor <> "Object" then
        error "`new %s`: only Array and Object constructors are supported" ctor;
      List.iter (compile_expr fx) args;
      emit fx (Instr.New (ctor, List.length args)))

and compile_assign fx lhs rhs =
  match lhs with
  | Ast.L_var name ->
    compile_expr fx rhs;
    emit fx Instr.Dup;
    emit_set fx (resolve fx name)
  | Ast.L_index (a, i) ->
    compile_expr fx a;
    compile_expr fx i;
    compile_expr fx rhs;
    emit fx Instr.Set_elem
  | Ast.L_prop (o, p) ->
    compile_expr fx o;
    compile_expr fx rhs;
    emit fx (Instr.Set_prop p)

and compile_op_assign fx op lhs rhs =
  match lhs with
  | Ast.L_var name ->
    let site = resolve fx name in
    emit_get fx site;
    compile_expr fx rhs;
    emit fx (Instr.Binop op);
    emit fx Instr.Dup;
    emit_set fx site
  | Ast.L_index (a, i) ->
    (* Evaluate the target once via hidden temporaries. *)
    let t_arr = fresh_local fx and t_idx = fresh_local fx in
    compile_expr fx a;
    emit fx (Instr.Set_local t_arr);
    compile_expr fx i;
    emit fx (Instr.Set_local t_idx);
    emit fx (Instr.Get_local t_arr);
    emit fx (Instr.Get_local t_idx);
    emit fx (Instr.Get_local t_arr);
    emit fx (Instr.Get_local t_idx);
    emit fx Instr.Get_elem;
    compile_expr fx rhs;
    emit fx (Instr.Binop op);
    emit fx Instr.Set_elem
  | Ast.L_prop (o, p) ->
    compile_expr fx o;
    emit fx Instr.Dup;
    emit fx (Instr.Get_prop p);
    compile_expr fx rhs;
    emit fx (Instr.Binop op);
    emit fx (Instr.Set_prop p)

and compile_update fx op prefix lhs =
  let delta = Instr.Const (Runtime.Value.Int 1) in
  let arith = match op with Ast.Incr -> Runtime.Ops.Add | Ast.Decr -> Runtime.Ops.Sub in
  match lhs with
  | Ast.L_var name ->
    let site = resolve fx name in
    emit_get fx site;
    emit fx (Instr.Unop Runtime.Ops.To_number);
    if prefix then begin
      emit fx delta;
      emit fx (Instr.Binop arith);
      emit fx Instr.Dup;
      emit_set fx site
    end
    else begin
      emit fx Instr.Dup;
      emit fx delta;
      emit fx (Instr.Binop arith);
      emit_set fx site
    end
  | Ast.L_index (a, i) ->
    let t_arr = fresh_local fx and t_idx = fresh_local fx and t_old = fresh_local fx in
    compile_expr fx a;
    emit fx (Instr.Set_local t_arr);
    compile_expr fx i;
    emit fx (Instr.Set_local t_idx);
    emit fx (Instr.Get_local t_arr);
    emit fx (Instr.Get_local t_idx);
    emit fx Instr.Get_elem;
    emit fx (Instr.Unop Runtime.Ops.To_number);
    emit fx (Instr.Set_local t_old);
    emit fx (Instr.Get_local t_arr);
    emit fx (Instr.Get_local t_idx);
    emit fx (Instr.Get_local t_old);
    emit fx delta;
    emit fx (Instr.Binop arith);
    emit fx Instr.Set_elem;
    if not prefix then begin
      emit fx Instr.Pop;
      emit fx (Instr.Get_local t_old)
    end
  | Ast.L_prop (o, p) ->
    let t_obj = fresh_local fx and t_old = fresh_local fx in
    compile_expr fx o;
    emit fx (Instr.Set_local t_obj);
    emit fx (Instr.Get_local t_obj);
    emit fx (Instr.Get_prop p);
    emit fx (Instr.Unop Runtime.Ops.To_number);
    emit fx (Instr.Set_local t_old);
    emit fx (Instr.Get_local t_obj);
    emit fx (Instr.Get_local t_old);
    emit fx delta;
    emit fx (Instr.Binop arith);
    emit fx (Instr.Set_prop p);
    if not prefix then begin
      emit fx Instr.Pop;
      emit fx (Instr.Get_local t_old)
    end

and binop_of_ast (op : Ast.binop) : Runtime.Ops.binop =
  match op with
  | Ast.Add -> Runtime.Ops.Add
  | Ast.Sub -> Runtime.Ops.Sub
  | Ast.Mul -> Runtime.Ops.Mul
  | Ast.Div -> Runtime.Ops.Div
  | Ast.Mod -> Runtime.Ops.Mod
  | Ast.Bit_and -> Runtime.Ops.Bit_and
  | Ast.Bit_or -> Runtime.Ops.Bit_or
  | Ast.Bit_xor -> Runtime.Ops.Bit_xor
  | Ast.Shl -> Runtime.Ops.Shl
  | Ast.Shr -> Runtime.Ops.Shr
  | Ast.Ushr -> Runtime.Ops.Ushr

and cmp_of_ast (op : Ast.cmp) : Runtime.Ops.cmp =
  match op with
  | Ast.Lt -> Runtime.Ops.Lt
  | Ast.Le -> Runtime.Ops.Le
  | Ast.Gt -> Runtime.Ops.Gt
  | Ast.Ge -> Runtime.Ops.Ge
  | Ast.Eq -> Runtime.Ops.Eq
  | Ast.Neq -> Runtime.Ops.Neq
  | Ast.Strict_eq -> Runtime.Ops.Strict_eq
  | Ast.Strict_neq -> Runtime.Ops.Strict_neq

and unop_of_ast (op : Ast.unop) : Runtime.Ops.unop =
  match op with
  | Ast.Neg -> Runtime.Ops.Neg
  | Ast.Not -> Runtime.Ops.Not
  | Ast.Bit_not -> Runtime.Ops.Bit_not
  | Ast.Typeof -> Runtime.Ops.Typeof
  | Ast.To_number -> Runtime.Ops.To_number

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let program (ast : Ast.program) =
  let g =
    { funcs = []; next_fid = 0; global_table = Hashtbl.create 32; global_order = [] }
  in
  (* Pre-register builtin globals so their slots are stable. *)
  List.iter (fun (name, _) -> ignore (global_slot g name)) (Runtime.Builtins.globals ());
  let main_fid, _ =
    compile_function g ~parent:None ~name:(Some "<toplevel>") ~params:[] ~body:ast
      ~is_toplevel:true
  in
  let funcs = Array.of_list (List.rev g.funcs) in
  Array.sort (fun a b -> compare a.Program.fid b.Program.fid) funcs;
  { Program.funcs; global_names = Array.of_list (List.rev g.global_order); main = main_fid }

let program_of_source src = program (Parser.parse_program src)
