(** Compilation of MiniJS ASTs to stack bytecode.

    Scoping follows JavaScript's function-scoped [var] model: declarations
    are hoisted to the top of the enclosing function, nested function
    declarations are compiled at function entry, and variables captured by
    nested functions are boxed into shared cells so that mutation through a
    closure is visible in the defining frame. Top-level declarations live in
    global slots. *)

exception Error of string

val program : Jsfront.Ast.program -> Program.t
(** Compile a whole program. Function 0 of the result is the toplevel
    script. @raise Error on references the subset cannot compile. *)

val program_of_source : string -> Program.t
(** Parse then compile. Raises the parser/lexer errors unchanged. *)
