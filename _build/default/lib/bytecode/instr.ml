(* The stack bytecode interpreted by the VM, mirroring SpiderMonkey's role
   in the paper's Figure 5: the parser produces bytecodes, the interpreter
   runs them, and the JIT translates them to MIR when a function gets hot.

   Stack effects are noted as [consumed -> produced]. *)

type capture =
  | Cap_cell of int  (* share a cell of the creating frame *)
  | Cap_upval of int  (* pass one of the creating closure's upvalues down *)

type t =
  | Const of Runtime.Value.t  (* [ -> v ]; constants are primitives *)
  | Get_arg of int  (* [ -> v ] *)
  | Set_arg of int  (* [ v -> ] *)
  | Get_local of int  (* [ -> v ] *)
  | Set_local of int  (* [ v -> ] *)
  | Get_cell of int  (* [ -> v ]; captured (boxed) variable *)
  | Set_cell of int  (* [ v -> ] *)
  | Get_upval of int  (* [ -> v ] *)
  | Set_upval of int  (* [ v -> ] *)
  | Get_global of int  (* [ -> v ] *)
  | Set_global of int  (* [ v -> ] *)
  | Pop  (* [ v -> ] *)
  | Dup  (* [ v -> v v ] *)
  | Binop of Runtime.Ops.binop  (* [ a b -> r ] *)
  | Cmp of Runtime.Ops.cmp  (* [ a b -> r ] *)
  | Unop of Runtime.Ops.unop  (* [ a -> r ] *)
  | Jump of int  (* absolute target *)
  | Jump_if_false of int  (* [ v -> ] *)
  | Jump_if_true of int  (* [ v -> ] *)
  | Loop_head of int  (* loop id; OSR anchor, no stack effect *)
  | Call of int  (* [ callee a1..an -> r ] *)
  | Method_call of string * int  (* [ recv a1..an -> r ] *)
  | Return  (* [ v -> ]; leaves the frame *)
  | Return_undefined
  | New_array of int  (* [ v1..vn -> arr ] *)
  | New of string * int  (* [ a1..an -> v ]; `new Ctor(...)` for Array/Object *)
  | New_object of string array  (* [ v1..vn -> obj ]; field values in order *)
  | Get_elem  (* [ arr idx -> v ] *)
  | Set_elem  (* [ arr idx v -> v ] *)
  | Keys  (* [ v -> arr ]; enumerable property names, for-in support *)
  | Get_prop of string  (* [ obj -> v ] *)
  | Set_prop of string  (* [ obj v -> v ] *)
  | Make_closure of int * capture array  (* [ -> closure ] *)

let to_string instr =
  let open Printf in
  match instr with
  | Const v -> sprintf "const %s" (Format.asprintf "%a" Runtime.Value.pp v)
  | Get_arg n -> sprintf "getarg %d" n
  | Set_arg n -> sprintf "setarg %d" n
  | Get_local n -> sprintf "getlocal %d" n
  | Set_local n -> sprintf "setlocal %d" n
  | Get_cell n -> sprintf "getcell %d" n
  | Set_cell n -> sprintf "setcell %d" n
  | Get_upval n -> sprintf "getupval %d" n
  | Set_upval n -> sprintf "setupval %d" n
  | Get_global n -> sprintf "getglobal %d" n
  | Set_global n -> sprintf "setglobal %d" n
  | Pop -> "pop"
  | Dup -> "dup"
  | Binop op -> Runtime.Ops.binop_to_string op
  | Cmp op -> Runtime.Ops.cmp_to_string op
  | Unop op -> Runtime.Ops.unop_to_string op
  | Jump t -> sprintf "jump %d" t
  | Jump_if_false t -> sprintf "jumpiffalse %d" t
  | Jump_if_true t -> sprintf "jumpiftrue %d" t
  | Loop_head k -> sprintf "loophead %d" k
  | Call n -> sprintf "call %d" n
  | Method_call (m, n) -> sprintf "methodcall %s %d" m n
  | Return -> "return"
  | Return_undefined -> "returnundef"
  | New_array n -> sprintf "newarray %d" n
  | New (ctor, n) -> sprintf "new %s %d" ctor n
  | New_object fields -> sprintf "newobject {%s}" (String.concat "," (Array.to_list fields))
  | Get_elem -> "getelem"
  | Set_elem -> "setelem"
  | Keys -> "keys"
  | Get_prop p -> sprintf "getprop %s" p
  | Set_prop p -> sprintf "setprop %s" p
  | Make_closure (fid, caps) ->
    sprintf "closure f%d [%s]" fid
      (String.concat ","
         (Array.to_list
            (Array.map
               (function
                 | Cap_cell i -> sprintf "cell%d" i
                 | Cap_upval i -> sprintf "up%d" i)
               caps)))

(* Net stack effect, used to compute max_stack. *)
let stack_effect = function
  | Const _ | Get_arg _ | Get_local _ | Get_cell _ | Get_upval _ | Get_global _
  | Make_closure _ ->
    1
  | Dup -> 1
  | Set_arg _ | Set_local _ | Set_cell _ | Set_upval _ | Set_global _ | Pop -> -1
  | Binop _ | Cmp _ -> -1
  | Unop _ -> 0
  | Jump _ | Loop_head _ | Return_undefined -> 0
  | Jump_if_false _ | Jump_if_true _ | Return -> -1
  | Call n -> -(n + 1) + 1
  | Method_call (_, n) -> -(n + 1) + 1
  | New_array n -> -n + 1
  | New (_, n) -> -n + 1
  | New_object fields -> -Array.length fields + 1
  | Get_elem -> -1
  | Set_elem -> -2
  | Keys -> 0
  | Get_prop _ -> 0
  | Set_prop _ -> -1
