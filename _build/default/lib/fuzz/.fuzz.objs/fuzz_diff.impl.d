lib/fuzz/fuzz_diff.ml: Buffer Engine Fun List Pipeline Printexc Runtime
