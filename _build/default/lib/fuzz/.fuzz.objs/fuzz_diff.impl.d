lib/fuzz/fuzz_diff.ml: Buffer Diag Engine Fun List Pipeline Printexc Runtime
