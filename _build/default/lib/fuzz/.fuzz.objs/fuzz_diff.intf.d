lib/fuzz/fuzz_diff.mli: Diag Engine
