lib/fuzz/fuzz_diff.mli: Engine
