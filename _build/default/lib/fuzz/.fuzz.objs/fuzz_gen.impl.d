lib/fuzz/fuzz_gen.ml: List Printf Random
