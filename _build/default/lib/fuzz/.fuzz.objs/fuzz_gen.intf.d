lib/fuzz/fuzz_gen.mli: Random
