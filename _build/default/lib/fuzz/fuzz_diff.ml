type mismatch = { mm_config : string; mm_expected : string; mm_got : string }

let run config src =
  let buf = Buffer.create 64 in
  let saved = !Runtime.Builtins.print_hook in
  Runtime.Builtins.print_hook :=
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n');
  Runtime.Builtins.reset_random 20130223;
  Fun.protect
    ~finally:(fun () -> Runtime.Builtins.print_hook := saved)
    (fun () ->
      (try ignore (Engine.run_source config src)
       with e -> Buffer.add_string buf ("EXN " ^ Printexc.to_string e ^ "\n"));
      Buffer.contents buf)

let default_configs =
  let opt o = Engine.default_config ~opt:o () in
  ("baseline", Engine.default_config ())
  :: ("best", opt Pipeline.best)
  :: ( "max",
       opt
         (Pipeline.make ~ps:true ~cp:true ~li:true ~dce:true ~bce:true
            ~precise_alias:true ~overflow_elim:true ~loop_unroll:true "max") )
  :: ("selective", Engine.default_config ~opt:Pipeline.all_on ~selective:true ())
  :: ("cache4", Engine.default_config ~opt:Pipeline.all_on ~cache_size:4 ())
  :: ("sccp", opt (Pipeline.make ~ps:true ~sccp:true ~li:true ~dce:true ~bce:true "sccp"))
  :: List.map (fun c -> (c.Pipeline.name, opt c)) Pipeline.figure9_configs

let check ?(configs = default_configs) src =
  let reference = run Engine.interp_only src in
  List.fold_left
    (fun acc (name, config) ->
      match acc with
      | Some _ -> acc
      | None ->
        let got = run config src in
        if got = reference then None
        else Some { mm_config = name; mm_expected = reference; mm_got = got })
    None configs
