type 'a gen = Random.State.t -> 'a

(* --- tiny combinators (a QCheck.Gen.t is the same function type) --- *)

let int_range lo hi st = lo + Random.State.int st (hi - lo + 1)
let oneofl xs st = List.nth xs (Random.State.int st (List.length xs))
let bool st = Random.State.bool st

(* --- shared expression generator --- *)

(* Integer expressions over the in-scope names [leaves]; every operator is
   total on ints, so any combination is well-defined. *)
let rec expr leaves depth st =
  if depth = 0 then
    if bool st then oneofl leaves st else string_of_int (int_range 0 9 st)
  else
    let a = expr leaves (depth - 1) st in
    let o = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] st in
    let b = expr leaves (depth - 1) st in
    Printf.sprintf "(%s %s %s)" a o b

(* --- the paper's core pattern: helpers + mixed-stability driver --- *)

let program st =
  let leaves = [ "x"; "y"; "i"; "t" ] in
  let body st =
    let e1 = expr leaves 2 st in
    let e2 = expr leaves 2 st in
    let bound = int_range 1 12 st in
    let kind = int_range 0 3 st in
    let loop =
      match kind with
      | 0 ->
        (* array fill + sum *)
        Printf.sprintf
          "  var a = new Array(%d);\n\
          \  for (var i = 0; i < %d; i++) a[i] = %s;\n\
          \  var t = 0;\n\
          \  for (var i = 0; i < %d; i++) t = (t + a[i]) | 0;\n"
          bound bound e1 bound
      | 1 ->
        (* closure argument applied in a loop: the map/inc shape *)
        Printf.sprintf
          "  var t = 0;\n  for (var i = 0; i < %d; i++) t = (t + y(%s, i)) | 0;\n"
          bound e1
      | 2 ->
        (* string building + rehash *)
        Printf.sprintf
          "  var s = \"\";\n\
          \  for (var i = 0; i < %d; i++) s += (%s) & 7;\n\
          \  var t = 0;\n\
          \  for (var i = 0; i < s.length; i++) t = (t * 31 + s.charCodeAt(i)) | 0;\n"
          bound e1
      | _ ->
        Printf.sprintf "  var t = 0;\n  for (var i = 0; i < %d; i++) t = (t + %s) | 0;\n"
          bound e1
    in
    let tail =
      if kind = 1 then "  return t | 0;\n"
      else Printf.sprintf "  return (t + %s) | 0;\n" e2
    in
    (loop ^ tail, kind)
  in
  let b1, k1 = body st in
  let b2, k2 = body st in
  let stable = bool st in
  let x0 = int_range 0 50 st in
  (* The y argument is a closure when the body applies it, else an int. *)
  let arg2 kind fallback = if kind = 1 then "kernel" else fallback in
  let driver =
    if stable then
      Printf.sprintf
        "var r = 0;\n\
         for (var k = 0; k < 25; k++) r = (r + fn1(%d, %s) + fn2(%d, %s)) | 0;\n\
         print(r);\n"
        x0 (arg2 k1 "3") (x0 + 1) (arg2 k2 "4")
    else
      Printf.sprintf
        "var r = 0;\n\
         for (var k = 0; k < 25; k++) r = (r + fn1(k, %s) + fn2(k, %s)) | 0;\n\
         print(r);\n"
        (arg2 k1 "3") (arg2 k2 "k")
  in
  Printf.sprintf
    "function kernel(a, b) { return (a * 2 + b) | 0; }\n\
     function fn1(x, y) {\n%s}\n\
     function fn2(x, y) {\n%s}\n%s"
    b1 b2 driver

(* --- irregular loop shapes --- *)

let loop_program st =
  let outer_bound = int_range 1 7 st in
  let inner_bound = int_range 1 6 st in
  let br = int_range 0 4 st in
  let cont = int_range 0 4 st in
  let style = int_range 0 3 st in
  let body =
    match style with
    | 0 ->
      (* nested counted loops with break/continue *)
      Printf.sprintf
        "  for (var i = 0; i < %d; i++) {\n\
        \    if (i == %d) continue;\n\
        \    for (var j = 0; j < %d; j++) {\n\
        \      if (j == %d) break;\n\
        \      t = (t + i * 10 + j) | 0;\n\
        \    }\n\
        \  }\n"
        outer_bound cont inner_bound br
    | 1 ->
      (* while(true) with multiple exits *)
      Printf.sprintf
        "  var i = 0;\n\
        \  while (true) {\n\
        \    i++;\n\
        \    if (i == %d) break;\n\
        \    if (i > %d) { t += 100; break; }\n\
        \    t = (t + i) | 0;\n\
        \  }\n"
        (br + 2) (cont + 1)
    | 2 ->
      (* assignment inside the loop condition *)
      Printf.sprintf
        "  var a = [%d];\n\
        \  var k;\n\
        \  while (!((k = a[0]) == 0)) { a[0] = k - 1; t = (t + k) | 0; }\n"
        (outer_bound + 2)
    | _ ->
      (* do-while wrapped in a counted loop *)
      Printf.sprintf
        "  for (var i = 0; i < %d; i++) {\n\
        \    var j = %d;\n\
        \    do { t = (t + j) | 0; j--; } while (j > 0);\n\
        \  }\n"
        outer_bound inner_bound
  in
  let stable = bool st in
  let arg = if stable then "7" else "k % 5" in
  Printf.sprintf
    "function kernel(n) {\n\
    \  var t = n;\n%s  return t | 0;\n\
     }\n\
     var r = 0;\n\
     for (var k = 0; k < 30; k++) r = (r + kernel(%s)) | 0;\n\
     print(r);\n"
    body arg

(* --- object-model traffic --- *)

let object_program st =
  let kind = int_range 0 4 st in
  let e = expr [ "x"; "i" ] 1 st in
  let bound = int_range 2 8 st in
  let body =
    match kind with
    | 0 ->
      (* property loads/stores and compound property assignment *)
      Printf.sprintf
        "  var o = { n: x, m: 1, sum: 0 };\n\
        \  for (var i = 0; i < %d; i++) {\n\
        \    o.n += %s;\n\
        \    o.m = (o.m * 3 + 1) | 0;\n\
        \    o.sum = (o.sum + o.n + o.m) | 0;\n\
        \  }\n\
        \  return o.sum | 0;\n"
        bound e
    | 1 ->
      (* array methods: push/pop/join grow-and-drain *)
      Printf.sprintf
        "  var a = new Array();\n\
        \  for (var i = 0; i < %d; i++) a.push((%s) & 15);\n\
        \  a.pop();\n\
        \  a.push(99);\n\
        \  var s = a.join(\"-\");\n\
        \  var t = s.length;\n\
        \  for (var i = 0; i < a.length; i++) t = (t + a[i]) | 0;\n\
        \  return t | 0;\n"
        bound e
    | 2 ->
      (* higher-order array methods over a computed array *)
      Printf.sprintf
        "  var a = new Array(%d);\n\
        \  for (var i = 0; i < %d; i++) a[i] = (%s) & 31;\n\
        \  var b = a.map(twice).filter(small);\n\
        \  var t = b.reduce(plus, 7);\n\
        \  return (t + b.length) | 0;\n"
        bound bound e
    | 3 ->
      (* for-in enumeration over a grown object *)
      Printf.sprintf
        "  var o = { seed: x };\n\
        \  for (var i = 0; i < %d; i++) o[\"k\" + i] = (%s) & 63;\n\
        \  var t = 0;\n\
        \  var names = \"\";\n\
        \  for (var k in o) { t = (t + o[k]) | 0; names += k.length; }\n\
        \  return (t + names.length) | 0;\n"
        bound e
    | _ ->
      (* string methods *)
      Printf.sprintf
        "  var s = \"\";\n\
        \  for (var i = 0; i < %d; i++) s += ((%s) & 7);\n\
        \  var parts = (s + \"9\" + s).split(\"9\");\n\
        \  var t = parts.length + s.indexOf(\"3\") + s.charCodeAt(0);\n\
        \  var u = s.substring(1, s.length - 1);\n\
        \  return (t + u.length) | 0;\n"
        (bound + 1) e
  in
  let stable = bool st in
  let arg = if stable then string_of_int (int_range 0 20 st) else "k" in
  Printf.sprintf
    "function twice(v, i) { return (v * 2 + i) | 0; }\n\
     function small(v, i) { return v < 20; }\n\
     function plus(acc, v) { return (acc + v) | 0; }\n\
     function work(x) {\n%s}\n\
     var r = 0;\n\
     for (var k = 0; k < 25; k++) r = (r + work(%s)) | 0;\n\
     print(r);\n"
    body arg

(* --- deoptimization stress --- *)

let deopt_program st =
  let kind = int_range 0 3 st in
  let bound = int_range 3 9 st in
  let big = 40000 + int_range 0 59999 st in
  let body =
    match kind with
    | 0 ->
      (* int32 overflow mid-loop: the checked-int fast path must bail,
         resume in the interpreter, and feed the overflow-recompile path *)
      Printf.sprintf
        "  var t = 1;\n\
        \  for (var i = 0; i < %d; i++) t = (t * %d + x) | 0;\n\
        \  var u = 1;\n\
        \  for (var i = 0; i < %d; i++) u = u * %d + i;\n\
        \  return (t + (u | 0)) | 0;\n"
        bound big bound big
    | 1 ->
      (* type-flipping argument: entry type barriers fail across calls *)
      Printf.sprintf
        "  var t = 0;\n\
        \  for (var i = 0; i < %d; i++) {\n\
        \    if (typeof x == \"number\") t = (t + x + i) | 0;\n\
        \    else t = (t + x.length + i) | 0;\n\
        \  }\n\
        \  return t | 0;\n"
        bound
    | 2 ->
      (* array whose element types change mid-loop: guarded loads bail *)
      Printf.sprintf
        "  var a = new Array(%d);\n\
        \  for (var i = 0; i < %d; i++) a[i] = i * 3;\n\
        \  if (x > 12) a[%d] = \"flip\";\n\
        \  var t = 0;\n\
        \  for (var i = 0; i < %d; i++) {\n\
        \    var v = a[i];\n\
        \    if (typeof v == \"number\") t = (t + v) | 0; else t = (t + v.length) | 0;\n\
        \  }\n\
        \  return t | 0;\n"
        bound bound (int_range 0 (bound - 1) st) bound
    | _ ->
      (* double contamination: an int loop poisoned by a fractional step *)
      Printf.sprintf
        "  var t = 0;\n\
        \  var step = x > 12 ? 0.5 : 1;\n\
        \  for (var i = 0; i < %d; i++) t = t + step * i;\n\
        \  return (t * 4) | 0;\n"
        bound
  in
  let flip = kind = 1 in
  let arg =
    if flip then "(k % 3 == 0 ? \"str\" + k : k)"
    else if bool st then string_of_int (int_range 0 30 st)
    else "k"
  in
  Printf.sprintf
    "function churn(x) {\n%s}\n\
     var r = 0;\n\
     for (var k = 0; k < 30; k++) r = (r + churn(%s)) | 0;\n\
     print(r);\n"
    body arg

let any_program st =
  match int_range 0 3 st with
  | 0 -> program st
  | 1 -> loop_program st
  | 2 -> object_program st
  | _ -> deopt_program st
