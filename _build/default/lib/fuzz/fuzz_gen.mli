(** Deterministic MiniJS program generators for differential fuzzing.

    Every generator is a plain [Random.State.t -> string] function, so it
    is usable both from [bin/fuzz.exe] (seeded per case) and from QCheck
    properties (a [QCheck.Gen.t] is exactly this function type).

    Generated programs are closed, deterministic (no [Math.random], no
    observable heap identity), and print a single summary value, so the
    output of a run is a complete semantic fingerprint: if two
    configurations print the same string, they agreed on every step that
    fed the final value. *)

type 'a gen = Random.State.t -> 'a

val program : string gen
(** Helper functions with loops plus array / string / closure traffic, and
    a driver that calls them with mixed argument stability — the paper's
    core pattern, triggering specialization hits, misses, deopts and
    closure inlining. *)

val loop_program : string gen
(** Irregular loop shapes: nesting, [break] / [continue], [while (true)]
    with multiple exits, assignment inside the condition, [do]-[while].
    Stresses loop inversion, unrolling and DCE. *)

val object_program : string gen
(** Object-model traffic: object literals, property loads and stores,
    compound property assignment, array methods ([push] / [pop] / [join] /
    [slice] / [sort] / higher-order [map] / [filter] / [reduce]) and
    string methods. Stresses the generic paths and the deopt machinery
    around them. *)

val deopt_program : string gen
(** Deoptimization stress: int32 overflow mid-loop, arguments whose type
    flips across calls, arrays whose element types change mid-loop, and
    int loops contaminated by fractional steps — every guard/bailout/
    resume/recompile path in the engine. *)

val any_program : string gen
(** One of the generators above, picked uniformly. *)
