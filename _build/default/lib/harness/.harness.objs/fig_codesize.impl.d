lib/harness/fig_codesize.ml: Engine List Pipeline Printf Runner Stats Suite Suites Support Table Web
