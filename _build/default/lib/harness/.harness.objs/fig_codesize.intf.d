lib/harness/fig_codesize.mli:
