lib/harness/fig_policy.ml: Engine List Pipeline Printf Runner Suite Suites Support
