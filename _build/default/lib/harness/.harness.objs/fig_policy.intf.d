lib/harness/fig_policy.mli:
