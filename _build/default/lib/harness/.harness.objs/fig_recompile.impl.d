lib/harness/fig_recompile.ml: Engine List Pipeline Printf Runner Suite Suites Support
