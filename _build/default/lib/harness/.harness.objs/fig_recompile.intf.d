lib/harness/fig_recompile.mli:
