lib/harness/fig_speedup.ml: Engine List Pipeline Printf Runner Stats Suite Suites Support Table
