lib/harness/fig_speedup.mli:
