lib/harness/fig_suite_calls.ml: Engine Hashtbl List Option Printf Runner Runtime Stats Suite Suites Support Table
