lib/harness/fig_suite_calls.mli:
