lib/harness/fig_web.ml: List Printf Stats Support Table Web
