lib/harness/fig_web.mli:
