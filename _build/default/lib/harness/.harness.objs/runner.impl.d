lib/harness/runner.ml: Engine Fun List Runtime Suite
