lib/harness/runner.mli: Engine Suite
