(** Figure 10: per-function native code size, baseline vs specialized, plus
    the web code-size study (google/facebook/twitter reductions and extra
    recompilations).

    For each function compiled in both modes the smallest version each mode
    generated is compared, as the paper does ("we consider only the
    smallest version that each compilation mode generates for each
    function"). Paper averages: SunSpider -16.72%, V8 -18.84%, Kraken
    -15.94%; web sites -12.07% (google), -16.08% (facebook), -22.10%
    (twitter) with 5.0%/4.9%/23.1% extra recompiles. *)

type point = { fn_name : string; base_size : int; spec_size : int }

type suite_sizes = {
  suite_name : string;
  points : point list;  (** ordered by [base_size], the figure's X axis *)
  average_reduction : float;  (** mean per-function size reduction, % *)
}

type site_result = {
  site : string;
  size_reduction : float;
  recompile_increase : float;  (** extra recompilations, % of compilations *)
}

val run_suites : unit -> suite_sizes list
val run_sites : ?seed:int -> unit -> site_result list
val print : suite_sizes list -> site_result list -> unit
