(** Section 4, "Specialization policy": per suite, how many functions were
    specialized, how many were successfully specialized (always called with
    the same arguments for the whole execution) and how many had to be
    deoptimized. Paper: 56/18/38 SunSpider, 37/11/26 V8, 38/14/24 Kraken. *)

type t = {
  suite_name : string;
  specialized : int;
  successful : int;
  deoptimized : int;
}

val run : unit -> t list
val print : t list -> unit
