(** Section 4, "Impact on number of recompilations": by how much parameter
    specialization grows the number of compilations of the same function.
    Paper: +3.6% SunSpider, +4.35% V8, +7.58% Kraken. *)

type t = {
  suite_name : string;
  base_compilations : int;
  spec_compilations : int;
  growth_percent : float;
}

val run : unit -> t list
val print : t list -> unit
