(** Figure 9: runtime speedups (a: arithmetic, b: geometric mean) and
    compilation overheads (c, d) for the ten optimization configurations,
    across the three suites.

    Each suite member runs once per configuration plus once under the
    IonMonkey baseline; speedup is [(base - v) / v * 100] on total model
    cycles (interpretation + compilation + native execution, the paper's
    "time measured in each run includes interpretation, compilation and
    native execution"), and compilation overhead is the percentage change
    of compile cycles against the baseline. *)

type cell = {
  speedups : float list;  (** per-member runtime speedups, in % *)
  overheads : float list;  (** per-member compile-time deltas, in % *)
}

type t = {
  config_names : string list;  (** the ten column labels *)
  suites : (string * cell list) list;  (** per suite, one cell per config *)
}

val run : unit -> t

val speedup_table : mean:[ `Arith | `Geo ] -> t -> string list list
(** Rows: suite name followed by one mean-speedup column per config. *)

val overhead_table : mean:[ `Arith | `Geo ] -> t -> string list list

val print : t -> unit
