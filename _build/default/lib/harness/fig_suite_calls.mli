(** Figure 3 (both rows) and the benchmark columns of Figure 4: per-suite
    invocation histograms, distinct-argument-set histograms, and parameter
    type mixes, measured by running each suite under pure interpretation
    with the engine's call instrumentation. *)

type suite_stats = {
  suite_name : string;
  distinct_functions : int;  (** paper: 154 SunSpider, 320 V8, 186 Kraken *)
  calls_bins : (string * float) list;
  argsets_bins : (string * float) list;
  called_once : float;
  single_argset : float;  (** paper: 38.96% / 40.62% / 55.91% *)
  most_called : string * int;
  type_fractions : (string * float) list;  (** Figure 4 suite column *)
}

val run : unit -> suite_stats list

val print : suite_stats list -> unit
