open Support

type t = {
  calls_bins : (string * float) list;
  argsets_bins : (string * float) list;
  called_once : float;
  called_twice : float;
  single_argset : float;
  type_fractions : (string * float) list;
}

let run ?(seed = 100) ?(nfunctions = 23002) () =
  let stats = Web.session ~seed ~nfunctions in
  let h = stats.Web.calls_histogram and a = stats.Web.argsets_histogram in
  {
    calls_bins = Stats.Histogram.bins h ~first:1 ~tail_from:30;
    argsets_bins = Stats.Histogram.bins a ~first:1 ~tail_from:30;
    called_once = Stats.Histogram.fraction h 1;
    called_twice = Stats.Histogram.fraction h 2;
    single_argset = Stats.Histogram.fraction a 1;
    type_fractions = stats.Web.type_fractions;
  }

let print t =
  let pct x = Table.fmt_pct (100.0 *. x) ^ "%" in
  Printf.printf
    "Figure 1 - %% of web functions called n times (paper: 48.88%% once, 11.12%% twice)\n";
  Printf.printf "  called once: %s   called twice: %s\n" (pct t.called_once)
    (pct t.called_twice);
  print_string
    (Table.render ~header:[ "n"; "fraction" ]
       ~rows:(List.map (fun (k, v) -> [ k; pct v ]) t.calls_bins)
       ());
  Printf.printf
    "\nFigure 2 - %% of web functions with n distinct argument sets (paper: 59.91%% with one)\n";
  Printf.printf "  single argument set: %s\n" (pct t.single_argset);
  print_string
    (Table.render ~header:[ "n"; "fraction" ]
       ~rows:(List.map (fun (k, v) -> [ k; pct v ]) t.argsets_bins)
       ());
  Printf.printf "\nFigure 4 (web column) - parameter types of single-argument-set functions\n";
  print_string
    (Table.render ~header:[ "type"; "fraction" ]
       ~rows:(List.map (fun (k, v) -> [ k; pct v ]) t.type_fractions)
       ())
