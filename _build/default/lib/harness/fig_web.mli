(** Figures 1, 2 and 4 (web columns): invocation-count histogram,
    distinct-argument-set histogram, and parameter-type mix of the
    synthetic web session (see {!Web} for the calibration). *)

type t = {
  calls_bins : (string * float) list;  (** Figure 1: first 29 bins + tail *)
  argsets_bins : (string * float) list;  (** Figure 2 *)
  called_once : float;  (** paper: 48.88% *)
  called_twice : float;  (** paper: 11.12% *)
  single_argset : float;  (** paper: 59.91% *)
  type_fractions : (string * float) list;  (** Figure 4, web column *)
}

val run : ?seed:int -> ?nfunctions:int -> unit -> t
(** Defaults: the paper's 23,002 functions, fixed seed. *)

val print : t -> unit
