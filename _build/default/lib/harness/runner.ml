let quiet f =
  let saved = !Runtime.Builtins.print_hook in
  Runtime.Builtins.print_hook := ignore;
  Runtime.Builtins.reset_random 20130223;  (* CGO'13 *)
  Fun.protect ~finally:(fun () -> Runtime.Builtins.print_hook := saved) f

let run_member config (m : Suite.member) =
  quiet (fun () -> Engine.run_source config m.Suite.m_source)

let run_suite config (suite : Suite.t) =
  List.map (fun (m : Suite.member) -> (m.Suite.m_name, run_member config m)) suite.Suite.members

let called_functions (r : Engine.report) =
  List.filter
    (fun (f : Engine.func_report) -> f.Engine.fr_calls > 0 && f.Engine.fr_fid <> 0)
    r.Engine.functions
