(** Shared plumbing for the experiment drivers: run suite members under a
    configuration with [print] silenced, deterministically. *)

val quiet : (unit -> 'a) -> 'a
(** Evaluate with the [print] builtin suppressed and [Math.random]
    reseeded, restoring the hooks afterwards. *)

val run_member : Engine.config -> Suite.member -> Engine.report
(** Run one suite member quietly. *)

val run_suite : Engine.config -> Suite.t -> (string * Engine.report) list
(** Run every member; returns (member name, report) pairs. *)

val called_functions : Engine.report -> Engine.func_report list
(** Function reports with at least one call, excluding the toplevel. *)
