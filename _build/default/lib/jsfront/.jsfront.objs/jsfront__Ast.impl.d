lib/jsfront/ast.ml: Format Option Pos String
