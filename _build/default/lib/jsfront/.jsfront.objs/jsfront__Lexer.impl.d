lib/jsfront/lexer.ml: Buffer List Option Pos Printf String Token
