lib/jsfront/lexer.mli: Pos Token
