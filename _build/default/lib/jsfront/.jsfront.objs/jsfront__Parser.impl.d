lib/jsfront/parser.ml: Array Ast Lexer List Pos Printf Token
