lib/jsfront/parser.mli: Ast Pos
