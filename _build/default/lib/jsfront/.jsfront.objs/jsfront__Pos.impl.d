lib/jsfront/pos.ml: Format
