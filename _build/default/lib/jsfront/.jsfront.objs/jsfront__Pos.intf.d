lib/jsfront/pos.mli: Format
