lib/jsfront/token.ml: Printf
