lib/jsfront/token.mli:
