(* Abstract syntax of MiniJS, the JavaScript subset executed by the VM.

   The subset covers what the paper's benchmarks exercise: numbers with
   int/double distinction, strings, booleans, null/undefined, arrays,
   object literals, first-class functions and closures, the full C-like
   operator set including JavaScript's ==/=== split, typeof, and
   structured control flow. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Bit_and
  | Bit_or
  | Bit_xor
  | Shl
  | Shr
  | Ushr

type cmp = Lt | Le | Gt | Ge | Eq | Neq | Strict_eq | Strict_neq

type unop = Neg | Not | Bit_not | Typeof | To_number

type update_op = Incr | Decr

type expr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null
  | Undefined
  | Var of string
  | Binop of binop * expr * expr
  | Cmp of cmp * expr * expr
  | Unop of unop * expr
  | And of expr * expr
  | Or of expr * expr
  | Cond of expr * expr * expr
  | Assign of lhs * expr
  | Op_assign of binop * lhs * expr
  | Update of update_op * bool * lhs  (* op, prefix?, target *)
  | Call of expr * expr list
  | Method_call of expr * string * expr list
  | Index of expr * expr
  | Prop of expr * string
  | Array_lit of expr list
  | Object_lit of (string * expr) list
  | Func of func
  | New of string * expr list

and lhs = L_var of string | L_index of expr * expr | L_prop of expr * string

and stmt =
  | Expr_stmt of expr
  | Var_decl of (string * expr option) list
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt option * expr option * expr option * stmt list
  | For_in of string * expr * stmt list
      (* enumeration variable, object expression, body; the variable is
         declared in the enclosing function scope, as [var] would *)
  | Return of expr option
  | Break
  | Continue
  | Switch of expr * (expr option * stmt list) list
      (* discriminant, cases in source order; None = default clause *)
  | Func_decl of func
  | Block of stmt list

and func = { name : string option; params : string list; body : stmt list; fpos : Pos.t }

type program = stmt list

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Bit_and -> "&"
  | Bit_or -> "|"
  | Bit_xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Ushr -> ">>>"

let cmp_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Neq -> "!="
  | Strict_eq -> "==="
  | Strict_neq -> "!=="

let unop_to_string = function
  | Neg -> "-"
  | Not -> "!"
  | Bit_not -> "~"
  | Typeof -> "typeof "
  | To_number -> "+"

let rec pp_expr fmt expr =
  let open Format in
  match expr with
  | Int n -> fprintf fmt "%d" n
  | Float f -> fprintf fmt "%g" f
  | Str s -> fprintf fmt "%S" s
  | Bool b -> fprintf fmt "%b" b
  | Null -> pp_print_string fmt "null"
  | Undefined -> pp_print_string fmt "undefined"
  | Var x -> pp_print_string fmt x
  | Binop (op, a, b) -> fprintf fmt "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | Cmp (op, a, b) -> fprintf fmt "(%a %s %a)" pp_expr a (cmp_to_string op) pp_expr b
  | Unop (op, a) -> fprintf fmt "(%s%a)" (unop_to_string op) pp_expr a
  | And (a, b) -> fprintf fmt "(%a && %a)" pp_expr a pp_expr b
  | Or (a, b) -> fprintf fmt "(%a || %a)" pp_expr a pp_expr b
  | Cond (c, t, e) -> fprintf fmt "(%a ? %a : %a)" pp_expr c pp_expr t pp_expr e
  | Assign (l, e) -> fprintf fmt "%a = %a" pp_lhs l pp_expr e
  | Op_assign (op, l, e) -> fprintf fmt "%a %s= %a" pp_lhs l (binop_to_string op) pp_expr e
  | Update (Incr, true, l) -> fprintf fmt "++%a" pp_lhs l
  | Update (Incr, false, l) -> fprintf fmt "%a++" pp_lhs l
  | Update (Decr, true, l) -> fprintf fmt "--%a" pp_lhs l
  | Update (Decr, false, l) -> fprintf fmt "%a--" pp_lhs l
  | Call (f, args) -> fprintf fmt "%a(%a)" pp_expr f pp_args args
  | Method_call (o, m, args) -> fprintf fmt "%a.%s(%a)" pp_expr o m pp_args args
  | Index (a, i) -> fprintf fmt "%a[%a]" pp_expr a pp_expr i
  | Prop (o, p) -> fprintf fmt "%a.%s" pp_expr o p
  | Array_lit es -> fprintf fmt "[%a]" pp_args es
  | Object_lit fields ->
    fprintf fmt "{%a}"
      (pp_print_list
         ~pp_sep:(fun fmt () -> pp_print_string fmt ", ")
         (fun fmt (k, v) -> fprintf fmt "%s: %a" k pp_expr v))
      fields
  | Func f ->
    fprintf fmt "function %s(%s) {...}"
      (Option.value f.name ~default:"")
      (String.concat ", " f.params)
  | New (ctor, args) -> fprintf fmt "new %s(%a)" ctor pp_args args

and pp_args fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_expr fmt args

and pp_lhs fmt = function
  | L_var x -> Format.pp_print_string fmt x
  | L_index (a, i) -> Format.fprintf fmt "%a[%a]" pp_expr a pp_expr i
  | L_prop (o, p) -> Format.fprintf fmt "%a.%s" pp_expr o p

let expr_to_string e = Format.asprintf "%a" pp_expr e
