exception Error of Pos.t * string

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let here st = { Pos.line = st.line; col = st.col }
let fail st msg = raise (Error (here st, msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || is_digit c

let keyword_of_string = function
  | "function" -> Some Token.Kw_function
  | "var" -> Some Token.Kw_var
  | "if" -> Some Token.Kw_if
  | "else" -> Some Token.Kw_else
  | "while" -> Some Token.Kw_while
  | "do" -> Some Token.Kw_do
  | "for" -> Some Token.Kw_for
  | "return" -> Some Token.Kw_return
  | "break" -> Some Token.Kw_break
  | "continue" -> Some Token.Kw_continue
  | "true" -> Some Token.Kw_true
  | "false" -> Some Token.Kw_false
  | "null" -> Some Token.Kw_null
  | "undefined" -> Some Token.Kw_undefined
  | "in" -> Some Token.Kw_in
  | "typeof" -> Some Token.Kw_typeof
  | "new" -> Some Token.Kw_new
  | "switch" -> Some Token.Kw_switch
  | "case" -> Some Token.Kw_case
  | "default" -> Some Token.Kw_default
  | _ -> None

let skip_line_comment st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some '\n' | None -> continue := false
    | Some _ -> advance st
  done

let skip_block_comment st =
  let start = here st in
  let continue = ref true in
  while !continue do
    match (peek st, peek2 st) with
    | Some '*', Some '/' ->
      advance st;
      advance st;
      continue := false
    | Some _, _ -> advance st
    | None, _ -> raise (Error (start, "unterminated block comment"))
  done

let lex_number st =
  let start = st.pos in
  let hex =
    match (peek st, peek2 st) with
    | Some '0', Some ('x' | 'X') ->
      advance st;
      advance st;
      true
    | _ -> false
  in
  if hex then begin
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    Token.Int (int_of_string text)
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let is_float = ref false in
    (match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c ->
      is_float := true;
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
    | _ -> ());
    (match peek st with
    | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
    | _ -> ());
    let text = String.sub st.src start (st.pos - start) in
    if !is_float then Token.Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some n -> Token.Int n
      | None -> Token.Float (float_of_string text)
  end

let lex_string st quote =
  let start = here st in
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> raise (Error (start, "unterminated string literal"))
    | Some c when c = quote -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> raise (Error (start, "unterminated escape"))
      | Some e ->
        advance st;
        let decoded =
          match e with
          | 'n' -> '\n'
          | 't' -> '\t'
          | 'r' -> '\r'
          | '0' -> '\000'
          | '\\' -> '\\'
          | '\'' -> '\''
          | '"' -> '"'
          | other -> other
        in
        Buffer.add_char buf decoded);
      loop ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Token.String (Buffer.contents buf)

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match keyword_of_string text with Some kw -> kw | None -> Token.Ident text

(* Operator lexing: longest match first. *)
let lex_operator st =
  let two = Token.[
    ("+=", Plus_assign); ("-=", Minus_assign); ("*=", Star_assign);
    ("/=", Slash_assign); ("%=", Percent_assign); ("==", Eq_eq);
    ("!=", Bang_eq); ("<=", Le); (">=", Ge); ("&&", Amp_amp);
    ("||", Pipe_pipe); ("++", Plus_plus); ("--", Minus_minus);
    ("<<", Shl); (">>", Shr); ("&=", Amp_assign); ("|=", Pipe_assign);
    ("^=", Caret_assign);
  ]
  in
  let four = Token.[ (">>>=", Ushr_assign) ] in
  let three =
    Token.[ ("===", Eq_eq_eq); ("!==", Bang_eq_eq); (">>>", Ushr); ("<<=", Shl_assign); (">>=", Shr_assign) ]
  in
  let matches s =
    let n = String.length s in
    st.pos + n <= String.length st.src && String.sub st.src st.pos n = s
  in
  let take n tok =
    for _ = 1 to n do
      advance st
    done;
    tok
  in
  match List.find_opt (fun (s, _) -> matches s) four with
  | Some (_, tok) -> take 4 tok
  | None -> (
  match List.find_opt (fun (s, _) -> matches s) three with
  | Some (_, tok) -> take 3 tok
  | None -> (
    match List.find_opt (fun (s, _) -> matches s) two with
    | Some (_, tok) -> take 2 tok
    | None -> (
      let single =
        match peek st with
        | Some '(' -> Some Token.Lparen
        | Some ')' -> Some Token.Rparen
        | Some '{' -> Some Token.Lbrace
        | Some '}' -> Some Token.Rbrace
        | Some '[' -> Some Token.Lbracket
        | Some ']' -> Some Token.Rbracket
        | Some ',' -> Some Token.Comma
        | Some ';' -> Some Token.Semi
        | Some '.' -> Some Token.Dot
        | Some ':' -> Some Token.Colon
        | Some '?' -> Some Token.Question
        | Some '=' -> Some Token.Assign
        | Some '+' -> Some Token.Plus
        | Some '-' -> Some Token.Minus
        | Some '*' -> Some Token.Star
        | Some '/' -> Some Token.Slash
        | Some '%' -> Some Token.Percent
        | Some '<' -> Some Token.Lt
        | Some '>' -> Some Token.Gt
        | Some '!' -> Some Token.Bang
        | Some '&' -> Some Token.Amp
        | Some '|' -> Some Token.Pipe
        | Some '^' -> Some Token.Caret
        | Some '~' -> Some Token.Tilde
        | Some _ | None -> None
      in
      match single with
      | Some tok -> take 1 tok
      | None ->
        fail st
          (Printf.sprintf "unexpected character %C"
             (Option.value (peek st) ~default:'?')))))

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let rec loop () =
    match peek st with
    | None -> emit Token.Eof (here st)
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      loop ()
    | Some '/' when peek2 st = Some '/' ->
      skip_line_comment st;
      loop ()
    | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      skip_block_comment st;
      loop ()
    | Some c ->
      let pos = here st in
      let tok =
        if is_digit c then lex_number st
        else if c = '"' || c = '\'' then lex_string st c
        else if is_ident_start c then lex_ident st
        else lex_operator st
      in
      emit tok pos;
      loop ()
  in
  loop ();
  List.rev !tokens
