(** Hand-written lexer for MiniJS.

    Supports decimal and hexadecimal integer literals, floating-point
    literals, single- and double-quoted strings with the common escapes,
    line ([//]) and block ([/* */]) comments. *)

exception Error of Pos.t * string

val tokenize : string -> (Token.t * Pos.t) list
(** Tokenize a whole source string. The final element is always [Eof].
    @raise Error on malformed input. *)
