exception Error of Pos.t * string

type state = { tokens : (Token.t * Pos.t) array; mutable index : int }

let current st = fst st.tokens.(st.index)
let current_pos st = snd st.tokens.(st.index)

let fail st msg =
  raise
    (Error
       ( current_pos st,
         Printf.sprintf "%s (found %s)" msg (Token.to_string (current st)) ))

let advance st = if st.index < Array.length st.tokens - 1 then st.index <- st.index + 1

let eat st tok =
  if current st = tok then advance st
  else fail st (Printf.sprintf "expected %s" (Token.to_string tok))

let accept st tok =
  if current st = tok then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match current st with
  | Token.Ident name ->
    advance st;
    name
  | _ -> fail st "expected identifier"

(* Convert an expression to an assignable left-hand side. *)
let lhs_of_expr st = function
  | Ast.Var x -> Ast.L_var x
  | Ast.Index (a, i) -> Ast.L_index (a, i)
  | Ast.Prop (o, p) -> Ast.L_prop (o, p)
  | _ -> fail st "invalid assignment target"

let rec parse_expr st = parse_assignment st

and parse_assignment st =
  let left = parse_conditional st in
  let op_assign op =
    advance st;
    let rhs = parse_assignment st in
    Ast.Op_assign (op, lhs_of_expr st left, rhs)
  in
  match current st with
  | Token.Assign ->
    advance st;
    let rhs = parse_assignment st in
    Ast.Assign (lhs_of_expr st left, rhs)
  | Token.Plus_assign -> op_assign Ast.Add
  | Token.Minus_assign -> op_assign Ast.Sub
  | Token.Star_assign -> op_assign Ast.Mul
  | Token.Slash_assign -> op_assign Ast.Div
  | Token.Percent_assign -> op_assign Ast.Mod
  | Token.Amp_assign -> op_assign Ast.Bit_and
  | Token.Pipe_assign -> op_assign Ast.Bit_or
  | Token.Caret_assign -> op_assign Ast.Bit_xor
  | Token.Shl_assign -> op_assign Ast.Shl
  | Token.Shr_assign -> op_assign Ast.Shr
  | Token.Ushr_assign -> op_assign Ast.Ushr
  | _ -> left

and parse_conditional st =
  let cond = parse_or st in
  if accept st Token.Question then begin
    let then_e = parse_assignment st in
    eat st Token.Colon;
    let else_e = parse_assignment st in
    Ast.Cond (cond, then_e, else_e)
  end
  else cond

and parse_or st =
  let rec loop left =
    if accept st Token.Pipe_pipe then loop (Ast.Or (left, parse_and st)) else left
  in
  loop (parse_and st)

and parse_and st =
  let rec loop left =
    if accept st Token.Amp_amp then loop (Ast.And (left, parse_bitor st)) else left
  in
  loop (parse_bitor st)

and parse_bitor st =
  let rec loop left =
    if accept st Token.Pipe then loop (Ast.Binop (Ast.Bit_or, left, parse_bitxor st))
    else left
  in
  loop (parse_bitxor st)

and parse_bitxor st =
  let rec loop left =
    if accept st Token.Caret then loop (Ast.Binop (Ast.Bit_xor, left, parse_bitand st))
    else left
  in
  loop (parse_bitand st)

and parse_bitand st =
  let rec loop left =
    if accept st Token.Amp then loop (Ast.Binop (Ast.Bit_and, left, parse_equality st))
    else left
  in
  loop (parse_equality st)

and parse_equality st =
  let rec loop left =
    match current st with
    | Token.Eq_eq ->
      advance st;
      loop (Ast.Cmp (Ast.Eq, left, parse_relational st))
    | Token.Bang_eq ->
      advance st;
      loop (Ast.Cmp (Ast.Neq, left, parse_relational st))
    | Token.Eq_eq_eq ->
      advance st;
      loop (Ast.Cmp (Ast.Strict_eq, left, parse_relational st))
    | Token.Bang_eq_eq ->
      advance st;
      loop (Ast.Cmp (Ast.Strict_neq, left, parse_relational st))
    | _ -> left
  in
  loop (parse_relational st)

and parse_relational st =
  let rec loop left =
    match current st with
    | Token.Lt ->
      advance st;
      loop (Ast.Cmp (Ast.Lt, left, parse_shift st))
    | Token.Le ->
      advance st;
      loop (Ast.Cmp (Ast.Le, left, parse_shift st))
    | Token.Gt ->
      advance st;
      loop (Ast.Cmp (Ast.Gt, left, parse_shift st))
    | Token.Ge ->
      advance st;
      loop (Ast.Cmp (Ast.Ge, left, parse_shift st))
    | _ -> left
  in
  loop (parse_shift st)

and parse_shift st =
  let rec loop left =
    match current st with
    | Token.Shl ->
      advance st;
      loop (Ast.Binop (Ast.Shl, left, parse_additive st))
    | Token.Shr ->
      advance st;
      loop (Ast.Binop (Ast.Shr, left, parse_additive st))
    | Token.Ushr ->
      advance st;
      loop (Ast.Binop (Ast.Ushr, left, parse_additive st))
    | _ -> left
  in
  loop (parse_additive st)

and parse_additive st =
  let rec loop left =
    match current st with
    | Token.Plus ->
      advance st;
      loop (Ast.Binop (Ast.Add, left, parse_multiplicative st))
    | Token.Minus ->
      advance st;
      loop (Ast.Binop (Ast.Sub, left, parse_multiplicative st))
    | _ -> left
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop left =
    match current st with
    | Token.Star ->
      advance st;
      loop (Ast.Binop (Ast.Mul, left, parse_unary st))
    | Token.Slash ->
      advance st;
      loop (Ast.Binop (Ast.Div, left, parse_unary st))
    | Token.Percent ->
      advance st;
      loop (Ast.Binop (Ast.Mod, left, parse_unary st))
    | _ -> left
  in
  loop (parse_unary st)

and parse_unary st =
  match current st with
  | Token.Minus ->
    advance st;
    (* Fold unary minus into numeric literals so -5 parses as a constant. *)
    (match parse_unary st with
    | Ast.Int n -> Ast.Int (-n)
    | Ast.Float f -> Ast.Float (-.f)
    | e -> Ast.Unop (Ast.Neg, e))
  | Token.Plus ->
    advance st;
    Ast.Unop (Ast.To_number, parse_unary st)
  | Token.Bang ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | Token.Tilde ->
    advance st;
    Ast.Unop (Ast.Bit_not, parse_unary st)
  | Token.Kw_typeof ->
    advance st;
    Ast.Unop (Ast.Typeof, parse_unary st)
  | Token.Plus_plus ->
    advance st;
    let e = parse_unary st in
    Ast.Update (Ast.Incr, true, lhs_of_expr st e)
  | Token.Minus_minus ->
    advance st;
    let e = parse_unary st in
    Ast.Update (Ast.Decr, true, lhs_of_expr st e)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_call_chain st in
  match current st with
  | Token.Plus_plus ->
    advance st;
    Ast.Update (Ast.Incr, false, lhs_of_expr st e)
  | Token.Minus_minus ->
    advance st;
    Ast.Update (Ast.Decr, false, lhs_of_expr st e)
  | _ -> e

and parse_call_chain st =
  let rec loop e =
    match current st with
    | Token.Lparen ->
      let args = parse_arguments st in
      (match e with
      | Ast.Prop (obj, name) -> loop (Ast.Method_call (obj, name, args))
      | _ -> loop (Ast.Call (e, args)))
    | Token.Lbracket ->
      advance st;
      let idx = parse_expr st in
      eat st Token.Rbracket;
      loop (Ast.Index (e, idx))
    | Token.Dot ->
      advance st;
      let name = expect_ident st in
      loop (Ast.Prop (e, name))
    | _ -> e
  in
  loop (parse_primary st)

and parse_arguments st =
  eat st Token.Lparen;
  if accept st Token.Rparen then []
  else begin
    let rec loop acc =
      let arg = parse_assignment st in
      if accept st Token.Comma then loop (arg :: acc)
      else begin
        eat st Token.Rparen;
        List.rev (arg :: acc)
      end
    in
    loop []
  end

and parse_primary st =
  match current st with
  | Token.Int n ->
    advance st;
    Ast.Int n
  | Token.Float f ->
    advance st;
    Ast.Float f
  | Token.String s ->
    advance st;
    Ast.Str s
  | Token.Kw_true ->
    advance st;
    Ast.Bool true
  | Token.Kw_false ->
    advance st;
    Ast.Bool false
  | Token.Kw_null ->
    advance st;
    Ast.Null
  | Token.Kw_undefined ->
    advance st;
    Ast.Undefined
  | Token.Ident name ->
    advance st;
    Ast.Var name
  | Token.Lparen ->
    advance st;
    let e = parse_expr st in
    eat st Token.Rparen;
    e
  | Token.Lbracket ->
    advance st;
    if accept st Token.Rbracket then Ast.Array_lit []
    else begin
      let rec loop acc =
        let e = parse_assignment st in
        if accept st Token.Comma then loop (e :: acc)
        else begin
          eat st Token.Rbracket;
          List.rev (e :: acc)
        end
      in
      Ast.Array_lit (loop [])
    end
  | Token.Lbrace ->
    advance st;
    if accept st Token.Rbrace then Ast.Object_lit []
    else begin
      let parse_field () =
        let key =
          match current st with
          | Token.Ident name ->
            advance st;
            name
          | Token.String s ->
            advance st;
            s
          | _ -> fail st "expected property name"
        in
        eat st Token.Colon;
        let value = parse_assignment st in
        (key, value)
      in
      let rec loop acc =
        let field = parse_field () in
        if accept st Token.Comma then loop (field :: acc)
        else begin
          eat st Token.Rbrace;
          List.rev (field :: acc)
        end
      in
      Ast.Object_lit (loop [])
    end
  | Token.Kw_function ->
    let f = parse_function st ~require_name:false in
    Ast.Func f
  | Token.Kw_new ->
    advance st;
    let ctor = expect_ident st in
    let args = if current st = Token.Lparen then parse_arguments st else [] in
    Ast.New (ctor, args)
  | _ -> fail st "expected expression"

and parse_function st ~require_name =
  let fpos = current_pos st in
  eat st Token.Kw_function;
  let name =
    match current st with
    | Token.Ident n ->
      advance st;
      Some n
    | _ -> if require_name then fail st "expected function name" else None
  in
  eat st Token.Lparen;
  let params =
    if accept st Token.Rparen then []
    else begin
      let rec loop acc =
        let p = expect_ident st in
        if accept st Token.Comma then loop (p :: acc)
        else begin
          eat st Token.Rparen;
          List.rev (p :: acc)
        end
      in
      loop []
    end
  in
  eat st Token.Lbrace;
  let body = parse_statements_until st Token.Rbrace in
  eat st Token.Rbrace;
  { Ast.name; params; body; fpos }

and parse_statements_until st stop =
  let rec loop acc =
    if current st = stop || current st = Token.Eof then List.rev acc
    else loop (parse_statement st :: acc)
  in
  loop []

and parse_statement st =
  match current st with
  | Token.Kw_function -> Ast.Func_decl (parse_function st ~require_name:true)
  | Token.Kw_var ->
    advance st;
    let decl = parse_var_declarators st in
    eat st Token.Semi;
    decl
  | Token.Kw_if ->
    advance st;
    eat st Token.Lparen;
    let cond = parse_expr st in
    eat st Token.Rparen;
    let then_branch = parse_branch st in
    let else_branch = if accept st Token.Kw_else then parse_branch st else [] in
    Ast.If (cond, then_branch, else_branch)
  | Token.Kw_while ->
    advance st;
    eat st Token.Lparen;
    let cond = parse_expr st in
    eat st Token.Rparen;
    Ast.While (cond, parse_branch st)
  | Token.Kw_do ->
    advance st;
    let body = parse_branch st in
    eat st Token.Kw_while;
    eat st Token.Lparen;
    let cond = parse_expr st in
    eat st Token.Rparen;
    eat st Token.Semi;
    Ast.Do_while (body, cond)
  | Token.Kw_for ->
    advance st;
    eat st Token.Lparen;
    (* Distinguish for-in from the three-clause form by lookahead:
       `for ([var] IDENT in ...)`. *)
    let peek k =
      let i = min (st.index + k) (Array.length st.tokens - 1) in
      fst st.tokens.(i)
    in
    let forin_var =
      match (current st, peek 1, peek 2) with
      | Token.Kw_var, Token.Ident name, Token.Kw_in ->
        advance st;
        advance st;
        advance st;
        Some name
      | Token.Ident name, Token.Kw_in, _ ->
        advance st;
        advance st;
        Some name
      | _ -> None
    in
    (match forin_var with
    | Some name ->
      let obj = parse_expr st in
      eat st Token.Rparen;
      Ast.For_in (name, obj, parse_branch st)
    | None ->
    let init =
      if current st = Token.Semi then None
      else if current st = Token.Kw_var then begin
        advance st;
        Some (parse_var_declarators st)
      end
      else Some (Ast.Expr_stmt (parse_expr st))
    in
    eat st Token.Semi;
    let cond = if current st = Token.Semi then None else Some (parse_expr st) in
    eat st Token.Semi;
    let step = if current st = Token.Rparen then None else Some (parse_expr st) in
    eat st Token.Rparen;
    Ast.For (init, cond, step, parse_branch st))
  | Token.Kw_switch ->
    advance st;
    eat st Token.Lparen;
    let disc = parse_expr st in
    eat st Token.Rparen;
    eat st Token.Lbrace;
    let rec parse_cases acc =
      match current st with
      | Token.Rbrace ->
        advance st;
        List.rev acc
      | Token.Kw_case ->
        advance st;
        let test = parse_expr st in
        eat st Token.Colon;
        let body = parse_case_body st in
        parse_cases ((Some test, body) :: acc)
      | Token.Kw_default ->
        advance st;
        eat st Token.Colon;
        let body = parse_case_body st in
        parse_cases ((None, body) :: acc)
      | _ -> fail st "expected case, default or }"
    in
    Ast.Switch (disc, parse_cases [])
  | Token.Kw_return ->
    advance st;
    if accept st Token.Semi then Ast.Return None
    else begin
      let e = parse_expr st in
      eat st Token.Semi;
      Ast.Return (Some e)
    end
  | Token.Kw_break ->
    advance st;
    eat st Token.Semi;
    Ast.Break
  | Token.Kw_continue ->
    advance st;
    eat st Token.Semi;
    Ast.Continue
  | Token.Lbrace ->
    advance st;
    let body = parse_statements_until st Token.Rbrace in
    eat st Token.Rbrace;
    Ast.Block body
  | Token.Semi ->
    advance st;
    Ast.Block []
  | _ ->
    let e = parse_expr st in
    eat st Token.Semi;
    Ast.Expr_stmt e

and parse_case_body st =
  let rec loop acc =
    match current st with
    | Token.Kw_case | Token.Kw_default | Token.Rbrace -> List.rev acc
    | _ -> loop (parse_statement st :: acc)
  in
  loop []

and parse_var_declarators st =
  let parse_one () =
    let name = expect_ident st in
    let init = if accept st Token.Assign then Some (parse_assignment st) else None in
    (name, init)
  in
  let rec loop acc =
    let d = parse_one () in
    if accept st Token.Comma then loop (d :: acc) else List.rev (d :: acc)
  in
  Ast.Var_decl (loop [])

and parse_branch st =
  if accept st Token.Lbrace then begin
    let body = parse_statements_until st Token.Rbrace in
    eat st Token.Rbrace;
    body
  end
  else [ parse_statement st ]

let make_state src =
  { tokens = Array.of_list (Lexer.tokenize src); index = 0 }

let parse_program src =
  let st = make_state src in
  let stmts = parse_statements_until st Token.Eof in
  if current st <> Token.Eof then fail st "trailing tokens";
  stmts

let parse_expression src =
  let st = make_state src in
  let e = parse_expr st in
  if current st <> Token.Eof then fail st "trailing tokens after expression";
  e
