(** Recursive-descent parser for MiniJS.

    The grammar is the C-like expression grammar of JavaScript restricted to
    the constructs in {!Ast}: precedence climbing over
    [?: || && | ^ & ==/!=/===/!== relational shifts additive multiplicative
    unary postfix primary]. Statements require their terminating semicolon
    (no automatic semicolon insertion). *)

exception Error of Pos.t * string

val parse_program : string -> Ast.program
(** Parse a full MiniJS source string.
    @raise Error on syntax errors, and re-raises {!Lexer.Error}. *)

val parse_expression : string -> Ast.expr
(** Parse a single expression (used by tests). *)
