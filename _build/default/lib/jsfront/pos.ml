type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let pp fmt { line; col } = Format.fprintf fmt "%d:%d" line col
let to_string p = Format.asprintf "%a" pp p
