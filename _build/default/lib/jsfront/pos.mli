(** Source positions for MiniJS programs. *)

type t = { line : int; col : int }

val dummy : t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
