type t =
  | Int of int
  | Float of float
  | String of string
  | Ident of string
  | Kw_function
  | Kw_var
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_do
  | Kw_for
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_true
  | Kw_false
  | Kw_null
  | Kw_undefined
  | Kw_in
  | Kw_typeof
  | Kw_new
  | Kw_switch
  | Kw_case
  | Kw_default
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semi
  | Dot
  | Colon
  | Question
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Percent_assign
  | Amp_assign
  | Pipe_assign
  | Caret_assign
  | Shl_assign
  | Shr_assign
  | Ushr_assign
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Plus_plus
  | Minus_minus
  | Eq_eq
  | Bang_eq
  | Eq_eq_eq
  | Bang_eq_eq
  | Lt
  | Le
  | Gt
  | Ge
  | Amp_amp
  | Pipe_pipe
  | Bang
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Shl
  | Shr
  | Ushr
  | Eof

let to_string = function
  | Int n -> string_of_int n
  | Float f -> string_of_float f
  | String s -> Printf.sprintf "%S" s
  | Ident s -> s
  | Kw_function -> "function"
  | Kw_var -> "var"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_while -> "while"
  | Kw_do -> "do"
  | Kw_for -> "for"
  | Kw_return -> "return"
  | Kw_break -> "break"
  | Kw_continue -> "continue"
  | Kw_true -> "true"
  | Kw_false -> "false"
  | Kw_null -> "null"
  | Kw_undefined -> "undefined"
  | Kw_in -> "in"
  | Kw_typeof -> "typeof"
  | Kw_new -> "new"
  | Kw_switch -> "switch"
  | Kw_case -> "case"
  | Kw_default -> "default"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Comma -> ","
  | Semi -> ";"
  | Dot -> "."
  | Colon -> ":"
  | Question -> "?"
  | Assign -> "="
  | Plus_assign -> "+="
  | Minus_assign -> "-="
  | Star_assign -> "*="
  | Slash_assign -> "/="
  | Percent_assign -> "%="
  | Amp_assign -> "&="
  | Pipe_assign -> "|="
  | Caret_assign -> "^="
  | Shl_assign -> "<<="
  | Shr_assign -> ">>="
  | Ushr_assign -> ">>>="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Plus_plus -> "++"
  | Minus_minus -> "--"
  | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Eq_eq_eq -> "==="
  | Bang_eq_eq -> "!=="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Amp_amp -> "&&"
  | Pipe_pipe -> "||"
  | Bang -> "!"
  | Amp -> "&"
  | Pipe -> "|"
  | Caret -> "^"
  | Tilde -> "~"
  | Shl -> "<<"
  | Shr -> ">>"
  | Ushr -> ">>>"
  | Eof -> "<eof>"
