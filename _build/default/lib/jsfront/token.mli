(** Lexical tokens of MiniJS. *)

type t =
  | Int of int
  | Float of float
  | String of string
  | Ident of string
  (* Keywords *)
  | Kw_function
  | Kw_var
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_do
  | Kw_for
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_true
  | Kw_false
  | Kw_null
  | Kw_undefined
  | Kw_in
  | Kw_typeof
  | Kw_new
  | Kw_switch
  | Kw_case
  | Kw_default
  (* Punctuation *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semi
  | Dot
  | Colon
  | Question
  (* Operators *)
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Percent_assign
  | Amp_assign
  | Pipe_assign
  | Caret_assign
  | Shl_assign
  | Shr_assign
  | Ushr_assign
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Plus_plus
  | Minus_minus
  | Eq_eq
  | Bang_eq
  | Eq_eq_eq
  | Bang_eq_eq
  | Lt
  | Le
  | Gt
  | Ge
  | Amp_amp
  | Pipe_pipe
  | Bang
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Shl
  | Shr
  | Ushr
  | Eof

val to_string : t -> string
