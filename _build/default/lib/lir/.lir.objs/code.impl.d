lib/lir/code.ml: Array Buffer Bytecode Format Mir Ops Printf Runtime String Value
