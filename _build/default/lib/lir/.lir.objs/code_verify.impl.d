lib/lir/code_verify.ml: Array Code Int List Option Printf Queue Regalloc Set
