lib/lir/code_verify.ml: Array Code Diag Int List Option Printf Queue Regalloc Set
