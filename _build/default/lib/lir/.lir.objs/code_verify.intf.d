lib/lir/code_verify.mli: Code
