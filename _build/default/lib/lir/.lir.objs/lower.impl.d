lib/lir/lower.ml: Array Bytecode Code Hashtbl List Mir Option Runtime Value
