lib/lir/lower.mli: Code Mir
