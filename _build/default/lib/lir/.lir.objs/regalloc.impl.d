lib/lir/regalloc.ml: Array Code Hashtbl Int List Option Set
