lib/lir/regalloc.mli: Code
