(** Lowering from MIR to (virtual-register) LIR.

    Linearizes the graph in reverse postorder, eliminates phis into
    parallel-move sequences on the incoming edges (splitting critical edges
    with move stubs), inlines constants into operands and snapshot maps —
    which is why specialized code shrinks: a constant needs no instruction
    at all — and compiles resume points into snapshot location maps. The
    result still uses virtual registers ([Code.V]); {!Regalloc.run} maps
    them onto the physical register file. *)

val run : Mir.func -> Code.t
