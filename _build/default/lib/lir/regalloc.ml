let num_registers = 12

module Int_set = Set.Make (Int)

(* Uses and the (optional) def of one instruction, as virtual registers. *)
let instr_uses (code : Code.t) (n : Code.ninstr) =
  let of_src acc = function Code.L (Code.V d) -> d :: acc | _ -> acc in
  match n with
  | Code.Op { args; snap; _ } ->
    let base = Array.fold_left of_src [] args in
    (match snap with
    | None -> base
    | Some id ->
      let s = code.Code.snapshots.(id) in
      let all = Array.concat [ s.Code.sn_args; s.Code.sn_locals; s.Code.sn_stack ] in
      Array.fold_left of_src base all)
  | Code.Branch (c, _, _) -> of_src [] c
  | Code.Ret s -> of_src [] s
  | Code.Jump _ -> []

let instr_def (n : Code.ninstr) =
  match n with
  | Code.Op { dst = Some (Code.V d); _ } -> Some d
  | Code.Op _ | Code.Jump _ | Code.Branch _ | Code.Ret _ -> None

let successors_of (code : Code.t) i =
  match code.Code.instrs.(i) with
  | Code.Jump t -> [ t ]
  | Code.Branch (_, a, b) -> [ a; b ]
  | Code.Ret _ -> []
  | Code.Op _ -> if i + 1 < Array.length code.Code.instrs then [ i + 1 ] else []

(* Linear blocks of the flattened code. *)
let linear_blocks (code : Code.t) =
  let n = Array.length code.Code.instrs in
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(0) <- true;
  Option.iter (fun o -> leader.(o) <- true) code.Code.osr_offset;
  Array.iteri
    (fun i instr ->
      match instr with
      | Code.Jump t ->
        leader.(t) <- true;
        if i + 1 < n then leader.(i + 1) <- true
      | Code.Branch (_, a, b) ->
        leader.(a) <- true;
        leader.(b) <- true;
        if i + 1 < n then leader.(i + 1) <- true
      | Code.Ret _ -> if i + 1 < n then leader.(i + 1) <- true
      | Code.Op _ -> ())
    code.Code.instrs;
  let starts = ref [] in
  for i = n - 1 downto 0 do
    if leader.(i) then starts := i :: !starts
  done;
  let starts = !starts in
  let ends =
    match starts with
    | [] -> []
    | _ :: rest -> List.map (fun s -> s) rest @ [ n ]
  in
  List.combine starts ends

let run (code : Code.t) =
  let n = Array.length code.Code.instrs in
  let blocks = linear_blocks code in
  let block_of = Hashtbl.create 16 in
  List.iteri (fun idx span -> Hashtbl.replace block_of idx span) blocks;
  (* Per-block use/def. *)
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  let block_starts = List.map fst blocks in
  let start_of_block_at = Hashtbl.create 16 in
  List.iter (fun (s, e) -> Hashtbl.replace start_of_block_at s (s, e)) blocks;
  let block_succs (_s, e) =
    if e = 0 then []
    else
      List.filter_map
        (fun t -> Option.map fst (Hashtbl.find_opt start_of_block_at t))
        (successors_of code (e - 1))
  in
  let gen_kill (s, e) =
    let gen = ref Int_set.empty and kill = ref Int_set.empty in
    for i = s to e - 1 do
      List.iter
        (fun u -> if not (Int_set.mem u !kill) then gen := Int_set.add u !gen)
        (instr_uses code code.Code.instrs.(i));
      Option.iter (fun d -> kill := Int_set.add d !kill) (instr_def code.Code.instrs.(i))
    done;
    (!gen, !kill)
  in
  let gk = List.map (fun span -> (fst span, (span, gen_kill span))) blocks in
  let gk_tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace gk_tbl k v) gk;
  let get_in s = Option.value (Hashtbl.find_opt live_in s) ~default:Int_set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        let span, (gen, kill) = Hashtbl.find gk_tbl s in
        let out =
          List.fold_left
            (fun acc succ -> Int_set.union acc (get_in succ))
            Int_set.empty (block_succs span)
        in
        let inn = Int_set.union gen (Int_set.diff out kill) in
        if not (Int_set.equal inn (get_in s)) then begin
          Hashtbl.replace live_in s inn;
          changed := true
        end;
        Hashtbl.replace live_out s out)
      (List.rev block_starts)
  done;
  (* Intervals. *)
  let starts = Hashtbl.create 64 and ends = Hashtbl.create 64 in
  let touch v pos =
    (match Hashtbl.find_opt starts v with
    | None -> Hashtbl.replace starts v pos
    | Some s -> if pos < s then Hashtbl.replace starts v pos);
    match Hashtbl.find_opt ends v with
    | None -> Hashtbl.replace ends v pos
    | Some e -> if pos > e then Hashtbl.replace ends v pos
  in
  List.iter
    (fun (s, e) ->
      let inn = get_in s in
      let out = Option.value (Hashtbl.find_opt live_out s) ~default:Int_set.empty in
      Int_set.iter (fun v -> touch v s) inn;
      Int_set.iter (fun v -> touch v (e - 1)) out;
      for i = s to e - 1 do
        List.iter (fun u -> touch u i) (instr_uses code code.Code.instrs.(i));
        Option.iter (fun d -> touch d i) (instr_def code.Code.instrs.(i))
      done)
    blocks;
  let intervals =
    Hashtbl.fold (fun v s acc -> (v, s, Hashtbl.find ends v) :: acc) starts []
    |> List.sort (fun (_, s1, _) (_, s2, _) -> compare s1 s2)
  in
  (* Linear scan. *)
  let assignment : (int, Code.loc) Hashtbl.t = Hashtbl.create 64 in
  let free = ref (List.init num_registers (fun r -> r)) in
  let active = ref [] in  (* (vreg, end, reg), sorted by end *)
  let next_slot = ref 0 in
  let expire pos =
    let expired, live = List.partition (fun (_, e, _) -> e < pos) !active in
    List.iter (fun (_, _, r) -> free := r :: !free) expired;
    active := live
  in
  let insert_active entry =
    let rec ins = function
      | [] -> [ entry ]
      | ((_, e, _) as x) :: rest ->
        let _, e', _ = entry in
        if e' <= e then entry :: x :: rest else x :: ins rest
    in
    active := ins !active
  in
  List.iter
    (fun (v, s, e) ->
      expire s;
      match !free with
      | r :: rest ->
        free := rest;
        Hashtbl.replace assignment v (Code.R r);
        insert_active (v, e, r)
      | [] ->
        (* Spill the interval with the furthest end. *)
        let rec last = function [ x ] -> x | _ :: rest -> last rest | [] -> assert false in
        let v', e', r' = last !active in
        if e' > e then begin
          (* Steal its register; the old interval moves to a slot. *)
          Hashtbl.replace assignment v' (Code.S !next_slot);
          incr next_slot;
          Hashtbl.replace assignment v (Code.R r');
          active := List.filter (fun (x, _, _) -> x <> v') !active;
          insert_active (v, e, r')
        end
        else begin
          Hashtbl.replace assignment v (Code.S !next_slot);
          incr next_slot
        end)
    intervals;
  (* Rewrite. *)
  let map_loc = function
    | Code.V v -> (
      match Hashtbl.find_opt assignment v with
      | Some l -> l
      | None -> Code.R 0 (* defined but never used nor live: park in r0 *))
    | other -> other
  in
  let map_src = function Code.L l -> Code.L (map_loc l) | imm -> imm in
  let map_instr (i : Code.instr) =
    { i with Code.dst = Option.map map_loc i.Code.dst; args = Array.map map_src i.Code.args }
  in
  let instrs =
    Array.map
      (function
        | Code.Op i -> Code.Op (map_instr i)
        | Code.Jump t -> Code.Jump t
        | Code.Branch (c, a, b) -> Code.Branch (map_src c, a, b)
        | Code.Ret s -> Code.Ret (map_src s))
      code.Code.instrs
  in
  let snapshots =
    Array.map
      (fun s ->
        {
          s with
          Code.sn_args = Array.map map_src s.Code.sn_args;
          sn_locals = Array.map map_src s.Code.sn_locals;
          sn_stack = Array.map map_src s.Code.sn_stack;
        })
      code.Code.snapshots
  in
  ignore n;
  ignore block_of;
  ({ code with Code.instrs; snapshots; nslots = !next_slot }, List.length intervals)
