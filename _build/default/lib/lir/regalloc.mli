(** Linear-scan register allocation (Poletto-Sarkar style).

    Maps the virtual registers of lowered code onto a fixed physical
    register file, spilling the interval with the furthest end to stack
    slots under pressure. Intervals are computed from a per-block liveness
    fixpoint, so loop-carried values stay live across their whole loop.
    Snapshot location maps are rewritten along with the instructions.

    The paper notes that parameter specialization "improves the time of the
    register allocator, given that it reduces register pressure
    substantially" — constants become immediates, never occupying a
    register; the compile-cost model charges per interval processed. *)

val num_registers : int
(** Size of the physical register file (x86-64-like general registers). *)

val run : Code.t -> Code.t * int
(** Allocate; returns the rewritten code and the number of intervals
    processed (compile-cost input). The result contains no [Code.V]
    locations. *)
