lib/mir/builder.ml: Array Bytecode Hashtbl List Mir Ops Option Runtime Value
