lib/mir/builder.mli: Bytecode Mir Runtime
