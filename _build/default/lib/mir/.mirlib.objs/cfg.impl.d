lib/mir/cfg.ml: Hashtbl List Mir Option
