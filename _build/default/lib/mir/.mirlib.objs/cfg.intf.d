lib/mir/cfg.mli: Mir
