lib/mir/eval.ml: Array Builtins Bytecode Convert Hashtbl List Mir Objmodel Ops Printf Runtime String Value
