lib/mir/eval.mli: Mir Runtime
