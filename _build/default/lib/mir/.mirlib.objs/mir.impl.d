lib/mir/mir.ml: Array Buffer Builtins Bytecode Format Hashtbl List Ops Option Printf Runtime String Value
