lib/mir/typer.ml: Array Hashtbl List Mir Ops Option Runtime
