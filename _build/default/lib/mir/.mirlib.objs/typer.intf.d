lib/mir/typer.mli: Mir
