lib/mir/verify.ml: Array Cfg Hashtbl List Mir Printf
