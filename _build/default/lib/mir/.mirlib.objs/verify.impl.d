lib/mir/verify.ml: Array Bytecode Cfg Diag Hashtbl List Mir Ops Option Runtime
