lib/mir/verify.mli: Mir
