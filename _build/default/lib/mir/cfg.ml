type dominators = { idom : (int, int) Hashtbl.t; order : int list }

(* Cooper-Harvey-Kennedy iterative dominator computation over RPO. With two
   entry points (function entry + OSR), we add a virtual root (-1) that is
   the parent of both. *)
let virtual_root = -1

let dominators (f : Mir.func) =
  let rpo = Mir.reverse_postorder f in
  let index = Hashtbl.create 16 in
  List.iteri (fun i bid -> Hashtbl.replace index bid i) rpo;
  Hashtbl.replace index virtual_root (-1);
  let idom = Hashtbl.create 16 in
  let entries = Mir.entry_blocks f in
  List.iter (fun e -> Hashtbl.replace idom e virtual_root) entries;
  Hashtbl.replace idom virtual_root virtual_root;
  let rec intersect a b =
    if a = b then a
    else
      let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
      if ia > ib then intersect (Hashtbl.find idom a) b
      else intersect a (Hashtbl.find idom b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun bid ->
        if not (List.mem bid entries) then begin
          let preds =
            List.filter (fun p -> Hashtbl.mem idom p) (Mir.block f bid).Mir.preds
          in
          match preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if Hashtbl.find_opt idom bid <> Some new_idom then begin
              Hashtbl.replace idom bid new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { idom; order = rpo }

let immediate_dominator doms bid =
  match Hashtbl.find_opt doms.idom bid with
  | Some d when d <> virtual_root -> Some d
  | _ -> None

let dominates doms a b =
  let rec walk x = if x = a then true else if x = virtual_root then false else walk (Hashtbl.find doms.idom x) in
  (match Hashtbl.find_opt doms.idom b with None -> false | Some _ -> walk b)

type loop = { header : int; latches : int list; body : int list }

let natural_loops (f : Mir.func) doms =
  let back_edges = ref [] in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      List.iter
        (fun succ -> if dominates doms succ bid then back_edges := (bid, succ) :: !back_edges)
        (Mir.successors b))
    doms.order;
  (* Group back edges by header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let existing = Option.value (Hashtbl.find_opt by_header header) ~default:[] in
      Hashtbl.replace by_header header (latch :: existing))
    !back_edges;
  let loops = ref [] in
  Hashtbl.iter
    (fun header latches ->
      (* Natural loop body: header plus everything that reaches a latch
         without passing through the header. *)
      let body = Hashtbl.create 8 in
      Hashtbl.replace body header true;
      let rec add bid =
        if not (Hashtbl.mem body bid) then begin
          Hashtbl.replace body bid true;
          List.iter add (Mir.block f bid).Mir.preds
        end
      in
      List.iter add latches;
      let body_list = Hashtbl.fold (fun bid _ acc -> bid :: acc) body [] in
      loops := { header; latches; body = List.sort compare body_list } :: !loops)
    by_header;
  List.sort (fun a b -> compare (List.length b.body) (List.length a.body)) !loops

let loop_depth loops bid =
  List.length (List.filter (fun l -> List.mem bid l.body) loops)
