(** Control-flow-graph analyses over {!Mir.func}: dominators and natural
    loops. Used by GVN (dominance-based value reuse), LICM and loop
    inversion. *)

type dominators

val dominators : Mir.func -> dominators

val immediate_dominator : dominators -> int -> int option
(** [None] for entry blocks. *)

val dominates : dominators -> int -> int -> bool
(** [dominates doms a b]: every path from an entry to [b] passes through
    [a]. Reflexive. *)

type loop = {
  header : int;
  latches : int list;  (** sources of back edges into [header] *)
  body : int list;  (** all blocks of the natural loop, including header *)
}

val natural_loops : Mir.func -> dominators -> loop list
(** Natural loops from back edges [t -> h] where [h] dominates [t]. Loops
    sharing a header are merged. Ordered outermost-first (by body size,
    descending). *)

val loop_depth : loop list -> int -> int
(** Number of loops whose body contains the block. *)
