open Runtime

type outcome = Finished of Value.t | Bailed of { pc : int; reason : string }

type env = {
  ev_args : Value.t array;
  ev_env : Value.t ref array;
  ev_cells : Value.t ref array;
  ev_globals : Value.t array;
  ev_call : Value.t -> Value.t array -> Value.t;
  ev_osr_args : Value.t array;
  ev_osr_locals : Value.t array;
}

exception Bail of int * string

let run env (f : Mir.func) ~at_osr =
  let values : (Mir.def, Value.t) Hashtbl.t = Hashtbl.create 128 in
  let get d =
    match Hashtbl.find_opt values d with
    | Some v -> v
    | None ->
      (* Constants may be referenced before their block runs (they are
         location-independent); anything else is a bug in a pass. *)
      (match (Hashtbl.find f.Mir.defs d).Mir.kind with
      | Mir.Constant v -> v
      | _ -> invalid_arg (Printf.sprintf "Eval.run: v%d read before definition" d))
  in
  let set d v = Hashtbl.replace values d v in
  let eval_instr (i : Mir.instr) =
    let bail reason =
      match i.Mir.rp with
      | Some rp -> raise (Bail (rp.Mir.rp_pc, reason))
      | None -> invalid_arg ("Eval.run: guard without rp: " ^ reason)
    in
    let value =
      match i.Mir.kind with
      | Mir.Phi _ -> assert false  (* handled at block entry *)
      | Mir.Parameter k -> Some env.ev_args.(k)
      | Mir.Osr_value (Mir.Osr_arg k) -> Some env.ev_osr_args.(k)
      | Mir.Osr_value (Mir.Osr_local k) -> Some env.ev_osr_locals.(k)
      | Mir.Constant v -> Some v
      | Mir.Box a -> Some (get a)
      | Mir.Type_barrier (a, tag) ->
        let v = get a in
        if Value.tag_of v = tag then Some v else bail "type barrier"
      | Mir.Check_array a -> (
        match get a with Value.Arr _ as v -> Some v | _ -> bail "not an array")
      | Mir.Bounds_check (idx, arr) -> (
        match (get idx, get arr) with
        | Value.Int n, Value.Arr a when n >= 0 && n < a.Value.length -> None
        | _ -> bail "bounds check")
      | Mir.Binop (op, a, b, mode) -> (
        let r = Ops.binop op (get a) (get b) in
        match (mode, r) with
        | Mir.Mode_int, Value.Int _ -> Some r
        | Mir.Mode_int, _ -> bail "int32 overflow"
        | (Mir.Mode_int_nocheck | Mir.Mode_double | Mir.Mode_generic), _ -> Some r)
      | Mir.Cmp (op, a, b) -> Some (Ops.cmp op (get a) (get b))
      | Mir.Unop (op, a) -> Some (Ops.unop op (get a))
      | Mir.To_bool a -> Some (Value.Bool (Convert.to_boolean (get a)))
      | Mir.Load_elem (arr, idx) -> (
        match (get arr, get idx) with
        | Value.Arr a, Value.Int n -> Some (Value.arr_get a n)
        | _ -> invalid_arg "Eval.run: unguarded ld")
      | Mir.Store_elem (arr, idx, v) ->
        (match (get arr, get idx) with
        | Value.Arr a, Value.Int n -> Value.arr_set a n (get v)
        | _ -> invalid_arg "Eval.run: unguarded st");
        None
      | Mir.Elem_generic (a, idx) -> Some (Objmodel.get_elem (get a) (get idx))
      | Mir.Store_elem_generic (a, idx, v) ->
        Objmodel.set_elem (get a) (get idx) (get v);
        None
      | Mir.Load_prop (a, p) -> Some (Objmodel.get_prop (get a) p)
      | Mir.Store_prop (a, p, v) ->
        Objmodel.set_prop (get a) p (get v);
        None
      | Mir.Array_length a -> (
        match get a with
        | Value.Arr arr -> Some (Value.Int arr.Value.length)
        | _ -> invalid_arg "Eval.run: arraylength on non-array")
      | Mir.String_length a -> (
        match get a with
        | Value.Str s -> Some (Value.Int (String.length s))
        | _ -> invalid_arg "Eval.run: stringlength on non-string")
      | Mir.Call (c, args) -> Some (env.ev_call (get c) (Array.map get args))
      | Mir.Call_known (_, c, args) -> Some (env.ev_call (get c) (Array.map get args))
      | Mir.Call_native (name, args) -> Some (Builtins.call name (Array.map get args))
      | Mir.Method_call (recv, name, args) ->
        Some (Objmodel.dispatch_method ~call:env.ev_call (get recv) name (Array.map get args))
      | Mir.New_array args ->
        Some (Value.Arr (Value.arr_of_list (Array.to_list (Array.map get args))))
      | Mir.Construct (ctor, args) -> Some (Objmodel.construct ctor (Array.map get args))
      | Mir.New_object (keys, args) ->
        let obj = Value.new_obj () in
        Array.iteri (fun k key -> Value.obj_set obj key (get args.(k))) keys;
        Some (Value.Obj obj)
      | Mir.Make_closure (fid, caps) ->
        let cenv =
          Array.map
            (function
              | Bytecode.Instr.Cap_cell k -> env.ev_cells.(k)
              | Bytecode.Instr.Cap_upval k -> env.ev_env.(k))
            caps
        in
        Some (Value.Closure { Value.fid; env = cenv; cid = Value.fresh_id () })
      | Mir.Get_global k -> Some env.ev_globals.(k)
      | Mir.Set_global (k, v) ->
        env.ev_globals.(k) <- get v;
        None
      | Mir.Get_cell k -> Some !(env.ev_cells.(k))
      | Mir.Set_cell (k, v) ->
        env.ev_cells.(k) := get v;
        None
      | Mir.Get_upval k -> Some !(env.ev_env.(k))
      | Mir.Set_upval (k, v) ->
        env.ev_env.(k) := get v;
        None
      | Mir.Load_captured r -> Some !r
      | Mir.Store_captured (r, v) ->
        r := get v;
        None
    in
    match value with Some v -> set i.Mir.def v | None -> set i.Mir.def Value.Undefined
  in
  let start =
    if at_osr then
      match f.Mir.osr_entry with
      | Some b -> b
      | None -> invalid_arg "Eval.run: no OSR entry"
    else f.Mir.entry
  in
  let rec exec_block prev bid =
    let b = Mir.block f bid in
    (* Phis: read operands through the incoming edge, in parallel. *)
    let pred_index =
      if b.Mir.phis = [] then -1
      else
        let rec find i = function
          | [] ->
            invalid_arg
              (Printf.sprintf "Eval.run: B%d entered from unlisted pred B%d" bid prev)
          | p :: rest -> if p = prev then i else find (i + 1) rest
        in
        find 0 b.Mir.preds
    in
    let phi_values =
      List.map
        (fun (phi : Mir.instr) ->
          match phi.Mir.kind with
          | Mir.Phi ops -> (phi.Mir.def, get ops.(pred_index))
          | _ -> assert false)
        b.Mir.phis
    in
    List.iter (fun (d, v) -> set d v) phi_values;
    List.iter eval_instr b.Mir.body;
    match b.Mir.term with
    | Mir.Goto t -> exec_block bid t
    | Mir.Branch (c, t1, t2) ->
      exec_block bid (if Convert.to_boolean (get c) then t1 else t2)
    | Mir.Return d -> get d
    | Mir.Unreachable -> invalid_arg "Eval.run: reached unreachable"
  in
  match exec_block (-1) start with
  | v -> Finished v
  | exception Bail (pc, reason) -> Bailed { pc; reason }
