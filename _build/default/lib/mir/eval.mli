(** A direct reference evaluator for MIR graphs.

    Executes the SSA graph as-is — phis resolved through the incoming edge,
    guards taken literally — with the same {!Runtime.Ops}/{!Runtime.Objmodel}
    semantics as the interpreter and the native executor. It exists to split
    miscompilation bugs: if the MIR evaluator already disagrees with the
    bytecode interpreter, an optimization pass is wrong; if it agrees but
    the native code does not, lowering or register allocation is wrong.
    Property tests run all three on generated programs. *)

type outcome =
  | Finished of Runtime.Value.t
  | Bailed of { pc : int; reason : string }
      (** a guard failed; [pc] is its resume point's bytecode pc *)

type env = {
  ev_args : Runtime.Value.t array;  (** boxed arguments (padded) *)
  ev_env : Runtime.Value.t ref array;  (** closure upvalues *)
  ev_cells : Runtime.Value.t ref array;
  ev_globals : Runtime.Value.t array;
  ev_call : Runtime.Value.t -> Runtime.Value.t array -> Runtime.Value.t;
  ev_osr_args : Runtime.Value.t array;
  ev_osr_locals : Runtime.Value.t array;
}

val run : env -> Mir.func -> at_osr:bool -> outcome
(** @raise Runtime.Objmodel.Error for genuine JS type errors. *)
