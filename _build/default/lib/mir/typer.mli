(** Optimistic type refinement over the completed SSA graph.

    The builder chooses arithmetic modes from the types it can see while
    the graph is under construction, but loop-carried values flow through
    phis whose latch operands do not exist yet, so everything in a loop
    initially looks generic. This pass re-runs IonMonkey-style type
    specialization as a fixpoint: phi types are seeded optimistically and
    instruction result types recomputed until stable, then arithmetic is
    rewritten to int32/double fast paths (checked [Mode_int] guards keep JS
    semantics on overflow by bailing out). Run unconditionally — it is part
    of the compiler baseline, like global value numbering. *)

val run : Mir.func -> unit
