exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let run (f : Mir.func) =
  let reachable = Mir.reachable_blocks f in
  (* Layout sanity: every reachable block is laid out exactly once. *)
  let layout = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      if Hashtbl.mem layout bid then fail "block B%d laid out twice" bid;
      Hashtbl.replace layout bid true;
      if not (Hashtbl.mem f.Mir.blocks bid) then fail "layout references missing B%d" bid)
    f.Mir.block_order;
  Hashtbl.iter
    (fun bid _ ->
      if not (Hashtbl.mem layout bid) then fail "reachable block B%d not in layout" bid)
    reachable;
  (* Def table consistency and operand dominance. A def must be PRESENT in
     some laid-out block, not merely remembered by the def table: passes
     that delete instructions leave stale table entries behind, and a
     reference to one would read garbage at runtime. *)
  let doms = Cfg.dominators f in
  let present = Hashtbl.create 64 in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      List.iter (fun (i : Mir.instr) -> Hashtbl.replace present i.Mir.def bid) b.Mir.phis;
      List.iter (fun (i : Mir.instr) -> Hashtbl.replace present i.Mir.def bid) b.Mir.body)
    f.Mir.block_order;
  let block_of_def d =
    match Hashtbl.find_opt present d with
    | Some b -> b
    | None ->
      if Hashtbl.mem f.Mir.defs d then
        fail "v%d is referenced but its instruction was deleted" d
      else fail "v%d has no defining block" d
  in
  let check_defined d = ignore (block_of_def d) in
  (* Constants are location-independent: lowering turns every reference
     into an immediate, so ordering/dominance does not apply to them. *)
  let is_constant d =
    match Hashtbl.find_opt f.Mir.defs d with
    | Some { Mir.kind = Mir.Constant _; _ } -> true
    | _ -> false
  in
  let defined_before = Hashtbl.create 64 in
  List.iter
    (fun bid ->
      if Hashtbl.mem reachable bid then begin
        let b = Mir.block f bid in
        if List.length b.Mir.preds > 0 then
          List.iter
            (fun p ->
              if not (Hashtbl.mem reachable p) then
                fail "B%d has unreachable pred B%d" bid p)
            b.Mir.preds;
        (* Phis: operand count matches preds; operands defined somewhere. *)
        List.iter
          (fun (phi : Mir.instr) ->
            match phi.Mir.kind with
            | Mir.Phi ops ->
              if Array.length ops <> List.length b.Mir.preds then
                fail "phi v%d in B%d has %d operands for %d preds" phi.Mir.def bid
                  (Array.length ops) (List.length b.Mir.preds);
              Array.iter check_defined ops
            | _ -> fail "non-phi v%d in phi section of B%d" phi.Mir.def bid)
          b.Mir.phis;
        (* Body: operands must dominate their uses. Instructions within a
           block must be defined earlier in that block. *)
        let seen = Hashtbl.create 16 in
        List.iter (fun (phi : Mir.instr) -> Hashtbl.replace seen phi.Mir.def true) b.Mir.phis;
        List.iter
          (fun (instr : Mir.instr) ->
            List.iter
              (fun op ->
                let ob = block_of_def op in
                if is_constant op then ()
                else if ob = bid then begin
                  if not (Hashtbl.mem seen op) then
                    fail "v%d used before its definition in B%d (by v%d)" op bid
                      instr.Mir.def
                end
                else if Hashtbl.mem reachable ob && not (Cfg.dominates doms ob bid) then
                  fail "operand v%d (B%d) does not dominate use v%d (B%d)" op ob
                    instr.Mir.def bid)
              (Mir.instr_operands instr.Mir.kind);
            (* Resume points must reference live, dominating values: a
               dangling snapshot would reconstruct a garbage frame. *)
            (match instr.Mir.rp with
            | None -> ()
            | Some rp ->
              let check_rp_ref op =
                let ob = block_of_def op in
                if is_constant op then ()
                else if ob = bid then begin
                  if not (Hashtbl.mem seen op) then
                    fail "rp of v%d references v%d before its definition in B%d"
                      instr.Mir.def op bid
                end
                else if Hashtbl.mem reachable ob && not (Cfg.dominates doms ob bid) then
                  fail "rp of v%d references v%d (B%d) which does not dominate B%d"
                    instr.Mir.def op ob bid
                else if not (Hashtbl.mem reachable ob) then
                  fail "rp of v%d references v%d defined in unreachable B%d"
                    instr.Mir.def op ob
              in
              Array.iter check_rp_ref rp.Mir.rp_args;
              Array.iter check_rp_ref rp.Mir.rp_locals;
              List.iter check_rp_ref rp.Mir.rp_stack);
            (* Guards must be able to bail out. *)
            if Mir.is_guard instr.Mir.kind && instr.Mir.rp = None then
              fail "guard v%d in B%d has no resume point" instr.Mir.def bid;
            (match instr.Mir.kind with
            | Mir.Binop (_, _, _, Mir.Mode_int) when instr.Mir.rp = None ->
              fail "checked int binop v%d has no resume point" instr.Mir.def
            | _ -> ());
            ignore defined_before;
            Hashtbl.replace seen instr.Mir.def true)
          b.Mir.body;
        (* Terminator. *)
        (match b.Mir.term with
        | Mir.Goto t ->
          if not (Hashtbl.mem f.Mir.blocks t) then fail "B%d: goto missing B%d" bid t
        | Mir.Branch (c, t1, t2) ->
          check_defined c;
          if not (Hashtbl.mem f.Mir.blocks t1) then fail "B%d: branch missing B%d" bid t1;
          if not (Hashtbl.mem f.Mir.blocks t2) then fail "B%d: branch missing B%d" bid t2
        | Mir.Return d -> check_defined d
        | Mir.Unreachable -> ());
        (* Successor/pred symmetry. *)
        List.iter
          (fun s ->
            let sb = Mir.block f s in
            if not (List.mem bid sb.Mir.preds) then
              fail "B%d -> B%d edge missing from preds of B%d" bid s s)
          (Mir.successors b)
      end)
    f.Mir.block_order
