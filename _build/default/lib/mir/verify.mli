(** Structural verifier for MIR graphs.

    Checks, after construction and after every optimization pass, that:
    phi operand counts match predecessor counts; every operand is defined
    in a block that dominates its use (phi operands in the corresponding
    predecessor); terminators target existing reachable blocks; guards
    carry resume points; and the layout list agrees with reachability.
    Property tests run every pass through this. *)

exception Invalid of string

val run : Mir.func -> unit
(** @raise Invalid with a description of the first violation found. *)
