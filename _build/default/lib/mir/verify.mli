(** Structural and type verifier for MIR graphs.

    {!run} checks, after construction and after every optimization pass,
    that: phi operand counts match predecessor counts; every operand is
    defined in a block that dominates its use (phi operands in the
    corresponding predecessor); terminators target existing reachable
    blocks; guards carry resume points; and the layout list agrees with
    reachability. Property tests run every pass through this.

    {!check_types} is the lint companion used by the pipeline's per-pass
    sandwich mode: it re-derives each instruction's type from its operands'
    declared types and rejects declared types that claim more than the
    operands support (a pass may leave a type imprecise, never wrong).

    Both raise {!Diag.Failed} attributing the first violation to [?pass]. *)

val run : ?pass:string -> Mir.func -> unit
(** @raise Diag.Failed describing the first structural violation found. *)

val check_types : ?pass:string -> Mir.func -> unit
(** @raise Diag.Failed describing the first type inconsistency found. *)

val ty_subsumes : wide:Mir.ty -> narrow:Mir.ty -> bool
(** [wide] may stand in for [narrow]: equal, fully boxed, or the int32 ->
    double widening the typer's join performs. *)
