lib/native/cost.ml: Array Code Mir Runtime
