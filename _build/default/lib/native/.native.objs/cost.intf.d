lib/native/cost.mli: Code
