lib/native/exec.ml: Array Builtins Bytecode Code Convert Cost Mir Objmodel Ops Option Regalloc Runtime String Value
