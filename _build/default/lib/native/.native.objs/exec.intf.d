lib/native/exec.mli: Bytecode Code Runtime
