lib/opt/bounds_check.ml: Builtins Cfg Hashtbl List Mir Ops Runtime Value
