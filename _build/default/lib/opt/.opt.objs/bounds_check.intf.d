lib/opt/bounds_check.mli: Mir
