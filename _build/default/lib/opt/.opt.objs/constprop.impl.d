lib/opt/constprop.ml: Array Builtins Convert Hashtbl List Mir Ops Option Runtime String Value
