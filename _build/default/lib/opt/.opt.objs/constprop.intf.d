lib/opt/constprop.mli: Mir Runtime
