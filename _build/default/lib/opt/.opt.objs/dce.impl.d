lib/opt/dce.ml: Array Convert Hashtbl List Mir Ops Option Queue Runtime
