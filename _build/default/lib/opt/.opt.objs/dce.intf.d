lib/opt/dce.mli: Mir
