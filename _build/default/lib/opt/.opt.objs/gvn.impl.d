lib/opt/gvn.ml: Array Cfg Hashtbl Int64 List Mir Ops Option Printf Runtime Value
