lib/opt/gvn.mli: Mir
