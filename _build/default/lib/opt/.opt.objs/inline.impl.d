lib/opt/inline.ml: Array Builder Bytecode Hashtbl Lazy List Mir Ops Runtime Value
