lib/opt/inline.mli: Bytecode Mir
