lib/opt/licm.ml: Cfg Hashtbl List Mir
