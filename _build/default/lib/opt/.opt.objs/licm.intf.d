lib/opt/licm.mli: Mir
