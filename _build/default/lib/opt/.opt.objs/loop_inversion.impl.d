lib/opt/loop_inversion.ml: Array Cfg Hashtbl List Mir Option
