lib/opt/loop_inversion.mli: Mir
