lib/opt/pipeline.ml: Bounds_check Constprop Dce Gvn Inline Licm Loop_inversion Mir Sccp Typer Unroll Verify
