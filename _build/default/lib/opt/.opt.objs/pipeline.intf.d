lib/opt/pipeline.mli: Bytecode Mir
