lib/opt/sccp.ml: Array Builtins Constprop Convert Hashtbl List Mir Option Queue Runtime
