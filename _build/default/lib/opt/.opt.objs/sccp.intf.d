lib/opt/sccp.mli: Mir
