lib/opt/unroll.ml: Array Cfg Hashtbl List Mir Ops Option Runtime Value
