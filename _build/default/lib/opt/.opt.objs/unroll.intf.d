lib/opt/unroll.mli: Mir
