open Runtime

(* The ⊥ < c < ⊤ lattice of Aho et al. *)
type lat = Bot | Const of Value.t | Top

let meet a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Const x, Const y -> if Value.same_value x y then Const x else Top

(* Structural equality would loop on NaN (nan <> nan): the fixpoint must
   compare lattice values through the cache equality. *)
let lat_equal a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Const x, Const y -> Value.same_value x y
  | (Bot | Top | Const _), _ -> false

(* Evaluate a foldable instruction over constant operands. Every evaluation
   goes through the interpreter's own operator implementations. *)
let try_fold kind lookup =
  let const d = match lookup d with Const v -> Some v | Bot | Top -> None in
  let all_const ds =
    let vs = Array.map const ds in
    if Array.for_all Option.is_some vs then Some (Array.map Option.get vs) else None
  in
  match (kind : Mir.instr_kind) with
  | Mir.Constant v -> Const v
  | Mir.Phi ops -> Array.fold_left (fun acc d -> meet acc (lookup d)) Bot ops
  | Mir.Binop (op, a, b, _) -> (
    match (const a, const b) with
    | Some va, Some vb -> Const (Ops.binop op va vb)
    | _ -> Top)
  | Mir.Cmp (op, a, b) -> (
    match (const a, const b) with
    | Some va, Some vb -> Const (Ops.cmp op va vb)
    | _ -> Top)
  | Mir.Unop (op, a) -> (
    match const a with Some va -> Const (Ops.unop op va) | None -> Top)
  | Mir.To_bool a -> (
    match const a with Some va -> Const (Value.Bool (Convert.to_boolean va)) | None -> Top)
  | Mir.Box a -> lookup a
  | Mir.Type_barrier (a, tag) -> (
    (* A constant of the guarded tag makes the guard a no-op: fold it. A
       constant of the wrong tag would always bail; leave the guard. *)
    match const a with
    | Some va when Value.tag_of va = tag -> Const va
    | _ -> Top)
  | Mir.Check_array a -> (
    match const a with Some (Value.Arr _ as va) -> Const va | _ -> Top)
  | Mir.String_length a -> (
    match const a with
    | Some (Value.Str s) -> Const (Value.Int (String.length s))
    | _ -> Top)
  | Mir.Call_native (name, args) when Builtins.is_pure name -> (
    match all_const args with
    | Some vs -> ( try Const (Builtins.call name vs) with _ -> Top)
    | None -> Top)
  | Mir.Osr_value _ | Mir.Parameter _ | Mir.Bounds_check _ | Mir.Load_elem _
  | Mir.Store_elem _ | Mir.Elem_generic _ | Mir.Store_elem_generic _ | Mir.Load_prop _
  | Mir.Store_prop _ | Mir.Array_length _ | Mir.Call _ | Mir.Call_known _
  | Mir.Call_native _ | Mir.Method_call _ | Mir.New_array _ | Mir.Construct _
  | Mir.New_object _ | Mir.Make_closure _ | Mir.Get_global _ | Mir.Set_global _
  | Mir.Get_cell _ | Mir.Set_cell _ | Mir.Get_upval _ | Mir.Set_upval _
  | Mir.Load_captured _ | Mir.Store_captured _ ->
    Top

let run (f : Mir.func) =
  let lat : (Mir.def, lat) Hashtbl.t = Hashtbl.create 64 in
  let lookup d = Option.value (Hashtbl.find_opt lat d) ~default:Bot in
  (* Iterate successive applications of the meet operator to a fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Mir.iter_instrs f (fun instr ->
        let current = lookup instr.Mir.def in
        let fresh = meet current (try_fold instr.Mir.kind lookup) in
        if not (lat_equal fresh current) then begin
          Hashtbl.replace lat instr.Mir.def fresh;
          changed := true
        end)
  done;
  (* Fold: rewrite instructions whose value is a known constant. Only pure,
     non-effectful instructions are rewritten; a folded guard disappears
     entirely (paper §3.3: "our constant propagation allows us to fold away
     many type guards"). *)
  let folded = ref 0 in
  Mir.iter_instrs f (fun instr ->
      match lookup instr.Mir.def with
      | Const v
        when (not (Mir.has_side_effect instr.Mir.kind))
             && (match instr.Mir.kind with Mir.Constant _ -> false | _ -> true) ->
        instr.Mir.kind <- Mir.Constant v;
        instr.Mir.ty <- Mir.ty_of_value v;
        instr.Mir.rp <- None;
        incr folded
      | _ -> ());
  (* Folded phis are no longer phis: relocate them to the head of the
     block body so the phi section stays well-formed. *)
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      let still_phi, folded_phis =
        List.partition
          (fun (i : Mir.instr) -> match i.Mir.kind with Mir.Phi _ -> true | _ -> false)
          b.Mir.phis
      in
      if folded_phis <> [] then begin
        b.Mir.phis <- still_phi;
        b.Mir.body <- folded_phis @ b.Mir.body
      end)
    f.Mir.block_order;
  !folded
