(** Constant propagation (paper §3.3).

    The simplest lattice-based formulation from Aho et al. — each SSA value
    is ⊥, a constant, or ⊤, with a meet-until-fixpoint loop — deliberately
    without Wegman-Zadeck conditional-branch information, exactly as the
    paper chose for compile-time economy.

    Folds: arithmetic/comparison/unary operators (through the very same
    {!Runtime.Ops} the interpreter uses, so folding cannot change
    semantics), [typeof], string [length], pure native calls, and — the key
    enabler for value specialization — type guards: a [Type_barrier] or
    [Check_array] whose operand is a compile-time constant of the right tag
    is folded away. *)

type lat = Bot | Const of Runtime.Value.t | Top
(** ⊥ (no information yet) < constant < ⊤ (known to vary). *)

val meet : lat -> lat -> lat

val lat_equal : lat -> lat -> bool
(** Lattice equality through {!Runtime.Value.same_value} — structural
    equality would loop the fixpoint on NaN. *)

val try_fold : Mir.instr_kind -> (Mir.def -> lat) -> lat
(** Evaluate one instruction over the operand lattice. Shared with
    {!Sccp}, which supplies an executability-aware phi evaluation on top. *)

val run : Mir.func -> int
(** Returns the number of instructions folded to constants. *)
