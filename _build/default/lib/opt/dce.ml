open Runtime

type stats = { branches_folded : int; blocks_removed : int; instrs_removed : int }

(* Evaluate a branch condition whose inputs are compile-time constants.
   The paper runs DCE after constant propagation "to give instruction
   folding the chance to transform conditional branches into simple boolean
   values"; loop inversion can create fresh comparisons of constants after
   constprop already ran, so this folds one level of Cmp/Not/ToBool too. *)
let rec const_bool (f : Mir.func) depth d =
  if depth > 4 then None
  else
    let const x =
      match (Hashtbl.find f.Mir.defs x).Mir.kind with
      | Mir.Constant v -> Some v
      | _ -> None
    in
    match (Hashtbl.find f.Mir.defs d).Mir.kind with
    | Mir.Constant v -> Some (Convert.to_boolean v)
    | Mir.Cmp (op, a, b) -> (
      match (const a, const b) with
      | Some va, Some vb -> Some (Convert.to_boolean (Ops.cmp op va vb))
      | _ -> None)
    | Mir.Unop (Ops.Not, a) -> Option.map not (const_bool f (depth + 1) a)
    | Mir.To_bool a -> const_bool f (depth + 1) a
    | _ -> None

let fold_branches (f : Mir.func) =
  let folded = ref 0 in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      match b.Mir.term with
      | Mir.Branch (c, t_then, t_else) -> (
        match const_bool f 0 c with
        | Some taken ->
          b.Mir.term <- Mir.Goto (if taken then t_then else t_else);
          incr folded
        | None -> ())
      | Mir.Goto _ | Mir.Return _ | Mir.Unreachable -> ())
    f.Mir.block_order;
  !folded

let remove_unreachable (f : Mir.func) =
  let before = List.length f.Mir.block_order in
  let reachable = Mir.reachable_blocks f in
  f.Mir.block_order <- List.filter (Hashtbl.mem reachable) f.Mir.block_order;
  Mir.recompute_preds f;
  (* Phis of blocks left with a single predecessor degenerate to copies. *)
  let subst = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      if List.length b.Mir.preds <= 1 then begin
        List.iter
          (fun (phi : Mir.instr) ->
            match phi.Mir.kind with
            | Mir.Phi [| op |] -> Hashtbl.replace subst phi.Mir.def op
            | Mir.Phi [||] -> ()  (* entry-side degenerate; leave *)
            | _ -> ())
          b.Mir.phis;
        b.Mir.phis <-
          List.filter
            (fun (phi : Mir.instr) -> not (Hashtbl.mem subst phi.Mir.def))
            b.Mir.phis
      end)
    f.Mir.block_order;
  if Hashtbl.length subst > 0 then begin
    (* Resolve chains of single-operand phis. *)
    let rec resolve_fuel fuel d =
      if fuel = 0 then d
      else
        match Hashtbl.find_opt subst d with
        | Some d' when d' <> d -> resolve_fuel (fuel - 1) d'
        | _ -> d
    in
    let resolve d = resolve_fuel 64 d in
    Mir.substitute f resolve
  end;
  before - List.length f.Mir.block_order

(* Liveness over defs: roots are side effects, guards, checked arithmetic
   and terminator operands; resume points of live instructions keep their
   snapshot values alive. *)
let remove_dead_instrs (f : Mir.func) =
  let live = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let mark d =
    if not (Hashtbl.mem live d) then begin
      Hashtbl.replace live d true;
      Queue.add d worklist
    end
  in
  let is_root (i : Mir.instr) =
    Mir.has_side_effect i.Mir.kind || Mir.is_guard i.Mir.kind
    || (match i.Mir.kind with
       | Mir.Binop (_, _, _, Mir.Mode_int) -> true  (* can bail: observable *)
       | _ -> false)
  in
  let mark_rp (i : Mir.instr) =
    match i.Mir.rp with
    | None -> ()
    | Some rp ->
      Array.iter mark rp.Mir.rp_args;
      Array.iter mark rp.Mir.rp_locals;
      List.iter mark rp.Mir.rp_stack
  in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      List.iter
        (fun (i : Mir.instr) ->
          if is_root i then begin
            mark i.Mir.def;
            mark_rp i
          end)
        b.Mir.body;
      match b.Mir.term with
      | Mir.Branch (c, _, _) -> mark c
      | Mir.Return d -> mark d
      | Mir.Goto _ | Mir.Unreachable -> ())
    f.Mir.block_order;
  while not (Queue.is_empty worklist) do
    let d = Queue.pop worklist in
    match Hashtbl.find_opt f.Mir.defs d with
    | None -> ()
    | Some instr ->
      List.iter mark (Mir.instr_operands instr.Mir.kind);
      mark_rp instr
  done;
  let removed = ref 0 in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      let keep (i : Mir.instr) =
        Hashtbl.mem live i.Mir.def
        || not (Mir.is_removable_if_unused i.Mir.kind)
      in
      let filter instrs =
        List.filter
          (fun i ->
            let k = keep i in
            if not k then incr removed;
            k)
          instrs
      in
      b.Mir.phis <- filter b.Mir.phis;
      b.Mir.body <- filter b.Mir.body)
    f.Mir.block_order;
  !removed

let run f =
  let branches_folded = fold_branches f in
  let blocks_removed = remove_unreachable f in
  let instrs_removed = remove_dead_instrs f in
  { branches_folded; blocks_removed; instrs_removed }
