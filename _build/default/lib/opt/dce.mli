(** Dead-code elimination (paper §3.5).

    Runs after constant propagation so that branch conditions folded to
    booleans turn conditional branches into gotos; the unreachable blocks
    (e.g. the wrapping conditional introduced by loop inversion, once
    specialization proves the loop executes at least once) are then removed.
    The function entry block is always kept — the paper keeps it so the
    cached binary can be re-entered when the function is called again with
    the same arguments.

    Also removes pure instructions whose results are unused, where "used"
    includes being referenced by the resume point of a surviving guard (a
    value the interpreter would need after a bailout must stay alive). *)

type stats = { branches_folded : int; blocks_removed : int; instrs_removed : int }

val run : Mir.func -> stats
