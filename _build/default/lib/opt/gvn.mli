(** Global value numbering — the baseline IonMonkey optimization the paper
    builds on (§3.1), after Alpern, Wegman and Zadeck's congruence approach.

    Walks the dominator tree in reverse postorder keeping a table of
    available pure expressions; a recomputation whose defining occurrence
    dominates it is replaced. Also simplifies degenerate phis
    ([phi(x, x)], [phi(x, self)]) and removes redundant dominating guards
    (a [Check_array]/[Type_barrier]/[Bounds_check] identical to one already
    performed on the same operands). Runs in every configuration: it is
    part of the compiler, not of the paper's contribution. *)

val run : Mir.func -> int
(** Returns the number of instructions eliminated. *)
