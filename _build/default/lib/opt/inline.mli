(** Aggressive closure inlining (paper §3.7).

    Parameter specialization turns closure-valued arguments into compile-time
    constants, so calls through them become [Call_known] sites with a known
    target. This pass splices the callee's MIR into the caller — without
    guards: per the paper, if the host function is ever called with different
    arguments its whole binary is discarded, so a guard on the closure's
    identity would be redundant.

    Captured-variable accesses in the inlined body are rewritten to direct
    loads/stores through the constant closure's environment cells — the
    pointers are burned into the code, as the paper burns heap addresses.

    Soundness of bailouts: spliced instructions keep no resume points
    (re-executing the call mid-way is not possible in general), so the typer
    later refrains from adding bailing fast paths inside inlined code;
    inlined operations run in their generic form.

    Functions that allocate closure cells or create closures are not
    inlined (their activation state cannot be flattened), nor are functions
    above the size budget, nor recursive chains beyond the depth limit. *)

val run :
  program:Bytecode.Program.t ->
  ?max_size:int ->
  ?max_sites:int ->
  Mir.func ->
  int
(** Returns the number of call sites inlined. *)
