let is_hoistable_kind ~loop_has_effects (kind : Mir.instr_kind) =
  match kind with
  | Mir.Constant _ | Mir.Cmp _ | Mir.To_bool _ | Mir.Box _ | Mir.String_length _ ->
    true
  | Mir.Unop _ -> true
  | Mir.Binop (_, _, _, mode) -> (
    (* Checked int arithmetic is a guard (it can bail); moving it would
       reorder a potential bailout with loop side effects. *)
    match mode with
    | Mir.Mode_int -> false
    | Mir.Mode_int_nocheck | Mir.Mode_double | Mir.Mode_generic -> true)
  | Mir.Array_length _ -> not loop_has_effects
  | Mir.Parameter _ | Mir.Osr_value _ | Mir.Phi _ | Mir.Type_barrier _ | Mir.Check_array _
  | Mir.Bounds_check _ | Mir.Load_elem _ | Mir.Store_elem _ | Mir.Elem_generic _
  | Mir.Store_elem_generic _ | Mir.Load_prop _ | Mir.Store_prop _ | Mir.Call _
  | Mir.Call_known _ | Mir.Call_native _ | Mir.Method_call _ | Mir.New_array _
  | Mir.Construct _ | Mir.New_object _ | Mir.Make_closure _ | Mir.Get_global _
  | Mir.Set_global _ | Mir.Get_cell _ | Mir.Set_cell _ | Mir.Get_upval _
  | Mir.Set_upval _ | Mir.Load_captured _ | Mir.Store_captured _ ->
    false

(* Split the edge [pre -> header] with a fresh block that becomes a valid
   preheader (needed after loop inversion, where the entry-side predecessor
   is the wrapping conditional with two successors). *)
let split_entry_edge (f : Mir.func) pre_bid header_bid =
  let ph = Mir.new_block f in
  ph.Mir.term <- Mir.Goto header_bid;
  ph.Mir.preds <- [ pre_bid ];
  let pre = Mir.block f pre_bid in
  let redirect t = if t = header_bid then ph.Mir.bid else t in
  pre.Mir.term <-
    (match pre.Mir.term with
    | Mir.Goto t -> Mir.Goto (redirect t)
    | Mir.Branch (c, a, b) -> Mir.Branch (c, redirect a, redirect b)
    | (Mir.Return _ | Mir.Unreachable) as t -> t);
  let header = Mir.block f header_bid in
  header.Mir.preds <-
    List.map (fun p -> if p = pre_bid then ph.Mir.bid else p) header.Mir.preds;
  ph.Mir.bid

let run (f : Mir.func) =
  let doms = Cfg.dominators f in
  let loops = Cfg.natural_loops f doms in
  let hoisted = ref 0 in
  List.iter
    (fun (loop : Cfg.loop) ->
      let header = Mir.block f loop.Cfg.header in
      let in_loop bid = List.mem bid loop.Cfg.body in
      (* The preheader is the unique predecessor outside the loop. *)
      let outside = List.filter (fun p -> not (in_loop p)) header.Mir.preds in
      match outside with
      | [ direct_pre ] ->
        let pre_bid =
          if Mir.successors (Mir.block f direct_pre) = [ loop.Cfg.header ] then direct_pre
          else split_entry_edge f direct_pre loop.Cfg.header
        in
        let pre = Mir.block f pre_bid in
        if Mir.successors pre = [ loop.Cfg.header ] then begin
          let loop_has_effects =
            List.exists
              (fun bid ->
                let b = Mir.block f bid in
                List.exists (fun (i : Mir.instr) -> Mir.has_side_effect i.Mir.kind) b.Mir.body)
              loop.Cfg.body
          in
          (* Defs inside the loop (recomputed as instructions move out). *)
          let def_in_loop = Hashtbl.create 64 in
          List.iter
            (fun bid ->
              let b = Mir.block f bid in
              List.iter (fun (i : Mir.instr) -> Hashtbl.replace def_in_loop i.Mir.def true) b.Mir.phis;
              List.iter (fun (i : Mir.instr) -> Hashtbl.replace def_in_loop i.Mir.def true) b.Mir.body)
            loop.Cfg.body;
          let invariant (i : Mir.instr) =
            is_hoistable_kind ~loop_has_effects i.Mir.kind
            && List.for_all
                 (fun op -> not (Hashtbl.mem def_in_loop op))
                 (Mir.instr_operands i.Mir.kind)
          in
          let changed = ref true in
          while !changed do
            changed := false;
            List.iter
              (fun bid ->
                let b = Mir.block f bid in
                let stay, move = List.partition (fun i -> not (invariant i)) b.Mir.body in
                if move <> [] then begin
                  b.Mir.body <- stay;
                  pre.Mir.body <- pre.Mir.body @ move;
                  List.iter
                    (fun (i : Mir.instr) ->
                      Hashtbl.remove def_in_loop i.Mir.def;
                      Hashtbl.replace f.Mir.def_block i.Mir.def pre_bid;
                      (* Hoisted instructions cannot deoptimize (guards and
                         checked arithmetic are not hoistable); their stale
                         resume points would reference loop-interior values
                         that no longer dominate them. *)
                      i.Mir.rp <- None;
                      incr hoisted)
                    move;
                  changed := true
                end)
              loop.Cfg.body
          done
        end
      | _ -> ())
    loops;
  !hoisted
