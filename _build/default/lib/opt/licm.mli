(** Loop-invariant code motion — part of the IonMonkey baseline the paper
    runs on (its §4 notes that loop inversion "improved the effectiveness of
    IonMonkey's invariant code motion" on string-unpack-code).

    Hoists pure, non-guard instructions whose operands are all defined
    outside the loop into the loop's preheader (the unique non-latch
    predecessor of the header, which the MIR builder guarantees covers both
    the normal and the OSR entry path). [Array_length] is only hoisted out
    of loops free of stores and calls, since stores may change a length. *)

val run : Mir.func -> int
(** Returns the number of instructions hoisted. *)
