(* Rewrites a while-shaped loop

     PRE -> H;  H: phis + test; Branch(c, B, E);  ... LATCH -> Goto H

   into a repeat-shaped loop

     PRE: test(entry values); Branch(c0, B, E)      <- wrapping conditional
     B:   phis; body ... LATCH: test(latch values); Branch(c', B, E)
     E:   exit phis merging both paths

   The bytecode is left untouched, so resume points in the cloned test
   remain valid: a bailout re-enters the interpreter at the test's pc with
   the values of the corresponding path. *)

(* Build a def-to-def map for the header's own instructions along one path:
   phis map to the path's operand; chain instructions map to their clones. *)
let path_map phi_map chain_pairs d =
  match List.assoc_opt d phi_map with
  | Some d' -> d'
  | None -> (
    match List.assoc_opt d chain_pairs with Some d' -> d' | None -> d)

let invert_one (f : Mir.func) doms (loop : Cfg.loop) =
  let header = Mir.block f loop.Cfg.header in
  let in_loop bid = List.mem bid loop.Cfg.body in
  match loop.Cfg.latches with
  | [ latch_bid ] when latch_bid <> loop.Cfg.header -> (
    let latch = Mir.block f latch_bid in
    match (latch.Mir.term, header.Mir.term) with
    | Mir.Goto h, Mir.Branch (cond, t1, t2) when h = loop.Cfg.header -> (
      let body_bid, exit_bid, cond_sense =
        if in_loop t1 && not (in_loop t2) then (t1, t2, true)
        else if in_loop t2 && not (in_loop t1) then (t2, t1, false)
        else (-1, -1, true)
      in
      if
        body_bid = -1 || body_bid = loop.Cfg.header
        (* The loop-body entry must be a plain block: when it is itself a
           join (e.g. an inner loop header starting the body), making it
           the new bottom-tested header would need a phi merge this
           transformation does not model. *)
        || (Mir.block f body_bid).Mir.phis <> []
        || List.length (Mir.block f body_bid).Mir.preds <> 1
      then false
      else
        let outside_preds = List.filter (fun p -> not (in_loop p)) header.Mir.preds in
        match outside_preds with
        | [ pre_bid ]
          when Mir.successors (Mir.block f pre_bid) = [ loop.Cfg.header ]
               && List.length header.Mir.preds = 2 ->
          let pre = Mir.block f pre_bid in
          let i_pre =
            match header.Mir.preds with
            | [ a; _ ] when a = pre_bid -> 0
            | [ _; b ] when b = pre_bid -> 1
            | _ -> assert false
          in
          let i_latch = 1 - i_pre in
          (* Per-phi entry/latch operands. *)
          let phi_info =
            List.map
              (fun (phi : Mir.instr) ->
                match phi.Mir.kind with
                | Mir.Phi ops -> (phi, ops.(i_pre), ops.(i_latch))
                | _ -> assert false)
              header.Mir.phis
          in
          let entry_map = List.map (fun (p, e, _) -> (p.Mir.def, e)) phi_info in
          let latch_map = List.map (fun (p, _, l) -> (p.Mir.def, l)) phi_info in
          let chain = header.Mir.body in
          (* Clone the test into the preheader (wrapping conditional). *)
          let rec clone_seq target_bid base_map instrs acc =
            match instrs with
            | [] -> List.rev acc
            | (i : Mir.instr) :: rest ->
              let map = path_map base_map acc in
              let kind = Mir.map_operands map i.Mir.kind in
              let rp = Option.map (Mir.map_resume_point map) i.Mir.rp in
              let ni = Mir.make_instr f target_bid ?rp kind in
              clone_seq target_bid base_map rest ((i.Mir.def, ni.Mir.def) :: acc)
          in
          let pre_pairs = clone_seq pre_bid entry_map chain [] in
          (* Constants are location-independent: the latch path reuses the
             preheader's clone (which dominates the whole loop) instead of
             duplicating it and merging the two copies through a phi. *)
          let const_defs =
            List.filter_map
              (fun (i : Mir.instr) ->
                match i.Mir.kind with Mir.Constant _ -> Some i.Mir.def | _ -> None)
              chain
          in
          let is_const d = List.mem d const_defs in
          let latch_pairs =
            let reused = List.filter (fun (d, _) -> is_const d) pre_pairs in
            clone_seq latch_bid latch_map
              (List.filter
                 (fun (i : Mir.instr) -> not (is_const i.Mir.def))
                 chain)
              (List.rev reused)
          in
          let pre_clones =
            List.map (fun (_, nd) -> Hashtbl.find f.Mir.defs nd) pre_pairs
          in
          let latch_clones =
            List.filter_map
              (fun (d, nd) ->
                if is_const d then None else Some (Hashtbl.find f.Mir.defs nd))
              latch_pairs
          in
          pre.Mir.body <- pre.Mir.body @ pre_clones;
          latch.Mir.body <- latch.Mir.body @ latch_clones;
          let map_pre = path_map entry_map pre_pairs in
          let map_latch = path_map latch_map latch_pairs in
          let branch_of c_def =
            if cond_sense then Mir.Branch (c_def, body_bid, exit_bid)
            else Mir.Branch (c_def, exit_bid, body_bid)
          in
          pre.Mir.term <- branch_of (map_pre cond);
          latch.Mir.term <- branch_of (map_latch cond);
          (* Which header defs are referenced anywhere beyond the header
             itself? Only those need merge phis; dead merge phis would
             otherwise occupy registers and edge moves every iteration. *)
          let used_beyond_header =
            let used = Hashtbl.create 16 in
            let note d = Hashtbl.replace used d true in
            List.iter
              (fun bid ->
                if bid <> loop.Cfg.header then begin
                  let b = Mir.block f bid in
                  let scan (i : Mir.instr) =
                    List.iter note (Mir.instr_operands i.Mir.kind);
                    match i.Mir.rp with
                    | None -> ()
                    | Some rp ->
                      Array.iter note rp.Mir.rp_args;
                      Array.iter note rp.Mir.rp_locals;
                      List.iter note rp.Mir.rp_stack
                  in
                  List.iter scan b.Mir.phis;
                  List.iter scan b.Mir.body;
                  match b.Mir.term with
                  | Mir.Branch (c, _, _) -> note c
                  | Mir.Return d -> note d
                  | Mir.Goto _ | Mir.Unreachable -> ()
                end)
              f.Mir.block_order;
            fun d -> Hashtbl.mem used d
          in
          (* New loop-header phis at B, merging preheader and latch paths. *)
          let body_blk = Mir.block f body_bid in
          body_blk.Mir.preds <- [ pre_bid; latch_bid ];
          let in_loop_subst = Hashtbl.create 16 in
          List.iter
            (fun (phi, e, l) ->
              if used_beyond_header phi.Mir.def then begin
                let q = Mir.append_phi f body_blk [| e; l |] in
                (Hashtbl.find f.Mir.defs q).Mir.ty <- phi.Mir.ty;
                Hashtbl.replace in_loop_subst phi.Mir.def q
              end)
            phi_info;
          List.iter
            (fun (i : Mir.instr) ->
              if is_const i.Mir.def then
                (* Both paths see the preheader clone; no merge needed. *)
                Hashtbl.replace in_loop_subst i.Mir.def (map_pre i.Mir.def)
              else if used_beyond_header i.Mir.def then begin
                let pre_v = map_pre i.Mir.def and latch_v = map_latch i.Mir.def in
                let q = Mir.append_phi f body_blk [| pre_v; latch_v |] in
                (Hashtbl.find f.Mir.defs q).Mir.ty <- i.Mir.ty;
                Hashtbl.replace in_loop_subst i.Mir.def q
              end)
            chain;
          (* A latch operand that is itself a header phi (an unmodified slot,
             l_j = p_j) must flow through the new B phi instead. *)
          List.iter
            (fun (phi : Mir.instr) ->
              match phi.Mir.kind with
              | Mir.Phi ops ->
                phi.Mir.kind <-
                  Mir.Phi
                    (Array.mapi
                       (fun i op ->
                         if i = 1 then
                           Option.value (Hashtbl.find_opt in_loop_subst op) ~default:op
                         else op)
                       ops)
              | _ -> ())
            body_blk.Mir.phis;
          (* Exit block: H's slot in its preds becomes PRE then LATCH. *)
          let exit_blk = Mir.block f exit_bid in
          let h_pos =
            let rec find i = function
              | [] -> -1
              | p :: rest -> if p = loop.Cfg.header then i else find (i + 1) rest
            in
            find 0 exit_blk.Mir.preds
          in
          assert (h_pos >= 0);
          exit_blk.Mir.preds <-
            List.concat_map
              (fun p -> if p = loop.Cfg.header then [ pre_bid; latch_bid ] else [ p ])
              exit_blk.Mir.preds;
          List.iter
            (fun (phi : Mir.instr) ->
              match phi.Mir.kind with
              | Mir.Phi ops ->
                let expanded =
                  List.concat_map
                    (fun (i, op) ->
                      if i = h_pos then [ map_pre op; map_latch op ] else [ op ])
                    (List.mapi (fun i op -> (i, op)) (Array.to_list ops))
                in
                phi.Mir.kind <- Mir.Phi (Array.of_list expanded)
              | _ -> ())
            exit_blk.Mir.phis;
          (* The old natural-loop membership is useless after rewiring
             (blocks that break straight to the exit were never in the
             natural loop); classify blocks by dominance in the REWIRED
             graph instead: dominated by the new header B -> current
             iteration values; dominated by the exit E -> exit phis. *)
          let doms_new = Cfg.dominators f in
          let in_new_loop bid =
            bid <> exit_bid && Cfg.dominates doms_new body_bid bid
          in
          let after_exit bid = Cfg.dominates doms_new exit_bid bid in
          (* Header defs used at-or-beyond the exit get exit phis. *)
          let header_defs =
            List.map (fun (p, _, _) -> p.Mir.def) phi_info
            @ List.map (fun (i : Mir.instr) -> i.Mir.def) chain
          in
          let used_outside = Hashtbl.create 8 in
          let note op = if List.mem op header_defs then Hashtbl.replace used_outside op true in
          let consider bid (i : Mir.instr) =
            if after_exit bid then
              List.iter note
                (Mir.instr_operands i.Mir.kind
                @
                match i.Mir.rp with
                | None -> []
                | Some rp ->
                  Array.to_list rp.Mir.rp_args @ Array.to_list rp.Mir.rp_locals
                  @ rp.Mir.rp_stack)
          in
          List.iter
            (fun bid ->
              let b = Mir.block f bid in
              (* Phi operands flow from their PREDECESSOR: a header value
                 reaching a later merge through an exit-side edge needs an
                 exit phi even if the merge block itself is not dominated
                 by the exit. (E's own phis are handled explicitly.) *)
              if bid <> exit_bid then
                List.iter
                  (fun (phi : Mir.instr) ->
                    match phi.Mir.kind with
                    | Mir.Phi ops ->
                      let preds = Array.of_list b.Mir.preds in
                      Array.iteri
                        (fun k op ->
                          if k < Array.length preds && after_exit preds.(k) then note op)
                        ops
                    | _ -> ())
                  b.Mir.phis;
              List.iter (consider bid) b.Mir.body;
              match b.Mir.term with
              | Mir.Branch (c, _, _) ->
                if after_exit bid && List.mem c header_defs then
                  Hashtbl.replace used_outside c true
              | Mir.Return d ->
                if after_exit bid && List.mem d header_defs then
                  Hashtbl.replace used_outside d true
              | Mir.Goto _ | Mir.Unreachable -> ())
            f.Mir.block_order;
          let outside_subst = Hashtbl.create 8 in
          Hashtbl.iter
            (fun d (_ : bool) ->
              if is_const d then Hashtbl.replace outside_subst d (map_pre d)
              else
              let ops =
                Array.of_list
                  (List.map
                     (fun p ->
                       if p = pre_bid then map_pre d
                       else if p = latch_bid then
                         (* The latch operand may itself be a header def (an
                            unmodified slot or a chain value); route it
                            through its in-loop version. *)
                         let x = map_latch d in
                         Option.value (Hashtbl.find_opt in_loop_subst x) ~default:x
                       else Hashtbl.find in_loop_subst d  (* used => present *))
                     exit_blk.Mir.preds)
              in
              let s = Mir.append_phi f exit_blk ops in
              Hashtbl.replace outside_subst d s)
            used_outside;
          (* Apply the substitutions: header defs inside the loop become the
             new B phis; at or beyond the exit they become the exit phis.
             Phi operands are substituted by the predecessor they flow
             from. *)
          let fresh_phis = Hashtbl.create 16 in
          List.iter
            (fun (i : Mir.instr) -> Hashtbl.replace fresh_phis i.Mir.def true)
            body_blk.Mir.phis;
          Hashtbl.iter (fun _ s -> Hashtbl.replace fresh_phis s true) outside_subst;
          let choose_for bid d =
            if bid = pre_bid then map_pre d
            else if in_new_loop bid then
              Option.value (Hashtbl.find_opt in_loop_subst d) ~default:d
            else if after_exit bid then
              Option.value (Hashtbl.find_opt outside_subst d) ~default:d
            else d
          in
          let subst_block bid =
            let b = Mir.block f bid in
            let choose = choose_for bid in
            let apply (i : Mir.instr) =
              i.Mir.kind <- Mir.map_operands choose i.Mir.kind;
              i.Mir.rp <- Option.map (Mir.map_resume_point choose) i.Mir.rp
            in
            List.iter
              (fun (phi : Mir.instr) ->
                if not (Hashtbl.mem fresh_phis phi.Mir.def) then
                  match phi.Mir.kind with
                  | Mir.Phi ops ->
                    let preds = Array.of_list b.Mir.preds in
                    phi.Mir.kind <-
                      Mir.Phi (Array.mapi (fun i op -> choose_for preds.(i) op) ops)
                  | _ -> ())
              b.Mir.phis;
            List.iter apply b.Mir.body;
            b.Mir.term <-
              (match b.Mir.term with
              | Mir.Goto t -> Mir.Goto t
              | Mir.Branch (c, a, bb) -> Mir.Branch (choose c, a, bb)
              | Mir.Return d -> Mir.Return (choose d)
              | Mir.Unreachable -> Mir.Unreachable)
          in
          List.iter
            (fun bid -> if bid <> loop.Cfg.header then subst_block bid)
            f.Mir.block_order;
          (* Retire the header. *)
          f.Mir.block_order <- List.filter (fun b -> b <> loop.Cfg.header) f.Mir.block_order;
          Hashtbl.remove f.Mir.blocks loop.Cfg.header;
          if f.Mir.osr_loop_header = Some loop.Cfg.header then
            f.Mir.osr_loop_header <- Some body_bid;
          ignore doms;
          true
        | _ -> false)
    | _ -> false)
  | _ -> false

let run ?(max_loops = max_int) (f : Mir.func) =
  (* One loop per round: each inversion rewires the CFG, so the loop forest
     (and the body-membership sets the transformation consults) must be
     recomputed before the next one. Inverted loops end with a conditional
     latch and no longer match the while-shape, so this terminates. *)
  let inverted = ref 0 in
  let progress = ref true in
  while !progress && !inverted < max_loops do
    progress := false;
    let doms = Cfg.dominators f in
    let loops = List.rev (Cfg.natural_loops f doms) in
    (* Innermost (smallest) first. *)
    match List.find_opt (invert_one f doms) loops with
    | Some _ ->
      incr inverted;
      progress := true
    | None -> ()
  done;
  !inverted
