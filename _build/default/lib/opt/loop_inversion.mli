(** Loop inversion (paper §3.4): rewrites while-shaped loops into
    repeat-shaped loops, replacing the conditional + unconditional jump per
    iteration with a single conditional jump at the bottom, and inserting a
    wrapping conditional before the loop to preserve zero-trip semantics.

    The transformation applies to loops whose header contains only phis and
    the exit test, with a single latch and a single preheader. The paper's
    point is the interaction with the rest of the pipeline: after parameter
    specialization and constant propagation the wrapping conditional often
    folds, and dead-code elimination then removes it — proving at compile
    time that the loop runs at least once. *)

val run : ?max_loops:int -> Mir.func -> int
(** Returns the number of loops inverted. [max_loops] bounds how many are
    transformed (used to bisect and by ablation benches). *)
