open Runtime
open Constprop

type stats = { folded : int; branches_decided : int }

(* Instruction kinds [try_fold] can evaluate to a constant when the
   operands are constants — for these a ⊥ operand means "wait", not ⊤. *)
let foldable (kind : Mir.instr_kind) =
  match kind with
  | Mir.Binop _ | Mir.Cmp _ | Mir.Unop _ | Mir.To_bool _ | Mir.Box _
  | Mir.Type_barrier _ | Mir.Check_array _ | Mir.String_length _ ->
    true
  | Mir.Call_native (name, _) -> Builtins.is_pure name
  | _ -> false

let run (f : Mir.func) =
  let lat : (Mir.def, lat) Hashtbl.t = Hashtbl.create 64 in
  let lookup d = Option.value (Hashtbl.find_opt lat d) ~default:Bot in
  let exec_edges : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
  let exec_blocks : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let edge_executable p s = Hashtbl.mem exec_edges (p, s) in
  let block_executable b = Hashtbl.mem exec_blocks b in
  (* Use lists: def -> instructions reading it, def -> blocks whose
     terminator tests it. *)
  let users : (Mir.def, Mir.instr list) Hashtbl.t = Hashtbl.create 64 in
  let branch_users : (Mir.def, int list) Hashtbl.t = Hashtbl.create 16 in
  let add tbl k v =
    Hashtbl.replace tbl k (v :: Option.value (Hashtbl.find_opt tbl k) ~default:[])
  in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      List.iter
        (fun (i : Mir.instr) ->
          List.iter (fun d -> add users d i) (Mir.instr_operands i.Mir.kind))
        (b.Mir.phis @ b.Mir.body);
      match b.Mir.term with
      | Mir.Branch (c, _, _) -> add branch_users c bid
      | Mir.Goto _ | Mir.Return _ | Mir.Unreachable -> ())
    f.Mir.block_order;
  (* Worklists. *)
  let ssa_wl : Mir.def Queue.t = Queue.create () in
  let flow_wl : (int * int) Queue.t = Queue.create () in
  let set_lat d fresh =
    let current = lookup d in
    let merged = meet current fresh in
    if not (lat_equal merged current) then begin
      Hashtbl.replace lat d merged;
      Queue.add d ssa_wl
    end
  in
  let eval_instr bid (i : Mir.instr) =
    let fresh =
      match i.Mir.kind with
      | Mir.Phi ops ->
        (* Meet only over operands arriving on executable edges. *)
        let b = Mir.block f bid in
        let preds = Array.of_list b.Mir.preds in
        let acc = ref Bot in
        Array.iteri
          (fun k d ->
            if k < Array.length preds && edge_executable preds.(k) bid then
              acc := meet !acc (lookup d))
          ops;
        !acc
      | kind ->
        let v = try_fold kind lookup in
        if
          (match v with Top -> true | Bot | Const _ -> false)
          && foldable kind
          && List.exists
               (fun d -> lat_equal (lookup d) Bot)
               (Mir.instr_operands kind)
        then Bot (* operands not resolved yet: stay optimistic *)
        else v
    in
    set_lat i.Mir.def fresh
  in
  let eval_term bid =
    let b = Mir.block f bid in
    match b.Mir.term with
    | Mir.Goto t -> Queue.add (bid, t) flow_wl
    | Mir.Branch (c, t, e) -> (
      match lookup c with
      | Bot -> () (* condition unknown yet; revisited when it resolves *)
      | Const v -> Queue.add ((bid, if Convert.to_boolean v then t else e)) flow_wl
      | Top ->
        Queue.add (bid, t) flow_wl;
        Queue.add (bid, e) flow_wl)
    | Mir.Return _ | Mir.Unreachable -> ()
  in
  let eval_block bid =
    let b = Mir.block f bid in
    List.iter (eval_instr bid) b.Mir.phis;
    List.iter (eval_instr bid) b.Mir.body;
    eval_term bid
  in
  let mark_block bid =
    if not (block_executable bid) then begin
      Hashtbl.replace exec_blocks bid ();
      eval_block bid
    end
  in
  (* Roots: the function entry and, when present, the OSR entry. *)
  mark_block f.Mir.entry;
  Option.iter mark_block f.Mir.osr_entry;
  let drain () =
    while not (Queue.is_empty flow_wl && Queue.is_empty ssa_wl) do
      while not (Queue.is_empty flow_wl) do
        let p, s = Queue.pop flow_wl in
        if not (edge_executable p s) then begin
          Hashtbl.replace exec_edges (p, s) ();
          if block_executable s then
            (* Known block, new incoming edge: only its phis can change. *)
            List.iter (eval_instr s) (Mir.block f s).Mir.phis
          else mark_block s
        end
      done;
      while not (Queue.is_empty ssa_wl) do
        let d = Queue.pop ssa_wl in
        List.iter
          (fun (u : Mir.instr) ->
            match Hashtbl.find_opt f.Mir.def_block u.Mir.def with
            | Some bid when block_executable bid -> eval_instr bid u
            | _ -> ())
          (Option.value (Hashtbl.find_opt users d) ~default:[]);
        List.iter
          (fun bid -> if block_executable bid then eval_term bid)
          (Option.value (Hashtbl.find_opt branch_users d) ~default:[])
      done
    done
  in
  drain ();
  (* Fold constants in executable blocks (identical policy to Constprop);
     untouched unexecutable blocks are DCE's to delete. *)
  let folded = ref 0 in
  List.iter
    (fun bid ->
      if block_executable bid then
        let b = Mir.block f bid in
        List.iter
          (fun (i : Mir.instr) ->
            match lookup i.Mir.def with
            | Const v
              when (not (Mir.has_side_effect i.Mir.kind))
                   && (match i.Mir.kind with Mir.Constant _ -> false | _ -> true) ->
              i.Mir.kind <- Mir.Constant v;
              i.Mir.ty <- Mir.ty_of_value v;
              i.Mir.rp <- None;
              incr folded
            | _ -> ())
          (b.Mir.phis @ b.Mir.body))
    f.Mir.block_order;
  (* Folded phis are no longer phis: keep the phi section well-formed. *)
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      let still_phi, folded_phis =
        List.partition
          (fun (i : Mir.instr) -> match i.Mir.kind with Mir.Phi _ -> true | _ -> false)
          b.Mir.phis
      in
      if folded_phis <> [] then begin
        b.Mir.phis <- still_phi;
        b.Mir.body <- folded_phis @ b.Mir.body
      end)
    f.Mir.block_order;
  let branches_decided = ref 0 in
  List.iter
    (fun bid ->
      if block_executable bid then
        match (Mir.block f bid).Mir.term with
        | Mir.Branch (c, _, _) -> (
          match lookup c with Const _ -> incr branches_decided | Bot | Top -> ())
        | _ -> ())
    f.Mir.block_order;
  { folded = !folded; branches_decided = !branches_decided }
