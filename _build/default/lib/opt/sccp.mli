(** Sparse conditional constant propagation (Wegman–Zadeck).

    The ablation comparator for {!Constprop}: the paper (§3.3) deliberately
    uses the branch-insensitive Aho formulation for compile-time economy;
    this pass implements the full conditional algorithm so the repository
    can measure what that choice left on the table (see the constant-
    propagation ablation in [bench/main.exe]).

    Differences from {!Constprop}:
    - optimistic: values start at ⊥ and only flow along *executable* CFG
      edges, so a phi fed by a branch side that specialization proves dead
      still folds to the live operand's constant;
    - branch conditions that evaluate to constants mark only the taken
      side executable (both entry points — function entry and the OSR
      block — are roots).

    The pass rewrites foldable instructions in executable blocks to
    constants, exactly like {!Constprop}; resolving the now-constant
    branches and deleting the unreachable blocks remains {!Dce}'s job, so
    the two passes compose the same way. *)

type stats = {
  folded : int;  (** instructions rewritten to constants *)
  branches_decided : int;
      (** conditional branches whose condition was proven constant *)
}

val run : Mir.func -> stats
