(** Loop unrolling under compile-time-known trip counts — the first of the
    classic optimizations the paper's §6 proposes to re-implement "in the
    context of runtime-value specialization". Off by default.

    Parameter specialization is what makes this possible at all: the trip
    count of a counted loop becomes a compile-time constant exactly when
    the loop bound was a function parameter. The pass fully unrolls loops
    matching the same induction pattern as the bounds-check eliminator
    ([i = phi(c0, i + c)] with a constant-bounded header test) when the
    trip count and the resulting code size are small.

    Cloned instructions keep their resume points: the bytecode is
    untouched, so a guard failing in the j-th unrolled copy reconstructs
    the interpreter frame with the j-th iteration's values. *)

val run : ?max_trips:int -> ?max_copied_instrs:int -> Mir.func -> int
(** Returns the number of loops unrolled. Defaults: [max_trips = 8],
    [max_copied_instrs = 256]. *)
