lib/runtime/builtins.ml: Array Buffer Char Convert Float List Ops Printf String Value
