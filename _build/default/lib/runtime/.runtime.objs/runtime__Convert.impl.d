lib/runtime/convert.ml: Float String Value
