lib/runtime/convert.mli: Value
