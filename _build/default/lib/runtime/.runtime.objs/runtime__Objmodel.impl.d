lib/runtime/objmodel.ml: Array Builtins Convert Float Hashtbl Option Printf String Value
