lib/runtime/objmodel.mli: Value
