lib/runtime/ops.ml: Convert Float String Value
