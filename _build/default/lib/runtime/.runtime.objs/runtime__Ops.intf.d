lib/runtime/ops.mli: Value
