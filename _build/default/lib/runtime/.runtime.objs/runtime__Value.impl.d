lib/runtime/value.ml: Array Float Format Hashtbl Int64 List Printf String
