lib/runtime/value.mli: Format Hashtbl
