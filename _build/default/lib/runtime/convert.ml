let string_to_number s =
  let s = String.trim s in
  if s = "" then 0.0
  else
    match float_of_string_opt s with
    | Some f -> f
    | None -> (
      match int_of_string_opt s with
      | Some n -> float_of_int n
      | None -> Float.nan)

let rec to_number (v : Value.t) =
  match v with
  | Undefined -> Float.nan
  | Null -> 0.0
  | Bool b -> if b then 1.0 else 0.0
  | Int n -> float_of_int n
  | Double f -> f
  | Str s -> string_to_number s
  | Obj _ | Closure _ | Native_fun _ -> Float.nan
  | Arr a ->
    (* JS converts arrays through their string image; [x] -> ToNumber x
       (without recursive flattening), [] -> 0, longer arrays -> NaN. *)
    if a.length = 0 then 0.0
    else if a.length = 1 then
      match Value.arr_get a 0 with
      | Arr _ -> Float.nan
      | single -> to_number single
    else Float.nan

let to_boolean (v : Value.t) =
  match v with
  | Undefined | Null -> false
  | Bool b -> b
  | Int n -> n <> 0
  | Double f -> not (f = 0.0 || Float.is_nan f)
  | Str s -> String.length s > 0
  | Obj _ | Arr _ | Closure _ | Native_fun _ -> true

let two_pow_32 = 4294967296.0

let to_uint32 v =
  match (v : Value.t) with
  | Int n when n >= 0 -> n
  | _ ->
    let f = to_number v in
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then 0
    else
      let t = Float.rem (Float.trunc f) two_pow_32 in
      let t = if t < 0.0 then t +. two_pow_32 else t in
      int_of_float t

let to_int32 v =
  match (v : Value.t) with
  | Int n -> n
  | _ ->
    let u = to_uint32 v in
    if u >= 0x8000_0000 then u - 0x1_0000_0000 else u

let to_string = Value.to_display_string
