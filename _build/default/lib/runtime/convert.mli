(** JavaScript-style conversions for the MiniJS subset.

    Objects, arrays and functions convert to numbers as [NaN] (we do not
    model [valueOf]/[toString] chains); this restriction is documented in
    DESIGN.md and is irrelevant to the paper's benchmarks. *)

val to_number : Value.t -> float
val to_boolean : Value.t -> bool

val to_int32 : Value.t -> int
(** JS ToInt32: modular reduction into [\[-2{^31}, 2{^31})]. *)

val to_uint32 : Value.t -> int
(** JS ToUint32: modular reduction into [\[0, 2{^32})]. *)

val to_string : Value.t -> string
(** JS ToString on the subset; same as {!Value.to_display_string}. *)
