exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let get_prop recv name =
  match Builtins.get_prop recv name with
  | Some v -> v
  | None -> (
    match recv with
    | Value.Obj o -> Option.value (Hashtbl.find_opt o.Value.props name) ~default:Value.Undefined
    | Value.Arr _ | Value.Closure _ | Value.Native_fun _ -> Value.Undefined
    | Value.Str _ -> Value.Undefined
    | Value.Undefined | Value.Null ->
      error "cannot read property %S of %s" name (Value.typeof recv)
    | Value.Bool _ | Value.Int _ | Value.Double _ -> Value.Undefined)

let set_prop recv name v =
  match recv with
  | Value.Obj o -> Value.obj_set o name v
  | Value.Arr a when name = "length" ->
    let n = Convert.to_int32 v in
    if n < a.Value.length then a.Value.length <- max n 0
    else if n > a.Value.length then
      (* Growing through .length fills with Undefined. *)
      Value.arr_set a (n - 1) Value.Undefined
  | Value.Arr _ -> ()  (* non-length expando properties on arrays: ignored *)
  | _ -> error "cannot set property %S on %s" name (Value.typeof recv)

let get_elem recv idx =
  match recv with
  | Value.Arr a -> (
    match idx with
    | Value.Int i -> Value.arr_get a i
    | _ ->
      let f = Convert.to_number idx in
      if Float.is_integer f then Value.arr_get a (int_of_float f)
      else Value.Undefined)
  | Value.Str s ->
    let i = Convert.to_int32 idx in
    if i >= 0 && i < String.length s then Value.Str (String.make 1 s.[i])
    else Value.Undefined
  | Value.Obj o ->
    let key = Convert.to_string idx in
    Option.value (Hashtbl.find_opt o.Value.props key) ~default:Value.Undefined
  | _ -> error "cannot index %s" (Value.typeof recv)

let set_elem recv idx v =
  match recv with
  | Value.Arr a -> (
    match idx with
    | Value.Int i -> Value.arr_set a i v
    | _ ->
      let f = Convert.to_number idx in
      if Float.is_integer f then Value.arr_set a (int_of_float f) v)
  | Value.Obj o -> Value.obj_set o (Convert.to_string idx) v
  | _ -> error "cannot index-assign %s" (Value.typeof recv)

let construct ctor args =
  match ctor with
  | "Array" -> (
    match args with
    | [| Value.Int n |] when n >= 0 -> Value.Arr (Value.new_arr n)
    | _ -> Value.Arr (Value.arr_of_list (Array.to_list args)))
  | "Object" -> Value.Obj (Value.new_obj ())
  | other -> error "unknown constructor %s" other

(* Method dispatch, shared verbatim between the interpreter and compiled
   code: builtin string/array methods first, then own properties holding
   callable values. [call] performs the actual invocation (the interpreter
   or the JIT engine supplies it). *)
let dispatch_method ~call recv name args =
  match Builtins.method_call ~call recv name args with
  | Some v -> v
  | None -> (
    match recv with
    | Value.Obj _ -> (
      match get_prop recv name with
      | (Value.Closure _ | Value.Native_fun _) as f -> call f args
      | Value.Undefined -> error "method %s is not defined" name
      | other -> error "property %s is not callable (%s)" name (Value.typeof other))
    | _ -> error "no method %s on %s" name (Value.typeof recv))
