(** The object model: property/element access and construction semantics
    shared by the interpreter and the JIT's native code, so compiled code
    cannot diverge from interpreted code. *)

exception Error of string
(** Raised for operations that are TypeErrors in JavaScript (reading a
    property of [null], calling a non-function, ...). *)

val get_prop : Value.t -> string -> Value.t
(** Property read with builtin fallbacks ([length]); missing properties are
    [Undefined]. @raise Error on [null]/[undefined] receivers. *)

val set_prop : Value.t -> string -> Value.t -> unit
(** Property write; assigning [length] of an array resizes it. *)

val get_elem : Value.t -> Value.t -> Value.t
(** [recv[idx]] on arrays, strings and objects. *)

val set_elem : Value.t -> Value.t -> Value.t -> unit

val construct : string -> Value.t array -> Value.t
(** [new Array(...)] / [new Object()]. *)

val dispatch_method :
  call:(Value.t -> Value.t array -> Value.t) ->
  Value.t ->
  string ->
  Value.t array ->
  Value.t
(** Method-call semantics shared by the interpreter and compiled code:
    builtin string/array methods, then own callable properties. *)
