type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Bit_and
  | Bit_or
  | Bit_xor
  | Shl
  | Shr
  | Ushr

type cmp = Lt | Le | Gt | Ge | Eq | Neq | Strict_eq | Strict_neq

type unop = Neg | Not | Bit_not | Typeof | To_number

let is_string (v : Value.t) = match v with Str _ -> true | _ -> false

let numeric_binop op a b =
  let x = Convert.to_number a and y = Convert.to_number b in
  let r =
    match op with
    | Sub -> x -. y
    | Mul -> x *. y
    | Div -> x /. y
    | Mod -> Float.rem x y
    | Add | Bit_and | Bit_or | Bit_xor | Shl | Shr | Ushr -> assert false
  in
  Value.norm_num r

let int32_wrap n =
  let m = n land 0xFFFF_FFFF in
  if m >= 0x8000_0000 then m - 0x1_0000_0000 else m

let bitwise_binop op a b =
  let x = Convert.to_int32 a and y = Convert.to_int32 b in
  match op with
  | Bit_and -> Value.Int (x land y)
  | Bit_or -> Value.Int (x lor y)
  | Bit_xor -> Value.Int (x lxor y)
  | Shl -> Value.Int (int32_wrap (x lsl (Convert.to_uint32 b land 31)))
  | Shr -> Value.Int (x asr (Convert.to_uint32 b land 31))
  | Ushr ->
    let ux = Convert.to_uint32 a in
    Value.of_int (ux lsr (Convert.to_uint32 b land 31))
  | Add | Sub | Mul | Div | Mod -> assert false

let binop op (a : Value.t) (b : Value.t) =
  match op with
  | Add ->
    if is_string a || is_string b then
      Value.Str (Convert.to_string a ^ Convert.to_string b)
    else (
      match (a, b) with
      | Value.Int x, Value.Int y -> Value.of_int (x + y)
      | _ -> Value.norm_num (Convert.to_number a +. Convert.to_number b))
  | Sub | Mul | Div | Mod -> (
    match (op, a, b) with
    | Sub, Value.Int x, Value.Int y -> Value.of_int (x - y)
    | Mul, Value.Int x, Value.Int y -> Value.of_int (x * y)
    | _ -> numeric_binop op a b)
  | Bit_and | Bit_or | Bit_xor | Shl | Shr | Ushr -> bitwise_binop op a b

let strict_eq (a : Value.t) (b : Value.t) =
  match (a, b) with
  | Value.Undefined, Value.Undefined | Value.Null, Value.Null -> true
  | Value.Bool x, Value.Bool y -> x = y
  | Value.Int x, Value.Int y -> x = y
  | Value.Double x, Value.Double y -> x = y (* NaN <> NaN, as required *)
  | Value.Int x, Value.Double y | Value.Double y, Value.Int x -> float_of_int x = y
  | Value.Str x, Value.Str y -> String.equal x y
  | Value.Obj x, Value.Obj y -> x.Value.oid = y.Value.oid
  | Value.Arr x, Value.Arr y -> x.Value.aid = y.Value.aid
  | Value.Closure x, Value.Closure y -> x.Value.cid = y.Value.cid
  | Value.Native_fun x, Value.Native_fun y -> String.equal x y
  | ( ( Value.Undefined | Value.Null | Value.Bool _ | Value.Int _ | Value.Double _
      | Value.Str _ | Value.Obj _ | Value.Arr _ | Value.Closure _ | Value.Native_fun _ ),
      _ ) ->
    false

let rec loose_eq (a : Value.t) (b : Value.t) =
  match (a, b) with
  | (Value.Undefined | Value.Null), (Value.Undefined | Value.Null) -> true
  | (Value.Int _ | Value.Double _), (Value.Int _ | Value.Double _) -> strict_eq a b
  | Value.Str x, Value.Str y -> String.equal x y
  | (Value.Int _ | Value.Double _), Value.Str _ ->
    Convert.to_number a = Convert.to_number b
  | Value.Str _, (Value.Int _ | Value.Double _) ->
    Convert.to_number a = Convert.to_number b
  | Value.Bool x, _ -> loose_eq (Value.Int (if x then 1 else 0)) b
  | _, Value.Bool y -> loose_eq a (Value.Int (if y then 1 else 0))
  | Value.Obj x, Value.Obj y -> x.Value.oid = y.Value.oid
  | Value.Arr x, Value.Arr y -> x.Value.aid = y.Value.aid
  | Value.Closure x, Value.Closure y -> x.Value.cid = y.Value.cid
  | Value.Native_fun x, Value.Native_fun y -> String.equal x y
  (* Object-to-primitive comparisons would need valueOf; outside the
     subset, they compare unequal. *)
  | ( ( Value.Undefined | Value.Null | Value.Int _ | Value.Double _ | Value.Str _
      | Value.Obj _ | Value.Arr _ | Value.Closure _ | Value.Native_fun _ ),
      _ ) ->
    false

let relational lt_string lt_number a b =
  match ((a : Value.t), (b : Value.t)) with
  | Value.Str x, Value.Str y -> lt_string x y
  | _ ->
    let x = Convert.to_number a and y = Convert.to_number b in
    if Float.is_nan x || Float.is_nan y then false else lt_number x y

let cmp op a b =
  let r =
    match op with
    | Lt -> relational (fun x y -> String.compare x y < 0) ( < ) a b
    | Le -> relational (fun x y -> String.compare x y <= 0) ( <= ) a b
    | Gt -> relational (fun x y -> String.compare x y > 0) ( > ) a b
    | Ge -> relational (fun x y -> String.compare x y >= 0) ( >= ) a b
    | Eq -> loose_eq a b
    | Neq -> not (loose_eq a b)
    | Strict_eq -> strict_eq a b
    | Strict_neq -> not (strict_eq a b)
  in
  Value.Bool r

let unop op (a : Value.t) =
  match op with
  | Neg -> Value.norm_num (-.Convert.to_number a)
  | Not -> Value.Bool (not (Convert.to_boolean a))
  (* lnot x = -x - 1 stays within int32 range for int32 inputs. *)
  | Bit_not -> Value.Int (lnot (Convert.to_int32 a))
  | Typeof -> Value.Str (Value.typeof a)
  | To_number -> Value.norm_num (Convert.to_number a)

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | Bit_and -> "and"
  | Bit_or -> "or"
  | Bit_xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Ushr -> "ushr"

let cmp_to_string = function
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Neq -> "neq"
  | Strict_eq -> "stricteq"
  | Strict_neq -> "strictneq"

let unop_to_string = function
  | Neg -> "neg"
  | Not -> "not"
  | Bit_not -> "bitnot"
  | Typeof -> "typeof"
  | To_number -> "tonum"

let binop_is_int_pure = function
  | Bit_and | Bit_or | Bit_xor | Shl | Shr -> true
  | Add | Sub | Mul | Div | Mod | Ushr -> false
