(** Operator semantics shared by the interpreter, the JIT's constant folder,
    and the native-code executor.

    Having a single implementation is what makes the paper's speculation
    safe: folding an operation at compile time (constant propagation, §3.3)
    yields exactly the value the interpreter would have produced. *)

(** Binary arithmetic/bitwise operators. *)
type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Bit_and
  | Bit_or
  | Bit_xor
  | Shl
  | Shr
  | Ushr

(** Comparison operators, including JavaScript's loose/strict split. *)
type cmp = Lt | Le | Gt | Ge | Eq | Neq | Strict_eq | Strict_neq

(** Unary operators. *)
type unop = Neg | Not | Bit_not | Typeof | To_number

val binop : binop -> Value.t -> Value.t -> Value.t
(** Full JavaScript semantics: [Add] concatenates when either operand is a
    string, numeric operators coerce through ToNumber, bitwise operators
    through ToInt32/ToUint32. Results are normalized ({!Value.norm_num}). *)

val cmp : cmp -> Value.t -> Value.t -> Value.t
(** Always returns a [Bool]. Relational operators compare strings
    lexicographically when both operands are strings, else numerically. *)

val unop : unop -> Value.t -> Value.t

val strict_eq : Value.t -> Value.t -> bool
val loose_eq : Value.t -> Value.t -> bool

val binop_to_string : binop -> string
val cmp_to_string : cmp -> string
val unop_to_string : unop -> string

val binop_is_int_pure : binop -> bool
(** True for operators that map int32 operands to an int32 result with no
    possibility of overflow ([Bit_and], [Bit_or], [Bit_xor], [Shl], [Shr]);
    used by the JIT to omit overflow guards. *)
