(** Runtime values of the MiniJS virtual machine.

    Numbers follow the engine convention the paper relies on: a JavaScript
    number is stored as [Int] whenever it is integral, fits in 32 bits and is
    not negative zero, and as [Double] otherwise. All numeric operators
    normalize their result through {!norm_num}, so the [Int]/[Double] split
    is an unobservable representation choice (exactly the type-specialization
    premise of IonMonkey), while [typeof] reports ["number"] for both. *)

type t =
  | Undefined
  | Null
  | Bool of bool
  | Int of int  (** invariant: in [\[-2{^31}, 2{^31})] *)
  | Double of float
  | Str of string
  | Obj of obj
  | Arr of arr
  | Closure of closure
  | Native_fun of string  (** builtin function, identified by name *)

and obj = { props : (string, t) Hashtbl.t; mutable key_order : string list; oid : int }
(** [key_order] holds the property keys most-recently-added first; write
    through {!obj_set} so it stays consistent with [props]. *)

and arr = { mutable elems : t array; mutable length : int; aid : int }

and closure = { fid : int; env : t ref array; cid : int }
(** [fid] indexes the program's function table; [env] holds the captured
    variables, shared by reference. *)

(** Runtime type tags, as used by type barriers in the JIT. *)
type tag =
  | Tag_undefined
  | Tag_null
  | Tag_bool
  | Tag_int
  | Tag_double
  | Tag_string
  | Tag_object
  | Tag_array
  | Tag_function

val tag_of : t -> tag
val tag_to_string : tag -> string

val int32_min : int
val int32_max : int

val norm_num : float -> t
(** Canonical representation of a JavaScript number. *)

val of_int : int -> t
(** [of_int n] is [Int n] if in range, else [Double (float n)]. *)

val fresh_id : unit -> int
(** Next identity id (used when allocating closures). *)

val new_obj : unit -> obj
val obj_with_props : (string * t) list -> obj

val obj_set : obj -> string -> t -> unit
(** Write one property, maintaining insertion order for {!obj_keys}. *)

val obj_keys : obj -> string list
(** Property names in insertion order (JS for-in enumeration order). *)

val new_arr : int -> arr
(** [new_arr n] allocates an array of length [n] filled with [Undefined]. *)

val arr_of_list : t list -> arr
val arr_get : arr -> int -> t
(** Out-of-bounds reads return [Undefined], as JavaScript does. *)

val arr_set : arr -> int -> t -> unit
(** Out-of-bounds writes grow the array, filling holes with [Undefined]. *)

val same_value : t -> t -> bool
(** Identity for objects/arrays/closures, value equality for primitives.
    This is the equality used by the specialization argument cache: a
    specialized binary is reused only if every argument is [same_value] as
    the cached one. NaN equals NaN here (cache semantics, not [===]). *)

val same_args : t array -> t array -> bool

val typeof : t -> string

val pp : Format.formatter -> t -> unit
val to_display_string : t -> string
(** The string [print] would output (JS [ToString] on our subset). *)
