lib/support/powerlaw.ml: Array Prng
