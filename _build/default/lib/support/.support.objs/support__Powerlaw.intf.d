lib/support/powerlaw.mli: Prng
