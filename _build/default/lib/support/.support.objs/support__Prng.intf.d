lib/support/prng.mli:
