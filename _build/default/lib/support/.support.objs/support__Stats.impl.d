lib/support/stats.ml: Array Hashtbl List Option Printf
