lib/support/stats.mli:
