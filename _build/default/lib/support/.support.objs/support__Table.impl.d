lib/support/table.ml: List Printf String
