lib/support/table.mli:
