type t = { cumulative : float array }

let create ~alpha ~max_value =
  if alpha <= 0.0 then invalid_arg "Powerlaw.create: alpha must be positive";
  if max_value < 1 then invalid_arg "Powerlaw.create: max_value must be >= 1";
  let weights = Array.init max_value (fun i -> float_of_int (i + 1) ** -.alpha) in
  let cumulative = Array.make max_value 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  let total = !acc in
  Array.iteri (fun i c -> cumulative.(i) <- c /. total) cumulative;
  { cumulative }

let sample t rng =
  let x = Prng.float rng 1.0 in
  (* Binary search for the first index whose cumulative mass exceeds x. *)
  let lo = ref 0 and hi = ref (Array.length t.cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo + 1

let mass_at_one t = t.cumulative.(0)

let calibrate_alpha ~target_mass_at_one ~max_value =
  let mass alpha = mass_at_one (create ~alpha ~max_value) in
  let lo = ref 0.01 and hi = ref 10.0 in
  for _ = 1 to 60 do
    let mid = (!lo +. !hi) /. 2.0 in
    if mass mid < target_mass_at_one then lo := mid else hi := mid
  done;
  (!lo +. !hi) /. 2.0
