(** Discrete power-law (zeta/Zipf-like) samplers.

    Figures 1 and 2 of the paper show that both the number of calls per
    JavaScript function and the number of distinct argument sets per function
    follow power distributions with a heavy mass at 1 (48.88% and 59.91%
    respectively). The web-session generator draws from these samplers. *)

type t

val create : alpha:float -> max_value:int -> t
(** [create ~alpha ~max_value] prepares a sampler over [1 .. max_value] with
    probability proportional to [k ** -alpha]. Requires [alpha > 0.] and
    [max_value >= 1]. *)

val sample : t -> Prng.t -> int

val mass_at_one : t -> float
(** Probability that the sampler returns 1; useful to calibrate [alpha]
    against the paper's reported head fractions. *)

val calibrate_alpha : target_mass_at_one:float -> max_value:int -> float
(** Binary-search the exponent so that [mass_at_one] matches the target
    fraction (e.g. 0.4888 for Figure 1, 0.5991 for Figure 2). *)
