type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* SplitMix64 finalizer (Steele, Lea, Flood; JDK 8). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits in OCaml's 63-bit native int. *)
  let raw = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  raw mod bound

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (raw /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  assert (total > 0.0);
  let x = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.weighted: empty"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
  in
  pick 0.0 choices

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
