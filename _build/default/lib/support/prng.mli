(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All stochastic components of the reproduction (workload generators,
    property-test seeds) draw from this generator so that every figure and
    table regenerates byte-identically across runs. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from a seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted : t -> (float * 'a) list -> 'a
(** [weighted t choices] picks proportionally to the (positive) weights.
    Requires a non-empty list with positive total weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
