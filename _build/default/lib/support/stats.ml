let arithmetic_mean xs =
  match xs with
  | [] -> invalid_arg "Stats.arithmetic_mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geometric_mean_ratio xs =
  match xs with
  | [] -> invalid_arg "Stats.geometric_mean_ratio: empty"
  | _ ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int (List.length xs))

let geometric_mean_percent ps =
  let ratios = List.map (fun p -> 1.0 +. (p /. 100.0)) ps in
  (geometric_mean_ratio ratios -. 1.0) *. 100.0

let median xs =
  match xs with
  | [] -> invalid_arg "Stats.median: empty"
  | _ ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

module Histogram = struct
  type t = { counts : (int, int) Hashtbl.t; mutable total : int; mutable max_key : int }

  let create () = { counts = Hashtbl.create 64; total = 0; max_key = 0 }

  let add t k =
    let prev = Option.value (Hashtbl.find_opt t.counts k) ~default:0 in
    Hashtbl.replace t.counts k (prev + 1);
    t.total <- t.total + 1;
    if k > t.max_key then t.max_key <- k

  let count t k = Option.value (Hashtbl.find_opt t.counts k) ~default:0
  let total t = t.total
  let max_key t = t.max_key

  let fraction t k =
    if t.total = 0 then 0.0 else float_of_int (count t k) /. float_of_int t.total

  let bins t ~first ~tail_from =
    let head =
      List.init (tail_from - first) (fun i ->
          let k = first + i in
          (string_of_int k, fraction t k))
    in
    let tail = ref 0 in
    Hashtbl.iter (fun k c -> if k >= tail_from then tail := !tail + c) t.counts;
    let tail_frac =
      if t.total = 0 then 0.0 else float_of_int !tail /. float_of_int t.total
    in
    head @ [ (Printf.sprintf ">=%d" tail_from, tail_frac) ]
end

let percent_change ~base ~v = (base -. v) /. v *. 100.0
