(** Summary statistics and histograms used by the experiment harness.

    The paper reports arithmetic and geometric means of percentage speedups
    (Figure 9) and call-count histograms (Figures 1-3); this module provides
    exactly those reductions. *)

val arithmetic_mean : float list -> float
(** Mean of a non-empty list. *)

val geometric_mean_ratio : float list -> float
(** Geometric mean of a non-empty list of positive ratios. *)

val geometric_mean_percent : float list -> float
(** Geometric mean of percentage deltas: each percentage [p] is folded as the
    ratio [1 + p/100], and the result converted back to a percentage. This is
    how Figure 9(b,d) aggregates per-benchmark percentages, which may be
    negative. *)

val median : float list -> float

(** Histogram over small non-negative integer keys (e.g. "number of times a
    function was called"). *)
module Histogram : sig
  type t

  val create : unit -> t

  val add : t -> int -> unit
  (** Record one observation of key [k]. *)

  val count : t -> int -> int

  val total : t -> int
  (** Number of observations recorded. *)

  val max_key : t -> int
  (** Largest key observed; 0 when empty. *)

  val fraction : t -> int -> float
  (** [fraction t k] is [count t k / total t]; 0 when empty. *)

  val bins : t -> first:int -> tail_from:int -> (string * float) list
  (** Fractions for keys [first .. tail_from - 1] plus a final combined tail
      bin, matching the paper's presentation ("we only show the first 29
      entries; the tail has been combined in entry 30"). *)
end

val percent_change : base:float -> v:float -> float
(** [percent_change ~base ~v] is the speedup of [v] relative to [base] in
    percent: positive when [v < base] (i.e. the optimized run is faster),
    computed as [(base - v) / v * 100]. *)
