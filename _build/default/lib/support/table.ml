type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header ~rows () =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let all = header :: rows in
  let widths =
    List.init ncols (fun c ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all)
  in
  let render_row row =
    let cells = List.mapi (fun c s -> pad (List.nth aligns c) (List.nth widths c) s) row in
    String.concat "  " cells
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows) ^ "\n"

let fmt_pct x = Printf.sprintf "%.2f" x
let fmt_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
