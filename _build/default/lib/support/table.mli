(** Plain-text table rendering for the experiment harness.

    Renders the figure/table layouts of the paper (e.g. the optimization-grid
    of Figure 9) as aligned monospace tables. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  rows:string list list ->
  unit ->
  string
(** [render ~header ~rows ()] aligns columns by their widest cell. [align]
    defaults to [Left] for the first column and [Right] for the rest. Rows
    shorter than the header are padded with empty cells. *)

val fmt_pct : float -> string
(** Two-decimal percentage, e.g. [5.38] -> ["5.38"]. *)

val fmt_f : ?decimals:int -> float -> string
