lib/workloads/kraken.ml: Suite
