lib/workloads/suite.ml:
