lib/workloads/suites.ml: Kraken List String Suite Sunspider V8bench
