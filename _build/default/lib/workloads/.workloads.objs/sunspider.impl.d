lib/workloads/sunspider.ml: Suite
