lib/workloads/v8bench.ml: Suite
