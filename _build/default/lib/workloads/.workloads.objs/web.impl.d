lib/workloads/web.ml: Array Buffer Hashtbl List Option Powerlaw Printf Prng Stats Support
