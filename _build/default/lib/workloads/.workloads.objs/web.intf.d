lib/workloads/web.mli: Support
