(* Kraken-1.1-style suite: large typed-array-ish numeric kernels (audio and
   imaging) plus crypto byte loops. stanford-crypto-ccm's anonymous hot
   function is reproduced as a function expression invoked hundreds of
   times, matching the call profile the paper reports. *)

let ai_astar =
  {|
// Grid best-first search with a linear open list (A*-flavoured access
// pattern: repeated array scans and neighbour expansion).
function findPath(w, h, blocked) {
  var dist = new Array(w * h);
  for (var i = 0; i < w * h; i++) dist[i] = -1;
  var open_ = [0];
  dist[0] = 0;
  var head = 0;
  while (head < open_.length) {
    var cur = open_[head];
    head++;
    var cx = cur % w, cy = (cur - cx) / w;
    var d = dist[cur];
    var dirs = [1, -1, w, -w];
    for (var k = 0; k < 4; k++) {
      var nxt = cur + dirs[k];
      if (nxt < 0 || nxt >= w * h) continue;
      if (dirs[k] == 1 && cx == w - 1) continue;
      if (dirs[k] == -1 && cx == 0) continue;
      if (blocked[nxt]) continue;
      if (dist[nxt] == -1) {
        dist[nxt] = d + 1;
        open_.push(nxt);
      }
    }
  }
  return dist[w * h - 1];
}

var w = 24, h = 24;
var blocked = new Array(w * h);
for (var i = 0; i < w * h; i++) blocked[i] = false;
for (var i = 0; i < h - 2; i++) blocked[i * w + 10] = true;
for (var i = 2; i < h; i++) blocked[i * w + 17] = true;
var total = 0;
for (var rep = 0; rep < 8; rep++) total += findPath(w, h, blocked);
print(total);
|}

let audio_beat_detection =
  {|
function computeEnergy(samples, from, to) {
  var e = 0.0;
  for (var i = from; i < to; i++) e += samples[i] * samples[i];
  return e;
}

var n = 2048;
var samples = new Array(n);
for (var i = 0; i < n; i++) samples[i] = Math.sin(i * 0.3) * Math.cos(i * 0.011);
var beats = 0;
var windowSize = 256;
var history = 0.0;
for (var w = 0; w + windowSize <= n; w += windowSize) {
  var e = computeEnergy(samples, w, w + windowSize);
  if (w > 0 && e > 1.3 * (history / (w / windowSize))) beats++;
  history += e;
}
print(beats, Math.round(history));
|}

let audio_fft =
  {|
// Iterative radix-2 FFT over parallel re/im arrays.
function fft(re, im) {
  var n = re.length;
  // bit-reversal permutation
  for (var i = 1, j = 0; i < n; i++) {
    var bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      var tr = re[i]; re[i] = re[j]; re[j] = tr;
      var ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
  }
  for (var len = 2; len <= n; len <<= 1) {
    var ang = -6.28318530718 / len;
    var wr = Math.cos(ang), wi = Math.sin(ang);
    for (var i = 0; i < n; i += len) {
      var cwr = 1.0, cwi = 0.0;
      for (var j = 0; j < len / 2; j++) {
        var ur = re[i + j], ui = im[i + j];
        var vr = re[i + j + len / 2] * cwr - im[i + j + len / 2] * cwi;
        var vi = re[i + j + len / 2] * cwi + im[i + j + len / 2] * cwr;
        re[i + j] = ur + vr; im[i + j] = ui + vi;
        re[i + j + len / 2] = ur - vr; im[i + j + len / 2] = ui - vi;
        var nwr = cwr * wr - cwi * wi;
        cwi = cwr * wi + cwi * wr;
        cwr = nwr;
      }
    }
  }
}

var n = 128;
var re = new Array(n), im = new Array(n);
for (var i = 0; i < n; i++) { re[i] = Math.sin(i); im[i] = 0.0; }
for (var rep = 0; rep < 6; rep++) fft(re, im);
var mag = 0.0;
for (var i = 0; i < n; i++) mag += re[i] * re[i] + im[i] * im[i];
print(Math.round(mag));
|}

let audio_oscillator =
  {|
function generateSine(buffer, frequency, phase) {
  var n = buffer.length;
  for (var i = 0; i < n; i++) {
    buffer[i] = Math.sin(phase + i * frequency);
  }
  return phase + n * frequency;
}

var buffer = new Array(1024);
var phase = 0.0;
for (var rep = 0; rep < 12; rep++) phase = generateSine(buffer, 0.03, phase);
var peak = 0.0;
for (var i = 0; i < buffer.length; i++) if (buffer[i] > peak) peak = buffer[i];
print(Math.round(phase * 100), Math.round(peak * 1000));
|}

let imaging_gaussian_blur =
  {|
function blurRow(src, dst, width, y, kernel, ksum) {
  var half = (kernel.length - 1) / 2;
  for (var x = 0; x < width; x++) {
    var acc = 0;
    for (var k = 0; k < kernel.length; k++) {
      var sx = x + k - half;
      if (sx < 0) sx = 0;
      if (sx >= width) sx = width - 1;
      acc += src[y * width + sx] * kernel[k];
    }
    dst[y * width + x] = (acc / ksum) | 0;
  }
}

var width = 48, height = 32;
var img = new Array(width * height);
for (var i = 0; i < width * height; i++) img[i] = (i * 37) % 256;
var out = new Array(width * height);
var kernel = [1, 4, 6, 4, 1];
for (var rep = 0; rep < 6; rep++) {
  for (var y = 0; y < height; y++) blurRow(img, out, width, y, kernel, 16);
}
var checksum = 0;
for (var i = 0; i < width * height; i++) checksum = (checksum + out[i]) | 0;
print(checksum);
|}

let imaging_desaturate =
  {|
function desaturate(pixels) {
  // One call over the whole image: the always-same-argument case.
  var n = pixels.length;
  for (var i = 0; i < n; i += 4) {
    var r = pixels[i], g = pixels[i + 1], b = pixels[i + 2];
    var gray = (r * 77 + g * 151 + b * 28) >> 8;
    pixels[i] = gray; pixels[i + 1] = gray; pixels[i + 2] = gray;
  }
  return pixels;
}

var pixels = new Array(4096);
for (var i = 0; i < 4096; i++) pixels[i] = (i * 13) % 256;
for (var rep = 0; rep < 10; rep++) desaturate(pixels);
var sum = 0;
for (var i = 0; i < 4096; i += 16) sum = (sum + pixels[i]) | 0;
print(sum);
|}

let stanford_crypto_ccm =
  {|
// The hot anonymous function of stanford-crypto-ccm: a function expression
// applied to each block, invoked hundreds of times.
var xorBlock = function(a, b, out) {
  for (var i = 0; i < 16; i++) out[i] = a[i] ^ b[i];
  return out;
};

function rotWord(w) {
  return ((w << 8) | (w >>> 24)) & 0xffffffff;
}

var state = new Array(16), key = new Array(16), tmp = new Array(16);
for (var i = 0; i < 16; i++) { state[i] = i * 11; key[i] = 255 - i; }
var acc = 0;
for (var round = 0; round < 600; round++) {
  xorBlock(state, key, tmp);
  for (var i = 0; i < 16; i++) state[i] = (tmp[i] + round) & 0xff;
  acc = (acc + state[round % 16]) | 0;
}
print(acc, rotWord(acc));
|}

let json_stringify_lite =
  {|
// Kraken stresses JSON; MiniJS builds the string image of a nested
// structure by hand with the same string-append profile.
function stringifyArray(arr) {
  var s = "[";
  for (var i = 0; i < arr.length; i++) {
    if (i > 0) s += ",";
    var v = arr[i];
    if (typeof v == "number") s += "" + v;
    else if (typeof v == "string") s += "\"" + v + "\"";
    else if (typeof v == "object") s += stringifyArray(v);
    else s += "null";
  }
  return s + "]";
}

var data = [];
for (var i = 0; i < 30; i++) data.push([i, "item" + i, [i * 2, i * 3]]);
var out = "";
for (var rep = 0; rep < 10; rep++) out = stringifyArray(data);
print(out.length);
|}


let crypto_aes =
  {|
// AES-flavoured byte transforms: sbox substitution, shift-rows index
// shuffle and the xtime GF(2^8) double, over a 16-byte state.
function xtime(b) {
  var doubled = (b << 1) & 0xff;
  return (b & 0x80) != 0 ? doubled ^ 0x1b : doubled;
}
function subBytes(state, sbox) {
  for (var i = 0; i < 16; i++) state[i] = sbox[state[i]];
}
function shiftRows(state, tmp) {
  for (var i = 0; i < 16; i++) tmp[i] = state[i];
  for (var r = 1; r < 4; r++) {
    for (var c = 0; c < 4; c++) state[r + 4 * c] = tmp[r + 4 * ((c + r) % 4)];
  }
}
function mixColumn(state, c) {
  var base = 4 * c;
  var a0 = state[base], a1 = state[base + 1], a2 = state[base + 2], a3 = state[base + 3];
  state[base]     = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
  state[base + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
  state[base + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
  state[base + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
}

var sbox = new Array(256);
for (var i = 0; i < 256; i++) sbox[i] = (i * 7 + 99) & 0xff;
var state = new Array(16), tmp = new Array(16);
for (var i = 0; i < 16; i++) state[i] = i * 17 & 0xff;
var acc = 0;
for (var round = 0; round < 120; round++) {
  subBytes(state, sbox);
  shiftRows(state, tmp);
  for (var c = 0; c < 4; c++) mixColumn(state, c);
  acc = (acc + state[round & 15]) & 0xffffff;
}
print(acc);
|}

let crypto_sha256_iterative =
  {|
// The sigma/ch/maj word mixing of SHA-256's compression function.
function rotr(x, n) { return (x >>> n) | (x << (32 - n)); }
function ch(x, y, z) { return (x & y) ^ (~x & z); }
function maj(x, y, z) { return (x & y) ^ (x & z) ^ (y & z); }
function sigma0(x) { return rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22); }
function sigma1(x) { return rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25); }
function gamma0(x) { return rotr(x, 7) ^ rotr(x, 18) ^ (x >>> 3); }
function gamma1(x) { return rotr(x, 17) ^ rotr(x, 19) ^ (x >>> 10); }
function safe_add(x, y) {
  var lsw = (x & 0xFFFF) + (y & 0xFFFF);
  var msw = (x >> 16) + (y >> 16) + (lsw >> 16);
  return (msw << 16) | (lsw & 0xFFFF);
}

function compress(w, a0, b0, c0) {
  var a = a0, b = b0, c = c0, d = 0x10325476, e = 0x67452301, f = 0, g = 0, h = 0;
  for (var t = 0; t < 64; t++) {
    if (t >= 16)
      w[t] = safe_add(safe_add(gamma1(w[t - 2]), w[t - 7]),
                      safe_add(gamma0(w[t - 15]), w[t - 16]));
    var t1 = safe_add(safe_add(h, sigma1(e)), safe_add(ch(e, f, g), w[t]));
    var t2 = safe_add(sigma0(a), maj(a, b, c));
    h = g; g = f; f = e; e = safe_add(d, t1);
    d = c; c = b; b = a; a = safe_add(t1, t2);
  }
  return safe_add(a, safe_add(e, h));
}

var w = new Array(64);
for (var i = 0; i < 16; i++) w[i] = (i * 0x428a2f98) | 0;
var digest = 0;
for (var round = 0; round < 8; round++) {
  for (var i = 0; i < 16; i++) w[i] = (w[i] ^ round) | 0;
  digest = safe_add(digest, compress(w, 0x6a09e667, 0xbb67ae85, 0x3c6ef372));
}
print(digest);
|}

let audio_dft =
  {|
// Naive discrete Fourier transform over a real signal.
function dft(signal, re, im) {
  var n = signal.length;
  for (var k = 0; k < n; k++) {
    var sumRe = 0.0, sumIm = 0.0;
    for (var t = 0; t < n; t++) {
      var angle = -6.28318530718 * k * t / n;
      sumRe += signal[t] * Math.cos(angle);
      sumIm += signal[t] * Math.sin(angle);
    }
    re[k] = sumRe;
    im[k] = sumIm;
  }
}

var n = 48;
var signal = new Array(n), re = new Array(n), im = new Array(n);
for (var i = 0; i < n; i++) signal[i] = Math.sin(i * 0.5) + 0.5 * Math.sin(i * 1.5);
for (var rep = 0; rep < 3; rep++) dft(signal, re, im);
var power = 0.0;
for (var k = 0; k < n; k++) power += re[k] * re[k] + im[k] * im[k];
print(Math.round(power));
|}

let imaging_darkroom =
  {|
// Per-pixel brightness/contrast/gamma-esque adjustment with a histogram,
// the access profile of imaging-darkroom.
function adjust(pixels, brightness, contrast) {
  var histogram = new Array(256);
  for (var i = 0; i < 256; i++) histogram[i] = 0;
  for (var i = 0; i < pixels.length; i++) {
    var v = pixels[i] + brightness;
    v = (((v - 128) * contrast) >> 7) + 128;
    if (v < 0) v = 0;
    if (v > 255) v = 255;
    pixels[i] = v;
    histogram[v]++;
  }
  var peak = 0, peakAt = 0;
  for (var i = 0; i < 256; i++) {
    if (histogram[i] > peak) { peak = histogram[i]; peakAt = i; }
  }
  return peakAt;
}

var pixels = new Array(3000);
for (var i = 0; i < 3000; i++) pixels[i] = (i * 97) % 256;
var acc = 0;
for (var rep = 0; rep < 8; rep++) acc += adjust(pixels, 3, 130);
print(acc, pixels[1500]);
|}

let json_parse_lite =
  {|
// Hand-rolled recursive-descent parse of a JSON-like array syntax: the
// char-at-a-time scanning profile of json-parse without a JSON builtin.
function skipWs(s, i) {
  while (i < s.length && s.charCodeAt(i) == 32) i++;
  return i;
}
function parseNumber(s, i, out) {
  var v = 0, neg = false;
  if (s.charCodeAt(i) == 45) { neg = true; i++; }
  while (i < s.length) {
    var c = s.charCodeAt(i);
    if (c < 48 || c > 57) break;
    v = v * 10 + (c - 48);
    i++;
  }
  out.value = neg ? -v : v;
  return i;
}
function parseArray(s, i, out) {
  // assumes s[i] == '['
  i = skipWs(s, i + 1);
  var sum = 0, count = 0;
  while (i < s.length && s.charCodeAt(i) != 93) {
    if (s.charCodeAt(i) == 91) {
      i = parseArray(s, i, out);
      sum += out.value;
    } else {
      i = parseNumber(s, i, out);
      sum += out.value;
    }
    count++;
    i = skipWs(s, i);
    if (i < s.length && s.charCodeAt(i) == 44) i = skipWs(s, i + 1);
  }
  out.value = sum + count;
  return i + 1;
}

var text = "[1, 2, [3, 4, [5, -6]], 7, [8, [9, 10, [11]]], 12]";
var big = "[";
for (var i = 0; i < 20; i++) big += (i > 0 ? "," : "") + text;
big += "]";
var out = {value: 0};
var total = 0;
for (var rep = 0; rep < 10; rep++) {
  parseArray(big, 0, out);
  total += out.value;
}
print(total);
|}


let crypto_pbkdf2 =
  {|
// PBKDF2's structure: an HMAC-style pseudo-random function iterated many
// times with the previous block as input, xored into the derived key.
function prf(key, block, salt) {
  var h = key ^ 0x5c5c5c5c;
  h = ((h << 5) - h + block) | 0;
  h = ((h << 5) - h + salt) | 0;
  h = h ^ (h >>> 13);
  h = (h * 0x5bd1e995) | 0;
  return h ^ (h >>> 15);
}

function pbkdf2(password, salt, iterations, blocks, dk) {
  for (var b = 0; b < blocks; b++) {
    var u = prf(password, b + 1, salt);
    var t = u;
    for (var i = 1; i < iterations; i++) {
      u = prf(password, u, salt);
      t = (t ^ u) | 0;
    }
    dk[b] = t;
  }
  return dk;
}

var dk = new Array(8);
var acc = 0;
for (var round = 0; round < 10; round++) {
  pbkdf2(0x70617373 + round, 0x73616c74, 200, 8, dk);
  acc = (acc + dk[round % 8]) | 0;
}
print(acc);
|}

let suite =
  {
    Suite.s_name = "Kraken 1.1";
    members =
      [
        Suite.member "ai-astar" ai_astar;
        Suite.member "audio-beat-detection" audio_beat_detection;
        Suite.member "audio-dft" audio_dft;
        Suite.member "audio-fft" audio_fft;
        Suite.member "audio-oscillator" audio_oscillator;
        Suite.member "imaging-darkroom" imaging_darkroom;
        Suite.member "imaging-gaussian-blur" imaging_gaussian_blur;
        Suite.member "imaging-desaturate" imaging_desaturate;
        Suite.member "json-parse" json_parse_lite;
        Suite.member "json-stringify" json_stringify_lite;
        Suite.member "stanford-crypto-aes" crypto_aes;
        Suite.member "stanford-crypto-ccm" stanford_crypto_ccm;
        Suite.member "stanford-crypto-pbkdf2" crypto_pbkdf2;
        Suite.member "stanford-crypto-sha256-iterative" crypto_sha256_iterative;
      ];
  }
