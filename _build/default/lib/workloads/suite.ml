(* Benchmark-suite representation. The members are MiniJS sources modelled
   on the three suites the paper evaluates (SunSpider 1.0, V8 version 6,
   Kraken 1.1); see Sunspider, V8bench and Kraken for the programs. *)

type member = { m_name : string; m_source : string }

type t = { s_name : string; members : member list }

let member m_name m_source = { m_name; m_source }
