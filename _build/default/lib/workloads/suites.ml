(* Aggregation of the three benchmark suites. *)

let sunspider = Sunspider.suite
let v8 = V8bench.suite
let kraken = Kraken.suite
let all = [ sunspider; v8; kraken ]

let find name =
  List.find_opt (fun (s : Suite.t) -> String.lowercase_ascii s.Suite.s_name = String.lowercase_ascii name) all
