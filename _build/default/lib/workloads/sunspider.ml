(* SunSpider-1.0-style suite. Each member mirrors the structure (and, where
   the paper discusses one, the call pattern) of the original benchmark:

   - bits-in-byte reproduces the original TimeFunc(bitsinbyte) shape, where
     the hot driver receives the kernel as a closure argument — the paper's
     49% headline case for specialization + closure inlining;
   - crypto-md5 has mixing helpers called thousands of times with
     always-different arguments (the paper's most-deoptimized shape);
   - string-unpack-code carries the long while-loop the paper credits with
     a 28% win from loop inversion enabling invariant code motion;
   - math-cordic's kernel takes constant parameters, the pure
     specialization win. *)

let bits_in_byte =
  {|
function bitsinbyte(b) {
  var m = 1, c = 0;
  while (m < 0x100) {
    if (b & m) c++;
    m <<= 1;
  }
  return c;
}

function TimeFunc(func) {
  var x, y, t = 0;
  for (x = 0; x < 60; x++) {
    for (y = 0; y < 256; y++) t += func(y);
  }
  return t;
}

print(TimeFunc(bitsinbyte));
|}

let bitwise_and =
  {|
var bitwiseAndValue = 4294967296;
for (var i = 0; i < 2000; i++) {
  bitwiseAndValue = bitwiseAndValue & i;
}
print(bitwiseAndValue);
|}

let controlflow_recursive =
  {|
function ack(m, n) {
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}
function fib(n) {
  if (n < 2) return n;
  return fib(n - 2) + fib(n - 1);
}
function tak(x, y, z) {
  if (y >= x) return z;
  return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
}

var result = 0;
result += ack(2, 4);
result += fib(14);
result += tak(8, 5, 2);
print(result);
|}

let crypto_md5 =
  {|
function safe_add(x, y) {
  var lsw = (x & 0xFFFF) + (y & 0xFFFF);
  var msw = (x >> 16) + (y >> 16) + (lsw >> 16);
  return (msw << 16) | (lsw & 0xFFFF);
}
function bit_rol(num, cnt) {
  return (num << cnt) | (num >>> (32 - cnt));
}
function md5_cmn(q, a, b, x, s, t) {
  return safe_add(bit_rol(safe_add(safe_add(a, q), safe_add(x, t)), s), b);
}
function md5_ff(a, b, c, d, x, s, t) {
  return md5_cmn((b & c) | (~b & d), a, b, x, s, t);
}
function md5_gg(a, b, c, d, x, s, t) {
  return md5_cmn((b & d) | (c & ~d), a, b, x, s, t);
}
function md5_hh(a, b, c, d, x, s, t) {
  return md5_cmn(b ^ c ^ d, a, b, x, s, t);
}
function md5_ii(a, b, c, d, x, s, t) {
  return md5_cmn(c ^ (b | ~d), a, b, x, s, t);
}

function mix_block(x, a0, b0, c0, d0) {
  var a = a0, b = b0, c = c0, d = d0;
  var i;
  for (i = 0; i < x.length; i += 4) {
    a = md5_ff(a, b, c, d, x[i], 7, -680876936);
    d = md5_gg(d, a, b, c, x[i + 1], 12, -389564586);
    c = md5_hh(c, d, a, b, x[i + 2], 17, 606105819);
    b = md5_ii(b, c, d, a, x[i + 3], 22, -1044525330);
  }
  return safe_add(safe_add(a, b), safe_add(c, d));
}

var block = new Array(64);
for (var i = 0; i < 64; i++) block[i] = (i * 2654435761) | 0;
var h = 0;
for (var round = 0; round < 40; round++) {
  h = safe_add(h, mix_block(block, h ^ 1732584193, -271733879, -1732584194, 271733878));
}
print(h);
|}

let math_cordic =
  {|
var AG_CONST = 0.6072529350;
function FIXED(X) { return X * 65536.0; }
function FLOAT(X) { return X / 65536.0; }
function DEG2RAD(X) { return 0.017453 * X; }

var Angles = [
  FIXED(45.0), FIXED(26.565), FIXED(14.0362), FIXED(7.12502),
  FIXED(3.57633), FIXED(1.78991), FIXED(0.895174), FIXED(0.447614),
  FIXED(0.223811), FIXED(0.111906), FIXED(0.055953), FIXED(0.027977)
];

function cordicsincos() {
  var X = FIXED(AG_CONST);
  var Y = 0;
  var TargetAngle = FIXED(28.027);
  var CurrAngle = 0;
  for (var Step = 0; Step < 12; Step++) {
    var NewX;
    if (TargetAngle > CurrAngle) {
      NewX = X - (Y >> Step);
      Y = (X >> Step) + Y;
      X = NewX;
      CurrAngle += Angles[Step];
    } else {
      NewX = X + (Y >> Step);
      Y = -(X >> Step) + Y;
      X = NewX;
      CurrAngle -= Angles[Step];
    }
  }
  return FLOAT(X) * FLOAT(Y);
}

var total = 0;
for (var i = 0; i < 400; i++) total += cordicsincos();
print(Math.round(total));
|}

let math_partial_sums =
  {|
function partial(n) {
  var a1 = 0, a2 = 0, a3 = 0, a4 = 0, a5 = 0;
  var twothirds = 2.0 / 3.0;
  var alt = -1.0;
  for (var k = 1; k <= n; k++) {
    var k2 = k * k, k3 = k2 * k;
    var sk = Math.sin(k), ck = Math.cos(k);
    alt = -alt;
    a1 += Math.pow(twothirds, k - 1);
    a2 += 1.0 / (k3 * sk * sk);
    a3 += 1.0 / (k3 * ck * ck);
    a4 += alt / k;
    a5 += alt / (2 * k - 1);
  }
  return a1 + a2 + a3 + a4 + a5;
}
var t = 0;
for (var i = 0; i < 4; i++) t += partial(512);
print(Math.round(t * 1000));
|}

let string_base64 =
  {|
var toBase64Table = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
var base64Pad = "=";

function toBase64(data) {
  var result = "";
  var length = data.length;
  var i;
  for (i = 0; i < length - 2; i += 3) {
    result += toBase64Table.charAt(data.charCodeAt(i) >> 2);
    result += toBase64Table.charAt(((data.charCodeAt(i) & 0x03) << 4) | (data.charCodeAt(i + 1) >> 4));
    result += toBase64Table.charAt(((data.charCodeAt(i + 1) & 0x0f) << 2) | (data.charCodeAt(i + 2) >> 6));
    result += toBase64Table.charAt(data.charCodeAt(i + 2) & 0x3f);
  }
  if (length % 3 == 1) {
    result += toBase64Table.charAt(data.charCodeAt(i) >> 2);
    result += toBase64Table.charAt((data.charCodeAt(i) & 0x03) << 4);
    result += base64Pad + base64Pad;
  }
  return result;
}

var aseq = "";
for (var i = 0; i < 64; i++) aseq += String.fromCharCode(97 + (i % 26));
var out = "";
for (var round = 0; round < 25; round++) out = toBase64(aseq);
print(out.length, out.substring(0, 16));
|}

let string_unpack_code =
  {|
function unpack(p, a, c, k) {
  // Long while-loop over a constant-length payload: the shape the paper
  // credits with a 28% win once loop inversion enables code motion.
  var d = "";
  var i = 0;
  var n = p.length;
  while (i < n) {
    var ch = p.charCodeAt(i);
    var mapped = ch ^ (k & 0xff);
    if (mapped < 32) mapped = mapped + 32;
    d += String.fromCharCode(mapped);
    i++;
  }
  return d;
}

var payload = "";
for (var i = 0; i < 400; i++) payload += String.fromCharCode(33 + ((i * 7) % 90));
var decoded = "";
for (var r = 0; r < 20; r++) decoded = unpack(payload, 62, 255, 19);
print(decoded.length, decoded.charCodeAt(0), decoded.charCodeAt(399));
|}

let access_nsieve =
  {|
function nsieve(m, isPrime) {
  var i, k, count;
  for (i = 2; i <= m; i++) isPrime[i] = true;
  count = 0;
  for (i = 2; i <= m; i++) {
    if (isPrime[i]) {
      for (k = i + i; k <= m; k += i) isPrime[k] = false;
      count++;
    }
  }
  return count;
}

function sieve() {
  var sum = 0;
  for (var i = 1; i <= 2; i++) {
    var m = (1 << i) * 1024;
    var flags = new Array(m + 1);
    sum += nsieve(m, flags);
  }
  return sum;
}
print(sieve());
|}

let access_binary_trees =
  {|
function TreeNode(left, right, item) {
  return { left: left, right: right, item: item };
}
function itemCheck(node) {
  if (node.left == null) return node.item;
  return node.item + itemCheck(node.left) - itemCheck(node.right);
}
function bottomUpTree(item, depth) {
  if (depth > 0) {
    return TreeNode(bottomUpTree(2 * item - 1, depth - 1),
                    bottomUpTree(2 * item, depth - 1), item);
  }
  return TreeNode(null, null, item);
}

var check = 0;
for (var depth = 4; depth <= 7; depth += 1) {
  var iterations = 1 << (9 - depth);
  for (var i = 1; i <= iterations; i++) {
    check += itemCheck(bottomUpTree(i, depth));
    check += itemCheck(bottomUpTree(-i, depth));
  }
}
print(check);
|}

let three_d_cube =
  {|
function RotateX(M, Phi) {
  var a = Math.sin(Phi), b = Math.cos(Phi);
  var m4 = M[4], m5 = M[5], m6 = M[6], m7 = M[7];
  M[4] = m4 * b - M[8] * a;
  M[5] = m5 * b - M[9] * a;
  M[8] = m4 * a + M[8] * b;
  M[9] = m5 * a + M[9] * b;
  return M;
}
function MMulti(A, V) {
  return [
    A[0] * V[0] + A[1] * V[1] + A[2] * V[2] + A[3],
    A[4] * V[0] + A[5] * V[1] + A[6] * V[2] + A[7],
    A[8] * V[0] + A[9] * V[1] + A[10] * V[2] + A[11]
  ];
}

var M = [1,0,0,0, 0,1,0,0, 0,0,1,0];
var acc = 0;
for (var i = 0; i < 300; i++) {
  M = RotateX(M, 0.003 * i);
  var v = MMulti(M, [1.0, 2.0, 3.0]);
  acc += v[0] + v[1] + v[2];
}
print(Math.round(acc * 100));
|}


let three_d_morph =
  {|
function morph(a, f) {
  var PI2nloops = 6.28318530718 / a.length;
  for (var i = 0; i < a.length; i++) {
    a[i] = Math.sin(i * PI2nloops) * f;
  }
  var sum = 0.0;
  for (var i = 0; i < a.length; i++) sum += a[i];
  return sum;
}

var pts = new Array(120);
for (var i = 0; i < 120; i++) pts[i] = 0.0;
var acc = 0.0;
for (var loop = 0; loop < 30; loop++) acc += morph(pts, 1.0 + loop / 30.0);
print(Math.round(acc * 1000));
|}

let access_fannkuch =
  {|
function fannkuch(n) {
  var check = 0;
  var perm = new Array(n), perm1 = new Array(n), count = new Array(n);
  var maxFlipsCount = 0, m = n - 1;
  for (var i = 0; i < n; i++) perm1[i] = i;
  var r = n;
  while (true) {
    while (r != 1) { count[r - 1] = r; r--; }
    if (!(perm1[0] == 0 || perm1[m] == m)) {
      for (var i = 0; i < n; i++) perm[i] = perm1[i];
      var flipsCount = 0, k;
      while (!((k = perm[0]) == 0)) {
        var k2 = (k + 1) >> 1;
        for (var i = 0; i < k2; i++) {
          var temp = perm[i]; perm[i] = perm[k - i]; perm[k - i] = temp;
        }
        flipsCount++;
      }
      if (flipsCount > maxFlipsCount) maxFlipsCount = flipsCount;
    }
    while (true) {
      if (r == n) return maxFlipsCount;
      var perm0 = perm1[0];
      var i = 0;
      while (i < r) { var j = i + 1; perm1[i] = perm1[j]; i = j; }
      perm1[r] = perm0;
      count[r] = count[r] - 1;
      if (count[r] > 0) break;
      r++;
    }
  }
}
print(fannkuch(6));
|}

let bitops_3bit =
  {|
// Count bits with the 3-bit trick, driven through a closure like the
// original TimeFunc harness.
function fast3bitlookup(b) {
  var c, bi3b = 0xE994;
  c  = 3 & (bi3b >> ((b << 1) & 14));
  c += 3 & (bi3b >> ((b >> 2) & 14));
  c += 3 & (bi3b >> ((b >> 5) & 6));
  return c;
}

function TimeFunc(func) {
  var x, y, t = 0;
  for (var x = 0; x < 50; x++) {
    for (var y = 0; y < 256; y++) t += func(y);
  }
  return t;
}
print(TimeFunc(fast3bitlookup));
|}

let bitops_nsieve_bits =
  {|
function primes(isPrime, n) {
  var i, count = 0, m = 10000 << n, size = m + 31 >> 5;
  for (i = 0; i < size; i++) isPrime[i] = 0xffffffff;
  for (i = 2; i < m; i++) {
    if (isPrime[i >> 5] & (1 << (i & 31))) {
      for (var j = i + i; j < m; j += i)
        isPrime[j >> 5] &= ~(1 << (j & 31));
      count++;
    }
  }
  return count;
}
function sieve() {
  var sum = 0;
  for (var i = 0; i <= 1; i++) {
    var isPrime = new Array((10000 << i) + 31 >> 5);
    sum += primes(isPrime, i);
  }
  return sum;
}
print(sieve());
|}

let math_spectral_norm =
  {|
function A(i, j) {
  return 1 / ((i + j) * (i + j + 1) / 2 + i + 1);
}
function Au(u, v) {
  for (var i = 0; i < u.length; ++i) {
    var t = 0;
    for (var j = 0; j < u.length; ++j) t += A(i, j) * u[j];
    v[i] = t;
  }
}
function Atu(u, v) {
  for (var i = 0; i < u.length; ++i) {
    var t = 0;
    for (var j = 0; j < u.length; ++j) t += A(j, i) * u[j];
    v[i] = t;
  }
}
function AtAu(u, v, w) {
  Au(u, w);
  Atu(w, v);
}
function spectralnorm(n) {
  var i, u = new Array(n), v = new Array(n), w = new Array(n), vv = 0, vBv = 0;
  for (i = 0; i < n; ++i) { u[i] = 1; v[i] = w[i] = 0; }
  for (i = 0; i < 6; ++i) { AtAu(u, v, w); AtAu(v, u, w); }
  for (i = 0; i < n; ++i) { vBv += u[i] * v[i]; vv += v[i] * v[i]; }
  return Math.sqrt(vBv / vv);
}
print(Math.round(spectralnorm(24) * 1000000));
|}

let string_fasta =
  {|
var last = 42;
function rand(max) {
  last = (last * 3877 + 29573) % 139968;
  return max * last / 139968;
}
var ALU = "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGGGAGGCCGAGGCGGGCGGA";

function makeCumulative(table, keys, probs) {
  var last = 0.0;
  for (var i = 0; i < keys.length; i++) {
    last += probs[i];
    table[keys[i]] = last;
  }
}

function fastaRepeat(n, seq) {
  var seqi = 0, len = 0, lineLength = 60, out = 0;
  while (n > 0) {
    var take = n < lineLength ? n : lineLength;
    for (var i = 0; i < take; i++) {
      out += seq.charCodeAt(seqi);
      seqi++;
      if (seqi == seq.length) seqi = 0;
    }
    n -= take;
    len += take;
  }
  return out + len;
}

print(fastaRepeat(2400, ALU));
|}

let crypto_sha1 =
  {|
// The SHA-1 round structure on a fixed message block: rotations, bitwise
// mixing and modular adds (the non-table half of crypto-sha1).
function rol(num, cnt) {
  return (num << cnt) | (num >>> (32 - cnt));
}
function sha1_ft(t, b, c, d) {
  if (t < 20) return (b & c) | (~b & d);
  if (t < 40) return b ^ c ^ d;
  if (t < 60) return (b & c) | (b & d) | (c & d);
  return b ^ c ^ d;
}
function sha1_kt(t) {
  return t < 20 ? 1518500249 : t < 40 ? 1859775393 : t < 60 ? -1894007588 : -899497514;
}
function safe_add(x, y) {
  var lsw = (x & 0xFFFF) + (y & 0xFFFF);
  var msw = (x >> 16) + (y >> 16) + (lsw >> 16);
  return (msw << 16) | (lsw & 0xFFFF);
}

function core_block(w, a0, b0, c0, d0, e0) {
  var a = a0, b = b0, c = c0, d = d0, e = e0;
  for (var j = 0; j < 80; j++) {
    if (j >= 16) w[j] = rol(w[j - 3] ^ w[j - 8] ^ w[j - 14] ^ w[j - 16], 1);
    var t = safe_add(safe_add(rol(a, 5), sha1_ft(j, b, c, d)),
                     safe_add(safe_add(e, w[j]), sha1_kt(j)));
    e = d; d = c; c = rol(b, 30); b = a; a = t;
  }
  return safe_add(a, safe_add(b, safe_add(c, safe_add(d, e))));
}

var w = new Array(80);
for (var i = 0; i < 16; i++) w[i] = (i * 0x9E3779B9) | 0;
var h = 0;
for (var round = 0; round < 12; round++) {
  for (var i = 0; i < 16; i++) w[i] = (w[i] + round) | 0;
  h = safe_add(h, core_block(w, 1732584193, -271733879, -1732584194, 271733878, -1009589776));
}
print(h);
|}


let string_validate_input =
  {|
// Form-validation flavoured scanning: classify characters with a switch
// (the construct the original uses for its date/email state machines).
function classify(c) {
  switch (true) {
    case c >= 48 && c <= 57: return 0;   // digit
    case (c >= 97 && c <= 122) || (c >= 65 && c <= 90): return 1; // letter
    case c == 64: return 2;              // @
    case c == 46: return 3;              // .
    default: return 4;
  }
}

function validateEmail(s) {
  var ats = 0, dots = 0, bad = 0;
  for (var i = 0; i < s.length; i++) {
    switch (classify(s.charCodeAt(i))) {
      case 0:
      case 1: break;
      case 2: ats++; break;
      case 3: dots++; break;
      default: bad++;
    }
  }
  return ats == 1 && dots >= 1 && bad == 0;
}

var ok = 0;
var names = ["alice", "bob.b", "carol+x", "dee"];
for (var rep = 0; rep < 40; rep++) {
  for (var i = 0; i < names.length; i++) {
    if (validateEmail(names[i] + "@example.com")) ok++;
  }
}
print(ok);
|}


let access_nbody =
  {|
// The n-body planetary simulation: objects full of doubles, advanced in
// place (the original Body/NBodySystem structure, flattened).
function Body(x, y, z, vx, vy, vz, mass) {
  return { x: x, y: y, z: z, vx: vx, vy: vy, vz: vz, mass: mass };
}
function advance(bodies, dt) {
  var n = bodies.length;
  for (var i = 0; i < n; i++) {
    var bi = bodies[i];
    for (var j = i + 1; j < n; j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x, dy = bi.y - bj.y, dz = bi.z - bj.z;
      var d2 = dx * dx + dy * dy + dz * dz;
      var mag = dt / (d2 * Math.sqrt(d2));
      bi.vx -= dx * bj.mass * mag; bi.vy -= dy * bj.mass * mag; bi.vz -= dz * bj.mass * mag;
      bj.vx += dx * bi.mass * mag; bj.vy += dy * bi.mass * mag; bj.vz += dz * bi.mass * mag;
    }
    bi.x += dt * bi.vx; bi.y += dt * bi.vy; bi.z += dt * bi.vz;
  }
}
function energy(bodies) {
  var e = 0.0, n = bodies.length;
  for (var i = 0; i < n; i++) {
    var bi = bodies[i];
    e += 0.5 * bi.mass * (bi.vx * bi.vx + bi.vy * bi.vy + bi.vz * bi.vz);
    for (var j = i + 1; j < n; j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x, dy = bi.y - bj.y, dz = bi.z - bj.z;
      e -= bi.mass * bj.mass / Math.sqrt(dx * dx + dy * dy + dz * dz);
    }
  }
  return e;
}

var bodies = [
  Body(0, 0, 0, 0, 0, 0, 39.478),
  Body(4.841, -1.160, -0.103, 0.606, 2.811, -0.025, 0.0377),
  Body(8.343, 4.125, -0.403, -1.010, 1.825, 0.008, 0.0113),
  Body(12.894, -15.111, 0.223, 1.082, 0.868, -0.010, 0.0017),
  Body(15.379, -25.919, 0.179, 0.979, 0.594, -0.034, 0.0002)
];
var before = energy(bodies);
for (var step = 0; step < 120; step++) advance(bodies, 0.01);
var after = energy(bodies);
print(Math.round(before * 1000000), Math.round(after * 1000000));
|}

let three_d_raytrace =
  {|
// Flat-array vector math in the style of 3d-raytrace's triangle
// intersection loop.
function dotv(a, b) { return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]; }
function crossv(a, b) {
  return [a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]];
}
function subv(a, b) { return [a[0] - b[0], a[1] - b[1], a[2] - b[2]]; }

function intersectTriangle(orig, dir, v0, v1, v2) {
  var e1 = subv(v1, v0), e2 = subv(v2, v0);
  var p = crossv(dir, e2);
  var det = dotv(e1, p);
  if (det > -0.000001 && det < 0.000001) return -1;
  var inv = 1 / det;
  var t = subv(orig, v0);
  var u = dotv(t, p) * inv;
  if (u < 0 || u > 1) return -1;
  var q = crossv(t, e1);
  var v = dotv(dir, q) * inv;
  if (v < 0 || u + v > 1) return -1;
  return dotv(e2, q) * inv;
}

var tri0 = [0.0, 0.0, -3.0], tri1 = [1.0, 0.0, -3.0], tri2 = [0.0, 1.0, -3.0];
var hits = 0;
for (var py = 0; py < 20; py++) {
  for (var px = 0; px < 20; px++) {
    var dir = [px / 20.0 - 0.4, py / 20.0 - 0.4, -1.0];
    if (intersectTriangle([0.0, 0.0, 0.0], dir, tri0, tri1, tri2) > 0) hits++;
  }
}
print(hits);
|}

let string_tagcloud =
  {|
// Tag-cloud construction: word frequency over object buckets, then log
// scaling - the original's profile without its JSON parser.
function bump(counts, keys, word) {
  if (counts[word] == undefined) {
    counts[word] = 1;
    keys.push(word);
  } else {
    counts[word] = counts[word] + 1;
  }
}

var words = ["spec", "jit", "loop", "guard", "spec", "inline", "jit", "spec",
             "cache", "deopt", "loop", "spec", "jit", "bail", "loop"];
var counts = {};
var keys = [];
for (var rep = 0; rep < 60; rep++) {
  for (var i = 0; i < words.length; i++) bump(counts, keys, words[i] + (rep % 3));
}
var total = 0;
for (var i = 0; i < keys.length; i++) {
  var c = counts[keys[i]];
  total += Math.round(Math.log(c) * 10) + keys[i].length;
}
print(keys.length, total);
|}

let crypto_aes =
  {|
// SunSpider's crypto-aes: key expansion + full rounds over string blocks
// (distinct from the Kraken member, which benches the round functions in
// isolation). The cipher structure is AES's; the sbox is a cheap affine
// stand-in since GF inversion is not what the benchmark stresses.
function xtime(b) {
  var doubled = (b << 1) & 0xff;
  return (b & 0x80) != 0 ? doubled ^ 0x1b : doubled;
}
function expandKey(key, sbox, nrounds) {
  var w = new Array(16 * (nrounds + 1));
  for (var i = 0; i < 16; i++) w[i] = key[i];
  for (var r = 1; r <= nrounds; r++) {
    var base = 16 * r;
    for (var i = 0; i < 16; i++) {
      var prev = w[base + i - 16];
      var rot = w[base + ((i + 5) % 16) - 16];
      w[base + i] = prev ^ sbox[rot] ^ (i == 0 ? r : 0);
    }
  }
  return w;
}
function addRoundKey(state, w, round) {
  for (var i = 0; i < 16; i++) state[i] = state[i] ^ w[16 * round + i];
}
function encryptBlock(state, w, sbox, tmp, nrounds) {
  addRoundKey(state, w, 0);
  for (var round = 1; round <= nrounds; round++) {
    for (var i = 0; i < 16; i++) state[i] = sbox[state[i]];
    for (var i = 0; i < 16; i++) tmp[i] = state[i];
    for (var r = 1; r < 4; r++)
      for (var c = 0; c < 4; c++) state[r + 4 * c] = tmp[r + 4 * ((c + r) % 4)];
    if (round < nrounds) {
      for (var c = 0; c < 4; c++) {
        var b = 4 * c;
        var a0 = state[b], a1 = state[b + 1], a2 = state[b + 2], a3 = state[b + 3];
        state[b]     = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
        state[b + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
        state[b + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
        state[b + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
      }
    }
    addRoundKey(state, w, round);
  }
}

var sbox = new Array(256);
for (var i = 0; i < 256; i++) sbox[i] = ((i * 31) ^ (i >> 3) ^ 99) & 0xff;
var key = new Array(16);
for (var i = 0; i < 16; i++) key[i] = (i * 29 + 7) & 0xff;
var w = expandKey(key, sbox, 10);

var plaintext = "";
for (var i = 0; i < 12; i++) plaintext += "the quick brown fox ";
var state = new Array(16), tmp = new Array(16);
var acc = 0;
for (var block = 0; block + 16 <= plaintext.length; block += 16) {
  for (var i = 0; i < 16; i++) state[i] = plaintext.charCodeAt(block + i) & 0xff;
  encryptBlock(state, w, sbox, tmp, 10);
  for (var i = 0; i < 16; i++) acc = (acc + state[i]) & 0xffffff;
}
print(acc);
|}

let date_format_tofte =
  {|
// SunSpider's date-format-tofte formats one date over and over through a
// per-token dispatch. MiniJS has no Date object, so civil-date fields are
// derived from a day number by hand (same arithmetic a Date would do) and
// the formatting loop dispatches on format characters exactly like the
// original's token table.
function isLeap(y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }
function daysInMonth(y, m) {
  if (m == 2) return isLeap(y) ? 29 : 28;
  return (m == 4 || m == 6 || m == 9 || m == 11) ? 30 : 31;
}
function pad2(n) { return n < 10 ? "0" + n : "" + n; }

function fieldsOfDay(dayNumber) {
  var y = 2000, m = 1, d = dayNumber;
  while (d > (isLeap(y) ? 366 : 365)) { d -= isLeap(y) ? 366 : 365; y++; }
  while (d > daysInMonth(y, m)) { d -= daysInMonth(y, m); m++; }
  return { year: y, month: m, day: d, dow: dayNumber % 7, secs: (dayNumber * 86399) % 86400 };
}

var monthNames = ["January","February","March","April","May","June","July",
                  "August","September","October","November","December"];
var dayNames = ["Sunday","Monday","Tuesday","Wednesday","Thursday","Friday","Saturday"];

function format(f, fmt) {
  var out = "";
  var h = Math.floor(f.secs / 3600), mi = Math.floor((f.secs % 3600) / 60), s = f.secs % 60;
  for (var i = 0; i < fmt.length; i++) {
    var c = fmt.charAt(i);
    switch (c) {
      case "Y": out += f.year; break;
      case "y": out += pad2(f.year % 100); break;
      case "m": out += pad2(f.month); break;
      case "F": out += monthNames[f.month - 1]; break;
      case "d": out += pad2(f.day); break;
      case "l": out += dayNames[f.dow]; break;
      case "H": out += pad2(h); break;
      case "i": out += pad2(mi); break;
      case "s": out += pad2(s); break;
      case "L": out += isLeap(f.year) ? 1 : 0; break;
      default: out += c;
    }
  }
  return out;
}

var total = 0;
for (var rep = 0; rep < 40; rep++) {
  var f = fieldsOfDay(1 + (rep * 193) % 3000);
  var s1 = format(f, "l, F d, Y H:i:s");
  var s2 = format(f, "Y-m-d H:i:s L");
  total += s1.length + s2.length;
}
print(total);
|}

let date_format_xparb =
  {|
// SunSpider's date-format-xparb builds formatted strings through a lookup
// of per-token formatting closures (Baron Schwartz's dateFormat). The
// closure array dispatch is the benchmark's point, so it is kept: each
// token maps to a function, and formatting folds over the token string.
function pad(n, len) {
  var s = "" + n;
  while (s.length < len) s = "0" + s;
  return s;
}

function makeFormatters(monthNames) {
  return {
    Y: function (f) { return "" + f.year; },
    m: function (f) { return pad(f.month, 2); },
    n: function (f) { return "" + f.month; },
    F: function (f) { return monthNames[f.month - 1]; },
    d: function (f) { return pad(f.day, 2); },
    j: function (f) { return "" + f.day; },
    H: function (f) { return pad(f.hour, 2); },
    G: function (f) { return "" + f.hour; },
    i: function (f) { return pad(f.minute, 2); },
    s: function (f) { return pad(f.second, 2); }
  };
}

function dateFormat(f, fmt, formatters) {
  var out = "";
  for (var i = 0; i < fmt.length; i++) {
    var c = fmt.charAt(i);
    var fn = formatters[c];
    if (fn != undefined) out += fn(f);
    else out += c;
  }
  return out;
}

var monthNames = ["Jan","Feb","Mar","Apr","May","Jun","Jul","Aug","Sep","Oct","Nov","Dec"];
var formatters = makeFormatters(monthNames);
var total = 0;
for (var rep = 0; rep < 60; rep++) {
  var f = {
    year: 2007 + (rep % 6),
    month: 1 + (rep % 12),
    day: 1 + (rep * 7) % 28,
    hour: rep % 24,
    minute: (rep * 13) % 60,
    second: (rep * 29) % 60
  };
  var a = dateFormat(f, "Y-m-d H:i:s", formatters);
  var b = dateFormat(f, "j n Y G:i", formatters);
  var c = dateFormat(f, "d F Y", formatters);
  total += a.length + b.length + c.length;
}
print(total);
|}

let regexp_dna =
  {|
// SunSpider's regexp-dna counts pattern matches over a synthetic DNA
// sequence. MiniJS has no regexp engine, so the IUPAC character classes
// are explicit charCode tests and the variants are scanned by hand - the
// same long-string inner loops the original spends its time in.
function isAggt(c) { return c == 97 || c == 103 || c == 116; }  // a, g, t
function matchVariant(s, i) {
  // [cgt]gggtaaa | tttaccc[acg]
  if (s.charCodeAt(i) != 97 && matchWord(s, i + 1, "gggtaaa")) return true;
  return matchWord(s, i, "tttaccc") && s.charCodeAt(i + 7) != 116;
}
function matchWord(s, i, w) {
  if (i + w.length > s.length) return false;
  for (var k = 0; k < w.length; k++) {
    if (s.charCodeAt(i + k) != w.charCodeAt(k)) return false;
  }
  return true;
}

// Deterministic fasta-style sequence.
var bases = "acgt";
var seq = "";
var state = 42;
for (var i = 0; i < 1600; i++) {
  state = (state * 3877 + 29573) % 139968;
  seq += bases.charAt(state & 3);
}

var hits = 0;
for (var i = 0; i + 8 <= seq.length; i++) {
  if (matchVariant(seq, i)) hits++;
  if (matchWord(seq, i, "agggtaaa")) hits += 2;
  if (matchWord(seq, i, "tttaccct")) hits += 2;
}
var acount = 0;
for (var i = 0; i < seq.length; i++) if (isAggt(seq.charCodeAt(i))) acount++;
print(hits, acount);
|}

let suite =
  {
    Suite.s_name = "SunSpider 1.0";
    members =
      [
        Suite.member "3d-cube" three_d_cube;
        Suite.member "3d-morph" three_d_morph;
        Suite.member "3d-raytrace" three_d_raytrace;
        Suite.member "access-binary-trees" access_binary_trees;
        Suite.member "access-fannkuch" access_fannkuch;
        Suite.member "access-nbody" access_nbody;
        Suite.member "access-nsieve" access_nsieve;
        Suite.member "bitops-3bit-bits-in-byte" bitops_3bit;
        Suite.member "bitops-bits-in-byte" bits_in_byte;
        Suite.member "bitops-bitwise-and" bitwise_and;
        Suite.member "bitops-nsieve-bits" bitops_nsieve_bits;
        Suite.member "controlflow-recursive" controlflow_recursive;
        Suite.member "crypto-aes" crypto_aes;
        Suite.member "crypto-md5" crypto_md5;
        Suite.member "crypto-sha1" crypto_sha1;
        Suite.member "date-format-tofte" date_format_tofte;
        Suite.member "date-format-xparb" date_format_xparb;
        Suite.member "math-cordic" math_cordic;
        Suite.member "math-partial-sums" math_partial_sums;
        Suite.member "math-spectral-norm" math_spectral_norm;
        Suite.member "regexp-dna" regexp_dna;
        Suite.member "string-base64" string_base64;
        Suite.member "string-fasta" string_fasta;
        Suite.member "string-tagcloud" string_tagcloud;
        Suite.member "string-unpack-code" string_unpack_code;
        Suite.member "string-validate-input" string_validate_input;
      ];
  }
