(* V8-version-6-style suite: object-oriented and allocation-heavy programs.
   earley-boyer's sc_Pair analogue is the most-called function with
   always-different arguments, matching the paper's §2 observation (3,209
   calls of sc_Pair, 2,641 distinct argument sets in their measurements). *)

let richards =
  {|
// A reduced Richards task scheduler: work packets cycle between an idle
// device, a worker and a handler, each implemented as a task function the
// scheduler dispatches through (the original's TaskControlBlock.run).
function Packet(link, id, kind) {
  return { link: link, id: id, kind: kind, a1: 0 };
}
function append(packet, queue) {
  packet.link = null;
  if (queue == null) return packet;
  var peek, next = queue;
  while ((peek = next.link) != null) next = peek;
  next.link = packet;
  return queue;
}
function queueLength(q) {
  var n = 0;
  while (q != null) { n++; q = q.link; }
  return n;
}

function workerTask(packet, state) {
  // flip data payload, count work
  packet.a1 = (packet.a1 + state.v1) & 0xffff;
  state.v1 = (state.v1 * 2 + 1) & 0xffff;
  state.count++;
  return packet;
}
function handlerTask(packet, state) {
  state.count += packet.kind == 2 ? 2 : 1;
  packet.a1 = packet.a1 ^ state.v1;
  return packet;
}

// The scheduler receives the device tasks as function arguments - the
// paper's closure-parameter pattern - and dispatches by packet kind.
function schedule(count, worker, handler) {
  var queue = null;
  var wstate = { v1: 3, count: 0 };
  var hstate = { v1: 17, count: 0 };
  for (var i = 0; i < count; i++) {
    queue = append(Packet(null, i, i % 3), queue);
    if (queue != null) {
      var p = queue;
      queue = queue.link;
      switch (p.kind) {
        case 0: worker(p, wstate); break;
        case 1: handler(p, hstate); break;
        default: worker(handler(p, hstate), wstate);
      }
    }
  }
  return wstate.count * 1000 + hstate.count + queueLength(queue);
}

var total = 0;
for (var rep = 0; rep < 25; rep++) total += schedule(110, workerTask, handlerTask);
print(total);
|}

let earley_boyer =
  {|
// Scheme-style cons pairs, allocated at very high rate (sc_Pair).
function sc_Pair(car, cdr) {
  return { car: car, cdr: cdr };
}
function listLength(l) {
  var n = 0;
  while (l != null) { n++; l = l.cdr; }
  return n;
}
function reverseOnto(l, acc) {
  while (l != null) { acc = sc_Pair(l.car, acc); l = l.cdr; }
  return acc;
}
function sumList(l) {
  var t = 0;
  while (l != null) { t += l.car; l = l.cdr; }
  return t;
}

var total = 0;
for (var rep = 0; rep < 30; rep++) {
  var l = null;
  for (var i = 0; i < 60; i++) l = sc_Pair(i, l);
  var r = reverseOnto(l, null);
  total += listLength(r) + sumList(r);
}
print(total);
|}

let raytrace =
  {|
function Vector(x, y, z) { return { x: x, y: y, z: z }; }
function dot(a, b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
function sub(a, b) { return Vector(a.x - b.x, a.y - b.y, a.z - b.z); }
function scale(a, s) { return Vector(a.x * s, a.y * s, a.z * s); }

function sphereHit(center, radius, orig, dir) {
  var oc = sub(orig, center);
  var a = dot(dir, dir);
  var b = 2.0 * dot(oc, dir);
  var c = dot(oc, oc) - radius * radius;
  var disc = b * b - 4 * a * c;
  if (disc < 0) return -1.0;
  return (-b - Math.sqrt(disc)) / (2.0 * a);
}

var center = Vector(0, 0, -5);
var hits = 0;
for (var py = 0; py < 24; py++) {
  for (var px = 0; px < 24; px++) {
    var dir = Vector((px - 12) / 12.0, (py - 12) / 12.0, -1.0);
    var t = sphereHit(center, 1.8, Vector(0, 0, 0), dir);
    if (t > 0) hits++;
  }
}
print(hits);
|}

let crypto_v8 =
  {|
// Modular exponentiation over int32 arithmetic, am3-style inner loop.
function mulmod(a, b, m) {
  var result = 0;
  a = a % m;
  while (b > 0) {
    if (b & 1) result = (result + a) % m;
    a = (a * 2) % m;
    b >>= 1;
  }
  return result;
}
function powmod(base, exp, m) {
  var result = 1;
  base = base % m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    exp >>= 1;
    base = mulmod(base, base, m);
  }
  return result;
}

var acc = 0;
for (var i = 1; i <= 60; i++) acc = (acc + powmod(7 + i, 1000 + i, 65537)) % 1000003;
print(acc);
|}

let regexp_lite =
  {|
// The original benchmark stresses the regexp engine; MiniJS has no
// regexps, so this member scans with the same access pattern:
// character-class tests over many short strings.
function isWordChar(c) {
  return (c >= 97 && c <= 122) || (c >= 65 && c <= 90) || (c >= 48 && c <= 57) || c == 95;
}
function countWords(s) {
  var n = 0, inWord = false;
  for (var i = 0; i < s.length; i++) {
    var w = isWordChar(s.charCodeAt(i));
    if (w && !inWord) n++;
    inWord = w;
  }
  return n;
}

var text = "";
for (var i = 0; i < 40; i++) text += "the quick brown-fox jumps_over 42 lazy dogs! ";
var total = 0;
for (var rep = 0; rep < 12; rep++) total += countWords(text);
print(total);
|}

let splay =
  {|
// Splay-tree-flavoured binary search tree with insert and lookup over
// object nodes (no rebalancing; the allocation/pointer-chasing profile).
function insert(root, key) {
  if (root == null) return { key: key, left: null, right: null };
  var node = root;
  while (true) {
    if (key < node.key) {
      if (node.left == null) { node.left = { key: key, left: null, right: null }; break; }
      node = node.left;
    } else if (key > node.key) {
      if (node.right == null) { node.right = { key: key, left: null, right: null }; break; }
      node = node.right;
    } else break;
  }
  return root;
}
function find(root, key) {
  var node = root;
  while (node != null) {
    if (key == node.key) return true;
    node = key < node.key ? node.left : node.right;
  }
  return false;
}

var root = null;
var seed = 49734321;
function nextRandom() {
  seed = ((seed + 0x7ed55d16) + (seed << 12)) & 0xffffffff;
  seed = ((seed ^ 0xc761c23c) ^ (seed >>> 19)) & 0xffffffff;
  return seed & 0x3fffffff;
}

for (var i = 0; i < 400; i++) root = insert(root, nextRandom() % 1000);
var found = 0;
for (var i = 0; i < 400; i++) if (find(root, i)) found++;
print(found);
|}

let deltablue =
  {|
// A small dataflow-constraint relaxation: planner-style repeated sweeps
// over constraint objects until a fixpoint, V8 deltablue's access profile.
function Constraint(srcIdx, dstIdx, offset) {
  return { src: srcIdx, dst: dstIdx, offset: offset };
}

function relax(values, constraints) {
  var changed = 0;
  for (var i = 0; i < constraints.length; i++) {
    var c = constraints[i];
    var want = values[c.src] + c.offset;
    if (values[c.dst] != want) {
      values[c.dst] = want;
      changed++;
    }
  }
  return changed;
}

var values = new Array(40);
for (var i = 0; i < 40; i++) values[i] = 0;
var constraints = [];
for (var i = 0; i < 39; i++) constraints.push(Constraint(i, i + 1, (i % 5) - 2));

values[0] = 7;
var sweeps = 0;
while (relax(values, constraints) > 0) sweeps++;
print(sweeps, values[39]);
|}

let navier_stokes =
  {|
// NavierStokes (added to the V8 suite in version 6): a Jacobi-relaxation
// fluid solver over a flat grid. Every kernel is called repeatedly with
// the same array objects and the same scalar parameters - the stable
// argument profile where value specialization pays off.
function ix(i, j) { return i + 18 * j; }

function setBnd(x) {
  for (var i = 1; i <= 16; i++) {
    x[ix(0, i)] = x[ix(1, i)];
    x[ix(17, i)] = x[ix(16, i)];
    x[ix(i, 0)] = x[ix(i, 1)];
    x[ix(i, 17)] = x[ix(i, 16)];
  }
}

function linSolve(x, x0, a, c, iters) {
  for (var k = 0; k < iters; k++) {
    for (var j = 1; j <= 16; j++) {
      for (var i = 1; i <= 16; i++) {
        x[ix(i, j)] =
          (x0[ix(i, j)] +
           a * (x[ix(i - 1, j)] + x[ix(i + 1, j)] + x[ix(i, j - 1)] + x[ix(i, j + 1)])) / c;
      }
    }
    setBnd(x);
  }
}

function addSource(x, s, dt) {
  for (var i = 0; i < 324; i++) x[i] += dt * s[i];
}

function advect(d, d0, u, v, dt) {
  var dt0 = dt * 16;
  for (var j = 1; j <= 16; j++) {
    for (var i = 1; i <= 16; i++) {
      var fx = i - dt0 * u[ix(i, j)];
      var fy = j - dt0 * v[ix(i, j)];
      if (fx < 0.5) fx = 0.5;
      if (fx > 16.5) fx = 16.5;
      if (fy < 0.5) fy = 0.5;
      if (fy > 16.5) fy = 16.5;
      var i0 = Math.floor(fx), i1 = i0 + 1;
      var j0 = Math.floor(fy), j1 = j0 + 1;
      var s1 = fx - i0, s0 = 1 - s1, t1 = fy - j0, t0 = 1 - t1;
      d[ix(i, j)] =
        s0 * (t0 * d0[ix(i0, j0)] + t1 * d0[ix(i0, j1)]) +
        s1 * (t0 * d0[ix(i1, j0)] + t1 * d0[ix(i1, j1)]);
    }
  }
  setBnd(d);
}

function densStep(x, x0, u, v, diff, dt) {
  addSource(x, x0, dt);
  linSolve(x0, x, dt * diff * 256, 1 + 4 * dt * diff * 256, 4);
  advect(x, x0, u, v, dt);
}

function zeros() {
  var a = new Array(324);
  for (var i = 0; i < 324; i++) a[i] = 0.0;
  return a;
}

var dens = zeros(), densPrev = zeros(), u = zeros(), v = zeros();
for (var j = 6; j <= 10; j++)
  for (var i = 6; i <= 10; i++) {
    densPrev[ix(i, j)] = 32.0;
    u[ix(i, j)] = 0.08;
    v[ix(i, j)] = -0.05;
  }

for (var step = 0; step < 14; step++) densStep(dens, densPrev, u, v, 0.05, 0.1);

var sum = 0.0;
for (var i = 0; i < 324; i++) sum += dens[i];
print(Math.floor(sum * 1000));
|}

let suite =
  {
    Suite.s_name = "V8 version 6";
    members =
      [
        Suite.member "crypto" crypto_v8;
        Suite.member "deltablue" deltablue;
        Suite.member "earley-boyer" earley_boyer;
        Suite.member "navier-stokes" navier_stokes;
        Suite.member "raytrace" raytrace;
        Suite.member "regexp" regexp_lite;
        Suite.member "richards" richards;
        Suite.member "splay" splay;
      ];
  }
