test/test_analysis.ml: Alcotest Array Bc_verify Builder Bytecode Diag Engine Fun Hashtbl List Mir Ops Pipeline Printf Runner Runtime Spec_check String Suite Suites Typer Value Verify
