test/test_backend.ml: Alcotest Array Builder Bytecode Code Eval Exec Gen Interp List Lower Option Pipeline Printf QCheck QCheck_alcotest Regalloc Runtime String Value
