test/test_bytecode.ml: Alcotest Array Bytecode Interp List Runtime String Value
