test/test_engine.ml: Alcotest Buffer Builtins Engine Fun Fuzz_gen List Pipeline QCheck QCheck_alcotest Runtime
