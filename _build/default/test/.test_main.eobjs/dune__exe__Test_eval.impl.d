test/test_eval.ml: Alcotest Array Builder Bytecode Constprop Dce Eval Gvn Interp Licm List Loop_inversion Pipeline Runtime Typer Value Verify
