test/test_fuzz.ml: Alcotest Bytecode Diag Engine Fuzz_diff Fuzz_gen List Pipeline Printexc Printf Random String
