test/test_fuzz.ml: Alcotest Bytecode Engine Fuzz_diff Fuzz_gen List Pipeline Printexc Printf Random String
