test/test_harness.ml: Alcotest Fig_codesize Fig_policy Fig_recompile Fig_speedup Fig_suite_calls Fig_web Float List Printf Support
