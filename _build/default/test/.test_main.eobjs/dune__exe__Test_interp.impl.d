test/test_interp.ml: Alcotest Array Buffer Builtins Bytecode Fun Interp Jsfront Ops Printf QCheck QCheck_alcotest Runtime Value
