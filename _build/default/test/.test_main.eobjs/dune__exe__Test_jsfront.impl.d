test/test_jsfront.ml: Alcotest Ast Fmt Jsfront Lexer List Parser Pos QCheck QCheck_alcotest String Token
