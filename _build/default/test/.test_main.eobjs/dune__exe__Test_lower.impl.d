test/test_lower.ml: Alcotest Array Builder Bytecode Code Code_verify Diag Exec List Lower Pipeline Regalloc Runtime String Value
