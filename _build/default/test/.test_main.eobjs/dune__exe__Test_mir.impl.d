test/test_mir.ml: Alcotest Array Builder Bytecode Cfg Diag Gvn Hashtbl List Mir Ops Runtime Suite Suites Typer Value Verify
