test/test_runtime.ml: Alcotest Array Builtins Convert Float List Ops Option QCheck QCheck_alcotest Runtime Value
