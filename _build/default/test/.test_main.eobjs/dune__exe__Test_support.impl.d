test/test_support.ml: Alcotest Array Float Fun Gen List QCheck QCheck_alcotest String Support
