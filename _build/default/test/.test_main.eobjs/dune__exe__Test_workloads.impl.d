test/test_workloads.ml: Alcotest Buffer Engine Float Fun List Pipeline Printf Runtime String Suite Suites Support Web
