(* Tests for LIR lowering, register allocation, and the native executor. *)

open Runtime

let compile_fn ?spec_args ?arg_tags ?(config = Pipeline.baseline) src fid =
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(fid) in
  let f = Builder.build ~program ~func ?spec_args ?arg_tags () in
  ignore (Pipeline.apply ~program config f);
  let vcode = Lower.run f in
  let code, intervals = Regalloc.run vcode in
  (program, func, code, intervals)

let exec ?(globals = [||]) code ~func ~args =
  let cycles = ref 0 in
  let cb =
    {
      Exec.call = (fun _ _ -> Alcotest.fail "unexpected call");
      globals;
      cycles;
    }
  in
  let act = Exec.make_activation ~func ~args () in
  (* Bind before pairing: tuple components evaluate right to left. *)
  let outcome = Exec.run cb code act ~at_osr:false in
  (outcome, !cycles)

let value = Alcotest.testable Value.pp Value.same_value

let check_finished name expected outcome =
  match outcome with
  | Exec.Finished v -> Alcotest.check value name expected v
  | Exec.Bailed b -> Alcotest.failf "%s: unexpected bailout (%s)" name b.Exec.bo_reason

(* --- lowering --- *)

let test_lowered_code_is_allocated () =
  let _, _, code, _ =
    compile_fn "function f(a, b) { return a * b + 1; }" 1
      ~arg_tags:Value.[| Some Tag_int; Some Tag_int |]
  in
  Array.iter
    (fun n ->
      let check_src = function
        | Code.L (Code.V _) -> Alcotest.fail "virtual register survived allocation"
        | _ -> ()
      in
      match n with
      | Code.Op { dst; args; _ } ->
        (match dst with Some (Code.V _) -> Alcotest.fail "virtual dst" | _ -> ());
        Array.iter check_src args
      | Code.Branch (c, _, _) -> check_src c
      | Code.Ret s -> check_src s
      | Code.Jump _ -> ())
    code.Code.instrs

let test_constants_become_immediates () =
  let _, _, code, _ =
    compile_fn "function f() { return 2 + 3; }" 1 ~config:Pipeline.best
      ~spec_args:[||]
  in
  (* The whole body folds; only a return of an immediate remains. *)
  Alcotest.(check bool) "tiny code" true (Code.size code <= 2);
  match code.Code.instrs.(Code.size code - 1) with
  | Code.Ret (Code.Imm (Value.Int 5)) -> ()
  | other -> Alcotest.failf "expected ret $5, got %s" (Code.ninstr_to_string other)

let test_exec_arithmetic () =
  let _, func, code, _ =
    compile_fn "function f(a, b) { return (a + b) * (a - b); }" 1
      ~arg_tags:Value.[| Some Tag_int; Some Tag_int |]
  in
  let outcome, _ = exec code ~func ~args:[| Value.Int 7; Value.Int 3 |] in
  check_finished "(7+3)*(7-3)" (Value.Int 40) outcome

let test_exec_control_flow () =
  let src = "function f(n) { var t = 0; for (var i = 1; i <= n; i++) t += i; return t; }" in
  let _, func, code, _ = compile_fn src 1 ~arg_tags:Value.[| Some Tag_int |] in
  let outcome, _ = exec code ~func ~args:[| Value.Int 100 |] in
  check_finished "gauss" (Value.Int 5050) outcome

let test_exec_heap_traffic () =
  let src =
    "function f(n) { var a = new Array(n); for (var i = 0; i < n; i++) a[i] = i * i; \
     var o = {sum: 0}; for (var i = 0; i < n; i++) o.sum += a[i]; return o.sum; }"
  in
  let _, func, code, _ = compile_fn src 1 ~arg_tags:Value.[| Some Tag_int |] in
  let outcome, _ = exec code ~func ~args:[| Value.Int 10 |] in
  check_finished "sum of squares" (Value.Int 285) outcome

let test_exec_type_barrier_bails () =
  let _, func, code, _ =
    compile_fn "function f(a) { return a + 1; }" 1 ~arg_tags:Value.[| Some Tag_int |]
  in
  let outcome, _ = exec code ~func ~args:[| Value.Str "boom" |] in
  match outcome with
  | Exec.Bailed b ->
    Alcotest.(check int) "resumes at entry" 0 b.Exec.bo_pc;
    Alcotest.(check bool) "argument recovered" true
      (Value.same_value b.Exec.bo_args.(0) (Value.Str "boom"))
  | Exec.Finished _ -> Alcotest.fail "expected a type-barrier bailout"

let test_exec_bounds_check_bails_with_state () =
  let src = "function f(s, i) { var marker = i * 10; return s[i] + marker; }" in
  let _, func, code, _ =
    compile_fn src 1 ~arg_tags:Value.[| Some Tag_array; Some Tag_int |]
  in
  let arr = Value.Arr (Value.arr_of_list [ Value.Int 5 ]) in
  (* In-bounds works natively. *)
  let ok, _ = exec code ~func ~args:[| arr; Value.Int 0 |] in
  check_finished "in bounds" (Value.Int 5) ok;
  (* Out of bounds bails with the locals reconstructed. *)
  let outcome, _ = exec code ~func ~args:[| arr; Value.Int 7 |] in
  match outcome with
  | Exec.Bailed b ->
    Alcotest.(check bool) "marker local recovered" true
      (Array.exists (fun v -> Value.same_value v (Value.Int 70)) b.Exec.bo_locals)
  | Exec.Finished _ -> Alcotest.fail "expected bounds bailout"

let test_exec_overflow_bails () =
  let _, func, code, _ =
    compile_fn "function f(a) { return a + 1; }" 1 ~arg_tags:Value.[| Some Tag_int |]
  in
  let outcome, _ = exec code ~func ~args:[| Value.Int Value.int32_max |] in
  match outcome with
  | Exec.Bailed b -> Alcotest.(check string) "reason" "int32 overflow" b.Exec.bo_reason
  | Exec.Finished _ -> Alcotest.fail "expected overflow bailout"

let test_exec_globals () =
  let src = "g = 0; function bump(n) { g = g + n; return g; }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let f = Builder.build ~program ~func ~arg_tags:Value.[| Some Tag_int |] () in
  ignore (Pipeline.apply ~program Pipeline.baseline f);
  let code, _ = Regalloc.run (Lower.run f) in
  let globals = Array.make (Array.length program.Bytecode.Program.global_names) Value.Undefined in
  let slot = Option.get (Bytecode.Program.global_slot program "g") in
  globals.(slot) <- Value.Int 10;
  let outcome, _ = exec ~globals code ~func ~args:[| Value.Int 5 |] in
  check_finished "returns updated" (Value.Int 15) outcome;
  Alcotest.check value "global written" (Value.Int 15) globals.(slot)

let test_specialized_code_smaller_and_faster () =
  let src = "function f(a, b, n) { var t = 0; for (var i = 0; i < n; i++) t = (t + a * b) | 0; return t; }" in
  let tags = Value.[| Some Tag_int; Some Tag_int; Some Tag_int |] in
  let _, func, generic, _ = compile_fn src 1 ~arg_tags:tags ~config:Pipeline.baseline in
  let args = [| Value.Int 3; Value.Int 4; Value.Int 50 |] in
  let _, _, spec, _ = compile_fn src 1 ~spec_args:args ~config:Pipeline.best in
  Alcotest.(check bool) "specialized code is smaller" true
    (Code.size spec < Code.size generic);
  let out_g, cyc_g = exec generic ~func ~args in
  let out_s, cyc_s = exec spec ~func ~args in
  check_finished "generic result" (Value.Int 600) out_g;
  check_finished "specialized result" (Value.Int 600) out_s;
  Alcotest.(check bool) "specialized runs in fewer cycles" true (cyc_s < cyc_g)

let test_regalloc_spills_under_pressure () =
  (* More than num_registers simultaneously-live values force slots. *)
  let vars = List.init 20 (fun i -> Printf.sprintf "v%d" i) in
  let decls =
    String.concat "" (List.mapi (fun i v -> Printf.sprintf "var %s = x + %d;\n" v i) vars)
  in
  let sum = String.concat " + " vars in
  let src = Printf.sprintf "function f(x) {\n%sreturn (%s) | 0;\n}" decls sum in
  let _, func, code, intervals =
    compile_fn src 1 ~arg_tags:Value.[| Some Tag_int |]
  in
  Alcotest.(check bool) "spill slots allocated" true (code.Code.nslots > 0);
  Alcotest.(check bool) "many intervals" true (intervals > Regalloc.num_registers);
  let outcome, _ = exec code ~func ~args:[| Value.Int 1 |] in
  check_finished "sum correct" (Value.Int (20 + 190)) outcome

(* qcheck: random int-typed expressions compile and execute to the
   interpreter's value. *)
let rec gen_expr_src_ref () = gen_expr_src

and gen_expr_src =
  let open QCheck.Gen in
  let rec expr n =
    if n = 0 then oneof [ oneofl [ "a"; "b" ]; map string_of_int (int_range 0 20) ]
    else
      let* x = expr (n - 1) in
      let* y = expr (n - 1) in
      let* o = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
      return (Printf.sprintf "((%s %s %s) | 0)" x o y)
  in
  let* e = expr 3 in
  return (Printf.sprintf "function f(a, b) { return %s; }" e)

(* Three-way differential: the bytecode interpreter, the MIR reference
   evaluator and the native executor must agree on generated expressions.
   A mismatch at the MIR level blames a pass; at the native level, the
   backend. *)
let eval_mir f ~func ~args =
  let env =
    {
      Eval.ev_args = args;
      ev_env = [||];
      ev_cells = Array.init (max func.Bytecode.Program.ncells 1) (fun _ -> ref Value.Undefined);
      ev_globals = [||];
      ev_call = (fun _ _ -> Alcotest.fail "unexpected call");
      ev_osr_args = [||];
      ev_osr_locals = [||];
    }
  in
  Eval.run env f ~at_osr:false

let prop_three_way_differential =
  QCheck.Test.make ~name:"interp = MIR evaluator = native executor" ~count:150
    QCheck.(
      make
        ~print:(fun (s, a, b) -> Printf.sprintf "%s with (%d, %d)" s a b)
        Gen.(
          let* s = gen_expr_src_ref () in
          let* a = int_range (-100) 100 in
          let* b = int_range (-100) 100 in
          return (s, a, b)))
    (fun (src, a, b) ->
      let program = Bytecode.Compile.program_of_source src in
      let func = program.Bytecode.Program.funcs.(1) in
      let istate = Interp.make_state program in
      let hooks = Interp.default_hooks istate in
      let args = [| Value.Int a; Value.Int b |] in
      let frame = Interp.make_frame func ~args:(Array.copy args) ~upvals:[||] in
      let expected = Interp.run istate hooks frame in
      let f =
        Builder.build ~program ~func ~arg_tags:Value.[| Some Tag_int; Some Tag_int |] ()
      in
      ignore (Pipeline.apply ~program Pipeline.best f);
      let mir_agrees =
        match eval_mir f ~func ~args with
        | Eval.Finished v -> Value.same_value v expected
        | Eval.Bailed _ -> true
      in
      let code, _ = Regalloc.run (Lower.run f) in
      let cb = { Exec.call = (fun _ _ -> assert false); globals = [||]; cycles = ref 0 } in
      let act = Exec.make_activation ~func ~args () in
      let native_agrees =
        match Exec.run cb code act ~at_osr:false with
        | Exec.Finished v -> Value.same_value v expected
        | Exec.Bailed _ -> true
      in
      mir_agrees && native_agrees)

let prop_native_matches_interp =
  QCheck.Test.make ~name:"native code computes what the interpreter computes" ~count:150
    QCheck.(
      make
        ~print:(fun (s, a, b) -> Printf.sprintf "%s with (%d, %d)" s a b)
        Gen.(
          let* s = gen_expr_src in
          let* a = int_range (-100) 100 in
          let* b = int_range (-100) 100 in
          return (s, a, b)))
    (fun (src, a, b) ->
      let program = Bytecode.Compile.program_of_source src in
      let func = program.Bytecode.Program.funcs.(1) in
      let istate = Interp.make_state program in
      let hooks = Interp.default_hooks istate in
      let args = [| Value.Int a; Value.Int b |] in
      let frame = Interp.make_frame func ~args:(Array.copy args) ~upvals:[||] in
      let expected = Interp.run istate hooks frame in
      let f =
        Builder.build ~program ~func ~arg_tags:Value.[| Some Tag_int; Some Tag_int |] ()
      in
      ignore (Pipeline.apply ~program Pipeline.baseline f);
      let code, _ = Regalloc.run (Lower.run f) in
      let cb = { Exec.call = (fun _ _ -> assert false); globals = [||]; cycles = ref 0 } in
      let act = Exec.make_activation ~func ~args () in
      match Exec.run cb code act ~at_osr:false with
      | Exec.Finished v -> Value.same_value v expected
      | Exec.Bailed _ -> true (* overflow guards may fire; resume is engine-level *))

let suites =
  [
    ( "lir",
      [
        Alcotest.test_case "allocation removes vregs" `Quick test_lowered_code_is_allocated;
        Alcotest.test_case "constants are immediates" `Quick
          test_constants_become_immediates;
        Alcotest.test_case "spills under pressure" `Quick
          test_regalloc_spills_under_pressure;
        Alcotest.test_case "specialized smaller and faster" `Quick
          test_specialized_code_smaller_and_faster;
      ] );
    ( "native",
      [
        Alcotest.test_case "arithmetic" `Quick test_exec_arithmetic;
        Alcotest.test_case "control flow" `Quick test_exec_control_flow;
        Alcotest.test_case "heap traffic" `Quick test_exec_heap_traffic;
        Alcotest.test_case "type barrier bails" `Quick test_exec_type_barrier_bails;
        Alcotest.test_case "bounds check bails with state" `Quick
          test_exec_bounds_check_bails_with_state;
        Alcotest.test_case "overflow bails" `Quick test_exec_overflow_bails;
        Alcotest.test_case "globals" `Quick test_exec_globals;
        QCheck_alcotest.to_alcotest prop_native_matches_interp;
        QCheck_alcotest.to_alcotest prop_three_way_differential;
      ] );
  ]
