(* Tests for the bytecode layer: compiler diagnostics, scoping/hoisting
   corner cases, stack-depth computation and the disassembler. *)

open Runtime

let compile src = Bytecode.Compile.program_of_source src

let test_compile_errors () =
  let expect_error src =
    match compile src with
    | exception Bytecode.Compile.Error _ -> ()
    | _ -> Alcotest.failf "expected compile error for %S" src
  in
  expect_error "break;";
  expect_error "continue;";
  expect_error "function f() { break; }";
  expect_error "new Date();"

let test_global_slots () =
  let program = compile "var a = 1; b = 2; function g() {}" in
  Alcotest.(check bool) "a is a global" true
    (Bytecode.Program.global_slot program "a" <> None);
  Alcotest.(check bool) "implicit b is a global" true
    (Bytecode.Program.global_slot program "b" <> None);
  Alcotest.(check bool) "g is a global" true
    (Bytecode.Program.global_slot program "g" <> None);
  Alcotest.(check bool) "builtins pre-registered" true
    (Bytecode.Program.global_slot program "Math" <> None);
  Alcotest.(check bool) "absent name" true
    (Bytecode.Program.global_slot program "nope" = None)

let func_named program name =
  Array.to_list program.Bytecode.Program.funcs
  |> List.find (fun (f : Bytecode.Program.func) -> f.Bytecode.Program.name = name)

let test_captured_variables_become_cells () =
  let program =
    compile
      "function mk(seed) { var c = seed; return function() { c++; return c; }; }"
  in
  let mk = func_named program "mk" in
  Alcotest.(check int) "captured local is a cell" 1 mk.Bytecode.Program.ncells;
  Alcotest.(check int) "no plain locals needed" 0 mk.Bytecode.Program.nlocals;
  let inner =
    Array.to_list program.Bytecode.Program.funcs
    |> List.find (fun (f : Bytecode.Program.func) -> f.Bytecode.Program.nupvals > 0)
  in
  Alcotest.(check int) "inner captures one upvalue" 1 inner.Bytecode.Program.nupvals

let test_uncaptured_variables_stay_locals () =
  let program = compile "function f() { var a = 1, b = 2; return a + b; }" in
  let f = func_named program "f" in
  Alcotest.(check int) "no cells" 0 f.Bytecode.Program.ncells;
  Alcotest.(check bool) "plain locals" true (f.Bytecode.Program.nlocals >= 2)

let test_captured_parameter_prologue () =
  (* A captured parameter is copied into its cell by a compiler-emitted
     prologue: getarg k; setcell j. *)
  let program = compile "function adder(n) { return function(x) { return x + n; }; }" in
  let adder = func_named program "adder" in
  Alcotest.(check int) "param cell" 1 adder.Bytecode.Program.ncells;
  match Array.to_list adder.Bytecode.Program.code with
  | Bytecode.Instr.Get_arg 0 :: Bytecode.Instr.Set_cell 0 :: _ -> ()
  | _ -> Alcotest.fail "expected the capture prologue at entry"

let test_loop_heads_counted () =
  let program =
    compile
      "function f(n) { for (var i = 0; i < n; i++) { var j = 0; while (j < i) j++; do { j--; } while (j > 0); } }"
  in
  let f = func_named program "f" in
  Alcotest.(check int) "three loops" 3 f.Bytecode.Program.nloops

let test_max_stack_covers_calls () =
  let program =
    compile "function g(a, b, c) { return a + b + c; }\nprint(g(1, g(2, 3, 4), g(5, 6, 7)));"
  in
  Array.iter
    (fun (f : Bytecode.Program.func) ->
      Alcotest.(check bool)
        (f.Bytecode.Program.name ^ " max_stack positive")
        true
        (f.Bytecode.Program.max_stack > 0))
    program.Bytecode.Program.funcs;
  (* And the interpreter actually fits within it (would raise otherwise). *)
  let _, v = Interp.run_program program in
  Alcotest.(check bool) "runs" true (Value.same_value v Value.Undefined)

let contains text needle =
  let n = String.length needle and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
  go 0

let test_disassembler_roundtrip_smoke () =
  let program = compile "function f(x) { return x + 1; } print(f(1));" in
  let text = Bytecode.Program.disassemble program in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " mentioned") true (contains text needle))
    [ "function f"; "getarg 0"; "add"; "return" ]

let suites =
  [
    ( "bytecode",
      [
        Alcotest.test_case "compile errors" `Quick test_compile_errors;
        Alcotest.test_case "global slots" `Quick test_global_slots;
        Alcotest.test_case "captured vars become cells" `Quick
          test_captured_variables_become_cells;
        Alcotest.test_case "plain locals stay locals" `Quick
          test_uncaptured_variables_stay_locals;
        Alcotest.test_case "captured parameter prologue" `Quick
          test_captured_parameter_prologue;
        Alcotest.test_case "loop heads counted" `Quick test_loop_heads_counted;
        Alcotest.test_case "max stack" `Quick test_max_stack_covers_calls;
        Alcotest.test_case "disassembler" `Quick test_disassembler_roundtrip_smoke;
      ] );
  ]
