(* Tests for the MIR reference evaluator, plus cross-layer invariants it
   enables: pass idempotence and full-program agreement between the MIR
   level and the bytecode interpreter. *)

open Runtime

let build ?spec_args ?arg_tags ?(config = Pipeline.baseline) src fid =
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(fid) in
  let f = Builder.build ~program ~func ?spec_args ?arg_tags () in
  ignore (Pipeline.apply ~program config f);
  (program, func, f)

let eval ?(globals = [||]) ?(call = fun _ _ -> Alcotest.fail "unexpected call") f
    ~(func : Bytecode.Program.func) ~args =
  let env =
    {
      Eval.ev_args = args;
      ev_env = [||];
      ev_cells =
        Array.init (max func.Bytecode.Program.ncells 1) (fun _ -> ref Value.Undefined);
      ev_globals = globals;
      ev_call = call;
      ev_osr_args = [||];
      ev_osr_locals = [||];
    }
  in
  Eval.run env f ~at_osr:false

let value = Alcotest.testable Value.pp Value.same_value

let check_finished name expected outcome =
  match outcome with
  | Eval.Finished v -> Alcotest.check value name expected v
  | Eval.Bailed { reason; _ } -> Alcotest.failf "%s: unexpected bailout (%s)" name reason

let test_eval_loop () =
  let _, func, f =
    build "function f(n) { var t = 0; for (var i = 1; i <= n; i++) t += i; return t; }" 1
      ~arg_tags:Value.[| Some Tag_int |]
  in
  check_finished "gauss" (Value.Int 5050) (eval f ~func ~args:[| Value.Int 100 |])

let test_eval_guard_bails () =
  let _, func, f =
    build "function f(a) { return a * 2; }" 1 ~arg_tags:Value.[| Some Tag_int |]
  in
  match eval f ~func ~args:[| Value.Str "x" |] with
  | Eval.Bailed { pc; reason } ->
    Alcotest.(check int) "entry pc" 0 pc;
    Alcotest.(check string) "reason" "type barrier" reason
  | Eval.Finished _ -> Alcotest.fail "expected bailout"

let test_eval_calls_through_engine_callback () =
  let calls = ref [] in
  let _, func, f =
    build "function f(g) { return g(2) + g(3); }" 1
      ~spec_args:[| Value.Native_fun "Math.sqrt" |]
      ~config:(Pipeline.make ~ps:true "ps")
  in
  let call v args =
    calls := (v, args) :: !calls;
    Value.Int 9
  in
  (* Natives become direct Call_native during specialization, so the
     callback is not consulted for them; use a closure-valued global
     instead when the call is dynamic. *)
  ignore call;
  check_finished "sqrt(2)+sqrt(3)"
    (Value.norm_num (sqrt 2.0 +. sqrt 3.0))
    (eval f ~func ~args:[| Value.Native_fun "Math.sqrt" |])

let test_eval_matches_interp_on_suite_kernels () =
  (* Whole-function agreement on a few real suite kernels, generic mode. *)
  List.iter
    (fun (src, fid, args, _name) ->
      let program = Bytecode.Compile.program_of_source src in
      let func = program.Bytecode.Program.funcs.(fid) in
      let istate = Interp.make_state program in
      let hooks = Interp.default_hooks istate in
      let frame = Interp.make_frame func ~args:(Array.copy args) ~upvals:[||] in
      let expected = Interp.run istate hooks frame in
      let f = Builder.build ~program ~func () in
      ignore (Pipeline.apply ~program Pipeline.baseline f);
      match
        eval f ~func ~args ~globals:istate.Interp.globals
          ~call:(fun v a -> Interp.call_value istate hooks v a)
      with
      | Eval.Finished v ->
        Alcotest.(check bool) "same value" true (Value.same_value v expected)
      | Eval.Bailed { reason; _ } ->
        (* Overflow guards may fire legitimately (t * 31 overflows int32);
           the engine would resume in the interpreter at that point. *)
        Alcotest.(check string) "only overflow guards may fire" "int32 overflow" reason)
    [
      ( "function bits(b) { var m = 1, c = 0; while (m < 256) { if (b & m) c++; m <<= 1; } return c; }",
        1,
        [| Value.Int 0xAB |],
        "bits" );
      ( "function h(s) { var t = 0; for (var i = 0; i < s.length; i++) t = (t * 31 + s.charCodeAt(i)) | 0; return t; }",
        1,
        [| Value.Str "specialize me" |],
        "hash" );
      ( "function sum(a) { var t = 0; for (var i = 0; i < a.length; i++) t += a[i]; return t; }",
        1,
        [| Value.Arr (Value.arr_of_list (List.init 9 (fun i -> Value.Int (i * i)))) |],
        "sum" );
    ]

(* Pass idempotence: applying a pass to its own output changes nothing. *)
let test_pass_idempotence () =
  let program =
    Bytecode.Compile.program_of_source
      "function f(s, n, k) { var t = 0; for (var i = 0; i < n; i++) { if (s[i] > k) t += s[i]; } return t | 0; }"
  in
  let func = program.Bytecode.Program.funcs.(1) in
  let arr = Value.Arr (Value.arr_of_list (List.init 8 (fun i -> Value.Int i))) in
  let f =
    Builder.build ~program ~func ~spec_args:[| arr; Value.Int 8; Value.Int 3 |] ()
  in
  Typer.run f;
  ignore (Gvn.run f);
  Alcotest.(check int) "gvn fixpoint" 0 (Gvn.run f);
  ignore (Constprop.run f);
  Alcotest.(check int) "constprop fixpoint" 0 (Constprop.run f);
  ignore (Loop_inversion.run f);
  Alcotest.(check int) "inversion fixpoint" 0 (Loop_inversion.run f);
  ignore (Gvn.run f);
  let d1 = Dce.run f in
  let d2 = Dce.run f in
  Alcotest.(check int) "dce fixpoint (instrs)" 0 d2.Dce.instrs_removed;
  Alcotest.(check int) "dce fixpoint (blocks)" 0 d2.Dce.blocks_removed;
  ignore d1;
  ignore (Licm.run f);
  Alcotest.(check int) "licm fixpoint" 0 (Licm.run f);
  Verify.run f

let suites =
  [
    ( "mir.eval",
      [
        Alcotest.test_case "loops" `Quick test_eval_loop;
        Alcotest.test_case "guards bail" `Quick test_eval_guard_bails;
        Alcotest.test_case "native calls" `Quick test_eval_calls_through_engine_callback;
        Alcotest.test_case "matches interpreter on kernels" `Quick
          test_eval_matches_interp_on_suite_kernels;
        Alcotest.test_case "pass idempotence" `Quick test_pass_idempotence;
      ] );
  ]
