(* Shape checks over the experiment harness: every figure/table driver
   returns well-formed data of the paper's dimensions. *)

let test_fig_web_shape () =
  let t = Fig_web.run ~nfunctions:4000 () in
  Alcotest.(check int) "29 bins + tail (fig 1)" 30 (List.length t.Fig_web.calls_bins);
  Alcotest.(check int) "29 bins + tail (fig 2)" 30 (List.length t.Fig_web.argsets_bins);
  Alcotest.(check bool) "head fractions plausible" true
    (t.Fig_web.called_once > 0.40 && t.Fig_web.called_once < 0.60);
  Alcotest.(check bool) "argset head exceeds call head" true
    (t.Fig_web.single_argset > t.Fig_web.called_once);
  Alcotest.(check int) "nine type categories" 9 (List.length t.Fig_web.type_fractions);
  let sum = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 t.Fig_web.type_fractions in
  Alcotest.(check bool) "type fractions sum to 1" true (Float.abs (sum -. 1.0) < 1e-6)

let test_fig3_shape () =
  let stats = Fig_suite_calls.run () in
  Alcotest.(check int) "three suites" 3 (List.length stats);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Fig_suite_calls.suite_name ^ " has functions")
        true
        (s.Fig_suite_calls.distinct_functions > 0);
      Alcotest.(check bool) "has a most-called function" true
        (snd s.Fig_suite_calls.most_called > 0);
      Alcotest.(check bool) "fractions in range" true
        (s.Fig_suite_calls.called_once >= 0.0 && s.Fig_suite_calls.called_once <= 1.0))
    stats

let test_fig9_shape () =
  let t = Fig_speedup.run () in
  Alcotest.(check int) "ten configurations" 10 (List.length t.Fig_speedup.config_names);
  Alcotest.(check int) "three suites" 3 (List.length t.Fig_speedup.suites);
  List.iter
    (fun (_, cells) ->
      Alcotest.(check int) "a cell per config" 10 (List.length cells);
      List.iter
        (fun c ->
          Alcotest.(check bool) "per-member data present" true
            (List.length c.Fig_speedup.speedups > 0))
        cells)
    t.Fig_speedup.suites;
  (* The headline shape: the full specializing configurations beat the
     CP-only column on SunSpider. *)
  let sunspider = List.assoc "SunSpider 1.0" t.Fig_speedup.suites in
  let mean i =
    Support.Stats.arithmetic_mean (List.nth sunspider i).Fig_speedup.speedups
  in
  let cp_only = mean 1 and ps_cp_dce = mean 4 in
  Alcotest.(check bool)
    (Printf.sprintf "PS+CP+DCE (%.2f%%) > CP (%.2f%%) on SunSpider" ps_cp_dce cp_only)
    true (ps_cp_dce > cp_only);
  Alcotest.(check bool) "PS+CP+DCE SunSpider speedup is positive" true (ps_cp_dce > 0.0)

let test_fig10_shape () =
  let suites = Fig_codesize.run_suites () in
  Alcotest.(check int) "three suites" 3 (List.length suites);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Fig_codesize.suite_name ^ " has size points")
        true
        (List.length s.Fig_codesize.points > 0);
      (* The paper's headline: specialization shrinks code. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s average reduction %.2f%% is positive"
           s.Fig_codesize.suite_name s.Fig_codesize.average_reduction)
        true
        (s.Fig_codesize.average_reduction > 0.0))
    suites

let test_web_sites_shape () =
  let sites = Fig_codesize.run_sites () in
  Alcotest.(check int) "three sites" 3 (List.length sites);
  List.iter
    (fun s ->
      Alcotest.(check bool) (s.Fig_codesize.site ^ " shrinks") true
        (s.Fig_codesize.size_reduction > 0.0))
    sites;
  let get name = List.find (fun s -> s.Fig_codesize.site = name) sites in
  Alcotest.(check bool) "twitter recompiles more than google" true
    ((get "www.twitter.com").Fig_codesize.recompile_increase
    > (get "www.google.com").Fig_codesize.recompile_increase)

let test_policy_shape () =
  let rows = Fig_policy.run () in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.Fig_policy.suite_name ^ ": successful + deoptimized = specialized")
        r.Fig_policy.specialized
        (r.Fig_policy.successful + r.Fig_policy.deoptimized);
      Alcotest.(check bool) "specialized some functions" true (r.Fig_policy.specialized > 0);
      (* The paper's observation: a majority-significant share deoptimizes. *)
      Alcotest.(check bool) "some deoptimize" true (r.Fig_policy.deoptimized > 0))
    rows

let test_recompile_shape () =
  let rows = Fig_recompile.run () in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Fig_recompile.suite_name ^ " spec compiles >= base")
        true
        (r.Fig_recompile.spec_compilations >= r.Fig_recompile.base_compilations);
      Alcotest.(check bool) "growth non-negative" true (r.Fig_recompile.growth_percent >= 0.0))
    rows

let suites =
  [
    ( "harness",
      [
        Alcotest.test_case "fig1/2/4 web" `Quick test_fig_web_shape;
        Alcotest.test_case "fig3 suites" `Slow test_fig3_shape;
        Alcotest.test_case "fig9 grid" `Slow test_fig9_shape;
        Alcotest.test_case "fig10 code size" `Slow test_fig10_shape;
        Alcotest.test_case "web sites study" `Slow test_web_sites_shape;
        Alcotest.test_case "policy counts" `Slow test_policy_shape;
        Alcotest.test_case "recompilations" `Slow test_recompile_shape;
      ] );
  ]
