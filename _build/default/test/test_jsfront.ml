(* Tests for the MiniJS lexer and parser. *)

open Jsfront

let toks src = List.map fst (Lexer.tokenize src)

let token = Alcotest.testable (fun fmt t -> Fmt.string fmt (Token.to_string t)) ( = )

let test_lex_numbers () =
  Alcotest.(check (list token)) "ints and floats"
    Token.[ Int 42; Float 3.5; Int 255; Float 1e3; Eof ]
    (toks "42 3.5 0xFF 1e3")

let test_lex_strings () =
  Alcotest.(check (list token)) "escapes"
    Token.[ String "a\nb"; String "q'"; Eof ]
    (toks {|"a\nb" 'q\''|})

let test_lex_operators () =
  Alcotest.(check (list token)) "longest match"
    Token.[ Eq_eq_eq; Eq_eq; Assign; Ushr; Shr; Plus_plus; Plus; Eof ]
    (toks "=== == = >>> >> ++ +")

let test_lex_comments () =
  Alcotest.(check (list token)) "comments skipped"
    Token.[ Int 1; Int 2; Eof ]
    (toks "1 // line\n/* block\nstill */ 2")

let test_lex_keywords () =
  Alcotest.(check (list token)) "keywords vs idents"
    Token.[ Kw_function; Ident "functions"; Kw_typeof; Ident "typeofx"; Eof ]
    (toks "function functions typeof typeofx")

let test_lex_error_position () =
  match Lexer.tokenize "var x =\n  @" with
  | exception Lexer.Error (pos, _) ->
    Alcotest.(check int) "line" 2 pos.Pos.line;
    Alcotest.(check int) "col" 3 pos.Pos.col
  | _ -> Alcotest.fail "expected lexer error"

(* --- Parser --- *)

let expr = Alcotest.testable (fun fmt e -> Fmt.string fmt (Ast.expr_to_string e)) ( = )

let pe = Parser.parse_expression

let test_parse_precedence () =
  Alcotest.check expr "mul binds tighter"
    Ast.(Binop (Add, Int 1, Binop (Mul, Int 2, Int 3)))
    (pe "1 + 2 * 3");
  Alcotest.check expr "cmp above logic"
    Ast.(And (Cmp (Lt, Var "a", Int 1), Cmp (Gt, Var "b", Int 2)))
    (pe "a < 1 && b > 2");
  Alcotest.check expr "bitor below xor"
    Ast.(Binop (Bit_or, Var "a", Binop (Bit_xor, Var "b", Var "c")))
    (pe "a | b ^ c")

let test_parse_assoc () =
  Alcotest.check expr "sub is left-assoc"
    Ast.(Binop (Sub, Binop (Sub, Int 1, Int 2), Int 3))
    (pe "1 - 2 - 3");
  Alcotest.check expr "assign is right-assoc"
    Ast.(Assign (L_var "a", Assign (L_var "b", Int 1)))
    (pe "a = b = 1")

let test_parse_unary_minus_literal () =
  Alcotest.check expr "folds into literal" (Ast.Int (-5)) (pe "-5");
  (* The folding applies at every level, so -(-5) collapses to the literal 5. *)
  Alcotest.check expr "double negation" (Ast.Int 5) (pe "- -5")

let test_parse_calls_and_members () =
  Alcotest.check expr "call chain"
    Ast.(Call (Call (Var "f", [ Int 1 ]), [ Int 2 ]))
    (pe "f(1)(2)");
  Alcotest.check expr "method call"
    Ast.(Method_call (Var "s", "charCodeAt", [ Var "i" ]))
    (pe "s.charCodeAt(i)");
  Alcotest.check expr "index then prop"
    Ast.(Prop (Index (Var "a", Int 0), "length"))
    (pe "a[0].length")

let test_parse_ternary () =
  Alcotest.check expr "ternary"
    Ast.(Cond (Cmp (Lt, Var "x", Int 0), Int (-1), Int 1))
    (pe "x < 0 ? -1 : 1")

let test_parse_update () =
  Alcotest.check expr "postfix" Ast.(Update (Incr, false, L_var "i")) (pe "i++");
  Alcotest.check expr "prefix" Ast.(Update (Decr, true, L_var "i")) (pe "--i");
  Alcotest.check expr "elem target"
    Ast.(Update (Incr, false, L_index (Var "a", Var "i")))
    (pe "a[i]++")

let test_parse_literals () =
  Alcotest.check expr "array" Ast.(Array_lit [ Int 1; Int 2 ]) (pe "[1, 2]");
  Alcotest.check expr "object"
    Ast.(Object_lit [ ("x", Int 1); ("y", Str "s") ])
    (pe "{x: 1, y: \"s\"}");
  Alcotest.check expr "new" Ast.(New ("Array", [ Int 5 ])) (pe "new Array(5)")

let test_parse_op_assign () =
  Alcotest.check expr "plus assign"
    Ast.(Op_assign (Add, L_prop (Var "o", "n"), Int 2))
    (pe "o.n += 2")

let test_parse_program_shapes () =
  let prog =
    Parser.parse_program
      {|
        function map(s, b, n, f) {
          var i = b;
          while (i < n) { s[i] = f(s[i]); i++; }
          return s;
        }
        print(map(new Array(1, 2, 3, 4, 5), 2, 5, inc));
      |}
  in
  match prog with
  | [ Ast.Func_decl f; Ast.Expr_stmt (Ast.Call (Ast.Var "print", [ _ ])) ] ->
    Alcotest.(check (option string)) "name" (Some "map") f.Ast.name;
    Alcotest.(check (list string)) "params" [ "s"; "b"; "n"; "f" ] f.Ast.params;
    Alcotest.(check int) "3 body stmts" 3 (List.length f.Ast.body)
  | _ -> Alcotest.fail "unexpected program shape"

let test_parse_for_variants () =
  let prog = Parser.parse_program "for (var i = 0; i < 10; i++) { }" in
  (match prog with
  | [ Ast.For (Some (Ast.Var_decl _), Some _, Some _, []) ] -> ()
  | _ -> Alcotest.fail "for with all three clauses");
  let prog2 = Parser.parse_program "for (;;) { break; }" in
  match prog2 with
  | [ Ast.For (None, None, None, [ Ast.Break ]) ] -> ()
  | _ -> Alcotest.fail "empty for clauses"

let test_parse_if_else_chain () =
  let prog = Parser.parse_program "if (a) x = 1; else if (b) x = 2; else x = 3;" in
  match prog with
  | [ Ast.If (_, [ _ ], [ Ast.If (_, [ _ ], [ _ ]) ]) ] -> ()
  | _ -> Alcotest.fail "if-else-if shape"

let test_parse_do_while () =
  match Parser.parse_program "do { i++; } while (i < 5);" with
  | [ Ast.Do_while ([ _ ], Ast.Cmp (Ast.Lt, _, _)) ] -> ()
  | _ -> Alcotest.fail "do-while shape"

let test_parse_nested_function () =
  match Parser.parse_program "function f(x) { function g(y) { return y; } return g(x); }" with
  | [ Ast.Func_decl f ] -> (
    match f.Ast.body with
    | [ Ast.Func_decl g; Ast.Return (Some _) ] ->
      Alcotest.(check (option string)) "inner name" (Some "g") g.Ast.name
    | _ -> Alcotest.fail "inner shape")
  | _ -> Alcotest.fail "outer shape"

let test_parse_function_expression () =
  match Parser.parse_program "var f = function(x) { return x + 1; };" with
  | [ Ast.Var_decl [ ("f", Some (Ast.Func { name = None; params = [ "x" ]; _ })) ] ] -> ()
  | _ -> Alcotest.fail "function expression shape"

let test_parse_for_in () =
  (match Parser.parse_program "for (var k in o) { t += o[k]; }" with
  | [ Ast.For_in ("k", Ast.Var "o", [ _ ]) ] -> ()
  | _ -> Alcotest.fail "for-in with var");
  (match Parser.parse_program "for (k in o) t++;" with
  | [ Ast.For_in ("k", Ast.Var "o", [ _ ]) ] -> ()
  | _ -> Alcotest.fail "for-in without var");
  (* `in` does not swallow the three-clause form *)
  match Parser.parse_program "for (var i = 0; i < n; i++) { }" with
  | [ Ast.For (Some _, Some _, Some _, []) ] -> ()
  | _ -> Alcotest.fail "plain for unaffected"

let test_parse_switch () =
  (match Parser.parse_program "switch (x) { case 1: a(); break; default: b(); case 2: }" with
  | [ Ast.Switch (Ast.Var "x", [ (Some (Ast.Int 1), [ _; Ast.Break ]); (None, [ _ ]); (Some (Ast.Int 2), []) ]) ] -> ()
  | _ -> Alcotest.fail "switch shape");
  match Parser.parse_program "switch (x) { }" with
  | [ Ast.Switch (_, []) ] -> ()
  | _ -> Alcotest.fail "empty switch"

let test_parse_error_reports_position () =
  match Parser.parse_program "var = 3;" with
  | exception Parser.Error (_, msg) ->
    Alcotest.(check bool) "mentions identifier" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected parse error"

let test_parse_invalid_assignment_target () =
  match Parser.parse_program "1 = 2;" with
  | exception Parser.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected parse error for 1 = 2"

(* Round-trip style property: generated arithmetic expressions parse back to
   the same tree after printing. *)
let gen_arith_expr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then map (fun i -> Ast.Int i) (int_range 0 100)
          else
            frequency
              [
                (1, map (fun i -> Ast.Int i) (int_range 0 100));
                ( 2,
                  map3
                    (fun op a b -> Ast.Binop (op, a, b))
                    (oneofl Ast.[ Add; Sub; Mul ])
                    (self (n / 2)) (self (n / 2)) );
                ( 1,
                  map3
                    (fun op a b -> Ast.Cmp (op, a, b))
                    (oneofl Ast.[ Lt; Le; Eq; Strict_eq ])
                    (self (n / 2)) (self (n / 2)) );
              ])
        n)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"printed expressions re-parse to the same tree" ~count:300
    (QCheck.make ~print:Ast.expr_to_string gen_arith_expr)
    (fun e ->
      let printed = Ast.expr_to_string e in
      Parser.parse_expression printed = e)

let suites =
  [
    ( "jsfront.lexer",
      [
        Alcotest.test_case "numbers" `Quick test_lex_numbers;
        Alcotest.test_case "strings" `Quick test_lex_strings;
        Alcotest.test_case "operators" `Quick test_lex_operators;
        Alcotest.test_case "comments" `Quick test_lex_comments;
        Alcotest.test_case "keywords" `Quick test_lex_keywords;
        Alcotest.test_case "error position" `Quick test_lex_error_position;
      ] );
    ( "jsfront.parser",
      [
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "associativity" `Quick test_parse_assoc;
        Alcotest.test_case "unary minus literal" `Quick test_parse_unary_minus_literal;
        Alcotest.test_case "calls and members" `Quick test_parse_calls_and_members;
        Alcotest.test_case "ternary" `Quick test_parse_ternary;
        Alcotest.test_case "update expressions" `Quick test_parse_update;
        Alcotest.test_case "literals" `Quick test_parse_literals;
        Alcotest.test_case "op-assign" `Quick test_parse_op_assign;
        Alcotest.test_case "program shapes" `Quick test_parse_program_shapes;
        Alcotest.test_case "for variants" `Quick test_parse_for_variants;
        Alcotest.test_case "if-else chain" `Quick test_parse_if_else_chain;
        Alcotest.test_case "do-while" `Quick test_parse_do_while;
        Alcotest.test_case "nested functions" `Quick test_parse_nested_function;
        Alcotest.test_case "function expression" `Quick test_parse_function_expression;
        Alcotest.test_case "for-in" `Quick test_parse_for_in;
        Alcotest.test_case "switch" `Quick test_parse_switch;
        Alcotest.test_case "error position" `Quick test_parse_error_reports_position;
        Alcotest.test_case "invalid assignment target" `Quick
          test_parse_invalid_assignment_target;
        QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
      ] );
  ]
