(* Tests for runtime values, conversions and operator semantics. *)

open Runtime

let value = Alcotest.testable Value.pp (fun a b -> Value.same_value a b)

let check_value name expected actual = Alcotest.check value name expected actual

(* --- Value normalization --- *)

let test_norm_num () =
  check_value "integral double becomes Int" (Value.Int 3) (Value.norm_num 3.0);
  check_value "fraction stays Double" (Value.Double 3.5) (Value.norm_num 3.5);
  check_value "negative zero stays Double" (Value.Double (-0.0)) (Value.norm_num (-0.0));
  check_value "int32 max" (Value.Int 0x7FFFFFFF) (Value.norm_num 2147483647.0);
  check_value "overflow becomes Double" (Value.Double 2147483648.0)
    (Value.norm_num 2147483648.0);
  (match Value.norm_num Float.nan with
  | Value.Double f -> Alcotest.(check bool) "nan stays" true (Float.is_nan f)
  | _ -> Alcotest.fail "nan must be Double")

let test_of_int () =
  check_value "in range" (Value.Int 5) (Value.of_int 5);
  check_value "out of range" (Value.Double 4294967296.0) (Value.of_int 0x1_0000_0000)

let test_typeof () =
  let t v = Value.typeof v in
  Alcotest.(check string) "undefined" "undefined" (t Value.Undefined);
  Alcotest.(check string) "null" "object" (t Value.Null);
  Alcotest.(check string) "int" "number" (t (Value.Int 1));
  Alcotest.(check string) "double" "number" (t (Value.Double 1.5));
  Alcotest.(check string) "string" "string" (t (Value.Str "s"));
  Alcotest.(check string) "array" "object" (t (Value.Arr (Value.new_arr 0)));
  Alcotest.(check string) "object" "object" (t (Value.Obj (Value.new_obj ())));
  Alcotest.(check string) "native" "function" (t (Value.Native_fun "print"))

let test_array_growth () =
  let a = Value.new_arr 2 in
  Value.arr_set a 10 (Value.Int 7);
  Alcotest.(check int) "length grows" 11 a.Value.length;
  check_value "hole" Value.Undefined (Value.arr_get a 5);
  check_value "value" (Value.Int 7) (Value.arr_get a 10);
  check_value "oob read" Value.Undefined (Value.arr_get a 100)

let test_same_value_identity () =
  let a = Value.Arr (Value.new_arr 1) in
  let b = Value.Arr (Value.new_arr 1) in
  Alcotest.(check bool) "same array" true (Value.same_value a a);
  Alcotest.(check bool) "different arrays" false (Value.same_value a b);
  Alcotest.(check bool) "NaN cache-equal" true
    (Value.same_value (Value.Double Float.nan) (Value.Double Float.nan))

let test_same_args () =
  let o = Value.Obj (Value.new_obj ()) in
  Alcotest.(check bool) "equal tuple" true
    (Value.same_args [| Value.Int 1; o |] [| Value.Int 1; o |]);
  Alcotest.(check bool) "different arity" false
    (Value.same_args [| Value.Int 1 |] [| Value.Int 1; Value.Int 2 |]);
  Alcotest.(check bool) "different value" false
    (Value.same_args [| Value.Int 1 |] [| Value.Int 2 |])

(* --- Conversions --- *)

let test_to_number () =
  Alcotest.(check (float 0.0)) "null" 0.0 (Convert.to_number Value.Null);
  Alcotest.(check (float 0.0)) "true" 1.0 (Convert.to_number (Value.Bool true));
  Alcotest.(check (float 0.0)) "numeric string" 42.5 (Convert.to_number (Value.Str "42.5"));
  Alcotest.(check (float 0.0)) "empty string" 0.0 (Convert.to_number (Value.Str ""));
  Alcotest.(check bool) "garbage string" true
    (Float.is_nan (Convert.to_number (Value.Str "abc")));
  Alcotest.(check bool) "undefined" true (Float.is_nan (Convert.to_number Value.Undefined))

let test_to_int32_wraps () =
  Alcotest.(check int) "wraps" (-2147483648)
    (Convert.to_int32 (Value.Double 2147483648.0));
  Alcotest.(check int) "nan is 0" 0 (Convert.to_int32 (Value.Double Float.nan));
  Alcotest.(check int) "negative" (-1) (Convert.to_int32 (Value.Double (-1.0)));
  Alcotest.(check int) "truncates" 3 (Convert.to_int32 (Value.Double 3.9))

let test_to_boolean () =
  let t v = Convert.to_boolean v in
  Alcotest.(check bool) "0" false (t (Value.Int 0));
  Alcotest.(check bool) "nan" false (t (Value.Double Float.nan));
  Alcotest.(check bool) "empty string" false (t (Value.Str ""));
  Alcotest.(check bool) "object" true (t (Value.Obj (Value.new_obj ())));
  Alcotest.(check bool) "string" true (t (Value.Str "x"))

(* --- Operators --- *)

let test_add_semantics () =
  check_value "int add" (Value.Int 3) (Ops.binop Ops.Add (Value.Int 1) (Value.Int 2));
  check_value "string concat" (Value.Str "a1")
    (Ops.binop Ops.Add (Value.Str "a") (Value.Int 1));
  check_value "number plus string" (Value.Str "1a")
    (Ops.binop Ops.Add (Value.Int 1) (Value.Str "a"));
  check_value "int overflow to double" (Value.Double 4294967294.0)
    (Ops.binop Ops.Add (Value.Int 2147483647) (Value.Int 2147483647));
  check_value "undefined add" (Value.Double Float.nan)
    (Ops.binop Ops.Add Value.Undefined (Value.Int 1))

let test_numeric_ops () =
  check_value "div is float" (Value.Double 2.5) (Ops.binop Ops.Div (Value.Int 5) (Value.Int 2));
  check_value "div exact normalizes" (Value.Int 2) (Ops.binop Ops.Div (Value.Int 4) (Value.Int 2));
  check_value "mod" (Value.Int 1) (Ops.binop Ops.Mod (Value.Int 7) (Value.Int 3));
  check_value "mod negative" (Value.Int (-1)) (Ops.binop Ops.Mod (Value.Int (-7)) (Value.Int 3));
  check_value "string coerced mul" (Value.Int 12)
    (Ops.binop Ops.Mul (Value.Str "3") (Value.Str "4"))

let test_bitwise_ops () =
  check_value "and" (Value.Int 8) (Ops.binop Ops.Bit_and (Value.Int 12) (Value.Int 10));
  check_value "shl wraps" (Value.Int (-2147483648))
    (Ops.binop Ops.Shl (Value.Int 1) (Value.Int 31));
  check_value "shr sign extends" (Value.Int (-4))
    (Ops.binop Ops.Shr (Value.Int (-7)) (Value.Int 1));
  check_value "ushr" (Value.Int 15) (Ops.binop Ops.Ushr (Value.Int (-7)) (Value.Int 28));
  check_value "double to int32 first" (Value.Int 3)
    (Ops.binop Ops.Bit_or (Value.Double 3.7) (Value.Int 0))

let test_equality () =
  let b e = Value.Bool e in
  check_value "loose string num" (b true) (Ops.cmp Ops.Eq (Value.Str "5") (Value.Int 5));
  check_value "strict string num" (b false)
    (Ops.cmp Ops.Strict_eq (Value.Str "5") (Value.Int 5));
  check_value "null undefined loose" (b true) (Ops.cmp Ops.Eq Value.Null Value.Undefined);
  check_value "null undefined strict" (b false)
    (Ops.cmp Ops.Strict_eq Value.Null Value.Undefined);
  check_value "nan neq nan" (b false)
    (Ops.cmp Ops.Strict_eq (Value.Double Float.nan) (Value.Double Float.nan));
  check_value "bool coerces" (b true) (Ops.cmp Ops.Eq (Value.Bool true) (Value.Int 1));
  let o = Value.Obj (Value.new_obj ()) in
  check_value "object identity" (b true) (Ops.cmp Ops.Eq o o);
  check_value "distinct objects" (b false)
    (Ops.cmp Ops.Eq o (Value.Obj (Value.new_obj ())))

let test_relational () =
  check_value "string compare" (Value.Bool true)
    (Ops.cmp Ops.Lt (Value.Str "abc") (Value.Str "abd"));
  check_value "mixed numeric" (Value.Bool true) (Ops.cmp Ops.Lt (Value.Str "9") (Value.Int 10));
  check_value "nan incomparable" (Value.Bool false)
    (Ops.cmp Ops.Le (Value.Double Float.nan) (Value.Int 1))

let test_unops () =
  check_value "neg" (Value.Int (-5)) (Ops.unop Ops.Neg (Value.Int 5));
  check_value "not" (Value.Bool true) (Ops.unop Ops.Not (Value.Int 0));
  check_value "bitnot" (Value.Int (-6)) (Ops.unop Ops.Bit_not (Value.Int 5));
  check_value "typeof" (Value.Str "number") (Ops.unop Ops.Typeof (Value.Int 1));
  check_value "tonumber string" (Value.Int 7) (Ops.unop Ops.To_number (Value.Str "7"))

(* --- Builtins --- *)

let test_builtin_math () =
  check_value "floor" (Value.Int 3) (Builtins.call "Math.floor" [| Value.Double 3.7 |]);
  check_value "pow" (Value.Int 1024) (Builtins.call "Math.pow" [| Value.Int 2; Value.Int 10 |]);
  check_value "min" (Value.Int 1) (Builtins.call "Math.min" [| Value.Int 4; Value.Int 1 |]);
  check_value "abs" (Value.Int 2) (Builtins.call "Math.abs" [| Value.Int (-2) |])

let test_builtin_string_methods () =
  let s = Value.Str "hello" in
  let m name args = Option.get (Builtins.method_call s name args) in
  check_value "charCodeAt" (Value.Int 104) (m "charCodeAt" [| Value.Int 0 |]);
  check_value "charAt" (Value.Str "e") (m "charAt" [| Value.Int 1 |]);
  check_value "indexOf" (Value.Int 2) (m "indexOf" [| Value.Str "ll" |]);
  check_value "substring" (Value.Str "ell") (m "substring" [| Value.Int 1; Value.Int 4 |]);
  check_value "substring swaps" (Value.Str "ell")
    (m "substring" [| Value.Int 4; Value.Int 1 |]);
  check_value "upper" (Value.Str "HELLO") (m "toUpperCase" [||]);
  check_value "replace" (Value.Str "heLLo") (m "replace" [| Value.Str "ll"; Value.Str "LL" |])

let test_builtin_split_join () =
  match Builtins.method_call (Value.Str "a,b,c") "split" [| Value.Str "," |] with
  | Some (Value.Arr a) ->
    Alcotest.(check int) "3 parts" 3 a.Value.length;
    check_value "first" (Value.Str "a") (Value.arr_get a 0);
    let joined = Option.get (Builtins.method_call (Value.Arr a) "join" [| Value.Str "-" |]) in
    check_value "join" (Value.Str "a-b-c") joined
  | _ -> Alcotest.fail "split failed"

let test_builtin_array_methods () =
  let a = Value.arr_of_list [ Value.Int 1; Value.Int 2 ] in
  let m name args = Option.get (Builtins.method_call (Value.Arr a) name args) in
  check_value "push returns length" (Value.Int 3) (m "push" [| Value.Int 9 |]);
  check_value "pop" (Value.Int 9) (m "pop" [||]);
  Alcotest.(check int) "length back to 2" 2 a.Value.length;
  check_value "indexOf" (Value.Int 1) (m "indexOf" [| Value.Int 2 |]);
  check_value "shift" (Value.Int 1) (m "shift" [||]);
  Alcotest.(check int) "after shift" 1 a.Value.length

let test_builtin_prop () =
  Alcotest.(check bool) "string length" true
    (Builtins.get_prop (Value.Str "abcd") "length" = Some (Value.Int 4));
  Alcotest.(check bool) "unknown prop" true (Builtins.get_prop (Value.Str "x") "nope" = None)

let test_builtin_purity () =
  Alcotest.(check bool) "floor pure" true (Builtins.is_pure "Math.floor");
  Alcotest.(check bool) "random impure" false (Builtins.is_pure "Math.random");
  Alcotest.(check bool) "print impure" false (Builtins.is_pure "print")

let test_obj_key_order () =
  let o = Value.new_obj () in
  Value.obj_set o "b" (Value.Int 1);
  Value.obj_set o "a" (Value.Int 2);
  Value.obj_set o "c" (Value.Int 3);
  (* overwriting keeps the original position *)
  Value.obj_set o "b" (Value.Int 10);
  Alcotest.(check (list string)) "insertion order" [ "b"; "a"; "c" ] (Value.obj_keys o);
  Value.obj_set o "d" (Value.Int 4);
  Alcotest.(check (list string)) "append" [ "b"; "a"; "c"; "d" ] (Value.obj_keys o);
  let built = Value.obj_with_props [ ("x", Value.Int 1); ("y", Value.Int 2) ] in
  Alcotest.(check (list string)) "literal order" [ "x"; "y" ] (Value.obj_keys built)

let test_keys_native () =
  let o = Value.obj_with_props [ ("p", Value.Int 1); ("q", Value.Int 2) ] in
  (match Builtins.call "__keys" [| Value.Obj o |] with
  | Value.Arr a ->
    Alcotest.(check int) "two keys" 2 a.Value.length;
    Alcotest.(check bool) "first is p" true (Value.arr_get a 0 = Value.Str "p")
  | _ -> Alcotest.fail "expected an array");
  (match Builtins.call "__keys" [| Value.Arr (Value.new_arr 3) |] with
  | Value.Arr a ->
    Alcotest.(check bool) "indices as strings" true
      (a.Value.length = 3 && Value.arr_get a 2 = Value.Str "2")
  | _ -> Alcotest.fail "expected an array");
  (match Builtins.call "__keys" [| Value.Int 7 |] with
  | Value.Arr a -> Alcotest.(check int) "primitive: none" 0 a.Value.length
  | _ -> Alcotest.fail "expected an array");
  Alcotest.(check bool) "impure (never folded)" false (Builtins.is_pure "__keys")

let test_number_edge_cases () =
  (* -0 normalizes to Int 0 only when it would be indistinguishable. *)
  Alcotest.(check bool) "-0.0 stays a double" true
    (match Value.norm_num (-0.0) with Value.Double _ -> true | _ -> false);
  (* int32 boundary: 2^31-1 is an Int, 2^31 is a Double *)
  Alcotest.(check bool) "int32 max" true (Value.norm_num 2147483647.0 = Value.Int 2147483647);
  Alcotest.(check bool) "int32 max + 1" true
    (match Value.norm_num 2147483648.0 with Value.Double _ -> true | _ -> false);
  (* NaN propagates through arithmetic but | 0 gives 0 *)
  let nan_v = Ops.binop Ops.Add (Value.Double Float.nan) (Value.Int 1) in
  Alcotest.(check bool) "NaN + 1 is NaN" true
    (match nan_v with Value.Double f -> Float.is_nan f | _ -> false);
  Alcotest.(check bool) "NaN | 0 = 0" true
    (Ops.binop Ops.Bit_or nan_v (Value.Int 0) = Value.Int 0);
  (* division by zero *)
  Alcotest.(check bool) "1/0 = Infinity" true
    (match Ops.binop Ops.Div (Value.Int 1) (Value.Int 0) with
    | Value.Double f -> f = Float.infinity
    | _ -> false);
  (* string to number corners *)
  Alcotest.(check bool) "empty string is 0" true (Convert.to_number (Value.Str "") = 0.0);
  Alcotest.(check bool) "garbage is NaN" true
    (Float.is_nan (Convert.to_number (Value.Str "12ab")))

let test_sort_comparator_hof () =
  let a = Value.arr_of_list [ Value.Int 3; Value.Int 1; Value.Int 2 ] in
  let call f args =
    ignore f;
    Ops.binop Ops.Sub args.(0) args.(1)
  in
  (match Builtins.method_call ~call (Value.Arr a) "sort" [| Value.Bool true |] with
  | Some (Value.Arr sorted) ->
    Alcotest.(check (list bool)) "ascending" [ true; true; true ]
      (List.init 3 (fun i -> Value.arr_get sorted i = Value.Int (i + 1)))
  | _ -> Alcotest.fail "sort with comparator failed")

let test_deterministic_random () =
  Builtins.reset_random 123;
  let a = Builtins.call "Math.random" [||] in
  Builtins.reset_random 123;
  let b = Builtins.call "Math.random" [||] in
  Alcotest.(check bool) "same seed same value" true (Value.same_value a b);
  (match a with
  | Value.Double f -> Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  | _ -> Alcotest.fail "random must be double")

(* --- qcheck properties --- *)

let arb_number =
  QCheck.(
    oneof
      [
        map (fun n -> Value.Int (n land 0x7FFFFFFF)) int;
        map (fun f -> Value.norm_num f) (float_range (-1e9) 1e9);
      ])

let prop_norm_idempotent =
  QCheck.Test.make ~name:"norm_num is idempotent through to_number" ~count:500
    QCheck.(float_range (-1e12) 1e12)
    (fun f ->
      match Value.norm_num f with
      | Value.Int n -> float_of_int n = f
      | Value.Double g -> g = f
      | _ -> false)

let prop_add_commutes_numeric =
  QCheck.Test.make ~name:"numeric + commutes" ~count:500 (QCheck.pair arb_number arb_number)
    (fun (a, b) ->
      Value.same_value (Ops.binop Ops.Add a b) (Ops.binop Ops.Add b a))

let prop_strict_eq_reflexive =
  QCheck.Test.make ~name:"=== reflexive for non-NaN" ~count:500 arb_number (fun v ->
      match v with
      | Value.Double f when Float.is_nan f -> true
      | _ -> Ops.strict_eq v v)

let prop_to_int32_in_range =
  QCheck.Test.make ~name:"to_int32 lands in int32 range" ~count:500
    QCheck.(float_range (-1e15) 1e15)
    (fun f ->
      let n = Convert.to_int32 (Value.Double f) in
      n >= Value.int32_min && n <= Value.int32_max)

let prop_bitops_int32_closed =
  QCheck.Test.make ~name:"bitwise results stay int32" ~count:500
    QCheck.(triple (int_range (-2147483648) 2147483647) (int_range (-2147483648) 2147483647) (int_range 0 31))
    (fun (a, b, s) ->
      let ok v = match v with Value.Int n -> n >= Value.int32_min && n <= Value.int32_max | _ -> false in
      ok (Ops.binop Ops.Bit_and (Value.Int a) (Value.Int b))
      && ok (Ops.binop Ops.Bit_xor (Value.Int a) (Value.Int b))
      && ok (Ops.binop Ops.Shl (Value.Int a) (Value.Int s))
      && ok (Ops.binop Ops.Shr (Value.Int a) (Value.Int s)))

let suites =
  [
    ( "runtime.value",
      [
        Alcotest.test_case "norm_num" `Quick test_norm_num;
        Alcotest.test_case "of_int" `Quick test_of_int;
        Alcotest.test_case "typeof" `Quick test_typeof;
        Alcotest.test_case "array growth" `Quick test_array_growth;
        Alcotest.test_case "same_value identity" `Quick test_same_value_identity;
        Alcotest.test_case "same_args" `Quick test_same_args;
        QCheck_alcotest.to_alcotest prop_norm_idempotent;
      ] );
    ( "runtime.convert",
      [
        Alcotest.test_case "to_number" `Quick test_to_number;
        Alcotest.test_case "to_int32 wraps" `Quick test_to_int32_wraps;
        Alcotest.test_case "to_boolean" `Quick test_to_boolean;
        QCheck_alcotest.to_alcotest prop_to_int32_in_range;
      ] );
    ( "runtime.ops",
      [
        Alcotest.test_case "add semantics" `Quick test_add_semantics;
        Alcotest.test_case "numeric ops" `Quick test_numeric_ops;
        Alcotest.test_case "bitwise ops" `Quick test_bitwise_ops;
        Alcotest.test_case "equality" `Quick test_equality;
        Alcotest.test_case "relational" `Quick test_relational;
        Alcotest.test_case "unary ops" `Quick test_unops;
        QCheck_alcotest.to_alcotest prop_add_commutes_numeric;
        QCheck_alcotest.to_alcotest prop_strict_eq_reflexive;
        QCheck_alcotest.to_alcotest prop_bitops_int32_closed;
      ] );
    ( "runtime.builtins",
      [
        Alcotest.test_case "math" `Quick test_builtin_math;
        Alcotest.test_case "string methods" `Quick test_builtin_string_methods;
        Alcotest.test_case "split/join" `Quick test_builtin_split_join;
        Alcotest.test_case "object key order" `Quick test_obj_key_order;
        Alcotest.test_case "__keys native" `Quick test_keys_native;
        Alcotest.test_case "number edge cases" `Quick test_number_edge_cases;
        Alcotest.test_case "sort comparator dispatch" `Quick test_sort_comparator_hof;
        Alcotest.test_case "array methods" `Quick test_builtin_array_methods;
        Alcotest.test_case "builtin props" `Quick test_builtin_prop;
        Alcotest.test_case "purity" `Quick test_builtin_purity;
        Alcotest.test_case "deterministic random" `Quick test_deterministic_random;
      ] );
  ]
