(* Tests for the vs.support library: PRNG determinism, statistics, the
   power-law sampler calibration, and table rendering. *)

let float_eq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let check_float name expected actual =
  Alcotest.(check (float 1e-9)) name expected actual

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Support.Prng.create 42 in
  let b = Support.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Support.Prng.int64 a) (Support.Prng.int64 b)
  done

let test_prng_split_independent () =
  let a = Support.Prng.create 7 in
  let c = Support.Prng.split a in
  let first_from_c = Support.Prng.int64 c in
  let first_from_a = Support.Prng.int64 a in
  Alcotest.(check bool) "split streams differ" true (first_from_c <> first_from_a)

let test_prng_int_bounds () =
  let rng = Support.Prng.create 1 in
  for _ = 1 to 1000 do
    let x = Support.Prng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_prng_float_bounds () =
  let rng = Support.Prng.create 2 in
  for _ = 1 to 1000 do
    let x = Support.Prng.float rng 3.0 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 3.0)
  done

let test_prng_weighted () =
  let rng = Support.Prng.create 3 in
  let counts = Array.make 2 0 in
  for _ = 1 to 10_000 do
    let i = Support.Prng.weighted rng [ (9.0, 0); (1.0, 1) ] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "90/10 split approx" true
    (counts.(0) > 8_500 && counts.(0) < 9_500)

let test_prng_shuffle_permutation () =
  let rng = Support.Prng.create 4 in
  let arr = Array.init 50 Fun.id in
  Support.Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* --- Stats --- *)

let test_arithmetic_mean () =
  check_float "mean" 2.0 (Support.Stats.arithmetic_mean [ 1.0; 2.0; 3.0 ])

let test_geometric_mean_ratio () =
  check_float "geo" 2.0 (Support.Stats.geometric_mean_ratio [ 1.0; 4.0 ])

let test_geometric_mean_percent () =
  (* +100% then -50% cancel out: ratios 2.0 and 0.5, geometric mean 1.0. *)
  check_float "cancel" 0.0 (Support.Stats.geometric_mean_percent [ 100.0; -50.0 ])

let test_geometric_le_arithmetic () =
  let ps = [ 5.0; 10.0; 1.0; 3.0 ] in
  let g = Support.Stats.geometric_mean_percent ps in
  let a = Support.Stats.arithmetic_mean ps in
  Alcotest.(check bool) "AM-GM" true (g <= a +. 1e-9)

let test_median_odd () = check_float "odd" 2.0 (Support.Stats.median [ 3.0; 1.0; 2.0 ])

let test_median_even () =
  check_float "even" 2.5 (Support.Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_percent_change () =
  (* base 110, v 100: the optimized run is 10% faster. *)
  check_float "speedup" 10.0 (Support.Stats.percent_change ~base:110.0 ~v:100.0)

let test_histogram_basic () =
  let h = Support.Stats.Histogram.create () in
  List.iter (Support.Stats.Histogram.add h) [ 1; 1; 1; 2; 5 ];
  Alcotest.(check int) "count 1" 3 (Support.Stats.Histogram.count h 1);
  Alcotest.(check int) "count 2" 1 (Support.Stats.Histogram.count h 2);
  Alcotest.(check int) "count absent" 0 (Support.Stats.Histogram.count h 3);
  Alcotest.(check int) "total" 5 (Support.Stats.Histogram.total h);
  Alcotest.(check int) "max key" 5 (Support.Stats.Histogram.max_key h);
  check_float "fraction" 0.6 (Support.Stats.Histogram.fraction h 1)

let test_histogram_bins_tail () =
  let h = Support.Stats.Histogram.create () in
  List.iter (Support.Stats.Histogram.add h) [ 1; 2; 3; 30; 40 ];
  let bins = Support.Stats.Histogram.bins h ~first:1 ~tail_from:4 in
  Alcotest.(check int) "3 head bins + tail" 4 (List.length bins);
  let _, tail = List.nth bins 3 in
  check_float "tail mass" 0.4 tail

(* --- Powerlaw --- *)

let test_powerlaw_range () =
  let pl = Support.Powerlaw.create ~alpha:2.0 ~max_value:100 in
  let rng = Support.Prng.create 5 in
  for _ = 1 to 1000 do
    let x = Support.Powerlaw.sample pl rng in
    Alcotest.(check bool) "in [1,100]" true (x >= 1 && x <= 100)
  done

let test_powerlaw_head_heavy () =
  let pl = Support.Powerlaw.create ~alpha:2.0 ~max_value:100 in
  let rng = Support.Prng.create 6 in
  let ones = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Support.Powerlaw.sample pl rng = 1 then incr ones
  done;
  let frac = float_of_int !ones /. float_of_int n in
  let expected = Support.Powerlaw.mass_at_one pl in
  Alcotest.(check bool) "empirical close to analytic" true
    (Float.abs (frac -. expected) < 0.02)

let test_powerlaw_calibration () =
  (* The paper's Figure 2 head: 59.91% of functions have one argument set. *)
  let target = 0.5991 in
  let alpha = Support.Powerlaw.calibrate_alpha ~target_mass_at_one:target ~max_value:353 in
  let pl = Support.Powerlaw.create ~alpha ~max_value:353 in
  Alcotest.(check bool) "calibrated mass within 1e-6" true
    (float_eq ~eps:1e-6 (Support.Powerlaw.mass_at_one pl) target)

let test_powerlaw_monotone_mass () =
  let m alpha = Support.Powerlaw.mass_at_one (Support.Powerlaw.create ~alpha ~max_value:50) in
  Alcotest.(check bool) "mass grows with alpha" true (m 1.0 < m 2.0 && m 2.0 < m 3.0)

(* --- Table --- *)

let test_table_alignment () =
  let s =
    Support.Table.render ~header:[ "name"; "value" ]
      ~rows:[ [ "a"; "1" ]; [ "longer"; "22" ] ]
      ()
  in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: _ ->
    Alcotest.(check bool) "header mentions both columns" true
      (String.length header >= String.length "longer  value")
  | [] -> Alcotest.fail "empty render");
  Alcotest.(check bool) "row padded" true
    (List.exists (fun l -> l = "longer     22") lines)

let test_table_pads_short_rows () =
  let s = Support.Table.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "x" ] ] () in
  Alcotest.(check bool) "no exception, includes x" true (String.length s > 0)

(* --- qcheck properties --- *)

let prop_geometric_mean_scale =
  QCheck.Test.make ~name:"geometric mean is multiplicative in a constant factor"
    ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 10) (float_range 0.1 10.0)) (float_range 0.5 2.0))
    (fun (xs, k) ->
      let g1 = Support.Stats.geometric_mean_ratio xs in
      let g2 = Support.Stats.geometric_mean_ratio (List.map (fun x -> x *. k) xs) in
      Float.abs (g2 -. (g1 *. k)) < 1e-6 *. Float.max 1.0 (Float.abs g2))

let prop_histogram_fractions_sum =
  QCheck.Test.make ~name:"histogram head+tail fractions sum to 1" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (int_range 1 40))
    (fun keys ->
      let h = Support.Stats.Histogram.create () in
      List.iter (Support.Stats.Histogram.add h) keys;
      let bins = Support.Stats.Histogram.bins h ~first:1 ~tail_from:30 in
      let sum = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 bins in
      Float.abs (sum -. 1.0) < 1e-9)

let prop_prng_int_in_bounds =
  QCheck.Test.make ~name:"prng ints stay in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Support.Prng.create seed in
      let x = Support.Prng.int rng bound in
      x >= 0 && x < bound)

let suites =
  [
    ( "support.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "split independent" `Quick test_prng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
        Alcotest.test_case "weighted" `Quick test_prng_weighted;
        Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
        QCheck_alcotest.to_alcotest prop_prng_int_in_bounds;
      ] );
    ( "support.stats",
      [
        Alcotest.test_case "arithmetic mean" `Quick test_arithmetic_mean;
        Alcotest.test_case "geometric mean ratio" `Quick test_geometric_mean_ratio;
        Alcotest.test_case "geometric mean percent" `Quick test_geometric_mean_percent;
        Alcotest.test_case "AM-GM inequality" `Quick test_geometric_le_arithmetic;
        Alcotest.test_case "median odd" `Quick test_median_odd;
        Alcotest.test_case "median even" `Quick test_median_even;
        Alcotest.test_case "percent change" `Quick test_percent_change;
        Alcotest.test_case "histogram basic" `Quick test_histogram_basic;
        Alcotest.test_case "histogram tail bin" `Quick test_histogram_bins_tail;
        QCheck_alcotest.to_alcotest prop_geometric_mean_scale;
        QCheck_alcotest.to_alcotest prop_histogram_fractions_sum;
      ] );
    ( "support.powerlaw",
      [
        Alcotest.test_case "sample range" `Quick test_powerlaw_range;
        Alcotest.test_case "head heavy" `Quick test_powerlaw_head_heavy;
        Alcotest.test_case "calibration" `Quick test_powerlaw_calibration;
        Alcotest.test_case "mass monotone in alpha" `Quick test_powerlaw_monotone_mass;
      ] );
    ( "support.table",
      [
        Alcotest.test_case "alignment" `Quick test_table_alignment;
        Alcotest.test_case "short rows padded" `Quick test_table_pads_short_rows;
      ] );
  ]
