(* The benchmark harness: regenerates every table and figure of the paper
   (deterministic model-cycle measurements through the experiment drivers)
   and then takes Bechamel wall-clock measurements of the VM itself — one
   Test.make per table/figure driver plus ablation benches for the design
   choices DESIGN.md calls out.

     dune exec bench/main.exe                  # everything below
     dune exec bench/main.exe -- tables        # only the paper tables
     dune exec bench/main.exe -- attribution   # per-pass compile-time split
     dune exec bench/main.exe -- wall          # only the Bechamel measurements *)

open Bechamel
open Toolkit

(* Domain-safe print silencing: the hook is a [Support.Tls] slot now, so
   this composes with the drivers fanning out over the pool. *)
let quiet f = Runtime.Builtins.with_print_hook ignore f

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures (model cycles)               *)
(* ------------------------------------------------------------------ *)

let print_tables () =
  print_endline "==================================================================";
  print_endline " Figures 1, 2 and 4 (web)";
  print_endline "==================================================================";
  Fig_web.print (Fig_web.run ());
  print_endline "\n==================================================================";
  print_endline " Figure 3 and Figure 4 (benchmark suites)";
  print_endline "==================================================================";
  Fig_suite_calls.print (Fig_suite_calls.run ());
  print_endline "\n==================================================================";
  print_endline " Figure 9 (runtime speedup and compilation overhead)";
  print_endline "==================================================================";
  Fig_speedup.print (Fig_speedup.run ());
  print_endline "\n==================================================================";
  print_endline " Figure 10 (code size) and the web code-size study";
  print_endline "==================================================================";
  Fig_codesize.print (Fig_codesize.run_suites ()) (Fig_codesize.run_sites ());
  print_endline "\n==================================================================";
  print_endline " Section 4: specialization policy and recompilations";
  print_endline "==================================================================";
  Fig_policy.print (Fig_policy.run ());
  print_newline ();
  Fig_recompile.print (Fig_recompile.run ())

(* ------------------------------------------------------------------ *)
(* Part 2: ablations over the cost model (DESIGN.md design choices)    *)
(* ------------------------------------------------------------------ *)

let member_of suite_name member_name =
  let suite = Option.get (Suites.find suite_name) in
  List.find (fun (m : Suite.member) -> m.Suite.m_name = member_name) suite.Suite.members

let cycles cfg (m : Suite.member) =
  quiet (fun () -> (Engine.run_source cfg m.Suite.m_source).Engine.total_cycles)

let cfg_of opt = Engine.default_config ~opt ()

let print_ablations () =
  let pct base v =
    Support.Stats.percent_change ~base:(float_of_int base) ~v:(float_of_int v)
  in
  print_endline "\n==================================================================";
  print_endline
    " Ablations (model cycles; positive % = variant costs more than PS+CP+DCE)";
  print_endline "==================================================================";
  let bench_row name m pairs =
    let base = cycles (cfg_of Pipeline.best) m in
    Printf.printf "%-34s PS+CP+DCE = %d cycles\n" name base;
    List.iter
      (fun (label, opt) ->
        let v = cycles (cfg_of opt) m in
        Printf.printf "  %-32s %10d  (%+.2f%%)\n" label v (pct v base))
      pairs
  in
  (* Store-conservative alias rule vs the precise rule (§4's explanation of
     why the paper's BCE rarely paid off). *)
  bench_row "bce alias rule (imaging-desaturate)"
    (member_of "kraken 1.1" "imaging-desaturate")
    [
      ("conservative BCE", Pipeline.make ~ps:true ~cp:true ~dce:true ~bce:true "a");
      ( "precise-alias BCE",
        Pipeline.make ~ps:true ~cp:true ~dce:true ~bce:true ~precise_alias:true "b" );
      ( "precise + overflow elim (S6)",
        Pipeline.make ~ps:true ~cp:true ~dce:true ~bce:true ~precise_alias:true
          ~overflow_elim:true "c" );
    ];
  (* §3.3's algorithm choice: the paper uses Aho's branch-insensitive
     constant propagation "for compile-time economy"; the Sccp pass
     measures what Wegman-Zadeck conditional propagation would add. *)
  bench_row "constprop algorithm (richards)"
    (member_of "v8 version 6" "richards")
    [
      ("Aho (paper §3.3)", Pipeline.make ~ps:true ~cp:true ~dce:true "h");
      ("Wegman-Zadeck SCCP", Pipeline.make ~ps:true ~sccp:true ~dce:true "i");
    ];
  (* The baseline passes the whole study stands on. *)
  bench_row "baseline passes (bits-in-byte)"
    (member_of "sunspider 1.0" "bitops-bits-in-byte")
    [
      ("without GVN", Pipeline.make ~ps:true ~cp:true ~dce:true ~gvn:false "d");
      ("without LICM", Pipeline.make ~ps:true ~cp:true ~dce:true ~licm:false "e");
      ("with loop inversion", Pipeline.make ~ps:true ~cp:true ~dce:true ~li:true "f");
      ( "with loop unrolling (S6)",
        Pipeline.make ~ps:true ~cp:true ~dce:true ~loop_unroll:true "g" );
    ];
  (* S6's cache-size tradeoff: "we cache only one binary per function...
     more experiments are necessary to confirm this hypothesis". The
     md5 mixers see always-different arguments, so extra cache entries only
     delay the inevitable deoptimization; crypto (two alternating argument
     shapes in its driver) can profit. *)
  print_endline "\nspecialization cache size (S6 future work):";
  List.iter
    (fun (sname, mname) ->
      let m = member_of sname mname in
      Printf.printf "  %-26s" mname;
      List.iter
        (fun k ->
          let cfg = Engine.default_config ~opt:Pipeline.all_on ~cache_size:k () in
          let r =
            quiet (fun () -> Engine.run_source cfg m.Suite.m_source)
          in
          Printf.printf "  k=%d: %9d (deopt %d)" k r.Engine.total_cycles
            r.Engine.deoptimized_funcs)
        [ 1; 2; 4 ];
      print_newline ())
    [ ("sunspider 1.0", "crypto-md5"); ("v8 version 6", "crypto") ];
  (* Selective specialization (extension): on mixed-stability call sites the
     paper's policy deoptimizes and blacklists, a k-entry cache thrashes,
     and selective narrowing keeps the stable arguments burned in. richards
     passes stable task closures next to per-packet state; the web workloads
     are the paper's §2 motivation with exactly this profile. *)
  print_endline "\ndeoptimization policy on mixed-stability arguments:";
  let policies =
    [
      ("one-entry (paper §4)", Engine.default_config ~opt:Pipeline.all_on ());
      ("4-entry cache (§6)", Engine.default_config ~opt:Pipeline.all_on ~cache_size:4 ());
      ( "selective (extension)",
        Engine.default_config ~opt:Pipeline.all_on ~selective:true () );
    ]
  in
  List.iter
    (fun (sname, mname) ->
      let m = member_of sname mname in
      Printf.printf "  %-26s" mname;
      List.iter
        (fun (label, cfg) ->
          let r = quiet (fun () -> Engine.run_source cfg m.Suite.m_source) in
          Printf.printf "  %s: %9d (deopt %d, compiles %d)" label r.Engine.total_cycles
            r.Engine.deoptimized_funcs r.Engine.compilations)
        policies;
      print_newline ())
    [ ("v8 version 6", "richards"); ("sunspider 1.0", "crypto-md5") ]

(* ------------------------------------------------------------------ *)
(* Part 3: compilation-overhead attribution (telemetry)                *)
(* ------------------------------------------------------------------ *)

(* Where do the compile cycles of Figure 9(c,d) actually go? The engine's
   [Compile_end] events carry per-pass size deltas; since the model charges
   {!Cost.compile_per_mir_instr} per instruction a pass visits, the
   instructions entering each pass attribute the pipeline's share of the
   compile time pass by pass. *)
let print_compile_attribution () =
  print_endline "\n==================================================================";
  print_endline " Compilation overhead attribution (telemetry compile events)";
  print_endline "==================================================================";
  List.iter
    (fun (sname, mname) ->
      let m = member_of sname mname in
      let passes : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
      let spec = ref (0, 0) and gen = ref (0, 0) in
      let sink = function
        | Telemetry.Compile_end e ->
          let bucket = if e.specialized then spec else gen in
          let n, cy = !bucket in
          bucket := (n + 1, cy + e.cycles);
          List.iter
            (fun pd ->
              let runs, visited =
                Option.value (Hashtbl.find_opt passes pd.Telemetry.pd_pass) ~default:(0, 0)
              in
              Hashtbl.replace passes pd.Telemetry.pd_pass
                (runs + 1, visited + pd.Telemetry.pd_before))
            e.passes
        | _ -> ()
      in
      let r =
        Telemetry.with_default_sinks [ sink ] (fun () ->
            quiet (fun () ->
                Engine.run_source (Engine.default_config ~opt:Pipeline.best ()) m.Suite.m_source))
      in
      let spec_n, spec_cy = !spec and gen_n, gen_cy = !gen in
      Printf.printf "\n%s: compile=%d cycles (%d specialized: %d; %d generic: %d)\n" mname
        r.Engine.compile_cycles spec_n spec_cy gen_n gen_cy;
      let rows =
        Hashtbl.fold
          (fun pass (runs, visited) acc ->
            let cycles = Cost.compile_per_mir_instr * visited in
            ( cycles,
              [
                pass; string_of_int runs; string_of_int visited; string_of_int cycles;
                Printf.sprintf "%.1f%%"
                  (100. *. float_of_int cycles /. float_of_int (max 1 r.Engine.compile_cycles));
              ] )
            :: acc)
          passes []
        |> List.sort (fun (a, _) (b, _) -> compare b a)
        |> List.map snd
      in
      print_string
        (Support.Table.render
           ~header:[ "pass"; "runs"; "instrs in"; "cycles"; "of compile" ]
           ~rows ()))
    [
      ("sunspider 1.0", "bitops-bits-in-byte"); ("sunspider 1.0", "string-unpack-code");
      ("v8 version 6", "richards");
    ]

(* ------------------------------------------------------------------ *)
(* Part 4: Bechamel wall-clock benches                                 *)
(* ------------------------------------------------------------------ *)

let engine_test name cfg (m : Suite.member) =
  Test.make ~name
    (Staged.stage (fun () ->
         quiet (fun () -> ignore (Engine.run_source cfg m.Suite.m_source))))

let compile_test name ~spec =
  (* Wall-clock cost of one full compilation (build -> passes -> lowering ->
     regalloc) of the paper's running example. *)
  let source =
    "function map(s, b, n, f) { var i = b; while (i < n) { s[i] = f(s[i]); i++; } \
     return s; }"
  in
  let program = Bytecode.Compile.program_of_source source in
  let func = program.Bytecode.Program.funcs.(1) in
  let spec_args =
    if spec then
      Some
        [|
          Runtime.Value.Arr (Runtime.Value.new_arr 8);
          Runtime.Value.Int 0; Runtime.Value.Int 8;
          Runtime.Value.Native_fun "Math.floor";
        |]
    else None
  in
  Test.make ~name
    (Staged.stage (fun () ->
         let f = Builder.build ~program ~func ?spec_args () in
         ignore (Pipeline.apply ~program Pipeline.all_on f);
         ignore (Regalloc.run (Lower.run f))))

(* Guard-heavy microbench for the abstract-interpretation elision pass:
   a hot in-bounds array loop where specialization proves every type,
   array and bounds guard, so the specialized series measures the elided
   loop against the baseline's fully guarded one. Source-based on purpose
   — not a suite member, so the 48-workload sweeps stay as the paper
   defines them. *)
let bounds_hotloop_member =
  Suite.member "bounds_hotloop"
    "function hot(s, n) { var t = 0; for (var i = 0; i < n; i++) t = (t + s[i]) | 0; \
     return t; }\n\
     var a = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];\n\
     var t = 0; var j = 0; while (j < 200) { t = (t + hot(a, 16)) | 0; j = j + 1; }\n\
     print(t);"

(* The engine-level benches, listed once so BENCH_wall.json can pair each
   wall-clock estimate with the deterministic model-cycle cost of the same
   run — the data needed to recalibrate the cost model against reality. *)
let engine_benches =
  [
    ("fig9_sunspider_bitsinbyte_base", cfg_of Pipeline.baseline, member_of "sunspider 1.0" "bitops-bits-in-byte");
    ("fig9_sunspider_bitsinbyte_spec", cfg_of Pipeline.best, member_of "sunspider 1.0" "bitops-bits-in-byte");
    ("fig9_sunspider_unpack_base", cfg_of Pipeline.baseline, member_of "sunspider 1.0" "string-unpack-code");
    ("fig9_sunspider_unpack_spec", cfg_of Pipeline.best, member_of "sunspider 1.0" "string-unpack-code");
    ("fig9_v8_earleyboyer_base", cfg_of Pipeline.baseline, member_of "v8 version 6" "earley-boyer");
    ("fig9_v8_earleyboyer_spec", cfg_of Pipeline.best, member_of "v8 version 6" "earley-boyer");
    (* The polyvariant recovery of the earley-boyer specialization loss:
       same pipeline as the _spec row, tiered policy, two-slot cache. *)
    ( "fig9_v8_earleyboyer_poly",
      Engine.default_config ~opt:Pipeline.best ~policy:Policy.Polyvariant
        ~cache_size:2 (),
      member_of "v8 version 6" "earley-boyer" );
    ("fig9_kraken_desaturate_base", cfg_of Pipeline.baseline, member_of "kraken 1.1" "imaging-desaturate");
    ("fig9_kraken_desaturate_spec", cfg_of Pipeline.best, member_of "kraken 1.1" "imaging-desaturate");
    ("bounds_hotloop_base", cfg_of Pipeline.baseline, bounds_hotloop_member);
    ("bounds_hotloop_spec", cfg_of Pipeline.all_on, bounds_hotloop_member);
    (* Background tiered compilation on the call-heavy V8 member: the same
       pipeline with compiles routed through the queue. The model companion
       drops by exactly the synchronous compile charge (the fig9(c,d) stall
       the queue removes — bg cycles are off-clock by design); the wall
       pair shows what the physical overlap buys on top. *)
    ("bg_richards_sync", cfg_of Pipeline.all_on, member_of "v8 version 6" "richards");
    ( "bg_richards_bg",
      Engine.default_config ~opt:Pipeline.all_on ~bg_compile:true (),
      member_of "v8 version 6" "richards" );
  ]

(* Service-layer soaks: the forced-overload smoke scenario (bounded queue,
   deadlines, poison tenants, chaos plans) once per policy. Wall-clock
   measures the whole service simulation; the deterministic model-cycle
   companion recorded in BENCH_wall.json is the run's makespan — the
   service-level figure check-model pins, so a silent shift in admission,
   deadline or backoff accounting shows up as drift. *)
let serve_benches =
  [
    ( "serve_soak_paper",
      fun () ->
        { (Serve.smoke_config ()) with
          Serve.engine = Engine.default_config ~opt:Pipeline.all_on () } );
    ("serve_soak_poly", fun () -> Serve.smoke_config ());
    (* The paper-policy soak again with background compilation on. The
       overload scenario is where the queue must get out of the way —
       degrade drains and suppresses it — so this row pins that the
       queue-aware engine keeps the same deterministic makespan shape
       under forced overload, not a latency win (the win is measured by
       the cold-tail pair below, where compiles dominate the tail). *)
    ( "serve_soak_bg",
      fun () ->
        { (Serve.smoke_config ()) with
          Serve.engine = Engine.default_config ~opt:Pipeline.all_on ~bg_compile:true () }
    );
  ]

let serve_makespan cfg = (Serve.run cfg).Serve.sm_makespan

(* Cold-tail SLO pair: a many-tenant scenario (24 tenants over 2
   isolates, no deadlines, no chaos, no poison) where nearly every
   tail>=p95 request is a cold tenant paying its first compiles — the
   PR-8 attribution showed exactly this profile dominating the p99. The
   recorded model companion for these two rows is the served p99 itself,
   so BENCH_wall.json pins the service-level claim: with compiles routed
   off the request path, the cold tail contracts. *)
let serve_cold_config ~bg () =
  Serve.default_config ~isolates:2 ~requests:160 ~tenants:24 ~mean_gap:20000
    ~seed:20130223
    ~engine:(Engine.default_config ~opt:Pipeline.all_on ~bg_compile:bg ())
    ()

let serve_cold_benches =
  [
    ("serve_cold_paper", fun () -> serve_cold_config ~bg:false ());
    ("serve_cold_bg", fun () -> serve_cold_config ~bg:true ());
  ]

let serve_p99 cfg = (Serve.run cfg).Serve.sm_p99

(* Dispatch ablation: the interpreter alone on a hot arithmetic loop — the
   series the dispatch overhaul (exception-based loop exit, unsafe in-bounds
   code fetch, allocation-free operand handling) is measured by. *)
let interp_hotloop_program =
  lazy
    (Bytecode.Compile.program_of_source
       "function work(n) { var s = 0; var i = 0; while (i < n) { s = s + i % 7 + (i * 3 \
        - s % 13); i = i + 1; } return s; }\n\
        var t = 0; var j = 0; while (j < 20) { t = t + work(2500); j = j + 1; } print(t);")

let wall_tests () =
  Test.make_grouped ~name:"vs" ~fmt:"%s.%s"
    ((* One wall-clock series per paper artifact family. *)
     List.map (fun (name, cfg, m) -> engine_test name cfg m) engine_benches
    @ List.map
        (fun (name, cfg) ->
          Test.make ~name (Staged.stage (fun () -> ignore (Serve.run (cfg ())))))
        (serve_benches @ serve_cold_benches)
    @ [
        Test.make ~name:"interp_dispatch_hotloop"
          (Staged.stage (fun () ->
               quiet (fun () -> ignore (Interp.run_program (Lazy.force interp_hotloop_program)))));
        (* Figure 9(c,d): compilation time itself. *)
        compile_test "fig9cd_compile_generic" ~spec:false;
        compile_test "fig9cd_compile_specialized" ~spec:true;
        (* Figures 1/2/4: the workload generator. *)
        Test.make ~name:"fig1_2_4_web_session"
          (Staged.stage (fun () -> ignore (Web.session ~seed:1 ~nfunctions:4000)));
        (* Figure 10: code-size measurement of one site program. *)
        Test.make ~name:"fig10_site_program"
          (Staged.stage (fun () ->
               quiet (fun () ->
                   ignore
                     (Engine.run_source
                        (Engine.default_config ~opt:Pipeline.all_on ())
                        (Web.synthetic_site ~seed:1 Web.google)))));
      ])

(* Machine-readable companion to the wall table: one object per bench with
   the OLS ns/run estimate, its r-square, and (for the engine benches) the
   model cycles the identical run charges. *)
let write_wall_json rows =
  let model_cycles =
    List.map (fun (name, cfg, m) -> ("vs." ^ name, cycles cfg m)) engine_benches
    @ List.map (fun (name, cfg) -> ("vs." ^ name, serve_makespan (cfg ()))) serve_benches
    @ List.map (fun (name, cfg) -> ("vs." ^ name, serve_p99 (cfg ()))) serve_cold_benches
  in
  let oc = open_out "BENCH_wall.json" in
  output_string oc "{\n  \"schema\": \"vs-bench-wall/1\",\n  \"benches\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      let opt_f = function Some f -> Printf.sprintf "%.2f" f | None -> "null" in
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %s, \"r_square\": %s, \"model_cycles\": %s }%s\n"
        name (opt_f ns)
        (match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "null")
        (match List.assoc_opt name model_cycles with
        | Some c -> string_of_int c
        | None -> "null")
        (if i < List.length rows - 1 then "," else ""))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline "\nwrote BENCH_wall.json"

let run_wall () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  (* The long-running soaks (a whole service simulation or a 70ms+ suite
     member per run) need a much bigger sample than the microbenches: at
     0.5s they fit so few points that OLS r-square fell to ~0.75 on the
     recorded rows. Eight times the quota and a raised sample cap give
     every series enough points to ride out scheduler noise and keep
     every recorded row's fit above 0.95. *)
  let cfg = Benchmark.cfg ~limit:400 ~quota:(Time.second 4.0) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  (* One transient noise burst (another process waking mid-series) can sink
     a single series' fit while every neighbour stays clean. Rather than
     discard a whole recording over one bad row, re-measure any series
     whose fit lands under the floor and keep the best attempt. *)
  let r2_floor = 0.95 and max_attempts = 5 in
  let measure elt =
    let rec go best best_r2 attempt =
      let raw = Benchmark.run cfg instances elt in
      let res = Analyze.one ols Instance.monotonic_clock raw in
      let r2 = Option.value ~default:0.0 (Analyze.OLS.r_square res) in
      let best, best_r2 = if r2 > best_r2 then (Some res, r2) else (best, best_r2) in
      if best_r2 >= r2_floor || attempt >= max_attempts then Option.get best
      else go best best_r2 (attempt + 1)
    in
    go None (-1.0) 1
  in
  print_endline "\n==================================================================";
  print_endline " Bechamel wall-clock (ns per run, OLS on monotonic clock)";
  print_endline "==================================================================";
  let rows = ref [] in
  List.iter
    (fun elt ->
      let ols_result = measure elt in
      let ns =
        match Analyze.OLS.estimates ols_result with Some (x :: _) -> Some x | _ -> None
      in
      let r2 = Analyze.OLS.r_square ols_result in
      rows := (Test.Elt.name elt, ns, r2) :: !rows)
    (Test.elements (wall_tests ()));
  let rows = List.sort compare !rows in
  print_string
    (Support.Table.render ~header:[ "bench"; "ns/run"; "r2" ]
       ~rows:
         (List.map
            (fun (name, ns, r2) ->
              [
                name;
                (match ns with Some x -> Printf.sprintf "%.0f" x | None -> "n/a");
                (match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-");
              ])
            rows)
       ());
  write_wall_json rows;
  (* The service-level claim behind the bg rows, stated in the run log:
     with compiles off the request path, cold tenants stop paying the
     first-compile stall inline and the tail contracts. *)
  let p99 name = serve_p99 ((List.assoc name serve_cold_benches) ()) in
  let sync = p99 "serve_cold_paper" and bg = p99 "serve_cold_bg" in
  Printf.printf "serve cold-tail p99 (model cycles): sync=%d bg=%d (%+.2f%%)\n" sync bg
    (Support.Stats.percent_change ~base:(float_of_int sync) ~v:(float_of_int bg))

(* ------------------------------------------------------------------ *)
(* check-model: guard the committed model cycles                       *)
(* ------------------------------------------------------------------ *)

(* The model cycles in BENCH_wall.json are part of the repo's record: they
   pair each wall-clock estimate with the deterministic cost of the same
   run. Any change to the VM that shifts them must regenerate the file
   deliberately (run `bench wall`), never silently — this mode recomputes
   the engine benches' cycles and fails on drift, and check.sh runs it. *)

(* Minimal extraction from our own writer's output: one bench object per
   line, ["name"] a JSON string, ["model_cycles"] an integer or null,
   ["ns_per_run"] a float or null. *)
let parse_wall_json path =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  (match lines with
  | _ :: schema :: _
    when Support.Strings.contains_substring schema "vs-bench-wall/1" ->
    ()
  | _ ->
    Printf.eprintf "check-model: %s is not a vs-bench-wall/1 file\n" path;
    exit 1);
  List.filter_map
    (fun line ->
      let find_field key =
        let marker = Printf.sprintf "\"%s\": " key in
        Option.map
          (fun i -> i + String.length marker)
          (Support.Strings.find_substring line marker)
      in
      match find_field "name" with
      | None -> None
      | Some start -> (
        match String.index_from_opt line start '"' with
        | None -> None
        | Some _ ->
          let stop = String.index_from line (start + 1) '"' in
          let name =
            Telemetry.json_unescape (String.sub line (start + 1) (stop - start - 1))
          in
          let number_at i charset of_string =
            let j = ref i in
            while !j < String.length line && charset line.[!j] do
              incr j
            done;
            of_string (String.sub line i (!j - i))
          in
          let cycles =
            match find_field "model_cycles" with
            | None -> None
            | Some i ->
              number_at i
                (function '0' .. '9' | '-' -> true | _ -> false)
                int_of_string_opt
          in
          let ns =
            match find_field "ns_per_run" with
            | None -> None
            | Some i ->
              number_at i
                (function '0' .. '9' | '-' | '.' -> true | _ -> false)
                float_of_string_opt
          in
          Some (name, cycles, ns)))
    lines

(* Wall-vs-model divergence advisory: within a family of variants of the
   same workload (names differing only in the last _suffix — base/spec/
   poly, sync/bg, paper/poly), the model may rank the configurations one
   way while the committed wall-clock estimates rank them another. The
   canonical case is fig9_v8_earleyboyer_poly: fewest model cycles of its
   family yet the worst ns/run, because the polyvariant version-cache
   probe is host-side work the cost model charges nothing for (see
   bench/README.md). Rank disagreement marks a cost-model coverage gap,
   not a regression, so this warns and never fails. *)
let warn_rank_disagreements committed =
  let family name =
    match String.rindex_opt name '_' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, cycles, ns) ->
      match (cycles, ns) with
      | Some c, Some n ->
        let fam = family name in
        Hashtbl.replace tbl fam
          ((name, c, n) :: Option.value (Hashtbl.find_opt tbl fam) ~default:[])
      | _ -> ())
    committed;
  Hashtbl.fold (fun fam members acc -> (fam, members) :: acc) tbl []
  |> List.sort compare
  |> List.iter (fun (fam, members) ->
         if List.length members >= 2 then begin
           let names order =
             List.map (fun (n, _, _) -> n) (List.sort order members)
           in
           let by_model = names (fun (_, c1, _) (_, c2, _) -> compare c1 c2) in
           let by_wall = names (fun (_, _, n1) (_, _, n2) -> compare n1 n2) in
           if by_model <> by_wall then begin
             Printf.printf
               "check-model: warning: %s_*: model and wall-clock rank orders disagree \
                (unmodeled host-side cost; see bench/README.md)\n"
               fam;
             Printf.printf "  by model cycles: %s\n" (String.concat " < " by_model);
             Printf.printf "  by ns/run:       %s\n" (String.concat " < " by_wall)
           end
         end)

let check_model () =
  let path = "BENCH_wall.json" in
  if not (Sys.file_exists path) then begin
    Printf.eprintf "check-model: %s not found (run `bench wall` and commit it)\n" path;
    exit 1
  end;
  let committed = parse_wall_json path in
  warn_rank_disagreements committed;
  let current_rows =
    List.map (fun (name, cfg, m) -> ("vs." ^ name, cycles cfg m)) engine_benches
    @ List.map (fun (name, cfg) -> ("vs." ^ name, serve_makespan (cfg ()))) serve_benches
    @ List.map (fun (name, cfg) -> ("vs." ^ name, serve_p99 (cfg ()))) serve_cold_benches
  in
  let drifted =
    List.filter_map
      (fun (name, current) ->
        match
          List.find_map
            (fun (n, cycles, _) -> if n = name then Some cycles else None)
            committed
        with
        | Some (Some c) when c = current -> None
        | Some (Some c) -> Some (name, string_of_int c, current)
        | Some None | None -> Some (name, "absent", current))
      current_rows
  in
  match drifted with
  | [] ->
    Printf.printf "check-model: %d benches match %s\n" (List.length current_rows) path
  | _ ->
    Printf.eprintf "check-model: model cycles drifted from %s:\n" path;
    List.iter
      (fun (name, committed, current) ->
        Printf.eprintf "  %-36s committed=%s current=%d\n" name committed current)
      drifted;
    Printf.eprintf
      "if the change is intentional, regenerate with `dune exec bench/main.exe -- wall`\n";
    exit 1

let print_pool_stats () =
  (* Where the fan-out went: tasks per participant, steals (tasks run by a
     domain other than their submitter) and time spent inside joins. Only
     present when a pool was created (the tables fan out; [wall] alone
     never touches it). *)
  match Pool.peek_default () with
  | None -> ()
  | Some pool ->
    let s = Pool.stats pool in
    Printf.printf
      "\npool utilization: jobs=%d steals=%d joins=%d join_wait=%.3fs tasks/participant=[%s]\n"
      s.Pool.st_jobs s.Pool.st_steals s.Pool.st_joins s.Pool.st_join_wait
      (String.concat ";" (Array.to_list (Array.map string_of_int s.Pool.st_tasks)))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let want x = args = [] || List.mem x args in
  if List.mem "check-model" args then begin
    (* Standalone gate: just the drift check, nothing else. *)
    check_model ();
    exit 0
  end;
  if want "tables" then print_tables ();
  if want "ablations" then print_ablations ();
  if want "attribution" then print_compile_attribution ();
  if want "wall" then run_wall ();
  print_pool_stats ()
