(* vs-bg-check: the @bg gate.

   Three modes over a fixed workload set (two V8 members + a synthetic
   web request + an operand-drift schedule):

   - default: one summary line per (workload, policy) cell with the
     engine's model-cycle split and the bg counter footprint. The alias
     diffs --jobs 4 against --jobs 1: the deterministic completion model
     must make the whole summary byte-identical however the physical
     compiles are scheduled.
   - --identity: every cell runs bg-off and bg-on; the program output
     must agree, the bg-on run must never charge a synchronous compile
     cycle, and the bg-off run must carry zero bg footprint (the flag off
     is the engine that predates the queue).
   - --overflow-smoke: a many-hot-functions program on a depth-1 queue;
     the overflow path must fire and the output must still agree with
     the synchronous engine.

   Exits 1 on the first violation. *)

let jobs = ref 1
let mode = ref `Summary

let () =
  Arg.parse
    [
      ("--identity", Arg.Unit (fun () -> mode := `Identity), " bg-off vs bg-on agreement");
      ( "--overflow-smoke",
        Arg.Unit (fun () -> mode := `Overflow),
        " depth-1 queue overflow path" );
      ("--jobs", Arg.Set_int jobs, "N pool size (default 1)");
    ]
    (fun a ->
      Printf.eprintf "unexpected argument %S\n" a;
      exit 2)
    "vs-bg-check [--identity|--overflow-smoke] [--jobs N]"

let member suite name =
  let s = List.find (fun (s : Suite.t) -> s.Suite.s_name = suite) Suites.all in
  let m = List.find (fun (m : Suite.member) -> m.Suite.m_name = name) s.Suite.members in
  m.Suite.m_source

let drift_src =
  "function f(x) { return (x * 3 + 1) | 0; }\n\
   var t = 0;\n\
   for (var i = 0; i < 40; i++) t = (t + f(5)) | 0;\n\
   for (var i = 0; i < 60; i++) t = (t + f(i)) | 0;\n\
   print(t);"

let workloads () =
  [
    ("richards", member "V8 version 6" "richards");
    ("deltablue", member "V8 version 6" "deltablue");
    ("web-request", Web.request_source ~seed:7);
    ("drift", drift_src);
  ]

let policies = [ ("paper", Policy.Paper); ("polyvariant", Policy.Polyvariant) ]

let cfg ~bg ~policy =
  Engine.default_config ~opt:Pipeline.all_on ~policy ~cache_size:4 ~bg_compile:bg
    ~bg_queue_depth:8 ()

let run_engine cfg src =
  Runtime.Builtins.with_print_hook ignore (fun () ->
      let engine = Engine.make cfg (Bytecode.Compile.program_of_source src) in
      let report = Engine.run engine in
      (engine, report))

let run_capture cfg src =
  let buf = Buffer.create 256 in
  Runtime.Builtins.with_print_hook
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    (fun () ->
      let engine = Engine.make cfg (Bytecode.Compile.program_of_source src) in
      let report = Engine.run engine in
      (engine, report, Buffer.contents buf))

let total engine name =
  Telemetry.Counters.total (Telemetry.counters (Engine.telemetry engine)) name

let bg_keys =
  Telemetry.Key.
    [ bg_queued; bg_installed; bg_cancelled; bg_superseded; bg_overflow;
      bg_osr_entries; bg_osr_stale ]

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("bg-check: " ^ s); exit 1) fmt

let summary () =
  List.iter
    (fun (wname, src) ->
      List.iter
        (fun (pname, policy) ->
          let engine, r = run_engine (cfg ~bg:true ~policy) src in
          Printf.printf "%-12s %-11s total=%d interp=%d native=%d compile=%d bg=%d %s\n"
            wname pname r.Engine.total_cycles r.Engine.interp_cycles r.Engine.native_cycles
            r.Engine.compile_cycles r.Engine.bg_compile_cycles
            (String.concat " "
               (List.map (fun k -> Printf.sprintf "%s=%d" k (total engine k)) bg_keys)))
        policies)
    (workloads ())

let identity () =
  List.iter
    (fun (wname, src) ->
      List.iter
        (fun (pname, policy) ->
          let off_engine, off_r, off_out = run_capture (cfg ~bg:false ~policy) src in
          let on_engine, on_r, on_out = run_capture (cfg ~bg:true ~policy) src in
          if off_out <> on_out then
            fail "%s/%s: bg-on output diverges from bg-off" wname pname;
          if on_r.Engine.compile_cycles <> 0 then
            fail "%s/%s: bg-on charged %d synchronous compile cycles" wname pname
              on_r.Engine.compile_cycles;
          if off_r.Engine.bg_compile_cycles <> 0 then
            fail "%s/%s: bg-off charged off-clock cycles" wname pname;
          List.iter
            (fun k ->
              if total off_engine k <> 0 then fail "%s/%s: bg-off bumped %s" wname pname k)
            bg_keys;
          if total on_engine Telemetry.Key.bg_queued = 0 then
            fail "%s/%s: bg-on never used the queue" wname pname;
          ignore off_engine)
        policies)
    (workloads ());
  print_endline "bg-check identity: bg-off is clean, bg-on never stalls, outputs agree"

let overflow () =
  let src =
    "function a(x) { return (x + 1) | 0; }\n\
     function b(x) { return (x + 2) | 0; }\n\
     function c(x) { return (x + 3) | 0; }\n\
     function d(x) { return (x + 4) | 0; }\n\
     var t = 0;\n\
     for (var i = 0; i < 50; i++) t = (t + a(1) + b(2) + c(3) + d(4)) | 0;\n\
     print(t);"
  in
  let shallow =
    Engine.default_config ~opt:Pipeline.all_on ~bg_compile:true ~bg_queue_depth:1 ()
  in
  let engine, r, out = run_capture shallow src in
  let _, _, sync_out = run_capture (Engine.default_config ~opt:Pipeline.all_on ()) src in
  if out <> sync_out then fail "overflow: output diverges from the synchronous engine";
  if total engine Telemetry.Key.bg_overflow = 0 then
    fail "overflow: a depth-1 queue never overflowed";
  if r.Engine.compile_cycles <> 0 then fail "overflow: synchronous compile cycles charged";
  Printf.printf "bg-check overflow: %d requests dropped at depth 1, output intact\n"
    (total engine Telemetry.Key.bg_overflow)

let () =
  Pool.set_default_jobs !jobs;
  match !mode with
  | `Summary -> summary ()
  | `Identity -> identity ()
  | `Overflow -> overflow ()
