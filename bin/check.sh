#!/bin/sh
# The full local gate, in CI order: build everything, run the static-analysis
# lint sweep, run the test suite, then smoke the benchmark harness (the paper
# tables exercise every experiment driver end to end).
#
#   bin/check.sh
#
# Exits non-zero on the first failing stage.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune build @lint =="
dune build @lint

echo "== dune runtest =="
dune runtest

echo "== dune build @absint (translation validation + missed-guard golden) =="
dune build @absint

echo "== dune build @policy (specialization-policy census golden) =="
dune build @policy

echo "== dune build @chaos (fault-injection fuzz smoke) =="
dune build @chaos

echo "== dune build @parallel (pool determinism: --jobs 4 == --jobs 1) =="
dune build @parallel

echo "== dune build @profile (attribution balance + trace-event export) =="
dune build @profile

echo "== dune build @serve (overload smoke: invariants + --jobs determinism) =="
dune build @serve

echo "== dune build @bg (background compilation: --jobs identity + off-identity + overflow) =="
dune build @bg

echo "== dune build @obs (observability: off/on byte-identity + artifact determinism + flow balance) =="
dune build @obs

echo "== bench check-model (model cycles vs committed BENCH_wall.json) =="
dune exec bench/main.exe -- check-model

echo "== bench smoke (paper tables) =="
dune exec bench/main.exe -- tables > /dev/null

echo "check: all stages passed"
