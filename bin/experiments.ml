(* vs-experiments: regenerate the paper's figures and tables.

     vs-experiments fig1 fig2          # web histograms
     vs-experiments fig9               # the optimization grid
     vs-experiments all                # everything, in paper order
     vs-experiments all --jobs 4       # same bytes, fanned out over 4 domains

   --jobs N (or VS_JOBS=N) sizes the task pool the drivers fan their
   (workload, configuration) cells over; output is byte-identical at any
   value, --jobs 1 runs strictly serially. *)

let known =
  [
    "fig1"; "fig2"; "fig3"; "fig4"; "fig9"; "fig10"; "attrib"; "policy"; "recomp";
    "versions"; "serve";
  ]

let run_one name =
  match name with
  | "fig1" | "fig2" | "fig4" ->
    (* The three web artifacts come from one session simulation; print the
       combined table once per invocation group. *)
    Fig_web.print (Fig_web.run ())
  | "fig3" -> Fig_suite_calls.print (Fig_suite_calls.run ())
  | "fig9" -> Fig_speedup.print (Fig_speedup.run ())
  | "fig10" -> Fig_codesize.print (Fig_codesize.run_suites ()) (Fig_codesize.run_sites ())
  | "attrib" -> Fig_attribution.print (Fig_attribution.run ())
  | "policy" -> Fig_policy.print (Fig_policy.run ())
  | "recomp" -> Fig_recompile.print (Fig_recompile.run ())
  (* Not in the default [all] list: the default output predates the policy
     layer and stays byte-identical to it. *)
  | "versions" -> Fig_versions.print (Fig_versions.run ())
  | "serve" -> Fig_serve.print (Fig_serve.run ())
  | other ->
    Printf.eprintf "unknown experiment %S (known: %s)\n" other (String.concat " " known);
    exit 2

let dedup names =
  (* fig1/fig2/fig4 share one driver; avoid printing it three times. *)
  let seen_web = ref false in
  List.filter
    (fun n ->
      match n with
      | "fig1" | "fig2" | "fig4" ->
        if !seen_web then false
        else begin
          seen_web := true;
          true
        end
      | _ -> true)
    names

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec strip_jobs acc = function
    | [] -> List.rev acc
    | ("--jobs" | "-j") :: n :: rest -> (
      match int_of_string_opt n with
      | Some jobs when jobs >= 1 ->
        Pool.set_default_jobs jobs;
        strip_jobs acc rest
      | _ ->
        Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
        exit 2)
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" -> (
      match int_of_string_opt (String.sub arg 7 (String.length arg - 7)) with
      | Some jobs when jobs >= 1 ->
        Pool.set_default_jobs jobs;
        strip_jobs acc rest
      | _ ->
        Printf.eprintf "bad flag %S\n" arg;
        exit 2)
    | arg :: rest -> strip_jobs (arg :: acc) rest
  in
  let args = strip_jobs [] args in
  let names =
    match args with
    | [] | [ "all" ] -> [ "fig1"; "fig3"; "fig9"; "fig10"; "attrib"; "policy"; "recomp" ]
    | names -> names
  in
  List.iteri
    (fun i name ->
      if i > 0 then print_newline ();
      run_one name)
    (dedup names)
