(* Differential fuzzer: generate MiniJS programs and check that every JIT
   configuration prints exactly what the interpreter prints. Every JIT run
   executes with per-pass pipeline verification on, so an IR corruption is
   reported as a verifier diagnostic even when the miscompiled code happens
   to print the right answer.

     dune exec bin/fuzz.exe -- --count 500
     dune exec bin/fuzz.exe -- --gen objects --start 1000 --count 200
     dune exec bin/fuzz.exe -- --seed 1992 --show   # replay one case
     dune exec bin/fuzz.exe -- --chaos --count 60   # + injected faults

   With --chaos each seed additionally samples a deterministic fault plan
   (Faults.sample seed) injected into every JIT run: compile aborts,
   rejected binaries, forced guard bailouts, cache exhaustion. The
   invariant stays the same — the interpreter's output, from every
   configuration, under every fault schedule.

   Exit status 1 when any failure was found, so the fuzzer can gate CI. *)

let generator_of = function
  | "program" -> Fuzz_gen.program
  | "loops" -> Fuzz_gen.loop_program
  | "objects" -> Fuzz_gen.object_program
  | "deopt" -> Fuzz_gen.deopt_program
  | "any" -> Fuzz_gen.any_program
  | g -> invalid_arg ("unknown generator: " ^ g)

(* Distinguish the two failure kinds in counts and output: an output
   mismatch is a wrong answer, a verifier diagnostic is a broken IR. *)
type outcome = Pass | Mismatched | Diagnosed

let run_one gen seed ~chaos ~show =
  let st = Random.State.make [| seed |] in
  let src = gen st in
  if show then begin
    Printf.printf "--- seed %d ---\n%s\n" seed src;
    if chaos then
      Printf.printf "chaos plan: %s\n" (Faults.describe (Faults.sample seed))
  end;
  match if chaos then Fuzz_diff.check_chaos ~seed src else Fuzz_diff.check src with
  | None -> Pass
  | Some (Fuzz_diff.Mismatch m) ->
    Printf.printf "=== MISMATCH seed=%d config=%s ===\n" seed m.Fuzz_diff.mm_config;
    Printf.printf "interp : %s\njit    : %s\nprogram:\n%s\n"
      (String.trim m.Fuzz_diff.mm_expected)
      (String.trim m.Fuzz_diff.mm_got)
      src;
    Mismatched
  | Some (Fuzz_diff.Verifier_diag { vd_config; vd_diag }) ->
    Printf.printf "=== VERIFIER DIAGNOSTIC seed=%d config=%s ===\n" seed vd_config;
    Printf.printf "%s\nprogram:\n%s\n" (Diag.to_string vd_diag) src;
    Diagnosed

let main gen_name start count one_seed chaos show =
  let gen = generator_of gen_name in
  match one_seed with
  | Some seed -> if run_one gen seed ~chaos ~show = Pass then (print_endline "ok"; 0) else 1
  | None ->
    let mismatches = ref 0 and diagnostics = ref 0 in
    for seed = start to start + count - 1 do
      match run_one gen seed ~chaos ~show with
      | Pass -> ()
      | Mismatched -> incr mismatches
      | Diagnosed -> incr diagnostics
    done;
    Printf.printf "%d cases (%s%s, seeds %d..%d), %d mismatches, %d verifier diagnostics\n"
      count gen_name
      (if chaos then ", chaos" else "")
      start (start + count - 1) !mismatches !diagnostics;
    if !mismatches = 0 && !diagnostics = 0 then 0 else 1

open Cmdliner

let gen_arg =
  let doc = "Generator: program, loops, objects, deopt, or any." in
  Arg.(value & opt string "any" & info [ "gen" ] ~docv:"KIND" ~doc)

let start_arg =
  let doc = "First seed." in
  Arg.(value & opt int 0 & info [ "start" ] ~docv:"N" ~doc)

let count_arg =
  let doc = "Number of seeds to run." in
  Arg.(value & opt int 200 & info [ "count"; "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Replay exactly this seed (ignores --start/--count)." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc)

let chaos_arg =
  let doc =
    "Inject the deterministic fault plan sampled from each case's seed into every JIT \
     run (compile aborts, rejected binaries, forced guard bailouts, cache exhaustion); \
     the interpreter's output is still required from all of them."
  in
  Arg.(value & flag & info [ "chaos" ] ~doc)

let show_arg =
  let doc = "Print each generated program." in
  Arg.(value & flag & info [ "show" ] ~doc)

let cmd =
  let doc = "differential fuzzing of the MiniJS JIT against the interpreter" in
  Cmd.v
    (Cmd.info "vs-fuzz" ~doc)
    Term.(const main $ gen_arg $ start_arg $ count_arg $ seed_arg $ chaos_arg $ show_arg)

let () = exit (Cmd.eval' cmd)
