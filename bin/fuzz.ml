(* Differential fuzzer: generate MiniJS programs and check that every JIT
   configuration prints exactly what the interpreter prints. Every JIT run
   executes with per-pass pipeline verification on, so an IR corruption is
   reported as a verifier diagnostic even when the miscompiled code happens
   to print the right answer.

     dune exec bin/fuzz.exe -- --count 500
     dune exec bin/fuzz.exe -- --gen objects --start 1000 --count 200
     dune exec bin/fuzz.exe -- --seed 1992 --show   # replay one case
     dune exec bin/fuzz.exe -- --chaos --count 60   # + injected faults
     dune exec bin/fuzz.exe -- --count 500 --jobs 4 # same bytes, 4 domains

   With --chaos each seed additionally samples a deterministic fault plan
   (Faults.sample seed) injected into every JIT run: compile aborts,
   rejected binaries, forced guard bailouts, cache exhaustion. The
   invariant stays the same — the interpreter's output, from every
   configuration, under every fault schedule.

   Exit status 1 when any failure was found, so the fuzzer can gate CI. *)

let generator_of = function
  | "program" -> Fuzz_gen.program
  | "loops" -> Fuzz_gen.loop_program
  | "objects" -> Fuzz_gen.object_program
  | "deopt" -> Fuzz_gen.deopt_program
  | "any" -> Fuzz_gen.any_program
  | g -> invalid_arg ("unknown generator: " ^ g)

(* Distinguish the two failure kinds in counts and output: an output
   mismatch is a wrong answer, a verifier diagnostic is a broken IR. *)
type outcome = Pass | Mismatched | Diagnosed

(* A seed's run is a pure task: it renders everything it would print into a
   string, so seeds can fan out over the domain pool and the main domain
   replays the outputs in seed order — byte-identical to the serial run. *)
let run_one gen seed ~chaos ~show =
  let buf = Buffer.create 64 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let st = Random.State.make [| seed |] in
  let src = gen st in
  if show then begin
    pr "--- seed %d ---\n%s\n" seed src;
    if chaos then pr "chaos plan: %s\n" (Faults.describe (Faults.sample seed))
  end;
  let outcome =
    match if chaos then Fuzz_diff.check_chaos ~seed src else Fuzz_diff.check src with
    | None -> Pass
    | Some (Fuzz_diff.Mismatch m) ->
      pr "=== MISMATCH seed=%d config=%s ===\n" seed m.Fuzz_diff.mm_config;
      pr "interp : %s\njit    : %s\nprogram:\n%s\n"
        (String.trim m.Fuzz_diff.mm_expected)
        (String.trim m.Fuzz_diff.mm_got)
        src;
      Mismatched
    | Some (Fuzz_diff.Verifier_diag { vd_config; vd_diag }) ->
      pr "=== VERIFIER DIAGNOSTIC seed=%d config=%s ===\n" seed vd_config;
      pr "%s\nprogram:\n%s\n" (Diag.to_string vd_diag) src;
      Diagnosed
  in
  (outcome, Buffer.contents buf)

let main gen_name start count one_seed chaos show jobs =
  (match jobs with Some n -> Pool.set_default_jobs n | None -> ());
  let gen = generator_of gen_name in
  match one_seed with
  | Some seed ->
    let outcome, out = run_one gen seed ~chaos ~show in
    print_string out;
    if outcome = Pass then (print_endline "ok"; 0) else 1
  | None ->
    let seeds = List.init count (fun i -> start + i) in
    let results =
      Pool.map (Pool.default ()) (fun seed -> run_one gen seed ~chaos ~show) seeds
    in
    let mismatches = ref 0 and diagnostics = ref 0 in
    List.iter
      (fun (outcome, out) ->
        print_string out;
        match outcome with
        | Pass -> ()
        | Mismatched -> incr mismatches
        | Diagnosed -> incr diagnostics)
      results;
    Printf.printf "%d cases (%s%s, seeds %d..%d), %d mismatches, %d verifier diagnostics\n"
      count gen_name
      (if chaos then ", chaos" else "")
      start (start + count - 1) !mismatches !diagnostics;
    if !mismatches = 0 && !diagnostics = 0 then 0 else 1

open Cmdliner

let gen_arg =
  let doc = "Generator: program, loops, objects, deopt, or any." in
  Arg.(value & opt string "any" & info [ "gen" ] ~docv:"KIND" ~doc)

let start_arg =
  let doc = "First seed." in
  Arg.(value & opt int 0 & info [ "start" ] ~docv:"N" ~doc)

let count_arg =
  let doc = "Number of seeds to run." in
  Arg.(value & opt int 200 & info [ "count"; "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Replay exactly this seed (ignores --start/--count)." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc)

let chaos_arg =
  let doc =
    "Inject the deterministic fault plan sampled from each case's seed into every JIT \
     run (compile aborts, rejected binaries, forced guard bailouts, cache exhaustion); \
     the interpreter's output is still required from all of them."
  in
  Arg.(value & flag & info [ "chaos" ] ~doc)

let show_arg =
  let doc = "Print each generated program." in
  Arg.(value & flag & info [ "show" ] ~doc)

let jobs_arg =
  let doc =
    "Domains the seeds fan out over (default: \\$(b,VS_JOBS) or the machine's core \
     count, capped at 8); 1 runs serially. Output is byte-identical at any value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cmd =
  let doc = "differential fuzzing of the MiniJS JIT against the interpreter" in
  Cmd.v
    (Cmd.info "vs-fuzz" ~doc)
    Term.(
      const main $ gen_arg $ start_arg $ count_arg $ seed_arg $ chaos_arg $ show_arg
      $ jobs_arg)

let () = exit (Cmd.eval' cmd)
