(* irlint: run the full static-analysis suite over every workload under
   every Figure-9 configuration (plus the selective / k-entry-cache
   extensions, which exercise the specialization mask paths).

   For each suite member:
     1. compile to bytecode and run the bytecode verifier;
     2. run the program under the engine with per-pass pipeline checks on,
        so every compilation is re-verified after every pass, audited by
        the specialization-soundness checker, and code-verified after
        register allocation.

   Errors are printed individually; warnings are aggregated by kind (pass
   `--machine` for one tab-separated line per finding instead). Exit 1 on
   any error — or any warning under `--strict` — so the @lint alias can
   gate CI.

     dune exec bin/irlint.exe --
     dune exec bin/irlint.exe -- --suite kraken --config PS+CP+DCE
     dune exec bin/irlint.exe -- --machine *)

let engine_configs =
  (("baseline", Engine.default_config ())
  :: List.map
       (fun c -> (c.Pipeline.name, Engine.default_config ~opt:c ()))
       Pipeline.figure9_configs)
  @ [
      ("selective", Engine.default_config ~opt:Pipeline.all_on ~selective:true ());
      ("cache4", Engine.default_config ~opt:Pipeline.all_on ~cache_size:4 ());
    ]

(* Aggregation key for warnings: layer plus the first words of the message,
   enough to separate "redundant guard ..." from "dead resume point ...". *)
let kind_of (d : Diag.t) =
  let words = String.split_on_char ' ' d.Diag.message in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  Printf.sprintf "%s: %s" d.Diag.layer (String.concat " " (take 3 words))

let main suite_filter config_filter strict machine =
  let suites =
    match suite_filter with
    | None -> Suites.all
    | Some name -> (
      match Suites.find name with
      | Some s -> [ s ]
      | None ->
        Printf.eprintf "unknown suite: %s (have: %s)\n" name
          (String.concat ", " (List.map (fun (s : Suite.t) -> s.Suite.s_name) Suites.all));
        exit 2)
  in
  let configs =
    match config_filter with
    | None -> engine_configs
    | Some name -> (
      match
        List.filter
          (fun (n, _) -> String.lowercase_ascii n = String.lowercase_ascii name)
          engine_configs
      with
      | [] ->
        Printf.eprintf "unknown config: %s (have: %s)\n" name
          (String.concat ", " (List.map fst engine_configs));
        exit 2
      | cs -> cs)
  in
  let errors = ref 0 in
  let warnings = ref 0 in
  let warn_counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  (* Attribution context for findings reported from inside an engine run. *)
  let where = ref "" in
  let report d =
    if Diag.is_error d then begin
      incr errors;
      Printf.printf "%s\t%s\n" !where
        (if machine then Diag.to_machine_string d else Diag.to_string d)
    end
    else begin
      incr warnings;
      let k = kind_of d in
      Hashtbl.replace warn_counts k
        (1 + Option.value (Hashtbl.find_opt warn_counts k) ~default:0);
      if machine then Printf.printf "%s\t%s\n" !where (Diag.to_machine_string d)
    end
  in
  Pipeline.checks := true;
  Engine.diag_warn_hook := Some report;
  (* The engine contains mid-run compile diagnostics (quarantine + interpreter
     fallback) instead of letting [Diag.Failed] escape; the abort hook is how
     those findings still reach the lint report. *)
  Engine.diag_abort_hook := Some report;
  let members = ref 0 and runs = ref 0 in
  List.iter
    (fun (suite : Suite.t) ->
      List.iter
        (fun (m : Suite.member) ->
          incr members;
          let workload = Printf.sprintf "%s/%s" suite.Suite.s_name m.Suite.m_name in
          where := workload ^ "\tbytecode";
          match Bytecode.Compile.program_of_source m.Suite.m_source with
          | exception e ->
            incr errors;
            Printf.printf "%s\terror: does not compile: %s\n" !where (Printexc.to_string e)
          | program ->
            List.iter report (Bc_verify.run_program program);
            List.iter
              (fun (cname, cfg) ->
                incr runs;
                where := workload ^ "\t" ^ cname;
                match Runner.quiet (fun () -> Engine.run_source cfg m.Suite.m_source) with
                | exception Diag.Failed d -> report d
                | exception e ->
                  incr errors;
                  Printf.printf "%s\terror: run failed: %s\n" !where (Printexc.to_string e)
                | _report -> ())
              configs)
        suite.Suite.members)
    suites;
  if not machine then begin
    Printf.printf "%d workloads x %d configs: %d runs, %d errors, %d warnings\n"
      !members (List.length configs) !runs !errors !warnings;
    if !warnings > 0 then begin
      print_endline "warning kinds:";
      Hashtbl.fold (fun k n acc -> (n, k) :: acc) warn_counts []
      |> List.sort compare |> List.rev
      |> List.iter (fun (n, k) -> Printf.printf "  %6d  %s ...\n" n k)
    end
  end;
  if !errors > 0 || (strict && !warnings > 0) then 1 else 0

open Cmdliner

let suite_arg =
  let doc = "Lint only this suite (sunspider, v8, kraken); default all." in
  Arg.(value & opt (some string) None & info [ "suite" ] ~docv:"NAME" ~doc)

let config_arg =
  let doc = "Lint only this configuration (baseline, a Figure-9 column, selective, cache4)." in
  Arg.(value & opt (some string) None & info [ "config" ] ~docv:"NAME" ~doc)

let strict_arg =
  let doc = "Exit nonzero on warnings too, not just errors." in
  Arg.(value & flag & info [ "strict" ] ~doc)

let machine_arg =
  let doc = "One tab-separated line per finding (including warnings); no summary." in
  Arg.(value & flag & info [ "machine" ] ~doc)

let cmd =
  let doc = "static-analysis lint of all IRs over the benchmark workloads" in
  Cmd.v
    (Cmd.info "vs-irlint" ~doc)
    Term.(const main $ suite_arg $ config_arg $ strict_arg $ machine_arg)

let () = exit (Cmd.eval' cmd)
