(* irlint: run the full static-analysis suite over every workload under
   every Figure-9 configuration (plus the selective / k-entry-cache
   extensions, which exercise the specialization mask paths).

   For each suite member:
     1. compile to bytecode and run the bytecode verifier;
     2. run the program under the engine with per-pass pipeline checks on,
        so every compilation is re-verified after every pass, audited by
        the specialization-soundness checker, and code-verified after
        register allocation.

   Errors are printed individually; warnings are aggregated by kind (pass
   `--machine` for one tab-separated line per finding instead). Exit 1 on
   any error — or any warning under `--strict` — so the @lint alias can
   gate CI.

     dune exec bin/irlint.exe --
     dune exec bin/irlint.exe -- --suite kraken --config PS+CP+DCE
     dune exec bin/irlint.exe -- --machine --jobs 4

   The workload x config sweep fans out over the domain pool (--jobs /
   VS_JOBS): every cell runs with its own lint sinks installed
   domain-locally and returns its findings, which are replayed on the
   main domain in serial sweep order — the report is byte-identical at
   any pool size. *)

let engine_configs =
  (("baseline", Engine.default_config ())
  :: List.map
       (fun c -> (c.Pipeline.name, Engine.default_config ~opt:c ()))
       Pipeline.figure9_configs)
  @ [
      ("selective", Engine.default_config ~opt:Pipeline.all_on ~selective:true ());
      ("cache4", Engine.default_config ~opt:Pipeline.all_on ~cache_size:4 ());
    ]

(* Aggregation key for warnings: layer plus the first words of the message,
   enough to separate "redundant guard ..." from "dead resume point ...". *)
let kind_of (d : Diag.t) =
  let words = String.split_on_char ' ' d.Diag.message in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  Printf.sprintf "%s: %s" d.Diag.layer (String.concat " " (take 3 words))

(* One (workload, config) cell's findings, in the order the engine produced
   them. [Hard] is a pre-formatted non-diagnostic error line. *)
type item = Diagnostic of Diag.t | Hard of string

let run_cell ~missed_guards cfg src =
  let acc = ref [] in
  let report d = acc := Diagnostic d :: !acc in
  (* Missed-guard report: re-run the abstract interpreter over every
     post-pipeline MIR graph and warn about guards still standing that
     [Absint.prove] certifies can never fail — elisions the pipeline left
     on the table (e.g. a barrier whose declared type disagrees, or a
     bounds check whose def is still referenced). *)
  let missed_hook (mir : Mir.func) =
    let r = Absint.analyze mir in
    List.iter
      (fun (bid, (i : Mir.instr)) ->
        report
          (Diag.make ~severity:Diag.Warning ~layer:"missed-guard"
             ~func:mir.Mir.source.Bytecode.Program.name
             ~fid:mir.Mir.source.Bytecode.Program.fid ~block:bid
             ~value:i.Mir.def ~pc:i.Mir.org.Mir.o_pc
             (Printf.sprintf "provably redundant %s guard not elided"
                (Mir.guard_kind_name i.Mir.kind))))
      (Absint.survivors r mir)
  in
  let with_hook body = if missed_guards then Engine.with_mir_hook missed_hook body else body () in
  (match
     Pipeline.with_checks true (fun () ->
       Engine.with_diag_warn_hook report (fun () ->
         (* The engine contains mid-run compile diagnostics (quarantine +
            interpreter fallback) instead of letting [Diag.Failed] escape;
            the abort hook is how those findings still reach the report. *)
         Engine.with_diag_abort_hook report (fun () ->
           with_hook (fun () ->
             Runner.quiet (fun () -> Engine.run_source cfg src)))))
   with
  | exception Diag.Failed d -> report d
  | exception e ->
    acc := Hard (Printf.sprintf "error: run failed: %s" (Printexc.to_string e)) :: !acc
  | _report -> ());
  List.rev !acc

let main suite_filter config_filter strict machine missed_guards jobs =
  (match jobs with Some n -> Pool.set_default_jobs n | None -> ());
  let suites =
    match suite_filter with
    | None -> Suites.all
    | Some name -> (
      match Suites.find name with
      | Some s -> [ s ]
      | None ->
        Printf.eprintf "unknown suite: %s (have: %s)\n" name
          (String.concat ", " (List.map (fun (s : Suite.t) -> s.Suite.s_name) Suites.all));
        exit 2)
  in
  let configs =
    match config_filter with
    | None -> engine_configs
    | Some name -> (
      match
        List.filter
          (fun (n, _) -> String.lowercase_ascii n = String.lowercase_ascii name)
          engine_configs
      with
      | [] ->
        Printf.eprintf "unknown config: %s (have: %s)\n" name
          (String.concat ", " (List.map fst engine_configs));
        exit 2
      | cs -> cs)
  in
  let members =
    List.concat_map
      (fun (suite : Suite.t) ->
        List.map
          (fun (m : Suite.member) ->
            (Printf.sprintf "%s/%s" suite.Suite.s_name m.Suite.m_name, m))
          suite.Suite.members)
      suites
  in
  let pool = Pool.default () in
  (* Phase 1: bytecode compile + verifier, one task per workload. *)
  let bc =
    Pool.map pool
      (fun (_, (m : Suite.member)) ->
        match Bytecode.Compile.program_of_source m.Suite.m_source with
        | exception e -> Error (Printexc.to_string e)
        | program -> Ok (Bc_verify.run_program program))
      members
  in
  (* Phase 2: one engine run per (workload, config) cell, for every workload
     that compiled. *)
  let cells =
    List.concat
      (List.map2
         (fun (workload, (m : Suite.member)) bc_result ->
           match bc_result with
           | Error _ -> []
           | Ok _ -> List.map (fun (_, cfg) -> (workload, cfg, m)) configs)
         members bc)
  in
  let cell_findings =
    Pool.map pool (fun ((_, cfg, m) : string * Engine.config * Suite.member) ->
        run_cell ~missed_guards cfg m.Suite.m_source)
      cells
  in
  (* Replay the findings on the main domain in serial sweep order: the
     printed report and the counters are exactly the serial ones. *)
  let errors = ref 0 in
  let warnings = ref 0 in
  let warn_counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let emit where = function
    | Diagnostic d ->
      if Diag.is_error d then begin
        incr errors;
        Printf.printf "%s\t%s\n" where
          (if machine then Diag.to_machine_string d else Diag.to_string d)
      end
      else begin
        incr warnings;
        let k = kind_of d in
        Hashtbl.replace warn_counts k
          (1 + Option.value (Hashtbl.find_opt warn_counts k) ~default:0);
        if machine then Printf.printf "%s\t%s\n" where (Diag.to_machine_string d)
      end
    | Hard msg ->
      incr errors;
      Printf.printf "%s\t%s\n" where msg
  in
  let n_members = ref 0 and runs = ref 0 in
  let remaining_cells = ref cell_findings in
  let next_cell () =
    match !remaining_cells with
    | [] -> assert false
    | x :: tl ->
      remaining_cells := tl;
      x
  in
  List.iter2
    (fun (workload, _) bc_result ->
      incr n_members;
      let where = workload ^ "\tbytecode" in
      match bc_result with
      | Error msg -> emit where (Hard (Printf.sprintf "error: does not compile: %s" msg))
      | Ok findings ->
        List.iter (fun d -> emit where (Diagnostic d)) findings;
        List.iter
          (fun (cname, _) ->
            incr runs;
            List.iter (emit (workload ^ "\t" ^ cname)) (next_cell ()))
          configs)
    members bc;
  assert (!remaining_cells = []);
  if not machine then begin
    Printf.printf "%d workloads x %d configs: %d runs, %d errors, %d warnings\n"
      !n_members (List.length configs) !runs !errors !warnings;
    if !warnings > 0 then begin
      print_endline "warning kinds:";
      Hashtbl.fold (fun k n acc -> (n, k) :: acc) warn_counts []
      |> List.sort compare |> List.rev
      |> List.iter (fun (n, k) -> Printf.printf "  %6d  %s ...\n" n k)
    end
  end;
  if !errors > 0 || (strict && !warnings > 0) then 1 else 0

open Cmdliner

let suite_arg =
  let doc = "Lint only this suite (sunspider, v8, kraken); default all." in
  Arg.(value & opt (some string) None & info [ "suite" ] ~docv:"NAME" ~doc)

let config_arg =
  let doc = "Lint only this configuration (baseline, a Figure-9 column, selective, cache4)." in
  Arg.(value & opt (some string) None & info [ "config" ] ~docv:"NAME" ~doc)

let strict_arg =
  let doc = "Exit nonzero on warnings too, not just errors." in
  Arg.(value & flag & info [ "strict" ] ~doc)

let machine_arg =
  let doc = "One tab-separated line per finding (including warnings); no summary." in
  Arg.(value & flag & info [ "machine" ] ~doc)

let missed_guards_arg =
  let doc =
    "Also run the abstract interpreter over every post-pipeline MIR graph and report \
     (as warnings) guards still present that it proves can never fail — the \
     missed-guard report gated by the @absint alias."
  in
  Arg.(value & flag & info [ "missed-guards" ] ~doc)

let jobs_arg =
  let doc =
    "Domains the workload x config sweep fans out over (default: \\$(b,VS_JOBS) or the \
     machine's core count, capped at 8); 1 runs serially. Output is byte-identical at \
     any value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cmd =
  let doc = "static-analysis lint of all IRs over the benchmark workloads" in
  Cmd.v
    (Cmd.info "vs-irlint" ~doc)
    Term.(
      const main $ suite_arg $ config_arg $ strict_arg $ machine_arg
      $ missed_guards_arg $ jobs_arg)

let () = exit (Cmd.eval' cmd)
