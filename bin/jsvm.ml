(* jsvm: run a MiniJS file under the VM.

   Examples:
     jsvm program.js                       # JIT with the baseline pipeline
     jsvm --no-jit program.js              # pure interpretation
     jsvm --spec program.js                # value specialization (all opts)
     jsvm --config PS+CP+DCE program.js    # a specific Figure 9 column
     jsvm --stats program.js               # engine report + counters
     jsvm --trace program.js               # JIT event stream on stderr
     jsvm --trace-json t.jsonl program.js  # same stream, as JSONL
     jsvm --profile program.js             # per-function cycle attribution
     jsvm --profile-folded p.folded x.js   # flamegraph folded stacks
     jsvm --trace-spans t.json x.js        # Chrome trace (Perfetto) spans *)

let find_config name =
  if String.lowercase_ascii name = "baseline" then Some Pipeline.baseline
  else
    List.find_opt
      (fun c -> String.lowercase_ascii c.Pipeline.name = String.lowercase_ascii name)
      Pipeline.figure9_configs

(* Per-opcode execution profile over the native code, via the executor's
   trace hook. *)
let profile_table () =
  let counts : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  let record (n : Code.ninstr) =
    let key =
      match n with
      | Code.Op { op; _ } -> Code.op_to_string op
      | Code.Jump _ -> "jmp"
      | Code.Branch _ -> "brt"
      | Code.Ret _ -> "ret"
    in
    let count, cycles = Option.value (Hashtbl.find_opt counts key) ~default:(0, 0) in
    Hashtbl.replace counts key (count + 1, cycles + Cost.instr n)
  in
  let dump () =
    let rows =
      Hashtbl.fold (fun k (c, cy) acc -> (cy, [ k; string_of_int c; string_of_int cy ]) :: acc)
        counts []
      |> List.sort (fun (a, _) (b, _) -> compare b a)
      |> List.map snd
    in
    print_string
      (Support.Table.render ~header:[ "native op"; "executed"; "cycles" ] ~rows ())
  in
  (record, dump)

(* Pool utilization for the differential modes (--check / --chaos fan their
   configuration runs out over the domain pool). Printed only when a pool
   was actually created; join_wait is wall-clock, so this section is
   diagnostic output, not part of the deterministic report. *)
let print_pool_stats () =
  match Pool.peek_default () with
  | None -> ()
  | Some pool ->
    let s = Pool.stats pool in
    print_endline "-- pool utilization --";
    Printf.printf "jobs=%d steals=%d joins=%d join_wait=%.3fs tasks/participant=[%s]\n"
      s.Pool.st_jobs s.Pool.st_steals s.Pool.st_joins s.Pool.st_join_wait
      (String.concat ";" (Array.to_list (Array.map string_of_int s.Pool.st_tasks)))

(* Serialize collected spans (emission order) as a Chrome trace-event file:
   loadable in Perfetto / chrome://tracing. *)
let write_trace_spans file spans =
  Out_channel.with_open_text file (fun oc ->
      output_string oc "{\"traceEvents\":[";
      List.iteri
        (fun i s ->
          if i > 0 then output_string oc ",";
          output_string oc "\n";
          output_string oc (Telemetry.span_to_chrome_json s))
        spans;
      output_string oc "\n]}\n")

(* Flight-recorder post-mortems as JSONL (one header object per dump, then
   its entries). *)
let write_flight file fl =
  Out_channel.with_open_text file (fun oc ->
      List.iter
        (fun d ->
          List.iter
            (fun line ->
              output_string oc line;
              output_string oc "\n")
            (Flight.dump_jsonl d))
        (Flight.dumps fl))

let run_file path no_jit spec selective policy_name cache_size code_cache_bytes max_depth
    bg_compile compile_queue_depth config_name
    stats trace trace_json trace_spans flight_file profile_folded dump_bytecode dump_mir
    profile check chaos jobs =
  (match jobs with Some n -> Pool.set_default_jobs n | None -> ());
  let src = In_channel.with_open_text path In_channel.input_all in
  (match chaos with
  | None -> ()
  | Some seed -> (
    (* Chaos differential: the fault plan sampled from SEED is injected
       into every JIT configuration; all of them must still produce the
       pure interpreter's output. *)
    let plan = Faults.sample seed in
    Printf.printf "chaos plan: %s\n" (Faults.describe plan);
    match Fuzz_diff.check_chaos ~seed src with
    | None ->
      Printf.printf "ok: %d configurations survive the fault plan\n"
        (List.length Fuzz_diff.default_configs);
      if stats then print_pool_stats ();
      exit 0
    | Some (Fuzz_diff.Mismatch m) ->
      Printf.printf "MISMATCH under %s\n-- interpreter --\n%s-- %s --\n%s" m.Fuzz_diff.mm_config
        m.Fuzz_diff.mm_expected m.Fuzz_diff.mm_config m.Fuzz_diff.mm_got;
      exit 1
    | Some (Fuzz_diff.Verifier_diag { vd_config; vd_diag }) ->
      Printf.printf "VERIFIER DIAGNOSTIC under %s\n%s\n" vd_config (Diag.to_string vd_diag);
      exit 1));
  if check then begin
    (* Differential mode: run under the interpreter and every JIT
       configuration (including the selective / k-entry-cache / SCCP
       extensions) and report the first disagreement. *)
    match Fuzz_diff.check src with
    | None ->
      Printf.printf "ok: interpreter and %d configurations agree\n"
        (List.length Fuzz_diff.default_configs);
      if stats then print_pool_stats ();
      exit 0
    | Some (Fuzz_diff.Mismatch m) ->
      Printf.printf "MISMATCH under %s\n-- interpreter --\n%s-- %s --\n%s" m.Fuzz_diff.mm_config
        m.Fuzz_diff.mm_expected m.Fuzz_diff.mm_config m.Fuzz_diff.mm_got;
      exit 1
    | Some (Fuzz_diff.Verifier_diag { vd_config; vd_diag }) ->
      Printf.printf "VERIFIER DIAGNOSTIC under %s\n%s\n" vd_config (Diag.to_string vd_diag);
      exit 1
  end;
  let policy =
    match Policy.kind_of_string policy_name with
    | Some k -> k
    | None ->
      prerr_endline ("unknown policy: " ^ policy_name ^ " (expected 'paper' or 'polyvariant')");
      exit 2
  in
  let opt =
    match config_name with
    | Some name -> (
      match find_config name with
      | Some c -> c
      | None ->
        prerr_endline
          ("unknown config: " ^ name ^ " (expected 'baseline' or a Figure 9 column name)");
        exit 2)
    | None ->
      if spec || selective || policy = Policy.Polyvariant then Pipeline.all_on
      else Pipeline.baseline
  in
  let cfg =
    {
      (Engine.default_config ~opt ~policy ~cache_size ~selective ~code_cache_bytes
         ~max_depth ~bg_compile ~bg_queue_depth:compile_queue_depth ())
      with
      Engine.jit = not no_jit
    }
  in
  match Bytecode.Compile.program_of_source src with
  | exception Jsfront.Lexer.Error (pos, msg) ->
    Printf.eprintf "%s:%s: lexical error: %s\n" path (Jsfront.Pos.to_string pos) msg;
    exit 1
  | exception Jsfront.Parser.Error (pos, msg) ->
    Printf.eprintf "%s:%s: syntax error: %s\n" path (Jsfront.Pos.to_string pos) msg;
    exit 1
  | exception Bytecode.Compile.Error msg ->
    Printf.eprintf "%s: compile error: %s\n" path msg;
    exit 1
  | program -> (
    if dump_bytecode then print_endline (Bytecode.Program.disassemble program);
    if dump_mir then
      Engine.set_mir_hook
        (Some
           (fun f ->
             Printf.printf "-- optimized MIR (%s%s) --\n"
               f.Mir.source.Bytecode.Program.name
               (if f.Mir.specialized_args <> None then ", specialized" else "");
             print_string (Mir.to_string f)));
    let dump_profile =
      if profile then begin
        let record, dump = profile_table () in
        Exec.set_trace_hook (Some record);
        Some dump
      end
      else None
    in
    (* The cycle-attribution recorder (--profile table, --profile-folded). *)
    let recorder =
      if profile || profile_folded <> None then Some (Profile.Recorder.create ~program)
      else None
    in
    (* Span collection must be registered as a default span sink before the
       engine is created: the engine only builds its tracer when the hub has
       a span sink at construction time. *)
    let spans_acc = ref [] in
    if trace_spans <> None then
      Telemetry.set_default_span_sinks [ (fun s -> spans_acc := s :: !spans_acc) ];
    let engine = Engine.make cfg program in
    (* The flight recorder rides the engine's event stream on its model
       clock; quarantines and deopt storms self-trigger dumps, and the run
       adds its own trigger on a fault or at end of run. *)
    let flight =
      Option.map
        (fun _ ->
          let fl = Flight.create () in
          Telemetry.attach (Engine.telemetry engine)
            (Flight.sink fl ~clock:(fun () -> Engine.clock engine));
          fl)
        flight_file
    in
    let dump_flight ~trigger ~detail =
      match (flight, flight_file) with
      | Some fl, Some file ->
        if trigger <> "" then
          Flight.trigger fl ~trigger ~detail ~at:(Engine.clock engine);
        write_flight file fl
      | _ -> ()
    in
    if trace then Telemetry.attach (Engine.telemetry engine) (Telemetry.text_sink stderr);
    let json_oc =
      Option.map
        (fun file ->
          let oc = open_out file in
          Telemetry.attach (Engine.telemetry engine) (Telemetry.jsonl_sink oc);
          oc)
        trace_json
    in
    let run_engine () =
      match recorder with
      | Some r -> Profile.with_recorder r (fun () -> Engine.run engine)
      | None -> Engine.run engine
    in
    match run_engine () with
    | exception Engine.Runtime_error msg ->
      Option.iter close_out json_oc;
      dump_flight ~trigger:"fault" ~detail:msg;
      Printf.eprintf "%s: runtime error: %s\n" path msg;
      exit 1
    | report ->
      Option.iter close_out json_oc;
      (* End-of-run dump only when nothing self-triggered: the on-demand
         post-mortem; a run with quarantine dumps keeps exactly those. *)
      (match flight with
      | Some fl when Flight.dumps fl = [] ->
        dump_flight ~trigger:"end-of-run" ~detail:path
      | Some _ -> dump_flight ~trigger:"" ~detail:""
      | None -> ());
      Option.iter (fun file -> write_trace_spans file (List.rev !spans_acc)) trace_spans;
      (match (recorder, profile_folded) with
      | Some r, Some file ->
        Out_channel.with_open_text file (fun oc ->
            output_string oc (Profile.Recorder.folded r))
      | _ -> ());
      (match recorder with
      | Some r when profile ->
        print_endline "-- cycle attribution --";
        print_string (Profile.Recorder.table r);
        (* Sanity anchor: the attribution is exact by construction. *)
        Printf.printf "attributed=%d of total=%d\n" (Profile.Recorder.total_cycles r)
          report.Engine.total_cycles
      | _ -> ());
      Option.iter
        (fun dump ->
          Exec.set_trace_hook None;
          print_endline "-- native execution profile --";
          dump ())
        dump_profile;
      if stats then begin
        Printf.printf "-- engine report (%s%s) --\n" opt.Pipeline.name
          (if no_jit then ", jit off" else "");
        Printf.printf "cycles: total=%d interp=%d native=%d compile=%d\n"
          report.Engine.total_cycles report.Engine.interp_cycles
          report.Engine.native_cycles report.Engine.compile_cycles;
        if bg_compile then
          Printf.printf "bg-compile cycles (off-clock)=%d\n" report.Engine.bg_compile_cycles;
        Printf.printf
          "compilations=%d recompilations=%d specialized=%d successful=%d deoptimized=%d\n"
          report.Engine.compilations report.Engine.recompilations
          report.Engine.specialized_funcs report.Engine.successful_funcs
          report.Engine.deoptimized_funcs;
        List.iter
          (fun (f : Engine.func_report) ->
            if f.Engine.fr_compiles > 0 then
              Printf.printf "  %-24s calls=%-6d compiles=%d bailouts=%d%s%s sizes=[%s]\n"
                f.Engine.fr_name f.Engine.fr_calls f.Engine.fr_compiles
                f.Engine.fr_bailouts
                (if f.Engine.fr_was_specialized then " specialized" else "")
                (if f.Engine.fr_deoptimized then " deoptimized" else "")
                (String.concat ";"
                   (List.map
                      (fun (s, n) -> Printf.sprintf "%s%d" (if s then "spec:" else "gen:") n)
                      f.Engine.fr_sizes)))
          report.Engine.functions;
        (* The counter registry the report above is derived from. *)
        let c = Telemetry.counters (Engine.telemetry engine) in
        (match Telemetry.Counters.rows c with
        | [] -> ()
        | rows ->
          print_endline "-- telemetry counters --";
          print_string
            (Support.Table.render ~header:[ "counter"; "total" ]
               ~rows:(List.map (fun (k, v) -> [ k; string_of_int v ]) rows)
               ());
          List.iter
            (fun (f : Engine.func_report) ->
              if f.Engine.fr_compiles > 0 then
                Printf.printf "  %s: %s\n" f.Engine.fr_name
                  (String.concat " "
                     (List.map
                        (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                        (Telemetry.Counters.fid_rows c f.Engine.fr_fid))))
            report.Engine.functions);
        print_pool_stats ()
      end)

open Cmdliner

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniJS source file")

let no_jit = Arg.(value & flag & info [ "no-jit" ] ~doc:"Interpret only; never compile.")

let spec =
  Arg.(
    value & flag
    & info [ "spec" ]
        ~doc:"Enable parameter-based value specialization with every optimization.")

let selective =
  Arg.(
    value & flag
    & info [ "selective" ]
        ~doc:
          "Selective specialization: burn in only arguments observed value-stable; \
           implies --spec unless --config overrides the pipeline.")

let policy_arg =
  Arg.(
    value & opt string "paper"
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Specialization policy: $(b,paper) (one-entry cache, miss deoptimizes and \
           blacklists, \u{00a7}4) or $(b,polyvariant) (multi-entry version cache; a miss \
           widens values\u{2192}tags\u{2192}generic instead of discarding). Implies --spec's \
           pipeline for $(b,polyvariant).")

let cache_size =
  Arg.(
    value & opt int 1
    & info [ "cache-size" ] ~docv:"K"
        ~doc:
          "Specialized binaries cached per function (the paper uses 1; larger values \
           are the section-6 extension).")

let code_cache_bytes =
  Arg.(
    value & opt int 0
    & info [ "code-cache-bytes" ] ~docv:"N"
        ~doc:
          "Global code-cache byte budget across all functions, with cross-function LRU \
           eviction on admission (0 = unbounded).")

let max_depth =
  Arg.(
    value & opt int Interp.default_max_depth
    & info [ "max-depth" ] ~docv:"N"
        ~doc:
          "MiniJS call-depth limit; deeper recursion is a runtime error ('stack \
           overflow') instead of a process crash.")

let bg_compile_arg =
  Arg.(
    value & flag
    & info [ "bg-compile" ]
        ~doc:
          "Background tiered compilation: hot functions and loops enqueue compile \
           requests on a bounded queue and keep interpreting; finished binaries are \
           picked up at later calls, and a still-hot loop transfers into its binary at \
           a loop edge (OSR). Artifact visibility follows a deterministic completion \
           model, so output and the engine report are byte-identical at any --jobs; \
           background compile cycles are reported off the model clock.")

let compile_queue_depth =
  Arg.(
    value & opt int 8
    & info [ "compile-queue-depth" ] ~docv:"N"
        ~doc:
          "In-flight background compile requests admitted before further requests are \
           dropped (with --bg-compile; counted under bg.overflow).")

let config_name =
  Arg.(
    value
    & opt (some string) None
    & info [ "config" ] ~docv:"NAME"
        ~doc:"Optimization configuration: 'baseline' or a Figure 9 column, e.g. PS+CP+DCE.")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the engine report and the telemetry counter registry after the run.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Stream JIT events (compiles, cache probes, specializations, bailouts, \
           deoptimizations, blacklists, OSR entries) to stderr as they happen.")

let trace_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:"Write the JIT event stream to $(docv) as JSON Lines.")

let trace_spans =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-spans" ] ~docv:"FILE"
        ~doc:
          "Write engine lifecycle spans (interpret, compile with per-pass children, \
           codegen, native runs, bailouts, OSR) to $(docv) as Chrome trace-event JSON \
           on the model-cycle clock — load it in Perfetto or chrome://tracing.")

let flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-recorder" ] ~docv:"FILE"
        ~doc:
          "Record the most recent JIT events in a bounded ring and write \
           post-mortem dumps to $(docv) as JSONL: automatically on a quarantine, \
           deopt storm or runtime fault (the window leading up to it), otherwise \
           once at end of run. Timestamps are model cycles, so dumps are \
           byte-reproducible.")

let profile_folded =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-folded" ] ~docv:"FILE"
        ~doc:
          "Write the cycle attribution as folded stacks \
           (function;tier;pass;category cycles) to $(docv), ready for any flamegraph \
           tool.")

let dump_bytecode =
  Arg.(value & flag & info [ "dump-bytecode" ] ~doc:"Disassemble the program before running.")

let dump_mir =
  Arg.(
    value & flag
    & info [ "dump-mir" ]
        ~doc:"Print each function's optimized MIR graph as it is compiled.")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Differential check: run the program under the interpreter and every JIT \
           configuration and report the first disagreement (exit 1).")

let profile =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print the per-function cycle-attribution table (interp / native-gen / \
           native-spec / compile split plus the native guard/alu/mem percentages) and \
           the per-opcode execution profile of the compiled code after the run.")

let chaos =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos" ] ~docv:"SEED"
        ~doc:
          "Chaos differential: inject the deterministic fault plan sampled from $(docv) \
           (aborted compilations, rejected binaries, forced guard bailouts, cache \
           exhaustion) into every JIT configuration and require the interpreter's \
           output from all of them (exit 1 on divergence).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains the differential modes (--check, --chaos) fan their configuration \
           runs out over (default: \\$(b,VS_JOBS) or the machine's core count, capped \
           at 8); 1 runs serially. Output is byte-identical at any value.")

let cmd =
  let doc = "Run MiniJS programs under a JIT with parameter-based value specialization" in
  Cmd.v
    (Cmd.info "jsvm" ~version:"1.0" ~doc)
    Term.(
      const run_file $ path_arg $ no_jit $ spec $ selective $ policy_arg $ cache_size
      $ code_cache_bytes $ max_depth $ bg_compile_arg $ compile_queue_depth
      $ config_name $ stats $ trace $ trace_json
      $ trace_spans $ flight_arg $ profile_folded $ dump_bytecode $ dump_mir $ profile
      $ check $ chaos $ jobs_arg)

let () = exit (Cmd.eval cmd)
