(* policy_census: the specialization-policy behavior census.

   Every irlint workload runs under both specialization policies at cache
   sizes 1, 2 and 4; each (workload, policy, size) cell prints one line of
   policy-relevant observables — model cycles plus the transition counts
   that distinguish the policies (compiles, §4 deoptimizations, ladder
   widenings, promotions, blacklists).

   The output is diffed against bin/policy_census.expected by the @policy
   alias (promotable with `dune promote`): the paper rows pin the default
   policy's byte-identity, the polyvariant rows pin the widening ladder
   and the promotion tier. Cells fan out over the domain pool and are
   replayed in serial sweep order, so the census is byte-identical at any
   --jobs / VS_JOBS. *)

let configs =
  List.concat_map
    (fun policy ->
      List.map
        (fun k ->
          ( Printf.sprintf "%s@%d" (Policy.kind_to_string policy) k,
            Engine.default_config ~opt:Pipeline.all_on ~policy ~cache_size:k () ))
        [ 1; 2; 4 ])
    Policy.all_kinds

let run_cell cfg src =
  Runner.quiet (fun () ->
      match Bytecode.Compile.program_of_source src with
      | exception e -> Printf.sprintf "compile error: %s" (Printexc.to_string e)
      | program ->
        Telemetry.with_fresh_counters ~nfuncs:(Bytecode.Program.nfuncs program)
          (fun counters ->
            match Engine.run_program cfg program with
            | exception Engine.Runtime_error msg -> "runtime error: " ^ msg
            | report ->
              let total key = Telemetry.Counters.total counters key in
              Printf.sprintf
                "cycles=%d compiles=%d deopts=%d widens=%d promotions=%d blacklists=%d"
                report.Engine.total_cycles (total "compile_end") (total "deopt")
                (total "version_widen")
                (total Telemetry.Key.versions_promoted)
                (total "blacklist")))

let () =
  (match Sys.getenv_opt "VS_JOBS" with
  | Some s -> (try Pool.set_default_jobs (int_of_string s) with _ -> ())
  | None -> ());
  let members =
    List.concat_map
      (fun (suite : Suite.t) ->
        List.map
          (fun (m : Suite.member) ->
            (Printf.sprintf "%s/%s" suite.Suite.s_name m.Suite.m_name, m.Suite.m_source))
          suite.Suite.members)
      Suites.all
  in
  let cells =
    List.concat_map (fun (w, src) -> List.map (fun (c, cfg) -> (w, c, cfg, src)) configs)
      members
  in
  let lines =
    Pool.map (Pool.default ()) (fun (_, _, cfg, src) -> run_cell cfg src) cells
  in
  List.iter2
    (fun (workload, cname, _, _) line -> Printf.printf "%s\t%s\t%s\n" workload cname line)
    cells lines;
  Printf.printf "%d workloads x %d configs: %d cells\n" (List.length members)
    (List.length configs) (List.length cells)
