(* vs-serve: the multi-tenant VM service simulator.

     vs-serve                          # a default steady-load run
     vs-serve --smoke                  # the CI overload scenario + invariants
     vs-serve --capacity 4 --deadline 120000 --chaos 7 --crash 0.08
     vs-serve --smoke --jobs 4         # same bytes as --jobs 1

   Every quantity is in deterministic model cycles; the summary is
   byte-identical at any --jobs (the @serve gate diffs 4 vs 1). --smoke
   runs the forced-overload chaos scenario and exits 1 if any service
   invariant is violated (a supervisor escape, nothing shed, no deadline
   ever firing, ...).

   Observability (each independently optional; with none of them the run
   is byte-identical to a build without the observability layer):

     vs-serve --metrics-out m.prom     # final registry, Prometheus text
     vs-serve --metrics-json m.jsonl --metrics-every 100000
     vs-serve --top                    # text dashboard after the summary
     vs-serve --trace-spans t.json     # request-stitched Perfetto trace
     vs-serve --flight-recorder f.jsonl [--flight-text f.txt]

   All artifacts are on the model-cycle clock and byte-identical at any
   --jobs (the @obs gate diffs 4 vs 1 under an injected-fault plan). *)

let write_file file contents = Out_channel.with_open_text file (fun oc -> output_string oc contents)

(* Chrome trace-event file (same shape jsvm --trace-spans writes). *)
let write_trace_spans file spans =
  Out_channel.with_open_text file (fun oc ->
      output_string oc "{\"traceEvents\":[";
      List.iteri
        (fun i s ->
          if i > 0 then output_string oc ",";
          output_string oc "\n";
          output_string oc (Telemetry.span_to_chrome_json s))
        spans;
      output_string oc "\n]}\n")

let () =
  let isolates = ref 2 in
  let requests = ref 80 in
  let tenants = ref 6 in
  let capacity = ref 0 in
  let queue_deadline = ref 0 in
  let deadline = ref 0 in
  let retries = ref 2 in
  let backoff = ref 2_000 in
  let overload = ref 0 in
  let gap = ref 30_000 in
  let crash = ref 0.0 in
  let seed = ref 1 in
  let chaos = ref (-1) in
  let policy = ref "paper" in
  let cache_size = ref 1 in
  let bg = ref false in
  let bg_depth = ref 8 in
  let smoke = ref false in
  let counters = ref true in
  let metrics_out = ref "" in
  let metrics_json = ref "" in
  let metrics_every = ref 0 in
  let top = ref false in
  let trace_spans = ref "" in
  let flight = ref "" in
  let flight_text = ref "" in
  let flight_capacity = ref 64 in
  let flight_dumps = ref 4 in
  let specs =
    [
      ("--isolates", Arg.Set_int isolates, "N isolates (default 2)");
      ("--requests", Arg.Set_int requests, "N requests (default 80)");
      ("--tenants", Arg.Set_int tenants, "N tenants (default 6)");
      ("--capacity", Arg.Set_int capacity, "N run-queue bound; 0 = unbounded");
      ( "--queue-deadline",
        Arg.Set_int queue_deadline,
        "CYCLES max queue wait; 0 = none" );
      ("--deadline", Arg.Set_int deadline, "CYCLES per-attempt engine budget; 0 = none");
      ("--retries", Arg.Set_int retries, "N retries after a supervised fault (default 2)");
      ("--backoff", Arg.Set_int backoff, "CYCLES base retry backoff (default 2000)");
      ("--overload", Arg.Set_int overload, "DEPTH queue depth that degrades; 0 = never");
      ("--gap", Arg.Set_int gap, "CYCLES mean inter-arrival gap (default 30000)");
      ("--crash", Arg.Set_float crash, "FRACTION of poison requests (default 0)");
      ("--seed", Arg.Set_int seed, "N request-stream seed (default 1)");
      ("--chaos", Arg.Set_int chaos, "SEED per-request fault plans; unset = none");
      ("--policy", Arg.Set_string policy, "paper|polyvariant (default paper)");
      ("--cache-size", Arg.Set_int cache_size, "N versions per function (default 1)");
      ( "--bg-compile",
        Arg.Set bg,
        " background compilation: requests enqueue compiles and keep interpreting" );
      ( "--compile-queue-depth",
        Arg.Set_int bg_depth,
        "N in-flight background compiles per engine (default 8)" );
      ("--no-counters", Arg.Clear counters, " omit the counter rows");
      ("--smoke", Arg.Set smoke, " run the CI overload scenario and check invariants");
      ( "--metrics-out",
        Arg.Set_string metrics_out,
        "FILE write the final merged metrics registry as Prometheus text" );
      ( "--metrics-json",
        Arg.Set_string metrics_json,
        "FILE write JSON metric snapshots (one line per snapshot; see --metrics-every)" );
      ( "--metrics-every",
        Arg.Set_int metrics_every,
        "CYCLES periodic per-isolate snapshot period for --metrics-json (0 = final only)" );
      ("--top", Arg.Set top, " print the vs-top text dashboard after the summary");
      ( "--trace-spans",
        Arg.Set_string trace_spans,
        "FILE write request-scoped Chrome trace-event spans (Perfetto): every request a \
         lane, background compiles stitched to their requester by flow events" );
      ( "--flight-recorder",
        Arg.Set_string flight,
        "FILE write flight-recorder post-mortem dumps (faults, deadlines, quarantines, \
         deopt storms) as JSONL" );
      ( "--flight-text",
        Arg.Set_string flight_text,
        "FILE write the human rendering of the flight-recorder dumps" );
      ( "--flight-capacity",
        Arg.Set_int flight_capacity,
        "N flight-recorder ring entries per isolate (default 64)" );
      ( "--flight-dumps",
        Arg.Set_int flight_dumps,
        "N post-mortems kept per isolate; later triggers are counted, not dumped \
         (default 4)" );
      ("--jobs", Arg.Int Pool.set_default_jobs, "N pool size (default 1)");
    ]
  in
  Arg.parse specs
    (fun a ->
      Printf.eprintf "unexpected argument %S\n" a;
      exit 2)
    "vs-serve [options]";
  let obs =
    {
      Serve.obs_trace = !trace_spans <> "";
      obs_metrics = !metrics_out <> "" || !metrics_json <> "" || !top;
      obs_metrics_every = max 0 !metrics_every;
      obs_flight = !flight <> "" || !flight_text <> "";
      obs_flight_capacity = max 1 !flight_capacity;
      obs_flight_max_dumps = max 1 !flight_dumps;
    }
  in
  let cfg =
    if !smoke then { (Serve.smoke_config ()) with Serve.obs }
    else begin
      let kind =
        match Policy.kind_of_string !policy with
        | Some k -> k
        | None ->
          Printf.eprintf "unknown policy %S (paper|polyvariant)\n" !policy;
          exit 2
      in
      Serve.default_config ~isolates:!isolates ~requests:!requests ~tenants:!tenants
        ~capacity:!capacity ~queue_deadline:!queue_deadline ~deadline:!deadline
        ~retries:!retries ~backoff:!backoff ~overload_depth:!overload ~mean_gap:!gap
        ~crash_fraction:!crash ~seed:!seed
        ?chaos:(if !chaos < 0 then None else Some !chaos)
        ~engine:
          (Engine.default_config ~opt:Pipeline.all_on ~policy:kind
             ~cache_size:!cache_size ~bg_compile:!bg ~bg_queue_depth:!bg_depth ())
        ~obs ()
    end
  in
  let summary, obs_out = Serve.run_full cfg in
  Serve.print_summary ~counters:!counters stdout cfg summary;
  if !trace_spans <> "" then write_trace_spans !trace_spans obs_out.Serve.or_spans;
  (match obs_out.Serve.or_metrics with
  | Some m ->
    if !metrics_out <> "" then write_file !metrics_out (Metrics.to_prometheus m);
    if !metrics_json <> "" then begin
      (* Per-isolate periodic snapshots in (cycle, isolate) order, then a
         closing line for the merged registry at the makespan. *)
      let buf = Buffer.create 4096 in
      List.iter
        (fun (_, _, json) ->
          Buffer.add_string buf json;
          Buffer.add_char buf '\n')
        obs_out.Serve.or_snapshots;
      Buffer.add_string buf (Metrics.snapshot_json ~cycle:summary.Serve.sm_makespan m);
      Buffer.add_char buf '\n';
      write_file !metrics_json (Buffer.contents buf)
    end;
    if !top then print_string (Metrics.render_top ~title:"vs-serve" m)
  | None -> ());
  if !flight <> "" then begin
    let buf = Buffer.create 4096 in
    List.iter
      (fun (_, d) ->
        List.iter
          (fun line ->
            Buffer.add_string buf line;
            Buffer.add_char buf '\n')
          (Flight.dump_jsonl d))
      obs_out.Serve.or_flights;
    write_file !flight (Buffer.contents buf)
  end;
  if !flight_text <> "" then begin
    let buf = Buffer.create 4096 in
    List.iter (fun (i, d) ->
        Buffer.add_string buf (Printf.sprintf "-- isolate %d --\n" i);
        Buffer.add_string buf (Flight.render d))
      obs_out.Serve.or_flights;
    write_file !flight_text (Buffer.contents buf)
  end;
  if !smoke then begin
    match Serve.smoke_check summary with
    | Ok () -> print_endline "smoke: all service invariants hold"
    | Error problems ->
      List.iter (fun p -> Printf.eprintf "smoke: %s\n" p) problems;
      exit 1
  end
