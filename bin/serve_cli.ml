(* vs-serve: the multi-tenant VM service simulator.

     vs-serve                          # a default steady-load run
     vs-serve --smoke                  # the CI overload scenario + invariants
     vs-serve --capacity 4 --deadline 120000 --chaos 7 --crash 0.08
     vs-serve --smoke --jobs 4         # same bytes as --jobs 1

   Every quantity is in deterministic model cycles; the summary is
   byte-identical at any --jobs (the @serve gate diffs 4 vs 1). --smoke
   runs the forced-overload chaos scenario and exits 1 if any service
   invariant is violated (a supervisor escape, nothing shed, no deadline
   ever firing, ...). *)

let () =
  let isolates = ref 2 in
  let requests = ref 80 in
  let tenants = ref 6 in
  let capacity = ref 0 in
  let queue_deadline = ref 0 in
  let deadline = ref 0 in
  let retries = ref 2 in
  let backoff = ref 2_000 in
  let overload = ref 0 in
  let gap = ref 30_000 in
  let crash = ref 0.0 in
  let seed = ref 1 in
  let chaos = ref (-1) in
  let policy = ref "paper" in
  let cache_size = ref 1 in
  let bg = ref false in
  let bg_depth = ref 8 in
  let smoke = ref false in
  let counters = ref true in
  let specs =
    [
      ("--isolates", Arg.Set_int isolates, "N isolates (default 2)");
      ("--requests", Arg.Set_int requests, "N requests (default 80)");
      ("--tenants", Arg.Set_int tenants, "N tenants (default 6)");
      ("--capacity", Arg.Set_int capacity, "N run-queue bound; 0 = unbounded");
      ( "--queue-deadline",
        Arg.Set_int queue_deadline,
        "CYCLES max queue wait; 0 = none" );
      ("--deadline", Arg.Set_int deadline, "CYCLES per-attempt engine budget; 0 = none");
      ("--retries", Arg.Set_int retries, "N retries after a supervised fault (default 2)");
      ("--backoff", Arg.Set_int backoff, "CYCLES base retry backoff (default 2000)");
      ("--overload", Arg.Set_int overload, "DEPTH queue depth that degrades; 0 = never");
      ("--gap", Arg.Set_int gap, "CYCLES mean inter-arrival gap (default 30000)");
      ("--crash", Arg.Set_float crash, "FRACTION of poison requests (default 0)");
      ("--seed", Arg.Set_int seed, "N request-stream seed (default 1)");
      ("--chaos", Arg.Set_int chaos, "SEED per-request fault plans; unset = none");
      ("--policy", Arg.Set_string policy, "paper|polyvariant (default paper)");
      ("--cache-size", Arg.Set_int cache_size, "N versions per function (default 1)");
      ( "--bg-compile",
        Arg.Set bg,
        " background compilation: requests enqueue compiles and keep interpreting" );
      ( "--compile-queue-depth",
        Arg.Set_int bg_depth,
        "N in-flight background compiles per engine (default 8)" );
      ("--no-counters", Arg.Clear counters, " omit the counter rows");
      ("--smoke", Arg.Set smoke, " run the CI overload scenario and check invariants");
      ("--jobs", Arg.Int Pool.set_default_jobs, "N pool size (default 1)");
    ]
  in
  Arg.parse specs
    (fun a ->
      Printf.eprintf "unexpected argument %S\n" a;
      exit 2)
    "vs-serve [options]";
  let cfg =
    if !smoke then Serve.smoke_config ()
    else begin
      let kind =
        match Policy.kind_of_string !policy with
        | Some k -> k
        | None ->
          Printf.eprintf "unknown policy %S (paper|polyvariant)\n" !policy;
          exit 2
      in
      Serve.default_config ~isolates:!isolates ~requests:!requests ~tenants:!tenants
        ~capacity:!capacity ~queue_deadline:!queue_deadline ~deadline:!deadline
        ~retries:!retries ~backoff:!backoff ~overload_depth:!overload ~mean_gap:!gap
        ~crash_fraction:!crash ~seed:!seed
        ?chaos:(if !chaos < 0 then None else Some !chaos)
        ~engine:
          (Engine.default_config ~opt:Pipeline.all_on ~policy:kind
             ~cache_size:!cache_size ~bg_compile:!bg ~bg_queue_depth:!bg_depth ())
        ()
    end
  in
  let summary = Serve.run cfg in
  Serve.print_summary ~counters:!counters stdout cfg summary;
  if !smoke then begin
    match Serve.smoke_check summary with
    | Ok () -> print_endline "smoke: all service invariants hold"
    | Error problems ->
      List.iter (fun p -> Printf.eprintf "smoke: %s\n" p) problems;
      exit 1
  end
