(* Hermetic validator for the profiler's export artifacts, used by the
   `dune build @profile` gate (bin/dune) so CI needs no external JSON tool.

     trace_check FILE.json ...           validate Chrome trace-event files
     trace_check --profile-out FILE ...  validate `jsvm --profile` output

   A trace file must be a single JSON object {"traceEvents": [...]} whose
   events are complete ("ph":"X") with a non-empty name, non-negative
   integer ts/dur, and pid/tid fields. A profile dump must contain the
   attribution table and an exactly balanced "attributed=N of total=N"
   line. Exits non-zero with a message on the first violation. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("trace_check: " ^ s);
      exit 1)
    fmt

(* ------------------------------------------------------------------ *)
(* A minimal recursive-descent JSON reader — just enough of RFC 8259   *)
(* for trace files we emit ourselves (no surrogate-pair decoding; the   *)
(* escapes are validated and the string kept verbatim).                 *)
(* ------------------------------------------------------------------ *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

let parse_json ~file s =
  let pos = ref 0 in
  let len = String.length s in
  let error msg = fail "%s: invalid JSON at byte %d: %s" file !pos msg in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= len then error "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' ->
           Buffer.add_char buf '\\';
           Buffer.add_char buf e
         | 'u' ->
           if !pos + 4 > len then error "truncated \\u escape";
           for _ = 1 to 4 do
             (match s.[!pos] with
             | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
             | _ -> error "bad \\u escape");
             advance ()
           done;
           Buffer.add_string buf "\\u";
           Buffer.add_string buf (String.sub s (!pos - 4) 4)
         | _ -> error "bad escape character");
        go ()
      | c when Char.code c < 0x20 -> error "raw control byte in string"
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            J_obj (List.rev ((key, v) :: acc))
          | _ -> error "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_list []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            J_list (List.rev (v :: acc))
          | _ -> error "expected ',' or ']'"
        in
        elements []
      end
    | Some 't' -> J_bool (literal "true" true)
    | Some 'f' -> J_bool (literal "false" false)
    | Some 'n' -> literal "null" J_null
    | Some ('-' | '0' .. '9') -> J_num (parse_number ())
    | _ -> error "expected a value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then error "trailing garbage after document";
  v

(* ------------------------------------------------------------------ *)
(* Shape checks                                                        *)
(* ------------------------------------------------------------------ *)

let read_file file =
  let ic = try open_in_bin file with Sys_error e -> fail "%s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let field obj key =
  match obj with
  | J_obj kvs -> List.assoc_opt key kvs
  | _ -> None

let check_event ~file i ev =
  let get key =
    match field ev key with
    | Some v -> v
    | None -> fail "%s: event %d: missing %S field" file i key
  in
  (match get "name" with
  | J_str "" -> fail "%s: event %d: empty name" file i
  | J_str _ -> ()
  | _ -> fail "%s: event %d: name is not a string" file i);
  (match get "cat" with
  | J_str _ -> ()
  | _ -> fail "%s: event %d: cat is not a string" file i);
  (match get "ph" with
  | J_str "X" -> ()
  | _ -> fail "%s: event %d: ph is not \"X\"" file i);
  let non_negative_int key =
    match get key with
    | J_num f when Float.is_integer f && f >= 0.0 -> ()
    | _ -> fail "%s: event %d: %s is not a non-negative integer" file i key
  in
  non_negative_int "ts";
  non_negative_int "dur";
  non_negative_int "pid";
  non_negative_int "tid"

let check_trace file =
  let doc = parse_json ~file (read_file file) in
  match field doc "traceEvents" with
  | Some (J_list events) ->
    if events = [] then fail "%s: traceEvents is empty" file;
    List.iteri (check_event ~file) events;
    Printf.printf "trace_check: %s: %d events OK\n" file (List.length events)
  | Some _ -> fail "%s: traceEvents is not an array" file
  | None -> fail "%s: no traceEvents key" file

(* `jsvm --profile` output: the attribution table header must be present
   and the profiler's total must equal the engine's (the exact-attribution
   contract, end to end through the CLI). *)
let check_profile_out file =
  let s = read_file file in
  let lines = String.split_on_char '\n' s in
  if not (List.exists (fun l -> l = "-- cycle attribution --") lines) then
    fail "%s: no cycle attribution table" file;
  match
    List.find_map
      (fun l -> Scanf.sscanf_opt l "attributed=%d of total=%d" (fun a t -> (a, t)))
      lines
  with
  | None -> fail "%s: no attributed/total line" file
  | Some (a, t) when a <> t -> fail "%s: attributed=%d but total=%d" file a t
  | Some (a, _) -> Printf.printf "trace_check: %s: attributed=%d balanced OK\n" file a

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then fail "usage: trace_check [--profile-out] FILE ...";
  let rec go profile_mode = function
    | [] -> ()
    | "--profile-out" :: rest -> go true rest
    | file :: rest ->
      (if profile_mode then check_profile_out file else check_trace file);
      go profile_mode rest
  in
  go false args
