(* Hermetic validator for the observability export artifacts, used by the
   `dune build @profile` and `@obs` gates (bin/dune) so CI needs no
   external JSON tool.

     trace_check FILE.json ...           validate Chrome trace-event files
     trace_check --profile-out FILE ...  validate `jsvm --profile` output
     trace_check --metrics-prom FILE ... validate Prometheus text exports
     trace_check --metrics-json FILE ... validate JSONL metric snapshots
     trace_check --flight FILE ...       validate flight-recorder JSONL

   A trace file must be a single JSON object {"traceEvents": [...]} whose
   events are complete ("ph":"X") with a non-empty name, non-negative
   integer ts/dur, and pid/tid fields — or flow stitches ("ph":"s"/"f")
   carrying an "id"; every flow id must have exactly one start and one
   finish, start not after finish (no dangling or double stitches). A
   profile dump must contain the attribution table and an exactly
   balanced "attributed=N of total=N" line. Exits non-zero with a message
   on the first violation. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("trace_check: " ^ s);
      exit 1)
    fmt

(* ------------------------------------------------------------------ *)
(* A minimal recursive-descent JSON reader — just enough of RFC 8259   *)
(* for trace files we emit ourselves (no surrogate-pair decoding; the   *)
(* escapes are validated and the string kept verbatim).                 *)
(* ------------------------------------------------------------------ *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

let parse_json ~file s =
  let pos = ref 0 in
  let len = String.length s in
  let error msg = fail "%s: invalid JSON at byte %d: %s" file !pos msg in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= len then error "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' ->
           Buffer.add_char buf '\\';
           Buffer.add_char buf e
         | 'u' ->
           if !pos + 4 > len then error "truncated \\u escape";
           for _ = 1 to 4 do
             (match s.[!pos] with
             | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
             | _ -> error "bad \\u escape");
             advance ()
           done;
           Buffer.add_string buf "\\u";
           Buffer.add_string buf (String.sub s (!pos - 4) 4)
         | _ -> error "bad escape character");
        go ()
      | c when Char.code c < 0x20 -> error "raw control byte in string"
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            J_obj (List.rev ((key, v) :: acc))
          | _ -> error "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_list []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            J_list (List.rev (v :: acc))
          | _ -> error "expected ',' or ']'"
        in
        elements []
      end
    | Some 't' -> J_bool (literal "true" true)
    | Some 'f' -> J_bool (literal "false" false)
    | Some 'n' -> literal "null" J_null
    | Some ('-' | '0' .. '9') -> J_num (parse_number ())
    | _ -> error "expected a value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then error "trailing garbage after document";
  v

(* ------------------------------------------------------------------ *)
(* Shape checks                                                        *)
(* ------------------------------------------------------------------ *)

let read_file file =
  let ic = try open_in_bin file with Sys_error e -> fail "%s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let field obj key =
  match obj with
  | J_obj kvs -> List.assoc_opt key kvs
  | _ -> None

(* One flow id's observed lifecycle, folded over the event list. *)
type flow_state = { f_starts : int; f_finishes : int; f_start_ts : float; f_finish_ts : float }

let check_event ~file ~flows i ev =
  let get key =
    match field ev key with
    | Some v -> v
    | None -> fail "%s: event %d: missing %S field" file i key
  in
  (match get "name" with
  | J_str "" -> fail "%s: event %d: empty name" file i
  | J_str _ -> ()
  | _ -> fail "%s: event %d: name is not a string" file i);
  (match get "cat" with
  | J_str _ -> ()
  | _ -> fail "%s: event %d: cat is not a string" file i);
  let non_negative_int key =
    match get key with
    | J_num f when Float.is_integer f && f >= 0.0 -> f
    | _ -> fail "%s: event %d: %s is not a non-negative integer" file i key
  in
  let ts = non_negative_int "ts" in
  ignore (non_negative_int "pid");
  ignore (non_negative_int "tid");
  let note_flow start =
    let id = non_negative_int "id" in
    let prev =
      match Hashtbl.find_opt flows id with
      | Some st -> st
      | None -> { f_starts = 0; f_finishes = 0; f_start_ts = 0.0; f_finish_ts = 0.0 }
    in
    Hashtbl.replace flows id
      (if start then { prev with f_starts = prev.f_starts + 1; f_start_ts = ts }
       else { prev with f_finishes = prev.f_finishes + 1; f_finish_ts = ts })
  in
  match get "ph" with
  | J_str "X" -> ignore (non_negative_int "dur")
  | J_str "s" -> note_flow true
  | J_str "f" ->
    (match field ev "bp" with
    | Some (J_str "e") -> ()
    | _ -> fail "%s: event %d: flow finish without bp:\"e\"" file i);
    note_flow false
  | _ -> fail "%s: event %d: ph is not \"X\", \"s\" or \"f\"" file i

(* Every flow id must stitch exactly once: one start, one finish, in
   order. A dangling start (a background compile whose install was never
   traced), a dangling finish, or a reused id would all render as broken
   arrows in Perfetto — fail loudly instead. *)
let check_flows ~file flows =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) flows [] in
  List.iter
    (fun id ->
      let st = Hashtbl.find flows id in
      if st.f_starts <> 1 then
        fail "%s: flow id %.0f has %d starts (want exactly 1)" file id st.f_starts;
      if st.f_finishes <> 1 then
        fail "%s: flow id %.0f has %d finishes (want exactly 1)" file id st.f_finishes;
      if st.f_start_ts > st.f_finish_ts then
        fail "%s: flow id %.0f finishes at ts=%.0f before its start at ts=%.0f" file id
          st.f_finish_ts st.f_start_ts)
    (List.sort compare ids);
  List.length ids

let check_trace file =
  let doc = parse_json ~file (read_file file) in
  match field doc "traceEvents" with
  | Some (J_list events) ->
    if events = [] then fail "%s: traceEvents is empty" file;
    let flows = Hashtbl.create 64 in
    List.iteri (check_event ~file ~flows) events;
    let nflows = check_flows ~file flows in
    Printf.printf "trace_check: %s: %d events, %d flows OK\n" file (List.length events)
      nflows
  | Some _ -> fail "%s: traceEvents is not an array" file
  | None -> fail "%s: no traceEvents key" file

(* `jsvm --profile` output: the attribution table header must be present
   and the profiler's total must equal the engine's (the exact-attribution
   contract, end to end through the CLI). *)
let check_profile_out file =
  let s = read_file file in
  let lines = String.split_on_char '\n' s in
  if not (List.exists (fun l -> l = "-- cycle attribution --") lines) then
    fail "%s: no cycle attribution table" file;
  match
    List.find_map
      (fun l -> Scanf.sscanf_opt l "attributed=%d of total=%d" (fun a t -> (a, t)))
      lines
  with
  | None -> fail "%s: no attributed/total line" file
  | Some (a, t) when a <> t -> fail "%s: attributed=%d but total=%d" file a t
  | Some (a, _) -> Printf.printf "trace_check: %s: attributed=%d balanced OK\n" file a

(* ------------------------------------------------------------------ *)
(* Metrics exports                                                     *)
(* ------------------------------------------------------------------ *)

(* Prometheus text exposition: every sample line is `name value` or
   `name{k="v",...} value`, every sample's base name is declared by a
   preceding # TYPE line (histogram samples use the _bucket/_sum/_count
   suffixes), and each histogram's bucket series is cumulative,
   non-decreasing, with the +Inf bucket equal to its _count. *)
let check_metrics_prom file =
  let s = read_file file in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  if lines = [] then fail "%s: empty metrics export" file;
  let typed = Hashtbl.create 16 in
  (* (name, labels-sans-le) -> (last cumulative le bucket, inf value) *)
  let buckets : (string * string, float * float option) Hashtbl.t = Hashtbl.create 16 in
  let counts : (string * string, float) Hashtbl.t = Hashtbl.create 16 in
  let base name =
    let strip suffix =
      if String.length name > String.length suffix
         && String.sub name (String.length name - String.length suffix) (String.length suffix)
            = suffix
      then Some (String.sub name 0 (String.length name - String.length suffix))
      else None
    in
    match (strip "_bucket", strip "_sum", strip "_count") with
    | Some b, _, _ -> b
    | _, Some b, _ | _, _, Some b ->
      if Hashtbl.mem typed b then b else name  (* _sum/_count of a histogram *)
    | _ -> name
  in
  let nsamples = ref 0 in
  List.iteri
    (fun i line ->
      let lno = i + 1 in
      if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: [ kind ] ->
          if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
            fail "%s:%d: unknown TYPE %s" file lno kind;
          Hashtbl.replace typed name kind
        | _ -> fail "%s:%d: malformed comment line (want # TYPE name kind)" file lno
      end
      else begin
        let name_part, value_part =
          match String.rindex_opt line ' ' with
          | Some sp ->
            (String.sub line 0 sp, String.sub line (sp + 1) (String.length line - sp - 1))
          | None -> fail "%s:%d: sample line without a value" file lno
        in
        let value =
          match float_of_string_opt value_part with
          | Some v -> v
          | None -> fail "%s:%d: bad sample value %S" file lno value_part
        in
        let name, labels =
          match String.index_opt name_part '{' with
          | Some b ->
            if name_part.[String.length name_part - 1] <> '}' then
              fail "%s:%d: unterminated label set" file lno;
            ( String.sub name_part 0 b,
              String.sub name_part (b + 1) (String.length name_part - b - 2) )
          | None -> (name_part, "")
        in
        if name = "" then fail "%s:%d: empty metric name" file lno;
        String.iter
          (fun c ->
            match c with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
            | _ -> fail "%s:%d: invalid character %C in metric name %s" file lno c name)
          name;
        if not (Hashtbl.mem typed (base name)) then
          fail "%s:%d: sample %s without a preceding # TYPE for %s" file lno name (base name);
        incr nsamples;
        (* Histogram bucket bookkeeping. *)
        let is_bucket =
          String.length name > 7 && String.sub name (String.length name - 7) 7 = "_bucket"
        in
        if is_bucket then begin
          let hist = String.sub name 0 (String.length name - 7) in
          let le, rest =
            let parts = String.split_on_char ',' labels in
            let les, others = List.partition (fun p -> String.length p > 3 && String.sub p 0 3 = "le=") parts in
            match les with
            | [ le ] -> (String.sub le 4 (String.length le - 5), String.concat "," others)
            | _ -> fail "%s:%d: bucket sample without exactly one le label" file lno
          in
          let key = (hist, rest) in
          let prev, _ = Option.value (Hashtbl.find_opt buckets key) ~default:(0.0, None) in
          if value < prev then
            fail "%s:%d: bucket series for %s not cumulative (%g after %g)" file lno hist
              value prev;
          Hashtbl.replace buckets key
            (value, if le = "+Inf" then Some value else None)
        end
        else if String.length name > 6 && String.sub name (String.length name - 6) 6 = "_count"
        then Hashtbl.replace counts (String.sub name 0 (String.length name - 6), labels) value
      end)
    lines;
  Hashtbl.iter
    (fun (hist, labels) (_, inf) ->
      match inf with
      | None -> fail "%s: histogram %s has no +Inf bucket" file hist
      | Some v -> (
        match Hashtbl.find_opt counts (hist, labels) with
        | Some c when c <> v ->
          fail "%s: histogram %s: +Inf bucket %g <> _count %g" file hist v c
        | Some _ -> ()
        | None -> fail "%s: histogram %s has buckets but no _count" file hist))
    buckets;
  Printf.printf "trace_check: %s: %d samples OK\n" file !nsamples

(* JSONL snapshots: every line one vs-metrics/1 object with an integer
   cycle and a metrics array. *)
let check_metrics_json file =
  let s = read_file file in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  if lines = [] then fail "%s: empty snapshot file" file;
  List.iteri
    (fun i line ->
      let lno = i + 1 in
      let doc = parse_json ~file:(Printf.sprintf "%s:%d" file lno) line in
      (match field doc "schema" with
      | Some (J_str "vs-metrics/1") -> ()
      | _ -> fail "%s:%d: schema is not \"vs-metrics/1\"" file lno);
      (match field doc "cycle" with
      | Some (J_num f) when Float.is_integer f && f >= 0.0 -> ()
      | _ -> fail "%s:%d: cycle is not a non-negative integer" file lno);
      match field doc "metrics" with
      | Some (J_list _) -> ()
      | _ -> fail "%s:%d: metrics is not an array" file lno)
    lines;
  Printf.printf "trace_check: %s: %d snapshots OK\n" file (List.length lines)

(* Flight-recorder JSONL: vs-flight/1 header objects, each followed by
   exactly its declared number of entry objects. *)
let check_flight file =
  let s = read_file file in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  if lines = [] then fail "%s: empty flight-recorder file" file;
  let ndumps = ref 0 in
  let remaining = ref 0 in
  List.iteri
    (fun i line ->
      let lno = i + 1 in
      let doc = parse_json ~file:(Printf.sprintf "%s:%d" file lno) line in
      if !remaining > 0 then begin
        (match field doc "event" with
        | Some (J_obj _) -> ()
        | _ -> fail "%s:%d: flight entry without an event object" file lno);
        decr remaining
      end
      else begin
        (match field doc "schema" with
        | Some (J_str "vs-flight/1") -> ()
        | _ -> fail "%s:%d: expected a vs-flight/1 dump header" file lno);
        (match field doc "trigger" with
        | Some (J_str (("fault" | "deadline" | "quarantine" | "deopt-storm" | "end-of-run") )) -> ()
        | Some (J_str t) -> fail "%s:%d: unknown trigger %S" file lno t
        | _ -> fail "%s:%d: header without a trigger" file lno);
        (match field doc "entries" with
        | Some (J_num f) when Float.is_integer f && f >= 0.0 ->
          remaining := int_of_float f
        | _ -> fail "%s:%d: header without an entry count" file lno);
        incr ndumps
      end)
    lines;
  if !remaining > 0 then fail "%s: truncated final dump (%d entries missing)" file !remaining;
  Printf.printf "trace_check: %s: %d dumps OK\n" file !ndumps

type mode = M_trace | M_profile | M_prom | M_json | M_flight

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then
    fail "usage: trace_check [--profile-out|--metrics-prom|--metrics-json|--flight] FILE ...";
  let rec go mode = function
    | [] -> ()
    | "--profile-out" :: rest -> go M_profile rest
    | "--metrics-prom" :: rest -> go M_prom rest
    | "--metrics-json" :: rest -> go M_json rest
    | "--flight" :: rest -> go M_flight rest
    | file :: rest ->
      (match mode with
      | M_trace -> check_trace file
      | M_profile -> check_profile_out file
      | M_prom -> check_metrics_prom file
      | M_json -> check_metrics_json file
      | M_flight -> check_flight file);
      go mode rest
  in
  go M_trace args
