(* The paper's Section 3 running example, replayed pass by pass.

   Prints the MIR of `map` exactly along the progression of Figures 6-8:
   the generic graph, parameter specialization (7a), constant propagation
   (7b), loop inversion (7c), dead-code elimination (8a), bounds-check
   elimination (8b, with the ablation that lifts the store-conservative
   rule so the elimination actually fires, as in the figure), and closure
   inlining (8c). Finally the native code that the backend emits.

     dune exec examples/map_inc.exe *)

open Runtime

let source =
  {|
function inc(x) { return x + 1; }
function map(s, b, n, f) {
  var i = b;
  while (i < n) { s[i] = f(s[i]); i++; }
  return s;
}
print(map(new Array(1, 2, 3, 4, 5), 2, 5, inc));
|}

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let program = Bytecode.Compile.program_of_source source in
  let map_fn =
    Array.to_list program.Bytecode.Program.funcs
    |> List.find (fun (f : Bytecode.Program.func) -> f.Bytecode.Program.name = "map")
  in
  let inc_fn =
    Array.to_list program.Bytecode.Program.funcs
    |> List.find (fun (f : Bytecode.Program.func) -> f.Bytecode.Program.name = "inc")
  in
  (* The runtime values of the call in the driver: the array 0xFF3D8800 of
     the paper becomes an actual OCaml-heap array baked by identity. *)
  let arr = Value.Arr (Value.arr_of_list (List.init 5 (fun i -> Value.Int (i + 1)))) in
  let inc_closure =
    Value.Closure { Value.fid = inc_fn.Bytecode.Program.fid; env = [||]; cid = Value.fresh_id () }
  in
  let spec_args = [| arr; Value.Int 2; Value.Int 5; inc_closure |] in

  section "Figure 6: the graph IonMonkey builds (with type feedback)";
  let tags = Value.[| Some Tag_array; Some Tag_int; Some Tag_int; Some Tag_function |] in
  let generic = Builder.build ~program ~func:map_fn ~arg_tags:tags () in
  Typer.run generic;
  print_string (Mir.to_string generic);

  section "Figure 7(a): parameter specialization (entry and OSR blocks)";
  let osr =
    {
      Builder.osr_pc = 2;
      osr_args = spec_args;
      osr_locals = [| Value.Int 2 |];
      osr_specialize = true;
      osr_bake_locals = true;
    }
  in
  let f = Builder.build ~program ~func:map_fn ~spec_args ~osr () in
  Typer.run f;
  print_string (Mir.to_string f);

  section "Figure 7(b): constant propagation";
  let folded = Constprop.run f in
  Printf.printf "(%d instructions folded)\n" folded;
  print_string (Mir.to_string f);

  section "Figure 7(c): loop inversion";
  ignore (Gvn.run f);
  let inverted = Loop_inversion.run f in
  Printf.printf "(%d loop inverted)\n" inverted;
  print_string (Mir.to_string f);

  section "Figure 8(a): dead-code elimination removes the wrapping conditional";
  let dce = Dce.run f in
  Printf.printf "(%d branches folded, %d blocks removed, %d instructions removed)\n"
    dce.Dce.branches_folded dce.Dce.blocks_removed dce.Dce.instrs_removed;
  print_string (Mir.to_string f);

  section "Figure 8(b): array-bounds-check elimination (precise-alias ablation)";
  let bce = Bounds_check.run ~precise_alias:true f in
  Printf.printf "(%d bounds checks removed)\n" bce.Bounds_check.bounds_removed;
  print_string (Mir.to_string f);

  section "Figure 8(c): the closure argument inlined";
  let inlined = Inline.run ~program f in
  Typer.run f;
  ignore (Gvn.run f);
  ignore (Constprop.run f);
  ignore (Dce.run f);
  Printf.printf "(%d call site inlined)\n" inlined;
  Verify.run f;
  print_string (Mir.to_string f);

  section "Native code (after lowering and linear-scan allocation)";
  let code, _ = Regalloc.run (Lower.run f) in
  print_string (Code.to_string code);

  section "And the program still runs";
  ignore (Engine.run_source (Engine.default_config ~opt:Pipeline.all_on ()) source)
