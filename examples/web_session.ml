(* Replay a synthetic web-session benchmark (the Richards-et-al-style
   auto-built site program used for the paper's code-size study) under the
   baseline and the specializing engine, and report per-function outcomes.

     dune exec examples/web_session.exe *)

let () =
  let profile = Web.facebook in
  let source = Web.synthetic_site ~seed:2013 profile in
  Printf.printf "site: %s (%d generated functions)\n\n" profile.Web.site_name
    profile.Web.site_functions;
  let base, spec =
    Runtime.Builtins.with_print_hook ignore (fun () ->
        let base = Engine.run_source (Engine.default_config ()) source in
        let spec = Engine.run_source (Engine.default_config ~opt:Pipeline.all_on ()) source in
        (base, spec))
  in
  Printf.printf "%-14s %10s %10s\n" "" "baseline" "specialized";
  Printf.printf "%-14s %10d %10d\n" "total cycles" base.Engine.total_cycles
    spec.Engine.total_cycles;
  Printf.printf "%-14s %10d %10d\n" "compilations" base.Engine.compilations
    spec.Engine.compilations;
  let code_size r =
    List.fold_left
      (fun acc (f : Engine.func_report) ->
        acc
        + List.fold_left (fun m (_, s) -> if m = 0 then s else min m s) 0 f.Engine.fr_sizes)
      0 r.Engine.functions
  in
  Printf.printf "%-14s %10d %10d\n\n" "code size" (code_size base) (code_size spec);
  Printf.printf "per-function outcomes under specialization:\n";
  let hits = ref 0 and deopts = ref 0 in
  List.iter
    (fun (f : Engine.func_report) ->
      if f.Engine.fr_was_specialized then
        if f.Engine.fr_deoptimized then incr deopts else incr hits)
    spec.Engine.functions;
  Printf.printf "  successfully specialized: %d\n" !hits;
  Printf.printf "  deoptimized             : %d\n" !deopts;
  Printf.printf
    "\n(the profile's varied fraction %.0f%% drives the deoptimization rate,\n\
    \ as the paper observed across google/facebook/twitter)\n"
    (100.0 *. profile.Web.varied_fraction)
