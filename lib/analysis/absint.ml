(* Abstract interpretation over the MIR CFG.

   A fixpoint analysis on the product lattice

       constancy  ×  integer intervals  ×  type tags

   seeded at function entry from the specialization key: baked-in arguments
   enter the analysis as precise abstract constants, so everything
   specialization exposes (constant arrays, constant trip counts, constant
   tags) flows through joins and loops instead of only through syntactic
   constant propagation.

   The lattice, per SSA def:
     - [Bot]: no value reaches the def (unreachable, or dominated by a
       guard that always bails).
     - [Const v]: exactly the runtime value [v].
     - [Vals {tags; range}]: the value's runtime tag is within the [tags]
       bitmask; when the value is an Int, it lies within [range]
       ([None] = unconstrained).

   Widening applies at loop-header phis (targets of retreating edges in
   RPO): a growing interval bound jumps to the int32 extreme after one
   step, so ascending iteration terminates; a bounded descending (narrowing)
   pass afterwards recovers precision lost to widening where the body
   supports it. Reachability is tracked SCCP-style through executable
   edges, so constant branches prune paths exactly like Sccp/Dce do.

   On top of the per-def state the analysis records flow-sensitive
   refinements that are applied at query time:
     - edge facts from comparisons controlling branches (numeric bounds,
       and the symbolic [i < a.length] fact for the canonical loop shape);
     - dominating-guard facts (a passed [Type_barrier]/[Check_array] pins
       the operand's tag; a passed [Bounds_check] establishes the bounds
       fact for the same index/array pair).

   Consumers ask [prove]: can this guard, at this program point, ever
   fail? Guard elision ([Opt.Guard_elim]) deletes only [Redundant] guards;
   the translation-validation sandwich additionally accepts [Unreachable]
   (a guard removed from dead code is vacuously sound). *)

open Runtime

(* ------------------------------------------------------------------ *)
(* Lattice                                                             *)
(* ------------------------------------------------------------------ *)

let tag_bit = function
  | Value.Tag_undefined -> 1
  | Value.Tag_null -> 2
  | Value.Tag_bool -> 4
  | Value.Tag_int -> 8
  | Value.Tag_double -> 16
  | Value.Tag_string -> 32
  | Value.Tag_object -> 64
  | Value.Tag_array -> 128
  | Value.Tag_function -> 256

let all_tags = 511
let t_int = 8
let t_double = 16
let t_numeric = t_int lor t_double
let t_bool = 4
let t_string = 32
let t_array = 128
let t_object = 64
let t_function = 256

type itv = { lo : int; hi : int }

type aval = Bot | Const of Value.t | Vals of { tags : int; range : itv option }

let top = Vals { tags = all_tags; range = None }
let range_of_const = function Value.Int n -> Some { lo = n; hi = n } | _ -> None

(* Normalizing constructor: an empty interval removes Int from the possible
   tags; a pinned singleton interval with only Int possible is a constant;
   no possible tags is bottom. *)
let vals tags range =
  let range = if tags land t_int = 0 then None else range in
  match range with
  | Some r when r.lo > r.hi ->
    let tags = tags land lnot t_int in
    if tags = 0 then Bot else Vals { tags; range = None }
  | Some r when r.lo = r.hi && tags = t_int -> Const (Value.Int r.lo)
  | _ -> if tags = 0 then Bot else Vals { tags; range }

let tags_of = function
  | Bot -> 0
  | Const v -> tag_bit (Value.tag_of v)
  | Vals { tags; _ } -> tags

let parts = function
  | Bot -> (0, None)
  | Const v -> (tag_bit (Value.tag_of v), range_of_const v)
  | Vals { tags; range } -> (tags, range)

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Const x, Const y -> Value.same_value x y
  | Vals x, Vals y -> x.tags = y.tags && x.range = y.range
  | (Bot | Const _ | Vals _), _ -> false

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Const x, Const y when Value.same_value x y -> a
  | _ ->
    let ta, ra = parts a and tb, rb = parts b in
    let range =
      match (ta land t_int <> 0, tb land t_int <> 0) with
      | false, _ -> rb
      | _, false -> ra
      | true, true -> (
        match (ra, rb) with
        | Some x, Some y -> Some { lo = min x.lo y.lo; hi = max x.hi y.hi }
        | _ -> None)
    in
    vals (ta lor tb) range

(* Widening: a bound that grew since [old] jumps to its int32 extreme, so
   each def widens at most twice before its interval is stable. *)
let widen old nv =
  if equal old nv then old
  else
    let _, old_r = parts old in
    match nv with
    | Vals { tags; range = Some r } -> (
      match old_r with
      | Some o ->
        let lo = if r.lo < o.lo then Value.int32_min else r.lo in
        let hi = if r.hi > o.hi then Value.int32_max else r.hi in
        vals tags (Some { lo; hi })
      | None -> nv)
    | _ -> nv

let meet_tags av mask =
  match av with
  | Bot -> Bot
  | Const v -> if tag_bit (Value.tag_of v) land mask <> 0 then av else Bot
  | Vals { tags; range } -> vals (tags land mask) range

let meet_range av (r : itv) =
  match av with
  | Bot -> Bot
  | Const (Value.Int n) -> if n >= r.lo && n <= r.hi then av else Bot
  | Const _ -> av
  | Vals { tags; range } ->
    if tags land t_int = 0 then av
    else
      let rr =
        match range with
        | None -> r
        | Some o -> { lo = max o.lo r.lo; hi = min o.hi r.hi }
      in
      vals tags (Some rr)

let int_range av =
  match av with
  | Const (Value.Int n) -> Some { lo = n; hi = n }
  | Vals { tags; range = Some r } when tags land t_int <> 0 -> Some r
  | _ -> None

let tags_within av mask =
  let t = tags_of av in
  t <> 0 && t land lnot mask = 0

let to_string av =
  match av with
  | Bot -> "bot"
  | Const v -> Printf.sprintf "const:%s" (Value.tag_to_string (Value.tag_of v))
  | Vals { tags; range } ->
    let names = ref [] in
    List.iter
      (fun (m, n) -> if tags land m <> 0 then names := n :: !names)
      [
        (256, "fun"); (128, "arr"); (64, "obj"); (32, "str"); (16, "dbl");
        (8, "int"); (4, "bool"); (2, "null"); (1, "undef");
      ];
    let r =
      match range with
      | Some { lo; hi } -> Printf.sprintf "[%d,%d]" lo hi
      | None -> ""
    in
    Printf.sprintf "{%s}%s" (String.concat "|" !names) r

(* ------------------------------------------------------------------ *)
(* Specialization-key entry state                                      *)
(* ------------------------------------------------------------------ *)

let spec_value (f : Mir.func) i =
  match f.Mir.specialized_args with
  | None -> None
  | Some args ->
    let masked =
      match f.Mir.specialized_mask with
      | None -> true
      | Some m -> i < Array.length m && m.(i)
    in
    if masked && i < Array.length args then Some args.(i) else None

(* Tag-keyed (widened polyvariant) version: the cache probe compares the
   runtime tag of every argument against the key, so position [i] is known
   to carry [specialized_tags.(i)] — no value, no range. *)
let spec_tag (f : Mir.func) i =
  match f.Mir.specialized_tags with
  | Some tags when i < Array.length tags -> Some tags.(i)
  | _ -> None

(* The abstract entry state the argument cache key implies: burned-in
   arguments are precise constants, tag-keyed arguments are tag-constrained
   unknowns, everything else is unknown. *)
let entry_state (f : Mir.func) =
  let arity = f.Mir.source.Bytecode.Program.arity in
  Array.init arity (fun i ->
      match spec_value f i with
      | Some v -> Const v
      | None -> (
        match spec_tag f i with
        | Some tag -> vals (tag_bit tag) None
        | None -> top))

(* ------------------------------------------------------------------ *)
(* Analysis result                                                     *)
(* ------------------------------------------------------------------ *)

type fact_kind =
  | F_tag of Mir.def * int        (* canonical operand satisfies tag mask *)
  | F_bounds of Mir.def * Mir.def (* canonical index in-bounds for array *)

type guard_site = { g_def : Mir.def; g_bid : int; g_idx : int; g_fact : fact_kind }

type edge_fact = {
  ef_def : Mir.def;               (* canonical def the fact refines *)
  ef_range : itv option;          (* numeric constraint when it is an Int *)
  ef_below_len : Mir.def option;  (* value < length(canonical array def) *)
}

type result = {
  r_vals : (Mir.def, aval) Hashtbl.t;
  r_exec : (int, unit) Hashtbl.t;
  r_idom : (int, int) Hashtbl.t;
  r_canon : (Mir.def, Mir.def) Hashtbl.t;
  r_guards : guard_site list;
  r_edge_facts : (int * int, edge_fact list) Hashtbl.t;
  r_single_pred : (int, int) Hashtbl.t; (* block -> its unique predecessor *)
  r_addend : (Mir.def, Mir.def * int) Hashtbl.t; (* canon d = canon x + c *)
  r_shrinkers : bool; (* some instruction may shrink an array's length *)
}

let value_of r d = Option.value (Hashtbl.find_opt r.r_vals d) ~default:top
let block_executable r bid = Hashtbl.mem r.r_exec bid
let canonical r d = Option.value (Hashtbl.find_opt r.r_canon d) ~default:d

let dominates_blk r a b =
  let rec walk x =
    if x = a then true
    else match Hashtbl.find_opt r.r_idom x with None -> false | Some p -> walk p
  in
  walk b

(* Does position (b1, i1) strictly dominate position (b2, i2)? Positions are
   (block, index-in-body). *)
let pos_dominates r (b1, i1) (b2, i2) =
  if b1 = b2 then i1 < i2 else dominates_blk r b1 b2

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)
(* ------------------------------------------------------------------ *)

let abs_binop op a b (mode : Mir.num_mode) =
  match (a, b) with
  | Const va, Const vb -> Const (Ops.binop op va vb)
  | Bot, _ | _, Bot -> Bot
  | _ -> (
    match op with
    | Ops.Bit_and | Ops.Bit_or | Ops.Bit_xor | Ops.Shl | Ops.Shr ->
      vals t_int None
    | Ops.Add | Ops.Sub | Ops.Mul -> (
      match mode with
      | Mir.Mode_int | Mir.Mode_int_nocheck ->
        (* Checked int arithmetic bails outside the int32 range (and the
           nocheck mode was proven exact), so the result is an int32 and
           interval arithmetic clamps soundly. *)
        let r =
          match (int_range a, int_range b) with
          | Some x, Some y ->
            let lo, hi =
              match op with
              | Ops.Add -> (x.lo + y.lo, x.hi + y.hi)
              | Ops.Sub -> (x.lo - y.hi, x.hi - y.lo)
              | _ ->
                let ps = [ x.lo * y.lo; x.lo * y.hi; x.hi * y.lo; x.hi * y.hi ] in
                (List.fold_left min max_int ps, List.fold_left max min_int ps)
            in
            Some { lo = max lo Value.int32_min; hi = min hi Value.int32_max }
          | _ -> None
        in
        vals t_int r
      | Mir.Mode_double -> vals t_numeric None
      | Mir.Mode_generic -> top (* generic Add may concatenate strings *))
    | Ops.Mod | Ops.Ushr -> (
      match mode with
      | Mir.Mode_int | Mir.Mode_int_nocheck -> vals t_int None
      | Mir.Mode_double -> vals t_numeric None
      | Mir.Mode_generic -> top)
    | Ops.Div -> (
      match mode with
      | Mir.Mode_int | Mir.Mode_int_nocheck | Mir.Mode_double -> vals t_numeric None
      | Mir.Mode_generic -> top))

let abs_unop op a =
  match a with
  | Const va -> Const (Ops.unop op va)
  | Bot -> Bot
  | _ -> (
    match op with
    | Ops.Not -> vals t_bool None
    | Ops.Bit_not -> vals t_int None
    | Ops.Typeof -> vals t_string None
    | Ops.Neg -> vals t_numeric None
    | Ops.To_number -> if tags_within a t_int then a else vals t_numeric None)

let analyze ?(precise_alias = false) (f : Mir.func) =
  let vals_tbl : (Mir.def, aval) Hashtbl.t = Hashtbl.create 64 in
  let lookup d = Option.value (Hashtbl.find_opt vals_tbl d) ~default:Bot in
  let instr_of d = Hashtbl.find_opt f.Mir.defs d in
  let exec_blocks = Hashtbl.create 16 in
  let exec_edges = Hashtbl.create 32 in
  let doms = Cfg.dominators f in
  let rpo = Mir.reverse_postorder f in
  let idom_tbl = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      match Cfg.immediate_dominator doms bid with
      | Some p -> Hashtbl.replace idom_tbl bid p
      | None -> ())
    rpo;
  (* Loop headers: targets of retreating edges in RPO. Widening there. *)
  let rpo_index = Hashtbl.create 16 in
  List.iteri (fun i b -> Hashtbl.replace rpo_index b i) rpo;
  let idx_of b = Option.value (Hashtbl.find_opt rpo_index b) ~default:max_int in
  let widen_at = Hashtbl.create 4 in
  List.iter
    (fun bid ->
      List.iter
        (fun s -> if idx_of s <= idx_of bid then Hashtbl.replace widen_at s ())
        (Mir.successors (Mir.block f bid)))
    rpo;
  (* def -> blocks that must re-evaluate when it changes. *)
  let users : (Mir.def, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_user d bid =
    match Hashtbl.find_opt users d with
    | Some l -> if not (List.mem bid !l) then l := bid :: !l
    | None -> Hashtbl.replace users d (ref [ bid ])
  in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      let scan (i : Mir.instr) =
        List.iter (fun op -> add_user op bid) (Mir.instr_operands i.Mir.kind)
      in
      List.iter scan b.Mir.phis;
      List.iter scan b.Mir.body;
      match b.Mir.term with Mir.Branch (c, _, _) -> add_user c bid | _ -> ())
    f.Mir.block_order;
  let work = Queue.create () in
  let queued = Hashtbl.create 16 in
  let enqueue bid =
    if Hashtbl.mem exec_blocks bid && not (Hashtbl.mem queued bid) then begin
      Hashtbl.replace queued bid ();
      Queue.add bid work
    end
  in
  let mark_edge p s =
    if not (Hashtbl.mem exec_edges (p, s)) then begin
      Hashtbl.replace exec_edges (p, s) ();
      if not (Hashtbl.mem exec_blocks s) then Hashtbl.replace exec_blocks s ();
      enqueue s
    end
  in
  let transfer (i : Mir.instr) =
    match i.Mir.kind with
    | Mir.Constant v -> Const v
    | Mir.Parameter idx -> (
      match spec_value f idx with
      | Some v -> Const v
      | None -> (
        match spec_tag f idx with
        | Some tag -> vals (tag_bit tag) None
        | None -> top))
    | Mir.Osr_value _ -> top
    | Mir.Phi _ -> assert false (* handled per-edge in eval_block *)
    | Mir.Box a -> lookup a
    | Mir.Type_barrier (a, tag) -> meet_tags (lookup a) (tag_bit tag)
    | Mir.Check_array a -> meet_tags (lookup a) t_array
    | Mir.Bounds_check (idx, _) ->
      meet_range (meet_tags (lookup idx) t_int) { lo = 0; hi = Value.int32_max }
    | Mir.Binop (op, a, b, mode) -> abs_binop op (lookup a) (lookup b) mode
    | Mir.Cmp (op, a, b) -> (
      match (lookup a, lookup b) with
      | Const va, Const vb -> Const (Ops.cmp op va vb)
      | Bot, _ | _, Bot -> Bot
      | _ -> vals t_bool None)
    | Mir.Unop (op, a) -> abs_unop op (lookup a)
    | Mir.To_bool a -> (
      match lookup a with
      | Const va -> Const (Value.Bool (Convert.to_boolean va))
      | Bot -> Bot
      | av ->
        if tags_within av (tag_bit Value.Tag_undefined lor tag_bit Value.Tag_null)
        then Const (Value.Bool false)
        else vals t_bool None)
    | Mir.String_length a -> (
      match lookup a with
      | Const (Value.Str s) -> Const (Value.Int (String.length s))
      | Bot -> Bot
      | _ -> vals t_int (Some { lo = 0; hi = Value.int32_max }))
    | Mir.Array_length _ -> vals t_int (Some { lo = 0; hi = Value.int32_max })
    | Mir.Call_native (name, args) when Builtins.is_pure name -> (
      let cs = Array.map (fun d -> match lookup d with Const v -> Some v | _ -> None) args in
      if Array.for_all Option.is_some cs then
        try Const (Builtins.call name (Array.map Option.get cs)) with _ -> top
      else top)
    | Mir.New_array _ -> vals t_array None
    | Mir.New_object _ -> vals t_object None
    | Mir.Make_closure _ -> vals t_function None
    | Mir.Load_elem _ | Mir.Elem_generic _ | Mir.Load_prop _ | Mir.Call _
    | Mir.Call_known _ | Mir.Call_native _ | Mir.Method_call _ | Mir.Construct _
    | Mir.Get_global _ | Mir.Get_cell _ | Mir.Get_upval _ | Mir.Load_captured _
    | Mir.Store_elem _ | Mir.Store_elem_generic _ | Mir.Store_prop _
    | Mir.Set_global _ | Mir.Set_cell _ | Mir.Set_upval _ | Mir.Store_captured _ ->
      top
  in
  let truthiness av =
    match av with
    | Const v -> Some (Convert.to_boolean v)
    | _ -> None
  in
  (* [narrowing]: recompute directly (no join with the previous state, no
     widening); the state stays above the least fixpoint because the
     transfer is monotone. *)
  let eval_block ~narrowing bid =
    let b = Mir.block f bid in
    let changed = ref [] in
    let update (i : Mir.instr) fresh =
      let cur = lookup i.Mir.def in
      let nv =
        if narrowing then fresh
        else
          let j = join cur fresh in
          if Hashtbl.mem widen_at bid &&
             (match i.Mir.kind with Mir.Phi _ -> true | _ -> false)
          then widen cur j
          else j
      in
      if not (equal cur nv) then begin
        Hashtbl.replace vals_tbl i.Mir.def nv;
        changed := i.Mir.def :: !changed
      end
    in
    let preds = Array.of_list b.Mir.preds in
    List.iter
      (fun (phi : Mir.instr) ->
        match phi.Mir.kind with
        | Mir.Phi ops ->
          let v = ref Bot in
          Array.iteri
            (fun k op ->
              if k < Array.length preds && Hashtbl.mem exec_edges (preds.(k), bid)
              then v := join !v (lookup op))
            ops;
          update phi !v
        | _ -> update phi (transfer phi))
      b.Mir.phis;
    List.iter (fun (i : Mir.instr) -> update i (transfer i)) b.Mir.body;
    (match b.Mir.term with
    | Mir.Goto t -> mark_edge bid t
    | Mir.Branch (c, t, e) -> (
      match truthiness (lookup c) with
      | Some true -> mark_edge bid t
      | Some false -> mark_edge bid e
      | None -> (
        match lookup c with
        | Bot -> () (* condition unreachable: successors stay unmarked *)
        | _ ->
          mark_edge bid t;
          mark_edge bid e))
    | Mir.Return _ | Mir.Unreachable -> ());
    !changed
  in
  List.iter
    (fun e ->
      Hashtbl.replace exec_blocks e ();
      enqueue e)
    (Mir.entry_blocks f);
  let steps = ref 0 in
  let budget = 64 * (1 + Mir.all_instr_count f) in
  let overflowed = ref false in
  while not (Queue.is_empty work) && not !overflowed do
    incr steps;
    if !steps > budget then overflowed := true
    else begin
      let bid = Queue.pop work in
      Hashtbl.remove queued bid;
      let changed = eval_block ~narrowing:false bid in
      List.iter
        (fun d ->
          match Hashtbl.find_opt users d with
          | Some l -> List.iter enqueue !l
          | None -> ())
        changed
    end
  done;
  if !overflowed then begin
    (* Emergency degrade (should be unreachable: widening bounds the chain
       height): force everything to the conservative state. *)
    Mir.iter_instrs f (fun i -> Hashtbl.replace vals_tbl i.Mir.def top);
    List.iter
      (fun bid ->
        Hashtbl.replace exec_blocks bid ();
        List.iter
          (fun s -> Hashtbl.replace exec_edges (bid, s) ())
          (Mir.successors (Mir.block f bid)))
      f.Mir.block_order
  end
  else begin
    (* One descending (narrowing) pass in RPO over executable blocks. *)
    Queue.clear work;
    Hashtbl.reset queued;
    List.iter
      (fun bid ->
        if Hashtbl.mem exec_blocks bid then ignore (eval_block ~narrowing:true bid))
      rpo
  end;
  (* ---- post-fixpoint: canonicalization, facts ---- *)
  let chase_tbl = Hashtbl.create 64 in
  let rec chase fuel d =
    match Hashtbl.find_opt chase_tbl d with
    | Some c -> c
    | None ->
      let c =
        if fuel = 0 then d
        else
          match instr_of d with
          | None -> d
          | Some i -> (
            match i.Mir.kind with
            | Mir.Type_barrier (a, _) | Mir.Check_array a | Mir.Box a ->
              chase (fuel - 1) a
            | Mir.Bounds_check (idx, _) -> chase (fuel - 1) idx
            | Mir.Unop (Ops.To_number, a) when tags_within (lookup a) t_int ->
              chase (fuel - 1) a
            | _ -> d)
      in
      Hashtbl.replace chase_tbl d c;
      c
  in
  let chase d = chase 64 d in
  (* Defs with the same [Const] abstract value collapse to one
     representative, keyed the way GVN numbers constants (heap values by
     identity, doubles by bits, other primitives by tag + display), so the
     guard facts below survive GVN's constant dedup: a Bounds_check whose
     duplicate (index, array) constants GVN resolved away still matches
     the dominating guard's fact. The first def canonicalized wins —
     [iter_instrs] order, hence deterministic. *)
  let const_key v =
    match v with
    | Value.Obj o -> Printf.sprintf "obj%d" o.Value.oid
    | Value.Arr a -> Printf.sprintf "arr%d" a.Value.aid
    | Value.Closure c -> Printf.sprintf "clo%d" c.Value.cid
    | Value.Double fl -> Printf.sprintf "d%Lx" (Int64.bits_of_float fl)
    | Value.Undefined | Value.Null | Value.Bool _ | Value.Int _ | Value.Str _
    | Value.Native_fun _ ->
      Printf.sprintf "%s:%s"
        (Value.tag_to_string (Value.tag_of v))
        (Value.to_display_string v)
  in
  let const_rep = Hashtbl.create 32 in
  let canon_tbl = Hashtbl.create 64 in
  let canon d =
    match Hashtbl.find_opt canon_tbl d with
    | Some c -> c
    | None ->
      let c = chase d in
      let c =
        match lookup c with
        | Const v -> (
          let k = const_key v in
          match Hashtbl.find_opt const_rep k with
          | Some r -> r
          | None ->
            Hashtbl.add const_rep k c;
            c)
        | _ -> c
      in
      Hashtbl.replace canon_tbl d c;
      c
  in
  Mir.iter_instrs f (fun i -> ignore (canon i.Mir.def));
  (* One-level linear relation: canon d = canon x + c (checked int step). *)
  let addend = Hashtbl.create 16 in
  Mir.iter_instrs f (fun i ->
      match i.Mir.kind with
      | Mir.Binop (Ops.Add, a, b, (Mir.Mode_int | Mir.Mode_int_nocheck)) -> (
        let const_side d = match lookup (canon d) with
          | Const (Value.Int n) -> Some n
          | _ -> (match lookup d with Const (Value.Int n) -> Some n | _ -> None)
        in
        match (const_side b, const_side a) with
        | Some c, _ -> Hashtbl.replace addend (canon i.Mir.def) (canon a, c)
        | _, Some c -> Hashtbl.replace addend (canon i.Mir.def) (canon b, c)
        | None, None -> ())
      | _ -> ());
  (* Guard sites (facts established once the guard passes). *)
  let guards = ref [] in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      List.iteri
        (fun idx (i : Mir.instr) ->
          let site fact =
            guards := { g_def = i.Mir.def; g_bid = bid; g_idx = idx; g_fact = fact } :: !guards
          in
          match i.Mir.kind with
          | Mir.Type_barrier (a, tag) -> site (F_tag (canon a, tag_bit tag))
          | Mir.Check_array a -> site (F_tag (canon a, t_array))
          | Mir.Bounds_check (idx_d, arr) -> site (F_bounds (canon idx_d, canon arr))
          | _ -> ())
        b.Mir.body)
    f.Mir.block_order;
  (* Edge facts from branch comparisons, recorded on single-pred targets
     (there, edge dominance coincides with block dominance). *)
  let edge_facts = Hashtbl.create 16 in
  let single_pred = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      match b.Mir.preds with
      | [ p ] -> Hashtbl.replace single_pred bid p
      | _ -> ())
    f.Mir.block_order;
  let strip_len d =
    (* Array_length through an optional To_number wrapper. *)
    let d' =
      match instr_of d with
      | Some { Mir.kind = Mir.Unop (Ops.To_number, x); _ } -> x
      | _ -> d
    in
    match instr_of d' with
    | Some { Mir.kind = Mir.Array_length a; _ } -> Some (canon a)
    | _ -> None
  in
  let rec cond_root fuel d sense =
    if fuel = 0 then (d, sense)
    else
      match instr_of d with
      | Some { Mir.kind = Mir.To_bool x; _ } -> cond_root (fuel - 1) x sense
      | Some { Mir.kind = Mir.Unop (Ops.Not, x); _ } -> cond_root (fuel - 1) x (not sense)
      | _ -> (d, sense)
  in
  let add_edge_fact p s fact =
    if Hashtbl.find_opt single_pred s = Some p then begin
      let cur = Option.value (Hashtbl.find_opt edge_facts (p, s)) ~default:[] in
      Hashtbl.replace edge_facts (p, s) (fact :: cur)
    end
  in
  let cmp_facts op x y ~holds =
    (* Facts valid when [x op y] evaluates to [holds], for int-tagged x/y. *)
    let facts = ref [] in
    let xr = int_range (lookup x) and yr = int_range (lookup y) in
    let x_int = tags_within (lookup x) t_int and y_int = tags_within (lookup y) t_int in
    let bound_hi d v = facts := { ef_def = canon d; ef_range = Some { lo = Value.int32_min; hi = v }; ef_below_len = None } :: !facts in
    let bound_lo d v = facts := { ef_def = canon d; ef_range = Some { lo = v; hi = Value.int32_max }; ef_below_len = None } :: !facts in
    let sat_plus v k = if v > Value.int32_max - 1_000_000 then v else v + k in
    (match (op, holds) with
    | Ops.Lt, true | Ops.Ge, false ->
      (* x < y *)
      if x_int && y_int then begin
        (match yr with Some r -> bound_hi x (r.hi - 1) | None -> ());
        (match xr with Some r -> bound_lo y (sat_plus r.lo 1) | None -> ())
      end;
      if x_int then
        (match strip_len y with
        | Some arr -> facts := { ef_def = canon x; ef_range = None; ef_below_len = Some arr } :: !facts
        | None -> ())
    | Ops.Le, true | Ops.Gt, false ->
      if x_int && y_int then begin
        (match yr with Some r -> bound_hi x r.hi | None -> ());
        (match xr with Some r -> bound_lo y r.lo | None -> ())
      end
    | Ops.Gt, true | Ops.Le, false ->
      (* x > y *)
      if x_int && y_int then begin
        (match yr with Some r -> bound_lo x (sat_plus r.lo 1) | None -> ());
        (match xr with Some r -> bound_hi y (r.hi - 1) | None -> ())
      end;
      if y_int then
        (match strip_len x with
        | Some arr -> facts := { ef_def = canon y; ef_range = None; ef_below_len = Some arr } :: !facts
        | None -> ())
    | Ops.Ge, true | Ops.Lt, false ->
      if x_int && y_int then begin
        (match yr with Some r -> bound_lo x r.lo | None -> ());
        (match xr with Some r -> bound_hi y r.hi | None -> ())
      end
    | (Ops.Eq | Ops.Strict_eq), true | (Ops.Neq | Ops.Strict_neq), false ->
      if x_int && y_int then begin
        (match yr with
        | Some r -> facts := { ef_def = canon x; ef_range = Some r; ef_below_len = None } :: !facts
        | None -> ());
        (match xr with
        | Some r -> facts := { ef_def = canon y; ef_range = Some r; ef_below_len = None } :: !facts
        | None -> ())
      end
    | (Ops.Eq | Ops.Strict_eq), false | (Ops.Neq | Ops.Strict_neq), true -> ());
    !facts
  in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      match b.Mir.term with
      | Mir.Branch (c, t, e) when t <> e -> (
        let root, sense = cond_root 4 c true in
        match instr_of root with
        | Some { Mir.kind = Mir.Cmp (op, x, y); _ } ->
          List.iter (add_edge_fact bid t) (cmp_facts op x y ~holds:sense);
          List.iter (add_edge_fact bid e) (cmp_facts op x y ~holds:(not sense))
        | _ -> ())
      | _ -> ())
    f.Mir.block_order;
  (* Shrink blockers: same discipline as [Opt.Bounds_check.blocking]. *)
  let shrinkers = ref false in
  Mir.iter_instrs f (fun i ->
      match i.Mir.kind with
      | Mir.Store_prop (_, p, _) -> if p = "length" then shrinkers := true
      | Mir.Method_call (_, m, _) ->
        if m = "pop" || m = "shift" || m = "splice" then shrinkers := true
      | Mir.Call _ | Mir.Call_known _ -> if not precise_alias then shrinkers := true
      | Mir.Call_native (name, _) -> if not (Builtins.is_pure name) then shrinkers := true
      | _ -> ());
  {
    r_vals = vals_tbl;
    r_exec = exec_blocks;
    r_idom = idom_tbl;
    r_canon = canon_tbl;
    r_guards = List.rev !guards;
    r_edge_facts = edge_facts;
    r_single_pred = single_pred;
    r_addend = addend;
    r_shrinkers = !shrinkers;
  }

(* ------------------------------------------------------------------ *)
(* Guard redundancy queries                                            *)
(* ------------------------------------------------------------------ *)

type proof =
  | Redundant    (* the guard provably never fails where it stands *)
  | Unreachable  (* the guard's program point provably never executes *)
  | Unknown

(* Walk the dominator chain from [bid] collecting refinements applicable to
   canonical def [x]: numeric intersections and below-length facts, with a
   one-level linear rewrite through [r_addend] (a fact about x+c bounds x). *)
let refinements r x ~at =
  let range = ref None in
  let below = ref [] in
  let apply_range rr =
    range :=
      Some
        (match !range with
        | None -> rr
        | Some cur -> { lo = max cur.lo rr.lo; hi = min cur.hi rr.hi })
  in
  let apply_fact (ef : edge_fact) target =
    if ef.ef_def = target then begin
      (match ef.ef_range with Some rr -> apply_range rr | None -> ());
      match ef.ef_below_len with Some arr -> below := arr :: !below | None -> ()
    end
    else
      (* One level of y = x + c: a bound on y bounds x by c less. *)
      match Hashtbl.find_opt r.r_addend ef.ef_def with
      | Some (base, c) when base = target ->
        (match ef.ef_range with
        | Some rr -> apply_range { lo = rr.lo - c; hi = rr.hi - c }
        | None -> ());
        (match ef.ef_below_len with
        | Some arr when c >= 0 -> below := arr :: !below
        | _ -> ())
      | _ -> ()
  in
  let rec walk bid =
    (match Hashtbl.find_opt r.r_single_pred bid with
    | Some p -> (
      match Hashtbl.find_opt r.r_edge_facts (p, bid) with
      | Some facts -> List.iter (fun ef -> apply_fact ef x) facts
      | None -> ())
    | None -> ());
    match Hashtbl.find_opt r.r_idom bid with
    | Some p when p <> bid -> walk p
    | _ -> ()
  in
  walk at;
  (!range, !below)

(* Tag mask of canonical [x] at position [at], counting dominating guard
   facts (excluding the guard being judged). *)
let refined_tags r x ~at ~exclude base =
  List.fold_left
    (fun acc g ->
      match g.g_fact with
      | F_tag (y, mask)
        when y = x && g.g_def <> exclude
             && block_executable r g.g_bid
             && pos_dominates r (g.g_bid, g.g_idx) at ->
        acc land mask
      | _ -> acc)
    base r.r_guards

let prove r ~at:(bid, idx) ~exclude (kind : Mir.instr_kind) =
  if not (block_executable r bid) then Unreachable
  else
    let tag_proof a mask =
      let av = value_of r a in
      if equal av Bot then Unreachable
      else
        let tags = refined_tags r (canonical r a) ~at:(bid, idx) ~exclude (tags_of av) in
        if tags = 0 then Unreachable
        else if tags land lnot mask = 0 then Redundant
        else Unknown
    in
    match kind with
    | Mir.Type_barrier (a, tag) -> tag_proof a (tag_bit tag)
    | Mir.Check_array a -> tag_proof a t_array
    | Mir.Bounds_check (i, arr) -> (
      let av = value_of r i in
      if equal av Bot then Unreachable
      else if not (tags_within av t_int) then Unknown
      else
        let i_c = canonical r i and arr_c = canonical r arr in
        (* A dominating identical bounds check makes this one redundant
           only while lengths cannot shrink in between. *)
        let dominated_by_same =
          (not r.r_shrinkers)
          && List.exists
               (fun g ->
                 match g.g_fact with
                 | F_bounds (i', a') ->
                   i' = i_c && a' = arr_c && g.g_def <> exclude
                   && block_executable r g.g_bid
                   && pos_dominates r (g.g_bid, g.g_idx) (bid, idx)
                 | F_tag _ -> false)
               r.r_guards
        in
        if dominated_by_same then Redundant
        else
          let base = int_range av in
          let refined, below = refinements r i_c ~at:bid in
          let rng =
            match (base, refined) with
            | Some a, Some b -> Some { lo = max a.lo b.lo; hi = min a.hi b.hi }
            | Some a, None -> Some a
            | None, x -> x
          in
          match rng with
          | Some { lo; hi } when lo > hi -> Unreachable (* dead iteration space *)
          | Some { lo; hi } when lo >= 0 ->
            let len_ok =
              (not r.r_shrinkers)
              && ((match value_of r arr with
                  | Const (Value.Arr a) -> hi < a.Value.length
                  | _ -> false)
                 || List.mem arr_c below)
            in
            if len_ok then Redundant else Unknown
          | _ -> Unknown)
    | _ -> Unknown

let never_fails r ~at ~exclude kind = prove r ~at ~exclude kind <> Unknown

(* Provably-redundant guards still present in [f] (the missed-guard
   report): guards in executable blocks whose own analysis proves them
   redundant without counting themselves. *)
let survivors r (f : Mir.func) =
  let out = ref [] in
  List.iter
    (fun bid ->
      if block_executable r bid then begin
        let b = Mir.block f bid in
        List.iteri
          (fun idx (i : Mir.instr) ->
            if Mir.is_guard i.Mir.kind
               && prove r ~at:(bid, idx) ~exclude:i.Mir.def i.Mir.kind = Redundant
            then out := (bid, i) :: !out)
          b.Mir.body
      end)
    f.Mir.block_order;
  List.rev !out
