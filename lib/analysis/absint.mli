(* Abstract interpretation over the MIR CFG: a fixpoint analysis on a
   product lattice of constancy × integer intervals × type tags, seeded
   from the specialization key. Consumers: guard elision (Opt.Guard_elim),
   per-pass translation validation, and irlint's missed-guard report. *)

open Runtime

(* ---- lattice ---- *)

type itv = { lo : int; hi : int }

type aval =
  | Bot                                         (* no value reaches here *)
  | Const of Value.t                            (* exactly this value *)
  | Vals of { tags : int; range : itv option }  (* tag set + int interval *)

val tag_bit : Value.tag -> int
val all_tags : int
val top : aval
val vals : int -> itv option -> aval  (* normalizing constructor *)
val tags_of : aval -> int
val int_range : aval -> itv option
val join : aval -> aval -> aval
val widen : aval -> aval -> aval
val equal : aval -> aval -> bool
val meet_tags : aval -> int -> aval
val meet_range : aval -> itv -> aval
val to_string : aval -> string

(* ---- entry state from the specialization key ---- *)

(* Abstract value of parameter [i] implied by the argument cache key:
   [Const v] when burned in (respecting the selective mask), top otherwise. *)
val entry_state : Mir.func -> aval array

(* ---- whole-function analysis ---- *)

type result

(* Run the fixpoint. The result is self-contained (it snapshots values,
   reachability, dominators and facts), so it stays valid for queries after
   [f] is further mutated — which is what translation validation needs.
   [precise_alias] mirrors the Bounds_check pass: with it off, any call is
   assumed able to shrink arrays. *)
val analyze : ?precise_alias:bool -> Mir.func -> result

val value_of : result -> Mir.def -> aval
val block_executable : result -> int -> bool

type proof =
  | Redundant    (* the guard provably never fails where it stands *)
  | Unreachable  (* the guard's program point provably never executes *)
  | Unknown

(* Judge the guard [kind] standing at [at] = (block id, index in block
   body). [exclude] is the guard's own def, so a guard never justifies
   itself through the dominating-guard facts. *)
val prove : result -> at:int * int -> exclude:Mir.def -> Mir.instr_kind -> proof

(* [prove <> Unknown]: the acceptance test used by translation validation. *)
val never_fails : result -> at:int * int -> exclude:Mir.def -> Mir.instr_kind -> bool

(* Provably-redundant guards still present in the function: the
   missed-guard report. Returns (block id, instr) in layout order. *)
val survivors : result -> Mir.func -> (int * Mir.instr) list
