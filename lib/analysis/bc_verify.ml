(* Bytecode verifier: abstract interpretation of stack effects over
   [Bytecode.Instr.t].

   The interpreter and the MIR builder both assume the compiler's output is
   well-formed — jump targets in range, a unique stack depth at every merge
   point (the compiler only emits reducible code), no stack underflow, every
   slot index in bounds, and every path ending in a return. None of that was
   checked anywhere: a compiler bug surfaced as an [Invalid_argument] deep
   inside the interpreter, or as a builder graph the MIR verifier rejected
   four stages later. This pass checks it directly on the bytecode, right
   after [Bytecode.Compile].

   Jump targets are instruction indices, so "landing on an instruction
   boundary" is the range check; a serialized encoding would additionally
   validate byte offsets here. *)

open Bytecode

(* Values an instruction pops and pushes, in that order. The net difference
   agrees with [Instr.stack_effect]; the split matters for underflow. *)
let stack_io (i : Instr.t) =
  match i with
  | Instr.Const _ | Instr.Get_arg _ | Instr.Get_local _ | Instr.Get_cell _
  | Instr.Get_upval _ | Instr.Get_global _ | Instr.Make_closure _ ->
    (0, 1)
  | Instr.Dup -> (1, 2)
  | Instr.Set_arg _ | Instr.Set_local _ | Instr.Set_cell _ | Instr.Set_upval _
  | Instr.Set_global _ | Instr.Pop ->
    (1, 0)
  | Instr.Binop _ | Instr.Cmp _ -> (2, 1)
  | Instr.Unop _ -> (1, 1)
  | Instr.Jump _ | Instr.Loop_head _ -> (0, 0)
  | Instr.Jump_if_false _ | Instr.Jump_if_true _ -> (1, 0)
  | Instr.Call n -> (n + 1, 1)
  | Instr.Method_call (_, n) -> (n + 1, 1)
  | Instr.Return -> (1, 0)
  | Instr.Return_undefined -> (0, 0)
  | Instr.New_array n -> (n, 1)
  | Instr.New (_, n) -> (n, 1)
  | Instr.New_object fields -> (Array.length fields, 1)
  | Instr.Get_elem -> (2, 1)
  | Instr.Set_elem -> (3, 1)
  | Instr.Keys -> (1, 1)
  | Instr.Get_prop _ -> (1, 1)
  | Instr.Set_prop _ -> (2, 1)

(* Raises [Diag.Failed] at the first malformation. *)
let verify_func ~(program : Program.t) (f : Program.func) =
  let fail pc fmt =
    Diag.error ~layer:"bytecode" ~func:f.Program.name ~fid:f.Program.fid ~pc fmt
  in
  let code = f.Program.code in
  let n = Array.length code in
  if n = 0 then
    Diag.error ~layer:"bytecode" ~func:f.Program.name ~fid:f.Program.fid
      "empty code array (no path can return)";
  let nglobals = Array.length program.Program.global_names in
  let check_slot pc what idx bound =
    if idx < 0 || idx >= bound then
      fail pc "%s index %d out of bounds (have %d)" what idx bound
  in
  let check_target pc t =
    if t < 0 || t >= n then fail pc "jump target %d out of range [0,%d)" t n
  in
  let check_indices pc (i : Instr.t) =
    match i with
    | Instr.Get_arg k | Instr.Set_arg k -> check_slot pc "argument" k f.Program.arity
    | Instr.Get_local k | Instr.Set_local k -> check_slot pc "local" k f.Program.nlocals
    | Instr.Get_cell k | Instr.Set_cell k -> check_slot pc "cell" k f.Program.ncells
    | Instr.Get_upval k | Instr.Set_upval k -> check_slot pc "upvalue" k f.Program.nupvals
    | Instr.Get_global k | Instr.Set_global k -> check_slot pc "global" k nglobals
    | Instr.Call k | Instr.Method_call (_, k) | Instr.New_array k | Instr.New (_, k)
      ->
      if k < 0 then fail pc "negative operand count %d" k
    | Instr.Make_closure (fid, caps) ->
      if fid < 0 || fid >= Program.nfuncs program then
        fail pc "closure references missing function f%d" fid;
      let target = Program.func program fid in
      if Array.length caps <> target.Program.nupvals then
        fail pc "closure passes %d captures but f%d expects %d upvalues"
          (Array.length caps) fid target.Program.nupvals;
      Array.iter
        (function
          | Instr.Cap_cell k -> check_slot pc "captured cell" k f.Program.ncells
          | Instr.Cap_upval k -> check_slot pc "captured upvalue" k f.Program.nupvals)
        caps
    | _ -> ()
  in
  (* Depth propagation: the depth at each reachable pc must be unique
     (merge-point consistency) and every pop must be covered. *)
  let depth = Array.make n (-1) in
  let worklist = Queue.create () in
  let schedule ~from pc d =
    check_target from pc;
    if depth.(pc) = -1 then begin
      depth.(pc) <- d;
      Queue.add pc worklist
    end
    else if depth.(pc) <> d then
      fail pc "inconsistent stack depth at merge: %d from pc %d, %d earlier"
        d from depth.(pc)
  in
  schedule ~from:0 0 0;
  while not (Queue.is_empty worklist) do
    let pc = Queue.pop worklist in
    let d = depth.(pc) in
    let instr = code.(pc) in
    check_indices pc instr;
    let pops, pushes = stack_io instr in
    if d < pops then
      fail pc "stack underflow: %s pops %d but depth is %d" (Instr.to_string instr)
        pops d;
    let d' = d - pops + pushes in
    if d' >= f.Program.max_stack then
      fail pc "stack depth %d exceeds declared max_stack %d" d' f.Program.max_stack;
    match instr with
    | Instr.Return | Instr.Return_undefined -> ()
    | Instr.Jump t -> schedule ~from:pc t d'
    | Instr.Jump_if_false t | Instr.Jump_if_true t ->
      schedule ~from:pc t d';
      if pc + 1 >= n then fail pc "conditional jump falls off the end of the code";
      schedule ~from:pc (pc + 1) d'
    | _ ->
      if pc + 1 >= n then
        fail pc "control falls off the end of the code (missing return)";
      schedule ~from:pc (pc + 1) d'
  done

let run_func ~program f =
  match verify_func ~program f with () -> [] | exception Diag.Failed d -> [ d ]

let run_program (program : Program.t) =
  Array.to_list program.Program.funcs
  |> List.concat_map (fun f -> run_func ~program f)

(* Raise on the first malformed function — the always-on form the engine
   uses before admitting a program for execution. *)
let check_program (program : Program.t) =
  Array.iter (fun f -> verify_func ~program f) program.Program.funcs
