(* Specialization-soundness checker.

   The paper's whole bet is that baking runtime argument values into the
   MIR as constants is safe because a guard/cache protocol stands in front
   of the specialized binary: a cache probe re-runs the binary only when
   the argument tuple matches what was burned in. This checker verifies the
   compiled graph against that protocol:

   - stage [`Built] (fresh from [Builder.build]): every constant baked from
     an actual parameter agrees with the cached argument tuple, in both the
     function-entry block and the OSR block, and positions the cache mask
     leaves free are materialized as runtime [Parameter]s — a baked value
     the probe does not compare is a silent wrong-answer generator;
   - both stages: no runtime [Parameter] load for a burned-in position, and
     parameter indices in range;
   - stage [`Optimized] (after the pipeline): every guard still carries a
     resume point (the MIR verifier checks its references dominate; this
     check is the paper-facing summary), plus two warning classes —
     redundant guards (an identical guard earlier in the same block, or a
     type barrier its operand's static type already satisfies) and dead
     resume points (a snapshot on an instruction that can never bail, which
     only extends live ranges and snapshot tables for nothing). *)

open Runtime

(* The executor can only bail on guards and on overflow-checked int32
   arithmetic (see Native.Exec); a resume point anywhere else is dead
   weight. *)
let can_bail (i : Mir.instr) =
  Mir.is_guard i.Mir.kind
  || match i.Mir.kind with Mir.Binop (_, _, _, Mir.Mode_int) -> true | _ -> false

let check ~stage (f : Mir.func) =
  let acc = ref [] in
  let fname = f.Mir.source.Bytecode.Program.name in
  let fid = f.Mir.source.Bytecode.Program.fid in
  let emit ?(severity = Diag.Error) ?block ?value fmt =
    Printf.ksprintf
      (fun message ->
        acc :=
          Diag.make ~severity ~layer:"spec" ~func:fname ~fid ?block ?value message
          :: !acc)
      fmt
  in
  let arity = f.Mir.source.Bytecode.Program.arity in
  let burned i =
    match f.Mir.specialized_args with
    | None -> false
    | Some _ -> (
      match f.Mir.specialized_mask with
      | None -> true
      | Some m -> i < Array.length m && m.(i))
  in
  let pp_value v = Format.asprintf "%a" Value.pp v in
  (* Parameter sanity, at every stage: indices in range, and no runtime
     parameter load for a position the cache protocol burns in (the probe
     would validate a value the code never reads, and vice versa). *)
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      List.iter
        (fun (i : Mir.instr) ->
          match i.Mir.kind with
          | Mir.Parameter k ->
            if k < 0 || k >= arity then
              emit ~block:bid ~value:i.Mir.def
                "parameter index %d out of range (arity %d)" k arity
            else if burned k then
              emit ~block:bid ~value:i.Mir.def
                "argument %d is burned into the cache tuple but loaded as a \
                 runtime parameter"
                k
          | _ -> ())
        b.Mir.body)
    f.Mir.block_order;
  (match stage with
  | `Built -> (
    (* The builder materializes the raw arguments as the first [arity]
       instructions of the entry block, in order; on freshly built MIR this
       prefix is the specialization record to audit. *)
    (match f.Mir.specialized_args with
    | None -> ()
    | Some args ->
      let entry = f.Mir.entry in
      let body = Array.of_list (Mir.block f entry).Mir.body in
      if Array.length body < arity then
        emit ~block:entry
          "entry block materializes %d slots but arity is %d" (Array.length body)
          arity
      else
        for i = 0 to arity - 1 do
          let instr = body.(i) in
          match instr.Mir.kind with
          | Mir.Constant v ->
            if not (burned i) then
              emit ~block:entry ~value:instr.Mir.def
                "argument %d baked to %s but the cache mask leaves it free: a \
                 cache probe never compares it"
                i (pp_value v)
            else if i < Array.length args && not (Value.same_value v args.(i))
            then
              emit ~block:entry ~value:instr.Mir.def
                "baked constant %s for argument %d disagrees with the cached \
                 tuple entry %s"
                (pp_value v) i
                (pp_value args.(i))
          | Mir.Parameter k ->
            if k <> i then
              emit ~block:entry ~value:instr.Mir.def
                "entry slot %d materializes parameter %d" i k
          | _ ->
            emit ~block:entry ~value:instr.Mir.def
              "entry slot %d is '%s', expected a parameter materialization" i
              (Mir.kind_to_string instr.Mir.kind)
        done);
    (* The abstract interpreter seeds its fixpoint from the same cache key
       ([Absint.entry_state]). Audit the seeding against the tuple the
       probe actually compares: a burned position must seed as exactly the
       cached constant and a free position must seed unconstrained — drift
       here would let the analysis (and so guard elision and translation
       validation) assume facts no cache probe established. *)
    (match f.Mir.specialized_args with
    | None -> ()
    | Some args ->
      let st = Absint.entry_state f in
      Array.iteri
        (fun i av ->
          match av with
          | Absint.Const v ->
            if not (burned i) then
              emit
                "abstract entry state pins argument %d to %s but the cache \
                 mask leaves it free"
                i (pp_value v)
            else if i < Array.length args && not (Value.same_value v args.(i))
            then
              emit
                "abstract entry state pins argument %d to %s but the cached \
                 tuple entry is %s"
                i (pp_value v)
                (pp_value args.(i))
          | _ ->
            if burned i && i < Array.length args then
              emit
                "argument %d is burned into the cache tuple (%s) but the \
                 abstract entry state is %s"
                i
                (pp_value args.(i))
                (Absint.to_string av))
        st);
    (* Tag-keyed (widened polyvariant) versions. Values and tags are
       mutually exclusive keys — the cache probe compares one or the other.
       Every argument must stay a runtime [Parameter] (no baked values),
       each must be covered by an entry type barrier for exactly its key
       tag (the barrier is what guard elision removes once the probe is
       trusted, so it must exist on the fresh graph), and the abstract
       entry state must assume the key's tag and nothing tighter. *)
    (match f.Mir.specialized_tags with
    | None -> ()
    | Some tags ->
      if f.Mir.specialized_args <> None then
        emit "version keyed by both values and tags: the cache probe compares only one";
      if Array.length tags <> arity then
        emit "tag key has %d entries but arity is %d" (Array.length tags) arity;
      let entry = f.Mir.entry in
      let body = Array.of_list (Mir.block f entry).Mir.body in
      if Array.length body < arity then
        emit ~block:entry "entry block materializes %d slots but arity is %d"
          (Array.length body) arity
      else
        for i = 0 to arity - 1 do
          let instr = body.(i) in
          match instr.Mir.kind with
          | Mir.Parameter k ->
            if k <> i then
              emit ~block:entry ~value:instr.Mir.def
                "entry slot %d materializes parameter %d" i k;
            if
              i < Array.length tags
              && not
                   (List.exists
                      (fun (j : Mir.instr) ->
                        match j.Mir.kind with
                        | Mir.Type_barrier (a, tag) ->
                          a = instr.Mir.def && tag = tags.(i)
                        | _ -> false)
                      (Mir.block f entry).Mir.body)
            then
              emit ~block:entry ~value:instr.Mir.def
                "argument %d is tag-keyed (%s) but the entry block carries no \
                 matching type barrier"
                i
                (Value.tag_to_string tags.(i))
          | _ ->
            emit ~block:entry ~value:instr.Mir.def
              "entry slot %d is '%s' in a tag-keyed version, expected a runtime \
               parameter"
              i
              (Mir.kind_to_string instr.Mir.kind)
        done;
      let st = Absint.entry_state f in
      Array.iteri
        (fun i av ->
          if i < Array.length tags then
            match av with
            | Absint.Const v ->
              emit
                "abstract entry state pins argument %d to %s but only its tag is \
                 in the cache key"
                i (pp_value v)
            | av ->
              if Absint.tags_of av <> Absint.tag_bit tags.(i) then
                emit
                  "abstract entry state assumes %s for argument %d but the cache \
                   key guarantees exactly tag %s"
                  (Absint.to_string av) i
                  (Value.tag_to_string tags.(i)))
        st);
    (* The OSR entry bakes the same cached tuple (plus the frame's locals,
       which have no cache to disagree with). *)
    match (f.Mir.specialized_args, f.Mir.osr_entry) with
    | Some args, Some ob ->
      let body = Array.of_list (Mir.block f ob).Mir.body in
      for i = 0 to min arity (Array.length body) - 1 do
        let instr = body.(i) in
        match instr.Mir.kind with
        | Mir.Constant v
          when burned i
               && i < Array.length args
               && not (Value.same_value v args.(i)) ->
          emit ~block:ob ~value:instr.Mir.def
            "OSR-baked constant %s for argument %d disagrees with the cached \
             tuple entry %s"
            (pp_value v) i
            (pp_value args.(i))
        | _ -> ()
      done
    | _ -> ())
  | `Optimized ->
    List.iter
      (fun bid ->
        let b = Mir.block f bid in
        let seen_guards = Hashtbl.create 8 in
        List.iter
          (fun (i : Mir.instr) ->
            if Mir.is_guard i.Mir.kind then begin
              if i.Mir.rp = None then
                emit ~block:bid ~value:i.Mir.def
                  "guard '%s' has no resume point: a failing check could not \
                   hand back to the interpreter"
                  (Mir.kind_to_string i.Mir.kind);
              if Hashtbl.mem seen_guards i.Mir.kind then
                emit ~severity:Diag.Warning ~block:bid ~value:i.Mir.def
                  "redundant guard: identical '%s' already performed earlier \
                   in this block"
                  (Mir.kind_to_string i.Mir.kind)
              else Hashtbl.replace seen_guards i.Mir.kind ();
              match i.Mir.kind with
              | Mir.Type_barrier (a, tag) -> (
                match Hashtbl.find_opt f.Mir.defs a with
                | Some def
                  when def.Mir.ty <> Mir.Ty_value
                       && def.Mir.ty = Mir.ty_of_tag tag ->
                  emit ~severity:Diag.Warning ~block:bid ~value:i.Mir.def
                    "type barrier on v%d is statically satisfied (operand \
                     already %s)"
                    a (Mir.ty_to_string def.Mir.ty)
                | _ -> ())
              | _ -> ()
            end
            else if i.Mir.rp <> None && not (can_bail i) then
              emit ~severity:Diag.Warning ~block:bid ~value:i.Mir.def
                "dead resume point on '%s': it can never bail, the snapshot \
                 only extends live ranges"
                (Mir.kind_to_string i.Mir.kind))
          b.Mir.body)
      f.Mir.block_order);
  List.rev !acc
