(* Background-compile queue: see the .mli for the two-clock design. The
   implementation is deliberately dumb — a list of entries and three
   integers — because every interesting decision (costs, install rules,
   supersede, fault handling) belongs to the engine's payload. *)

module Task = struct
  type 'a state =
    | Thunk of (unit -> 'a)  (* deferred: forced on the harvesting domain *)
    | Submitted of { ticket : Pool.ticket; cell : 'a option ref }
    | Done of 'a
    | Dead  (* pool job cancelled before it ran *)

  type 'a t = { mutable st : 'a state }

  let spawn ?(inline = false) f =
    if inline || Pool.default_jobs () <= 1 then { st = Thunk f }
    else begin
      let cell = ref None in
      let pool = Pool.default () in
      let ticket = Pool.submit pool ~priority:Pool.Low (fun () -> cell := Some (f ())) in
      { st = Submitted { ticket; cell } }
    end

  let force t =
    match t.st with
    | Done v -> v
    | Thunk f ->
      let v = f () in
      t.st <- Done v;
      v
    | Dead -> invalid_arg "Bgcompile.Task.force: cancelled task"
    | Submitted { ticket; cell } -> (
      Pool.await (Pool.default ()) ticket;
      match !cell with
      | Some v ->
        t.st <- Done v;
        v
      | None ->
        (* await returned without a result: the job was cancelled. *)
        t.st <- Dead;
        invalid_arg "Bgcompile.Task.force: cancelled task")

  let cancel t =
    match t.st with
    | Submitted { ticket; _ } ->
      if Pool.cancel (Pool.default ()) ticket then t.st <- Dead
    | Thunk _ -> t.st <- Dead
    | Done _ | Dead -> ()
end

type 'a entry = {
  e_id : int;
  e_fid : int;
  e_enqueue : int;
  e_cost : int;
  e_ready : int;
  e_attempts : int;
  e_payload : 'a;
}

(* The modeled compile service runs a small fixed crew of virtual
   servers, like a real background compiler's thread pool. The width is
   a constant of the model — never the physical [--jobs] — so ready
   cycles are byte-identical however the actual compiles are scheduled.
   Width 1 would serialize every hot function behind the first one and
   stretch the interpret-while-waiting window past what the removed
   stall buys back. *)
let service_width = 4

type 'a t = {
  q_depth : int;
  mutable q_next : int;
  q_busy : int array;  (* per-server busy-until, length [service_width] *)
  mutable q_pending : 'a entry list;  (* enqueue order *)
}

let create ~depth =
  { q_depth = max 1 depth; q_next = 0; q_busy = Array.make service_width 0; q_pending = [] }
let depth q = q.q_depth
let length q = List.length q.q_pending
let pending q = q.q_pending
let pending_for q ~fid = List.find_opt (fun e -> e.e_fid = fid) q.q_pending

let enqueue q ~fid ~now ~cost ?(attempts = 1) payload =
  if List.length q.q_pending >= q.q_depth then Error `Overflow
  else begin
    (* Earliest-free server, lowest index on ties: deterministic. *)
    let srv = ref 0 in
    Array.iteri (fun i b -> if b < q.q_busy.(!srv) then srv := i) q.q_busy;
    let start = max now q.q_busy.(!srv) in
    let ready = start + max 1 cost in
    q.q_busy.(!srv) <- ready;
    let e =
      {
        e_id = q.q_next;
        e_fid = fid;
        e_enqueue = now;
        e_cost = cost;
        e_ready = ready;
        e_attempts = attempts;
        e_payload = payload;
      }
    in
    q.q_next <- q.q_next + 1;
    q.q_pending <- q.q_pending @ [ e ];
    Ok e
  end

let take_ready q ~fid ~now =
  let ready, rest = List.partition (fun e -> e.e_fid = fid && e.e_ready <= now) q.q_pending in
  q.q_pending <- rest;
  List.sort (fun a b -> compare (a.e_ready, a.e_id) (b.e_ready, b.e_id)) ready

let drain q =
  let p = q.q_pending in
  q.q_pending <- [];
  p
