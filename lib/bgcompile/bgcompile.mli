(** Background compilation: a bounded compile queue with a deterministic
    completion model.

    The engine's hot-call sites stop blocking on the compiler: they
    enqueue a request here and keep interpreting; the artifact is
    harvested at a later call or loop edge. Two clocks are in play and
    the whole design hinges on keeping them apart:

    - {b The model clock} decides {e when} an artifact becomes visible.
      Every entry gets a ready cycle from a FIFO service model with a
      small fixed crew of virtual compiler servers ({!service_width} — a
      constant of the model, never the physical [--jobs]):
      [start = max enqueue_cycle busy_until] of the earliest-free
      server, [ready = start + cost],
      where [cost] is a deterministic function of enqueue-time
      observables only (bytecode size, pipeline schedule — see
      {!Cost.bg_compile_cost}). Nothing about the real compile — not even
      whether it has physically finished — feeds back into the model, so
      results are byte-identical at any [--jobs] and the [check-model]
      gate stays exact.
    - {b The wall clock} is where the win shows: with [--jobs > 1] the
      actual compile runs on a pool domain ({!Task}) overlapped with
      interpretation; at [--jobs 1] it is deferred and forced inline at
      harvest. Either way the artifact is identical, so scheduling
      affects wall-clock only.

    The queue is generic over the payload: the engine stores its install
    plan (the {!Task}, the policy choice, the OSR snapshot, the
    supersede victim) and this module never looks inside it. *)

(** {1 Deferred compile execution} *)

module Task : sig
  type 'a t

  val spawn : ?inline:bool -> (unit -> 'a) -> 'a t
  (** Start a deferred computation. If [inline] is set, or the default
      pool is serial, the thunk is kept and run on the forcing domain at
      the first {!force} — the engine passes [inline:true] whenever the
      closure captures mutable runtime values, so both [--jobs] settings
      read them at the same (harvest-time) point. Otherwise the thunk is
      submitted to the default pool at {!Pool.Low} priority and runs
      concurrently with the submitter. The thunk must not raise: wrap
      failures in the result value. *)

  val force : 'a t -> 'a
  (** The result, memoized; awaits (helping) if the pool job is still in
      flight. Raises [Invalid_argument] on a task whose pool job was
      successfully cancelled. *)

  val cancel : 'a t -> unit
  (** Best-effort: drops a pool job that has not started and marks the
      task dead; a running/finished job (or an inline thunk) is simply
      abandoned to the GC. Never blocks. *)
end

(** {1 The queue} *)

val service_width : int
(** Virtual compiler servers in the completion model (a fixed model
    constant, independent of the physical pool size). *)

type 'a entry = {
  e_id : int;  (** enqueue sequence number, unique per queue *)
  e_fid : int;  (** requesting function *)
  e_enqueue : int;  (** model cycle at enqueue *)
  e_cost : int;  (** modeled compile latency of this attempt *)
  e_ready : int;  (** model cycle at which the artifact lands *)
  e_attempts : int;  (** 1 on first enqueue; bumped by fault re-enqueues *)
  e_payload : 'a;
}

type 'a t

val create : depth:int -> 'a t
(** A queue admitting at most [depth] (clamped to at least 1) in-flight
    entries; enqueues beyond that overflow. *)

val depth : 'a t -> int

val length : 'a t -> int
(** In-flight entries (queued, not yet harvested). *)

val pending : 'a t -> 'a entry list
(** In-flight entries in enqueue order. *)

val pending_for : 'a t -> fid:int -> 'a entry option
(** The oldest in-flight entry for [fid], if any — the engine keeps at
    most one per function. *)

val enqueue :
  'a t -> fid:int -> now:int -> cost:int -> ?attempts:int -> 'a -> ('a entry, [ `Overflow ]) result
(** Admit a request at model cycle [now] and assign its ready cycle on
    the earliest-free virtual server (lowest index on ties). The chosen
    server's [busy_until] advances whether or not the entry is later
    cancelled — the modeled compiler worked on it regardless. *)

val take_ready : 'a t -> fid:int -> now:int -> 'a entry list
(** Remove and return every entry for [fid] whose ready cycle has passed,
    ordered by (ready, id). The harvest point. *)

val drain : 'a t -> 'a entry list
(** Remove and return everything in flight, in enqueue order — degrade
    mode and isolate recycling use this to cancel the queue. *)
