(* Compiled program representation: a table of functions plus a global
   symbol table. Function 0 is always the toplevel script. *)

type func = {
  fid : int;
  name : string;  (* "<toplevel>" or the declared/inferred name *)
  arity : int;
  nlocals : int;  (* plain (non-captured) locals *)
  ncells : int;  (* captured locals, stored in shared cells *)
  nupvals : int;
  code : Instr.t array;
  max_stack : int;
  nloops : int;
}

type t = { funcs : func array; global_names : string array; main : int }

let func t fid = t.funcs.(fid)
let nfuncs t = Array.length t.funcs

let global_slot t name =
  let n = Array.length t.global_names in
  let rec find i =
    if i >= n then None else if t.global_names.(i) = name then Some i else find (i + 1)
  in
  find 0

(* Global slots that provably hold one fixed function forever: assigned
   exactly once in the whole program, by the toplevel's hoisting prologue
   ([Make_closure fid; Set_global i] with no captures). A call through such
   a slot is monomorphic — the MIR builder may lower it as a known call to
   [fid] (the callee value is still loaded and invoked at run time, so
   this is a strength reduction, never a semantic bet). *)
let known_global_funcs t =
  let res = Array.make (Array.length t.global_names) None in
  let sets = Array.make (Array.length t.global_names) 0 in
  Array.iter
    (fun f ->
      Array.iteri
        (fun pc instr ->
          match instr with
          | Instr.Set_global i ->
            sets.(i) <- sets.(i) + 1;
            if f.fid = t.main && pc > 0 then
              (match f.code.(pc - 1) with
              | Instr.Make_closure (fid, [||]) -> res.(i) <- Some fid
              | _ -> ())
          | _ -> ())
        f.code)
    t.funcs;
  Array.iteri (fun i n -> if n <> 1 then res.(i) <- None) sets;
  res

(* Conservative max-stack: walk instructions propagating depth through
   jumps with a worklist; the compiler only emits reducible code, so depth
   at each pc is unique. *)
let compute_max_stack code =
  let n = Array.length code in
  if n = 0 then 0
  else begin
    let depth = Array.make n (-1) in
    let max_depth = ref 0 in
    let worklist = Queue.create () in
    let schedule pc d =
      if pc < n then
        if depth.(pc) = -1 then begin
          depth.(pc) <- d;
          Queue.add pc worklist
        end
        else assert (depth.(pc) = d)
    in
    schedule 0 0;
    while not (Queue.is_empty worklist) do
      let pc = Queue.pop worklist in
      let d = depth.(pc) in
      let instr = code.(pc) in
      let d_before_branch =
        (* For conditional jumps the condition is popped before branching. *)
        match instr with
        | Instr.Jump_if_false t | Instr.Jump_if_true t ->
          schedule t (d - 1);
          d - 1
        | Instr.Jump t ->
          schedule t d;
          d
        | _ -> d + Instr.stack_effect instr
      in
      let peak =
        (* Call-like instructions momentarily hold all operands. *)
        d + max 0 (Instr.stack_effect instr) + 0
      in
      if peak > !max_depth then max_depth := peak;
      if d_before_branch > !max_depth then max_depth := d_before_branch;
      (match instr with
      | Instr.Return | Instr.Return_undefined | Instr.Jump _ -> ()
      | Instr.Jump_if_false _ | Instr.Jump_if_true _ -> schedule (pc + 1) d_before_branch
      | _ -> schedule (pc + 1) d_before_branch)
    done;
    !max_depth + 1
  end

let disassemble_func f =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "function %s (fid=%d, arity=%d, locals=%d, cells=%d, upvals=%d)\n"
    f.name f.fid f.arity f.nlocals f.ncells f.nupvals;
  Array.iteri
    (fun pc instr -> Printf.bprintf buf "%05d: %s\n" pc (Instr.to_string instr))
    f.code;
  Buffer.contents buf

let disassemble t =
  String.concat "\n" (Array.to_list (Array.map disassemble_func t.funcs))
