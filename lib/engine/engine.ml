open Runtime

exception Runtime_error of string

(* A cooperative deadline expired mid-dispatch. Carries where it tripped
   and the budget arithmetic; the service layer converts it into a clean
   request failure. Never raised when [config.deadline] is 0. *)
exception
  Deadline_exceeded of { dl_fid : int; dl_pc : int; dl_spent : int; dl_limit : int }

type config = {
  opt : Pipeline.config;
  jit : bool;
  hot_calls : int;
  hot_loop_edges : int;
  max_bailouts : int;
  cache_size : int;
  policy : Policy.kind;
  selective : bool;
  compile_retries : int;
  storm_threshold : int;
  code_cache_bytes : int;
  max_depth : int;
  deadline : int;
  bg_compile : bool;
  bg_queue_depth : int;
}

let default_config ?(opt = Pipeline.baseline) ?(policy = Policy.Paper) ?(cache_size = 1)
    ?(selective = false) ?(code_cache_bytes = 0) ?(max_depth = Interp.default_max_depth)
    ?(deadline = 0) ?(bg_compile = false) ?(bg_queue_depth = 8) () =
  {
    opt;
    jit = true;
    hot_calls = 10;
    hot_loop_edges = 40;
    max_bailouts = 3;
    cache_size;
    selective;
    compile_retries = 3;
    storm_threshold = 8;
    code_cache_bytes;
    max_depth;
    policy;
    deadline;
    bg_compile;
    bg_queue_depth;
  }

let interp_only = { (default_config ()) with jit = false }

(* Observation hooks, all domain-local so a lint task collecting findings
   on a pool worker never leaks its closures into unrelated engine runs.
   Installers that need scoping use the [with_...] combinators. *)

(* Called with every optimized MIR graph right before lowering
   (jsvm --dump-mir; tests inspect pass output in situ). *)
let mir_hook : (Mir.func -> unit) option Support.Tls.t = Support.Tls.make (fun () -> None)

let set_mir_hook h = Support.Tls.set mir_hook h
let with_mir_hook h f = Support.Tls.with_value mir_hook (Some h) f

(* Warning sink for the lint layer: when pipeline checks are on, the
   specialization-soundness checker's warnings (redundant guards, dead
   resume points) are delivered here instead of aborting compilation.
   Errors always raise [Diag.Failed]. *)
let diag_warn_hook : (Diag.t -> unit) option Support.Tls.t =
  Support.Tls.make (fun () -> None)

let set_diag_warn_hook h = Support.Tls.set diag_warn_hook h
let with_diag_warn_hook h f = Support.Tls.with_value diag_warn_hook (Some h) f

(* Abort sink for the containment barrier: every diagnostic that aborts a
   compilation (a real verifier error or an injected fault) is delivered
   here before the engine recovers by quarantining the function. This is
   how the lint tooling observes mid-run IR corruption now that
   [Diag.Failed] no longer escapes [run]. *)
let diag_abort_hook : (Diag.t -> unit) option Support.Tls.t =
  Support.Tls.make (fun () -> None)

let set_diag_abort_hook h = Support.Tls.set diag_abort_hook h

let with_diag_abort_hook h f = Support.Tls.with_value diag_abort_hook (Some h) f

type compiled = {
  code : Code.t;
  (* What calls this version may serve: the burned-in argument tuple (plus
     the selective mask), a widened tag signature, or anything (generic).
     The probe ([Policy.matches]) is the soundness contract every
     specialized binary relies on. *)
  key : Policy.vkey;
  (* In-body guard failures charged against this binary. Strikes are
     per-binary — a multi-entry cache must not let one binary's failures
     condemn its neighbours — and a binary is discarded at its
     [max_bailouts]-th strike. *)
  mutable strikes : int;
  (* Global-LRU clock value of the entry's last installation or cache hit;
     the code-cache budget evicts the smallest across all functions. Only
     installs and hits refresh it: a probe that walks past (or misses) an
     entry must leave it cold, or the byte budget could never reclaim it. *)
  mutable last_use : int;
}

type func_state = {
  fid : int;
  mutable loop_edges : int;
  mutable compiled : compiled list;  (* most recently used first; length <= cache_size *)
  mutable no_specialize : bool;
  mutable overflow_bailed : bool;  (* compile future binaries without checked int32 *)
  mutable observed_tags : Value.tag list array;  (* per-arg tag history *)
  (* Per-arg value stability: [Some v] while every call so far passed the
     same value, [None] once it varied (sticky). Empty before any call. *)
  mutable stable_args : Value.t option array option;
  mutable last_args : Value.t array option;  (* for §2 argument statistics *)
  mutable sizes : (bool * int) list;
  (* Failure-domain state. Compilation failures (aborted compiles, cache
     admission failures, deopt storms) quarantine the function: no compile
     attempt until the call counter reaches [quarantine_until], with the
     backoff doubling per failure, and a permanent interpreter-tier pin
     once [q_failures] exceeds the retry cap. *)
  mutable quarantine_until : int;
  mutable q_failures : int;
  mutable pinned : bool;
  mutable discards : int;  (* binary discards since the last storm check *)
  mutable next_version : int;
  (* Monotone version-cache id (polyvariant policy): stamped into
     [Code.version] at compile time so telemetry and the profiler can
     attribute work per version even after the entry is replaced. *)
  mutable anticipated : Value.t array list;
  (* Interprocedural facts (polyvariant policy): constant argument
     signatures this function receives at monomorphic call sites inside
     already-compiled callers — a specialized caller's burned-in values
     constant-fold into its call sites, so the callee can expect exactly
     these tuples and value-specialize against them. Deduplicated, oldest
     first, capped. *)
}

(* ------------------------------------------------------------------ *)
(* Background compilation: request payloads                            *)
(* ------------------------------------------------------------------ *)

(* What one background compile produced. Charges are carried, not yet
   applied: a background compile never touches [compile_cycles] (the
   model clock) — the harvest adds them to the off-clock [bg_cycles]
   accumulator instead, which is exactly how "hot-call sites never charge
   synchronous compile cycles" is made true rather than merely claimed. *)
type bg_out = {
  g_code : Code.t;
  g_mir : Mir.func;
  g_stats : Pipeline.run_stats;
  g_mir_charge : int;
  g_backend_charge : int;
  g_warnings : Diag.t list;  (* spec-check warnings, delivered at harvest *)
}

type bg_result = (bg_out, Diag.t * int (* cycles wasted before the abort *)) result

(* The install plan enqueued alongside the deferred compile. Everything
   the harvest needs is decided at enqueue time — fault draws included —
   so the payload is closed over immutable data and the physical compile
   can run on any domain at any wall-clock moment. *)
type bg_job = {
  j_task : bg_result Bgcompile.Task.t;
  j_kind : string;  (* "values" | "selective" | "tags" | "generic" *)
  j_specialized : bool;  (* burned-in values (spec_args was passed) *)
  j_selective : bool;
  j_widened : bool;  (* tag-keyed (spec_tags was passed) *)
  j_key : Policy.vkey;  (* the cache key the artifact will install under *)
  j_osr : Builder.osr_request option;  (* loop-head snapshot, if OSR-flavored *)
  j_supersede : compiled option;  (* widen ladder victim to detach on install *)
  j_widen_info : (int * string * string * int) option;
      (* (index, from_key, to_key, entries) for the Version_widen event,
         captured when the ladder step was decided *)
  j_flow : int;
      (* Perfetto flow id stitching this request's enqueue to its install;
         0 when no tracer was attached at enqueue *)
  j_trace : Telemetry.trace_ctx option;
      (* the service request that triggered the enqueue — installs (which
         run under whatever request harvests them) re-assert it so the
         compile is attributed back to the requesting tenant *)
}

type t = {
  cfg : config;
  program : Bytecode.Program.t;
  istate : Interp.state;
  fstates : func_state array;
  native_cycles : int ref;
  compile_cycles : int ref;
  tel : Telemetry.t;
  cache_bytes : int ref;  (* code-cache bytes in use across all functions *)
  lru_tick : int ref;  (* global LRU clock (bumped per install / cache hit) *)
  depth : int ref;  (* live MiniJS call nesting *)
  (* Lifecycle span tracer, present only when the hub had a span sink at
     construction: with tracing off every span site is one [None] match. *)
  tracer : Profile.Tracer.t option;
  known_globals : int option array;
      (* write-once function globals (polyvariant only; [||] under the
         paper policy, which keeps its call lowering byte-identical) *)
  degrade : bool ref;
      (* overload degrade mode (service layer): while set, new compiles
         shed specialization — quick generic baseline binaries only.
         Installed binaries keep serving; false in every standalone run. *)
  bg : bg_job Bgcompile.t option;  (* Some iff [cfg.bg_compile] *)
  bg_cycles : int ref;
      (* compile cycles done by the background compiler — off the model
         clock ([now] never reads it), reported as [bg_compile_cycles] *)
  flow_seq : int ref;
      (* per-engine flow-id allocator (tracing only; see [new_flow_id]) *)
}

type func_report = {
  fr_fid : int;
  fr_name : string;
  fr_calls : int;
  fr_compiles : int;
  fr_was_specialized : bool;
  fr_deoptimized : bool;
  fr_bailouts : int;
  fr_sizes : (bool * int) list;
  fr_arg_set_changes : int;
  fr_last_arg_tags : Value.tag list;
}

type report = {
  result : Value.t;
  interp_cycles : int;
  native_cycles : int;
  compile_cycles : int;
  bg_compile_cycles : int;  (* off-clock background compile work *)
  total_cycles : int;
  bytecode_instrs : int;
  functions : func_report list;
  compilations : int;
  recompilations : int;
  specialized_funcs : int;
  successful_funcs : int;
  deoptimized_funcs : int;
}

let make engine_config program =
  (* Admission check: the interpreter and the MIR builder both trust the
     compiler's output, so reject malformed bytecode before running any of
     it. Raises [Diag.Failed]. *)
  Bc_verify.check_program program;
  let tel = Telemetry.create ~nfuncs:(Bytecode.Program.nfuncs program) () in
  {
    cfg = engine_config;
    program;
    istate = Interp.make_state ~max_depth:engine_config.max_depth program;
    fstates =
      Array.init (Bytecode.Program.nfuncs program) (fun fid ->
          {
            fid;
            loop_edges = 0;
            compiled = [];
            no_specialize = false;
            overflow_bailed = false;
            observed_tags =
              Array.make program.Bytecode.Program.funcs.(fid).Bytecode.Program.arity [];
            stable_args = None;
            last_args = None;
            sizes = [];
            quarantine_until = 0;
            q_failures = 0;
            pinned = false;
            discards = 0;
            next_version = 0;
            anticipated = [];
          });
    native_cycles = ref 0;
    compile_cycles = ref 0;
    tel;
    cache_bytes = ref 0;
    lru_tick = ref 0;
    depth = ref 0;
    tracer =
      (if Telemetry.spans_active tel then
         Some (Profile.Tracer.create ~emit:(Telemetry.emit_span tel))
       else None);
    known_globals =
      (if engine_config.policy = Policy.Polyvariant then
         Bytecode.Program.known_global_funcs program
       else [||]);
    degrade = ref false;
    bg =
      (if engine_config.bg_compile then
         Some (Bgcompile.create ~depth:engine_config.bg_queue_depth)
       else None);
    bg_cycles = ref 0;
    flow_seq = ref 0;
  }

let telemetry t = t.tel
let degraded t = !(t.degrade)

(* ------------------------------------------------------------------ *)
(* Telemetry plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let counters t = Telemetry.counters t.tel
let fname t fid = t.program.Bytecode.Program.funcs.(fid).Bytecode.Program.name

(* ------------------------------------------------------------------ *)
(* Lifecycle spans                                                     *)
(* ------------------------------------------------------------------ *)

(* Span timestamps use the model-cycle clock — the sum the report calls
   [total_cycles], read at the moment of the event — so traces are
   byte-reproducible and durations line up exactly with the cycle
   accounting. Wall time never appears. *)
let now t =
  (t.istate.Interp.icount * Cost.interp_per_instr)
  + !(t.native_cycles) + !(t.compile_cycles)

(* The model-cycle clock and its tier split, exposed for the service
   layer: per-request latency and warm/cold tail attribution are clock
   deltas around each request run on a long-lived engine. *)
let clock = now

let cycle_split t =
  (t.istate.Interp.icount * Cost.interp_per_instr, !(t.native_cycles), !(t.compile_cycles))

let span_begin t ~name ~cat fid =
  match t.tracer with
  | Some tr -> Profile.Tracer.begin_span tr ~name ~cat ~fid ~fname:(fname t fid) ~now:(now t)
  | None -> ()

let span_end ?args t =
  match t.tracer with
  | Some tr -> Profile.Tracer.end_span ?args tr ~now:(now t)
  | None -> ()

let span_mark ?args t ~name ~cat ~start ~dur fid =
  match t.tracer with
  | Some tr ->
    Profile.Tracer.complete ?args tr ~name ~cat ~fid ~fname:(fname t fid) ~start ~dur
  | None -> ()

(* One side of a Perfetto flow stitch (cat "bg": the only cross-lane edges
   today are background-compile lifecycles). *)
let span_flow ?args ?trace t ~phase ~id ~name fid =
  match t.tracer with
  | Some tr ->
    Profile.Tracer.flow ?args ?trace tr ~phase ~id ~name ~cat:"bg" ~fid
      ~fname:(fname t fid) ~now:(now t)
  | None -> ()

(* A fresh flow id, allocated only when a tracer is listening (0 means "no
   flow" everywhere). Namespaced by the requesting trace id so ids are
   unique across every engine of a traced service run: trace ids are
   unique per request, and one request enqueues well under a million
   compiles. *)
let new_flow_id t =
  match t.tracer with
  | None -> 0
  | Some _ ->
    incr t.flow_seq;
    (match Telemetry.current_trace () with
    | Some c -> ((c.Telemetry.tc_trace + 1) * 1_000_000) + !(t.flow_seq)
    | None -> !(t.flow_seq))

(* Close the open span even when [f] escapes by exception (a runtime error
   unwinding through nested frames must not corrupt span nesting). *)
let in_span t ~name ~cat ?end_args fid f =
  match t.tracer with
  | None -> f ()
  | Some _ -> (
    span_begin t ~name ~cat fid;
    match f () with
    | v ->
      span_end ?args:(match end_args with Some g -> Some (g ()) | None -> None) t;
      v
    | exception e ->
      span_end ~args:[ ("unwound", "true") ] t;
      raise e)

(* Event payloads are only constructed when a sink is listening; counters
   are always maintained (they are the report's source of truth). Neither
   charges model cycles, so telemetry cannot perturb the measurements. *)
let emit t mk = if Telemetry.active t.tel then Telemetry.emit t.tel (mk ())

let bump ?n t fs key = Telemetry.Counters.bump ?n (counters t) ~fid:fs.fid key

let count t fs key = Telemetry.Counters.get (counters t) ~fid:fs.fid key

let display_args args =
  String.concat ", " (Array.to_list (Array.map Value.to_display_string args))

(* §4 blacklist: never specialize this function again. *)
let blacklist t fs =
  if not fs.no_specialize then begin
    fs.no_specialize <- true;
    bump t fs Telemetry.Key.blacklists;
    emit t (fun () -> Telemetry.Blacklist { fid = fs.fid; fname = fname t fs.fid })
  end

(* A §4 deoptimization event: a specialized binary was invalidated (cache
   miss or failed entry guard) — distinct from strike-limit discards, which
   only refresh the binary. *)
let deopt t fs reason =
  bump t fs Telemetry.Key.deopts;
  emit t (fun () -> Telemetry.Deopt { fid = fs.fid; fname = fname t fs.fid; reason })

(* ------------------------------------------------------------------ *)
(* Profiling                                                           *)
(* ------------------------------------------------------------------ *)

let observe_args t fs args =
  Array.iteri
    (fun i v ->
      if i < Array.length fs.observed_tags then begin
        let tag = Value.tag_of v in
        if not (List.mem tag fs.observed_tags.(i)) then
          fs.observed_tags.(i) <- tag :: fs.observed_tags.(i)
      end)
    args;
  (match fs.stable_args with
  | None -> fs.stable_args <- Some (Array.map (fun v -> Some v) args)
  | Some st ->
    Array.iteri
      (fun i v ->
        if i < Array.length st then
          match st.(i) with
          | Some prev when not (Value.same_value prev v) -> st.(i) <- None
          | _ -> ())
      args);
  (match fs.last_args with
  | Some prev when Value.same_args prev args -> ()
  | Some _ -> bump t fs Telemetry.Key.arg_set_changes
  | None -> ());
  fs.last_args <- Some args

let stable_tags fs =
  Array.map
    (fun history -> match history with [ tag ] -> Some tag | _ -> None)
    fs.observed_tags

(* Interprocedural fact harvesting (polyvariant policy): after the pipeline
   has run, a call site whose arguments all folded to constants — because
   the caller's burned-in values propagated into them, or because they were
   literals to begin with — announces the exact tuple the callee will
   receive there. The callee's policy view can then value-specialize
   against that signature even when its own call history looks varied.
   Deterministic: the scan follows [block_order] and the per-callee list is
   deduplicated and capped, so pool fan-out cannot reorder it. *)
let max_anticipated = 4

let record_anticipated t (mir : Mir.func) =
  List.iter
    (fun bid ->
      let b = Mir.block mir bid in
      List.iter
        (fun (i : Mir.instr) ->
          match i.Mir.kind with
          | Mir.Call_known (cfid, _, argdefs)
            when cfid >= 0 && cfid < Array.length t.fstates
                 && Array.length argdefs > 0 ->
            let consts =
              Array.map
                (fun d ->
                  match Hashtbl.find_opt mir.Mir.defs d with
                  | Some { Mir.kind = Mir.Constant v; _ } -> Some v
                  | _ -> None)
                argdefs
            in
            if Array.for_all Option.is_some consts then begin
              let signature = Array.map Option.get consts in
              let callee = t.fstates.(cfid) in
              if
                List.length callee.anticipated < max_anticipated
                && not
                     (List.exists
                        (fun s -> Value.same_args s signature)
                        callee.anticipated)
              then begin
                callee.anticipated <- callee.anticipated @ [ signature ];
                bump t callee Telemetry.Key.interpro_facts
              end
            end
          | _ -> ())
        b.Mir.body)
    mir.Mir.block_order

(* The argument tuple as the callee's entry sees it: missing arguments
   padded with [Undefined], surplus arguments dropped (exactly the frame
   adaptation the interpreter and the native activation both perform). Tag
   signatures are always built from this view, never from the raw call. *)
let as_entry t fs args =
  let arity = t.program.Bytecode.Program.funcs.(fs.fid).Bytecode.Program.arity in
  if Array.length args = arity then args
  else
    Array.init arity (fun i -> if i < Array.length args then args.(i) else Value.Undefined)

(* The policy's read-only projection of this function's JIT state. Under
   overload degrade mode specialization is shed outright: the view says
   "don't specialize", so [choose_hot]/[promote]/OSR all pick generic
   keys, without touching the sticky per-function blacklist bit. *)
let want_specialize t fs =
  t.cfg.opt.Pipeline.param_spec && (not fs.no_specialize) && not !(t.degrade)

let policy_view t fs =
  {
    Policy.pv_cache_size = t.cfg.cache_size;
    pv_selective = t.cfg.selective;
    pv_want_specialize = want_specialize t fs;
    pv_calls = count t fs Telemetry.Key.calls;
    pv_arg_set_changes = count t fs Telemetry.Key.arg_set_changes;
    pv_keys = List.map (fun e -> e.key) fs.compiled;
    pv_anticipated = fs.anticipated;
  }

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* The synchronous factory for executable [Code.t]. Every blocking
   compilation path — hot-call compile (generic or specialized), cache
   fill beyond the first entry, selective narrowing, generic
   recompilation after deopt, and OSR compilation from a loop head —
   goes through this function, so the verification below covers all code
   the executor can ever run. The only other door is [bg_core] below,
   which runs the same build→check→optimize→lower→verify sequence for
   the background queue. Keep it that way: a new path that lowers MIR
   elsewhere would bypass the lint layer. *)
let compile t fs ?spec_args ?spec_mask ?spec_tags ?osr () =
  let func = t.program.Bytecode.Program.funcs.(fs.fid) in
  let name = func.Bytecode.Program.name in
  let specialized = spec_args <> None in
  let selective = spec_mask <> None in
  let is_osr = osr <> None in
  (match spec_args with
  | Some args ->
    emit t (fun () ->
        Telemetry.Specialize
          { fid = fs.fid; fname = name; args = display_args args; mask = spec_mask })
  | None ->
    (* Tag-keyed (widened) version: announce what it specializes on. Only
       the polyvariant policy passes [spec_tags], so the paper policy's
       event stream is untouched. *)
    (match spec_tags with
    | Some tags ->
      emit t (fun () ->
          Telemetry.Specialize
            {
              fid = fs.fid;
              fname = name;
              args = Policy.key_to_string (Policy.Key_tags tags);
              mask = None;
            })
    | None -> ()));
  emit t (fun () ->
      Telemetry.Compile_start { fid = fs.fid; fname = name; specialized; selective; osr = is_osr });
  let cycles_before = !(t.compile_cycles) in
  (* Compilation charges no interpreter or native cycles, so the whole
     compile occupies [start_now, start_now + charged) on the span clock
     and pass/codegen children can be placed retroactively inside it. *)
  let start_now = now t in
  let arg_tags = stable_tags fs in
  let mir =
    Builder.build ~program:t.program ~func ?spec_args ?spec_mask ?spec_tags ~arg_tags
      ?osr ~no_checked_int:fs.overflow_bailed ~known_globals:t.known_globals ()
  in
  let spec_check stage =
    if Pipeline.checks () then begin
      let ds = Spec_check.check ~stage mir in
      List.iter
        (fun d ->
          if Diag.is_error d then raise (Diag.Failed d)
          else match Support.Tls.get diag_warn_hook with Some h -> h d | None -> ())
        ds
    end
  in
  (* Baked constants are audited against the cached tuple on the fresh
     graph, where the builder's argument-materialization layout still
     holds; the guard/resume-point audit runs on the optimized graph the
     lowerer will consume. *)
  spec_check `Built;
  (* Tiered pipelines: the polyvariant policy compiles generic versions
     with the quick baseline schedule (the policy decides; the paper
     policy always returns [cfg.opt] unchanged). *)
  let opt =
    Policy.compile_opt t.cfg.policy t.cfg.opt
      ~specialized:(spec_args <> None || spec_tags <> None)
      ~size:(Array.length func.Bytecode.Program.code)
  in
  (* Overload tier: while the service layer has the engine degraded, every
     new compile takes the quick baseline schedule regardless of policy —
     specialization is shed before requests are. *)
  let opt = if !(t.degrade) then Policy.overload_opt opt else opt in
  let pass_stats = Pipeline.apply ~program:t.program opt mir in
  (* The optimizer's work is paid for as soon as it happened — an abort
     below (a diagnostic or an injected fault) still charges it, which is
     what makes compile failures costly rather than free retries. The
     split charge sums to exactly the old single charge on a clean run. *)
  let mir_charge = Cost.compile_per_mir_instr * pass_stats.Pipeline.mir_instrs_processed in
  t.compile_cycles := !(t.compile_cycles) + mir_charge;
  Profile.note_compile ~fid:fs.fid ~stage:"mir" mir_charge;
  (* Per-pass child spans, sequential from the compile's start. Each pass
     was charged [compile_per_mir_instr] per instruction it entered with
     ([pd_before]), and every recorded pass was preceded by exactly one
     such charge, so the children sum to at most [mir_charge] and always
     fit inside the parent compile span. *)
  (match t.tracer with
  | Some _ ->
    ignore
      (List.fold_left
         (fun at pd ->
           let dur = Cost.compile_per_mir_instr * pd.Telemetry.pd_before in
           span_mark t ~name:("pass:" ^ pd.Telemetry.pd_pass) ~cat:"pass" ~start:at ~dur
             ~args:
               [ ("before", string_of_int pd.Telemetry.pd_before);
                 ("after", string_of_int pd.Telemetry.pd_after) ]
             fs.fid;
           at + dur)
         start_now pass_stats.Pipeline.passes)
  | None -> ());
  if Faults.fire Faults.Compile_diag then
    Diag.error ~layer:"fault" ~func:name ~fid:fs.fid "injected compile_diag fault";
  spec_check `Optimized;
  (match Support.Tls.get mir_hook with Some hook -> hook mir | None -> ());
  let vcode = Lower.run mir in
  let code, intervals = Regalloc.run vcode in
  let backend_charge =
    (Cost.compile_per_native_instr * Code.size code)
    + (Cost.compile_per_interval * intervals)
  in
  t.compile_cycles := !(t.compile_cycles) + backend_charge;
  Profile.note_compile ~fid:fs.fid ~stage:"codegen" backend_charge;
  span_mark t ~name:"codegen" ~cat:"codegen" ~start:(start_now + mir_charge)
    ~dur:backend_charge
    ~args:[ ("size", string_of_int (Code.size code)) ]
    fs.fid;
  (* Internal assert on the backend's output (no model cycles charged):
     catches allocation and snapshot bugs at their source instead of as a
     downstream miscomputation. A failure here aborts the compilation with
     the backend work already charged. *)
  Code_verify.run code;
  if Faults.fire Faults.Code_verify then
    Diag.error ~layer:"fault" ~func:name ~fid:fs.fid "injected code_verify fault";
  (* Interprocedural facts and version ids exist only under the
     polyvariant policy; the paper policy's counters and code records stay
     byte-identical to the pre-policy engine. *)
  if t.cfg.policy = Policy.Polyvariant then begin
    record_anticipated t mir;
    fs.next_version <- fs.next_version + 1;
    code.Code.version <- fs.next_version
  end;
  bump t fs Telemetry.Key.compiles;
  if !(t.degrade) then bump t fs Telemetry.Key.compiles_degraded;
  if specialized then bump t fs Telemetry.Key.compiles_specialized;
  if spec_tags <> None then bump t fs Telemetry.Key.compiles_widened;
  if is_osr then bump t fs Telemetry.Key.compiles_osr;
  if pass_stats.Pipeline.inlined > 0 then begin
    bump ~n:pass_stats.Pipeline.inlined t fs Telemetry.Key.inlined;
    emit t (fun () ->
        Telemetry.Inline_decision
          { fid = fs.fid; fname = name; inlined = pass_stats.Pipeline.inlined })
  end;
  if pass_stats.Pipeline.guards_elided > 0 then begin
    bump ~n:pass_stats.Pipeline.guards_elided t fs Telemetry.Key.guards_elided;
    List.iter
      (fun (e : Mir.elision) ->
        emit t (fun () ->
            Telemetry.Guard_elided
              {
                fid = fs.fid;
                fname = name;
                guard = e.Mir.el_kind;
                origin_fid = e.Mir.el_ofid;
                pc = e.Mir.el_pc;
              }))
      pass_stats.Pipeline.elisions
  end;
  emit t (fun () ->
      Telemetry.Compile_end
        {
          fid = fs.fid;
          fname = name;
          specialized;
          selective;
          osr = is_osr;
          size = Code.size code;
          cycles = !(t.compile_cycles) - cycles_before;
          passes = pass_stats.Pipeline.passes;
        });
  fs.sizes <- (specialized, Code.size code) :: fs.sizes;
  let key =
    match spec_args with
    | Some a -> Policy.Key_values (a, spec_mask)
    | None -> (
      match spec_tags with
      | Some tags -> Policy.Key_tags tags
      | None -> Policy.Key_generic)
  in
  { code; key; strikes = 0; last_use = 0 }

(* The background compile body: the same build → spec-check → optimize →
   lower → allocate → verify sequence as [compile], shorn of everything
   that must stay on the requesting isolate — telemetry, spans, profile
   attribution, clock charges, TLS hooks. It may run on any pool domain,
   so every input arrives as an explicit argument (captured at enqueue)
   and every observation leaves in the returned value: warnings are
   collected rather than delivered, fault decisions ([fire_diag],
   [fire_verify]) were drawn at enqueue, and the cycle charges are
   reported for the harvester to book off-clock. Raises nothing:
   [Diag.Failed] is folded into the result. *)
let bg_core ~program ~(func : Bytecode.Program.func) ?spec_args ?spec_mask ?spec_tags
    ~arg_tags ?osr ~no_checked_int ~known_globals ~opt ~check ~fire_diag ~fire_verify () =
  let name = func.Bytecode.Program.name in
  let fid = func.Bytecode.Program.fid in
  let warnings = ref [] in
  let charged = ref 0 in
  try
    let mir =
      Builder.build ~program ~func ?spec_args ?spec_mask ?spec_tags ~arg_tags ?osr
        ~no_checked_int ~known_globals ()
    in
    let spec_check stage =
      if check then
        List.iter
          (fun d ->
            if Diag.is_error d then raise (Diag.Failed d)
            else warnings := d :: !warnings)
          (Spec_check.check ~stage mir)
    in
    spec_check `Built;
    let pass_stats = Pipeline.apply ~check ~program opt mir in
    let mir_charge = Cost.compile_per_mir_instr * pass_stats.Pipeline.mir_instrs_processed in
    charged := mir_charge;
    if fire_diag then Diag.error ~layer:"fault" ~func:name ~fid "injected compile_diag fault";
    spec_check `Optimized;
    let vcode = Lower.run mir in
    let code, intervals = Regalloc.run vcode in
    let backend_charge =
      (Cost.compile_per_native_instr * Code.size code)
      + (Cost.compile_per_interval * intervals)
    in
    charged := mir_charge + backend_charge;
    Code_verify.run code;
    if fire_verify then Diag.error ~layer:"fault" ~func:name ~fid "injected code_verify fault";
    Ok
      {
        g_code = code;
        g_mir = mir;
        g_stats = pass_stats;
        g_mir_charge = mir_charge;
        g_backend_charge = backend_charge;
        g_warnings = List.rev !warnings;
      }
  with Diag.Failed d -> Error (d, !charged)

(* ------------------------------------------------------------------ *)
(* Failure containment: quarantine, code-cache budget, the barrier      *)
(* ------------------------------------------------------------------ *)

(* Quarantine with exponential backoff: after the [n]-th compile failure
   the function may not attempt compilation again until [2^n] hot-call
   thresholds' worth of further calls have accumulated; past the retry cap
   it is pinned to the interpreter tier for good. Loop-edge credit is
   dropped too, so OSR does not sneak a quarantined function back into the
   compiler early (its threshold scales by the same power of two). *)
let quarantine t fs reason =
  fs.q_failures <- fs.q_failures + 1;
  if fs.q_failures > t.cfg.compile_retries then begin
    if not fs.pinned then begin
      fs.pinned <- true;
      bump t fs Telemetry.Key.pins;
      emit t (fun () ->
          Telemetry.Quarantine
            { fid = fs.fid; fname = fname t fs.fid; reason; backoff_calls = 0;
              permanent = true })
    end
  end
  else begin
    let backoff = t.cfg.hot_calls * (1 lsl min fs.q_failures 16) in
    fs.quarantine_until <- count t fs Telemetry.Key.calls + backoff;
    fs.loop_edges <- 0;
    bump t fs Telemetry.Key.quarantines;
    emit t (fun () ->
        Telemetry.Quarantine
          { fid = fs.fid; fname = fname t fs.fid; reason; backoff_calls = backoff;
            permanent = false })
  end

let can_compile t fs =
  (not fs.pinned) && count t fs Telemetry.Key.calls >= fs.quarantine_until

(* Deopt-storm detector: a function oscillating compile→bailout→discard
   burns compile cycles without settling. [storm_threshold] binary
   discards (entry bails and strike limits — not §4 argument-mismatch
   deopts, which blacklist and settle by themselves) trip a quarantine. *)
let note_discard t fs =
  fs.discards <- fs.discards + 1;
  if fs.discards >= t.cfg.storm_threshold then begin
    fs.discards <- 0;
    bump t fs Telemetry.Key.storms;
    quarantine t fs Telemetry.Deopt_storm
  end

(* Code-cache byte accounting. Every install/detach goes through these
   helpers so [cache_bytes] is exact; none of this charges model cycles. *)
let entry_bytes entry = Code.size entry.code * Cost.bytes_per_native_instr

let touch t entry =
  t.lru_tick := !(t.lru_tick) + 1;
  entry.last_use <- !(t.lru_tick)

let install_entry t fs entry =
  fs.compiled <- entry :: fs.compiled;
  t.cache_bytes := !(t.cache_bytes) + entry_bytes entry

let detach t fs entry =
  if List.memq entry fs.compiled then begin
    fs.compiled <- List.filter (fun e -> e != entry) fs.compiled;
    t.cache_bytes := !(t.cache_bytes) - entry_bytes entry
  end

let clear_compiled t fs =
  List.iter (fun e -> t.cache_bytes := !(t.cache_bytes) - entry_bytes e) fs.compiled;
  fs.compiled <- []

(* Cross-function LRU eviction: free room for [need] bytes by discarding
   the least recently touched binaries anywhere in the engine. Eviction is
   a capacity decision, not a policy one — no deopt, no blacklist, no
   strike or storm accounting; a later hot call simply recompiles. *)
let evict_for t need =
  let victim () =
    let best = ref None in
    Array.iter
      (fun fs ->
        List.iter
          (fun e ->
            match !best with
            | Some (_, b) when b.last_use <= e.last_use -> ()
            | _ -> best := Some (fs, e))
          fs.compiled)
      t.fstates;
    !best
  in
  let rec go () =
    if !(t.cache_bytes) + need > t.cfg.code_cache_bytes then
      match victim () with
      | None -> ()
      | Some (owner, e) ->
        let bytes = entry_bytes e in
        detach t owner e;
        bump t owner Telemetry.Key.cache_evictions;
        emit t (fun () ->
            Telemetry.Cache_evict
              { fid = owner.fid; fname = fname t owner.fid; bytes;
                in_use = !(t.cache_bytes) });
        go ()
  in
  go ()

(* Admission: a freshly compiled binary may enter the code cache if the
   byte budget (0 = unbounded) can accommodate it after LRU eviction —
   a single binary larger than the whole budget is refused outright. *)
let admit t entry =
  if Faults.fire Faults.Cache_oom then false
  else if t.cfg.code_cache_bytes <= 0 then true
  else begin
    let need = entry_bytes entry in
    evict_for t need;
    !(t.cache_bytes) + need <= t.cfg.code_cache_bytes
  end

(* The containment barrier around the compile factory: a compilation that
   fails — a verifier/lint diagnostic or an injected fault — is charged
   for the work it did, reported ([Compile_abort], [diag_abort_hook]) and
   answered with a quarantine; the caller falls back to the interpreter.
   This is the boundary that keeps [Diag.Failed] from escaping [run]. *)
let try_compile (t : t) fs ?spec_args ?spec_mask ?spec_tags ?osr () =
  let cycles_before = !(t.compile_cycles) in
  (* The span covers successful and aborted compiles alike — wasted cycles
     are charged, so they must be visible in the trace too. *)
  span_begin t
    ~name:(if count t fs Telemetry.Key.compiles > 0 then "recompile" else "compile")
    ~cat:"compile" fs.fid;
  match compile t fs ?spec_args ?spec_mask ?spec_tags ?osr () with
  | entry ->
    span_end
      ~args:
        [ ("specialized", if spec_args <> None then "true" else "false");
          ("osr", if osr <> None then "true" else "false") ]
      t;
    if admit t entry then begin
      touch t entry;
      Some entry
    end
    else begin
      quarantine t fs Telemetry.Cache_oom;
      None
    end
  | exception Diag.Failed d ->
    span_end ~args:[ ("aborted", "true") ] t;
    bump t fs Telemetry.Key.compiles_aborted;
    (match Support.Tls.get diag_abort_hook with Some h -> h d | None -> ());
    emit t (fun () ->
        Telemetry.Compile_abort
          {
            fid = fs.fid;
            fname = fname t fs.fid;
            specialized = spec_args <> None;
            osr = osr <> None;
            reason = d.Diag.message;
            cycles = !(t.compile_cycles) - cycles_before;
          });
    quarantine t fs Telemetry.Compile_fault;
    None

(* Which arguments have been value-stable across every observed call. *)
let stability_mask fs =
  match fs.stable_args with
  | None -> [||]
  | Some st -> Array.map Option.is_some st

(* ------------------------------------------------------------------ *)
(* Background compilation: enqueue, harvest, install, supersede         *)
(* ------------------------------------------------------------------ *)

(* The queue is live only while the engine is healthy: degrade mode
   drains it (below) and suppresses new requests, falling back to the
   PR-8 synchronous semantics. *)
let bg_active t = t.bg <> None && not !(t.degrade)

(* Values the compile thunk may not read from another domain at an
   arbitrary wall-clock moment: anything mutable. Requests that bake such
   values run inline at harvest instead ([Task.spawn ~inline]), so both
   [--jobs] settings read them at the same model-clock point. *)
let bg_mutable_value = function
  | Value.Obj _ | Value.Arr _ | Value.Closure _ -> true
  | Value.Undefined | Value.Null | Value.Bool _ | Value.Int _ | Value.Double _
  | Value.Str _ | Value.Native_fun _ -> false

let bg_cancel t fs ~reason key =
  bump t fs key;
  emit t (fun () -> Telemetry.Compile_cancel { fid = fs.fid; fname = fname t fs.fid; reason })

(* Admit one compile request to the background queue. The whole request —
   builder inputs, pipeline config, fault decisions, the cache key and
   the install plan — is decided here, at the model-clock instant of the
   enqueue; the physical compile is free to run on any pool domain later.
   At most one request per function is in flight (further hot calls of a
   function that is already queued just keep interpreting). *)
let bg_request t fs ~kind ?spec_args ?spec_mask ?spec_tags ?osr ?supersede ?widen_info () =
  match t.bg with
  | None -> ()
  | Some q ->
    if Bgcompile.pending_for q ~fid:fs.fid <> None then ()
    else if Bgcompile.length q >= Bgcompile.depth q then
      (* Queue full: drop the request outright — the function stays in
         the interpreter tier and a later hot call retries. No fault
         draws happen for refused requests. *)
      bg_cancel t fs ~reason:"overflow" Telemetry.Key.bg_overflow
    else if Faults.fire Faults.Bg_enqueue then
      bg_cancel t fs ~reason:"enqueue-fault" Telemetry.Key.bg_cancelled
    else begin
      let func = t.program.Bytecode.Program.funcs.(fs.fid) in
      let size = Array.length func.Bytecode.Program.code in
      let specialized = spec_args <> None || spec_tags <> None in
      let opt = Policy.compile_opt t.cfg.policy t.cfg.opt ~specialized ~size in
      let cost = Cost.bg_compile_cost ~size ~specialized ~passes:(Pipeline.npasses opt) in
      (* Fault decisions are occurrence-counted at enqueue (the compile's
         logical start); the thunk itself draws nothing. A fired diag
         fault aborts before the verifier barrier, so the verify draw
         only happens when the compile would reach it — mirroring the
         synchronous factory's conditional draw order. *)
      let fire_diag = Faults.fire Faults.Compile_diag in
      let fire_verify = (not fire_diag) && Faults.fire Faults.Code_verify in
      let check = Pipeline.checks () in
      let arg_tags = stable_tags fs in
      let program = t.program
      and known_globals = t.known_globals
      and no_checked_int = fs.overflow_bailed in
      let thunk () =
        bg_core ~program ~func ?spec_args ?spec_mask ?spec_tags ~arg_tags ?osr
          ~no_checked_int ~known_globals ~opt ~check ~fire_diag ~fire_verify ()
      in
      let inline =
        (match spec_args with
        | Some a -> Array.exists bg_mutable_value a
        | None -> false)
        ||
        match osr with
        | Some o ->
          Array.exists bg_mutable_value o.Builder.osr_args
          || Array.exists bg_mutable_value o.Builder.osr_locals
        | None -> false
      in
      let task = Bgcompile.Task.spawn ~inline thunk in
      let key =
        match spec_args with
        | Some a -> Policy.Key_values (a, spec_mask)
        | None -> (
          match spec_tags with
          | Some tags -> Policy.Key_tags tags
          | None -> Policy.Key_generic)
      in
      let flow_id = new_flow_id t in
      let job =
        {
          j_task = task;
          j_kind = kind;
          j_specialized = spec_args <> None;
          j_selective = spec_mask <> None;
          j_widened = spec_tags <> None;
          j_key = key;
          j_osr = osr;
          j_supersede = supersede;
          j_widen_info = widen_info;
          j_flow = flow_id;
          j_trace = Telemetry.current_trace ();
        }
      in
      match Bgcompile.enqueue q ~fid:fs.fid ~now:(now t) ~cost job with
      | Error `Overflow ->
        (* Unreachable (depth checked above), but keep the queue honest. *)
        Bgcompile.Task.cancel task;
        bg_cancel t fs ~reason:"overflow" Telemetry.Key.bg_overflow
      | Ok e ->
        bump t fs Telemetry.Key.bg_queued;
        emit t (fun () ->
            Telemetry.Compile_enqueue
              {
                fid = fs.fid;
                fname = fname t fs.fid;
                kind;
                osr = osr <> None;
                ready = e.Bgcompile.e_ready;
                depth = Bgcompile.length q;
              });
        (* The flow starts on the requesting lane at the enqueue instant;
           exactly one matching finish is emitted wherever the job leaves
           the system (install, abort, cancel, drain or teardown). *)
        if flow_id <> 0 then
          span_flow t ~phase:`Start ~id:flow_id ~name:("bg-" ^ kind) fs.fid
    end

(* One policy keying decision, routed to the queue instead of the
   synchronous factory — the parameter construction mirrors
   [compile_with_choice]/[specialize_selectively] exactly, including the
   interprocedural-seed accounting and the all-varying blacklist. *)
let bg_request_choice t fs args choice =
  (match choice with
  | Policy.Spec_values
    when t.cfg.policy = Policy.Polyvariant
         && Policy.anticipated_match (policy_view t fs) args ->
    bump t fs Telemetry.Key.interpro_seeded
  | _ -> ());
  match choice with
  | Policy.Spec_generic -> bg_request t fs ~kind:"generic" ()
  | Policy.Spec_values -> bg_request t fs ~kind:"values" ~spec_args:args ()
  | Policy.Spec_tags ->
    bg_request t fs ~kind:"tags" ~spec_tags:(Array.map Value.tag_of (as_entry t fs args)) ()
  | Policy.Spec_selective ->
    let mask = stability_mask fs in
    if Array.length mask = 0 || Array.exists Fun.id mask then
      bg_request t fs ~kind:"selective" ~spec_args:args ~spec_mask:mask ()
    else begin
      blacklist t fs;
      bg_request t fs ~kind:"generic" ()
    end

(* Install one harvested artifact. This is where everything the
   synchronous path did around [compile] happens — at the model-clock
   instant of the harvesting call or loop edge: warnings and the MIR hook
   are delivered, counters bump, the version stamps, admission runs, and
   the widen ladder's supersede detaches its victim. Cycle charges go to
   the off-clock [bg_cycles] accumulator, never to the model clock.
   Returns the installed entry (for the OSR poll to enter). *)
let bg_install_under t fs (e : bg_job Bgcompile.entry) =
  let j = e.Bgcompile.e_payload in
  let name = fname t fs.fid in
  (* Exactly one flow finish per started flow: emitted on every terminal
     outcome of this job (install, abort, cancel), but not on the fault
     path's re-enqueue — the job stays in flight there. *)
  let finish_flow why =
    if j.j_flow <> 0 then
      span_flow ?trace:j.j_trace t ~phase:`Finish ~id:j.j_flow ~name:("bg-" ^ why) fs.fid
  in
  match Bgcompile.Task.force j.j_task with
  | Error (d, wasted) ->
    t.bg_cycles := !(t.bg_cycles) + wasted;
    bump t fs Telemetry.Key.compiles_aborted;
    (match Support.Tls.get diag_abort_hook with Some h -> h d | None -> ());
    emit t (fun () ->
        Telemetry.Compile_abort
          {
            fid = fs.fid;
            fname = name;
            specialized = j.j_specialized;
            osr = j.j_osr <> None;
            reason = d.Diag.message;
            cycles = wasted;
          });
    quarantine t fs Telemetry.Compile_fault;
    finish_flow "abort";
    None
  | Ok out ->
    let charge = out.g_mir_charge + out.g_backend_charge in
    t.bg_cycles := !(t.bg_cycles) + charge;
    List.iter
      (fun d -> match Support.Tls.get diag_warn_hook with Some h -> h d | None -> ())
      out.g_warnings;
    if Faults.fire Faults.Bg_install then begin
      (* Dropped artifact: the finished binary is discarded and the
         request re-enqueued with doubled modeled cost (backoff) — the
         redo is charged again at its own install — until the retry cap
         quarantines the function. *)
      bg_cancel t fs ~reason:"install-fault" Telemetry.Key.bg_cancelled;
      if e.Bgcompile.e_attempts > t.cfg.compile_retries then begin
        quarantine t fs Telemetry.Compile_fault;
        finish_flow "cancel"
      end
      else begin
        match t.bg with
        | None -> finish_flow "cancel"
        | Some q -> (
          match
            Bgcompile.enqueue q ~fid:fs.fid ~now:(now t) ~cost:(e.Bgcompile.e_cost * 2)
              ~attempts:(e.Bgcompile.e_attempts + 1) j
          with
          (* Re-enqueued: the job (and its flow) stays in flight. *)
          | Ok _ -> bump t fs Telemetry.Key.bg_queued
          | Error `Overflow ->
            bg_cancel t fs ~reason:"overflow" Telemetry.Key.bg_overflow;
            quarantine t fs Telemetry.Compile_fault;
            finish_flow "cancel")
      end;
      None
    end
    else begin
      (match Support.Tls.get mir_hook with Some hook -> hook out.g_mir | None -> ());
      let code = out.g_code in
      if t.cfg.policy = Policy.Polyvariant then begin
        record_anticipated t out.g_mir;
        fs.next_version <- fs.next_version + 1;
        code.Code.version <- fs.next_version
      end;
      bump t fs Telemetry.Key.compiles;
      if j.j_specialized then bump t fs Telemetry.Key.compiles_specialized;
      if j.j_widened then bump t fs Telemetry.Key.compiles_widened;
      if j.j_osr <> None then bump t fs Telemetry.Key.compiles_osr;
      if out.g_stats.Pipeline.inlined > 0 then begin
        bump ~n:out.g_stats.Pipeline.inlined t fs Telemetry.Key.inlined;
        emit t (fun () ->
            Telemetry.Inline_decision
              { fid = fs.fid; fname = name; inlined = out.g_stats.Pipeline.inlined })
      end;
      if out.g_stats.Pipeline.guards_elided > 0 then begin
        bump ~n:out.g_stats.Pipeline.guards_elided t fs Telemetry.Key.guards_elided;
        List.iter
          (fun (el : Mir.elision) ->
            emit t (fun () ->
                Telemetry.Guard_elided
                  {
                    fid = fs.fid;
                    fname = name;
                    guard = el.Mir.el_kind;
                    origin_fid = el.Mir.el_ofid;
                    pc = el.Mir.el_pc;
                  }))
          out.g_stats.Pipeline.elisions
      end;
      fs.sizes <- (j.j_specialized, Code.size code) :: fs.sizes;
      let entry = { code; key = j.j_key; strikes = 0; last_use = 0 } in
      if admit t entry then begin
        touch t entry;
        (* Supersede: the widen ladder's victim goes only once its
           replacement has actually landed — until here the old version
           kept serving, which is the whole point of recompiling in the
           background. The victim may have been evicted or discarded in
           flight; [detach] no-ops then. *)
        (match j.j_supersede with
        | Some victim when List.memq victim fs.compiled ->
          (match j.j_widen_info with
          | Some (index, from_key, to_key, entries) ->
            bump t fs Telemetry.Key.versions_widened;
            emit t (fun () ->
                Telemetry.Version_widen
                  { fid = fs.fid; fname = name; index; from_key; to_key; entries })
          | None -> ());
          detach t fs victim;
          bump t fs Telemetry.Key.bg_superseded
        | _ -> ());
        install_entry t fs entry;
        bump t fs Telemetry.Key.bg_installed;
        emit t (fun () ->
            Telemetry.Compile_ready
              {
                fid = fs.fid;
                fname = name;
                size = Code.size code;
                cycles = charge;
                wait = now t - e.Bgcompile.e_enqueue;
              });
        (* Zero-length trace marker at the harvest instant (a full span
           would overlap the enclosing interpret span arbitrarily). *)
        span_mark t ~name:"bg-ready" ~cat:"bg" ~start:(now t) ~dur:0
          ~args:[ ("size", string_of_int (Code.size code)) ]
          fs.fid;
        finish_flow "install";
        Some entry
      end
      else begin
        quarantine t fs Telemetry.Cache_oom;
        finish_flow "cache-oom";
        None
      end
    end

(* Installs run at the harvesting call's model-clock instant but belong to
   the request that enqueued them: re-assert that request's trace context
   so the install's spans, events and flight-recorder entries are
   attributed back to the requesting tenant. *)
let bg_install t fs (e : bg_job Bgcompile.entry) =
  match e.Bgcompile.e_payload.j_trace with
  | None -> bg_install_under t fs e
  | Some _ as trace -> Telemetry.with_trace trace (fun () -> bg_install_under t fs e)

(* Harvest every ready artifact for [fs] at a call boundary. OSR-flavored
   artifacts install too (their entry guards make them valid from a
   normal call); the loop-edge poll below is the only place that enters
   one mid-activation. *)
let bg_harvest t fs =
  match t.bg with
  | None -> ()
  | Some q ->
    List.iter
      (fun e -> ignore (bg_install t fs e))
      (Bgcompile.take_ready q ~fid:fs.fid ~now:(now t))

let bg_pending t fs =
  match t.bg with None -> None | Some q -> Bgcompile.pending_for q ~fid:fs.fid

(* Soundness gate for entering an OSR-flavored background artifact. The
   binary was compiled against the loop-head snapshot taken at enqueue;
   by the time it lands, the loop has kept running and the frame may have
   moved. Specialized compiles bake the snapshot's *argument* values as
   constants through the body, so entry demands the live args still hold
   exactly those values; unspecialized args — and the locals, which a
   queued request never bakes ([osr_bake_locals] is false, so the OSR
   block loads them live, statically typed to the snapshot tags) — only
   need tag-for-tag agreement. The loop counter advancing is exactly the
   expected case, not staleness. A refused entry is not a failure: the
   binary still installed and serves later calls through its guarded
   normal entry. *)
let bg_osr_frame_matches (o : Builder.osr_request) (frame : Interp.frame) =
  let same_values snap live =
    Array.length snap = Array.length live
    && Array.for_all2 (fun a b -> Value.same_value a b) snap live
  in
  let same_tags snap live =
    Array.length snap = Array.length live
    && Array.for_all2 (fun a b -> Value.tag_of a = Value.tag_of b) snap live
  in
  let args_agree = if o.Builder.osr_specialize then same_values else same_tags in
  let locals_agree =
    if o.Builder.osr_specialize && o.Builder.osr_bake_locals then same_values else same_tags
  in
  args_agree o.Builder.osr_args frame.Interp.args
  && locals_agree o.Builder.osr_locals frame.Interp.locals

(* The widen ladder, queue-routed: decide the one-step-wider key now, but
   leave the victim installed and serving until the replacement lands —
   [bg_install] detaches it then ([j_supersede]). This, together with the
   queue-routed [promote] and miss paths, is the re-specialization loop:
   operand drift shows up in the policy's live counters (arg-set changes,
   misses), its decisions become queue entries, and installed versions
   are superseded instead of dropped. *)
let bg_widen_request t fs index args =
  if bg_pending t fs <> None then ()
  else
    match List.nth_opt fs.compiled index with
    | None -> ()
    | Some victim -> (
      match Policy.widen victim.key (as_entry t fs args) with
      | None -> ()
      | Some wider ->
        if Faults.fire Faults.Version_widen then quarantine t fs Telemetry.Compile_fault
        else begin
          let info =
            ( index,
              Policy.key_to_string victim.key,
              Policy.key_to_string wider,
              List.length fs.compiled )
          in
          match wider with
          | Policy.Key_tags tags ->
            bg_request t fs ~kind:"tags" ~spec_tags:tags ~supersede:victim ~widen_info:info ()
          | Policy.Key_generic ->
            bg_request t fs ~kind:"generic" ~supersede:victim ~widen_info:info ()
          | Policy.Key_values _ -> assert false
        end)

(* Cancel everything in flight (degrade transition, isolate recycle).
   Artifacts never leak: pending pool jobs are cancelled or abandoned,
   and nothing installs without passing through [bg_install]. *)
let bg_drain t ~reason =
  match t.bg with
  | None -> 0
  | Some q ->
    let entries = Bgcompile.drain q in
    List.iter
      (fun (e : bg_job Bgcompile.entry) ->
        let j = e.Bgcompile.e_payload in
        Bgcompile.Task.cancel j.j_task;
        if j.j_flow <> 0 then
          span_flow ?trace:j.j_trace t ~phase:`Finish ~id:j.j_flow
            ~name:("bg-" ^ reason) e.Bgcompile.e_fid;
        bg_cancel t t.fstates.(e.Bgcompile.e_fid) ~reason Telemetry.Key.bg_cancelled)
      entries;
    List.length entries

let drain_bg t = bg_drain t ~reason:"recycle"
let bg_in_flight t = match t.bg with None -> 0 | Some q -> Bgcompile.length q

(* Trace-only teardown: close the flow of every still-queued job without
   counters or events. A traced service run ends with engines holding
   in-flight compiles that will never be harvested; their flows must still
   balance (the trace_check gate requires one finish per start), but
   counting them as cancels would make a traced run's summary differ from
   an untraced one — teardown is an artifact of observation, not a policy
   decision. No-op without a tracer. *)
let flush_flows t =
  match (t.bg, t.tracer) with
  | Some q, Some _ ->
    List.iter
      (fun (e : bg_job Bgcompile.entry) ->
        let j = e.Bgcompile.e_payload in
        Bgcompile.Task.cancel j.j_task;
        if j.j_flow <> 0 then
          span_flow ?trace:j.j_trace t ~phase:`Finish ~id:j.j_flow ~name:"bg-teardown"
            e.Bgcompile.e_fid)
      (Bgcompile.drain q)
  | _ -> ()

(* Degrade mode suppresses the queue entirely ([bg_active]) and drains it
   on the way in: under overload the last thing the isolate needs is
   speculative compiles landing. Clearing degrade re-arms the queue. *)
let set_degrade t on =
  if on && not !(t.degrade) then ignore (bg_drain t ~reason:"degrade");
  t.degrade := on

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* The engine's three mutually recursive activities: dispatching calls,
   running native code (with bailout resume), and interpreting. *)
let rec call_value t (callee : Value.t) args =
  match callee with
  | Value.Closure c -> call_closure t c args
  | Value.Native_fun name -> (
    try Builtins.call name args
    with Builtins.Runtime_error msg -> raise (Runtime_error msg))
  | other -> raise (Runtime_error (Printf.sprintf "%s is not callable" (Value.typeof other)))

(* Cache lookup: a generic binary serves any arguments; a specialized one
   only its cached tuple. Hits move to the front (LRU), refresh the
   global-LRU clock, and report the probed index. *)
and cache_find t fs args =
  let found =
    match t.cfg.policy with
    | Policy.Paper ->
      (* First match in LRU order — byte-for-byte the pre-policy probe.
         Paper caches never mix specificities (generic code only exists
         after [clear_compiled]), so order is immaterial there anyway. *)
      let rec probe i = function
        | [] -> None
        | entry :: _ when Policy.matches entry.key args -> Some (i, entry)
        | _ :: rest -> probe (i + 1) rest
      in
      probe 0 fs.compiled
    | Policy.Polyvariant ->
      (* Most-specific match: the generic catch-all coexists with
         specialized versions and must not shadow them when a recent
         generic hit moved it to the front of the LRU order. Ties keep
         the most recently used entry (lowest index). *)
      let best = ref None in
      List.iteri
        (fun i entry ->
          if Policy.matches entry.key args then
            match !best with
            | Some (_, b) when Policy.key_rank b.key <= Policy.key_rank entry.key -> ()
            | _ -> best := Some (i, entry))
        fs.compiled;
      !best
  in
  match found with
  | None -> None
  | Some (i, entry) ->
    fs.compiled <- entry :: List.filter (fun e -> e != entry) fs.compiled;
    touch t entry;
    Some (i, entry)

and call_closure t (c : Value.closure) args =
  if !(t.depth) >= t.cfg.max_depth then raise (Runtime_error "stack overflow");
  t.depth := !(t.depth) + 1;
  Fun.protect
    ~finally:(fun () -> t.depth := !(t.depth) - 1)
    (fun () -> call_closure_at_depth t c args)

and call_closure_at_depth t (c : Value.closure) args =
  let fs = t.fstates.(c.Value.fid) in
  let func = t.program.Bytecode.Program.funcs.(c.Value.fid) in
  bump t fs Telemetry.Key.calls;
  observe_args t fs args;
  (* Harvest first: an artifact whose modeled ready cycle has passed must
     be installed before the cache probe, so the very call that finds the
     queue done is the first call the binary serves. *)
  if bg_active t then bg_harvest t fs;
  (* Any compile attempt below may abort (returning [None]): the call then
     falls back to plain interpretation and the quarantine clock decides
     when compilation is tried again. *)
  let run_or_interp = function
    | Some entry ->
      install_entry t fs entry;
      run_native_entry t fs func c args entry
    | None -> interpret t func ~upvals:c.Value.env ~args
  in
  match cache_find t fs args with
  | Some (index, entry) ->
    bump t fs Telemetry.Key.cache_hits;
    emit t (fun () ->
        Telemetry.Cache_hit
          { fid = fs.fid; fname = fname t fs.fid; index;
            entries = List.length fs.compiled });
    (* Tier-2 promotion: a generic tier-1 binary serving a function that
       stayed hot gets a specialized sibling (polyvariant only — the
       paper policy's [promote] is always [None]). The specialized
       version serves this very call; the catch-all stays behind it for
       every signature the new key does not cover. *)
    let promoted =
      match entry.key with
      | Policy.Key_generic
        when t.cfg.policy = Policy.Polyvariant && t.cfg.jit && can_compile t fs -> (
        match
          Policy.promote t.cfg.policy (policy_view t fs) ~args
            ~hot_calls:t.cfg.hot_calls
        with
        | None -> None
        | Some choice ->
          bump t fs Telemetry.Key.versions_promoted;
          (* Background mode: the generic binary serves this call too;
             the specialized sibling is queued and takes over at its
             harvest. *)
          if bg_active t then begin
            bg_request_choice t fs args choice;
            None
          end
          else compile_with_choice t fs args choice)
      | _ -> None
    in
    (match promoted with
    | Some better ->
      install_entry t fs better;
      run_native_entry t fs func c args better
    | None -> run_native_entry t fs func c args entry)
  | None ->
    if fs.compiled <> [] then begin
      bump t fs Telemetry.Key.cache_misses;
      emit t (fun () ->
          Telemetry.Cache_miss
            { fid = fs.fid; fname = fname t fs.fid; entries = List.length fs.compiled });
      (* Hot, compiled, but no binary fits these arguments. With the
         paper's one-entry cache this is the deoptimization event: discard,
         recompile generic, never specialize again (§4). The §6 extension
         (cache_size > 1) first fills the cache with further specialized
         versions; the selective extension instead narrows the burned-in
         argument set to the positions still observed stable (sticky, so
         the narrowing terminates in at most [arity] recompiles). A
         quarantined function keeps its binaries but does not recompile:
         the miss just interprets. A degraded engine does the same — a
         miss under overload must not deopt, blacklist or widen state
         that was healthy before the overload, so the warm cache comes
         back intact when the queue drains. *)
      if (not (can_compile t fs)) || !(t.degrade) then
        interpret t func ~upvals:c.Value.env ~args
      else if bg_active t then begin
        (* Queue-routed misses: the state transitions (deopt, blacklist,
           cache clearing) happen now, exactly as in the synchronous
           paths below; only the compile itself moves to the queue, so
           this call — and every call until the artifact lands —
           interprets instead of stalling. *)
        (match Policy.on_miss t.cfg.policy (policy_view t fs) ~args with
        | Policy.Miss_respecialize ->
          clear_compiled t fs;
          deopt t fs Telemetry.Arg_mismatch;
          bg_request_choice t fs args Policy.Spec_selective
        | Policy.Miss_fill choice -> bg_request_choice t fs args choice
        | Policy.Miss_widen index -> bg_widen_request t fs index args
        | Policy.Miss_deopt_generic ->
          clear_compiled t fs;
          deopt t fs Telemetry.Arg_mismatch;
          blacklist t fs;
          bg_request t fs ~kind:"generic" ());
        interpret t func ~upvals:c.Value.env ~args
      end
      else begin
        match Policy.on_miss t.cfg.policy (policy_view t fs) ~args with
        | Policy.Miss_respecialize ->
          clear_compiled t fs;
          deopt t fs Telemetry.Arg_mismatch;
          run_or_interp (specialize_selectively t fs args)
        | Policy.Miss_fill choice ->
          run_or_interp (compile_with_choice t fs args choice)
        | Policy.Miss_widen index -> run_or_interp (widen_version t fs index args)
        | Policy.Miss_deopt_generic ->
          clear_compiled t fs;
          deopt t fs Telemetry.Arg_mismatch;
          blacklist t fs;
          run_or_interp (try_compile t fs ())
      end
    end
    else if
      t.cfg.jit && can_compile t fs
      && count t fs Telemetry.Key.calls >= t.cfg.hot_calls
    then begin
      (* Zero-length marker: the hot-detection instant that triggered this
         compile attempt (the compile span itself follows). *)
      span_mark t ~name:"hot" ~cat:"interp" ~start:(now t) ~dur:0
        ~args:[ ("calls", string_of_int (count t fs Telemetry.Key.calls)) ]
        fs.fid;
      let view = policy_view t fs in
      let choice = Policy.choose_hot t.cfg.policy view ~args in
      (* The headline path: the hot-call site hands the compile to the
         queue and interprets this call — no synchronous compile cycles
         are ever charged to the requester. The artifact lands at a later
         call's harvest (or a loop edge's OSR poll). *)
      if bg_active t then begin
        bg_request_choice t fs args choice;
        interpret t func ~upvals:c.Value.env ~args
      end
      else run_or_interp (compile_with_choice t fs args choice)
    end
    else interpret t func ~upvals:c.Value.env ~args

(* Execute one policy keying decision. The [Spec_values] cases covered by
   an interprocedural constant signature are counted — they are the
   decisions the caller-side facts influenced. *)
and compile_with_choice t fs args choice =
  (match choice with
  | Policy.Spec_values
    when t.cfg.policy = Policy.Polyvariant
         && Policy.anticipated_match (policy_view t fs) args ->
    bump t fs Telemetry.Key.interpro_seeded
  | _ -> ());
  match choice with
  | Policy.Spec_generic -> try_compile t fs ()
  | Policy.Spec_selective -> specialize_selectively t fs args
  | Policy.Spec_values -> try_compile t fs ~spec_args:args ()
  | Policy.Spec_tags -> try_compile t fs ~spec_tags:(Array.map Value.tag_of (as_entry t fs args)) ()

(* The polyvariant ladder step: detach the version at [index] and compile
   its one-step-wider replacement (values → tags of [args], tags →
   generic). No deopt, blacklist or storm accounting — the ladder
   terminates structurally (a generic version matches everything, so a
   function can widen at most [2 * cache_size] times ever). *)
and widen_version t fs index args =
  match List.nth_opt fs.compiled index with
  | None -> None
  | Some victim -> (
    (* Widen to the tuple as the callee sees it (arity-adjusted), so a tag
       key always has exactly one entry barrier per parameter — a call
       with surplus or missing arguments must not size the key. *)
    match Policy.widen victim.key (as_entry t fs args) with
    | None -> None (* generic already; unreachable: generic keys never miss *)
    | Some wider ->
      (* Chaos layer: an injected widening failure quarantines the
         function with the cache left untouched — no detach, no
         [Version_widen] event — so the call interprets and the next
         miss after the backoff retries the ladder step. Fired before
         any mutation, exactly like an aborted compile. *)
      if Faults.fire Faults.Version_widen then begin
        quarantine t fs Telemetry.Compile_fault;
        None
      end
      else begin
      let entries = List.length fs.compiled in
      detach t fs victim;
      bump t fs Telemetry.Key.versions_widened;
      emit t (fun () ->
          Telemetry.Version_widen
            {
              fid = fs.fid;
              fname = fname t fs.fid;
              index;
              from_key = Policy.key_to_string victim.key;
              to_key = Policy.key_to_string wider;
              entries;
            });
      (match wider with
      | Policy.Key_tags tags -> try_compile t fs ~spec_tags:tags ()
      | Policy.Key_generic -> try_compile t fs ()
      | Policy.Key_values _ -> assert false)
      end)

(* Compile with only the stable argument positions burned in; if nothing is
   stable any more, fall back to a generic compile and stop trying. *)
and specialize_selectively t fs args =
  let mask = stability_mask fs in
  (* Zero-arity functions are vacuously stable (specialization then only
     affects OSR locals baking). *)
  if Array.length mask = 0 || Array.exists Fun.id mask then
    try_compile t fs ~spec_args:args ~spec_mask:mask ()
  else begin
    blacklist t fs;
    try_compile t fs ()
  end

and run_native_entry t fs func c args entry =
  let act = Exec.make_activation ~env:c.Value.env ~func ~args () in
  run_native t fs func act entry ~at_osr:false

and run_native t fs func act entry ~at_osr =
  let callbacks =
    { Exec.call = (fun v a -> call_value t v a);
      globals = t.istate.Interp.globals;
      cycles = t.native_cycles }
  in
  let outcome =
    in_span t ~name:"native" ~cat:"native" fs.fid (fun () ->
        let o =
          try Exec.run callbacks entry.code act ~at_osr
          with Objmodel.Error msg -> raise (Runtime_error msg)
        in
        (match o with
        | Exec.Finished _ -> ()
        | Exec.Bailed b ->
          (* The bailout penalty was charged inside [Exec.run] just before
             it returned, so the frame-reconstruction interval is the
             [bailout_penalty] cycles ending now — emitted retroactively,
             nested in the still-open native span. *)
          span_mark t ~name:"bailout" ~cat:"bailout"
            ~start:(now t - Cost.bailout_penalty) ~dur:Cost.bailout_penalty
            ~args:
              [ ("reason", "\"" ^ Telemetry.json_escape b.Exec.bo_reason ^ "\"");
                ("pc", string_of_int b.Exec.bo_pc) ]
            fs.fid);
        o)
  in
  match outcome with
  | Exec.Finished v -> v
  | Exec.Bailed b ->
    bump t fs Telemetry.Key.bailouts;
    let entry_bail = b.Exec.bo_pc = 0 in
    if entry_bail then bump t fs Telemetry.Key.bailouts_entry
    else entry.strikes <- entry.strikes + 1;
    emit t (fun () ->
        Telemetry.Bailout
          {
            fid = fs.fid;
            fname = fname t fs.fid;
            pc = b.Exec.bo_pc;
            native_pc = b.Exec.bo_native_pc;
            reason = b.Exec.bo_reason;
            osr_entry = at_osr;
            strikes = entry.strikes;
          });
    (* Overflow feedback: the int32 fast path was wrong for this function's
       actual values; future compiles use double arithmetic instead of
       re-speculating (and bailing) forever. *)
    if b.Exec.bo_reason = "int32 overflow" then fs.overflow_bailed <- true;
    if entry_bail then begin
      (* An entry bail means the argument types changed: the binary can
         never run again, discard it at once. On a specialized binary this
         is a §4 deoptimization — the cache probe admitted a tuple the
         entry guards then rejected — so it must count as one and consult
         the blacklist policy; otherwise the next call re-specializes on
         the very tuple that just failed. Selective mode narrows instead
         of blacklisting (stability is sticky, so narrowing terminates). *)
      detach t fs entry;
      (* A specialized or widened binary carries entry guards; a generic
         one bails at entry only through OSR-argument plumbing. The key
         kind decides — never compare keys structurally, cached values can
         be cyclic. *)
      (match entry.key with
      | Policy.Key_generic -> ()
      | Policy.Key_values _ | Policy.Key_tags _ ->
        deopt t fs Telemetry.Entry_guard;
        if not t.cfg.selective then blacklist t fs);
      note_discard t fs
    end
    else if entry.strikes >= t.cfg.max_bailouts then begin
      (* In-body guards get [max_bailouts] strikes — per binary, counted
         against this binary alone — before it is declared too speculative
         and discarded for recompilation with refreshed type feedback. *)
      detach t fs entry;
      bump t fs Telemetry.Key.strike_discards;
      emit t (fun () ->
          Telemetry.Deopt
            { fid = fs.fid; fname = fname t fs.fid; reason = Telemetry.Strike_limit });
      note_discard t fs
    end;
    resume_interp t func act b

and resume_interp t func (act : Exec.activation) (b : Exec.bailout) =
  let frame = Interp.make_frame func ~args:b.Exec.bo_args ~upvals:act.Exec.act_env in
  Array.blit b.Exec.bo_locals 0 frame.Interp.locals 0 (Array.length b.Exec.bo_locals);
  Array.iteri (fun i cell -> frame.Interp.cells.(i) <- cell) act.Exec.act_cells;
  Array.blit b.Exec.bo_stack 0 frame.Interp.stack 0 (Array.length b.Exec.bo_stack);
  frame.Interp.sp <- Array.length b.Exec.bo_stack;
  frame.Interp.pc <- b.Exec.bo_pc;
  run_frame t frame

and interpret t func ~upvals ~args =
  let frame = Interp.make_frame func ~args ~upvals in
  run_frame t frame

and run_frame t frame =
  let hooks =
    {
      Interp.call = (fun callee args -> call_value t callee args);
      loop_head = (fun fr -> maybe_osr t fr);
    }
  in
  in_span t ~name:"interpret" ~cat:"interp" frame.Interp.func.Bytecode.Program.fid
    (fun () ->
      try Interp.run t.istate hooks frame
      with Interp.Runtime_error msg -> raise (Runtime_error msg))

and maybe_osr t (frame : Interp.frame) =
  if not t.cfg.jit then None
  else begin
    let fs = t.fstates.(frame.Interp.func.Bytecode.Program.fid) in
    fs.loop_edges <- fs.loop_edges + 1;
    (* Background mode: poll for finished artifacts at every loop head —
       an in-flight hot loop transfers into a finished binary the moment
       its modeled ready cycle has passed. *)
    match (if bg_active t then bg_osr_poll t fs frame else None) with
    | Some _ as entered -> entered
    | None ->
    (* Only OSR when no binary is installed: an installed binary either
       already serves this activation or is about to be replaced through
       the call path. The OSR path of a binary is single-use (its entry
       state is burned in), so it is never re-entered. A quarantined
       function's loop-edge threshold scales by the same power of two as
       its call backoff; a pinned one never OSRs again. With the queue
       active, a function whose request is already in flight keeps
       interpreting — its loop edges accumulate until the poll above
       finds the artifact. *)
    if
      (not fs.pinned)
      && fs.loop_edges >= t.cfg.hot_loop_edges * (1 lsl min fs.q_failures 16)
      && fs.compiled = []
      && ((not (bg_active t)) || bg_pending t fs = None)
    then begin
      let edges = fs.loop_edges in
      fs.loop_edges <- 0;
      let func = frame.Interp.func in
      let args_now = Array.copy frame.Interp.args in
      let locals_now = Array.copy frame.Interp.locals in
      bump t fs Telemetry.Key.osr_entries;
      emit t (fun () ->
          Telemetry.Osr_enter
            { fid = fs.fid; fname = fname t fs.fid; pc = frame.Interp.pc;
              loop_edges = edges });
      span_mark t ~name:"osr-trigger" ~cat:"interp" ~start:(now t) ~dur:0
        ~args:[ ("pc", string_of_int frame.Interp.pc);
                ("loop_edges", string_of_int edges) ]
        fs.fid;
      let spec = want_specialize t fs in
      let spec_mask =
        if spec && t.cfg.selective then begin
          let mask = stability_mask fs in
          (* All-varying arguments: give up on specializing this function,
             as the call path would. *)
          if Array.length mask > 0 && not (Array.exists Fun.id mask) then
            blacklist t fs;
          Some mask
        end
        else None
      in
      let spec = want_specialize t fs in
      let osr =
        {
          Builder.osr_pc = frame.Interp.pc;
          osr_args = args_now;
          osr_locals = locals_now;
          osr_specialize = spec;
          (* Synchronous OSR enters right now with exactly this frame, so
             baked locals are exact; a queued compile is entered later,
             after the loop advanced, so its locals must stay live. *)
          osr_bake_locals = not (bg_active t);
        }
      in
      let spec_args = if spec then Some args_now else None in
      let spec_mask = if spec then spec_mask else None in
      if bg_active t then begin
        (* Enqueue with the loop-head snapshot and keep interpreting this
           activation; the artifact is entered by the poll above once its
           ready cycle passes — or serves later calls from its normal
           entry if the loop finishes first. *)
        let kind = if spec then (if spec_mask <> None then "selective" else "values") else "generic" in
        bg_request t fs ~kind ?spec_args ?spec_mask ~osr ();
        None
      end
      else begin
        match try_compile t fs ?spec_args ?spec_mask ~osr () with
        | None -> None  (* aborted: keep interpreting this activation *)
        | Some compiled ->
          install_entry t fs compiled;
          let act =
            {
              Exec.act_args = args_now;
              act_env = frame.Interp.upvals;
              act_cells = frame.Interp.cells;
              act_osr_args = args_now;
              act_osr_locals = locals_now;
            }
          in
          Some (run_native t fs func act compiled ~at_osr:true)
      end
    end
    else None
  end

(* The loop-edge harvest: install every artifact whose ready cycle has
   passed, then — if one of them carries an OSR entry burned for this
   very loop head and its snapshot still matches the live frame
   ([bg_osr_frame_matches]) — transfer the running activation into the
   finished binary mid-loop. A stale snapshot counts [bg.osr_stale] and
   keeps interpreting; the binary serves later calls regardless. *)
and bg_osr_poll t fs (frame : Interp.frame) =
  match t.bg with
  | None -> None
  | Some q -> (
    match Bgcompile.take_ready q ~fid:fs.fid ~now:(now t) with
    | [] -> None
    | ready -> (
      let installed =
        List.filter_map
          (fun (e : bg_job Bgcompile.entry) ->
            match bg_install t fs e with
            | None -> None
            | Some entry -> Some (e.Bgcompile.e_payload, entry))
          ready
      in
      match
        List.find_map
          (fun ((j : bg_job), entry) ->
            match j.j_osr with
            | Some o when o.Builder.osr_pc = frame.Interp.pc -> Some (o, entry)
            | _ -> None)
          installed
      with
      | None -> None
      | Some (o, entry) ->
        if bg_osr_frame_matches o frame then begin
          bump t fs Telemetry.Key.bg_osr_entries;
          emit t (fun () ->
              Telemetry.Osr_entry
                { fid = fs.fid; fname = fname t fs.fid; pc = frame.Interp.pc });
          let act =
            {
              Exec.act_args = Array.copy frame.Interp.args;
              act_env = frame.Interp.upvals;
              act_cells = frame.Interp.cells;
              act_osr_args = Array.copy frame.Interp.args;
              act_osr_locals = Array.copy frame.Interp.locals;
            }
          in
          Some (run_native t fs frame.Interp.func act entry ~at_osr:true)
        end
        else begin
          bump t fs Telemetry.Key.bg_osr_stale;
          None
        end))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* The report is derived from the telemetry counter registry: the numbers
   the paper's tables print are the numbers the event stream counts, by
   construction. *)
let report_of t result =
  let c = counters t in
  let functions =
    Array.to_list
      (Array.map
         (fun fs ->
           let get key = Telemetry.Counters.get c ~fid:fs.fid key in
           {
             fr_fid = fs.fid;
             fr_name = t.program.Bytecode.Program.funcs.(fs.fid).Bytecode.Program.name;
             fr_calls = get Telemetry.Key.calls;
             fr_compiles = get Telemetry.Key.compiles;
             fr_was_specialized = get Telemetry.Key.compiles_specialized > 0;
             fr_deoptimized = get Telemetry.Key.deopts > 0;
             fr_bailouts = get Telemetry.Key.bailouts;
             fr_sizes = List.rev fs.sizes;
             fr_arg_set_changes = get Telemetry.Key.arg_set_changes;
             fr_last_arg_tags =
               (match fs.last_args with
               | None -> []
               | Some args -> Array.to_list (Array.map Value.tag_of args));
           })
         t.fstates)
  in
  let compilations = Telemetry.Counters.total c Telemetry.Key.compiles in
  let recompilations =
    List.fold_left (fun acc f -> acc + max 0 (f.fr_compiles - 1)) 0 functions
  in
  let specialized_funcs =
    List.length (List.filter (fun f -> f.fr_was_specialized) functions)
  in
  let deoptimized_funcs = List.length (List.filter (fun f -> f.fr_deoptimized) functions) in
  let interp_cycles = t.istate.Interp.icount * Cost.interp_per_instr in
  {
    result;
    interp_cycles;
    native_cycles = !(t.native_cycles);
    compile_cycles = !(t.compile_cycles);
    bg_compile_cycles = !(t.bg_cycles);
    (* [total_cycles] is the model clock: background compile work is
       deliberately absent — that absence is the fig9cd stall removed. *)
    total_cycles = interp_cycles + !(t.native_cycles) + !(t.compile_cycles);
    bytecode_instrs = t.istate.Interp.icount;
    functions;
    compilations;
    recompilations;
    specialized_funcs;
    successful_funcs = specialized_funcs - deoptimized_funcs;
    deoptimized_funcs;
  }

(* Cooperative deadline for one [run]: the budget is relative to the
   clock at entry, so a warm engine serving many requests gets a fresh
   budget per request. The hooks fire in [Interp]/[Exec] dispatch; the
   trip emits [Deadline_hit] and bumps the counter exactly once (the
   raise immediately follows the emit, and the hooks are uninstalled on
   the way out), then [Deadline_exceeded] unwinds through every open
   frame — spans close with [unwound], the depth counter restores via
   [Fun.protect] — and escapes [run] for the caller to classify.
   Compilation is deliberately not checked: a compile returns to
   dispatch within one bounded pipeline run, and the very next
   dispatched instruction observes the (compile-charged) clock. *)
let with_deadline t f =
  if t.cfg.deadline <= 0 then f ()
  else begin
    let start = now t in
    let budget = t.cfg.deadline in
    let trip fid pc =
      let spent = now t - start in
      if spent > budget then begin
        let fs = t.fstates.(fid) in
        bump t fs Telemetry.Key.deadlines;
        emit t (fun () ->
            Telemetry.Deadline_hit
              { fid; fname = fname t fid; spent; limit = budget });
        raise (Deadline_exceeded { dl_fid = fid; dl_pc = pc; dl_spent = spent; dl_limit = budget })
      end
    in
    Interp.with_deadline_hook (Some trip) (fun () ->
        Exec.with_deadline_hook
          (Some (fun (code : Code.t) pc -> trip code.Code.fid pc))
          f)
  end

let run t =
  let main = t.program.Bytecode.Program.funcs.(t.program.Bytecode.Program.main) in
  let result =
    (* Backstop for the depth limit: should MiniJS recursion exhaust the
       OCaml stack before [max_depth] trips (a misconfigured limit), it
       still surfaces as the same MiniJS-level error, not a crash. *)
    try with_deadline t (fun () -> interpret t main ~upvals:[||] ~args:[||])
    with Stack_overflow -> raise (Runtime_error "stack overflow")
  in
  report_of t result

let run_program cfg program = run (make cfg program)

let run_source cfg src = run_program cfg (Bytecode.Compile.program_of_source src)
