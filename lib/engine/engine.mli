(** The just-in-time engine: the SpiderMonkey/IonMonkey interplay of the
    paper's Figure 5 plus the specialization policy of its Section 4.

    Functions start in the interpreter. A function that crosses the hot-call
    threshold is compiled on its next invocation; a loop that crosses the
    back-edge threshold triggers compilation with an on-stack-replacement
    entry and execution resumes natively mid-function. With specialization
    enabled, the compiler bakes the current arguments into the code and the
    engine caches that argument tuple: a later call with the same arguments
    (compared by {!Runtime.Value.same_value}) reuses the binary; a call
    with different arguments discards it, recompiles generic code
    immediately, and blacklists the function from further specialization.
    Failing guards bail out to the interpreter through resume-point
    snapshots; a binary's [max_bailouts]-th in-body guard failure discards
    it for recompilation with refreshed type feedback (strikes are counted
    per binary, so one cache entry's failures never condemn another's).

    Time is measured in deterministic model cycles (see {!Cost}): the
    report splits interpretation, native execution and compilation, which
    is exactly the decomposition Figure 9 needs.

    Every policy transition — compilation, cache probe, specialization,
    bailout, deoptimization, blacklisting, OSR entry — is published through
    {!Telemetry}: counters always (the report is derived from them), events
    when a sink is attached ([jsvm --trace], the ring buffer in tests). *)

type config = {
  opt : Pipeline.config;
  jit : bool;  (** false: pure interpretation (for differential testing) *)
  hot_calls : int;  (** invocations before a function is deemed hot *)
  hot_loop_edges : int;  (** loop-head visits before OSR kicks in *)
  max_bailouts : int;
      (** in-body guard failures a binary survives: it is discarded at its
          [max_bailouts]-th strike *)
  cache_size : int;
      (** specialized binaries cached per function. 1 is the paper's policy
          ("we cache only one binary per function", §6); larger values
          implement the future-work experiment: the cache first fills with
          further specialized versions before a miss deoptimizes. *)
  policy : Policy.kind;
      (** which specialization policy decides keying, cache misses and
          blacklisting. {!Policy.Paper} reproduces the pre-policy engine
          byte for byte; {!Policy.Polyvariant} widens versions along the
          [values → tags → generic] ladder instead of discarding them (see
          {!Policy}). *)
  selective : bool;
      (** selective specialization (extension): burn in only the arguments
          observed value-stable across every call so far. A cache miss then
          narrows the burned-in set to the still-stable positions and
          respecializes instead of blacklisting; since stability is sticky,
          a function respecializes at most [arity] times before settling on
          its stable core (or generic code). *)
  compile_retries : int;
      (** compile failures (aborted compilations, cache-admission failures,
          deopt storms) a function may accumulate before it is pinned to
          the interpreter tier permanently. Until then each failure
          quarantines it with exponential backoff: the [n]-th failure defers
          the next compile attempt by [hot_calls * 2^n] further calls (and
          scales the OSR loop-edge threshold by the same factor). *)
  storm_threshold : int;
      (** binary discards (entry-guard bails and strike limits) before the
          deopt-storm detector trips and quarantines the function *)
  code_cache_bytes : int;
      (** global code-cache byte budget across all functions, with
          cross-function LRU eviction on admission; 0 = unbounded. A binary
          occupies [Cost.bytes_per_native_instr] bytes per native
          instruction. *)
  max_depth : int;
      (** MiniJS call-depth limit; deeper recursion raises
          [Runtime_error "stack overflow"] (a MiniJS-level error, not an
          OCaml crash) *)
  deadline : int;
      (** cooperative per-{!run} model-cycle budget; 0 (the default)
          disables the check entirely — no hooks are installed and every
          run is byte-identical to a deadline-free engine. When positive,
          dispatch checks the clock per instruction (interpreter and
          native alike) against [clock-at-entry + deadline] and raises
          {!Deadline_exceeded} once over budget, after emitting one
          [Telemetry.Deadline_hit] event and bumping the
          [Telemetry.Key.deadlines] counter. The budget is relative to
          the clock at [run] entry, so a warm engine gets a fresh budget
          per request. Compilation itself is not interrupted — the very
          next dispatched instruction observes the compile-charged
          clock. *)
  bg_compile : bool;
      (** background tiered compilation: hot-call sites and loop edges
          enqueue compile requests on a bounded queue and keep
          interpreting instead of blocking on the compiler. Artifact
          visibility follows a deterministic completion model — enqueue
          cycle plus {!Cost.bg_compile_cost} through a single-server FIFO
          ({!Bgcompile}) — so results are byte-identical at any [--jobs];
          with [--jobs > 1] the actual compile runs on a pool domain
          overlapped with interpretation (wall-clock only). Finished
          binaries are harvested at call boundaries; a loop still hot
          when its OSR-flavored artifact lands transfers into it at the
          next loop edge. Background compile cycles are charged to the
          off-clock [bg_compile_cycles] report field, never to the model
          clock: with [bg_compile = false] (the default) the engine is
          byte-identical to one predating the queue. *)
  bg_queue_depth : int;
      (** in-flight background compile requests admitted before further
          requests are dropped ([bg.overflow]); clamped to at least 1 *)
}

val default_config :
  ?opt:Pipeline.config ->
  ?policy:Policy.kind ->
  ?cache_size:int ->
  ?selective:bool ->
  ?code_cache_bytes:int ->
  ?max_depth:int ->
  ?deadline:int ->
  ?bg_compile:bool ->
  ?bg_queue_depth:int ->
  unit ->
  config
(** Defaults: [jit = true], [hot_calls = 10], [hot_loop_edges = 40],
    [max_bailouts = 3], [policy = Policy.Paper], [cache_size = 1],
    [selective = false], baseline pipeline, [compile_retries = 3],
    [storm_threshold = 8], [code_cache_bytes = 0] (unbounded), [max_depth =
    Interp.default_max_depth], [deadline = 0] (no deadline), [bg_compile =
    false] (synchronous compilation), [bg_queue_depth = 8]. *)

val interp_only : config

type func_report = {
  fr_fid : int;
  fr_name : string;
  fr_calls : int;
  fr_compiles : int;  (** total compilations (entry or OSR) *)
  fr_was_specialized : bool;
  fr_deoptimized : bool;  (** specialized binary discarded on arg mismatch *)
  fr_bailouts : int;
  fr_sizes : (bool * int) list;  (** (specialized?, native size) per compile *)
  fr_arg_set_changes : int;  (** distinct-argument observations (§2 data) *)
  fr_last_arg_tags : Runtime.Value.tag list;
      (** runtime tags of the last argument tuple (Figure 4 data) *)
}

type report = {
  result : Runtime.Value.t;
  interp_cycles : int;
  native_cycles : int;
  compile_cycles : int;
  bg_compile_cycles : int;
      (** compile work done by the background compiler ([bg_compile]) —
          deliberately absent from [total_cycles]: that absence is the
          synchronous compile stall removed from the hot path *)
  total_cycles : int;
  bytecode_instrs : int;  (** interpreter instructions executed *)
  functions : func_report list;
  compilations : int;
  recompilations : int;  (** compilations beyond each function's first *)
  specialized_funcs : int;  (** functions ever compiled specialized *)
  successful_funcs : int;  (** specialized and never deoptimized *)
  deoptimized_funcs : int;
}

(** {2 Observation hooks}

    All hooks are domain-local ({!Support.Tls}): a lint or trace closure
    installed by one pool task is invisible to engine runs on other
    domains, so hooks never race and never leak across harness cells. *)

val set_mir_hook : (Mir.func -> unit) option -> unit
(** Called with every optimized MIR graph just before lowering
    ([jsvm --dump-mir]); [None] (the default) in normal operation. *)

val with_mir_hook : (Mir.func -> unit) -> (unit -> 'a) -> 'a
(** Run with the MIR hook temporarily installed on this domain. *)

val set_diag_warn_hook : (Diag.t -> unit) option -> unit
(** Warning sink for the lint layer: when {!Pipeline.checks} is on, the
    specialization-soundness checker's warnings are delivered here;
    [None] drops them. *)

val with_diag_warn_hook : (Diag.t -> unit) -> (unit -> 'a) -> 'a
(** Run with the warning sink temporarily installed on this domain. *)

val set_diag_abort_hook : (Diag.t -> unit) option -> unit
(** Called with every diagnostic that aborts a mid-run compilation — a
    verifier/lint error or an injected {!Faults} failure — just before the
    engine recovers (charges the wasted cycles, emits
    [Telemetry.Compile_abort], quarantines the function and falls back to
    the interpreter). {!Diag.Failed} never escapes {!run}: this hook is how
    the lint tooling still observes mid-run IR corruption. [None] drops
    them. *)

val with_diag_abort_hook : (Diag.t -> unit) -> (unit -> 'a) -> 'a
(** Run with the abort sink temporarily installed on this domain. *)

exception Runtime_error of string

exception
  Deadline_exceeded of {
    dl_fid : int;  (** function whose dispatch observed the expiry *)
    dl_pc : int;  (** pc at the trip (bytecode or native, per tier) *)
    dl_spent : int;  (** model cycles spent in the run when it tripped *)
    dl_limit : int;  (** the run's [config.deadline] budget *)
  }
(** A cooperative deadline expired mid-dispatch (see [config.deadline]).
    Escapes {!run} after exactly one [Telemetry.Deadline_hit] emission;
    the service layer converts it into a clean request failure. Never
    raised when [deadline] is 0. *)

type t
(** A live engine instance: program, per-function JIT state, cycle
    accumulators and the telemetry hub. *)

val make : config -> Bytecode.Program.t -> t
(** Verify the bytecode ({!Bc_verify}) and set up a fresh engine. The
    telemetry hub starts with the sinks registered in
    {!Telemetry.default_sinks} at this moment. *)

val telemetry : t -> Telemetry.t
(** The engine's telemetry hub — attach sinks before {!run}, read the
    counter registry after. *)

val clock : t -> int
(** The deterministic model-cycle clock: interpreter + native + compile
    cycles so far. Monotone across {!run}s on a warm engine; the service
    layer measures per-request latency as clock deltas. *)

val cycle_split : t -> int * int * int
(** [(interp, native, compile)] model cycles so far — the clock's tier
    decomposition, for warm/cold tail attribution around requests. *)

val set_degrade : t -> bool -> unit
(** Overload degrade mode (the service layer's shed-specialization-
    before-shed-requests switch). While on: the policy view reports
    "don't specialize" (so hot compiles, promotions and OSR pick generic
    keys), every new compile takes {!Policy.overload_opt} (the quick
    baseline schedule; counted under [Telemetry.Key.compiles_degraded]),
    and a cache miss interprets instead of deoptimizing — the warm cache
    and the blacklist bits survive the overload untouched. Installed
    binaries keep serving. With [bg_compile], entering degrade also drains
    the background queue (every in-flight request cancelled, reason
    ["degrade"]) and suppresses further enqueues until degrade clears.
    Off (the default) the engine is byte-identical to one without the
    switch. *)

val degraded : t -> bool

val drain_bg : t -> int
(** Cancel every in-flight background compile request (reason
    ["recycle"]), returning how many were dropped. Pool jobs that have
    not started are cancelled; started ones are abandoned — nothing
    installs without passing through the queue, so no artifact can leak
    into a later tenant. The service layer calls this on isolate recycle.
    0 when [bg_compile] is off. *)

val bg_in_flight : t -> int
(** In-flight background compile requests (enqueued, not yet harvested);
    0 when [bg_compile] is off. *)

val flush_flows : t -> unit
(** Trace teardown: close the Perfetto flow of every still-queued
    background job (cancelling the job) without bumping any counter or
    emitting any event — a traced run's summary must stay byte-identical
    to an untraced one, and the flow balance check requires one finish
    per start even for compiles the run ended before harvesting. No-op
    without a tracer or without [bg_compile]. *)

val run : t -> report
(** Execute the program's main function to completion. Compilation is a
    contained failure domain: a verifier diagnostic or injected fault mid-
    run aborts that compilation (quarantining the function) instead of
    escaping — the exceptions [run] raises for a MiniJS-level problem are
    {!Runtime_error} and (with a deadline configured)
    {!Deadline_exceeded}. *)

val run_program : config -> Bytecode.Program.t -> report
val run_source : config -> string -> report
(** Parse, compile to bytecode and run under the engine.
    @raise Runtime_error on JS-level errors. *)
