open Runtime

type kind = Paper | Polyvariant

let kind_to_string = function Paper -> "paper" | Polyvariant -> "polyvariant"

let kind_of_string = function
  | "paper" -> Some Paper
  | "polyvariant" | "poly" -> Some Polyvariant
  | _ -> None

let all_kinds = [ Paper; Polyvariant ]

type vkey =
  | Key_values of Value.t array * bool array option
  | Key_tags of Value.tag array
  | Key_generic

(* The probe. [Key_values] with a mask is the selective extension: only the
   burned-in positions must match. [Key_tags] compares runtime tags only —
   exactly the facts a widened version's entry state assumes. *)
let matches key args =
  match key with
  | Key_generic -> true
  | Key_values (cached, None) -> Value.same_args args cached
  | Key_values (cached, Some mask) ->
    Array.length cached = Array.length args
    && (let ok = ref true in
        Array.iteri
          (fun i m -> if m && not (Value.same_value args.(i) cached.(i)) then ok := false)
          mask;
        !ok)
  | Key_tags tags ->
    (* A tag key always has the function's arity; compare the tuple as the
       callee will see it — missing arguments padded with [Undefined],
       extra arguments dropped at entry. *)
    let n = Array.length args in
    let ok = ref true in
    Array.iteri
      (fun i tag ->
        let got = if i < n then Value.tag_of args.(i) else Value.Tag_undefined in
        if got <> tag then ok := false)
      tags;
    !ok

let key_to_string = function
  | Key_generic -> "generic"
  | Key_values (args, _) ->
    "("
    ^ String.concat ", " (Array.to_list (Array.map Value.to_display_string args))
    ^ ")"
  | Key_tags tags ->
    "[" ^ String.concat ", " (Array.to_list (Array.map Value.tag_to_string tags)) ^ "]"

let key_rank = function Key_values _ -> 0 | Key_tags _ -> 1 | Key_generic -> 2

(* One ladder step, keyed to serve [args]. A full-cache miss repurposes the
   LRU slot: the replacement serves the arguments that just missed, one
   rank more general than what it evicts — so every slot strictly climbs
   the ladder and a function stops missing after at most [2 * cache_size]
   widenings (a generic version matches everything). *)
let widen key args =
  match key with
  | Key_values _ -> Some (Key_tags (Array.map Value.tag_of args))
  | Key_tags _ -> Some Key_generic
  | Key_generic -> None

type view = {
  pv_cache_size : int;
  pv_selective : bool;
  pv_want_specialize : bool;
  pv_calls : int;
  pv_arg_set_changes : int;
  pv_keys : vkey list;
  pv_anticipated : Value.t array list;
}

type spec_choice = Spec_values | Spec_selective | Spec_tags | Spec_generic

type miss_action =
  | Miss_respecialize
  | Miss_fill of spec_choice
  | Miss_widen of int
  | Miss_deopt_generic

let anticipated_match view args =
  List.exists (fun s -> Value.same_args s args) view.pv_anticipated

(* Variability heuristic: by hot-call time, have the argument tuples
   essentially never repeated? Then a value version is doomed — its first
   reuse probe would already miss — and the fig9 earley-boyer loss shows
   the paper policy paying a wasted specialized compile plus a generic
   recompile for exactly this shape. Tag-specialize up front instead. *)
let always_varying view = 2 * view.pv_arg_set_changes >= view.pv_calls

let choose_hot kind view ~args =
  if not view.pv_want_specialize then Spec_generic
  else if view.pv_selective then Spec_selective
  else
    match kind with
    | Paper -> Spec_values
    | Polyvariant ->
      (* Tiered: the hot-call compile is a quick generic catch-all (see
         [compile_opt]); specialization waits for [promote], when the
         call count proves the expensive pipeline will amortize. The one
         exception is a caller-anticipated signature — the caller's
         burned-in facts say exactly what to specialize on, so skipping
         the generic tier costs nothing speculative. *)
      if anticipated_match view args then Spec_values else Spec_generic

(* Tiered compilation pipelines. A generic polyvariant binary compiles
   with the quick baseline schedule: the heavyweight passes (constant
   propagation, inlining, loop inversion, ...) only pay for themselves
   when burned-in specialization facts feed them, and on call-once-heavy
   traces their per-instruction charge is exactly what erases the
   specialization win. The paper policy keeps one pipeline for every
   compile, as the paper does. *)
(* "Too big to optimize": above this many bytecode instructions a function
   takes the quick schedule even when specialized. The pipeline's charge is
   linear in body size while specialization's payoff concentrates in hot
   inner code, so a huge body (a toplevel script, a giant dispatcher) can
   never amortize the heavyweight passes. *)
let opt_size_cap = 512

let compile_opt kind (opt : Pipeline.config) ~specialized ~size =
  match kind with
  | Paper -> opt
  | Polyvariant -> if specialized && size <= opt_size_cap then opt else Pipeline.baseline

(* The overload tier: under service-layer degrade mode every new compile —
   either policy, any size — takes the quick baseline schedule. The service
   sheds specialization before it sheds requests: compiled code keeps the
   isolate off the slow interpreter tier, but no compile burns in values or
   pays the heavyweight passes while the queue is over its high-water mark.
   Already-installed specialized binaries keep serving; degrade only steers
   *new* compile work. *)
let overload_opt (_ : Pipeline.config) = Pipeline.baseline

(* A generic tier-1 binary whose function has accumulated this many
   hot-call thresholds' worth of calls has proven it can amortize a
   specialized compile. *)
let promote_factor = 3

(* Tier-2 admission, consulted on every cache hit of a generic version:
   specialize a still-hot function alongside its generic catch-all. Needs
   a free slot — the catch-all stays, which is why promotion only exists
   at cache sizes >= 2 — and enough calls to amortize the full pipeline.
   The probe prefers the most specific matching version, so once the
   specialized binary exists the generic hit (and hence this check) stops
   firing for its signature. *)
let promote kind view ~args ~hot_calls =
  match kind with
  | Paper -> None
  | Polyvariant ->
    if (not view.pv_want_specialize) || view.pv_selective then None
    else if List.length view.pv_keys >= view.pv_cache_size then None
    else if view.pv_calls < promote_factor * hot_calls then None
    else if anticipated_match view args then Some Spec_values
    else if always_varying view then Some Spec_tags
    else Some Spec_values

let on_miss kind view ~args =
  let nversions = List.length view.pv_keys in
  match kind with
  | Paper ->
    (* Byte-for-byte the decision tree the engine ran before this module
       was extracted: selective narrows, a non-full cache fills with
       another value version (§6), otherwise §4 deoptimizes. *)
    if view.pv_selective && view.pv_want_specialize then Miss_respecialize
    else if view.pv_want_specialize && nversions < view.pv_cache_size then
      Miss_fill Spec_values
    else Miss_deopt_generic
  | Polyvariant ->
    if not view.pv_want_specialize then Miss_deopt_generic
    else if view.pv_selective then Miss_respecialize
    else begin
      (* Second mismatching tuple for a value signature: the arguments have
         the same tags as a cached value version but different values —
         widen that version to its tags instead of discarding it. *)
      let same_tag_values =
        List.mapi (fun i k -> (i, k)) view.pv_keys
        |> List.find_opt (fun (_, k) ->
               match k with
               | Key_values (cached, _) ->
                 Array.length cached = Array.length args
                 && (let ok = ref true in
                     Array.iteri
                       (fun i v ->
                         if Value.tag_of v <> Value.tag_of args.(i) then ok := false)
                       cached;
                     !ok)
               | _ -> false)
      in
      match same_tag_values with
      | Some (i, _) -> Miss_widen i
      | None ->
        if nversions < view.pv_cache_size then
          Miss_fill (choose_hot Polyvariant view ~args)
        else Miss_widen (nversions - 1)  (* repurpose the LRU slot, one rank wider *)
    end
