(** Pluggable specialization policies.

    The engine owns the *mechanism* of the version cache — compiling,
    installing, probing, detaching, charging cycles, emitting telemetry —
    and delegates every *decision* about what to compile and what to do on
    a cache miss to this module. Two policies exist:

    - {!Paper}: the paper's §4 policy, exactly as before this module was
      extracted. One specialized binary per function (generalized by
      [cache_size] to a fill-then-deoptimize cache, §6): the first miss
      after the cache is full discards everything, recompiles generic code
      and blacklists the function from further specialization. Selective
      specialization composes as before (narrow to the stable positions
      instead of blacklisting).

    - {!Polyvariant}: a multi-entry version cache keyed by argument
      signatures, after "Interprocedural Type Specialization of JavaScript
      Programs Without Type Analysis" (see PAPERS.md). Versions sit on a
      widening ladder [values → tags → generic]: the second mismatching
      tuple for a value signature widens that version to its type tags
      rather than discarding it, and a miss against a full cache widens
      the least-recently-used version one step toward generality. Each
      slot can widen at most twice before it is fully generic (which
      matches every call), so cache churn per function is bounded without
      the paper's blacklist. Compilation is tiered: the hot-call compile
      is a quick generic catch-all (baseline pipeline), and a function
      that stays hot is later {e promoted} — a specialized version,
      compiled with the full pipeline, is installed alongside the
      catch-all. Two admission heuristics pick the promoted version's
      key: an argument tuple matching a constant signature some
      specialized caller passes at a monomorphic call site is
      value-specialized (the interprocedural facts make the callee's body
      fold, and such tuples skip the generic tier entirely); a function
      whose observed tuples essentially never repeat is tag-specialized,
      skipping the doomed value version. *)

type kind = Paper | Polyvariant

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

(** A cache entry's key: which calls the compiled version may serve. *)
type vkey =
  | Key_values of Runtime.Value.t array * bool array option
      (** burned-in argument tuple (+ selective mask: which positions a
          probe must compare; [None] = all) *)
  | Key_tags of Runtime.Value.tag array
      (** widened version: only the runtime type tags are burned in *)
  | Key_generic  (** serves any arguments *)

val matches : vkey -> Runtime.Value.t array -> bool
(** May a version with this key serve these arguments? *)

val key_to_string : vkey -> string
(** Display form: [(1, "x")], [[int, string]] or [generic]. *)

val key_rank : vkey -> int
(** Position on the widening ladder: values 0, tags 1, generic 2. *)

val widen : vkey -> Runtime.Value.t array -> vkey option
(** One step up the widening ladder, keyed to serve [args]:
    values → the tag signature of [args], tags → generic, generic → [None]
    (nothing wider exists). *)

(** What a policy may look at when deciding (a read-only projection of the
    engine's per-function state). *)
type view = {
  pv_cache_size : int;
  pv_selective : bool;
  pv_want_specialize : bool;
      (** specialization enabled and the function not blacklisted *)
  pv_calls : int;
  pv_arg_set_changes : int;  (** §2 statistic: observed argument-set changes *)
  pv_keys : vkey list;  (** installed versions, most recently used first *)
  pv_anticipated : Runtime.Value.t array list;
      (** constant argument signatures observed at monomorphic call sites
          inside already-compiled callers (interprocedural facts) *)
}

(** How to key a fresh version. *)
type spec_choice =
  | Spec_values  (** burn in the actual argument values (§4) *)
  | Spec_selective  (** burn in only the value-stable positions *)
  | Spec_tags  (** burn in only the runtime type tags *)
  | Spec_generic  (** no specialization *)

val choose_hot : kind -> view -> args:Runtime.Value.t array -> spec_choice
(** Key for the first compilation, at hot-call time. The paper policy
    specializes immediately; the polyvariant policy is tiered — it
    compiles a quick generic catch-all first (see {!compile_opt}) and
    lets {!promote} specialize later, unless an interprocedural
    signature already says exactly what to burn in. *)

val compile_opt : kind -> Pipeline.config -> specialized:bool -> size:int -> Pipeline.config
(** Pass schedule for one compilation of a function of [size] bytecode
    instructions. The polyvariant policy compiles generic (unspecialized)
    versions — and oversized bodies, whose linear pipeline charge cannot
    amortize — with the quick {!Pipeline.baseline} schedule; the paper
    policy always uses the configured pipeline. *)

val opt_size_cap : int
(** Body-size bound (bytecode instructions) above which the polyvariant
    policy refuses the heavyweight pipeline. *)

val overload_opt : Pipeline.config -> Pipeline.config
(** The overload tier: the pass schedule for a compilation performed while
    the engine is in service-layer degrade mode ([Engine.set_degrade]).
    Always {!Pipeline.baseline}, for either policy — under overload the
    service sheds specialization before it sheds requests, so new compiles
    are quick generic catch-alls and the heavyweight passes wait for the
    queue to drain. The engine additionally forces [pv_want_specialize]
    off while degraded, so {!choose_hot}/{!promote} pick [Spec_generic];
    already-installed specialized binaries keep serving. *)

val promote_factor : int
(** A function may be promoted from its generic tier-1 binary once it has
    accumulated [promote_factor] hot-call thresholds' worth of calls. *)

val promote :
  kind -> view -> args:Runtime.Value.t array -> hot_calls:int -> spec_choice option
(** Tier-2 admission, consulted on a cache hit of a generic version:
    [Some choice] compiles a specialized version alongside the generic
    catch-all (needs a free cache slot, so promotion requires
    [cache_size >= 2]); [None] keeps running the generic binary. Always
    [None] under the paper policy. *)

(** What to do when a probe missed a non-empty cache (the engine has
    already ruled out quarantine). *)
type miss_action =
  | Miss_respecialize
      (** selective mode: discard everything, deoptimize, recompile with
          the burned-in set narrowed to the still-stable positions *)
  | Miss_fill of spec_choice
      (** room in the cache: install another version alongside *)
  | Miss_widen of int
      (** replace the version at this index (MRU order) with
          [widen key args] — the polyvariant ladder step *)
  | Miss_deopt_generic
      (** the paper's §4 deoptimization: discard everything, blacklist,
          recompile generic *)

val on_miss : kind -> view -> args:Runtime.Value.t array -> miss_action

val anticipated_match : view -> Runtime.Value.t array -> bool
(** Did an interprocedural constant signature cover these arguments?
    (Exposed so the engine can count decisions the facts influenced.) *)
