(* Deterministic fault injection. See faults.mli for the contract. *)

type point =
  | Compile_diag
  | Code_verify
  | Exec_guard
  | Cache_oom
  | Version_widen
  | Serve_admit
  | Serve_deadline
  | Bg_enqueue
  | Bg_install

(* New points append at the end: [sample] draws per-point rules in this
   order, so appending keeps the PRNG consumption — and therefore every
   recorded chaos plan — identical for the pre-existing points. *)
let all_points =
  [ Compile_diag; Code_verify; Exec_guard; Cache_oom; Version_widen; Serve_admit; Serve_deadline;
    Bg_enqueue; Bg_install ]

type mode = Nth of int | Every of int | Prob of float

type spec = (point * mode) list

type rule = { r_point : point; r_mode : mode; mutable r_hits : int }

type plan = { seed : int; rules : rule list; prng : Support.Prng.t }

let make ~seed spec =
  {
    seed;
    rules = List.map (fun (p, m) -> { r_point = p; r_mode = m; r_hits = 0 }) spec;
    prng = Support.Prng.create seed;
  }

let seed_of p = p.seed
let spec_of p = List.map (fun r -> (r.r_point, r.r_mode)) p.rules

let point_to_string = function
  | Compile_diag -> "compile_diag"
  | Code_verify -> "code_verify"
  | Exec_guard -> "exec_guard"
  | Cache_oom -> "cache_oom"
  | Version_widen -> "version_widen"
  | Serve_admit -> "serve_admit"
  | Serve_deadline -> "serve_deadline"
  | Bg_enqueue -> "bg_enqueue"
  | Bg_install -> "bg_install"

let mode_to_string = function
  | Nth n -> Printf.sprintf "nth(%d)" n
  | Every n -> Printf.sprintf "every(%d)" n
  | Prob p -> Printf.sprintf "prob(%.2f)" p

let describe p =
  let rules =
    List.map
      (fun r -> Printf.sprintf "%s:%s" (point_to_string r.r_point) (mode_to_string r.r_mode))
      p.rules
  in
  String.concat " " (Printf.sprintf "seed=%d" p.seed :: (if rules = [] then [ "(empty)" ] else rules))

(* Random plans for the chaos fuzzer. Each point independently gets a
   rule with probability ~0.55; an empty draw is re-rolled once so most
   seeds actually inject something. Exec_guard rules lean towards
   Every/Prob because guard sites see many occurrences per run, whereas
   compile-side points see only a handful. The serve-layer points come
   last in the draw order so a plan sampled in a plain engine run (where
   they are never consulted) still perturbs the original four points the
   same way it draws rules for the service layer. *)
let sample seed =
  let prng = Support.Prng.create ((seed * 2) + 1) in
  let draw_mode ~occurrences_many =
    match Support.Prng.int prng 3 with
    | 0 -> Nth (1 + Support.Prng.int prng (if occurrences_many then 25 else 12))
    | 1 -> Every (2 + Support.Prng.int prng 6)
    | _ -> Prob (0.05 +. (0.40 *. Support.Prng.float prng 1.0))
  in
  let draw () =
    List.filter_map
      (fun point ->
        if Support.Prng.float prng 1.0 < 0.55 then
          Some (point, draw_mode ~occurrences_many:(point = Exec_guard || point = Serve_deadline))
        else None)
      all_points
  in
  let spec = match draw () with [] -> draw () | s -> s in
  make ~seed spec

(* Domain-local: plans carry mutable occurrence counters, and the chaos
   fuzzer arms a fresh plan per (seed, configuration) task — a shared ref
   would make concurrent tasks consume each other's occurrences. *)
let current : plan option Support.Tls.t = Support.Tls.make (fun () -> None)

let install p = Support.Tls.set current p
let installed () = Support.Tls.get current
let active () = Support.Tls.get current <> None

(* Observation hook for injected faults that actually fired. Consulted
   only on the (plan-installed, rule-matched, decided-to-fire) path, so
   the disabled-layer cost — one TLS read in [fire] — is unchanged. The
   serve layer points a counter-bumping hook here so chaos runs can
   assert a plan did more than install itself. *)
let fired_hook : (point -> unit) option Support.Tls.t = Support.Tls.make (fun () -> None)

let set_fired_hook h = Support.Tls.set fired_hook h

let with_fired_hook h f =
  let previous = Support.Tls.get fired_hook in
  Support.Tls.set fired_hook (Some h);
  Fun.protect ~finally:(fun () -> Support.Tls.set fired_hook previous) f

let fire point =
  match Support.Tls.get current with
  | None -> false
  | Some plan -> (
      match List.find_opt (fun r -> r.r_point = point) plan.rules with
      | None -> false
      | Some r ->
          r.r_hits <- r.r_hits + 1;
          let fired =
            match r.r_mode with
            | Nth n -> r.r_hits = n
            | Every n -> n > 0 && r.r_hits mod n = 0
            | Prob p -> Support.Prng.float plan.prng 1.0 < p
          in
          (if fired then
             match Support.Tls.get fired_hook with
             | Some hook -> hook point
             | None -> ());
          fired)

let with_plan plan f =
  let previous = installed () in
  install (Some (make ~seed:plan.seed (spec_of plan)));
  Fun.protect ~finally:(fun () -> install previous) f
