(** Deterministic fault injection (the chaos layer).

    A {!plan} is a seeded schedule of mechanism failures over named
    injection {!point}s: the compile-pipeline diagnostics barrier, the
    LIR code verifier, the native executor's guards, and code-cache
    admission. The engine and the executor consult {!fire} at each
    point; the installed plan decides — deterministically, from its
    seed and per-point occurrence counts — whether that occurrence
    fails. With no plan installed, {!fire} is a single [ref] read that
    returns [false]: the layer costs zero model cycles and allocates
    nothing, so the paper's measurements cannot be perturbed (asserted
    by the cycle-invariance test in [test/test_faults.ml]).

    The module sits at the bottom of the dependency stack (it depends
    only on [support]) so both the engine and the native executor can
    consult it without cycles. Plans never change program semantics by
    themselves: every injected failure lands on a path the engine
    already treats as fallible (compile abort → quarantine, guard
    failure → bailout, admission failure → interpret), which is exactly
    the invariant the chaos fuzzer checks ([Fuzz_diff.check_chaos]):
    under any fault schedule the run terminates with the pure
    interpreter's observable output. *)

(** The named injection points.

    Occurrence counting is per point, within one installed plan:
    - [Compile_diag]: one occurrence per compilation reaching the
      post-pipeline diagnostics barrier; firing raises a synthetic
      [Diag.Failed] there (as if a lint check had rejected the graph).
    - [Code_verify]: one occurrence per compilation reaching the LIR
      verifier; firing rejects the (valid) binary.
    - [Exec_guard]: one occurrence per {e passing} guard evaluation in
      native code (failing guards already bail); firing forces the
      guard's bailout path, snapshot and all.
    - [Cache_oom]: one occurrence per code-cache admission; firing
      makes admission report an exhausted cache.
    - [Version_widen]: one occurrence per polyvariant version widening
      (the PR-7 repurpose/widen path); firing makes the widening
      compile unavailable — the engine quarantines the function instead
      and leaves the existing cache entries untouched.
    - [Serve_admit]: one occurrence per service-layer admission check;
      firing forces the request to be shed as if the queue were full.
      Never consulted by plain engine runs.
    - [Serve_deadline]: one occurrence per service-layer request
      attempt; firing forces the attempt to miss its deadline. Never
      consulted by plain engine runs.
    - [Bg_enqueue]: one occurrence per background-compile enqueue
      attempt; firing makes the enqueue fail (the request is dropped and
      the call site keeps interpreting). Never consulted with
      [--bg-compile] off.
    - [Bg_install]: one occurrence per background artifact reaching its
      install point; firing drops the finished artifact — the engine
      re-enqueues the request with doubled modeled cost (backoff) until
      [compile_retries] attempts, then quarantines. Never consulted with
      [--bg-compile] off. *)
type point =
  | Compile_diag
  | Code_verify
  | Exec_guard
  | Cache_oom
  | Version_widen
  | Serve_admit
  | Serve_deadline
  | Bg_enqueue
  | Bg_install

val all_points : point list
(** Every point, in the order {!sample} draws rules for them. *)

(** When a rule fires, in terms of its point's occurrence count [n]
    (1-based): [Nth k] fires exactly once, at [n = k]; [Every k] fires
    at every multiple of [k]; [Prob p] fires each occurrence with
    probability [p], drawn from the plan's seeded PRNG. *)
type mode = Nth of int | Every of int | Prob of float

type spec = (point * mode) list
(** At most one rule per point is consulted (the first match wins). *)

type plan
(** A spec armed with mutable occurrence counters and a seeded PRNG.
    Plans are single-use state: re-arm with {!with_plan} (which installs
    a fresh copy) or rebuild with {!make} to replay one. *)

val make : seed:int -> spec -> plan
val seed_of : plan -> int
val spec_of : plan -> spec

val sample : int -> plan
(** [sample seed] draws a random plan — each point independently gets
    no rule or a random [Nth]/[Every]/[Prob] rule — deterministically
    from [seed]. The chaos fuzzer pairs [sample seed] with the program
    generated from the same seed, so one integer replays a failing
    (program, fault-plan) pair exactly ([jsvm --chaos SEED]). *)

val point_to_string : point -> string
val describe : plan -> string
(** E.g. ["seed=7 compile_diag:nth(2) exec_guard:prob(0.25)"]. *)

(** {1 The installed plan} *)

val install : plan option -> unit
(** Replace the (global) installed plan; [None] disables injection. *)

val installed : unit -> plan option
val active : unit -> bool

val fire : point -> bool
(** Count one occurrence of [point] against the installed plan and
    report whether it must fail. [false] — without counting — when no
    plan is installed. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** Run with a {e fresh copy} of the plan installed (occurrence
    counters and PRNG reset), restoring the previous installation on
    exit — exception-safe, so one chaotic run cannot leak faults into
    the next. *)

(** {1 Fired-fault observation}

    A plan that never triggers passes a chaos run silently; the hook
    lets the harness assert injected faults actually fired. It is
    domain-local and consulted only when {!fire} decides to fail an
    occurrence, so the disabled-layer cost is unchanged. *)

val set_fired_hook : (point -> unit) option -> unit

val with_fired_hook : (point -> unit) -> (unit -> 'a) -> 'a
(** Install a hook for the extent of the callback, restoring the
    previous one on exit (exception-safe). *)
