type mismatch = { mm_config : string; mm_expected : string; mm_got : string }

(* A differential failure is either a behavioural divergence from the
   reference interpreter, or an IR verifier rejecting a compilation while
   pipeline checks were on. The two are distinct kinds on purpose: a
   miscompile that happens to print the right answer still corrupts the IR,
   and only the verifier sees it. *)
type failure =
  | Mismatch of mismatch
  | Verifier_diag of { vd_config : string; vd_diag : Diag.t }

let capture k =
  let buf = Buffer.create 64 in
  let saved = !Runtime.Builtins.print_hook in
  Runtime.Builtins.print_hook :=
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n');
  Runtime.Builtins.reset_random 20130223;
  Fun.protect
    ~finally:(fun () -> Runtime.Builtins.print_hook := saved)
    (fun () -> k buf)

let run config src =
  capture (fun buf ->
      (try ignore (Engine.run_source config src)
       with e -> Buffer.add_string buf ("EXN " ^ Printexc.to_string e ^ "\n"));
      Buffer.contents buf)

(* Like [run], but with per-pass pipeline checks enabled for the duration;
   a verifier rejection comes back as [Error diag] instead of being folded
   into the captured output as an EXN line. The engine contains mid-run
   compile diagnostics (quarantining the function and interpreting on), so
   they are collected through [Engine.diag_abort_hook]; [Diag.Failed] can
   now only escape from bytecode admission in [Engine.make]. Either way the
   first diagnostic of the run is the [Error]. *)
let run_checked config src =
  let saved = !Pipeline.checks in
  let saved_abort = !Engine.diag_abort_hook in
  let first_diag = ref None in
  Pipeline.checks := true;
  Engine.diag_abort_hook :=
    Some (fun d -> if !first_diag = None then first_diag := Some d);
  Fun.protect
    ~finally:(fun () ->
      Pipeline.checks := saved;
      Engine.diag_abort_hook := saved_abort)
    (fun () ->
      capture (fun buf ->
          match
            (try
               ignore (Engine.run_source config src);
               Ok ()
             with
            | Diag.Failed d -> Error d
            | e ->
              Buffer.add_string buf ("EXN " ^ Printexc.to_string e ^ "\n");
              Ok ())
          with
          | Error d -> Error d
          | Ok () -> (
            match !first_diag with
            | Some d -> Error d
            | None -> Ok (Buffer.contents buf))))

let default_configs =
  let opt o = Engine.default_config ~opt:o () in
  ("baseline", Engine.default_config ())
  :: ("best", opt Pipeline.best)
  :: ( "max",
       opt
         (Pipeline.make ~ps:true ~cp:true ~li:true ~dce:true ~bce:true
            ~precise_alias:true ~overflow_elim:true ~loop_unroll:true "max") )
  :: ("selective", Engine.default_config ~opt:Pipeline.all_on ~selective:true ())
  :: ("cache4", Engine.default_config ~opt:Pipeline.all_on ~cache_size:4 ())
  :: ("sccp", opt (Pipeline.make ~ps:true ~sccp:true ~li:true ~dce:true ~bce:true "sccp"))
  :: List.map (fun c -> (c.Pipeline.name, opt c)) Pipeline.figure9_configs

(* Chaos differential: the reference is the pure interpreter with no
   faults installed; every JIT configuration then runs under the fault
   plan sampled from [seed] ([Faults.with_plan] arms a fresh copy per
   configuration, so occurrence counts restart each time). The invariant
   is the containment layer's contract: under any injected fault schedule
   the run terminates with the interpreter's observable output — injected
   compile failures quarantine, injected guard failures bail out, and
   nothing but [Engine.Runtime_error] may escape (anything else shows up
   as a divergent EXN line). Pipeline checks are on so the barrier is
   exercised with the full lint machinery in the loop. *)
let check_chaos ?(configs = default_configs) ~seed src =
  let reference = run Engine.interp_only src in
  let plan = Faults.sample seed in
  let saved = !Pipeline.checks in
  Pipeline.checks := true;
  Fun.protect
    ~finally:(fun () -> Pipeline.checks := saved)
    (fun () ->
      List.fold_left
        (fun acc (name, config) ->
          match acc with
          | Some _ -> acc
          | None ->
            let got = Faults.with_plan plan (fun () -> run config src) in
            if got = reference then None
            else
              Some
                (Mismatch
                   {
                     mm_config =
                       Printf.sprintf "%s+chaos(%s)" name (Faults.describe plan);
                     mm_expected = reference;
                     mm_got = got;
                   }))
        None configs)

let check ?(configs = default_configs) src =
  let reference = run Engine.interp_only src in
  List.fold_left
    (fun acc (name, config) ->
      match acc with
      | Some _ -> acc
      | None -> (
        match run_checked config src with
        | Error d -> Some (Verifier_diag { vd_config = name; vd_diag = d })
        | Ok got ->
          if got = reference then None
          else Some (Mismatch { mm_config = name; mm_expected = reference; mm_got = got })))
    None configs
