type mismatch = { mm_config : string; mm_expected : string; mm_got : string }

(* A differential failure is either a behavioural divergence from the
   reference interpreter, or an IR verifier rejecting a compilation while
   pipeline checks were on. The two are distinct kinds on purpose: a
   miscompile that happens to print the right answer still corrupts the IR,
   and only the verifier sees it. *)
type failure =
  | Mismatch of mismatch
  | Verifier_diag of { vd_config : string; vd_diag : Diag.t }

(* Print redirection and the PRNG are domain-local, so a [capture] is a
   self-contained pool task: configurations of one check can run on
   different domains without sharing a buffer. *)
let capture k =
  let buf = Buffer.create 64 in
  Runtime.Builtins.with_print_hook
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    (fun () ->
      Runtime.Builtins.reset_random 20130223;
      k buf)

let run config src =
  capture (fun buf ->
      (try ignore (Engine.run_source config src)
       with e -> Buffer.add_string buf ("EXN " ^ Printexc.to_string e ^ "\n"));
      Buffer.contents buf)

(* Like [run], but with per-pass pipeline checks enabled for the duration;
   a verifier rejection comes back as [Error diag] instead of being folded
   into the captured output as an EXN line. The engine contains mid-run
   compile diagnostics (quarantining the function and interpreting on), so
   they are collected through [Engine.set_diag_abort_hook]; [Diag.Failed]
   can now only escape from bytecode admission in [Engine.make]. Either way
   the first diagnostic of the run is the [Error]. *)
let run_checked config src =
  let first_diag = ref None in
  Pipeline.with_checks true (fun () ->
      Engine.with_diag_abort_hook
        (fun d -> if !first_diag = None then first_diag := Some d)
        (fun () ->
          capture (fun buf ->
              match
                (try
                   ignore (Engine.run_source config src);
                   Ok ()
                 with
                | Diag.Failed d -> Error d
                | e ->
                  Buffer.add_string buf ("EXN " ^ Printexc.to_string e ^ "\n");
                  Ok ())
              with
              | Error d -> Error d
              | Ok () -> (
                match !first_diag with
                | Some d -> Error d
                | None -> Ok (Buffer.contents buf)))))

let default_configs =
  let opt o = Engine.default_config ~opt:o () in
  ("baseline", Engine.default_config ())
  :: ("best", opt Pipeline.best)
  :: ( "max",
       opt
         (Pipeline.make ~ps:true ~cp:true ~li:true ~dce:true ~bce:true
            ~precise_alias:true ~overflow_elim:true ~loop_unroll:true "max") )
  :: ("selective", Engine.default_config ~opt:Pipeline.all_on ~selective:true ())
  :: ("cache4", Engine.default_config ~opt:Pipeline.all_on ~cache_size:4 ())
  :: ( "poly1",
       Engine.default_config ~opt:Pipeline.all_on ~policy:Policy.Polyvariant
         ~cache_size:1 () )
  :: ( "poly4",
       Engine.default_config ~opt:Pipeline.all_on ~policy:Policy.Polyvariant
         ~cache_size:4 () )
  :: ("sccp", opt (Pipeline.make ~ps:true ~sccp:true ~li:true ~dce:true ~bce:true "sccp"))
  :: List.map (fun c -> (c.Pipeline.name, opt c)) Pipeline.figure9_configs

(* Every configuration is an independent pool task; the serial fold
   stopped at the first divergence, and the parallel merge reports the
   failure of the smallest configuration index, so the returned failure —
   and therefore every fuzzer/CLI line printed from it — is identical. *)
let first_failure results = List.find_opt Option.is_some results |> Option.join

(* Chaos differential: the reference is the pure interpreter with no
   faults installed; every JIT configuration then runs under the fault
   plan sampled from [seed] ([Faults.with_plan] arms a fresh copy per
   configuration — and per domain, since the plan slot is domain-local —
   so occurrence counts restart each time). The invariant is the
   containment layer's contract: under any injected fault schedule the run
   terminates with the interpreter's observable output — injected compile
   failures quarantine, injected guard failures bail out, and nothing but
   [Engine.Runtime_error] may escape (anything else shows up as a
   divergent EXN line). Pipeline checks are on so the barrier is exercised
   with the full lint machinery in the loop. *)
let check_chaos ?(configs = default_configs) ~seed src =
  let reference = run Engine.interp_only src in
  let plan = Faults.sample seed in
  Pool.map (Pool.default ())
    (fun (name, config) ->
      Pipeline.with_checks true (fun () ->
          let got = Faults.with_plan plan (fun () -> run config src) in
          if got = reference then None
          else
            Some
              (Mismatch
                 {
                   mm_config = Printf.sprintf "%s+chaos(%s)" name (Faults.describe plan);
                   mm_expected = reference;
                   mm_got = got;
                 })))
    configs
  |> first_failure

let check ?(configs = default_configs) src =
  let reference = run Engine.interp_only src in
  Pool.map (Pool.default ())
    (fun (name, config) ->
      match run_checked config src with
      | Error d -> Some (Verifier_diag { vd_config = name; vd_diag = d })
      | Ok got ->
        if got = reference then None
        else Some (Mismatch { mm_config = name; mm_expected = reference; mm_got = got }))
    configs
  |> first_failure
