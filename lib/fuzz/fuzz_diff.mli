(** Differential execution of one MiniJS program across engine
    configurations.

    The reference semantics is the pure interpreter; every JIT
    configuration must print exactly the same output. A raised exception is
    folded into the output (as an ["EXN ..."] line) so that a crash in one
    configuration is reported as a mismatch rather than aborting the
    fuzzing loop. *)

type mismatch = {
  mm_config : string;  (** name of the disagreeing configuration *)
  mm_expected : string;  (** the interpreter's output *)
  mm_got : string;  (** the configuration's output *)
}

(** The two failure kinds, kept distinct so IR corruption is caught even
    when the miscompiled code prints the right answer. *)
type failure =
  | Mismatch of mismatch
  | Verifier_diag of { vd_config : string; vd_diag : Diag.t }

val run : Engine.config -> string -> string
(** Run one program under one configuration, capturing everything it
    prints. Reseeds the deterministic [Math.random] before the run. *)

val default_configs : (string * Engine.config) list
(** The interpreter-vs-everything matrix: baseline, best, a
    maximum-extensions configuration, the selective and 4-entry-cache
    engine policies, the polyvariant policy at cache sizes 1 and 4, the
    SCCP pipeline, and the ten Figure 9 columns. *)

val run_checked : Engine.config -> string -> (string, Diag.t) result
(** Like {!run}, but with per-pass pipeline checks enabled for the
    duration; a verifier rejection is [Error diag] instead of an
    ["EXN ..."] output line. *)

val check : ?configs:(string * Engine.config) list -> string -> failure option
(** Run [src] under the interpreter and every configuration (the latter
    with pipeline checks enabled); return the first failure, or [None]
    when every configuration agrees and verifies clean. *)

val check_chaos :
  ?configs:(string * Engine.config) list -> seed:int -> string -> failure option
(** The chaos differential: run [src] under the fault-free interpreter for
    reference, then under every JIT configuration with the fault plan
    [Faults.sample seed] installed (a fresh copy per configuration) and
    pipeline checks on. The containment invariant under test: every run
    terminates with the interpreter's observable output — injected compile
    failures quarantine, injected guard failures bail out, and no exception
    other than [Engine.Runtime_error] escapes (one would surface as a
    divergent ["EXN ..."] line). The failing configuration's name carries
    the plan description for replay. *)
