open Support

(* Where do specialization's savings come from? The speedup figures say how
   much faster specialized code is; this figure says *which* cycles
   disappeared, using the profiler's per-origin attribution: native-tier
   cycles per work category (guard / alu / mem / call / alloc / control)
   under the baseline pipeline versus the full specializing one. Guards
   (type barriers + bounds checks) eliminated by baking arguments in, loads
   folded away by constant propagation, and call overhead absorbed by
   inlining each show up as their category's delta. *)

type cell = {
  native : int;  (* native-tier cycles, all categories *)
  total : int;  (* whole-run model cycles (the recorder's exact sum) *)
  cats : (Profile.category * int) list;  (* native cycles per category *)
  compiles : int;
  deopts : int;
}

type row = { suite_name : string; base : cell; spec : cell }

type t = row list

let base_config = Engine.default_config ()
let spec_config = Engine.default_config ~opt:Pipeline.all_on ()

let empty_cell =
  {
    native = 0;
    total = 0;
    cats = List.map (fun (c, _) -> (c, 0)) [];
    compiles = 0;
    deopts = 0;
  }

let add_cells a b =
  {
    native = a.native + b.native;
    total = a.total + b.total;
    cats =
      (if a.cats = [] then b.cats
       else List.map2 (fun (c, x) (_, y) -> (c, x + y)) a.cats b.cats);
    compiles = a.compiles + b.compiles;
    deopts = a.deopts + b.deopts;
  }

(* One (member, config) cell: a fresh recorder for the attribution and a
   fresh counter registry for the event counts, both scoped to the cell —
   [Telemetry.with_fresh_counters] is what keeps per-function counts from
   bleeding between cells even though the cells share a pool worker. *)
let run_cell config (m : Suite.member) =
  Runner.quiet (fun () ->
      let program = Bytecode.Compile.program_of_source m.Suite.m_source in
      Telemetry.with_fresh_counters ~nfuncs:(Bytecode.Program.nfuncs program)
        (fun counters ->
          let r = Profile.Recorder.create ~program in
          ignore
            (Profile.with_recorder r (fun () ->
                 Engine.run_program config program));
          {
            native =
              Profile.Recorder.tier_cycles r Profile.T_native_gen
              + Profile.Recorder.tier_cycles r Profile.T_native_spec;
            total = Profile.Recorder.total_cycles r;
            cats = Profile.Recorder.native_category_cycles r;
            (* The fresh registry is fed by [counting_sink], which buckets
               by event kind, not by [Telemetry.Key] counter names. *)
            compiles = Telemetry.Counters.total counters "compile_end";
            deopts = Telemetry.Counters.total counters "deopt";
          }))

let run () =
  List.map
    (fun (suite : Suite.t) ->
      let cells =
        Pool.map (Pool.default ())
          (fun m -> (run_cell base_config m, run_cell spec_config m))
          suite.Suite.members
      in
      let base = List.fold_left (fun acc (b, _) -> add_cells acc b) empty_cell cells in
      let spec = List.fold_left (fun acc (_, s) -> add_cells acc s) empty_cell cells in
      { suite_name = suite.Suite.s_name; base; spec })
    Suites.all

let cat_of cell c = Option.value (List.assoc_opt c cell.cats) ~default:0

let delta_pct b s =
  if b = 0 then "-"
  else Printf.sprintf "%+.1f%%" (100.0 *. float_of_int (s - b) /. float_of_int b)

let print (t : t) =
  print_endline
    "Attribution - native cycles by category, baseline vs specialized (what the \
     specializer removed)";
  let cats =
    [ Profile.C_guard; Profile.C_alu; Profile.C_mem; Profile.C_call; Profile.C_alloc;
      Profile.C_control ]
  in
  let header =
    [ "suite"; "config"; "native"; "total" ]
    @ List.map Profile.category_to_string cats
    @ [ "compiles"; "deopts" ]
  in
  let cell_row name config cell =
    [ name; config; string_of_int cell.native; string_of_int cell.total ]
    @ List.map (fun c -> string_of_int (cat_of cell c)) cats
    @ [ string_of_int cell.compiles; string_of_int cell.deopts ]
  in
  let rows =
    List.concat_map
      (fun r ->
        [ cell_row r.suite_name "baseline" r.base;
          cell_row "" "specialized" r.spec;
          [ ""; "delta"; delta_pct r.base.native r.spec.native;
            delta_pct r.base.total r.spec.total ]
          @ List.map (fun c -> delta_pct (cat_of r.base c) (cat_of r.spec c)) cats
          @ [ ""; "" ] ])
      t
  in
  print_string (Table.render ~header ~rows ());
  print_endline
    "  (guard: type barriers + bounds checks eliminated by burning arguments in;\n\
    \   mem: loads folded by constant propagation; call: overhead absorbed by inlining)"
