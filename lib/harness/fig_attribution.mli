(** The attribution figure: native-tier cycles per work category (guard /
    alu / mem / call / alloc / control) under the baseline pipeline versus
    the full specializing one, per suite — which checks specialization
    removed (bounds and type guards), which loads it folded, which call
    overhead inlining absorbed. Built on {!Profile.Recorder}; each
    (member, config) cell gets a fresh recorder and a
    {!Telemetry.with_fresh_counters} registry, so nothing bleeds between
    cells. *)

type cell = {
  native : int;  (** native-tier cycles, all categories *)
  total : int;  (** whole-run model cycles *)
  cats : (Profile.category * int) list;  (** native cycles per category *)
  compiles : int;
  deopts : int;
}

type row = { suite_name : string; base : cell; spec : cell }

type t = row list

val run : unit -> t
(** Run every suite member under both configurations (fanned out over
    {!Pool.default}; byte-identical at any job count). *)

val print : t -> unit
