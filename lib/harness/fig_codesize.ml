open Support

type point = { fn_name : string; base_size : int; spec_size : int }

type suite_sizes = {
  suite_name : string;
  points : point list;
  average_reduction : float;
}

type site_result = {
  site : string;
  size_reduction : float;
  recompile_increase : float;
}

let min_size (f : Engine.func_report) =
  match f.Engine.fr_sizes with
  | [] -> None
  | sizes -> Some (List.fold_left (fun acc (_, s) -> min acc s) max_int sizes)

(* Pair up functions compiled under both configurations, by report order
   (same program, same fids). *)
let size_points base_reports spec_reports =
  List.concat_map
    (fun ((mname, base), (_, spec)) ->
      List.filter_map
        (fun ((b : Engine.func_report), (s : Engine.func_report)) ->
          match (min_size b, min_size s) with
          | Some bs, Some ss ->
            Some { fn_name = mname ^ ":" ^ b.Engine.fr_name; base_size = bs; spec_size = ss }
          | _ -> None)
        (List.combine base.Engine.functions spec.Engine.functions))
    (List.combine base_reports spec_reports)

let average_reduction points =
  match points with
  | [] -> 0.0
  | _ ->
    Stats.arithmetic_mean
      (List.map
         (fun p ->
           (1.0 -. (float_of_int p.spec_size /. float_of_int (max 1 p.base_size))) *. 100.0)
         points)

let spec_config = Engine.default_config ~opt:Pipeline.all_on ()
let base_config = Engine.default_config ()

let run_suites () =
  Pool.map (Pool.default ())
    (fun (suite : Suite.t) ->
      let base = Runner.run_suite base_config suite in
      let spec = Runner.run_suite spec_config suite in
      let points =
        size_points base spec |> List.sort (fun a b -> compare a.base_size b.base_size)
      in
      { suite_name = suite.Suite.s_name; points; average_reduction = average_reduction points })
    Suites.all

let run_sites ?(seed = 7) () =
  Pool.map (Pool.default ())
    (fun profile ->
      let src = Web.synthetic_site ~seed profile in
      let member = Suite.member profile.Web.site_name src in
      let base = Runner.run_member base_config member in
      let spec = Runner.run_member spec_config member in
      let points = size_points [ ("", base) ] [ ("", spec) ] in
      let recompile_increase =
        let b = float_of_int (max 1 base.Engine.compilations) in
        float_of_int (spec.Engine.compilations - base.Engine.compilations) /. b *. 100.0
      in
      {
        site = profile.Web.site_name;
        size_reduction = average_reduction points;
        recompile_increase;
      })
    [ Web.google; Web.facebook; Web.twitter ]

let print suites sites =
  Printf.printf
    "Figure 10 - native code size per function, smallest version per mode\n\
     (paper average reductions: SunSpider 16.72%%, V8 18.84%%, Kraken 15.94%%)\n";
  List.iter
    (fun s ->
      Printf.printf "\n%s: average reduction %s%% over %d functions\n" s.suite_name
        (Table.fmt_pct s.average_reduction)
        (List.length s.points);
      print_string
        (Table.render
           ~header:[ "function"; "base"; "specialized"; "delta" ]
           ~rows:
             (List.map
                (fun p ->
                  [
                    p.fn_name;
                    string_of_int p.base_size;
                    string_of_int p.spec_size;
                    Printf.sprintf "%+d" (p.spec_size - p.base_size);
                  ])
                s.points)
           ()))
    suites;
  Printf.printf
    "\nWeb study (paper: google -12.07%%/+5.0%%, facebook -16.08%%/+4.9%%, twitter -22.10%%/+23.1%%)\n";
  print_string
    (Table.render
       ~header:[ "site"; "code-size reduction"; "extra recompiles" ]
       ~rows:
         (List.map
            (fun s ->
              [
                s.site;
                Table.fmt_pct s.size_reduction ^ "%";
                Table.fmt_pct s.recompile_increase ^ "%";
              ])
            sites)
       ())
