type t = {
  suite_name : string;
  specialized : int;
  successful : int;
  deoptimized : int;
}

let run () =
  let config = Engine.default_config ~opt:Pipeline.all_on () in
  Pool.map (Pool.default ())
    (fun (suite : Suite.t) ->
      let runs = Runner.run_suite config suite in
      let specialized = ref 0 and deoptimized = ref 0 in
      List.iter
        (fun (_, report) ->
          specialized := !specialized + report.Engine.specialized_funcs;
          deoptimized := !deoptimized + report.Engine.deoptimized_funcs)
        runs;
      {
        suite_name = suite.Suite.s_name;
        specialized = !specialized;
        successful = !specialized - !deoptimized;
        deoptimized = !deoptimized;
      })
    Suites.all

let print rows =
  Printf.printf
    "Specialization policy (paper: 56/18/38 SunSpider, 37/11/26 V8, 38/14/24 Kraken)\n";
  print_string
    (Support.Table.render
       ~header:[ "suite"; "specialized"; "successful"; "deoptimized" ]
       ~rows:
         (List.map
            (fun r ->
              [
                r.suite_name;
                string_of_int r.specialized;
                string_of_int r.successful;
                string_of_int r.deoptimized;
              ])
            rows)
       ())
