type t = {
  suite_name : string;
  base_compilations : int;
  spec_compilations : int;
  growth_percent : float;
}

let total_compilations runs =
  List.fold_left (fun acc (_, r) -> acc + r.Engine.compilations) 0 runs

let run () =
  let base_config = Engine.default_config () in
  let spec_config = Engine.default_config ~opt:Pipeline.all_on () in
  Pool.map (Pool.default ())
    (fun (suite : Suite.t) ->
      let base = total_compilations (Runner.run_suite base_config suite) in
      let spec = total_compilations (Runner.run_suite spec_config suite) in
      {
        suite_name = suite.Suite.s_name;
        base_compilations = base;
        spec_compilations = spec;
        growth_percent = float_of_int (spec - base) /. float_of_int (max 1 base) *. 100.0;
      })
    Suites.all

let print rows =
  Printf.printf
    "Recompilation impact (paper: +3.6%% SunSpider, +4.35%% V8, +7.58%% Kraken)\n";
  print_string
    (Support.Table.render
       ~header:[ "suite"; "base compiles"; "spec compiles"; "growth" ]
       ~rows:
         (List.map
            (fun r ->
              [
                r.suite_name;
                string_of_int r.base_compilations;
                string_of_int r.spec_compilations;
                Support.Table.fmt_pct r.growth_percent ^ "%";
              ])
            rows)
       ())
