(* The SLO comparison the service layer exists for: the paper's one-entry
   policy vs the polyvariant version cache, judged on tail latency, error
   rate and warm/cold tail composition rather than steady-state cycles —
   once under steady load, once under forced overload (arrivals at ~2x
   what the bounded queue admits, with chaos fault plans and poison
   tenants). Deterministic at any --jobs: each cell is a [Serve.run]
   summary, itself a deterministic discrete-event simulation. *)

type cell = {
  policy_name : string;
  mode_name : string;
  cfg : Serve.config;
  summary : Serve.summary;
}

let policies =
  [
    ("paper", Engine.default_config ~opt:Pipeline.all_on ~policy:Policy.Paper ());
    ( "polyvariant",
      Engine.default_config ~opt:Pipeline.all_on ~policy:Policy.Polyvariant
        ~cache_size:4 () );
  ]

let mode_config mode engine =
  match mode with
  | "steady" ->
    Serve.default_config ~isolates:2 ~requests:100 ~tenants:6 ~capacity:8
      ~queue_deadline:250_000 ~deadline:150_000 ~retries:2 ~backoff:2_000
      ~overload_depth:6 ~mean_gap:30_000 ~crash_fraction:0.04 ~seed:11 ~engine ()
  | _ ->
    (* Overload: the same service, arrivals ~3x faster, chaos plans on. *)
    Serve.default_config ~isolates:2 ~requests:100 ~tenants:6 ~capacity:8
      ~queue_deadline:250_000 ~deadline:150_000 ~retries:2 ~backoff:2_000
      ~overload_depth:6 ~mean_gap:10_000 ~crash_fraction:0.04 ~seed:11 ~chaos:5
      ~engine ()

let run () =
  let cells =
    List.concat_map
      (fun (policy_name, engine) ->
        List.map (fun mode_name -> (policy_name, mode_name, engine)) [ "steady"; "overload" ])
      policies
  in
  Pool.map (Pool.default ())
    (fun (policy_name, mode_name, engine) ->
      let cfg = mode_config mode_name engine in
      { policy_name; mode_name; cfg; summary = Serve.run cfg })
    cells

let print cells =
  Printf.printf
    "Service-level objectives: policies under steady load and overload\n\
     (2 isolates, 100 requests, capacity 8, deadline 150000 cycles; latency in \
     model cycles)\n";
  print_string
    (Support.Table.render
       ~header:
         [ "policy"; "mode"; "ok"; "shed"; "dl-q"; "dl-x"; "fault"; "err%"; "p50";
           "p95"; "p99"; "ok/Mcy"; "tail-cold"; "tail-comp%" ]
       ~rows:
         (List.map
            (fun c ->
              let s = c.summary in
              [
                c.policy_name;
                c.mode_name;
                string_of_int s.Serve.sm_ok;
                string_of_int s.Serve.sm_shed;
                string_of_int s.Serve.sm_deadline_queue;
                string_of_int s.Serve.sm_deadline_exec;
                string_of_int s.Serve.sm_fault;
                Printf.sprintf "%.1f" (Serve.error_rate s);
                string_of_int s.Serve.sm_p50;
                string_of_int s.Serve.sm_p95;
                string_of_int s.Serve.sm_p99;
                Printf.sprintf "%.2f" s.Serve.sm_throughput;
                Printf.sprintf "%d/%d" s.Serve.sm_tail_cold s.Serve.sm_tail;
                Printf.sprintf "%.1f" s.Serve.sm_tail_compile_pct;
              ])
            cells)
       ())
