(** The service-level-objective experiment ([vs-experiments serve]): the
    paper policy vs the polyvariant version cache on p50/p95/p99 latency,
    error rate and warm/cold tail composition, under steady load and
    under forced overload with chaos fault plans. Deterministic at any
    [--jobs]. *)

type cell = {
  policy_name : string;
  mode_name : string;  (** "steady" or "overload" *)
  cfg : Serve.config;
  summary : Serve.summary;
}

val run : unit -> cell list
val print : cell list -> unit
