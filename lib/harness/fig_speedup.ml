open Support

type cell = { speedups : float list; overheads : float list }

type t = { config_names : string list; suites : (string * cell list) list }

(* Every (suite, configuration) cell is independent: suites fan out, and
   within a suite the ten Figure-9 configurations fan out again (each
   cell's [run_suite] then fans out per member — the pool absorbs the
   nesting). Merges are by list position throughout, so the table is the
   serial one. *)
let run () =
  let configs = Pipeline.figure9_configs in
  let pool = Pool.default () in
  let suites =
    Pool.map pool
      (fun (suite : Suite.t) ->
        let base_runs = Runner.run_suite (Engine.default_config ()) suite in
        let cells =
          Pool.map pool
            (fun opt ->
              let runs = Runner.run_suite (Engine.default_config ~opt ()) suite in
              let speedups =
                List.map2
                  (fun (_, base) (_, conf) ->
                    Stats.percent_change
                      ~base:(float_of_int base.Engine.total_cycles)
                      ~v:(float_of_int conf.Engine.total_cycles))
                  base_runs runs
              in
              let overheads =
                List.map2
                  (fun (_, base) (_, conf) ->
                    let b = float_of_int (max 1 base.Engine.compile_cycles) in
                    let c = float_of_int conf.Engine.compile_cycles in
                    (c -. b) /. b *. 100.0)
                  base_runs runs
              in
              { speedups; overheads })
            configs
        in
        (suite.Suite.s_name, cells))
      Suites.all
  in
  { config_names = List.map (fun c -> c.Pipeline.name) configs; suites }

let mean_of = function
  | `Arith -> Stats.arithmetic_mean
  | `Geo -> Stats.geometric_mean_percent

let speedup_table ~mean t =
  List.map
    (fun (name, cells) ->
      name :: List.map (fun c -> Table.fmt_pct (mean_of mean c.speedups)) cells)
    t.suites

let overhead_table ~mean t =
  List.map
    (fun (name, cells) ->
      name :: List.map (fun c -> Table.fmt_pct (mean_of mean c.overheads)) cells)
    t.suites

let print t =
  let header = "suite" :: t.config_names in
  Printf.printf
    "Figure 9(a) - runtime speedup %%, arithmetic mean (paper SunSpider row:\n\
    \  4.81 -1.04 4.46 4.62 5.35 5.12 4.12 5.12 5.38 4.54)\n";
  print_string (Table.render ~header ~rows:(speedup_table ~mean:`Arith t) ());
  Printf.printf "\nFigure 9(b) - runtime speedup %%, geometric mean\n";
  print_string (Table.render ~header ~rows:(speedup_table ~mean:`Geo t) ());
  Printf.printf
    "\nFigure 9(c) - compilation overhead %%, arithmetic mean (negative = compiles faster)\n";
  print_string (Table.render ~header ~rows:(overhead_table ~mean:`Arith t) ());
  Printf.printf "\nFigure 9(d) - compilation overhead %%, geometric mean\n";
  print_string (Table.render ~header ~rows:(overhead_table ~mean:`Geo t) ())
