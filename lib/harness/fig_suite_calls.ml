open Support

type suite_stats = {
  suite_name : string;
  distinct_functions : int;
  calls_bins : (string * float) list;
  argsets_bins : (string * float) list;
  called_once : float;
  single_argset : float;
  most_called : string * int;
  type_fractions : (string * float) list;
}

let tag_category (tag : Runtime.Value.tag) =
  match tag with
  | Runtime.Value.Tag_array -> "array"
  | Runtime.Value.Tag_bool -> "bool"
  | Runtime.Value.Tag_double -> "double"
  | Runtime.Value.Tag_function -> "function"
  | Runtime.Value.Tag_int -> "int"
  | Runtime.Value.Tag_null -> "null"
  | Runtime.Value.Tag_object -> "object"
  | Runtime.Value.Tag_string -> "string"
  | Runtime.Value.Tag_undefined -> "undefined"

let suite_stats (suite : Suite.t) =
  let calls_h = Stats.Histogram.create () in
  let argsets_h = Stats.Histogram.create () in
  let type_counts = Hashtbl.create 16 in
  let total_params = ref 0 in
  let most = ref ("", 0) in
  let nfuncs = ref 0 in
  List.iter
    (fun (_, report) ->
      List.iter
        (fun (f : Engine.func_report) ->
          incr nfuncs;
          Stats.Histogram.add calls_h f.Engine.fr_calls;
          let argsets = f.Engine.fr_arg_set_changes + 1 in
          Stats.Histogram.add argsets_h argsets;
          if f.Engine.fr_calls > snd !most then most := (f.Engine.fr_name, f.Engine.fr_calls);
          if argsets = 1 then
            List.iter
              (fun tag ->
                let key = tag_category tag in
                Hashtbl.replace type_counts key
                  (1 + Option.value (Hashtbl.find_opt type_counts key) ~default:0);
                incr total_params)
              f.Engine.fr_last_arg_tags)
        (Runner.called_functions report))
    (Runner.run_suite Engine.interp_only suite);
  let categories =
    [ "array"; "bool"; "double"; "function"; "int"; "null"; "object"; "string"; "undefined" ]
  in
  {
    suite_name = suite.Suite.s_name;
    distinct_functions = !nfuncs;
    calls_bins = Stats.Histogram.bins calls_h ~first:1 ~tail_from:30;
    argsets_bins = Stats.Histogram.bins argsets_h ~first:1 ~tail_from:30;
    called_once = Stats.Histogram.fraction calls_h 1;
    single_argset = Stats.Histogram.fraction argsets_h 1;
    most_called = !most;
    type_fractions =
      List.map
        (fun c ->
          let n = Option.value (Hashtbl.find_opt type_counts c) ~default:0 in
          (c, float_of_int n /. float_of_int (max 1 !total_params)))
        categories;
  }

let run () = Pool.map (Pool.default ()) suite_stats Suites.all

let print stats =
  let pct x = Table.fmt_pct (100.0 *. x) ^ "%" in
  Printf.printf
    "Figure 3 - per-suite invocation statistics (paper: 21.43%%/4.68%%/39.79%% called once;\n";
  Printf.printf "            38.96%%/40.62%%/55.91%% with a single argument set)\n";
  print_string
    (Table.render
       ~header:
         [ "suite"; "functions"; "called once"; "one arg set"; "most called"; "calls" ]
       ~rows:
         (List.map
            (fun s ->
              [
                s.suite_name;
                string_of_int s.distinct_functions;
                pct s.called_once;
                pct s.single_argset;
                fst s.most_called;
                string_of_int (snd s.most_called);
              ])
            stats)
       ());
  Printf.printf "\nFigure 4 (benchmark columns) - parameter type mix of one-arg-set functions\n";
  let header = "type" :: List.map (fun s -> s.suite_name) stats in
  let categories = List.map fst (List.hd stats).type_fractions in
  let rows =
    List.map
      (fun c ->
        c
        :: List.map
             (fun s -> pct (List.assoc c s.type_fractions))
             stats)
      categories
  in
  print_string (Table.render ~header ~rows ())
