(* The specialization-policy / version-count sweep on the synthetic
   web-session trace: generic code vs the paper's one-entry policy vs the
   polyvariant version cache at several sizes, in model cycles. The web
   sites are the adversarial workload for the paper's policy — their
   argument variability (google 5% → twitter 23% extra recompiles in the
   code-size study) is exactly what makes a one-entry value cache churn —
   so this is where a multi-entry widening cache has to earn its keep. *)

type cell = {
  config_name : string;
  total_cycles : int;
  native_cycles : int;
  compile_cycles : int;
  compiles : int;
  deopts : int;
  widens : int;
  promotions : int;
  seeded : int;
  blacklists : int;
}

type t = { site : string; cells : cell list }

let configs =
  [
    ("generic", Engine.default_config ());
    ("paper k=1", Engine.default_config ~opt:Pipeline.all_on ());
    ( "poly k=1",
      Engine.default_config ~opt:Pipeline.all_on ~policy:Policy.Polyvariant
        ~cache_size:1 () );
    ( "poly k=2",
      Engine.default_config ~opt:Pipeline.all_on ~policy:Policy.Polyvariant
        ~cache_size:2 () );
    ( "poly k=4",
      Engine.default_config ~opt:Pipeline.all_on ~policy:Policy.Polyvariant
        ~cache_size:4 () );
  ]

(* One (site, config) cell, with a fresh counter registry so event counts
   cannot bleed between cells sharing a pool worker. *)
let run_cell name config src =
  Runner.quiet (fun () ->
      let program = Bytecode.Compile.program_of_source src in
      Telemetry.with_fresh_counters ~nfuncs:(Bytecode.Program.nfuncs program)
        (fun counters ->
          let report = Engine.run_program config program in
          {
            config_name = name;
            total_cycles = report.Engine.total_cycles;
            native_cycles = report.Engine.native_cycles;
            compile_cycles = report.Engine.compile_cycles;
            compiles = Telemetry.Counters.total counters "compile_end";
            deopts = Telemetry.Counters.total counters "deopt";
            widens = Telemetry.Counters.total counters "version_widen";
            promotions = Telemetry.Counters.total counters Telemetry.Key.versions_promoted;
            seeded = Telemetry.Counters.total counters Telemetry.Key.interpro_seeded;
            blacklists = Telemetry.Counters.total counters "blacklist";
          }))

let run ?(seed = 7) () =
  Pool.map (Pool.default ())
    (fun profile ->
      let src = Web.synthetic_site ~seed profile in
      {
        site = profile.Web.site_name;
        cells = List.map (fun (name, cfg) -> run_cell name cfg src) configs;
      })
    [ Web.google; Web.facebook; Web.twitter ]

let print rows =
  Printf.printf "Specialization policies on the web-session trace (model cycles)\n";
  List.iter
    (fun r ->
      let generic =
        match List.find_opt (fun c -> c.config_name = "generic") r.cells with
        | Some c -> c.total_cycles
        | None -> 0
      in
      Printf.printf "%s:\n" r.site;
      print_string
        (Support.Table.render
           ~header:
             [ "config"; "cycles"; "vs generic"; "native"; "compile"; "compiles";
               "deopts"; "widens"; "promo"; "seeded"; "blacklists" ]
           ~rows:
             (List.map
                (fun c ->
                  [
                    c.config_name;
                    string_of_int c.total_cycles;
                    (if generic = 0 then "-"
                     else
                       Printf.sprintf "%+.2f%%"
                         (100.0
                         *. (1.0
                            -. float_of_int c.total_cycles /. float_of_int generic)));
                    string_of_int c.native_cycles;
                    string_of_int c.compile_cycles;
                    string_of_int c.compiles;
                    string_of_int c.deopts;
                    string_of_int c.widens;
                    string_of_int c.promotions;
                    string_of_int c.seeded;
                    string_of_int c.blacklists;
                  ])
                r.cells)
           ()))
    rows
