(** The specialization-policy / version-count sweep on the synthetic
    web-session trace: generic code, the paper's one-entry policy, and the
    polyvariant version cache at sizes 1, 2 and 4, compared in model
    cycles per site (google / facebook / twitter profiles). *)

type cell = {
  config_name : string;
  total_cycles : int;
  native_cycles : int;
  compile_cycles : int;
  compiles : int;
  deopts : int;  (** §4 deoptimizations *)
  widens : int;  (** polyvariant ladder steps (version-widen events) *)
  promotions : int;  (** tier-2 promotions of still-hot generic binaries *)
  seeded : int;  (** value keys covered by interprocedural signatures *)
  blacklists : int;
}

type t = { site : string; cells : cell list }

val run : ?seed:int -> unit -> t list
(** Deterministic in [seed] (default 7, matching the code-size study). *)

val print : t list -> unit
