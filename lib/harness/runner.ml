(* [quiet] is what makes suite members valid pool tasks: it installs the
   domain-local print sink and reseeds the domain-local PRNG, so a member
   run is self-contained wherever it executes and cycle results cannot
   depend on scheduling. *)
let quiet f =
  Runtime.Builtins.with_print_hook ignore
    (fun () ->
      Runtime.Builtins.reset_random 20130223;  (* CGO'13 *)
      f ())

let run_member config (m : Suite.member) =
  quiet (fun () -> Engine.run_source config m.Suite.m_source)

(* Members fan out over the default pool; the merge is by member index, so
   the (name, report) list is identical to the serial one. *)
let run_suite config (suite : Suite.t) =
  Pool.map (Pool.default ())
    (fun (m : Suite.member) -> (m.Suite.m_name, run_member config m))
    suite.Suite.members

let called_functions (r : Engine.report) =
  List.filter
    (fun (f : Engine.func_report) -> f.Engine.fr_calls > 0 && f.Engine.fr_fid <> 0)
    r.Engine.functions
