(** Shared plumbing for the experiment drivers: run suite members under a
    configuration with [print] silenced, deterministically. *)

val quiet : (unit -> 'a) -> 'a
(** Evaluate with the [print] builtin suppressed and [Math.random]
    reseeded, restoring the hooks afterwards. Both are domain-local, which
    makes a [quiet] thunk a self-contained pool task. *)

val run_member : Engine.config -> Suite.member -> Engine.report
(** Run one suite member quietly. *)

val run_suite : Engine.config -> Suite.t -> (string * Engine.report) list
(** Run every member — fanned out over {!Pool.default}, merged back in
    member order, so the result is byte-for-byte the serial one. *)

val called_functions : Engine.report -> Engine.func_report list
(** Function reports with at least one call, excluding the toplevel. *)
