open Runtime

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type frame = {
  func : Bytecode.Program.func;
  args : Value.t array;
  locals : Value.t array;
  cells : Value.t ref array;
  upvals : Value.t ref array;
  stack : Value.t array;
  mutable sp : int;
  mutable pc : int;
}

type state = {
  program : Bytecode.Program.t;
  globals : Value.t array;
  mutable icount : int;
  mutable depth : int;
  max_depth : int;
}

type hooks = {
  call : Value.t -> Value.t array -> Value.t;
  loop_head : frame -> Value.t option;
}

let default_max_depth = 10_000

let make_state ?(max_depth = default_max_depth) program =
  let globals = Array.make (Array.length program.Bytecode.Program.global_names) Value.Undefined in
  List.iter
    (fun (name, v) ->
      match Bytecode.Program.global_slot program name with
      | Some slot -> globals.(slot) <- v
      | None -> ())
    (Builtins.globals ());
  { program; globals; icount = 0; depth = 0; max_depth }

let make_frame (func : Bytecode.Program.func) ~args ~upvals =
  let padded =
    if Array.length args >= func.arity then args
    else
      Array.init func.arity (fun i ->
          if i < Array.length args then args.(i) else Value.Undefined)
  in
  {
    func;
    args = padded;
    locals = Array.make (max func.nlocals 1) Value.Undefined;
    cells = Array.init (max func.ncells 1) (fun _ -> ref Value.Undefined);
    upvals;
    stack = Array.make (max func.max_stack 1) Value.Undefined;
    sp = 0;
    pc = 0;
  }

let push frame v =
  frame.stack.(frame.sp) <- v;
  frame.sp <- frame.sp + 1

let pop frame =
  frame.sp <- frame.sp - 1;
  frame.stack.(frame.sp)

(* A fresh array per call on purpose: callee argument arrays escape into
   engine state (argument-profile snapshots, specialization burn-in, frame
   aliasing in [make_frame] when no padding is needed), so a reused scratch
   buffer here would alias live frames. Opcodes whose operands do *not*
   escape ([New_array], [New_object]) read the operand stack in place
   instead of going through this. *)
let pop_n frame n =
  let vs = Array.sub frame.stack (frame.sp - n) n in
  frame.sp <- frame.sp - n;
  vs

(* Object-model operations are shared with the native executor through
   Runtime.Objmodel; wrap its errors in the interpreter's exception. *)
let om f = try f () with Objmodel.Error msg -> raise (Runtime_error msg)

let get_prop_value recv name = om (fun () -> Objmodel.get_prop recv name)
let set_prop_value recv name v = om (fun () -> Objmodel.set_prop recv name v)
let get_elem_value recv idx = om (fun () -> Objmodel.get_elem recv idx)
let set_elem_value recv idx v = om (fun () -> Objmodel.set_elem recv idx v)
let construct ctor args = om (fun () -> Objmodel.construct ctor args)

(* Dispatch-loop exit. The seed looped on [while !result = None], paying a
   polymorphic compare against an option per executed instruction; raising
   a no-trace exception on the three exit opcodes makes the loop condition
   free. The exception never crosses a frame: each [run] has its own
   handler, and nested calls recurse through [hooks.call] into a fresh
   [run]. *)
exception Returned of Value.t

(* Cycle-attribution hook for the profiler: fired with (fid, pc) for every
   interpreted bytecode instruction, exactly where [icount] increments, so
   per-pc attribution sums to icount. Domain-local and read once per [run];
   None in production. *)
let profile_hook : (int -> int -> unit) option Support.Tls.t =
  Support.Tls.make (fun () -> None)

let set_profile_hook h = Support.Tls.set profile_hook h
let with_profile_hook h f = Support.Tls.with_value profile_hook h f

(* Cooperative-deadline hook: fired with (fid, pc) at the same dispatch
   point as the profiler hook. The engine installs a closure that raises
   once the model-cycle clock passes the run's budget — raising from here
   is safe because the interpreter holds no state needing unwinding beyond
   the frame itself. Domain-local, read once per [run]; None in
   production, where the cost is one match per instruction. *)
let deadline_hook : (int -> int -> unit) option Support.Tls.t =
  Support.Tls.make (fun () -> None)

let set_deadline_hook h = Support.Tls.set deadline_hook h
let with_deadline_hook h f = Support.Tls.with_value deadline_hook h f

let rec run state hooks frame =
  let code = frame.func.Bytecode.Program.code in
  let fid = frame.func.Bytecode.Program.fid in
  let prof = Support.Tls.get profile_hook in
  let fuel = Support.Tls.get deadline_hook in
  try
    while true do
      (* Code arrays come out of the bytecode compiler, whose emitted jump
         targets are in bounds by construction (and re-checked by
         Bc_verify under the lint gate), so the fetch skips the bounds
         check. *)
      let instr = Array.unsafe_get code frame.pc in
      state.icount <- state.icount + 1;
      (match prof with Some hook -> hook fid frame.pc | None -> ());
      (match fuel with Some hook -> hook fid frame.pc | None -> ());
      let next = frame.pc + 1 in
      (match instr with
    | Bytecode.Instr.Const v ->
      push frame v;
      frame.pc <- next
    | Bytecode.Instr.Get_arg i ->
      push frame frame.args.(i);
      frame.pc <- next
    | Bytecode.Instr.Set_arg i ->
      frame.args.(i) <- pop frame;
      frame.pc <- next
    | Bytecode.Instr.Get_local i ->
      push frame frame.locals.(i);
      frame.pc <- next
    | Bytecode.Instr.Set_local i ->
      frame.locals.(i) <- pop frame;
      frame.pc <- next
    | Bytecode.Instr.Get_cell i ->
      push frame !(frame.cells.(i));
      frame.pc <- next
    | Bytecode.Instr.Set_cell i ->
      frame.cells.(i) := pop frame;
      frame.pc <- next
    | Bytecode.Instr.Get_upval i ->
      push frame !(frame.upvals.(i));
      frame.pc <- next
    | Bytecode.Instr.Set_upval i ->
      frame.upvals.(i) := pop frame;
      frame.pc <- next
    | Bytecode.Instr.Get_global i ->
      push frame state.globals.(i);
      frame.pc <- next
    | Bytecode.Instr.Set_global i ->
      state.globals.(i) <- pop frame;
      frame.pc <- next
    | Bytecode.Instr.Pop ->
      ignore (pop frame);
      frame.pc <- next
    | Bytecode.Instr.Dup ->
      let v = frame.stack.(frame.sp - 1) in
      push frame v;
      frame.pc <- next
    | Bytecode.Instr.Binop op ->
      let b = pop frame in
      let a = pop frame in
      push frame (Ops.binop op a b);
      frame.pc <- next
    | Bytecode.Instr.Cmp op ->
      let b = pop frame in
      let a = pop frame in
      push frame (Ops.cmp op a b);
      frame.pc <- next
    | Bytecode.Instr.Unop op ->
      let a = pop frame in
      push frame (Ops.unop op a);
      frame.pc <- next
    | Bytecode.Instr.Jump t -> frame.pc <- t
    | Bytecode.Instr.Jump_if_false t ->
      let v = pop frame in
      frame.pc <- (if Convert.to_boolean v then next else t)
    | Bytecode.Instr.Jump_if_true t ->
      let v = pop frame in
      frame.pc <- (if Convert.to_boolean v then t else next)
    | Bytecode.Instr.Loop_head _ -> (
      match hooks.loop_head frame with
      | Some v -> raise_notrace (Returned v)
      | None -> frame.pc <- next)
    | Bytecode.Instr.Call n ->
      let args = pop_n frame n in
      let callee = pop frame in
      push frame (hooks.call callee args);
      frame.pc <- next
    | Bytecode.Instr.Method_call (name, n) ->
      let args = pop_n frame n in
      let recv = pop frame in
      let value = om (fun () -> Objmodel.dispatch_method ~call:hooks.call recv name args) in
      push frame value;
      frame.pc <- next
    | Bytecode.Instr.Return -> raise_notrace (Returned (pop frame))
    | Bytecode.Instr.Return_undefined -> raise_notrace (Returned Value.Undefined)
    | Bytecode.Instr.New_array n ->
      (* Elements are consumed immediately: read them off the operand
         stack in place instead of allocating an intermediate array. *)
      let a = Value.new_arr n in
      let base = frame.sp - n in
      for i = 0 to n - 1 do
        a.Value.elems.(i) <- frame.stack.(base + i)
      done;
      frame.sp <- base;
      push frame (Value.Arr a);
      frame.pc <- next
    | Bytecode.Instr.New (ctor, n) ->
      let args = pop_n frame n in
      push frame (construct ctor args);
      frame.pc <- next
    | Bytecode.Instr.New_object fields ->
      let n = Array.length fields in
      let base = frame.sp - n in
      let obj = Value.new_obj () in
      Array.iteri (fun i key -> Value.obj_set obj key frame.stack.(base + i)) fields;
      frame.sp <- base;
      push frame (Value.Obj obj);
      frame.pc <- next
    | Bytecode.Instr.Get_elem ->
      let idx = pop frame in
      let recv = pop frame in
      push frame (get_elem_value recv idx);
      frame.pc <- next
    | Bytecode.Instr.Set_elem ->
      let v = pop frame in
      let idx = pop frame in
      let recv = pop frame in
      set_elem_value recv idx v;
      push frame v;
      frame.pc <- next
    | Bytecode.Instr.Keys ->
      let v = pop frame in
      push frame (Builtins.call "__keys" [| v |]);
      frame.pc <- next
    | Bytecode.Instr.Get_prop name ->
      let recv = pop frame in
      push frame (get_prop_value recv name);
      frame.pc <- next
    | Bytecode.Instr.Set_prop name ->
      let v = pop frame in
      let recv = pop frame in
      set_prop_value recv name v;
      push frame v;
      frame.pc <- next
    | Bytecode.Instr.Make_closure (fid, captures) ->
      let env =
        Array.map
          (function
            | Bytecode.Instr.Cap_cell i -> frame.cells.(i)
            | Bytecode.Instr.Cap_upval i -> frame.upvals.(i))
          captures
      in
      push frame (Value.Closure { Value.fid; env; cid = Value.fresh_id () });
      frame.pc <- next)
    done;
    assert false
  with Returned v -> v

and call_value state hooks callee args =
  match callee with
  | Value.Closure c ->
    if state.depth >= state.max_depth then raise (Runtime_error "stack overflow");
    let func = state.program.Bytecode.Program.funcs.(c.Value.fid) in
    let frame = make_frame func ~args ~upvals:c.Value.env in
    state.depth <- state.depth + 1;
    Fun.protect
      ~finally:(fun () -> state.depth <- state.depth - 1)
      (fun () -> run state hooks frame)
  | Value.Native_fun name -> (
    try Builtins.call name args with Builtins.Runtime_error msg -> raise (Runtime_error msg))
  | other -> error "value of type %s is not callable" (Value.typeof other)

let default_hooks state =
  let rec hooks =
    { call = (fun callee args -> call_value state hooks callee args); loop_head = (fun _ -> None) }
  in
  hooks

let run_program program =
  let state = make_state program in
  let hooks = default_hooks state in
  let main = program.Bytecode.Program.funcs.(program.Bytecode.Program.main) in
  let frame = make_frame main ~args:[||] ~upvals:[||] in
  let v = run state hooks frame in
  (state, v)
