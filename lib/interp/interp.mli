(** The bytecode interpreter (the SpiderMonkey role in the paper's
    Figure 5).

    The interpreter is parameterized by {!hooks} so the JIT engine can
    intercept calls (to run compiled code instead) and loop headers (to
    trigger on-stack replacement). Bailouts from native code re-enter here
    through {!resume}: the engine reconstructs a frame from the guard's
    resume-point snapshot and interpretation continues at the failing
    bytecode. *)

exception Runtime_error of string

type frame = {
  func : Bytecode.Program.func;
  args : Runtime.Value.t array;
  locals : Runtime.Value.t array;
  cells : Runtime.Value.t ref array;
  upvals : Runtime.Value.t ref array;
  stack : Runtime.Value.t array;
  mutable sp : int;
  mutable pc : int;
}

type state = {
  program : Bytecode.Program.t;
  globals : Runtime.Value.t array;
  mutable icount : int;  (** bytecode instructions interpreted (cost model) *)
  mutable depth : int;  (** live MiniJS call nesting (via {!call_value}) *)
  max_depth : int;
      (** calls beyond this raise [Runtime_error "stack overflow"] — a
          MiniJS-level error, well before the OCaml stack is at risk *)
}

type hooks = {
  call : Runtime.Value.t -> Runtime.Value.t array -> Runtime.Value.t;
      (** Dispatch a call to a closure or native function. The engine may
          run compiled code; the plain evaluator recurses into {!run}. *)
  loop_head : frame -> Runtime.Value.t option;
      (** Invoked at every [Loop_head]. Returning [Some v] means the engine
          completed the rest of the frame natively (OSR) with result [v]. *)
}

val default_max_depth : int
(** The default call-depth limit (10_000). *)

val make_state : ?max_depth:int -> Bytecode.Program.t -> state
(** Fresh state with builtin globals installed. [max_depth] bounds MiniJS
    call nesting (default {!default_max_depth}). *)

val make_frame :
  Bytecode.Program.func ->
  args:Runtime.Value.t array ->
  upvals:Runtime.Value.t ref array ->
  frame
(** A frame about to execute from pc 0. Missing arguments are padded with
    [Undefined]; extra arguments are retained (JS semantics for arity
    mismatches). *)

val run : state -> hooks -> frame -> Runtime.Value.t
(** Execute the frame from its current [pc]/[sp] until it returns. *)

val set_profile_hook : (int -> int -> unit) option -> unit
(** Install (or clear) the domain-local profiler hook, fired with
    [(fid, pc)] for every interpreted instruction — exactly once per
    [icount] increment, so per-pc counts sum to [icount]. The hook is read
    once per {!run}; it never alters execution or the cost model. *)

val with_profile_hook : (int -> int -> unit) option -> (unit -> 'a) -> 'a
(** Run a thunk with the profiler hook bound, restoring the previous hook
    afterwards (exception-safe). *)

val set_deadline_hook : (int -> int -> unit) option -> unit
(** Install (or clear) the domain-local cooperative-deadline hook, fired
    with [(fid, pc)] at the same dispatch point as the profiler hook. The
    engine installs a closure that raises [Engine.Deadline_exceeded] once
    the run's model-cycle budget is spent; with [None] (production) the
    per-instruction cost is a single match. Read once per {!run}. *)

val with_deadline_hook : (int -> int -> unit) option -> (unit -> 'a) -> 'a
(** Run a thunk with the deadline hook bound, restoring the previous hook
    afterwards (exception-safe). *)

val default_hooks : state -> hooks
(** Pure-interpretation hooks: calls recurse into the interpreter, loop
    heads never OSR. *)

val run_program : Bytecode.Program.t -> state * Runtime.Value.t
(** Convenience: interpret a whole program (function [main]) with
    {!default_hooks}; returns the final state and the toplevel result. *)

val call_value :
  state -> hooks -> Runtime.Value.t -> Runtime.Value.t array -> Runtime.Value.t
(** Interpret a call to a closure or native-function value (the
    [hooks.call] implementation used by {!default_hooks}). *)
