(* The Low-level Intermediate Representation and, after register
   allocation, the "native" code this VM executes. Contrary to MIR, LIR is
   machine-shaped: linearized instructions, a finite register file plus
   spill slots, branch targets as code offsets, and resume-point snapshots
   compiled to location maps (paper §3.1's description of LIR and of the
   code generator's output).

   The same instruction type is used before allocation (operands are
   [V]-registers) and after ([R]/[S] locations); the executor only accepts
   allocated code. *)

open Runtime

type loc =
  | V of int  (* virtual register (= MIR def); present only before regalloc *)
  | R of int  (* physical register *)
  | S of int  (* spill slot *)

type src = L of loc | Imm of Value.t

type op =
  | Move
  | Param of int  (* boxed argument load *)
  | Osr_arg of int
  | Osr_local of int
  | Bin of Ops.binop * Mir.num_mode
  | Cmp_op of Ops.cmp
  | Un of Ops.unop
  | To_bool_op
  | Guard_type of Value.tag
  | Guard_array
  | Guard_bounds  (* args: index, array *)
  | Load_elem_op
  | Store_elem_op
  | Elem_gen_op
  | Store_elem_gen_op
  | Load_prop_op of string
  | Store_prop_op of string
  | Arr_len
  | Str_len
  | Call_dyn  (* args: callee :: actuals *)
  | Call_known_op of int
  | Call_native_op of string
  | Method_call_op of string
  | New_array_op
  | Construct_op of string
  | New_object_op of string array
  | Make_closure_op of int * Bytecode.Instr.capture array
  | Get_global_op of int
  | Set_global_op of int
  | Get_cell_op of int
  | Set_cell_op of int
  | Get_upval_op of int
  | Set_upval_op of int
  | Load_captured_op of Value.t ref
  | Store_captured_op of Value.t ref

type instr = { dst : loc option; op : op; args : src array; snap : int option }

type ninstr =
  | Op of instr
  | Jump of int
  | Branch of src * int * int
  | Ret of src

type snapshot = {
  sn_pc : int;
  sn_args : src array;
  sn_locals : src array;
  sn_stack : src array;
}

type t = {
  fid : int;
  instrs : ninstr array;
  origins : Mir.origin array;
      (* provenance, index-aligned with [instrs]: which bytecode construct
         (and which pass) each native instruction derives from. Regalloc
         rewrites instructions 1:1, so the alignment survives allocation. *)
  snapshots : snapshot array;
  nslots : int;
  osr_offset : int option;
  specialized : bool;
  widened : bool;  (* tag-keyed (widened polyvariant) version *)
  mutable version : int;
      (* per-function version-cache id, assigned by the engine at install
         time under the polyvariant policy (0 = unversioned): the profiler
         attributes native cycles per version through it *)
}

let size code = Array.length code.instrs

let loc_to_string = function
  | V n -> Printf.sprintf "v%d" n
  | R n -> Printf.sprintf "r%d" n
  | S n -> Printf.sprintf "[s%d]" n

let src_to_string = function
  | L l -> loc_to_string l
  | Imm v -> Format.asprintf "$%a" Value.pp v

let op_to_string = function
  | Move -> "mov"
  | Param i -> Printf.sprintf "param %d" i
  | Osr_arg i -> Printf.sprintf "osrarg %d" i
  | Osr_local i -> Printf.sprintf "osrlocal %d" i
  | Bin (op, mode) ->
    Printf.sprintf "%s.%s" (Ops.binop_to_string op) (Mir.mode_to_string mode)
  | Cmp_op op -> Ops.cmp_to_string op
  | Un op -> Ops.unop_to_string op
  | To_bool_op -> "tobool"
  | Guard_type tag -> Printf.sprintf "guardtype %s" (Value.tag_to_string tag)
  | Guard_array -> "guardarray"
  | Guard_bounds -> "guardbounds"
  | Load_elem_op -> "ldelem"
  | Store_elem_op -> "stelem"
  | Elem_gen_op -> "ldelem.gen"
  | Store_elem_gen_op -> "stelem.gen"
  | Load_prop_op p -> Printf.sprintf "ldprop %s" p
  | Store_prop_op p -> Printf.sprintf "stprop %s" p
  | Arr_len -> "arrlen"
  | Str_len -> "strlen"
  | Call_dyn -> "call"
  | Call_known_op fid -> Printf.sprintf "call f%d" fid
  | Call_native_op n -> Printf.sprintf "callnative %s" n
  | Method_call_op m -> Printf.sprintf "methodcall %s" m
  | New_array_op -> "newarray"
  | Construct_op c -> Printf.sprintf "construct %s" c
  | New_object_op _ -> "newobject"
  | Make_closure_op (fid, _) -> Printf.sprintf "makeclosure f%d" fid
  | Get_global_op i -> Printf.sprintf "getglobal %d" i
  | Set_global_op i -> Printf.sprintf "setglobal %d" i
  | Get_cell_op i -> Printf.sprintf "getcell %d" i
  | Set_cell_op i -> Printf.sprintf "setcell %d" i
  | Get_upval_op i -> Printf.sprintf "getupval %d" i
  | Set_upval_op i -> Printf.sprintf "setupval %d" i
  | Load_captured_op _ -> "ldcaptured"
  | Store_captured_op _ -> "stcaptured"

let ninstr_to_string = function
  | Op { dst; op; args; snap } ->
    Printf.sprintf "%s%s %s%s"
      (match dst with Some d -> loc_to_string d ^ " = " | None -> "")
      (op_to_string op)
      (String.concat ", " (Array.to_list (Array.map src_to_string args)))
      (match snap with Some s -> Printf.sprintf "  ; snap%d" s | None -> "")
  | Jump t -> Printf.sprintf "jmp %d" t
  | Branch (c, a, b) -> Printf.sprintf "brt %s, %d, %d" (src_to_string c) a b
  | Ret s -> Printf.sprintf "ret %s" (src_to_string s)

let to_string code =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "native code f%d (%d instrs, %d slots%s)\n" code.fid
    (size code) code.nslots
    (match code.osr_offset with Some o -> Printf.sprintf ", osr@%d" o | None -> "");
  Array.iteri
    (fun i n -> Printf.bprintf buf "%4d: %s\n" i (ninstr_to_string n))
    code.instrs;
  Buffer.contents buf
