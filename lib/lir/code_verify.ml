module Int_set = Set.Make (Int)

(* Raises [Diag.Failed]; the rendered instruction text is folded into the
   message so a report is self-contained, while fid/offset stay machine-
   readable in the diagnostic's structured fields. *)
let fail code offset fmt =
  Printf.ksprintf
    (fun msg ->
      Diag.error ~layer:"lir" ~fid:code.Code.fid ~pc:offset "(%s): %s"
        (match offset with
        | o when o >= 0 && o < Array.length code.Code.instrs ->
          Code.ninstr_to_string code.Code.instrs.(o)
        | _ -> "<out of range>")
        msg)
    fmt

(* Locations as small ints: registers first, then spill slots. *)
let loc_id code offset (l : Code.loc) =
  match l with
  | Code.V v -> fail code offset "virtual register v%d survived allocation" v
  | Code.R r ->
    if r < 0 || r >= Regalloc.num_registers then
      fail code offset "register r%d out of range" r;
    r
  | Code.S s ->
    if s < 0 || s >= code.Code.nslots then
      fail code offset "spill slot s%d out of range (nslots=%d)" s code.Code.nslots;
    Regalloc.num_registers + s

let src_id code offset = function
  | Code.L l -> Some (loc_id code offset l)
  | Code.Imm _ -> None

(* Locations an instruction reads: operands, branch condition, return
   value, and — through its snapshot — everything a bailout would read. *)
let reads code offset (n : Code.ninstr) =
  let add acc s = match src_id code offset s with Some id -> id :: acc | None -> acc in
  match n with
  | Code.Op { args; snap; _ } ->
    let base = Array.fold_left add [] args in
    (match snap with
    | None -> base
    | Some id ->
      if id < 0 || id >= Array.length code.Code.snapshots then
        fail code offset "snapshot %d out of range" id;
      let s = code.Code.snapshots.(id) in
      Array.fold_left add
        (Array.fold_left add (Array.fold_left add base s.Code.sn_args) s.Code.sn_locals)
        s.Code.sn_stack)
  | Code.Branch (c, _, _) -> add [] c
  | Code.Ret s -> add [] s
  | Code.Jump _ -> []

let writes code offset (n : Code.ninstr) =
  match n with
  | Code.Op { dst = Some l; _ } -> Some (loc_id code offset l)
  | Code.Op _ | Code.Jump _ | Code.Branch _ | Code.Ret _ -> None

let check_target code offset t =
  if t < 0 || t >= Array.length code.Code.instrs then
    fail code offset "jump target %d out of range" t

let run (code : Code.t) =
  let n = Array.length code.Code.instrs in
  if n = 0 then Diag.error ~layer:"lir" ~fid:code.Code.fid "empty code";
  (* Pass 1: purely structural checks (also materializes loc ids, which
     reports any surviving virtual register). *)
  Array.iteri
    (fun i instr ->
      ignore (reads code i instr);
      ignore (writes code i instr);
      match instr with
      | Code.Jump t -> check_target code i t
      | Code.Branch (_, a, b) ->
        check_target code i a;
        check_target code i b
      | Code.Op _ | Code.Ret _ -> ())
    code.Code.instrs;
  (match code.Code.osr_offset with
  | Some o when o < 0 || o >= n ->
    Diag.error ~layer:"lir" ~fid:code.Code.fid "osr offset %d out of range" o
  | _ -> ());
  (* Pass 2: definite initialization. [state.(i)] is the set of locations
     certainly written on every path reaching instruction [i]; entry
     points start empty (the executor zero-fills frames, but reading an
     unwritten location still means the allocator lost a value). *)
  let state : Int_set.t option array = Array.make n None in
  let worklist = Queue.create () in
  let join i s =
    match state.(i) with
    | None ->
      state.(i) <- Some s;
      Queue.add i worklist
    | Some old ->
      let merged = Int_set.inter old s in
      if not (Int_set.equal merged old) then begin
        state.(i) <- Some merged;
        Queue.add i worklist
      end
  in
  join 0 Int_set.empty;
  Option.iter (fun o -> join o Int_set.empty) code.Code.osr_offset;
  while not (Queue.is_empty worklist) do
    let i = Queue.pop worklist in
    let s = Option.get state.(i) in
    let after =
      match writes code i code.Code.instrs.(i) with
      | Some id -> Int_set.add id s
      | None -> s
    in
    let succs =
      match code.Code.instrs.(i) with
      | Code.Jump t -> [ t ]
      | Code.Branch (_, a, b) -> [ a; b ]
      | Code.Ret _ -> []
      | Code.Op _ -> if i + 1 < n then [ i + 1 ] else []
    in
    List.iter (fun t -> join t after) succs
  done;
  Array.iteri
    (fun i instr ->
      match state.(i) with
      | None -> () (* unreachable code: harmless, never executed *)
      | Some s ->
        List.iter
          (fun id ->
            if not (Int_set.mem id s) then
              fail code i "reads %s before any write on some path"
                (if id < Regalloc.num_registers then Printf.sprintf "r%d" id
                 else Printf.sprintf "[s%d]" (id - Regalloc.num_registers)))
          (reads code i instr))
    code.Code.instrs
