(** Structural verifier for allocated native code.

    Run after register allocation, this checks the invariants the executor
    silently relies on:

    - no virtual registers survive allocation (instructions, branch
      conditions, return values, snapshot location maps);
    - register and spill-slot indices are within the register file /
      frame;
    - jump and branch targets (and the OSR entry offset) are in bounds;
    - {b definite initialization}: on every path from an entry point
      (function entry at offset 0, OSR entry at [osr_offset]), each
      register or slot is written before it is read — including reads
      performed through snapshots when a guard bails. This is the check
      that catches phi-elimination edge-move bugs and snapshot maps that
      mention locations not yet materialized at the guard.

    The engine runs it after every compilation (an internal assert;
    model cycles are unaffected). *)

val run : Code.t -> unit
(** @raise Diag.Failed describing the first violation found (layer
    ["lir"], with the code offset in the diagnostic's [pc] field). *)
