open Runtime

(* Items carry symbolic targets (chunk keys) until the final layout. *)
type item =
  | I_op of Code.instr
  | I_jump of int
  | I_branch of Code.src * int * int
  | I_ret of Code.src

let resolve_src (f : Mir.func) d : Code.src =
  match (Hashtbl.find f.Mir.defs d).Mir.kind with
  | Mir.Constant v -> Code.Imm v
  | _ -> Code.L (Code.V d)

(* Sequentialize a parallel copy (all destinations distinct). Cycles are
   broken through a fresh virtual register. Each move carries the origin of
   the phi it implements, so edge-copy cycles are charged to their phi. *)
let sequentialize_moves (f : Mir.func) moves =
  let emitted = ref [] in
  let emit dst src org =
    emitted :=
      (I_op { Code.dst = Some dst; op = Code.Move; args = [| src |]; snap = None }, org)
      :: !emitted
  in
  let pending = ref moves in
  let reads_of src = match src with Code.L (Code.V d) -> Some d | _ -> None in
  while !pending <> [] do
    let read_by_pending d =
      List.exists (fun (_, s, _) -> reads_of s = Some d) !pending
    in
    match List.partition (fun (dst, _, _) -> not (read_by_pending dst)) !pending with
    | ready, rest when ready <> [] ->
      List.iter (fun (dst, src, org) -> emit (Code.V dst) src org) ready;
      pending := rest
    | _, (dst, src, org) :: rest ->
      (* Cycle: save the about-to-be-clobbered destination in a temp. *)
      let tmp = Mir.fresh_def f in
      emit (Code.V tmp) (Code.L (Code.V dst)) org;
      let retarget (d, s, o) =
        if reads_of s = Some dst then (d, Code.L (Code.V tmp), o) else (d, s, o)
      in
      pending := (dst, src, org) :: List.map retarget rest
    | _, [] -> assert false
  done;
  List.rev !emitted

let lower_kind (f : Mir.func) (instr : Mir.instr) ~snap : item option =
  let src = resolve_src f in
  let srcs ds = Array.map src ds in
  let dst = Some (Code.V instr.Mir.def) in
  let mk ?(dst = dst) op args = Some (I_op { Code.dst; op; args; snap }) in
  let mk_plain ?dst op args = mk ?dst op args in
  match instr.Mir.kind with
  | Mir.Constant _ -> None  (* inlined into operands *)
  | Mir.Phi _ -> None  (* eliminated into edge moves *)
  | Mir.Parameter i -> mk (Code.Param i) [||]
  | Mir.Osr_value (Mir.Osr_arg i) -> mk (Code.Osr_arg i) [||]
  | Mir.Osr_value (Mir.Osr_local i) -> mk (Code.Osr_local i) [||]
  | Mir.Box a -> mk Code.Move [| src a |]
  | Mir.Type_barrier (a, tag) -> mk (Code.Guard_type tag) [| src a |]
  | Mir.Check_array a -> mk Code.Guard_array [| src a |]
  | Mir.Bounds_check (i, a) -> mk_plain ~dst:None Code.Guard_bounds [| src i; src a |]
  | Mir.Binop (op, a, b, mode) -> mk (Code.Bin (op, mode)) [| src a; src b |]
  | Mir.Cmp (op, a, b) -> mk (Code.Cmp_op op) [| src a; src b |]
  | Mir.Unop (op, a) -> mk (Code.Un op) [| src a |]
  | Mir.To_bool a -> mk Code.To_bool_op [| src a |]
  | Mir.Load_elem (a, i) -> mk Code.Load_elem_op [| src a; src i |]
  | Mir.Store_elem (a, i, v) -> mk_plain ~dst:None Code.Store_elem_op [| src a; src i; src v |]
  | Mir.Elem_generic (a, i) -> mk Code.Elem_gen_op [| src a; src i |]
  | Mir.Store_elem_generic (a, i, v) ->
    mk_plain ~dst:None Code.Store_elem_gen_op [| src a; src i; src v |]
  | Mir.Load_prop (a, p) -> mk (Code.Load_prop_op p) [| src a |]
  | Mir.Store_prop (a, p, v) -> mk_plain ~dst:None (Code.Store_prop_op p) [| src a; src v |]
  | Mir.Array_length a -> mk Code.Arr_len [| src a |]
  | Mir.String_length a -> mk Code.Str_len [| src a |]
  | Mir.Call (c, args) -> mk Code.Call_dyn (Array.append [| src c |] (srcs args))
  | Mir.Call_known (fid, c, args) ->
    mk (Code.Call_known_op fid) (Array.append [| src c |] (srcs args))
  | Mir.Call_native (n, args) -> mk (Code.Call_native_op n) (srcs args)
  | Mir.Method_call (r, m, args) ->
    mk (Code.Method_call_op m) (Array.append [| src r |] (srcs args))
  | Mir.New_array args -> mk Code.New_array_op (srcs args)
  | Mir.Construct (c, args) -> mk (Code.Construct_op c) (srcs args)
  | Mir.New_object (keys, args) -> mk (Code.New_object_op keys) (srcs args)
  | Mir.Make_closure (fid, caps) -> mk (Code.Make_closure_op (fid, caps)) [||]
  | Mir.Get_global i -> mk (Code.Get_global_op i) [||]
  | Mir.Set_global (i, v) -> mk_plain ~dst:None (Code.Set_global_op i) [| src v |]
  | Mir.Get_cell i -> mk (Code.Get_cell_op i) [||]
  | Mir.Set_cell (i, v) -> mk_plain ~dst:None (Code.Set_cell_op i) [| src v |]
  | Mir.Get_upval i -> mk (Code.Get_upval_op i) [||]
  | Mir.Set_upval (i, v) -> mk_plain ~dst:None (Code.Set_upval_op i) [| src v |]
  | Mir.Load_captured r -> mk (Code.Load_captured_op r) [||]
  | Mir.Store_captured (r, v) -> mk_plain ~dst:None (Code.Store_captured_op r) [| src v |]

let run (f : Mir.func) =
  let rpo = Mir.reverse_postorder f in
  (* Snapshot table, shared across guards with identical resume points. *)
  let snapshots = ref [] in
  let snapshot_count = ref 0 in
  let snap_cache = Hashtbl.create 32 in
  let snapshot_of rp =
    let key =
      ( rp.Mir.rp_pc,
        Array.to_list rp.Mir.rp_args,
        Array.to_list rp.Mir.rp_locals,
        rp.Mir.rp_stack )
    in
    match Hashtbl.find_opt snap_cache key with
    | Some id -> id
    | None ->
      let id = !snapshot_count in
      incr snapshot_count;
      let srcs ds = Array.map (resolve_src f) ds in
      snapshots :=
        {
          Code.sn_pc = rp.Mir.rp_pc;
          sn_args = srcs rp.Mir.rp_args;
          sn_locals = srcs rp.Mir.rp_locals;
          sn_stack = srcs (Array.of_list rp.Mir.rp_stack);
        }
        :: !snapshots;
      Hashtbl.replace snap_cache key id;
      id
  in
  (* Control-flow items (jumps, branches, rets) and blocks with no lowered
     body are charged to the block's last instruction, or to a synthetic
     "lower" origin at the function head when the block is empty. *)
  let fallback_org =
    { Mir.o_fid = f.Mir.source.Bytecode.Program.fid; o_pc = 0; o_def = -1; o_pass = "lower" }
  in
  let block_org (b : Mir.block) =
    match List.rev b.Mir.body with
    | (i : Mir.instr) :: _ -> i.Mir.org
    | [] -> (
      match List.rev b.Mir.phis with
      | (i : Mir.instr) :: _ -> i.Mir.org
      | [] -> fallback_org)
  in
  (* Edge moves: for each edge (pred -> succ) collect the phi copies. *)
  let edge_moves pred succ =
    let sb = Mir.block f succ in
    let pred_index =
      let rec find i = function
        | [] -> -1
        | p :: rest -> if p = pred then i else find (i + 1) rest
      in
      find 0 sb.Mir.preds
    in
    if pred_index < 0 then []
    else
      List.filter_map
        (fun (phi : Mir.instr) ->
          match phi.Mir.kind with
          | Mir.Phi ops ->
            let s = resolve_src f ops.(pred_index) in
            (* Skip self-moves. *)
            if s = Code.L (Code.V phi.Mir.def) then None
            else Some (phi.Mir.def, s, phi.Mir.org)
          | _ -> None)
        sb.Mir.phis
  in
  (* Chunks keyed by block id; stubs get fresh negative keys and are laid
     out right after the block that branches into them — placing them at
     the end of the code would stretch the live intervals of loop-carried
     values across the whole function. *)
  let stub_key = ref (-1) in
  let chunks = ref [] in
  let pending_stubs = ref [] in
  let add_chunk key items =
    chunks := (key, items) :: List.rev_append !pending_stubs !chunks;
    pending_stubs := []
  in
  let add_stub key items = pending_stubs := (key, items) :: !pending_stubs in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      let borg = block_org b in
      let body =
        List.filter_map
          (fun (i : Mir.instr) ->
            let snap = Option.map snapshot_of i.Mir.rp in
            Option.map (fun item -> (item, i.Mir.org)) (lower_kind f i ~snap))
          b.Mir.body
      in
      let items =
        match b.Mir.term with
        | Mir.Goto t ->
          let moves = sequentialize_moves f (edge_moves bid t) in
          body @ moves @ [ (I_jump t, borg) ]
        | Mir.Branch (c, t1, t2) ->
          let cs = resolve_src f c in
          let m1 = edge_moves bid t1 and m2 = edge_moves bid t2 in
          let target edge_m t =
            if edge_m = [] then t
            else begin
              let key = !stub_key in
              decr stub_key;
              add_stub key (sequentialize_moves f edge_m @ [ (I_jump t, borg) ]);
              key
            end
          in
          let t1' = target m1 t1 and t2' = target m2 t2 in
          body @ [ (I_branch (cs, t1', t2'), borg) ]
        | Mir.Return d -> body @ [ (I_ret (resolve_src f d), borg) ]
        | Mir.Unreachable -> body
      in
      add_chunk bid items)
    rpo;
  (* Layout: main chunks in RPO order, stubs after. Elide jumps to the
     chunk that immediately follows. *)
  let all = List.rev !chunks in
  (* Stubs now sit right before the block that created them in [all]
     (reversed accumulation); swap each stub run after its creator so they
     follow the branch they serve. *)
  let rec reorder = function
    | [] -> []
    | (k, items) :: rest when k >= 0 ->
      let stubs, rest' =
        let rec take acc = function
          | (k', items') :: tl when k' < 0 -> take ((k', items') :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        take [] rest
      in
      ((k, items) :: stubs) @ reorder rest'
    | (k, items) :: rest -> (k, items) :: reorder rest
  in
  let all = reorder all in
  (* The function entry must sit at offset 0 (the OSR block may precede it
     in reverse postorder). *)
  let entry_chunk, others = List.partition (fun (k, _) -> k = f.Mir.entry) all in
  let ordered = entry_chunk @ others in
  let ordered =
    let rec elide = function
      | (k1, items1) :: ((k2, _) :: _ as rest) ->
        let items1 =
          match List.rev items1 with
          | (I_jump t, _) :: body_rev when t = k2 -> List.rev body_rev
          | _ -> items1
        in
        (k1, items1) :: elide rest
      | tail -> tail
    in
    elide ordered
  in
  let offsets = Hashtbl.create 16 in
  let total = ref 0 in
  List.iter
    (fun (key, items) ->
      Hashtbl.replace offsets key !total;
      total := !total + List.length items)
    ordered;
  let target key = Hashtbl.find offsets key in
  let instrs = Array.make !total (Code.Ret (Code.Imm Value.Undefined)) in
  let origins = Array.make !total fallback_org in
  let pos = ref 0 in
  List.iter
    (fun (_, items) ->
      List.iter
        (fun (item, org) ->
          instrs.(!pos) <-
            (match item with
            | I_op i -> Code.Op i
            | I_jump t -> Code.Jump (target t)
            | I_branch (c, a, b) -> Code.Branch (c, target a, target b)
            | I_ret s -> Code.Ret s);
          origins.(!pos) <- org;
          incr pos)
        items)
    ordered;
  {
    Code.fid = f.Mir.source.Bytecode.Program.fid;
    instrs;
    origins;
    snapshots = Array.of_list (List.rev !snapshots);
    nslots = 0;
    osr_offset = Option.map target f.Mir.osr_entry;
    specialized = f.Mir.specialized_args <> None;
    widened = f.Mir.specialized_tags <> None;
    version = 0;
  }
