(* The live-metrics registry: exact histograms, rolling rates, gauges and
   counters keyed by label sets, with Prometheus / JSON / dashboard
   renderings. Everything is on the model-cycle clock and every operation
   is deterministic in the observation sequence, so per-isolate registries
   merged in isolate order reproduce a serial run byte-for-byte. *)

type labels = (string * string) list

let canon_labels labels = List.sort (fun (a, _) (b, _) -> compare a b) labels

(* ------------------------------------------------------------------ *)
(* Exact mergeable histograms                                          *)
(* ------------------------------------------------------------------ *)

module Hist = struct
  (* A sparse value -> count table. Latency-like streams in this system
     have far fewer distinct values than observations (the model clock
     quantizes everything), so exactness is affordable — and it is what
     makes merge associative and quantiles identical to the service's
     old nearest-rank arrays. The log-bucket view is derived on demand
     and never feeds back. *)
  type t = {
    cells : (int, int ref) Hashtbl.t;
    mutable count : int;
    mutable sum : int;
  }

  let create () = { cells = Hashtbl.create 16; count = 0; sum = 0 }

  let observe ?(n = 1) h v =
    if n < 0 then invalid_arg "Metrics.Hist.observe: negative count";
    if n > 0 then begin
      (match Hashtbl.find_opt h.cells v with
      | Some r -> r := !r + n
      | None -> Hashtbl.add h.cells v (ref n));
      h.count <- h.count + n;
      h.sum <- h.sum + (v * n)
    end

  let count h = h.count
  let sum h = h.sum

  let values h =
    Hashtbl.fold (fun v r acc -> (v, !r) :: acc) h.cells []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let min_value h =
    if h.count = 0 then invalid_arg "Metrics.Hist.min_value: empty histogram";
    Hashtbl.fold (fun v _ acc -> min v acc) h.cells max_int

  let max_value h =
    if h.count = 0 then invalid_arg "Metrics.Hist.max_value: empty histogram";
    Hashtbl.fold (fun v _ acc -> max v acc) h.cells min_int

  (* Nearest-rank: the value at (1-based) rank ceil(p * n), clamped —
     exactly [Serve]'s old [percentile] over the sorted latency array. *)
  let quantile h p =
    if h.count = 0 then 0
    else begin
      let rank = int_of_float (ceil (p *. float_of_int h.count)) in
      let rank = min h.count (max 1 rank) in
      let rec walk acc = function
        | [] -> assert false
        | (v, c) :: rest -> if acc + c >= rank then v else walk (acc + c) rest
      in
      walk 0 (values h)
    end

  let merge_into ~into src =
    List.iter (fun (v, c) -> observe ~n:c into v) (values src)

  let merge a b =
    let h = create () in
    merge_into ~into:h a;
    merge_into ~into:h b;
    h

  (* The HDR-style export projection: cumulative counts at log2 upper
     bounds. Bound 0 catches non-positive values; each further bound
     doubles until it covers the maximum; +Inf closes the series. *)
  let buckets h =
    if h.count = 0 then [ (None, 0) ]
    else begin
      let cells = values h in
      let vmax = max_value h in
      let bounds = ref [ 0 ] in
      let b = ref 1 in
      while !b < vmax && !b > 0 do
        bounds := !b :: !bounds;
        b := !b * 2
      done;
      if vmax > 0 then bounds := max vmax !b :: !bounds;
      let bounds = List.rev !bounds in
      let cum le = List.fold_left (fun acc (v, c) -> if v <= le then acc + c else acc) 0 cells in
      List.map (fun le -> (Some le, cum le)) bounds @ [ (None, h.count) ]
    end
end

(* ------------------------------------------------------------------ *)
(* Rolling-window rates                                                *)
(* ------------------------------------------------------------------ *)

module Rate = struct
  type t = {
    window : int;
    mutable events : (int * int) list;  (* (cycle, n), newest first *)
    mutable last : int;  (* cycle of the newest tick *)
  }

  let create ~window =
    if window <= 0 then invalid_arg "Metrics.Rate.create: window must be positive";
    { window; events = []; last = 0 }

  let window r = r.window

  let evict r =
    let floor = r.last - r.window in
    r.events <- List.filter (fun (c, _) -> c > floor) r.events

  let tick ?(n = 1) r ~now =
    r.last <- max r.last now;
    r.events <- (now, n) :: r.events;
    evict r

  let current r =
    evict r;
    List.fold_left (fun acc (_, n) -> acc + n) 0 r.events

  let per_mcycle r = float_of_int (current r) *. 1e6 /. float_of_int r.window
end

(* ------------------------------------------------------------------ *)
(* The registry                                                        *)
(* ------------------------------------------------------------------ *)

type value = Counter of int ref | Gauge of int ref | H of Hist.t | R of Rate.t

type t = { tbl : (string * labels, value) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let cell t name labels mk =
  let key = (name, canon_labels labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some v -> v
  | None ->
    let v = mk () in
    Hashtbl.add t.tbl key v;
    v

let kind_mismatch name = invalid_arg ("Metrics: kind mismatch for " ^ name)

let inc ?(n = 1) t name labels =
  match cell t name labels (fun () -> Counter (ref 0)) with
  | Counter r -> r := !r + n
  | _ -> kind_mismatch name

let set_gauge t name labels v =
  match cell t name labels (fun () -> Gauge (ref 0)) with
  | Gauge r -> r := v
  | _ -> kind_mismatch name

let max_gauge t name labels v =
  match cell t name labels (fun () -> Gauge (ref 0)) with
  | Gauge r -> r := max !r v
  | _ -> kind_mismatch name

let observe ?n t name labels v =
  match cell t name labels (fun () -> H (Hist.create ())) with
  | H h -> Hist.observe ?n h v
  | _ -> kind_mismatch name

let tick_rate ?n t name labels ~window ~now =
  match cell t name labels (fun () -> R (Rate.create ~window)) with
  | R r -> Rate.tick ?n r ~now
  | _ -> kind_mismatch name

let get_counter t name labels =
  match Hashtbl.find_opt t.tbl (name, canon_labels labels) with
  | Some (Counter r) -> !r
  | Some _ -> kind_mismatch name
  | None -> 0

let get_gauge t name labels =
  match Hashtbl.find_opt t.tbl (name, canon_labels labels) with
  | Some (Gauge r) -> !r
  | Some _ -> kind_mismatch name
  | None -> 0

let find_hist t name labels =
  match Hashtbl.find_opt t.tbl (name, canon_labels labels) with
  | Some (H h) -> Some h
  | Some _ -> kind_mismatch name
  | None -> None

(* Name-sorted contents — the one iteration order every rendering and the
   cross-isolate merge share, so nothing depends on hash-table order. *)
let rows t =
  Hashtbl.fold (fun (name, labels) v acc -> ((name, labels), v) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_into ~into src =
  List.iter
    (fun ((name, labels), v) ->
      match v with
      | Counter r -> inc ~n:!r into name labels
      | Gauge r -> max_gauge into name labels !r
      | H h -> (
        match cell into name labels (fun () -> H (Hist.create ())) with
        | H dst -> Hist.merge_into ~into:dst h
        | _ -> kind_mismatch name)
      | R r -> (
        match cell into name labels (fun () -> R (Rate.create ~window:(Rate.window r))) with
        | R dst ->
          List.iter
            (fun (c, n) -> Rate.tick ~n dst ~now:c)
            (List.sort compare (List.rev r.Rate.events))
        | _ -> kind_mismatch name))
    (rows src)

(* ------------------------------------------------------------------ *)
(* Renderings                                                          *)
(* ------------------------------------------------------------------ *)

let sanitize name =
  String.map (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_') name

let prom_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match labels with
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (Telemetry.json_escape v))
           kvs)
    ^ "}"

let kind_of = function
  | Counter _ -> "counter"
  | Gauge _ | R _ -> "gauge"
  | H _ -> "histogram"

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun ((name, labels), v) ->
      let pname = sanitize name in
      if not (Hashtbl.mem typed pname) then begin
        Hashtbl.add typed pname ();
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" pname (kind_of v))
      end;
      match v with
      | Counter r -> Buffer.add_string buf (Printf.sprintf "%s%s %d\n" pname (prom_labels labels) !r)
      | Gauge r -> Buffer.add_string buf (Printf.sprintf "%s%s %d\n" pname (prom_labels labels) !r)
      | R r ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" pname (prom_labels labels) (Rate.current r))
      | H h ->
        List.iter
          (fun (le, cum) ->
            let le = match le with Some v -> string_of_int v | None -> "+Inf" in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" pname (prom_labels ~extra:("le", le) labels) cum))
          (Hist.buckets h);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %d\n" pname (prom_labels labels) (Hist.sum h));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" pname (prom_labels labels) (Hist.count h)))
    (rows t);
  Buffer.contents buf

let jstr s = "\"" ^ Telemetry.json_escape s ^ "\""

let json_labels labels =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ jstr v) labels) ^ "}"

let snapshot_json ~cycle t =
  let metric ((name, labels), v) =
    let head = [ (jstr "name", jstr name); (jstr "labels", json_labels labels) ] in
    let body =
      match v with
      | Counter r -> [ (jstr "type", jstr "counter"); (jstr "value", string_of_int !r) ]
      | Gauge r -> [ (jstr "type", jstr "gauge"); (jstr "value", string_of_int !r) ]
      | R r ->
        [
          (jstr "type", jstr "rate");
          (jstr "window", string_of_int (Rate.window r));
          (jstr "value", string_of_int (Rate.current r));
        ]
      | H h ->
        let q p = string_of_int (Hist.quantile h p) in
        [
          (jstr "type", jstr "histogram");
          (jstr "count", string_of_int (Hist.count h));
          (jstr "sum", string_of_int (Hist.sum h));
          (jstr "min", string_of_int (if Hist.count h = 0 then 0 else Hist.min_value h));
          (jstr "max", string_of_int (if Hist.count h = 0 then 0 else Hist.max_value h));
          (jstr "p50", q 0.50);
          (jstr "p95", q 0.95);
          (jstr "p99", q 0.99);
          ( jstr "buckets",
            "["
            ^ String.concat ","
                (List.map
                   (fun (le, cum) ->
                     Printf.sprintf "[%s,%d]"
                       (match le with Some v -> string_of_int v | None -> "null")
                       cum)
                   (Hist.buckets h))
            ^ "]" );
        ]
    in
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ ":" ^ v) (head @ body))
    ^ "}"
  in
  Printf.sprintf "{%s:%s,%s:%d,%s:[%s]}" (jstr "schema") (jstr "vs-metrics/1") (jstr "cycle")
    cycle (jstr "metrics")
    (String.concat "," (List.map metric (rows t)))

let render_top ?(title = "vs-top") t =
  let buf = Buffer.create 512 in
  let label_str labels =
    match labels with
    | [] -> ""
    | kvs -> "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "}"
  in
  let entries =
    List.map
      (fun ((name, labels), v) ->
        let cell =
          match v with
          | Counter r -> string_of_int !r
          | Gauge r -> string_of_int !r
          | R r -> Printf.sprintf "%d in window (%.2f/Mcycle)" (Rate.current r) (Rate.per_mcycle r)
          | H h ->
            Printf.sprintf "n=%d p50=%d p95=%d p99=%d max=%d" (Hist.count h)
              (Hist.quantile h 0.50) (Hist.quantile h 0.95) (Hist.quantile h 0.99)
              (if Hist.count h = 0 then 0 else Hist.max_value h)
        in
        (name ^ label_str labels, cell))
      (rows t)
  in
  let width = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 entries in
  Buffer.add_string buf (title ^ "\n");
  List.iter
    (fun (k, cell) -> Buffer.add_string buf (Printf.sprintf "  %-*s  %s\n" width k cell))
    entries;
  Buffer.contents buf
