(** The live-metrics registry.

    Observability counterpart of the engine report: named metrics keyed by
    free-form label sets (per-tenant, per-isolate, per-policy), living
    entirely on the deterministic model-cycle clock. Three value shapes:

    - {b counters} and {b gauges} — plain integers;
    - {b rolling-window rates} — events per window of model cycles, for
      the dashboard's "recent" columns;
    - {b histograms} — {e exact} sparse value→count tables with
      nearest-rank quantiles and an associative, lossless merge, plus a
      log-bucketed (HDR-style) projection for the Prometheus exporter.

    Exactness is the point: the service's p50/p95/p99 were nearest-rank
    over the full latency array, and refactoring them onto this module
    must be bit-for-bit invisible (the histogram-exactness tests pin it).
    The log buckets exist only at the export boundary; the underlying
    store never loses a value, so merging per-isolate registries after a
    parallel run is byte-identical to observing everything serially. *)

type labels = (string * string) list
(** Label set; canonicalized (key-sorted) on first use. *)

(** Exact mergeable histograms. *)
module Hist : sig
  type t

  val create : unit -> t
  val observe : ?n:int -> t -> int -> unit
  val count : t -> int
  val sum : t -> int

  val min_value : t -> int
  (** @raise Invalid_argument on an empty histogram. *)

  val max_value : t -> int
  (** @raise Invalid_argument on an empty histogram. *)

  val quantile : t -> float -> int
  (** Nearest-rank quantile over the recorded multiset — identical to
      [sorted.(clamp (ceil (p * n) - 1))] over the sorted observations;
      0 when empty (the service summary's convention). *)

  val merge : t -> t -> t
  (** Lossless union of two histograms (a fresh one; the arguments are
      untouched). Associative and commutative — the property the
      cross-isolate registry merge relies on. *)

  val merge_into : into:t -> t -> unit

  val buckets : t -> (int option * int) list
  (** The HDR-style export projection: cumulative counts at log2 upper
      bounds ([Some le]; 0, then each power of two up to the max value),
      ending with [(None, count)] — the +Inf bucket. Empty histograms
      yield just the +Inf bucket. *)

  val values : t -> (int * int) list
  (** The exact (value, count) cells, value-sorted (test hook). *)
end

(** Rolling-window event rates. *)
module Rate : sig
  type t

  val create : window:int -> t
  (** @raise Invalid_argument when [window] is not positive. *)

  val tick : ?n:int -> t -> now:int -> unit
  (** Record [n] events at model cycle [now]. Ticks must not go back in
      time (the model clock never does). *)

  val window : t -> int

  val current : t -> int
  (** Events inside [(last_tick - window, last_tick]]. *)

  val per_mcycle : t -> float
  (** [current] scaled to events per million cycles. *)
end

type t
(** A registry: a mutable map from (name, labels) to one metric. *)

val create : unit -> t

val inc : ?n:int -> t -> string -> labels -> unit
(** Bump a counter (registered on first use). *)

val set_gauge : t -> string -> labels -> int -> unit

val max_gauge : t -> string -> labels -> int -> unit
(** Gauge tracking a high-water mark: keeps the maximum of its values. *)

val observe : ?n:int -> t -> string -> labels -> int -> unit
(** Record into a histogram (registered on first use). *)

val tick_rate : ?n:int -> t -> string -> labels -> window:int -> now:int -> unit
(** Record into a rolling-window rate (window fixed at registration). *)

val get_counter : t -> string -> labels -> int
val get_gauge : t -> string -> labels -> int

val find_hist : t -> string -> labels -> Hist.t option
(** The live histogram cell (shared, not copied) — quantile reads. *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into]: counters add, gauges keep the maximum,
    histograms merge losslessly, rates concatenate their event logs.
    Deterministic in the contents alone (iteration is name-sorted), so
    merging per-isolate registries in isolate order is byte-stable. *)

val to_prometheus : t -> string
(** Prometheus text exposition: one [# TYPE] comment per metric name,
    samples sorted by (name, labels). Histograms render cumulative
    [_bucket{le=...}] series from {!Hist.buckets} plus [_sum]/[_count];
    rates render as gauges of their current window count. Metric and
    label names are sanitized ([. -] to [_]). *)

val snapshot_json : cycle:int -> t -> string
(** One-line JSON snapshot ([vs-metrics/1]): the cycle stamp plus every
    metric with its type, labels and value (histograms include count,
    sum, min/max, p50/p95/p99 and the log-bucket projection). Sorted like
    {!to_prometheus}, so snapshots diff cleanly. *)

val render_top : ?title:string -> t -> string
(** The [vs-top]-style text dashboard: one aligned row per metric —
    counters and gauges print their value, rates their window count and
    per-Mcycle rate, histograms count/p50/p95/p99/max. *)
