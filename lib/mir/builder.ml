open Runtime

type osr_request = {
  osr_pc : int;
  osr_args : Value.t array;
  osr_locals : Value.t array;
  osr_specialize : bool;
  osr_bake_locals : bool;
}

(* Abstract frame state: which SSA def currently holds each argument, local
   and operand-stack slot. Cells and globals are memory, not SSA state. *)
type bstate = { s_args : Mir.def array; s_locals : Mir.def array; s_stack : Mir.def list }

let clone_state st =
  { s_args = Array.copy st.s_args; s_locals = Array.copy st.s_locals; s_stack = st.s_stack }

(* ------------------------------------------------------------------ *)
(* Leaders                                                             *)
(* ------------------------------------------------------------------ *)

let leaders_of (func : Bytecode.Program.func) =
  let code = func.code in
  let n = Array.length code in
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun pc instr ->
      let mark t = if t < n then leader.(t) <- true in
      match instr with
      | Bytecode.Instr.Jump t ->
        mark t;
        mark (pc + 1)
      | Bytecode.Instr.Jump_if_false t | Bytecode.Instr.Jump_if_true t ->
        mark t;
        mark (pc + 1)
      | Bytecode.Instr.Return | Bytecode.Instr.Return_undefined -> mark (pc + 1)
      | Bytecode.Instr.Loop_head _ -> leader.(pc) <- true
      | _ -> ())
    code;
  let result = ref [] in
  for pc = n - 1 downto 0 do
    if leader.(pc) then result := pc :: !result
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

type ctx = {
  f : Mir.func;
  func : Bytecode.Program.func;
  spec_args : Value.t array option;
  arg_tags : Value.tag option array;
  emit_guards : bool;
  known_globals : int option array;
      (* global slot -> fid when the slot provably holds one fixed function
         (see [Program.known_global_funcs]); [||] disables resolution *)
  block_of_pc : (int, int) Hashtbl.t;  (* leader pc -> Mir block id *)
  span_end : (int, int) Hashtbl.t;  (* leader pc -> one past last pc *)
  (* Incoming edges per leader pc, in arrival order: (pred block id, state). *)
  edges : (int, (int * bstate) list ref) Hashtbl.t;
  (* Loop-header phi patching: leader pc -> (slot phis to patch later). *)
  pending : (int, pending_header) Hashtbl.t;
  mutable processed : (int, bool) Hashtbl.t;
}

and pending_header = {
  ph_block : int;
  ph_args : Mir.instr array;
  ph_locals : Mir.instr array;
  (* Number of edge states already folded into the phi operand arrays. *)
  mutable ph_filled : int;
}

let record_edge ctx target_pc pred_bid state =
  let cell =
    match Hashtbl.find_opt ctx.edges target_pc with
    | Some c -> c
    | None ->
      let c = ref [] in
      Hashtbl.replace ctx.edges target_pc c;
      c
  in
  cell := !cell @ [ (pred_bid, state) ]

let target_block ctx pc = Hashtbl.find ctx.block_of_pc pc

let is_loop_header ctx pc =
  match ctx.func.Bytecode.Program.code.(pc) with
  | Bytecode.Instr.Loop_head _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Instruction translation                                             *)
(* ------------------------------------------------------------------ *)

let resume_at pc (st : bstate) =
  {
    Mir.rp_pc = pc;
    rp_args = Array.copy st.s_args;
    rp_locals = Array.copy st.s_locals;
    rp_stack = List.rev st.s_stack;  (* we keep the stack top-first *)
  }

let push st d = { st with s_stack = d :: st.s_stack }

let pop st =
  match st.s_stack with
  | d :: rest -> (d, { st with s_stack = rest })
  | [] -> invalid_arg "Builder: stack underflow"

let pop_n st n =
  let rec go acc st n = if n = 0 then (acc, st) else
      let d, st = pop st in
      go (d :: acc) st (n - 1)
  in
  go [] st n

let const_of ctx d =
  match (Hashtbl.find ctx.f.Mir.defs d).Mir.kind with
  | Mir.Constant v -> Some v
  | _ -> None

let ty_of ctx d = (Hashtbl.find ctx.f.Mir.defs d).Mir.ty

(* Pick the arithmetic lowering mode from operand types (IonMonkey-style
   type specialization; refined again by the Typer pass after phis are
   complete). *)
let binop_mode op ta tb =
  let both_int = ta = Mir.Ty_int32 && tb = Mir.Ty_int32 in
  let numeric t = Mir.is_numeric_ty t in
  match (op : Ops.binop) with
  | Ops.Bit_and | Ops.Bit_or | Ops.Bit_xor | Ops.Shl | Ops.Shr ->
    if both_int then Mir.Mode_int else Mir.Mode_generic
  | Ops.Ushr -> if both_int then Mir.Mode_int else Mir.Mode_generic
  | Ops.Div -> if numeric ta && numeric tb then Mir.Mode_double else Mir.Mode_generic
  | Ops.Add | Ops.Sub | Ops.Mul | Ops.Mod ->
    if both_int then Mir.Mode_int
    else if numeric ta && numeric tb then Mir.Mode_double
    else Mir.Mode_generic

let translate_instr ctx blk pc (st : bstate) (instr : Bytecode.Instr.t) =
  let f = ctx.f in
  let b = Mir.block f blk in
  let rp () = resume_at pc st in
  let emit ?rp kind = Mir.append f b ?rp kind in
  match instr with
  | Bytecode.Instr.Const v -> push st (emit (Mir.Constant v))
  | Bytecode.Instr.Get_arg i -> push st st.s_args.(i)
  | Bytecode.Instr.Set_arg i ->
    let d, st = pop st in
    st.s_args.(i) <- d;
    st
  | Bytecode.Instr.Get_local i -> push st st.s_locals.(i)
  | Bytecode.Instr.Set_local i ->
    let d, st = pop st in
    st.s_locals.(i) <- d;
    st
  | Bytecode.Instr.Get_cell i -> push st (emit (Mir.Get_cell i))
  | Bytecode.Instr.Set_cell i ->
    let d, st = pop st in
    ignore (emit (Mir.Set_cell (i, d)));
    st
  | Bytecode.Instr.Get_upval i -> push st (emit (Mir.Get_upval i))
  | Bytecode.Instr.Set_upval i ->
    let d, st = pop st in
    ignore (emit (Mir.Set_upval (i, d)));
    st
  | Bytecode.Instr.Get_global i -> push st (emit (Mir.Get_global i))
  | Bytecode.Instr.Set_global i ->
    let d, st = pop st in
    ignore (emit (Mir.Set_global (i, d)));
    st
  | Bytecode.Instr.Pop ->
    let _, st = pop st in
    st
  | Bytecode.Instr.Dup -> (
    match st.s_stack with
    | top :: _ -> push st top
    | [] -> invalid_arg "Builder: dup on empty stack")
  | Bytecode.Instr.Binop op ->
    let rpv = rp () in
    let bd, st = pop st in
    let ad, st = pop st in
    let mode = binop_mode op (ty_of ctx ad) (ty_of ctx bd) in
    push st (emit ~rp:rpv (Mir.Binop (op, ad, bd, mode)))
  | Bytecode.Instr.Cmp op ->
    let bd, st = pop st in
    let ad, st = pop st in
    push st (emit (Mir.Cmp (op, ad, bd)))
  | Bytecode.Instr.Unop op ->
    let rpv = rp () in
    let ad, st = pop st in
    push st (emit ~rp:rpv (Mir.Unop (op, ad)))
  | Bytecode.Instr.Call n ->
    let rpv = rp () in
    let args, st = pop_n st n in
    let callee, st = pop st in
    let args = Array.of_list args in
    let kind =
      match const_of ctx callee with
      | Some (Value.Closure c) -> Mir.Call_known (c.Value.fid, callee, args)
      | Some (Value.Native_fun name) -> Mir.Call_native (name, args)
      | _ -> (
        (* A load from a write-once function global is a monomorphic call
           site: keep the load (the callee value is what gets invoked) but
           mark the instruction with the callee's identity. *)
        match (Hashtbl.find ctx.f.Mir.defs callee).Mir.kind with
        | Mir.Get_global i
          when i < Array.length ctx.known_globals && ctx.known_globals.(i) <> None ->
          Mir.Call_known (Option.get ctx.known_globals.(i), callee, args)
        | _ -> Mir.Call (callee, args))
    in
    push st (emit ~rp:rpv kind)
  | Bytecode.Instr.Method_call (name, n) ->
    let rpv = rp () in
    let args, st = pop_n st n in
    let recv, st = pop st in
    push st (emit ~rp:rpv (Mir.Method_call (recv, name, Array.of_list args)))
  | Bytecode.Instr.New_array n ->
    let elems, st = pop_n st n in
    push st (emit (Mir.New_array (Array.of_list elems)))
  | Bytecode.Instr.New (ctor, n) ->
    let args, st = pop_n st n in
    push st (emit (Mir.Construct (ctor, Array.of_list args)))
  | Bytecode.Instr.New_object fields ->
    let values, st = pop_n st (Array.length fields) in
    push st (emit (Mir.New_object (fields, Array.of_list values)))
  | Bytecode.Instr.Get_elem ->
    let rpv = rp () in
    let idx, st = pop st in
    let arr, st = pop st in
    if ctx.emit_guards && ty_of ctx arr = Mir.Ty_array then begin
      (* Fast path guarded exactly as the paper's Figure 6: a (foldable)
         array check plus a bounds check, then an unchecked load. *)
      let checked = emit ~rp:rpv (Mir.Check_array arr) in
      let _bc = emit ~rp:rpv (Mir.Bounds_check (idx, checked)) in
      push st (emit ~rp:rpv (Mir.Load_elem (checked, idx)))
    end
    else push st (emit ~rp:rpv (Mir.Elem_generic (arr, idx)))
  | Bytecode.Instr.Set_elem ->
    let rpv = rp () in
    let v, st = pop st in
    let idx, st = pop st in
    let arr, st = pop st in
    if ctx.emit_guards && ty_of ctx arr = Mir.Ty_array then begin
      let checked = emit ~rp:rpv (Mir.Check_array arr) in
      let _bc = emit ~rp:rpv (Mir.Bounds_check (idx, checked)) in
      ignore (emit ~rp:rpv (Mir.Store_elem (checked, idx, v)))
    end
    else ignore (emit ~rp:rpv (Mir.Store_elem_generic (arr, idx, v)));
    push st v
  | Bytecode.Instr.Keys ->
    let v, st = pop st in
    push st (emit (Mir.Call_native ("__keys", [| v |])))
  | Bytecode.Instr.Get_prop name -> (
    let rpv = rp () in
    let recv, st = pop st in
    match (ty_of ctx recv, name) with
    | Mir.Ty_array, "length" -> push st (emit (Mir.Array_length recv))
    | Mir.Ty_string, "length" -> push st (emit (Mir.String_length recv))
    | _ -> push st (emit ~rp:rpv (Mir.Load_prop (recv, name))))
  | Bytecode.Instr.Set_prop name ->
    let rpv = rp () in
    let v, st = pop st in
    let recv, st = pop st in
    ignore (emit ~rp:rpv (Mir.Store_prop (recv, name, v)));
    push st v
  | Bytecode.Instr.Make_closure (fid, caps) -> push st (emit (Mir.Make_closure (fid, caps)))
  | Bytecode.Instr.Jump _ | Bytecode.Instr.Jump_if_false _ | Bytecode.Instr.Jump_if_true _
  | Bytecode.Instr.Return | Bytecode.Instr.Return_undefined | Bytecode.Instr.Loop_head _ ->
    (* handled by the block driver *)
    st

(* ------------------------------------------------------------------ *)
(* Block driver                                                        *)
(* ------------------------------------------------------------------ *)

let branch_condition ctx blk d =
  if ty_of ctx d = Mir.Ty_bool then d
  else Mir.append ctx.f (Mir.block ctx.f blk) (Mir.To_bool d)

(* Process the bytecode span of one block starting from [state]. *)
let process_span ctx blk leader (state : bstate) =
  let code = ctx.func.Bytecode.Program.code in
  let stop = Hashtbl.find ctx.span_end leader in
  let b = Mir.block ctx.f blk in
  let rec go pc st =
    ctx.f.Mir.cur_pc <- pc;
    if pc >= stop then begin
      (* fallthrough into the next block *)
      let target = target_block ctx pc in
      b.Mir.term <- Mir.Goto target;
      record_edge ctx pc blk st
    end
    else
      match code.(pc) with
      | Bytecode.Instr.Jump t ->
        b.Mir.term <- Mir.Goto (target_block ctx t);
        record_edge ctx t blk st
      | Bytecode.Instr.Jump_if_false t ->
        let d, st = pop st in
        let c = branch_condition ctx blk d in
        b.Mir.term <- Mir.Branch (c, target_block ctx (pc + 1), target_block ctx t);
        record_edge ctx (pc + 1) blk st;
        record_edge ctx t blk st
      | Bytecode.Instr.Jump_if_true t ->
        let d, st = pop st in
        let c = branch_condition ctx blk d in
        b.Mir.term <- Mir.Branch (c, target_block ctx t, target_block ctx (pc + 1));
        record_edge ctx t blk st;
        record_edge ctx (pc + 1) blk st
      | Bytecode.Instr.Return ->
        let d, _st = pop st in
        b.Mir.term <- Mir.Return d
      | Bytecode.Instr.Return_undefined ->
        let d = Mir.append ctx.f b (Mir.Constant Value.Undefined) in
        b.Mir.term <- Mir.Return d
      | instr ->
        let st = translate_instr ctx blk pc st instr in
        go (pc + 1) st
  in
  go leader state

(* Merge incoming edge states for an ordinary (non-loop-header) block. *)
let merge_states ctx blk (edges : (int * bstate) list) =
  let b = Mir.block ctx.f blk in
  b.Mir.preds <- List.map fst edges;
  match edges with
  | [] -> invalid_arg "Builder: merge with no edges"
  | [ (_, st) ] -> clone_state st
  | (_, first) :: _ ->
    let states = List.map snd edges in
    let merge_slot extract i =
      let vals = List.map (fun s -> extract s i) states in
      match vals with
      | [] -> assert false
      | v :: rest ->
        if List.for_all (fun x -> x = v) rest then v
        else Mir.append_phi ctx.f b (Array.of_list vals)
    in
    let nargs = Array.length first.s_args in
    let nlocals = Array.length first.s_locals in
    let s_args = Array.init nargs (merge_slot (fun s i -> s.s_args.(i))) in
    let s_locals = Array.init nlocals (merge_slot (fun s i -> s.s_locals.(i))) in
    let depth = List.length first.s_stack in
    let stacks = List.map (fun s -> Array.of_list s.s_stack) states in
    let s_stack =
      List.init depth (fun i ->
          let vals = List.map (fun arr -> arr.(i)) stacks in
          match vals with
          | v :: rest when List.for_all (fun x -> x = v) rest -> v
          | vals -> Mir.append_phi ctx.f b (Array.of_list vals))
    in
    { s_args; s_locals; s_stack }

(* Create loop-header phis for every slot. Forward-edge operands are known;
   latch operands are patched when the latch is processed.
   Loop heads always have an empty operand stack (loops are statements).

   When several forward edges reach the header (multiple entry paths, or the
   OSR edge), they are first merged in a dedicated preheader block so that
   every loop header has exactly one non-latch predecessor. This gives LICM
   and loop inversion a place to hoist or copy code that dominates the loop
   on both the normal and the OSR path. *)
let setup_loop_header ctx blk (edges : (int * bstate) list) =
  let n_forward_edges = List.length edges in
  let edges =
    match edges with
    | [] | [ _ ] -> edges
    | _ ->
      let pre = Mir.new_block ctx.f in
      let state = merge_states ctx pre.Mir.bid edges in
      pre.Mir.term <- Mir.Goto blk;
      (* Redirect the forward predecessors into the preheader. *)
      let redirect t = if t = blk then pre.Mir.bid else t in
      List.iter
        (fun (pred_bid, _) ->
          let pb = Mir.block ctx.f pred_bid in
          pb.Mir.term <-
            (match pb.Mir.term with
            | Mir.Goto t -> Mir.Goto (redirect t)
            | Mir.Branch (c, t1, t2) -> Mir.Branch (c, redirect t1, redirect t2)
            | (Mir.Return _ | Mir.Unreachable) as t -> t))
        edges;
      [ (pre.Mir.bid, state) ]
  in
  let b = Mir.block ctx.f blk in
  b.Mir.preds <- List.map fst edges;
  let states = List.map snd edges in
  List.iter (fun s -> assert (s.s_stack = [])) states;
  let first = List.hd states in
  let mk extract i =
    let ops = Array.of_list (List.map (fun s -> extract s i) states) in
    Mir.append_phi ctx.f b ops
  in
  let nargs = Array.length first.s_args in
  let nlocals = Array.length first.s_locals in
  let arg_phis = Array.init nargs (fun i -> Hashtbl.find ctx.f.Mir.defs (mk (fun s j -> s.s_args.(j)) i)) in
  let local_phis =
    Array.init nlocals (fun i -> Hashtbl.find ctx.f.Mir.defs (mk (fun s j -> s.s_locals.(j)) i))
  in
  let pending =
    { ph_block = blk; ph_args = arg_phis; ph_locals = local_phis; ph_filled = n_forward_edges }
  in
  {
    s_args = Array.map (fun (i : Mir.instr) -> i.Mir.def) arg_phis;
    s_locals = Array.map (fun (i : Mir.instr) -> i.Mir.def) local_phis;
    s_stack = [];
  },
  pending

(* Fold latch edges discovered after the header was processed into its
   phis. *)
let patch_loop_headers ctx =
  Hashtbl.iter
    (fun leader pending ->
      let all_edges = Option.value (Hashtbl.find_opt ctx.edges leader) ~default:(ref []) in
      let extra = List.filteri (fun i _ -> i >= pending.ph_filled) !all_edges in
      if extra <> [] then begin
        let b = Mir.block ctx.f pending.ph_block in
        b.Mir.preds <- b.Mir.preds @ List.map fst extra;
        let add_ops (phis : Mir.instr array) extract =
          Array.iteri
            (fun i (phi : Mir.instr) ->
              match phi.Mir.kind with
              | Mir.Phi ops ->
                let more = List.map (fun (_, s) -> extract s i) extra in
                phi.Mir.kind <- Mir.Phi (Array.append ops (Array.of_list more))
              | _ -> assert false)
            phis
        in
        add_ops pending.ph_args (fun s i -> s.s_args.(i));
        add_ops pending.ph_locals (fun s i -> s.s_locals.(i));
        pending.ph_filled <- List.length !all_edges
      end)
    ctx.pending

(* Remove unreachable blocks from the layout. *)
let prune f =
  let reachable = Mir.reachable_blocks f in
  f.Mir.block_order <- List.filter (Hashtbl.mem reachable) f.Mir.block_order;
  Mir.recompute_preds f

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let build ~program ~(func : Bytecode.Program.func) ?spec_args ?spec_mask ?spec_tags
    ?arg_tags ?osr ?(emit_guards = true) ?(no_checked_int = false)
    ?(known_globals = [||]) () =
  ignore program;
  let f = Mir.create_func func in
  f.Mir.specialized_args <- spec_args;
  f.Mir.specialized_mask <- spec_mask;
  f.Mir.specialized_tags <- (if spec_args = None then spec_tags else None);
  (* Selective specialization: [spec_of i] is the constant to burn in for
     argument [i], or [None] when that argument stays a runtime parameter
     (either no specialization at all, or the mask excludes it). *)
  let spec_of i =
    match (spec_args, spec_mask) with
    | Some values, None -> Some values.(i)
    | Some values, Some mask when mask.(i) -> Some values.(i)
    | _ -> None
  in
  f.Mir.no_checked_int <- no_checked_int;
  let arg_tags =
    match arg_tags with Some t -> t | None -> Array.make func.arity None
  in
  (* A tag-keyed (widened polyvariant) version burns in exactly the tags of
     its key: every position gets an entry type barrier, which the abstract
     interpreter may then elide because the cache probe compares the same
     tags ([Absint.entry_state]). *)
  let arg_tags =
    match f.Mir.specialized_tags with
    | Some tags -> Array.map Option.some tags
    | None -> arg_tags
  in
  let leaders = leaders_of func in
  let ctx =
    {
      f;
      func;
      spec_args;
      arg_tags;
      emit_guards;
      known_globals;
      block_of_pc = Hashtbl.create 16;
      span_end = Hashtbl.create 16;
      edges = Hashtbl.create 16;
      pending = Hashtbl.create 4;
      processed = Hashtbl.create 16;
    }
  in
  (* Entry block is block 0 by construction. *)
  let entry = Mir.new_block f in
  assert (entry.Mir.bid = f.Mir.entry);
  (* Blocks for every leader, plus span ends. *)
  let rec spans = function
    | [] -> ()
    | [ last ] -> Hashtbl.replace ctx.span_end last (Array.length func.code)
    | a :: (b :: _ as rest) ->
      Hashtbl.replace ctx.span_end a b;
      spans rest
  in
  spans leaders;
  List.iter
    (fun pc ->
      let b = Mir.new_block f in
      Hashtbl.replace ctx.block_of_pc pc b.Mir.bid)
    leaders;
  (* Entry block: parameters (specialized to constants when requested, with
     observed-type barriers otherwise) and undefined-initialized locals. *)
  let entry_state =
    (* All parameter loads come before the first type barrier: a failing
       barrier's snapshot reads every argument, so each must have been
       materialized by the time any barrier can bail. *)
    let raw_args =
      Array.init func.arity (fun i ->
          match spec_of i with
          | Some v -> Mir.append f entry (Mir.Constant v)
          | None ->
            let d = Mir.append f entry (Mir.Parameter i) in
            (* Tag-keyed version: the cache probe compared this position's
               tag before dispatch, so the parameter's declared type may
               carry it — the typed analogue of a burned-in [Constant].
               The entry barrier's operand is then typed, which is what
               lets guard elision remove the barrier. *)
            (match f.Mir.specialized_tags with
            | Some tags when i < Array.length tags ->
              (Hashtbl.find f.Mir.defs d).Mir.ty <- Mir.ty_of_tag tags.(i)
            | _ -> ());
            d)
    in
    let s_args =
      Array.mapi
        (fun i p ->
          match (spec_of i, arg_tags.(i)) with
          | None, Some tag ->
            (* Placeholder resume point; replaced below once every
               parameter def exists. *)
            Mir.append f entry
              ~rp:{ Mir.rp_pc = 0; rp_args = [||]; rp_locals = [||]; rp_stack = [] }
              (Mir.Type_barrier (p, tag))
          | _ -> p)
        raw_args
    in
    let undef = Mir.append f entry (Mir.Constant Value.Undefined) in
    let s_locals = Array.make func.nlocals undef in
    { s_args; s_locals; s_stack = [] }
  in
  entry.Mir.term <- Mir.Goto (target_block ctx 0);
  record_edge ctx 0 entry.Mir.bid entry_state;
  (* Entry-barrier resume points: bail before anything ran, resuming at pc 0
     with the original (boxed) parameters. *)
  let param_defs =
    List.filter_map
      (fun (i : Mir.instr) ->
        match i.Mir.kind with Mir.Parameter k -> Some (k, i.Mir.def) | _ -> None)
      entry.Mir.body
  in
  let entry_rp_args =
    Array.init func.arity (fun i ->
        match List.assoc_opt i param_defs with
        | Some d -> d
        | None -> entry_state.s_args.(i))
  in
  let entry_rp =
    {
      Mir.rp_pc = 0;
      rp_args = entry_rp_args;
      rp_locals = Array.copy entry_state.s_locals;
      rp_stack = [];
    }
  in
  List.iter
    (fun (i : Mir.instr) ->
      match i.Mir.kind with
      | Mir.Type_barrier _ -> i.Mir.rp <- Some entry_rp
      | _ -> ())
    entry.Mir.body;
  (* OSR entry. *)
  (match osr with
  | None -> ()
  | Some { osr_pc; osr_args; osr_locals; osr_specialize; osr_bake_locals } ->
    f.Mir.cur_pc <- osr_pc;
    let ob = Mir.new_block f in
    f.Mir.osr_entry <- Some ob.Mir.bid;
    f.Mir.osr_loop_header <- Some (target_block ctx osr_pc);
    (* The OSR path is entered exactly once, with exactly the frame values
       captured here, so even without specialization the loads can be
       statically typed to the observed tags. *)
    let osr_slot ~spec slot v =
      if spec then Mir.append f ob (Mir.Constant v)
      else begin
        let d = Mir.append f ob (Mir.Osr_value slot) in
        (Hashtbl.find f.Mir.defs d).Mir.ty <- Mir.ty_of_value v;
        d
      end
    in
    (* Arguments obey the selective mask. Locals are baked only when the
       requester says the snapshot is exact at entry time (synchronous
       OSR, entered immediately): a deferred entry arrives after the
       loop has advanced, so its locals stay live loads. *)
    let s_args =
      Array.init func.arity (fun i ->
          osr_slot
            ~spec:(osr_specialize && spec_of i <> None)
            (Mir.Osr_arg i) osr_args.(i))
    in
    let s_locals =
      Array.init func.nlocals (fun i ->
          osr_slot ~spec:(osr_specialize && osr_bake_locals) (Mir.Osr_local i) osr_locals.(i))
    in
    ob.Mir.term <- Mir.Goto (target_block ctx osr_pc);
    record_edge ctx osr_pc ob.Mir.bid { s_args; s_locals; s_stack = [] });
  (* Process bytecode blocks in pc order. *)
  List.iter
    (fun leader ->
      let blk = target_block ctx leader in
      f.Mir.cur_pc <- leader;
      match Hashtbl.find_opt ctx.edges leader with
      | None | Some { contents = [] } -> ()  (* unreachable code *)
      | Some { contents = edges } ->
        Hashtbl.replace ctx.processed leader true;
        let state =
          if is_loop_header ctx leader then begin
            let st, pending = setup_loop_header ctx blk edges in
            Hashtbl.replace ctx.pending leader pending;
            st
          end
          else merge_states ctx blk edges
        in
        process_span ctx blk leader state)
    leaders;
  patch_loop_headers ctx;
  prune f;
  f
