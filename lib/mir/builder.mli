(** Translation of stack bytecode into MIR SSA graphs.

    This is where parameter-based value specialization happens (paper §3.2):
    when [spec_args] is supplied, every [Parameter] (and, on the OSR path,
    every live argument and local) is created directly as a [Constant]
    carrying the runtime value — imposing zero additional compile time, as
    the constants are made while the graph is built.

    Without [spec_args], the builder emulates IonMonkey's baseline type
    specialization: arguments whose observed runtime tag has been stable get
    a [Type_barrier] guard and are treated as that type downstream. *)

type osr_request = {
  osr_pc : int;  (** bytecode pc of the [Loop_head] being entered *)
  osr_args : Runtime.Value.t array;  (** interpreter frame at OSR time *)
  osr_locals : Runtime.Value.t array;
  osr_specialize : bool;
      (** true: bake the frame values as constants (parameter
          specialization extended to the OSR block, paper Figure 7a).
          false: emit [Osr_value] loads, statically typed to the observed
          tags — sound because an OSR path is entered exactly once, with
          exactly these values, right after compilation. *)
  osr_bake_locals : bool;
      (** Whether [osr_specialize] extends to the locals. Synchronous OSR
          enters immediately with exactly the snapshot, so baking locals
          is free constant-propagation fodder. A deferred (background)
          entry happens after the loop has kept running — a baked loop
          counter would be stale by construction — so the engine passes
          [false] and the locals become live [Osr_value] loads, typed to
          the observed tags. Args are unaffected: their burned values
          must match the specialized body on either path. *)
}

val build :
  program:Bytecode.Program.t ->
  func:Bytecode.Program.func ->
  ?spec_args:Runtime.Value.t array ->
  ?spec_mask:bool array ->
  ?spec_tags:Runtime.Value.tag array ->
  ?arg_tags:Runtime.Value.tag option array ->
  ?osr:osr_request ->
  ?emit_guards:bool ->
  ?no_checked_int:bool ->
  ?known_globals:int option array ->
  unit ->
  Mir.func
(** Build the MIR graph for [func]. [arg_tags] gives, per argument, the
    stable observed tag if any (ignored for specialized arguments).
    [spec_tags] builds a widened (polyvariant) version: no values burn in,
    but every argument gets an entry type barrier for its key tag, and
    [Mir.specialized_tags] records the signature so the abstract
    interpreter may assume (and elide) exactly what the tag-keyed cache
    probe establishes. Ignored when [spec_args] is present.
    [spec_mask] enables selective specialization: arguments whose mask
    entry is [false] stay runtime [Parameter]s (with their type barrier,
    if a stable tag is known) even when [spec_args] is present — the
    engine uses this to specialize only arguments that were observed
    value-stable. Omitted mask = specialize everything.
    [known_globals] (from {!Bytecode.Program.known_global_funcs}) lets the
    builder lower a call through a write-once function global as
    [Call_known] — the callee value is still loaded and invoked, but the
    call site carries the callee's identity, which is what makes
    interprocedural argument facts observable. Default [[||]]: no
    resolution (the pre-policy lowering, byte for byte).
    [emit_guards:false] (used when building bodies for inlining) forces
    generic, guard-free element accesses, because inlined code has no
    resume points to bail through. [no_checked_int:true] records overflow
    feedback: arithmetic compiles on the double path instead of the
    overflow-guarded int32 path. *)
