(* The Middle-level Intermediate Representation: SSA three-address code over
   basic blocks, the format the paper's optimizations operate on (Section
   3.1). A function graph has up to two entry points: the function entry
   block and, when compiled during interpretation, the on-stack-replacement
   (OSR) block.

   Guard instructions (type barriers, array checks, bounds checks) carry
   resume points: snapshots mapping the live bytecode state (args, locals,
   operand stack) to SSA definitions, so that a failing guard can hand
   execution back to the interpreter at the precise bytecode pc. *)

open Runtime

type ty =
  | Ty_value  (* boxed: any runtime value *)
  | Ty_int32
  | Ty_double
  | Ty_bool
  | Ty_string
  | Ty_object
  | Ty_array
  | Ty_function
  | Ty_undefined
  | Ty_null

type def = int

(* Provenance tag threaded from bytecode through every lowering stage so the
   profiler can charge simulated cycles back to the source construct that
   caused them. [o_pass] names the stage that created the instruction:
   "build" for the builder, a pipeline pass name for pass-inserted
   instructions, "lower" for LIR-only artifacts such as phi edge copies. *)
type origin = {
  o_fid : int;  (* bytecode function id *)
  o_pc : int;  (* bytecode pc the instruction derives from *)
  o_def : int;  (* MIR def id at creation time *)
  o_pass : string;  (* stage that produced the instruction *)
}

type resume_point = {
  rp_pc : int;  (* bytecode pc to resume at (instruction to re-execute) *)
  rp_args : def array;
  rp_locals : def array;
  rp_stack : def list;  (* bottom first *)
}

(* Arithmetic lowering mode chosen by the builder from operand types. *)
type num_mode =
  | Mode_int
      (* int32 fast path with an overflow/inexactness guard: bails to the
         interpreter when the JS result is not an int32 (overflow, NaN from
         x%0, ...). Pure bitwise operators never need the guard. *)
  | Mode_int_nocheck
      (* int32 fast path with the guard elided because a range analysis
         proved the result exact (the overflow-check elimination of
         Sol et al. that the paper lists as future work). *)
  | Mode_double
  | Mode_generic  (* boxed, full JS semantics *)

type instr_kind =
  | Parameter of int
  | Osr_value of osr_slot  (* live interpreter-frame value entering via OSR *)
  | Constant of Value.t
  | Phi of def array  (* operands align with the block's preds list *)
  | Box of def  (* no-op at runtime in this VM; models (re)boxing cost *)
  | Type_barrier of def * Value.tag  (* guard *)
  | Check_array of def  (* guard: receiver is an array *)
  | Bounds_check of def * def  (* guard: index, array; 0 <= i < length *)
  | Binop of Ops.binop * def * def * num_mode
  | Cmp of Ops.cmp * def * def
  | Unop of Ops.unop * def
  | Load_elem of def * def  (* array, index; bounds already checked *)
  | Store_elem of def * def * def  (* array, index, value; checked *)
  | Elem_generic of def * def  (* fully generic a[i] read *)
  | Store_elem_generic of def * def * def
  | Load_prop of def * string
  | Store_prop of def * string * def
  | Array_length of def
  | String_length of def
  | Call of def * def array  (* dynamic callee *)
  | Call_known of int * def * def array  (* fid, callee closure def, args *)
  | Call_native of string * def array
  | Method_call of def * string * def array
  | New_array of def array
  | Construct of string * def array
  | New_object of string array * def array
  | Make_closure of int * Bytecode.Instr.capture array
  | Get_global of int
  | Set_global of int * def
  | Get_cell of int
  | Set_cell of int * def
  | Get_upval of int
  | Set_upval of int * def
  | Load_captured of Value.t ref  (* direct cell pointer baked by inlining *)
  | Store_captured of Value.t ref * def
  | To_bool of def  (* branch-condition coercion *)

and osr_slot = Osr_arg of int | Osr_local of int

type instr = {
  def : def;
  mutable kind : instr_kind;
  mutable ty : ty;
  mutable rp : resume_point option;
  mutable org : origin;
}

type terminator =
  | Goto of int
  | Branch of def * int * int  (* condition, then-block, else-block *)
  | Return of def
  | Unreachable

type block = {
  bid : int;
  mutable phis : instr list;
  mutable body : instr list;
  mutable term : terminator;
  mutable preds : int list;  (* order matters: phi operands align with it *)
}

type func = {
  source : Bytecode.Program.func;
  entry : int;
  mutable osr_entry : int option;
  mutable osr_loop_header : int option;  (* block the OSR path joins *)
  blocks : (int, block) Hashtbl.t;
  mutable block_order : int list;  (* layout order; entry first *)
  mutable next_def : int;
  mutable next_block : int;
  defs : (def, instr) Hashtbl.t;
  def_block : (def, int) Hashtbl.t;
  mutable specialized_args : Value.t array option;
  mutable specialized_mask : bool array option;
      (* selective specialization: which positions of [specialized_args] are
         burned in (None = all of them) *)
  mutable specialized_tags : Value.tag array option;
      (* widened (polyvariant) version: only the runtime type tags of the
         arguments are burned in; the cache probe compares tags, so the
         entry state may assume them (and elide the entry barriers) *)
  mutable no_checked_int : bool;
      (* overflow feedback: a previous binary of this function bailed on an
         int32 overflow guard, so arithmetic compiles on the double path *)
  mutable cur_pc : int;
      (* provenance context: bytecode pc the builder is currently
         translating; instructions created while it is set inherit it *)
  mutable cur_pass : string;
      (* provenance context: stage currently creating instructions
         ("build" during construction, the pass name during a pipeline
         pass — maintained by [Pipeline.run_pass]) *)
}

(* ------------------------------------------------------------------ *)
(* Construction helpers                                                *)
(* ------------------------------------------------------------------ *)

let create_func source =
  {
    source;
    entry = 0;
    osr_entry = None;
    osr_loop_header = None;
    blocks = Hashtbl.create 16;
    block_order = [];
    next_def = 0;
    next_block = 0;
    defs = Hashtbl.create 64;
    def_block = Hashtbl.create 64;
    specialized_args = None;
    specialized_mask = None;
    specialized_tags = None;
    no_checked_int = false;
    cur_pc = 0;
    cur_pass = "build";
  }

let block f bid = Hashtbl.find f.blocks bid

let new_block f =
  let bid = f.next_block in
  f.next_block <- f.next_block + 1;
  let b = { bid; phis = []; body = []; term = Unreachable; preds = [] } in
  Hashtbl.replace f.blocks bid b;
  f.block_order <- f.block_order @ [ bid ];
  b

let fresh_def f =
  let d = f.next_def in
  f.next_def <- f.next_def + 1;
  d

let ty_of_tag = function
  | Value.Tag_undefined -> Ty_undefined
  | Value.Tag_null -> Ty_null
  | Value.Tag_bool -> Ty_bool
  | Value.Tag_int -> Ty_int32
  | Value.Tag_double -> Ty_double
  | Value.Tag_string -> Ty_string
  | Value.Tag_object -> Ty_object
  | Value.Tag_array -> Ty_array
  | Value.Tag_function -> Ty_function

let ty_of_value v = ty_of_tag (Value.tag_of v)

let is_numeric_ty = function
  | Ty_int32 | Ty_double -> true
  | Ty_value | Ty_bool | Ty_string | Ty_object | Ty_array | Ty_function | Ty_undefined
  | Ty_null ->
    false

(* Result type of an instruction kind, given a lookup for operand types. *)
let result_ty ty_of kind =
  match kind with
  | Parameter _ | Osr_value _ -> Ty_value
  | Constant v -> ty_of_value v
  | Phi operands ->
    let tys = Array.map ty_of operands in
    if Array.length tys = 0 then Ty_value
    else begin
      let first = tys.(0) in
      if Array.for_all (fun t -> t = first) tys then first else Ty_value
    end
  | Box _ -> Ty_value
  | Type_barrier (_, tag) -> ty_of_tag tag
  | Check_array _ -> Ty_array
  | Bounds_check _ -> Ty_int32
  | Binop (op, a, b, mode) -> (
    match op with
    | Ops.Bit_and | Ops.Bit_or | Ops.Bit_xor | Ops.Shl | Ops.Shr -> Ty_int32
    | Ops.Ushr -> (
      (* >>> may exceed the int32 range; the checked int mode guards it. *)
      match mode with
      | Mode_int | Mode_int_nocheck -> Ty_int32
      | Mode_double | Mode_generic -> Ty_value)
    | Ops.Div -> (
      match mode with
      | Mode_double | Mode_int | Mode_int_nocheck -> Ty_double
      | Mode_generic -> Ty_value)
    | Ops.Add | Ops.Sub | Ops.Mul | Ops.Mod -> (
      match mode with
      | Mode_int | Mode_int_nocheck -> Ty_int32  (* guarded (or proven) *)
      | Mode_double -> Ty_double
      | Mode_generic ->
        if op = Ops.Add && (ty_of a = Ty_string || ty_of b = Ty_string) then Ty_string
        else Ty_value))
  | Cmp _ -> Ty_bool
  | Unop (op, a) -> (
    match op with
    | Ops.Not -> Ty_bool
    | Ops.Typeof -> Ty_string
    | Ops.Bit_not -> Ty_int32
    | Ops.Neg -> (
      (* -0 and int32-min escape the int range, so int negation is Value. *)
      match ty_of a with Ty_double -> Ty_double | _ -> Ty_value)
    | Ops.To_number -> (
      match ty_of a with
      | Ty_int32 | Ty_bool -> Ty_int32
      | Ty_double -> Ty_double
      | _ -> Ty_value))
  | Load_elem _ | Elem_generic _ -> Ty_value
  | Store_elem (_, _, v) | Store_elem_generic (_, _, v) -> ty_of v
  | Load_prop _ -> Ty_value
  | Store_prop (_, _, v) -> ty_of v
  | Array_length _ | String_length _ -> Ty_int32
  | Call _ | Call_known _ | Call_native _ | Method_call _ -> Ty_value
  | New_array _ -> Ty_array
  | Construct ("Array", _) -> Ty_array
  | Construct _ -> Ty_object
  | New_object _ -> Ty_object
  | Make_closure _ -> Ty_function
  | Get_global _ | Get_cell _ | Get_upval _ | Load_captured _ -> Ty_value
  | Set_global (_, v) | Set_cell (_, v) | Set_upval (_, v) | Store_captured (_, v) ->
    ty_of v
  | To_bool _ -> Ty_bool

let ty_of_def f d = (Hashtbl.find f.defs d).ty

(* Origin for an instruction created right now: the builder/pass context
   recorded on the function, stamped with the fresh def id. *)
let cur_origin f def =
  {
    o_fid = f.source.Bytecode.Program.fid;
    o_pc = f.cur_pc;
    o_def = def;
    o_pass = f.cur_pass;
  }

(* Append an instruction to a block's body, registering its def. *)
let append f b ?rp ?org kind =
  let def = fresh_def f in
  let ty = result_ty (ty_of_def f) kind in
  let org = match org with Some o -> o | None -> cur_origin f def in
  let instr = { def; kind; ty; rp; org } in
  b.body <- b.body @ [ instr ];
  Hashtbl.replace f.defs def instr;
  Hashtbl.replace f.def_block def b.bid;
  def

(* Create and register an instruction without appending it to any body;
   callers splice it into a block themselves (used by passes that insert
   guards mid-block). *)
let make_instr f bid ?rp ?org kind =
  let def = fresh_def f in
  let ty = result_ty (ty_of_def f) kind in
  let org = match org with Some o -> o | None -> cur_origin f def in
  let instr = { def; kind; ty; rp; org } in
  Hashtbl.replace f.defs def instr;
  Hashtbl.replace f.def_block def bid;
  instr

let append_phi f b ?org operands =
  let def = fresh_def f in
  let org = match org with Some o -> o | None -> cur_origin f def in
  let instr = { def; kind = Phi operands; ty = Ty_value; rp = None; org } in
  b.phis <- b.phis @ [ instr ];
  Hashtbl.replace f.defs def instr;
  Hashtbl.replace f.def_block def b.bid;
  def

let successors b =
  match b.term with
  | Goto t -> [ t ]
  | Branch (_, a, c) -> [ a; c ]
  | Return _ | Unreachable -> []

let instr_operands kind =
  match kind with
  | Parameter _ | Osr_value _ | Constant _ | Get_global _ | Get_cell _ | Get_upval _
  | Load_captured _ | Make_closure _ ->
    []
  | Phi ops -> Array.to_list ops
  | Box a | Type_barrier (a, _) | Check_array a | Unop (_, a) | Load_prop (a, _)
  | Array_length a | String_length a | Set_global (_, a) | Set_cell (_, a)
  | Set_upval (_, a) | Store_captured (_, a) | To_bool a ->
    [ a ]
  | Bounds_check (a, b) | Binop (_, a, b, _) | Cmp (_, a, b) | Load_elem (a, b)
  | Elem_generic (a, b) ->
    [ a; b ]
  | Store_elem (a, b, c) | Store_elem_generic (a, b, c) -> [ a; b; c ]
  | Store_prop (a, _, c) -> [ a; c ]
  | Call (callee, args) -> callee :: Array.to_list args
  | Call_known (_, callee, args) -> callee :: Array.to_list args
  | Call_native (_, args) -> Array.to_list args
  | Method_call (recv, _, args) -> recv :: Array.to_list args
  | New_array args | Construct (_, args) | New_object (_, args) -> Array.to_list args

(* Rewrite every operand through [subst]. *)
let map_operands subst kind =
  let s = subst in
  let sa = Array.map subst in
  match kind with
  | Parameter _ | Osr_value _ | Constant _ | Get_global _ | Get_cell _ | Get_upval _
  | Load_captured _ | Make_closure _ ->
    kind
  | Phi ops -> Phi (sa ops)
  | Box a -> Box (s a)
  | Type_barrier (a, t) -> Type_barrier (s a, t)
  | Check_array a -> Check_array (s a)
  | Bounds_check (a, b) -> Bounds_check (s a, s b)
  | Binop (op, a, b, m) -> Binop (op, s a, s b, m)
  | Cmp (op, a, b) -> Cmp (op, s a, s b)
  | Unop (op, a) -> Unop (op, s a)
  | Load_elem (a, b) -> Load_elem (s a, s b)
  | Store_elem (a, b, c) -> Store_elem (s a, s b, s c)
  | Elem_generic (a, b) -> Elem_generic (s a, s b)
  | Store_elem_generic (a, b, c) -> Store_elem_generic (s a, s b, s c)
  | Load_prop (a, p) -> Load_prop (s a, p)
  | Store_prop (a, p, c) -> Store_prop (s a, p, s c)
  | Array_length a -> Array_length (s a)
  | String_length a -> String_length (s a)
  | Call (c, args) -> Call (s c, sa args)
  | Call_known (fid, c, args) -> Call_known (fid, s c, sa args)
  | Call_native (n, args) -> Call_native (n, sa args)
  | Method_call (r, m, args) -> Method_call (s r, m, sa args)
  | New_array args -> New_array (sa args)
  | Construct (c, args) -> Construct (c, sa args)
  | New_object (ks, args) -> New_object (ks, sa args)
  | Set_global (i, a) -> Set_global (i, s a)
  | Set_cell (i, a) -> Set_cell (i, s a)
  | Set_upval (i, a) -> Set_upval (i, s a)
  | Store_captured (r, a) -> Store_captured (r, s a)
  | To_bool a -> To_bool (s a)

let map_resume_point subst rp =
  {
    rp with
    rp_args = Array.map subst rp.rp_args;
    rp_locals = Array.map subst rp.rp_locals;
    rp_stack = List.map subst rp.rp_stack;
  }

(* Effects classification: is this instruction observable (must keep even if
   unused), and can it trigger a bailout? *)
let has_side_effect = function
  | Store_elem _ | Store_elem_generic _ | Store_prop _ | Set_global _ | Set_cell _
  | Set_upval _ | Store_captured _ | Call _ | Call_known _ | Method_call _ ->
    true
  | Call_native (name, _) -> not (Builtins.is_pure name)
  | Parameter _ | Osr_value _ | Constant _ | Phi _ | Box _ | Type_barrier _
  | Check_array _ | Bounds_check _ | Binop _ | Cmp _ | Unop _ | Load_elem _
  | Elem_generic _ | Load_prop _ | Array_length _ | String_length _ | New_array _
  | Construct _ | New_object _ | Make_closure _ | Get_global _ | Get_cell _
  | Get_upval _ | Load_captured _ | To_bool _ ->
    false

let is_guard = function
  | Type_barrier _ | Check_array _ | Bounds_check _ -> true
  | _ -> false

(* Instructions safe to delete when their result is unused. Guards are NOT
   removable (they protect later code); loads are removable (our loads
   cannot fault once guarded); allocation is removable if unobserved. *)
let is_removable_if_unused kind = (not (has_side_effect kind)) && not (is_guard kind)

(* Apply a def-to-def substitution to every operand, resume point and
   terminator in the function. Used by passes after they decide on a set of
   replacements. *)
let substitute f subst =
  let apply (i : instr) =
    i.kind <- map_operands subst i.kind;
    i.rp <- Option.map (map_resume_point subst) i.rp
  in
  Hashtbl.iter
    (fun _ b ->
      List.iter apply b.phis;
      List.iter apply b.body;
      b.term <-
        (match b.term with
        | Goto t -> Goto t
        | Branch (c, a, bb) -> Branch (subst c, a, bb)
        | Return d -> Return (subst d)
        | Unreachable -> Unreachable))
    f.blocks

(* ------------------------------------------------------------------ *)
(* Guard elision                                                       *)
(* ------------------------------------------------------------------ *)

(* Record of a deleted guard, keeping the bytecode-level provenance of the
   instruction so telemetry and diagnostics can attribute the deletion to
   the original program point even after the instruction is gone. *)
type elision = {
  el_def : def;
  el_kind : string;  (* "type" | "array" | "bounds" *)
  el_ofid : int;     (* origin function (differs from host after inlining) *)
  el_pc : int;       (* origin bytecode pc *)
  el_block : int;
}

let guard_kind_name = function
  | Type_barrier _ -> "type"
  | Check_array _ -> "array"
  | Bounds_check _ -> "bounds"
  | _ -> "?"

(* Delete a batch of guards, each optionally substituting its def by a
   replacement (a guard's result is the guarded value itself, so a
   [Type_barrier]/[Check_array] def is replaced by its operand; a
   [Bounds_check] def is normally unused and needs no replacement). The
   instruction records stay in [defs] exactly like other deleting passes
   leave them; the returned elisions preserve each guard's origin. *)
let elide_guards f (victims : (def * def option) list) =
  if victims = [] then []
  else begin
    let by_def = Hashtbl.create (List.length victims) in
    List.iter (fun (d, repl) -> Hashtbl.replace by_def d repl) victims;
    let elisions = ref [] in
    List.iter
      (fun bid ->
        let b = block f bid in
        b.body <-
          List.filter
            (fun (i : instr) ->
              if Hashtbl.mem by_def i.def && is_guard i.kind then begin
                elisions :=
                  {
                    el_def = i.def;
                    el_kind = guard_kind_name i.kind;
                    el_ofid = i.org.o_fid;
                    el_pc = i.org.o_pc;
                    el_block = bid;
                  }
                  :: !elisions;
                false
              end
              else true)
            b.body)
      f.block_order;
    let subst d =
      match Hashtbl.find_opt by_def d with Some (Some r) -> r | _ -> d
    in
    (* Chase chains (a deleted guard replaced by another deleted guard). *)
    let rec resolve fuel d =
      if fuel = 0 then d
      else
        let d' = subst d in
        if d' = d then d else resolve (fuel - 1) d'
    in
    if List.exists (fun (_, r) -> r <> None) victims then
      substitute f (resolve 64);
    List.rev !elisions
  end

(* ------------------------------------------------------------------ *)
(* Ordering and traversal                                              *)
(* ------------------------------------------------------------------ *)

let entry_blocks f =
  f.entry :: (match f.osr_entry with Some b -> [ b ] | None -> [])

let reverse_postorder f =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit bid =
    if not (Hashtbl.mem visited bid) then begin
      Hashtbl.replace visited bid true;
      List.iter visit (successors (block f bid));
      order := bid :: !order
    end
  in
  List.iter visit (entry_blocks f);
  !order

let reachable_blocks f =
  let rpo = reverse_postorder f in
  let set = Hashtbl.create 16 in
  List.iter (fun bid -> Hashtbl.replace set bid true) rpo;
  set

(* Recompute preds from terminators (after CFG edits), preserving the
   relative order of surviving preds so phi operands stay aligned. *)
let recompute_preds f =
  let reachable = reachable_blocks f in
  Hashtbl.iter
    (fun bid b ->
      if Hashtbl.mem reachable bid then begin
        let still_pred p =
          Hashtbl.mem reachable p && List.mem bid (successors (block f p))
        in
        let kept = List.filter still_pred b.preds in
        (* Drop phi operands for removed preds. *)
        let keep_mask = List.map still_pred b.preds in
        List.iter
          (fun phi ->
            match phi.kind with
            | Phi ops ->
              let kept_ops =
                List.filteri (fun i _ -> List.nth keep_mask i) (Array.to_list ops)
              in
              phi.kind <- Phi (Array.of_list kept_ops)
            | _ -> ())
          b.phis;
        b.preds <- kept
      end)
    f.blocks

let iter_instrs f fn =
  List.iter
    (fun bid ->
      let b = block f bid in
      List.iter fn b.phis;
      List.iter fn b.body)
    f.block_order

let all_instr_count f =
  let n = ref 0 in
  iter_instrs f (fun _ -> incr n);
  !n

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let ty_to_string = function
  | Ty_value -> "Value"
  | Ty_int32 -> "Int32"
  | Ty_double -> "Double"
  | Ty_bool -> "Bool"
  | Ty_string -> "String"
  | Ty_object -> "Object"
  | Ty_array -> "Array"
  | Ty_function -> "Function"
  | Ty_undefined -> "Undefined"
  | Ty_null -> "Null"

let mode_to_string = function
  | Mode_int -> "i"
  | Mode_int_nocheck -> "i!"
  | Mode_double -> "d"
  | Mode_generic -> "v"

let def_name d = Printf.sprintf "v%d" d

let kind_to_string kind =
  let open Printf in
  let defs ds = String.concat ", " (List.map def_name (Array.to_list ds)) in
  match kind with
  | Parameter i -> sprintf "parameter %d" i
  | Osr_value (Osr_arg i) -> sprintf "osrvalue arg[%d]" i
  | Osr_value (Osr_local i) -> sprintf "osrvalue local[%d]" i
  | Constant v -> sprintf "constant %s" (Format.asprintf "%a" Value.pp v)
  | Phi ops -> sprintf "phi(%s)" (defs ops)
  | Box a -> sprintf "box %s" (def_name a)
  | Type_barrier (a, tag) -> sprintf "typebarrier %s %s" (def_name a) (Value.tag_to_string tag)
  | Check_array a -> sprintf "checkarray %s" (def_name a)
  | Bounds_check (i, a) -> sprintf "boundscheck %s, %s" (def_name i) (def_name a)
  | Binop (op, a, b, m) ->
    sprintf "%s.%s %s, %s" (Ops.binop_to_string op) (mode_to_string m) (def_name a) (def_name b)
  | Cmp (op, a, b) -> sprintf "%s %s, %s" (Ops.cmp_to_string op) (def_name a) (def_name b)
  | Unop (op, a) -> sprintf "%s %s" (Ops.unop_to_string op) (def_name a)
  | Load_elem (a, i) -> sprintf "ld %s, %s" (def_name a) (def_name i)
  | Store_elem (a, i, v) -> sprintf "st %s, %s, %s" (def_name a) (def_name i) (def_name v)
  | Elem_generic (a, i) -> sprintf "ldgen %s, %s" (def_name a) (def_name i)
  | Store_elem_generic (a, i, v) ->
    sprintf "stgen %s, %s, %s" (def_name a) (def_name i) (def_name v)
  | Load_prop (a, p) -> sprintf "ldprop %s.%s" (def_name a) p
  | Store_prop (a, p, v) -> sprintf "stprop %s.%s = %s" (def_name a) p (def_name v)
  | Array_length a -> sprintf "arraylength %s" (def_name a)
  | String_length a -> sprintf "stringlength %s" (def_name a)
  | Call (c, args) -> sprintf "call %s(%s)" (def_name c) (defs args)
  | Call_known (fid, c, args) -> sprintf "callknown f%d/%s(%s)" fid (def_name c) (defs args)
  | Call_native (n, args) -> sprintf "callnative %s(%s)" n (defs args)
  | Method_call (r, m, args) -> sprintf "methodcall %s.%s(%s)" (def_name r) m (defs args)
  | New_array args -> sprintf "newarray [%s]" (defs args)
  | Construct (c, args) -> sprintf "construct %s(%s)" c (defs args)
  | New_object (ks, args) ->
    sprintf "newobject {%s}"
      (String.concat ", "
         (List.mapi (fun i k -> sprintf "%s: %s" k (def_name args.(i))) (Array.to_list ks)))
  | Make_closure (fid, _) -> sprintf "makeclosure f%d" fid
  | Get_global i -> sprintf "getglobal %d" i
  | Set_global (i, v) -> sprintf "setglobal %d, %s" i (def_name v)
  | Get_cell i -> sprintf "getcell %d" i
  | Set_cell (i, v) -> sprintf "setcell %d, %s" i (def_name v)
  | Get_upval i -> sprintf "getupval %d" i
  | Set_upval (i, v) -> sprintf "setupval %d, %s" i (def_name v)
  | Load_captured _ -> "ldcaptured <cell>"
  | Store_captured (_, v) -> sprintf "stcaptured <cell>, %s" (def_name v)
  | To_bool a -> sprintf "tobool %s" (def_name a)

let instr_to_string i =
  let rp = match i.rp with None -> "" | Some rp -> Printf.sprintf "  ; rp@%d" rp.rp_pc in
  Printf.sprintf "%s = %s : %s%s" (def_name i.def) (kind_to_string i.kind)
    (ty_to_string i.ty) rp

let term_to_string = function
  | Goto t -> Printf.sprintf "goto B%d" t
  | Branch (c, a, b) -> Printf.sprintf "brt %s, B%d, B%d" (def_name c) a b
  | Return d -> Printf.sprintf "ret %s" (def_name d)
  | Unreachable -> "unreachable"

let to_string f =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "mir function %s (entry=B%d%s)\n" f.source.Bytecode.Program.name
    f.entry
    (match f.osr_entry with Some b -> Printf.sprintf ", osr=B%d" b | None -> "");
  List.iter
    (fun bid ->
      let b = block f bid in
      Printf.bprintf buf "B%d:  ; preds: %s\n" b.bid
        (String.concat "," (List.map (Printf.sprintf "B%d") b.preds));
      List.iter (fun i -> Printf.bprintf buf "  %s\n" (instr_to_string i)) b.phis;
      List.iter (fun i -> Printf.bprintf buf "  %s\n" (instr_to_string i)) b.body;
      Printf.bprintf buf "  %s\n" (term_to_string b.term))
    f.block_order;
  Buffer.contents buf
