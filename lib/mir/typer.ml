open Runtime

(* Abstract type: None is bottom (not yet computed). *)
type aty = Mir.ty option

let join (a : aty) (b : aty) : aty =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y ->
    if x = y then Some x
    else (
      match (x, y) with
      | Mir.Ty_int32, Mir.Ty_double | Mir.Ty_double, Mir.Ty_int32 -> Some Mir.Ty_double
      | _ -> Some Mir.Ty_value)

let numeric = function Some Mir.Ty_int32 | Some Mir.Ty_double -> true | _ -> false
let both_int a b = a = Some Mir.Ty_int32 && b = Some Mir.Ty_int32

(* Optimistic transfer function: what type would this instruction produce if
   we pick the best lowering its (current) operand types allow? *)
let transfer ~checked_int_ok lookup (instr : Mir.instr) : aty =
  let t d = lookup d in
  let can_guard = checked_int_ok && instr.Mir.rp <> None in
  match instr.Mir.kind with
  (* Parameter and Osr_value types were fixed by the builder: Ty_value
     normally, the key's tag type for a tag-keyed (widened) version, the
     actual frame's types for OSR. *)
  | Mir.Parameter _ -> Some instr.Mir.ty
  | Mir.Osr_value _ -> Some instr.Mir.ty
  | Mir.Constant v -> Some (Mir.ty_of_value v)
  | Mir.Phi ops -> Array.fold_left (fun acc d -> join acc (t d)) None ops
  | Mir.Box _ -> Some Mir.Ty_value
  | Mir.Type_barrier (_, tag) -> Some (Mir.ty_of_tag tag)
  | Mir.Check_array _ -> Some Mir.Ty_array
  | Mir.Bounds_check _ -> Some Mir.Ty_int32
  | Mir.Binop (op, a, b, _) -> (
    let ta = t a and tb = t b in
    match (ta, tb) with
    | None, _ | _, None -> None
    | Some _, Some _ -> (
      match op with
      | Ops.Bit_and | Ops.Bit_or | Ops.Bit_xor | Ops.Shl | Ops.Shr -> Some Mir.Ty_int32
      | Ops.Ushr ->
        if both_int ta tb && can_guard then Some Mir.Ty_int32 else Some Mir.Ty_value
      | Ops.Div -> if numeric ta && numeric tb then Some Mir.Ty_double else Some Mir.Ty_value
      | Ops.Add | Ops.Sub | Ops.Mul | Ops.Mod ->
        (* The checked int32 mode needs a resume point to bail through;
           instructions without one (inlined code) fall back to doubles,
           which is exact for int32 operands. *)
        if both_int ta tb && can_guard then Some Mir.Ty_int32
        else if numeric ta && numeric tb then Some Mir.Ty_double
        else if op = Ops.Add && (ta = Some Mir.Ty_string || tb = Some Mir.Ty_string) then
          Some Mir.Ty_string
        else Some Mir.Ty_value))
  | Mir.Cmp _ -> Some Mir.Ty_bool
  | Mir.Unop (op, a) -> (
    match op with
    | Ops.Not -> Some Mir.Ty_bool
    | Ops.Typeof -> Some Mir.Ty_string
    | Ops.Bit_not -> Some Mir.Ty_int32
    | Ops.Neg -> (
      match t a with
      | None -> None
      | Some Mir.Ty_double -> Some Mir.Ty_double
      | Some _ -> Some Mir.Ty_value)
    | Ops.To_number -> (
      match t a with
      | None -> None
      | Some Mir.Ty_int32 | Some Mir.Ty_bool -> Some Mir.Ty_int32
      | Some Mir.Ty_double -> Some Mir.Ty_double
      | Some _ -> Some Mir.Ty_value))
  | Mir.Load_elem _ | Mir.Elem_generic _ | Mir.Load_prop _ -> Some Mir.Ty_value
  | Mir.Store_elem (_, _, v) | Mir.Store_elem_generic (_, _, v) | Mir.Store_prop (_, _, v)
    ->
    t v
  | Mir.Array_length _ | Mir.String_length _ -> Some Mir.Ty_int32
  | Mir.Call _ | Mir.Call_known _ | Mir.Call_native _ | Mir.Method_call _ ->
    Some Mir.Ty_value
  | Mir.New_array _ -> Some Mir.Ty_array
  | Mir.Construct ("Array", _) -> Some Mir.Ty_array
  | Mir.Construct _ | Mir.New_object _ -> Some Mir.Ty_object
  | Mir.Make_closure _ -> Some Mir.Ty_function
  | Mir.Get_global _ | Mir.Get_cell _ | Mir.Get_upval _ | Mir.Load_captured _ ->
    Some Mir.Ty_value
  | Mir.Set_global (_, v) | Mir.Set_cell (_, v) | Mir.Set_upval (_, v)
  | Mir.Store_captured (_, v) ->
    t v
  | Mir.To_bool _ -> Some Mir.Ty_bool

(* Once types are committed, upgrade generic memory operations whose
   receiver turned out to be a known array/string (e.g. an array flowing
   through a loop phi) to the guarded fast path of the paper's Figure 6. *)
let specialize_memory_ops (f : Mir.func) =
  let ty d = Mir.ty_of_def f d in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      let expand instr =
        match instr.Mir.kind with
        | Mir.Elem_generic (a, i) when ty a = Mir.Ty_array && instr.Mir.rp <> None ->
          let chk = Mir.make_instr f bid ?rp:instr.Mir.rp (Mir.Check_array a) in
          let bc = Mir.make_instr f bid ?rp:instr.Mir.rp (Mir.Bounds_check (i, chk.Mir.def)) in
          instr.Mir.kind <- Mir.Load_elem (chk.Mir.def, i);
          instr.Mir.ty <- Mir.Ty_value;
          [ chk; bc; instr ]
        | Mir.Store_elem_generic (a, i, v) when ty a = Mir.Ty_array && instr.Mir.rp <> None ->
          let chk = Mir.make_instr f bid ?rp:instr.Mir.rp (Mir.Check_array a) in
          let bc = Mir.make_instr f bid ?rp:instr.Mir.rp (Mir.Bounds_check (i, chk.Mir.def)) in
          instr.Mir.kind <- Mir.Store_elem (chk.Mir.def, i, v);
          [ chk; bc; instr ]
        | Mir.Load_prop (a, "length") when ty a = Mir.Ty_array ->
          instr.Mir.kind <- Mir.Array_length a;
          instr.Mir.ty <- Mir.Ty_int32;
          instr.Mir.rp <- None;
          [ instr ]
        | Mir.Load_prop (a, "length") when ty a = Mir.Ty_string ->
          instr.Mir.kind <- Mir.String_length a;
          instr.Mir.ty <- Mir.Ty_int32;
          instr.Mir.rp <- None;
          [ instr ]
        | _ -> [ instr ]
      in
      b.Mir.body <- List.concat_map expand b.Mir.body)
    f.Mir.block_order

let run (f : Mir.func) =
  let checked_int_ok = not f.Mir.no_checked_int in
  let tys : (Mir.def, aty) Hashtbl.t = Hashtbl.create 64 in
  let lookup d = Option.join (Hashtbl.find_opt tys d) in
  let changed = ref true in
  while !changed do
    changed := false;
    Mir.iter_instrs f (fun instr ->
        let current = lookup instr.Mir.def in
        let fresh = join current (transfer ~checked_int_ok lookup instr) in
        if fresh <> current then begin
          Hashtbl.replace tys instr.Mir.def fresh;
          changed := true
        end)
  done;
  let final d = Option.value (lookup d) ~default:Mir.Ty_value in
  (* Rewrite arithmetic modes from the refined operand types, then commit
     the refined result types. *)
  Mir.iter_instrs f (fun instr ->
      (match instr.Mir.kind with
      | Mir.Binop (op, a, b, _old_mode) ->
        let ta = Some (final a) and tb = Some (final b) in
        let can_guard = checked_int_ok && instr.Mir.rp <> None in
        let mode =
          match op with
          | Ops.Bit_and | Ops.Bit_or | Ops.Bit_xor | Ops.Shl | Ops.Shr ->
            if both_int ta tb then Mir.Mode_int_nocheck else Mir.Mode_generic
          | Ops.Ushr ->
            if both_int ta tb && can_guard then Mir.Mode_int else Mir.Mode_generic
          | Ops.Div ->
            if numeric ta && numeric tb then Mir.Mode_double else Mir.Mode_generic
          | Ops.Add | Ops.Sub | Ops.Mul | Ops.Mod ->
            if both_int ta tb && can_guard then Mir.Mode_int
            else if numeric ta && numeric tb then Mir.Mode_double
            else Mir.Mode_generic
        in
        instr.Mir.kind <- Mir.Binop (op, a, b, mode)
      | _ -> ());
      instr.Mir.ty <- final instr.Mir.def);
  specialize_memory_ops f
