(* MIR structural and type verifier.

   [run] checks the SSA graph invariants every pass must preserve: layout
   and def-table consistency, operand/resume-point dominance, phi arity,
   guard resume points, terminator targets and edge symmetry. [check_types]
   is the lint companion: it re-derives each instruction's type from its
   operands and rejects declared types that claim MORE than the operands
   support (a pass may leave a type imprecise, never wrong).

   Both raise [Diag.Failed] at the first violation, attributing it to the
   pipeline pass named by [?pass] — the sandwich mode in [Opt.Pipeline]
   threads the pass that just ran, so a corrupted graph is blamed on the
   pass that corrupted it rather than on whichever later pass trips over
   the damage. *)

open Runtime

let run ?pass (f : Mir.func) =
  let fail ?block ?value fmt =
    Diag.error ~layer:"mir" ?pass ~func:f.Mir.source.Bytecode.Program.name
      ~fid:f.Mir.source.Bytecode.Program.fid ?block ?value fmt
  in
  let reachable = Mir.reachable_blocks f in
  (* Layout sanity: every reachable block is laid out exactly once. *)
  let layout = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      if Hashtbl.mem layout bid then fail ~block:bid "block B%d laid out twice" bid;
      Hashtbl.replace layout bid true;
      if not (Hashtbl.mem f.Mir.blocks bid) then
        fail ~block:bid "layout references missing B%d" bid)
    f.Mir.block_order;
  Hashtbl.iter
    (fun bid _ ->
      if not (Hashtbl.mem layout bid) then
        fail ~block:bid "reachable block B%d not in layout" bid)
    reachable;
  (* Def table consistency and operand dominance. A def must be PRESENT in
     some laid-out block, not merely remembered by the def table: passes
     that delete instructions leave stale table entries behind, and a
     reference to one would read garbage at runtime. *)
  let doms = Cfg.dominators f in
  let present = Hashtbl.create 64 in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      List.iter (fun (i : Mir.instr) -> Hashtbl.replace present i.Mir.def bid) b.Mir.phis;
      List.iter (fun (i : Mir.instr) -> Hashtbl.replace present i.Mir.def bid) b.Mir.body)
    f.Mir.block_order;
  let block_of_def ?block d =
    match Hashtbl.find_opt present d with
    | Some b -> b
    | None ->
      if Hashtbl.mem f.Mir.defs d then
        fail ?block ~value:d "v%d is referenced but its instruction was deleted" d
      else fail ?block ~value:d "v%d has no defining block" d
  in
  let check_defined ?block d = ignore (block_of_def ?block d) in
  (* Constants are location-independent: lowering turns every reference
     into an immediate, so ordering/dominance does not apply to them. *)
  let is_constant d =
    match Hashtbl.find_opt f.Mir.defs d with
    | Some { Mir.kind = Mir.Constant _; _ } -> true
    | _ -> false
  in
  List.iter
    (fun bid ->
      if Hashtbl.mem reachable bid then begin
        let b = Mir.block f bid in
        if List.length b.Mir.preds > 0 then
          List.iter
            (fun p ->
              if not (Hashtbl.mem reachable p) then
                fail ~block:bid "B%d has unreachable pred B%d" bid p)
            b.Mir.preds;
        (* Phis: operand count matches preds; operands defined somewhere. *)
        List.iter
          (fun (phi : Mir.instr) ->
            match phi.Mir.kind with
            | Mir.Phi ops ->
              if Array.length ops <> List.length b.Mir.preds then
                fail ~block:bid ~value:phi.Mir.def
                  "phi v%d in B%d has %d operands for %d preds" phi.Mir.def bid
                  (Array.length ops) (List.length b.Mir.preds);
              Array.iter (check_defined ~block:bid) ops
            | _ ->
              fail ~block:bid ~value:phi.Mir.def "non-phi v%d in phi section of B%d"
                phi.Mir.def bid)
          b.Mir.phis;
        (* Body: operands must dominate their uses. Instructions within a
           block must be defined earlier in that block. *)
        let seen = Hashtbl.create 16 in
        List.iter (fun (phi : Mir.instr) -> Hashtbl.replace seen phi.Mir.def true) b.Mir.phis;
        List.iter
          (fun (instr : Mir.instr) ->
            List.iter
              (fun op ->
                let ob = block_of_def ~block:bid op in
                if is_constant op then ()
                else if ob = bid then begin
                  if not (Hashtbl.mem seen op) then
                    fail ~block:bid ~value:instr.Mir.def
                      "v%d used before its definition in B%d (by v%d)" op bid
                      instr.Mir.def
                end
                else if Hashtbl.mem reachable ob && not (Cfg.dominates doms ob bid) then
                  fail ~block:bid ~value:instr.Mir.def
                    "operand v%d (B%d) does not dominate use v%d (B%d)" op ob
                    instr.Mir.def bid)
              (Mir.instr_operands instr.Mir.kind);
            (* Resume points must reference live, dominating values: a
               dangling snapshot would reconstruct a garbage frame. *)
            (match instr.Mir.rp with
            | None -> ()
            | Some rp ->
              let check_rp_ref op =
                let ob = block_of_def ~block:bid op in
                if is_constant op then ()
                else if ob = bid then begin
                  if not (Hashtbl.mem seen op) then
                    fail ~block:bid ~value:instr.Mir.def
                      "rp of v%d references v%d before its definition in B%d"
                      instr.Mir.def op bid
                end
                else if Hashtbl.mem reachable ob && not (Cfg.dominates doms ob bid) then
                  fail ~block:bid ~value:instr.Mir.def
                    "rp of v%d references v%d (B%d) which does not dominate B%d"
                    instr.Mir.def op ob bid
                else if not (Hashtbl.mem reachable ob) then
                  fail ~block:bid ~value:instr.Mir.def
                    "rp of v%d references v%d defined in unreachable B%d"
                    instr.Mir.def op ob
              in
              Array.iter check_rp_ref rp.Mir.rp_args;
              Array.iter check_rp_ref rp.Mir.rp_locals;
              List.iter check_rp_ref rp.Mir.rp_stack);
            (* Guards must be able to bail out. *)
            if Mir.is_guard instr.Mir.kind && instr.Mir.rp = None then
              fail ~block:bid ~value:instr.Mir.def "guard v%d in B%d has no resume point"
                instr.Mir.def bid;
            (match instr.Mir.kind with
            | Mir.Binop (_, _, _, Mir.Mode_int) when instr.Mir.rp = None ->
              fail ~block:bid ~value:instr.Mir.def
                "checked int binop v%d has no resume point" instr.Mir.def
            | _ -> ());
            Hashtbl.replace seen instr.Mir.def true)
          b.Mir.body;
        (* Terminator. *)
        (match b.Mir.term with
        | Mir.Goto t ->
          if not (Hashtbl.mem f.Mir.blocks t) then
            fail ~block:bid "B%d: goto missing B%d" bid t
        | Mir.Branch (c, t1, t2) ->
          check_defined ~block:bid c;
          if not (Hashtbl.mem f.Mir.blocks t1) then
            fail ~block:bid "B%d: branch missing B%d" bid t1;
          if not (Hashtbl.mem f.Mir.blocks t2) then
            fail ~block:bid "B%d: branch missing B%d" bid t2
        | Mir.Return d -> check_defined ~block:bid d
        | Mir.Unreachable -> ());
        (* Successor/pred symmetry. *)
        List.iter
          (fun s ->
            let sb = Mir.block f s in
            if not (List.mem bid sb.Mir.preds) then
              fail ~block:bid "B%d -> B%d edge missing from preds of B%d" bid s s)
          (Mir.successors b)
      end)
    f.Mir.block_order

(* ------------------------------------------------------------------ *)
(* Type-consistency lint                                               *)
(* ------------------------------------------------------------------ *)

(* [wide] may stand in for [narrow]: same type, fully boxed, or the numeric
   widening the typer's join performs (int32 -> double). *)
let ty_subsumes ~wide ~narrow =
  wide = narrow || wide = Mir.Ty_value
  || (wide = Mir.Ty_double && narrow = Mir.Ty_int32)

(* Typer-style join, for recomputing phi types (int32 u double = double,
   anything else mixed = boxed). *)
let ty_join a b =
  if a = b then a
  else
    match (a, b) with
    | Mir.Ty_int32, Mir.Ty_double | Mir.Ty_double, Mir.Ty_int32 -> Mir.Ty_double
    | _ -> Mir.Ty_value

(* Re-derive every instruction's type with an optimistic fixpoint (the
   typer's shape, but with [Mir.result_ty] as the transfer so committed
   arithmetic modes are taken at their word) and reject declared types
   that claim MORE than the re-derivation supports. A one-step local
   recomputation would be too strict: the typer's fixpoint legitimately
   assigns loop-carried phis types narrower than a single step can justify
   when a pass (e.g. loop inversion) has introduced Value-typed
   intermediates. [Parameter]/[Osr_value] are exempt: their types encode
   runtime profile knowledge (argument tags, the live OSR frame) that no
   recomputation can see. *)
let check_types ?pass (f : Mir.func) =
  let fail ?block ?value fmt =
    Diag.error ~layer:"mir" ?pass ~func:f.Mir.source.Bytecode.Program.name
      ~fid:f.Mir.source.Bytecode.Program.fid ?block ?value fmt
  in
  (* Optimistic inference: None is bottom (not yet computed). *)
  let state : (Mir.def, Mir.ty) Hashtbl.t = Hashtbl.create 64 in
  let lookup d = Hashtbl.find_opt state d in
  let transfer (i : Mir.instr) =
    match i.Mir.kind with
    | Mir.Parameter _ | Mir.Osr_value _ -> Some i.Mir.ty  (* fixed by the builder *)
    | Mir.Phi ops ->
      Array.fold_left
        (fun acc d ->
          match (acc, lookup d) with
          | None, x | x, None -> x
          | Some a, Some b -> Some (ty_join a b))
        None ops
    | kind ->
      let operands = Mir.instr_operands kind in
      if List.exists (fun d -> lookup d = None) operands then None
      else Some (Mir.result_ty (fun d -> Option.get (lookup d)) kind)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Mir.iter_instrs f (fun i ->
        let fresh =
          match (lookup i.Mir.def, transfer i) with
          | x, None | None, x -> x
          | Some a, Some b -> Some (ty_join a b)
        in
        match fresh with
        | Some t when lookup i.Mir.def <> Some t ->
          Hashtbl.replace state i.Mir.def t;
          changed := true
        | _ -> ())
  done;
  (* Operand constraints are checked against the re-inferred types: passes
     (loop inversion in particular) clone instructions with conservative
     Ty_value declarations, but the committed mode is justified by what the
     operand provably IS, which the fixpoint recovers. Bottom (unreachable)
     operands are skipped. *)
  let inferred_is op pred = match lookup op with None -> true | Some t -> pred t in
  let check_instr bid (i : Mir.instr) =
    (* Bitwise operators coerce through to_int32 regardless of mode, so
       they put no constraint on operand types. *)
    (match i.Mir.kind with
    | Mir.Binop ((Ops.Add | Ops.Sub | Ops.Mul | Ops.Mod | Ops.Ushr), a, b, Mir.Mode_int_nocheck)
      ->
      (* nocheck = a range analysis proved int32 exactness, which is only
         meaningful if both operands are provably int32. *)
      List.iter
        (fun op ->
          if not (inferred_is op (fun t -> t = Mir.Ty_int32)) then
            fail ~block:bid ~value:i.Mir.def
              "unchecked int binop v%d has non-Int32 operand v%d: %s" i.Mir.def op
              (Mir.ty_to_string (Option.get (lookup op))))
        [ a; b ]
    | Mir.Binop ((Ops.Add | Ops.Sub | Ops.Mul | Ops.Mod | Ops.Div | Ops.Ushr), a, b, Mir.Mode_double)
      ->
      List.iter
        (fun op ->
          if not (inferred_is op Mir.is_numeric_ty) then
            fail ~block:bid ~value:i.Mir.def
              "double-mode binop v%d has non-numeric operand v%d: %s" i.Mir.def op
              (Mir.ty_to_string (Option.get (lookup op))))
        [ a; b ]
    | _ -> ());
    (* Declared vs re-derived result type. Bottom (never resolved, e.g. in
       unreachable code) is skipped: there is nothing to contradict. *)
    match i.Mir.kind with
    | Mir.Parameter _ | Mir.Osr_value _ -> ()
    | _ -> (
      match lookup i.Mir.def with
      | None -> ()
      | Some inferred ->
        if not (ty_subsumes ~wide:i.Mir.ty ~narrow:inferred) then
          fail ~block:bid ~value:i.Mir.def
            "v%d (%s) declares type %s but re-inference only supports %s" i.Mir.def
            (Mir.kind_to_string i.Mir.kind)
            (Mir.ty_to_string i.Mir.ty)
            (Mir.ty_to_string inferred))
  in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      List.iter (check_instr bid) b.Mir.phis;
      List.iter (check_instr bid) b.Mir.body)
    f.Mir.block_order
