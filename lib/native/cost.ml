let slot_penalty = 2

let src_penalty = function Code.L (Code.S _) -> slot_penalty | _ -> 0

let loc_penalty = function Some (Code.S _) -> slot_penalty | _ -> 0

let op_base (op : Code.op) =
  match op with
  | Code.Move -> 1
  | Code.Param _ -> 2  (* stack argument load *)
  | Code.Osr_arg _ | Code.Osr_local _ -> 3  (* interpreter-frame load *)
  | Code.Bin (_, mode) -> (
    match mode with
    | Mir.Mode_int_nocheck -> 1
    | Mir.Mode_int -> 2  (* ALU + overflow-check jump *)
    | Mir.Mode_double -> 3
    | Mir.Mode_generic -> 6  (* unbox, dispatch, full semantics, rebox *)
  )
  | Code.Cmp_op _ -> 1
  | Code.Un op -> (
    match op with
    | Runtime.Ops.Not | Runtime.Ops.Bit_not | Runtime.Ops.Neg -> 1
    | Runtime.Ops.To_number -> 3
    | Runtime.Ops.Typeof -> 2)
  | Code.To_bool_op -> 1
  | Code.Guard_type _ -> 2
  | Code.Guard_array -> 2
  | Code.Guard_bounds -> 3  (* length load + two compares *)
  | Code.Load_elem_op -> 3
  | Code.Store_elem_op -> 3
  | Code.Elem_gen_op -> 8
  | Code.Store_elem_gen_op -> 8
  | Code.Load_prop_op _ -> 6  (* hash lookup *)
  | Code.Store_prop_op _ -> 6
  | Code.Arr_len -> 2
  | Code.Str_len -> 2
  | Code.Call_dyn -> 4  (* callee type dispatch, before call overhead *)
  | Code.Call_known_op _ -> 1
  | Code.Call_native_op _ -> 2
  | Code.Method_call_op _ -> 6
  | Code.New_array_op -> 10
  | Code.Construct_op _ -> 10
  | Code.New_object_op _ -> 12
  | Code.Make_closure_op _ -> 8
  | Code.Get_global_op _ -> 2
  | Code.Set_global_op _ -> 2
  | Code.Get_cell_op _ -> 3
  | Code.Set_cell_op _ -> 3
  | Code.Get_upval_op _ -> 3
  | Code.Set_upval_op _ -> 3
  | Code.Load_captured_op _ -> 2  (* direct pointer, no env indirection *)
  | Code.Store_captured_op _ -> 2

let instr (n : Code.ninstr) =
  match n with
  | Code.Op { dst; op; args; _ } ->
    op_base op + loc_penalty dst + Array.fold_left (fun acc s -> acc + src_penalty s) 0 args
  | Code.Jump _ -> 1
  | Code.Branch (c, _, _) -> 1 + src_penalty c
  | Code.Ret s -> 1 + src_penalty s

let call_overhead = 15
let native_call_overhead = 10
let method_call_overhead = 10
let interp_per_instr = 12
let bailout_penalty = 60
let compile_per_mir_instr = 4
let compile_per_native_instr = 30
let compile_per_interval = 12
let bytes_per_native_instr = 16

(* Background-compile completion model: the modeled latency of one queued
   compile, as a function of enqueue-time observables only — bytecode
   size, the pipeline schedule ([Pipeline.npasses]) and whether the
   request specializes — never of the artifact, which does not exist yet
   when the ready cycle is assigned. The weights reuse the real charge
   constants so modeled latencies track real compile charges to first
   order: per bytecode instruction, roughly one MIR instruction visits
   each pass (plus building and lowering) and two native instructions
   come out the back end. A specialized request halves the
   size-dependent term: burned-in values prune the MIR early and the
   specialized back end emits well under one native instruction per
   bytecode instruction (the Figure-10 code-size shrink), which measured
   charges confirm across the suites. *)
let bg_compile_base = 200

let bg_compile_cost ~size ~specialized ~passes =
  let per_instr = (compile_per_mir_instr * (passes + 2)) + (2 * compile_per_native_instr) in
  let per_instr = if specialized then per_instr / 2 else per_instr in
  bg_compile_base + (size * per_instr)
