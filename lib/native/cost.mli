(** The deterministic cycle-cost model of the native-code simulator.

    The paper's evaluation reports relative effects (speedups in percent,
    code-size deltas); a deterministic per-instruction cost model
    reproduces those relative effects while keeping every experiment
    bit-reproducible. Costs are in abstract cycles, ordered the way the
    corresponding x86 operations are: register ALU < memory access <
    guard < allocation < call. Spill-slot operands add {!slot_penalty}
    per access, which is how register pressure shows up in runtime. *)

val instr : Code.ninstr -> int
(** Base cost of one native instruction (operand penalties included). *)

val call_overhead : int
(** Extra cycles per dynamic user-function call (frame setup). *)

val native_call_overhead : int
val method_call_overhead : int

val interp_per_instr : int
(** Cycles per interpreted bytecode instruction (the interpretation tax;
    roughly one order of magnitude over native register code). *)

val bailout_penalty : int
(** Frame-reconstruction cost when a guard fails. *)

val compile_per_mir_instr : int
(** Compile-time cycles charged per MIR instruction visited by a pass. *)

val compile_per_native_instr : int
(** Compile-time cycles per emitted native instruction (lowering+assembly). *)

val compile_per_interval : int
(** Compile-time cycles per live interval processed by the allocator. *)

val bytes_per_native_instr : int
(** Code-cache bytes one emitted native instruction occupies — the unit of
    the engine's [code_cache_bytes] budget. Not a cycle cost: cache
    accounting never charges model cycles. *)

val slot_penalty : int

val bg_compile_base : int
(** Fixed modeled latency of one background compile (queue service
    overhead), before the size-dependent term. *)

val bg_compile_cost : size:int -> specialized:bool -> passes:int -> int
(** Modeled latency of one background compile: the deterministic
    completion model maps (enqueue cycle, this cost) to a ready cycle.
    [size] is the function's bytecode length, [passes] the scheduled
    pipeline pass count ({!Pipeline.npasses}), [specialized] whether the
    request burns in values/tags (halving the size term — specialized
    artifacts are pruned early and emit far fewer native instructions) —
    enqueue-time observables only, so the model never waits on (or
    varies with) the real compile running on a pool domain. *)
