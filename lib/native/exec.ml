open Runtime

type activation = {
  act_args : Value.t array;
  act_env : Value.t ref array;
  act_cells : Value.t ref array;
  act_osr_args : Value.t array;
  act_osr_locals : Value.t array;
}

type bailout = {
  bo_pc : int;
  bo_native_pc : int;
  bo_args : Value.t array;
  bo_locals : Value.t array;
  bo_stack : Value.t array;
  bo_reason : string;
}

type outcome = Finished of Value.t | Bailed of bailout

type callbacks = {
  call : Value.t -> Value.t array -> Value.t;
  globals : Value.t array;
  cycles : int ref;
}

let make_activation ?(env = [||]) ?osr ~(func : Bytecode.Program.func) ~args () =
  let padded =
    if Array.length args >= func.Bytecode.Program.arity then args
    else
      Array.init func.Bytecode.Program.arity (fun i ->
          if i < Array.length args then args.(i) else Value.Undefined)
  in
  let osr_args, osr_locals = Option.value osr ~default:([||], [||]) in
  {
    act_args = padded;
    act_env = env;
    act_cells = Array.init (max func.Bytecode.Program.ncells 1) (fun _ -> ref Value.Undefined);
    act_osr_args = osr_args;
    act_osr_locals = osr_locals;
  }

exception Bail of int * string  (* snapshot id, reason *)

(* Optional instrumentation: invoked on every executed instruction. Used by
   the benchmark harness for per-opcode profiles; None in production.
   Domain-local (a profile closure must not leak into pool workers) and
   read once per [run], not per instruction. *)
let trace_hook : (Code.ninstr -> unit) option Support.Tls.t =
  Support.Tls.make (fun () -> None)

let set_trace_hook h = Support.Tls.set trace_hook h

(* Cycle-attribution hook for the profiler: fired with the executing code,
   the native pc and the cycle delta at every site that charges [cb.cycles]
   (per-instruction cost, call overheads, the bailout penalty). The charge
   itself is untouched — with the hook unset the cycle stream is
   byte-identical to an unprofiled run. Domain-local, read once per [run]. *)
let profile_hook : (Code.t -> int -> int -> unit) option Support.Tls.t =
  Support.Tls.make (fun () -> None)

let set_profile_hook h = Support.Tls.set profile_hook h
let with_profile_hook h f = Support.Tls.with_value profile_hook h f

(* Cooperative-deadline hook: fired with (code, native pc) per executed
   instruction, right after the instruction's cycle charge so the budget
   comparison sees a current clock. Raising from here aborts the native
   run without evaluating a snapshot — a deadline expiry is not a
   deoptimization, the request is simply over. Domain-local, read once
   per [run]; None in production. *)
let deadline_hook : (Code.t -> int -> unit) option Support.Tls.t =
  Support.Tls.make (fun () -> None)

let set_deadline_hook h = Support.Tls.set deadline_hook h
let with_deadline_hook h f = Support.Tls.with_value deadline_hook h f

(* Dispatch-loop exit, same idiom as the interpreter: [Ret] raises instead
   of the loop comparing an option per executed instruction. Never escapes
   [run]. *)
exception Returned of Value.t

let run cb (code : Code.t) act ~at_osr =
  let regs = Array.make Regalloc.num_registers Value.Undefined in
  let slots = Array.make (max code.Code.nslots 1) Value.Undefined in
  let read_src = function
    | Code.Imm v -> v
    | Code.L (Code.R r) -> regs.(r)
    | Code.L (Code.S s) -> slots.(s)
    | Code.L (Code.V _) -> invalid_arg "Exec.run: unallocated code"
  in
  let write_loc l v =
    match l with
    | Code.R r -> regs.(r) <- v
    | Code.S s -> slots.(s) <- v
    | Code.V _ -> invalid_arg "Exec.run: unallocated code"
  in
  let pc =
    ref
      (if at_osr then
         match code.Code.osr_offset with
         | Some o -> o
         | None -> invalid_arg "Exec.run: code has no OSR entry"
       else 0)
  in
  let trace = Support.Tls.get trace_hook in
  let prof = Support.Tls.get profile_hook in
  let fuel = Support.Tls.get deadline_hook in
  let note pc n = match prof with Some hook -> hook code pc n | None -> () in
  try
    while true do
      let instr = Array.unsafe_get code.Code.instrs !pc in
      cb.cycles := !(cb.cycles) + Cost.instr instr;
      note !pc (Cost.instr instr);
      (match fuel with Some hook -> hook code !pc | None -> ());
      (match trace with Some hook -> hook instr | None -> ());
      (match instr with
       | Code.Jump t -> pc := t
       | Code.Branch (c, t1, t2) ->
         pc := (if Convert.to_boolean (read_src c) then t1 else t2)
       | Code.Ret s -> raise_notrace (Returned (read_src s))
       | Code.Op { dst; op; args; snap } ->
         let arg i = read_src args.(i) in
         let bail reason =
           match snap with
           | Some id -> raise (Bail (id, reason))
           | None -> invalid_arg ("Exec.run: guard without snapshot: " ^ reason)
         in
         (* Chaos layer: a passing guard may be forced down its bailout
            path (snapshot and all). Only guards with a snapshot count as
            occurrences — a snapshot-less site has no bail path to take. *)
         let inject () = snap <> None && Faults.fire Faults.Exec_guard in
         let value =
           match op with
           | Code.Move -> Some (arg 0)
           | Code.Param i -> Some act.act_args.(i)
           | Code.Osr_arg i -> Some act.act_osr_args.(i)
           | Code.Osr_local i -> Some act.act_osr_locals.(i)
           | Code.Bin (bop, mode) -> (
             let r = Ops.binop bop (arg 0) (arg 1) in
             match mode with
             | Mir.Mode_int -> (
               (* Checked int32 arithmetic: bail when the JS result leaves
                  the int32 domain (overflow, NaN from x%0, >>> overflow). *)
               match r with
               | Value.Int _ -> if inject () then bail "int32 overflow" else Some r
               | _ -> bail "int32 overflow")
             | Mir.Mode_int_nocheck | Mir.Mode_double | Mir.Mode_generic -> Some r)
           | Code.Cmp_op cop -> Some (Ops.cmp cop (arg 0) (arg 1))
           | Code.Un uop -> Some (Ops.unop uop (arg 0))
           | Code.To_bool_op -> Some (Value.Bool (Convert.to_boolean (arg 0)))
           | Code.Guard_type tag ->
             let v = arg 0 in
             if Value.tag_of v = tag then
               if inject () then bail "type barrier" else Some v
             else bail "type barrier"
           | Code.Guard_array -> (
             match arg 0 with
             | Value.Arr _ as v -> if inject () then bail "not an array" else Some v
             | _ -> bail "not an array")
           | Code.Guard_bounds -> (
             match (arg 0, arg 1) with
             | Value.Int i, Value.Arr a when i >= 0 && i < a.Value.length ->
               if inject () then bail "bounds check" else None
             | _ -> bail "bounds check")
           | Code.Load_elem_op -> (
             match (arg 0, arg 1) with
             | Value.Arr a, Value.Int i -> Some (Value.arr_get a i)
             | _ -> invalid_arg "Exec.run: ldelem on non-array (missing guard)")
           | Code.Store_elem_op ->
             (match (arg 0, arg 1) with
             | Value.Arr a, Value.Int i -> Value.arr_set a i (arg 2)
             | _ -> invalid_arg "Exec.run: stelem on non-array (missing guard)");
             None
           | Code.Elem_gen_op -> Some (Objmodel.get_elem (arg 0) (arg 1))
           | Code.Store_elem_gen_op ->
             Objmodel.set_elem (arg 0) (arg 1) (arg 2);
             None
           | Code.Load_prop_op p -> Some (Objmodel.get_prop (arg 0) p)
           | Code.Store_prop_op p ->
             Objmodel.set_prop (arg 0) p (arg 1);
             None
           | Code.Arr_len -> (
             match arg 0 with
             | Value.Arr a -> Some (Value.Int a.Value.length)
             | _ -> invalid_arg "Exec.run: arrlen on non-array")
           | Code.Str_len -> (
             match arg 0 with
             | Value.Str s -> Some (Value.Int (String.length s))
             | _ -> invalid_arg "Exec.run: strlen on non-string")
           | Code.Call_dyn | Code.Call_known_op _ ->
             cb.cycles := !(cb.cycles) + Cost.call_overhead;
             note !pc Cost.call_overhead;
             let callee = arg 0 in
             let actuals = Array.sub args 1 (Array.length args - 1) in
             Some (cb.call callee (Array.map read_src actuals))
           | Code.Call_native_op name ->
             cb.cycles := !(cb.cycles) + Cost.native_call_overhead;
             note !pc Cost.native_call_overhead;
             Some (Builtins.call name (Array.map read_src args))
           | Code.Method_call_op name ->
             cb.cycles := !(cb.cycles) + Cost.method_call_overhead;
             note !pc Cost.method_call_overhead;
             let recv = arg 0 in
             let actuals =
               Array.map read_src (Array.sub args 1 (Array.length args - 1))
             in
             Some (Objmodel.dispatch_method ~call:cb.call recv name actuals)
           | Code.New_array_op ->
             Some (Value.Arr (Value.arr_of_list (Array.to_list (Array.map read_src args))))
           | Code.Construct_op ctor ->
             Some (Objmodel.construct ctor (Array.map read_src args))
           | Code.New_object_op keys ->
             let obj = Value.new_obj () in
             Array.iteri (fun i key -> Value.obj_set obj key (arg i)) keys;
             Some (Value.Obj obj)
           | Code.Make_closure_op (fid, caps) ->
             let env =
               Array.map
                 (function
                   | Bytecode.Instr.Cap_cell i -> act.act_cells.(i)
                   | Bytecode.Instr.Cap_upval i -> act.act_env.(i))
                 caps
             in
             Some (Value.Closure { Value.fid; env; cid = Value.fresh_id () })
           | Code.Get_global_op i -> Some cb.globals.(i)
           | Code.Set_global_op i ->
             cb.globals.(i) <- arg 0;
             None
           | Code.Get_cell_op i -> Some !(act.act_cells.(i))
           | Code.Set_cell_op i ->
             act.act_cells.(i) := arg 0;
             None
           | Code.Get_upval_op i -> Some !(act.act_env.(i))
           | Code.Set_upval_op i ->
             act.act_env.(i) := arg 0;
             None
           | Code.Load_captured_op r -> Some !r
           | Code.Store_captured_op r ->
             r := arg 0;
             None
         in
         (match (dst, value) with
         | Some l, Some v -> write_loc l v
         | Some l, None -> write_loc l Value.Undefined
         | None, _ -> ());
         incr pc)
    done;
    assert false
  with
  | Returned v -> Finished v
  | Bail (id, reason) ->
    cb.cycles := !(cb.cycles) + Cost.bailout_penalty;
    (* The penalty is attributed to the guard that failed: [pc] still
       points at the raising instruction. *)
    note !pc Cost.bailout_penalty;
    let s = code.Code.snapshots.(id) in
    let values srcs = Array.map read_src srcs in
    Bailed
      {
        bo_pc = s.Code.sn_pc;
        (* [pc] still points at the failing instruction: [Bail] is raised
           during dispatch, before the end-of-instruction increment. *)
        bo_native_pc = !pc;
        bo_args = values s.Code.sn_args;
        bo_locals = values s.Code.sn_locals;
        bo_stack = values s.Code.sn_stack;
        bo_reason = reason;
      }
