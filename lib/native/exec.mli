(** The native-code executor: a register machine over {!Code.t} with the
    cycle accounting of {!Cost}.

    Executing compiled code either finishes with the function's return
    value or bails out: a failing guard evaluates its snapshot into the
    interpreter-frame state (bytecode pc, argument/local/stack values) that
    the engine uses to resume interpretation — the deoptimization mechanism
    of the paper's Section 3. *)

type activation = {
  act_args : Runtime.Value.t array;  (** boxed arguments (padded to arity) *)
  act_env : Runtime.Value.t ref array;  (** the closure's captured cells *)
  act_cells : Runtime.Value.t ref array;  (** this activation's own cells *)
  act_osr_args : Runtime.Value.t array;  (** interpreter frame at OSR entry *)
  act_osr_locals : Runtime.Value.t array;
}

type bailout = {
  bo_pc : int;  (** bytecode pc to resume at *)
  bo_native_pc : int;  (** native instruction whose guard failed *)
  bo_args : Runtime.Value.t array;
  bo_locals : Runtime.Value.t array;
  bo_stack : Runtime.Value.t array;  (** operand stack, bottom first *)
  bo_reason : string;
}

type outcome = Finished of Runtime.Value.t | Bailed of bailout

type callbacks = {
  call : Runtime.Value.t -> Runtime.Value.t array -> Runtime.Value.t;
      (** engine dispatch for calls made by compiled code *)
  globals : Runtime.Value.t array;  (** the global slot table *)
  cycles : int ref;  (** cycle accumulator, shared with the engine *)
}

val set_trace_hook : (Code.ninstr -> unit) option -> unit
(** Optional per-executed-instruction instrumentation (per-opcode profiles
    in the benchmark harness). [None] (the default) in normal operation.
    Domain-local, and sampled once at [run] entry — installing a hook
    mid-execution does not affect code already running. *)

val set_profile_hook : (Code.t -> int -> int -> unit) option -> unit
(** Install (or clear) the domain-local cycle-attribution hook, fired as
    [hook code pc cycles] at every site that charges the cycle accumulator:
    per-instruction cost, call overheads, and the bailout penalty (charged
    to the failing guard's pc). The charges themselves are unchanged, so
    with the hook unset a run is byte-identical to an unprofiled one.
    Sampled once at [run] entry. [code.origins.(pc)] recovers the
    provenance of each charge. *)

val with_profile_hook : (Code.t -> int -> int -> unit) option -> (unit -> 'a) -> 'a
(** Run a thunk with the attribution hook bound, restoring the previous
    hook afterwards (exception-safe). *)

val set_deadline_hook : (Code.t -> int -> unit) option -> unit
(** Install (or clear) the domain-local cooperative-deadline hook, fired
    as [hook code pc] per executed instruction, immediately after its
    cycle charge (so a budget comparison sees a current clock). The
    engine's hook raises [Engine.Deadline_exceeded] once the run's
    model-cycle budget is spent; the raise aborts the native run without
    evaluating a snapshot. [None] (production) costs one match per
    instruction. Sampled once at [run] entry. *)

val with_deadline_hook : (Code.t -> int -> unit) option -> (unit -> 'a) -> 'a
(** Run a thunk with the deadline hook bound, restoring the previous hook
    afterwards (exception-safe). *)

val run : callbacks -> Code.t -> activation -> at_osr:bool -> outcome
(** Execute allocated code (no virtual registers). [at_osr] starts at the
    code's OSR offset. @raise Runtime.Objmodel.Error for genuine JS type
    errors (same as the interpreter). *)

val make_activation :
  ?env:Runtime.Value.t ref array ->
  ?osr:Runtime.Value.t array * Runtime.Value.t array ->
  func:Bytecode.Program.func ->
  args:Runtime.Value.t array ->
  unit ->
  activation
(** Pad arguments to the arity, allocate fresh cells. *)
