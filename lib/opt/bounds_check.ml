open Runtime

type stats = { bounds_removed : int; overflow_checks_removed : int }

type range = { lo : int; hi : int }

let no_stats = { bounds_removed = 0; overflow_checks_removed = 0 }

(* Alias discipline: which instructions make a compile-time array length
   untrustworthy as an upper bound. Element stores only ever grow an array
   in this VM, so the compile-time length stays a valid LOWER bound on the
   runtime length and stores never block. What can shrink a length is a
   [pop]/[shift]/[splice] method call, an explicit [x.length = n] store, or
   — conservatively — any call, which might reach one of those on an alias.
   [precise_alias] is the paper's Figure 8 assumption that callees do not
   alias the specialized array. *)
let blocking ~precise_alias (kind : Mir.instr_kind) =
  match kind with
  | Mir.Store_elem _ | Mir.Store_elem_generic _ -> false
  | Mir.Store_prop (_, p, _) -> p = "length"
  | Mir.Method_call (_, m, _) -> m = "pop" || m = "shift" || m = "splice"
  | Mir.Call _ | Mir.Call_known _ -> not precise_alias
  | Mir.Call_native (name, _) -> not (Builtins.is_pure name)
  | _ -> false

(* Strip the ToNumber wrapper that i++ produces. *)
let strip_tonum (f : Mir.func) d =
  match (Hashtbl.find f.Mir.defs d).Mir.kind with
  | Mir.Unop (Ops.To_number, x) -> x
  | _ -> d

let const_int (f : Mir.func) d =
  match (Hashtbl.find f.Mir.defs d).Mir.kind with
  | Mir.Constant (Value.Int n) -> Some n
  | _ -> None

(* Recognize the paper's induction pattern for a header phi with operands
   [init; step] (preds ordered [preheader; latch]): i1 = phi(i0, i2),
   i2 = i1 + c with c a positive constant and i0 a constant. Returns
   (phi def, step def, init value, step constant). *)
let induction_candidates (f : Mir.func) (loop : Cfg.loop) pre_index =
  let header = Mir.block f loop.Cfg.header in
  List.filter_map
    (fun (phi : Mir.instr) ->
      match phi.Mir.kind with
      | Mir.Phi [| a; b |] ->
        let init, step = if pre_index = 0 then (a, b) else (b, a) in
        (match (const_int f init, (Hashtbl.find f.Mir.defs step).Mir.kind) with
        | Some n0, Mir.Binop (Ops.Add, x, y, _) ->
          let x = strip_tonum f x and y = strip_tonum f y in
          let step_const =
            if x = phi.Mir.def then const_int f y
            else if y = phi.Mir.def then const_int f x
            else None
          in
          (match step_const with
          | Some c when c > 0 -> Some (phi.Mir.def, step, n0, c)
          | _ -> None)
        | _ -> None)
      | _ -> None)
    (header.Mir.phis
    @ List.filter
        (fun (i : Mir.instr) -> match i.Mir.kind with Mir.Phi _ -> true | _ -> false)
        header.Mir.body)

(* Find a loop-exit comparison bounding [p] (or its step def) by a constant:
   a Branch whose condition is Cmp(Lt|Le, x, k) with exactly one successor
   outside the loop and x ∈ {p, step}. Returns the bound together with the
   in-loop successor of the test: the bound on the phi is only valid in
   blocks dominated by that edge. *)
let upper_bound (f : Mir.func) (loop : Cfg.loop) p step =
  let in_loop bid = List.mem bid loop.Cfg.body in
  let found = ref None in
  List.iter
    (fun bid ->
      if in_loop bid && !found = None then begin
        let b = Mir.block f bid in
        match b.Mir.term with
        | Mir.Branch (c, t_true, t_false)
          when (in_loop t_true && not (in_loop t_false))
               || (in_loop t_false && not (in_loop t_true)) -> (
          let stays_true = in_loop t_true in
          let s_block = if stays_true then t_true else t_false in
          match (Hashtbl.find f.Mir.defs c).Mir.kind with
          | Mir.Cmp (op, x, k) -> (
            let x = strip_tonum f x in
            match (const_int f k, x = p || x = step) with
            | Some kv, true -> (
              (* The in-loop edge is taken when the comparison holds (for
                 Lt/Le with the loop side on true). *)
              match (op, stays_true) with
              | Ops.Lt, true -> found := Some (kv - 1, s_block)
              | Ops.Le, true -> found := Some (kv, s_block)
              | Ops.Ge, false -> found := Some (kv - 1, s_block)
              | Ops.Gt, false -> found := Some (kv, s_block)
              | _ -> ())
            | _ -> ())
          | _ -> ())
        | _ -> ()
      end)
    loop.Cfg.body;
  !found

(* [defer_bounds]: when the abstract-interpretation guard-elision pass is
   also enabled, this pass leaves Bounds_check removal to it (Guard_elim
   subsumes the local induction reasoning and records the deletion in
   telemetry exactly once); only the overflow-check rewrite stays here. *)
let run ?(precise_alias = false) ?(eliminate_overflow_checks = false)
    ?(defer_bounds = false) (f : Mir.func) =
  let has_blocker = ref false in
  Mir.iter_instrs f (fun i -> if blocking ~precise_alias i.Mir.kind then has_blocker := true);
  (* Ranges of induction variables (and their step defs), each valid only
     in blocks dominated by the bounding test's in-loop edge. *)
  let ranges : (Mir.def, range * int) Hashtbl.t = Hashtbl.create 8 in
  let doms = Cfg.dominators f in
  let loops = Cfg.natural_loops f doms in
  List.iter
    (fun (loop : Cfg.loop) ->
      let header = Mir.block f loop.Cfg.header in
      let in_loop bid = List.mem bid loop.Cfg.body in
      match List.filter (fun x -> not (in_loop x)) header.Mir.preds with
      | [ pre ] when List.length header.Mir.preds = 2 ->
        let pre_index = if List.nth header.Mir.preds 0 = pre then 0 else 1 in
        List.iter
          (fun (p, step, n0, c) ->
            match upper_bound f loop p step with
            (* [hi >= n0] rules out a zero-trip bound (e.g. i = 5 while
               i < 3): a test that never admits the loop body must not be
               turned into a synthetic non-empty range, or guards in the
               (dynamically dead but still present) body would be removed
               on the strength of an interval no execution satisfies. *)
            | Some (hi, s_block) when n0 >= 0 && hi >= n0 ->
              Hashtbl.replace ranges p ({ lo = n0; hi }, s_block);
              Hashtbl.replace ranges step ({ lo = n0 + c; hi = hi + c }, s_block)
            | _ -> ())
          (induction_candidates f loop pre_index)
      | _ -> ())
    loops;
  (* [range_of d ~at] is the range of [d] valid in block [at]. *)
  let range_of d ~at =
    match Hashtbl.find_opt ranges (strip_tonum f d) with
    | Some (r, s_block) when Cfg.dominates doms s_block at -> Some r
    | Some _ -> None
    | None -> (
      match const_int f d with Some n -> Some { lo = n; hi = n } | None -> None)
  in
  (* Remove provably safe bounds checks on compile-time-constant arrays. *)
  let bounds_removed = ref 0 in
  if (not !has_blocker) && not defer_bounds then
    List.iter
      (fun bid ->
        let b = Mir.block f bid in
        b.Mir.body <-
          List.filter
            (fun (i : Mir.instr) ->
              match i.Mir.kind with
              | Mir.Bounds_check (idx, arr) -> (
                (* The receiver may still be wrapped in its type guard when
                   BCE runs before constant propagation folds it. *)
                let receiver =
                  match (Hashtbl.find f.Mir.defs arr).Mir.kind with
                  | Mir.Check_array inner -> (Hashtbl.find f.Mir.defs inner).Mir.kind
                  | k -> k
                in
                match (receiver, range_of idx ~at:bid) with
                | Mir.Constant (Value.Arr a), Some r
                  when r.lo >= 0 && r.hi < a.Value.length ->
                  incr bounds_removed;
                  false
                | _ -> true)
              | _ -> true)
            b.Mir.body)
      f.Mir.block_order;
  (* Optional extension: overflow-check elimination on induction steps. *)
  let overflow_checks_removed = ref 0 in
  if eliminate_overflow_checks then
    Mir.iter_instrs f (fun i ->
        match i.Mir.kind with
        | Mir.Binop (Ops.Add, x, y, Mir.Mode_int) -> (
          let at = Hashtbl.find f.Mir.def_block i.Mir.def in
          let bound d =
            match range_of d ~at with
            | Some r when r.lo >= 0 -> Some r.hi
            | _ -> None
          in
          match (bound x, bound y) with
          | Some hx, Some hy when hx + hy <= Value.int32_max ->
            i.Mir.kind <- Mir.Binop (Ops.Add, x, y, Mir.Mode_int_nocheck);
            i.Mir.rp <- None;
            incr overflow_checks_removed
          | _ -> ())
        | _ -> ());
  if !bounds_removed = 0 && !overflow_checks_removed = 0 then no_stats
  else { bounds_removed = !bounds_removed; overflow_checks_removed = !overflow_checks_removed }
