(** Array-bounds-check elimination (paper §3.6).

    Recognizes induction variables matching the paper's pattern
    [i0 = exp; i1 = phi(i0, i2); i2 = i1 + c] and performs a trivial range
    analysis: when the initial value is a known constant, the step is a
    positive constant, and a loop-controlling comparison bounds the variable
    by a constant, the bounds checks it indexes into compile-time-constant
    arrays of sufficient length are removed.

    Mirroring the paper's remark about IonMonkey's alias analysis, the pass
    is conservative by default: any store instruction or call in the
    function disables elimination entirely ("if there exists any store
    instruction in the script being compiled, the elimination of bound check
    instructions is considered unsafe"). [~precise_alias:true] relaxes this
    to what is actually sound in this VM (element stores can only grow an
    array, so only property stores, method calls and generic calls block the
    pass) — the ablation quantifying what the conservatism costs.

    With [~eliminate_overflow_checks:true] the same ranges also rewrite
    checked int32 arithmetic on the induction variable to unchecked
    arithmetic when no overflow is possible (the Sol et al. style
    overflow-check elimination listed as future work in §6).

    With [~defer_bounds:true] the Bounds_check removal sweep is skipped:
    the abstract-interpretation pass (Guard_elim) subsumes it and records
    each deletion in telemetry exactly once. The overflow-check rewrite is
    unaffected. *)

type stats = { bounds_removed : int; overflow_checks_removed : int }

val blocking : precise_alias:bool -> Mir.instr_kind -> bool
(** Can this instruction shrink some array's length? The alias discipline
    shared with {!Gvn} (bounds-check numbering) and {!Guard_elim} (via
    [Absint]'s blocker scan). *)

val run :
  ?precise_alias:bool ->
  ?eliminate_overflow_checks:bool ->
  ?defer_bounds:bool ->
  Mir.func ->
  stats
