(* Guard elision driven by the abstract interpreter (Absint).

   Runs late in the pipeline, after specialization, constant propagation,
   GVN and the loop passes have exposed whatever the argument cache key
   implies, and deletes the guards Absint proves can never fail:

     - [Type_barrier (a, tag)] when the operand's refined tag set is
       within {tag}: uses are rewired to the unguarded operand. We also
       require the operand's *declared* type to already equal the
       barrier's result type, so the type-consistency lint keeps passing
       (the substitution must not launder an optimistic type).
     - [Check_array a]: same, against Ty_array.
     - [Bounds_check (i, a)] when the refined interval of [i] fits the
       array: the def is unused by construction (Load/Store_elem take the
       checked array and the raw index), so the guard is simply deleted;
       if anything does reference the def we leave the guard alone.

   Deletion goes through [Mir.elide_guards], which preserves origin
   provenance for telemetry ([Guard_elided] events).

   The same module hosts the translation-validation side: [snapshot]
   records every guard with its position before a pass runs, and
   [validate] checks afterwards that each guard the pass removed was
   either relocated (same constructor and origin, e.g. unroll clones) or
   provably redundant/unreachable under the pre-pass abstract state. *)

type snapshot_entry = {
  s_def : Mir.def;
  s_kind : Mir.instr_kind;
  s_bid : int;
  s_idx : int;
  s_ctor : int;
  s_ofid : int;
  s_pc : int;
}

type snapshot = snapshot_entry list

let ctor_class = function
  | Mir.Type_barrier _ -> 0
  | Mir.Check_array _ -> 1
  | Mir.Bounds_check _ -> 2
  | _ -> 3

let iter_guards f fn =
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      List.iteri
        (fun idx (i : Mir.instr) -> if Mir.is_guard i.Mir.kind then fn bid idx i)
        b.Mir.body)
    f.Mir.block_order

(* Every def referenced anywhere: operands, resume points, terminators. *)
let used_defs (f : Mir.func) =
  let used = Hashtbl.create 64 in
  let mark d = Hashtbl.replace used d () in
  let mark_rp = function
    | None -> ()
    | Some rp ->
      Array.iter mark rp.Mir.rp_args;
      Array.iter mark rp.Mir.rp_locals;
      List.iter mark rp.Mir.rp_stack
  in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      let scan (i : Mir.instr) =
        List.iter mark (Mir.instr_operands i.Mir.kind);
        mark_rp i.Mir.rp
      in
      List.iter scan b.Mir.phis;
      List.iter scan b.Mir.body;
      match b.Mir.term with
      | Mir.Branch (c, _, _) -> mark c
      | Mir.Return d -> mark d
      | Mir.Goto _ | Mir.Unreachable -> ())
    f.Mir.block_order;
  used

(* Returns the elisions performed (origin-tagged, for telemetry). *)
let run ?(precise_alias = false) (f : Mir.func) =
  let r = Absint.analyze ~precise_alias f in
  let used = used_defs f in
  let operand_ty_is a ty =
    match Hashtbl.find_opt f.Mir.defs a with
    | Some (ai : Mir.instr) -> ai.Mir.ty = ty
    | None -> false
  in
  let victims = ref [] in
  iter_guards f (fun bid idx i ->
      if
        Absint.block_executable r bid
        && Absint.prove r ~at:(bid, idx) ~exclude:i.Mir.def i.Mir.kind
           = Absint.Redundant
      then
        match i.Mir.kind with
        | Mir.Type_barrier (a, tag) when operand_ty_is a (Mir.ty_of_tag tag) ->
          victims := (i.Mir.def, Some a) :: !victims
        | Mir.Check_array a when operand_ty_is a Mir.Ty_array ->
          victims := (i.Mir.def, Some a) :: !victims
        | Mir.Bounds_check _ when not (Hashtbl.mem used i.Mir.def) ->
          victims := (i.Mir.def, None) :: !victims
        | _ -> ());
  Mir.elide_guards f !victims

(* ------------------------------------------------------------------ *)
(* Translation validation                                              *)
(* ------------------------------------------------------------------ *)

let snapshot (f : Mir.func) : snapshot =
  let out = ref [] in
  iter_guards f (fun bid idx i ->
      out :=
        {
          s_def = i.Mir.def;
          s_kind = i.Mir.kind;
          s_bid = bid;
          s_idx = idx;
          s_ctor = ctor_class i.Mir.kind;
          s_ofid = i.Mir.org.Mir.o_fid;
          s_pc = i.Mir.org.Mir.o_pc;
        }
        :: !out);
  List.rev !out

(* [pre] must be [Absint.analyze] of the function as it stood when [snap]
   was taken (the pre-pass state). Raises [Diag.Failed] on the first guard
   whose removal cannot be justified. *)
let validate ~pass ~(pre : Absint.result) ~(snap : snapshot) (f : Mir.func) =
  let present = Hashtbl.create 32 in
  let by_origin = Hashtbl.create 32 in
  iter_guards f (fun _ _ i ->
      Hashtbl.replace present i.Mir.def ();
      Hashtbl.replace by_origin
        (ctor_class i.Mir.kind, i.Mir.org.Mir.o_fid, i.Mir.org.Mir.o_pc)
        ());
  List.iter
    (fun e ->
      if not (Hashtbl.mem present e.s_def) then
        let relocated = Hashtbl.mem by_origin (e.s_ctor, e.s_ofid, e.s_pc) in
        if
          (not relocated)
          && not
               (Absint.never_fails pre ~at:(e.s_bid, e.s_idx) ~exclude:e.s_def
                  e.s_kind)
        then
          Diag.error ~layer:"absint" ~pass
            ~func:f.Mir.source.Bytecode.Program.name
            ~fid:f.Mir.source.Bytecode.Program.fid ~block:e.s_bid
            ~value:e.s_def ~pc:e.s_pc
            "guard %s removed by pass but not provably redundant under the \
             pre-pass abstract state"
            (Mir.guard_kind_name e.s_kind))
    snap
