open Runtime

(* Hash key for a pure instruction, after operand resolution. [None] means
   the instruction is not eligible for value numbering. [bounds_stable] says
   no instruction in the function can shrink an array length (the
   Bounds_check alias discipline): only then is a later Bounds_check on the
   same (index, array) pair guaranteed to pass because a dominating one did
   — found by the translation-validation sandwich, which refused to certify
   the dedup across a potentially shrinking call. *)
let key_of ~bounds_stable resolve (kind : Mir.instr_kind) =
  let d x = string_of_int (resolve x) in
  let open Printf in
  match kind with
  | Mir.Constant v -> (
    (* Heap constants number by identity; primitives by value. *)
    match v with
    | Value.Obj o -> Some (sprintf "const:obj%d" o.Value.oid)
    | Value.Arr a -> Some (sprintf "const:arr%d" a.Value.aid)
    | Value.Closure c -> Some (sprintf "const:clo%d" c.Value.cid)
    | Value.Double f -> Some (sprintf "const:d%Lx" (Int64.bits_of_float f))
    | Value.Undefined | Value.Null | Value.Bool _ | Value.Int _ | Value.Str _
    | Value.Native_fun _ ->
      (* The display string alone is not injective across constructors
         (Int 4 and Str "4" both display as "4"), so prefix the tag. *)
      Some
        (sprintf "const:%s:%s"
           (Value.tag_to_string (Value.tag_of v))
           (Value.to_display_string v)))
  | Mir.Binop (op, a, b, mode) ->
    Some
      (sprintf "binop:%s:%s:%s:%s" (Ops.binop_to_string op) (Mir.mode_to_string mode)
         (d a) (d b))
  | Mir.Cmp (op, a, b) -> Some (sprintf "cmp:%s:%s:%s" (Ops.cmp_to_string op) (d a) (d b))
  | Mir.Unop (op, a) -> Some (sprintf "unop:%s:%s" (Ops.unop_to_string op) (d a))
  | Mir.To_bool a -> Some (sprintf "tobool:%s" (d a))
  | Mir.Box a -> Some (sprintf "box:%s" (d a))
  | Mir.String_length a -> Some (sprintf "strlen:%s" (d a))
  | Mir.Type_barrier (a, tag) ->
    Some (sprintf "barrier:%s:%s" (Value.tag_to_string tag) (d a))
  | Mir.Check_array a -> Some (sprintf "chkarr:%s" (d a))
  | Mir.Bounds_check (i, a) ->
    if bounds_stable then Some (sprintf "bc:%s:%s" (d i) (d a)) else None
  | Mir.Array_length _
  (* length is mutable: do not number across possible stores *)
  | Mir.Parameter _ | Mir.Osr_value _ | Mir.Phi _ | Mir.Load_elem _ | Mir.Store_elem _
  | Mir.Elem_generic _ | Mir.Store_elem_generic _ | Mir.Load_prop _ | Mir.Store_prop _
  | Mir.Call _ | Mir.Call_known _ | Mir.Call_native _ | Mir.Method_call _
  | Mir.New_array _ | Mir.Construct _ | Mir.New_object _ | Mir.Make_closure _
  | Mir.Get_global _ | Mir.Set_global _ | Mir.Get_cell _ | Mir.Set_cell _
  | Mir.Get_upval _ | Mir.Set_upval _ | Mir.Load_captured _ | Mir.Store_captured _ ->
    None

let run (f : Mir.func) =
  let doms = Cfg.dominators f in
  let bounds_stable = ref true in
  Mir.iter_instrs f (fun i ->
      if Bounds_check.blocking ~precise_alias:false i.Mir.kind then
        bounds_stable := false);
  let bounds_stable = !bounds_stable in
  let subst : (Mir.def, Mir.def) Hashtbl.t = Hashtbl.create 32 in
  let rec resolve d =
    match Hashtbl.find_opt subst d with Some d' when d' <> d -> resolve d' | _ -> d
  in
  let available : (string, (Mir.def * int) list) Hashtbl.t = Hashtbl.create 64 in
  let eliminated = ref 0 in
  let rpo = Mir.reverse_postorder f in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      (* Degenerate phi simplification. *)
      let simplified =
        List.filter
          (fun (phi : Mir.instr) ->
            match phi.Mir.kind with
            | Mir.Phi ops ->
              let resolved = Array.map resolve ops in
              let distinct =
                Array.to_list resolved
                |> List.filter (fun o -> o <> phi.Mir.def)
                |> List.sort_uniq compare
              in
              (match distinct with
              | [ only ] ->
                Hashtbl.replace subst phi.Mir.def only;
                incr eliminated;
                false
              | _ ->
                phi.Mir.kind <- Mir.Phi resolved;
                true)
            | _ -> true)
          b.Mir.phis
      in
      b.Mir.phis <- simplified;
      let kept =
        List.filter
          (fun (instr : Mir.instr) ->
            instr.Mir.kind <- Mir.map_operands resolve instr.Mir.kind;
            instr.Mir.rp <- Option.map (Mir.map_resume_point resolve) instr.Mir.rp;
            match instr.Mir.kind with
            | Mir.Unop (Ops.To_number, x)
              when (let t = Mir.ty_of_def f x in t = Mir.Ty_int32 || t = Mir.Ty_double) ->
              (* ToNumber of a number is the identity. *)
              Hashtbl.replace subst instr.Mir.def x;
              incr eliminated;
              false
            | _ ->
            match key_of ~bounds_stable resolve instr.Mir.kind with
            | None -> true
            | Some key -> (
              let candidates = Option.value (Hashtbl.find_opt available key) ~default:[] in
              match
                List.find_opt (fun (_, def_bid) -> Cfg.dominates doms def_bid bid) candidates
              with
              | Some (prior, _) ->
                Hashtbl.replace subst instr.Mir.def prior;
                incr eliminated;
                false
              | None ->
                Hashtbl.replace available key ((instr.Mir.def, bid) :: candidates);
                true))
          b.Mir.body
      in
      b.Mir.body <- kept)
    rpo;
  if Hashtbl.length subst > 0 then Mir.substitute f resolve;
  !eliminated
