open Runtime

(* Can this function body be spliced into another frame? It must not need
   its own activation state beyond arguments: no cells (captured locals),
   no closure creation, and no OSR machinery (never present in callee
   builds). *)
let inlinable (func : Bytecode.Program.func) ~max_size =
  func.Bytecode.Program.ncells = 0
  && Array.length func.Bytecode.Program.code <= max_size
  && Array.for_all
       (function Bytecode.Instr.Make_closure _ -> false | _ -> true)
       func.Bytecode.Program.code

(* Remap one callee instruction kind into the caller's def space. Upvalue
   accesses become direct cell loads through the constant closure's
   environment. *)
let remap_kind env map (kind : Mir.instr_kind) =
  match Mir.map_operands map kind with
  | Mir.Get_upval i -> Mir.Load_captured env.(i)
  | Mir.Set_upval (i, v) -> Mir.Store_captured (env.(i), v)
  | other -> other

let inline_site (caller : Mir.func) ~program ~site_block ~(site : Mir.instr)
    ~(closure : Value.closure) =
  let callee_func = program.Bytecode.Program.funcs.(closure.Value.fid) in
  let args =
    match site.Mir.kind with
    | Mir.Call_known (_, _, args) | Mir.Call (_, args) -> args
    | _ -> assert false
  in
  (* Build the callee graph generically: no spec, no tags, no OSR, and no
     guards (inlined code has no resume points to bail through). *)
  let callee = Builder.build ~program ~func:callee_func ~emit_guards:false () in
  (* Fresh blocks in the caller for every callee block. *)
  let block_map = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      let nb = Mir.new_block caller in
      Hashtbl.replace block_map bid nb.Mir.bid)
    callee.Mir.block_order;
  let map_block bid = Hashtbl.find block_map bid in
  (* Def mapping: parameters alias the call arguments (padded with
     undefined); everything else gets a fresh def as we copy. *)
  let def_map : (Mir.def, Mir.def) Hashtbl.t = Hashtbl.create 64 in
  let b_site = Mir.block caller site_block in
  let undef_def =
    lazy
      (let i = Mir.make_instr caller site_block (Mir.Constant Value.Undefined) in
       b_site.Mir.body <- b_site.Mir.body @ [ i ];
       i)
  in
  let arg_def i =
    if i < Array.length args then args.(i)
    else (Lazy.force undef_def).Mir.def
  in
  let map d = match Hashtbl.find_opt def_map d with Some d' -> d' | None -> d in
  (* Split the site block: everything after the call moves to a
     continuation block. *)
  let cont = Mir.new_block caller in
  let rec split before = function
    | [] -> assert false
    | (i : Mir.instr) :: rest ->
      if i.Mir.def = site.Mir.def then (List.rev before, rest)
      else split (i :: before) rest
  in
  let before, after = split [] b_site.Mir.body in
  cont.Mir.body <- after;
  List.iter
    (fun (i : Mir.instr) -> Hashtbl.replace caller.Mir.def_block i.Mir.def cont.Mir.bid)
    after;
  cont.Mir.term <- b_site.Mir.term;
  (* Successors of the old site block now hail from the continuation. *)
  List.iter
    (fun succ ->
      let sb = Mir.block caller succ in
      sb.Mir.preds <-
        List.map (fun p -> if p = site_block then cont.Mir.bid else p) sb.Mir.preds)
    (Mir.successors cont);
  b_site.Mir.body <- before;
  (* Copy callee blocks. Return terminators route to the continuation. *)
  let returns = ref [] in
  (* Pre-assign the caller-side def of every callee instruction, so that
     operand references resolve regardless of block iteration order. *)
  Mir.iter_instrs callee (fun (i : Mir.instr) ->
      match i.Mir.kind with
      | Mir.Parameter k -> Hashtbl.replace def_map i.Mir.def (arg_def k)
      | _ -> Hashtbl.replace def_map i.Mir.def (Mir.fresh_def caller));
  List.iter
    (fun bid ->
      let cb = Mir.block callee bid in
      let nb = Mir.block caller (map_block bid) in
      nb.Mir.preds <- List.map map_block cb.Mir.preds;
      List.iter
        (fun (phi : Mir.instr) ->
          match phi.Mir.kind with
          | Mir.Phi ops ->
            let nd = Hashtbl.find def_map phi.Mir.def in
            let ni =
              {
                Mir.def = nd;
                kind = Mir.Phi (Array.map map ops);
                ty = phi.Mir.ty;
                rp = None;
                (* keep callee provenance (fid/pc) so inlined cycles are
                   attributed to the function they came from *)
                org = { phi.Mir.org with Mir.o_def = nd };
              }
            in
            nb.Mir.phis <- nb.Mir.phis @ [ ni ];
            Hashtbl.replace caller.Mir.defs nd ni;
            Hashtbl.replace caller.Mir.def_block nd nb.Mir.bid
          | _ -> assert false)
        cb.Mir.phis;
      List.iter
        (fun (i : Mir.instr) ->
          match i.Mir.kind with
          | Mir.Parameter _ -> ()  (* aliased to the argument *)
          | _ ->
            let kind = remap_kind closure.Value.env map i.Mir.kind in
            (* Checked int32 arithmetic needs a resume point to bail
               through, and the copy has none: demote to a guard-free
               mode (widening the declared result type to match). The
               typer re-commits the best modes afterwards. *)
            let kind, ty =
              match kind with
              | Mir.Binop (op, a, b, Mir.Mode_int) -> (
                match op with
                | Ops.Bit_and | Ops.Bit_or | Ops.Bit_xor | Ops.Shl | Ops.Shr ->
                  (Mir.Binop (op, a, b, Mir.Mode_int_nocheck), i.Mir.ty)
                | _ -> (Mir.Binop (op, a, b, Mir.Mode_generic), Mir.Ty_value))
              | k -> (k, i.Mir.ty)
            in
            let nd = Hashtbl.find def_map i.Mir.def in
            (* Inlined code carries no resume points (see interface). *)
            let ni =
              { Mir.def = nd; kind; ty; rp = None; org = { i.Mir.org with Mir.o_def = nd } }
            in
            nb.Mir.body <- nb.Mir.body @ [ ni ];
            Hashtbl.replace caller.Mir.defs nd ni;
            Hashtbl.replace caller.Mir.def_block nd nb.Mir.bid)
        cb.Mir.body;
      nb.Mir.term <-
        (match cb.Mir.term with
        | Mir.Goto t -> Mir.Goto (map_block t)
        | Mir.Branch (c, a, b) -> Mir.Branch (map c, map_block a, map_block b)
        | Mir.Return d ->
          returns := (nb.Mir.bid, map d) :: !returns;
          Mir.Goto cont.Mir.bid
        | Mir.Unreachable -> Mir.Unreachable))
    callee.Mir.block_order;
  (* Route the site block into the inlined entry. *)
  b_site.Mir.term <- Mir.Goto (map_block callee.Mir.entry);
  (Mir.block caller (map_block callee.Mir.entry)).Mir.preds <- [ site_block ];
  (* The call's result becomes a phi over the callee's returns. *)
  cont.Mir.preds <- List.map fst !returns;
  let result_def =
    match !returns with
    | [] ->
      (* Callee never returns normally (infinite loop); keep the graph
         well-formed with an undefined constant. *)
      (Lazy.force undef_def).Mir.def
    | [ (_, d) ] -> d
    | multiple -> Mir.append_phi caller cont (Array.of_list (List.map snd multiple))
  in
  Hashtbl.remove caller.Mir.defs site.Mir.def;
  let subst d = if d = site.Mir.def then result_def else d in
  Mir.substitute caller subst

let run ~program ?(max_size = 60) ?(max_sites = 8) (caller : Mir.func) =
  let inlined = ref 0 in
  let rec round sites_done =
    if sites_done < max_sites then begin
      (* Find one inlinable site, transform, repeat (the transformation
         invalidates block iteration state, so one site at a time). *)
      let found = ref None in
      List.iter
        (fun bid ->
          if !found = None then
            let b = Mir.block caller bid in
            List.iter
              (fun (i : Mir.instr) ->
                if !found = None then
                  match i.Mir.kind with
                  | Mir.Call_known (_, callee_def, _) | Mir.Call (callee_def, _) -> (
                    match (Hashtbl.find caller.Mir.defs callee_def).Mir.kind with
                    | Mir.Constant (Value.Closure c)
                      when inlinable program.Bytecode.Program.funcs.(c.Value.fid) ~max_size ->
                      found := Some (bid, i, c)
                    | _ -> ())
                  | _ -> ())
              b.Mir.body)
        caller.Mir.block_order;
      match !found with
      | Some (site_block, site, closure) ->
        inline_site caller ~program ~site_block ~site ~closure;
        incr inlined;
        round (sites_done + 1)
      | None -> ()
    end
  in
  round 0;
  !inlined
