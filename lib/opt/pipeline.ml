type config = {
  name : string;
  param_spec : bool;
  constprop : bool;
  sccp : bool;
  loop_inversion : bool;
  dce : bool;
  bounds_check_elim : bool;
  precise_alias : bool;
  overflow_elim : bool;
  loop_unroll : bool;
  licm : bool;
  gvn : bool;
  guard_elim : bool;
}

let make ?(ps = false) ?(cp = false) ?(sccp = false) ?(li = false) ?(dce = false)
    ?(bce = false) ?(precise_alias = false) ?(overflow_elim = false)
    ?(loop_unroll = false) ?(licm = true) ?(gvn = true) ?(ge = true) name =
  {
    name;
    param_spec = ps;
    constprop = cp;
    sccp;
    loop_inversion = li;
    dce;
    bounds_check_elim = bce;
    precise_alias;
    overflow_elim;
    loop_unroll;
    licm;
    gvn;
    guard_elim = ge;
  }

let baseline = make "baseline"
let best = make ~ps:true ~cp:true ~dce:true "PS+CP+DCE"

let all_on = make ~ps:true ~cp:true ~li:true ~dce:true ~bce:true "PS+CP+LI+DCE+BCE"

(* The ten columns of Figure 9, left to right. *)
let figure9_configs =
  [
    make ~ps:true "PS";
    make ~cp:true "CP";
    make ~ps:true ~cp:true "PS+CP";
    make ~ps:true ~cp:true ~li:true "PS+CP+LI";
    make ~ps:true ~cp:true ~dce:true "PS+CP+DCE";
    make ~ps:true ~cp:true ~li:true ~dce:true "PS+CP+LI+DCE";
    make ~ps:true ~cp:true ~bce:true "PS+CP+BCE";
    make ~ps:true ~cp:true ~li:true ~bce:true "PS+CP+LI+BCE";
    make ~ps:true ~cp:true ~dce:true ~bce:true "PS+CP+DCE+BCE";
    all_on;
  ]

(* Per-pass verification ("sandwich" mode): when enabled, [apply] re-runs
   the MIR structural verifier and the type-consistency lint after every
   pass, so the first broken invariant is attributed to the pass that broke
   it instead of surfacing four passes later. Tests, the fuzzer and
   bin/irlint flip this on; benchmarks leave it off (the final end-of-
   pipeline [Verify.run] stays unconditional either way, and cycle
   accounting via [charge] never includes verification). *)
let checks_slot = Support.Tls.make (fun () -> false)
let checks () = Support.Tls.get checks_slot
let set_checks b = Support.Tls.set checks_slot b
let with_checks b f = Support.Tls.with_value checks_slot b f

type run_stats = {
  folded : int;
  inlined : int;
  loops_inverted : int;
  branches_folded : int;
  blocks_removed : int;
  instrs_removed : int;
  bounds_removed : int;
  overflow_removed : int;
  unrolled : int;
  gvn_eliminated : int;
  licm_hoisted : int;
  guards_elided : int;
  elisions : Mir.elision list;
  mir_instrs_processed : int;
  passes : Telemetry.pass_delta list;
}

let apply ?check ~program config (f : Mir.func) =
  let check = match check with Some c -> c | None -> checks () in
  let sandwich pass =
    if check then begin
      Verify.run ~pass f;
      Verify.check_types ~pass f
    end
  in
  let processed = ref 0 in
  let charge () = processed := !processed + Mir.all_instr_count f in
  (* Per-pass attribution for the telemetry layer: graph size entering and
     leaving every pass that ran, in execution order. [pd_before] is also
     the pass's compile-time weight, since [charge] bills per instruction
     present when the pass starts. *)
  let pass_trace = ref [] in
  (* Translation validation (sandwich mode only): before each pass we hold
     a guard snapshot and the abstract state of the pre-pass graph; after
     the pass, every guard it removed must be provably redundant (or
     relocated, or in dead code) under that pre-pass state. The post-pass
     state becomes the next pass's pre-state, so the whole pipeline is
     audited pass by pass. *)
  let tv =
    if check then
      Some (ref (Guard_elim.snapshot f, Absint.analyze ~precise_alias:config.precise_alias f))
    else None
  in
  let run_pass name body =
    let before = Mir.all_instr_count f in
    (* Provenance context: instructions a pass creates are tagged with the
       pass's name (see [Mir.cur_origin]). Restored afterwards so the
       builder default survives nested/aborted runs. *)
    let saved_pass = f.Mir.cur_pass in
    f.Mir.cur_pass <- name;
    let r = Fun.protect ~finally:(fun () -> f.Mir.cur_pass <- saved_pass) body in
    sandwich name;
    (match tv with
    | Some st ->
      let snap, pre = !st in
      Guard_elim.validate ~pass:name ~pre ~snap f;
      st :=
        (Guard_elim.snapshot f, Absint.analyze ~precise_alias:config.precise_alias f)
    | None -> ());
    pass_trace :=
      { Telemetry.pd_pass = name; pd_before = before; pd_after = Mir.all_instr_count f }
      :: !pass_trace;
    r
  in
  (* The constant-propagation step: the paper's Aho formulation, or the
     Wegman-Zadeck conditional algorithm under the ablation flag. *)
  let cp_name = if config.sccp then "sccp" else "constprop" in
  let run_cp () =
    run_pass cp_name (fun () ->
        if config.sccp then (Sccp.run f).Sccp.folded else Constprop.run f)
  in
  let run_typer () = run_pass "typer" (fun () -> Typer.run f) in
  let run_gvn () = run_pass "gvn" (fun () -> Gvn.run f) in
  let want_cp = config.constprop || config.sccp in
  (* Baseline: type specialization and GVN, like IonMonkey. GVN's phi
     simplification is what lets constant closure arguments reach call
     sites, so it precedes inlining. *)
  charge ();
  run_typer ();
  let gvn_eliminated = ref 0 in
  if config.gvn then begin
    charge ();
    gvn_eliminated := run_gvn ()
  end;
  let folded = ref 0 in
  if want_cp then begin
    charge ();
    folded := run_cp ()
  end;
  (* Closure inlining accompanies parameter specialization (§4's
     "PARAMETER SPEC ... augmented with the automatic inlining of functions
     passed as parameters"). The spliced code is re-typed and re-numbered. *)
  let inlined =
    if config.param_spec then begin
      charge ();
      let n = run_pass "inline" (fun () -> Inline.run ~program f) in
      if n > 0 then begin
        charge ();
        run_typer ();
        charge ();
        if config.gvn then gvn_eliminated := !gvn_eliminated + run_gvn ();
        if want_cp then begin
          charge ();
          folded := !folded + run_cp ()
        end
      end;
      n
    end
    else 0
  in
  (* §6 extension: unrolling, enabled by the constant bounds that
     specialization + constprop expose. Before inversion, which would
     change the loop shape it recognizes. *)
  let unrolled =
    if config.loop_unroll then begin
      charge ();
      let n = run_pass "unroll" (fun () -> Unroll.run f) in
      if n > 0 then begin
        charge ();
        if config.gvn then gvn_eliminated := !gvn_eliminated + run_gvn ();
        if want_cp then begin
          charge ();
          folded := !folded + run_cp ()
        end
      end;
      n
    end
    else 0
  in
  let loops_inverted =
    if config.loop_inversion then begin
      charge ();
      let n = run_pass "loop-inversion" (fun () -> Loop_inversion.run f) in
      if n > 0 then begin
        (* The cloned tests duplicate constants and create phi(x, x) merges;
           a value-numbering sweep (baseline hygiene) cleans them before
           lowering would materialize them into registers. *)
        charge ();
        if config.gvn then gvn_eliminated := !gvn_eliminated + run_gvn ()
      end;
      n
    end
    else 0
  in
  let dce_stats =
    if config.dce then begin
      charge ();
      run_pass "dce" (fun () -> Dce.run f)
    end
    else { Dce.branches_folded = 0; blocks_removed = 0; instrs_removed = 0 }
  in
  let bce_stats =
    if config.bounds_check_elim then begin
      charge ();
      run_pass "bounds-check-elim" (fun () ->
          Bounds_check.run ~precise_alias:config.precise_alias
            ~eliminate_overflow_checks:config.overflow_elim
            ~defer_bounds:config.guard_elim f)
    end
    else { Bounds_check.bounds_removed = 0; overflow_checks_removed = 0 }
  in
  (* Baseline invariant code motion, which loop inversion feeds (§4). *)
  let licm_hoisted = ref 0 in
  if config.licm then begin
    charge ();
    licm_hoisted := run_pass "licm" (fun () -> Licm.run f)
  end;
  (* Abstract-interpretation guard elision, last: it harvests whatever
     specialization + constprop/SCCP/GVN and the loop passes exposed. *)
  let elisions = ref [] in
  if config.guard_elim then begin
    charge ();
    elisions :=
      run_pass "guard-elim" (fun () ->
          Guard_elim.run ~precise_alias:config.precise_alias f)
  end;
  (* The end-of-pipeline structural check stays unconditional; the type
     lint only runs in sandwich mode. *)
  Verify.run ~pass:"pipeline" f;
  if check then Verify.check_types ~pass:"pipeline" f;
  {
    folded = !folded;
    inlined;
    loops_inverted;
    branches_folded = dce_stats.Dce.branches_folded;
    blocks_removed = dce_stats.Dce.blocks_removed;
    instrs_removed = dce_stats.Dce.instrs_removed;
    bounds_removed = bce_stats.Bounds_check.bounds_removed;
    overflow_removed = bce_stats.Bounds_check.overflow_checks_removed;
    unrolled;
    gvn_eliminated = !gvn_eliminated;
    licm_hoisted = !licm_hoisted;
    guards_elided = List.length !elisions;
    elisions = !elisions;
    mir_instrs_processed = !processed;
    passes = List.rev !pass_trace;
  }

(* Scheduled pass count for a config — the background queue's completion
   model scales modeled compile latency by it ([Cost.bg_compile_cost]).
   An upper-bound approximation of [apply]'s schedule (typer and gvn can
   run more than once; conditionals mirror the flags): precision does not
   matter, determinism and monotonicity in the flags do. *)
let npasses (c : config) =
  let b f = if f then 1 else 0 in
  1 (* typer *)
  + b c.gvn
  + b c.param_spec (* inline *)
  + b (c.constprop || c.sccp)
  + b c.loop_unroll
  + b c.loop_inversion
  + (2 * b c.dce) (* dce runs early and as the final cleanup *)
  + b c.bounds_check_elim
  + b c.licm
  + b c.guard_elim
