(** Optimization pipelines: the paper's configuration grid.

    A {!config} names which of the paper's five optimizations are active.
    [param_spec] is consumed by the engine when it builds the MIR (the
    specialization itself happens in {!Builder.build}); the remaining flags
    choose passes here. Global value numbering, type specialization and
    invariant code motion always run — they are IonMonkey's baseline.

    {!figure9_configs} lists the ten columns of the paper's Figure 9 in
    order; {!baseline} is plain IonMonkey (the reference all speedups are
    measured against); {!best} is the configuration the paper headlines
    (PS + CP + DCE, its strongest SunSpider column). *)

type config = {
  name : string;
  param_spec : bool;  (** §3.2 + closure inlining §3.7 *)
  constprop : bool;  (** §3.3 *)
  sccp : bool;
      (** ablation: replace the Aho constant propagation with Wegman-Zadeck
          sparse conditional constant propagation ({!Sccp}) *)
  loop_inversion : bool;  (** §3.4 *)
  dce : bool;  (** §3.5 *)
  bounds_check_elim : bool;  (** §3.6 *)
  precise_alias : bool;  (** ablation: relax the store-conservative rule *)
  overflow_elim : bool;  (** §6 future work: overflow-check elimination *)
  loop_unroll : bool;  (** §6 future work: unrolling under known trip counts *)
  licm : bool;  (** baseline invariant code motion; off only for ablations *)
  gvn : bool;  (** baseline value numbering; off only for ablations *)
  guard_elim : bool;
      (** abstract-interpretation guard elision ({!Guard_elim}); on by
          default, off only for ablations and differential testing *)
}

val baseline : config
val best : config
val all_on : config

val figure9_configs : config list
(** The ten optimization columns of Figure 9, left to right. *)

val make :
  ?ps:bool -> ?cp:bool -> ?sccp:bool -> ?li:bool -> ?dce:bool -> ?bce:bool ->
  ?precise_alias:bool -> ?overflow_elim:bool -> ?loop_unroll:bool ->
  ?licm:bool -> ?gvn:bool -> ?ge:bool -> string -> config

(** Pass-execution statistics, for the compile-time model and the tests. *)
type run_stats = {
  folded : int;
  inlined : int;
  loops_inverted : int;
  branches_folded : int;
  blocks_removed : int;
  instrs_removed : int;
  bounds_removed : int;
  overflow_removed : int;
  unrolled : int;
  gvn_eliminated : int;
  licm_hoisted : int;
  guards_elided : int;  (** guards deleted by the {!Guard_elim} pass *)
  elisions : Mir.elision list;
      (** origin provenance of each deleted guard, for telemetry events *)
  mir_instrs_processed : int;
      (** total instruction-visits across passes; the compile-time model
          charges per visit, so leaner graphs compile faster, as §4 observes *)
  passes : Telemetry.pass_delta list;
      (** every pass that ran, in execution order, with the graph size
          entering and leaving it — the per-pass attribution the engine
          forwards on its [Compile_end] telemetry event *)
}

val checks : unit -> bool
(** Default for {!apply}'s [?check]: per-pass verification ("sandwich"
    mode). Tests, the fuzzer and [bin/irlint] turn it on; benchmarks leave
    it off. Domain-local, so a checked fuzz task and an unchecked bench
    task can share a pool. Verification never contributes to the
    compile-cycle model. *)

val set_checks : bool -> unit
(** Set the current domain's check mode. *)

val with_checks : bool -> (unit -> 'a) -> 'a
(** Run with the current domain's check mode temporarily replaced. *)

val apply : ?check:bool -> program:Bytecode.Program.t -> config -> Mir.func -> run_stats
(** Run the configured passes over a freshly built MIR graph, in the
    paper's order: inlining (when specializing), type specialization, GVN,
    constant propagation, loop inversion, DCE, bounds-check elimination,
    LICM, and a final DCE cleanup. Verifies the graph afterwards
    (structurally always; with {!Verify.check_types} after every pass when
    [check] — defaulting to {!checks} — is on, raising {!Diag.Failed}
    attributed to the offending pass). *)

val npasses : config -> int
(** Scheduled pass count for this config — the compile-latency weight the
    background queue's deterministic completion model multiplies into
    {!Cost.bg_compile_cost}. An approximation of [apply]'s schedule;
    deterministic and monotone in the flags, which is all the model
    needs. *)
