open Runtime

let strip_tonum (f : Mir.func) d =
  match (Hashtbl.find f.Mir.defs d).Mir.kind with
  | Mir.Unop (Ops.To_number, x) -> x
  | _ -> d

let const_int (f : Mir.func) d =
  match (Hashtbl.find f.Mir.defs d).Mir.kind with
  | Mir.Constant (Value.Int n) -> Some n
  | _ -> None

(* Statically evaluate the trip count of [for (i = c0; i OP k; i += c)]. *)
let trip_count ~max_trips op c0 k c =
  let holds i = match op with Ops.Lt -> i < k | Ops.Le -> i <= k | _ -> false in
  let rec go i n =
    if n > max_trips then None else if holds i then go (i + c) (n + 1) else Some n
  in
  go c0 0

type candidate = {
  loop : Cfg.loop;
  pre_bid : int;
  latch_bid : int;
  body_entry : int;
  exit_bid : int;
  trips : int;
  (* header phi def -> (entry operand, latch operand) *)
  phi_ops : (Mir.def * (Mir.def * Mir.def)) list;
}

(* The header may only compute the exit test: phis plus a pure comparison
   chain whose values nothing else uses. *)
let header_is_pure_test (f : Mir.func) (header : Mir.block) =
  let chain_defs =
    List.map (fun (i : Mir.instr) -> i.Mir.def) header.Mir.body
  in
  let ok_kind (i : Mir.instr) =
    match i.Mir.kind with
    | Mir.Constant _ | Mir.Cmp _ | Mir.To_bool _ | Mir.Unop (Ops.To_number, _) -> true
    | _ -> false
  in
  List.for_all ok_kind header.Mir.body
  &&
  (* Chain values must not escape the header. *)
  let escapes = ref false in
  List.iter
    (fun bid ->
      if bid <> header.Mir.bid then begin
        let b = Mir.block f bid in
        let scan (i : Mir.instr) =
          if List.exists (fun d -> List.mem d chain_defs) (Mir.instr_operands i.Mir.kind)
          then escapes := true;
          match i.Mir.rp with
          | None -> ()
          | Some rp ->
            let refs =
              Array.to_list rp.Mir.rp_args @ Array.to_list rp.Mir.rp_locals
              @ rp.Mir.rp_stack
            in
            if List.exists (fun d -> List.mem d chain_defs) refs then escapes := true
        in
        List.iter scan b.Mir.phis;
        List.iter scan b.Mir.body
      end)
    f.Mir.block_order;
  not !escapes

let find_candidate (f : Mir.func) ~max_trips ~max_copied_instrs (loop : Cfg.loop) =
  let header = Mir.block f loop.Cfg.header in
  let in_loop bid = List.mem bid loop.Cfg.body in
  match (loop.Cfg.latches, header.Mir.preds, header.Mir.term) with
  | [ latch_bid ], [ p1; p2 ], Mir.Branch (c, t1, t2)
    when latch_bid <> loop.Cfg.header
         && (Mir.block f latch_bid).Mir.term = Mir.Goto loop.Cfg.header -> (
    let pre_bid = if p1 = latch_bid then p2 else p1 in
    if in_loop pre_bid then None
    else
      let body_entry, exit_bid =
        if in_loop t1 && not (in_loop t2) then (t1, t2)
        else if in_loop t2 && not (in_loop t1) then (t2, t1)
        else (-1, -1)
      in
      let cond_ok =
        (* the in-loop side must be the true side of i < k / i <= k *)
        in_loop t1 && not (in_loop t2)
      in
      if body_entry = -1 || body_entry = loop.Cfg.header || not cond_ok then None
      else if (Mir.block f body_entry).Mir.phis <> [] then None
      else if not (header_is_pure_test f header) then None
      else
        (* No side exits: every non-header loop block stays inside. *)
        let no_side_exits =
          List.for_all
            (fun bid ->
              bid = loop.Cfg.header
              || List.for_all in_loop (Mir.successors (Mir.block f bid)))
            loop.Cfg.body
        in
        if not no_side_exits then None
        else
          let i_pre = if List.nth header.Mir.preds 0 = pre_bid then 0 else 1 in
          let phi_ops =
            List.filter_map
              (fun (phi : Mir.instr) ->
                match phi.Mir.kind with
                | Mir.Phi [| a; b |] ->
                  let e, l = if i_pre = 0 then (a, b) else (b, a) in
                  Some (phi.Mir.def, (e, l))
                | _ -> None)
              header.Mir.phis
          in
          if List.length phi_ops <> List.length header.Mir.phis then None
          else
            (* The controlling induction variable. *)
            match (Hashtbl.find f.Mir.defs c).Mir.kind with
            | Mir.Cmp (op, x, kd) -> (
              let x = strip_tonum f x in
              match (List.assoc_opt x phi_ops, const_int f kd) with
              | Some (init, step), Some k -> (
                match
                  (const_int f init, (Hashtbl.find f.Mir.defs step).Mir.kind)
                with
                | Some c0, Mir.Binop (Ops.Add, a, b, _) -> (
                  let a = strip_tonum f a and b = strip_tonum f b in
                  let cstep =
                    if a = x then const_int f b else if b = x then const_int f a else None
                  in
                  match cstep with
                  | Some cs when cs > 0 -> (
                    match trip_count ~max_trips op c0 k cs with
                    | Some trips ->
                      let body_instrs =
                        List.fold_left
                          (fun acc bid ->
                            if bid = loop.Cfg.header then acc
                            else
                              let b = Mir.block f bid in
                              acc + List.length b.Mir.phis + List.length b.Mir.body)
                          0 loop.Cfg.body
                      in
                      if body_instrs * trips > max_copied_instrs then None
                      else
                        Some
                          {
                            loop; pre_bid; latch_bid; body_entry; exit_bid; trips;
                            phi_ops;
                          }
                    | None -> None)
                  | _ -> None)
                | _ -> None)
              | _ -> None)
            | _ -> None)
  | _ -> None

(* Unroll one candidate. *)
let unroll_one (f : Mir.func) (c : candidate) =
  let body_bids = List.filter (fun b -> b <> c.loop.Cfg.header) c.loop.Cfg.body in
  let exit_blk = Mir.block f c.exit_bid in
  (* Per-iteration substitution for the header phis: iteration 1 sees the
     entry operands; iteration j+1 sees iteration j's latch values. *)
  let retarget_block from_bid to_bid (b : Mir.block) =
    b.Mir.term <-
      (match b.Mir.term with
      | Mir.Goto t -> Mir.Goto (if t = from_bid then to_bid else t)
      | Mir.Branch (cc, a, bb) ->
        Mir.Branch
          (cc, (if a = from_bid then to_bid else a), if bb = from_bid then to_bid else bb)
      | other -> other)
  in
  (* Copy the body once under [phi_subst]; returns (map of block ids,
     def map, latch copy id). *)
  let copy_body phi_subst =
    let block_map = Hashtbl.create 8 in
    List.iter
      (fun bid ->
        let nb = Mir.new_block f in
        Hashtbl.replace block_map bid nb.Mir.bid)
      body_bids;
    let map_block bid = Option.value (Hashtbl.find_opt block_map bid) ~default:bid in
    let def_map = Hashtbl.create 32 in
    (* Pre-assign fresh defs for every copied instruction. *)
    List.iter
      (fun bid ->
        let b = Mir.block f bid in
        let assign (i : Mir.instr) =
          Hashtbl.replace def_map i.Mir.def (Mir.fresh_def f)
        in
        List.iter assign b.Mir.phis;
        List.iter assign b.Mir.body)
      body_bids;
    let map d =
      match Hashtbl.find_opt def_map d with
      | Some d' -> d'
      | None -> Option.value (List.assoc_opt d phi_subst) ~default:d
    in
    List.iter
      (fun bid ->
        let b = Mir.block f bid in
        let nb = Mir.block f (map_block bid) in
        nb.Mir.preds <- List.map map_block b.Mir.preds;
        let copy (i : Mir.instr) =
          let nd = Hashtbl.find def_map i.Mir.def in
          let ni =
            {
              Mir.def = nd;
              kind = Mir.map_operands map i.Mir.kind;
              ty = i.Mir.ty;
              rp = Option.map (Mir.map_resume_point map) i.Mir.rp;
              (* unrolled copies keep the original iteration's provenance *)
              org = { i.Mir.org with Mir.o_def = nd };
            }
          in
          Hashtbl.replace f.Mir.defs nd ni;
          Hashtbl.replace f.Mir.def_block nd nb.Mir.bid;
          ni
        in
        nb.Mir.phis <- List.map copy b.Mir.phis;
        nb.Mir.body <- List.map copy b.Mir.body;
        nb.Mir.term <-
          (match b.Mir.term with
          | Mir.Goto t -> Mir.Goto (map_block t)
          | Mir.Branch (cc, a, bb) -> Mir.Branch (map cc, map_block a, map_block bb)
          | Mir.Return d -> Mir.Return (map d)
          | Mir.Unreachable -> Mir.Unreachable))
      body_bids;
    (map_block, map)
  in
  (* Iterate: thread the phi values through the copies. *)
  let entry_values = List.map (fun (p, (e, _)) -> (p, e)) c.phi_ops in
  let pre = Mir.block f c.pre_bid in
  let prev_patch = ref (fun target -> retarget_block c.loop.Cfg.header target pre) in
  let prev_bid = ref c.pre_bid in
  let phi_subst = ref entry_values in
  for _j = 1 to c.trips do
    let map_block, map = copy_body !phi_subst in
    let entry_copy = map_block c.body_entry in
    !prev_patch entry_copy;
    (Mir.block f entry_copy).Mir.preds <- [ !prev_bid ];
    phi_subst := List.map (fun (p, (_, l)) -> (p, map l)) c.phi_ops;
    let latch_copy_bid = map_block c.latch_bid in
    let latch_copy = Mir.block f latch_copy_bid in
    prev_patch := (fun target -> retarget_block c.loop.Cfg.header target latch_copy);
    prev_bid := latch_copy_bid
  done;
  !prev_patch c.exit_bid;
  let exit_subst = !phi_subst in
  (* Exit block: its H predecessor is now the last latch copy (or the
     preheader when the loop runs zero times); phi operands and later uses
     of header phis see the final values. *)
  exit_blk.Mir.preds <-
    List.map (fun p -> if p = c.loop.Cfg.header then !prev_bid else p) exit_blk.Mir.preds;
  let subst d = Option.value (List.assoc_opt d exit_subst) ~default:d in
  (* Retire the original loop blocks before the global substitution so the
     stale uses inside them do not matter. *)
  f.Mir.block_order <-
    List.filter (fun b -> not (List.mem b c.loop.Cfg.body)) f.Mir.block_order;
  List.iter (fun b -> Hashtbl.remove f.Mir.blocks b) c.loop.Cfg.body;
  Mir.substitute f subst

let run ?(max_trips = 8) ?(max_copied_instrs = 256) (f : Mir.func) =
  let unrolled = ref 0 in
  let continue_ = ref true in
  (* One loop per round: the transformation invalidates the loop forest. *)
  while !continue_ do
    continue_ := false;
    let doms = Cfg.dominators f in
    let loops = Cfg.natural_loops f doms in
    (* Innermost (smallest) first. *)
    let loops = List.rev loops in
    match List.find_map (find_candidate f ~max_trips ~max_copied_instrs) loops with
    | Some candidate ->
      unroll_one f candidate;
      incr unrolled;
      continue_ := !unrolled < 8
    | None -> ()
  done;
  !unrolled
