(* A small fork-join task pool on OCaml 5 domains.

   One shared FIFO protected by a mutex; [jobs - 1] worker domains plus
   the submitting domain itself. [map] enqueues one task per element and
   then *helps*: while its own tasks are outstanding it pops and runs
   whatever is at the head of the queue — including tasks submitted by a
   nested [map] running on a worker — so nested fan-out can never
   deadlock, and a 1-job pool degenerates to plain [List.map] without
   spawning anything.

   Determinism contract: results come back as [(index, result)] pairs
   merged in index order, so a [map] returns exactly what the serial
   [List.map] would — scheduling affects wall-clock only. Exceptions are
   captured per task and the failure with the smallest index is re-raised
   (with its original backtrace) after all tasks of the map have drained,
   again matching what a serial left-to-right run would report first. *)

type job = {
  run : unit -> unit;  (* never raises: failures are captured by the map *)
  submitter : int;  (* Domain.id of the submitting domain, for steal stats *)
  remaining : int ref;  (* outstanding tasks of the owning map; under [m] *)
}

type t = {
  m : Mutex.t;
  work_available : Condition.t;  (* queue gained a job, or shutdown *)
  task_done : Condition.t;  (* some job finished (broadcast) *)
  queue : job Queue.t;
  jobs : int;
  mutable live : bool;
  mutable workers : unit Domain.t list;
  (* Utilization stats, all under [m]. [tasks.(0)] counts tasks executed
     by helping submitters; [tasks.(i)] for i >= 1 by worker i. *)
  tasks : int array;
  mutable steals : int;  (* tasks executed by a domain other than their submitter *)
  mutable joins : int;
  mutable join_wait : float;  (* wall-clock seconds spent inside joins *)
}

type stats = {
  st_jobs : int;
  st_tasks : int array;
  st_steals : int;
  st_joins : int;
  st_join_wait : float;
}

(* Which participant of a pool this domain is: workers set their 1-based
   index once at spawn; any other domain (the main domain, or a worker of
   a different pool) accounts as participant 0. Stats attribution only —
   scheduling never consults this. *)
let participant : int Support.Tls.t = Support.Tls.make (fun () -> 0)

let self_id () = (Domain.self () :> int)

let exec pool job =
  job.run ();
  let id = Support.Tls.get participant in
  let id = if id >= 0 && id < Array.length pool.tasks then id else 0 in
  Mutex.lock pool.m;
  pool.tasks.(id) <- pool.tasks.(id) + 1;
  if self_id () <> job.submitter then pool.steals <- pool.steals + 1;
  decr job.remaining;
  Condition.broadcast pool.task_done;
  Mutex.unlock pool.m

let rec worker_loop pool =
  Mutex.lock pool.m;
  let rec next () =
    if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
    else if pool.live then begin
      Condition.wait pool.work_available pool.m;
      next ()
    end
    else None
  in
  match next () with
  | None -> Mutex.unlock pool.m
  | Some job ->
    Mutex.unlock pool.m;
    exec pool job;
    worker_loop pool

let create ~jobs =
  let jobs = max 1 jobs in
  let pool =
    {
      m = Mutex.create ();
      work_available = Condition.create ();
      task_done = Condition.create ();
      queue = Queue.create ();
      jobs;
      live = true;
      workers = [];
      tasks = Array.make jobs 0;
      steals = 0;
      joins = 0;
      join_wait = 0.0;
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            Support.Tls.set participant (i + 1);
            worker_loop pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.m;
  if pool.live then begin
    pool.live <- false;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.m;
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end
  else Mutex.unlock pool.m

let stats pool =
  Mutex.lock pool.m;
  let s =
    {
      st_jobs = pool.jobs;
      st_tasks = Array.copy pool.tasks;
      st_steals = pool.steals;
      st_joins = pool.joins;
      st_join_wait = pool.join_wait;
    }
  in
  Mutex.unlock pool.m;
  s

let map pool f xs =
  match xs with
  | [] -> []
  | _ when pool.jobs <= 1 || List.compare_length_with xs 1 = 0 ->
    let r = List.map f xs in
    Mutex.lock pool.m;
    pool.tasks.(0) <- pool.tasks.(0) + List.length r;
    pool.joins <- pool.joins + 1;
    Mutex.unlock pool.m;
    r
  | xs ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n None in
    let failures = Array.make n None in
    let remaining = ref n in
    let me = self_id () in
    let t0 = Unix.gettimeofday () in
    Mutex.lock pool.m;
    pool.joins <- pool.joins + 1;
    for i = 0 to n - 1 do
      let run () =
        match f items.(i) with
        | v -> results.(i) <- Some v
        | exception e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ())
      in
      Queue.add { run; submitter = me; remaining } pool.queue;
      Condition.signal pool.work_available
    done;
    (* Help until every task of *this* map has finished. The popped job may
       belong to a different (nested) map — running it anyway is what keeps
       the queue draining when all participants are inside joins. *)
    while !remaining > 0 do
      if not (Queue.is_empty pool.queue) then begin
        let job = Queue.pop pool.queue in
        Mutex.unlock pool.m;
        exec pool job;
        Mutex.lock pool.m
      end
      else Condition.wait pool.task_done pool.m
    done;
    pool.join_wait <- pool.join_wait +. (Unix.gettimeofday () -. t0);
    Mutex.unlock pool.m;
    (* Deterministic merge: index order; first failure by index wins. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures;
    Array.to_list (Array.map (function Some v -> v | None -> assert false) results)

let mapi pool f xs = map pool (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)

(* ------------------------------------------------------------------ *)
(* The process-default pool                                            *)
(* ------------------------------------------------------------------ *)

(* Explicit --jobs values are taken as given (clamped to a sane ceiling);
   the automatic default is the hardware parallelism, capped so a big
   machine does not oversubscribe the allocator for harness-sized runs. *)
let clamp_explicit n = max 1 (min n 64)
let auto_cap = 8

let env_jobs () =
  match Sys.getenv_opt "VS_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some (clamp_explicit n)
    | _ -> None)

let auto_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> min auto_cap (Domain.recommended_domain_count ())

let default_m = Mutex.create ()
let default_override = ref None
let default_pool = ref None

let default () =
  Mutex.lock default_m;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
      let jobs = match !default_override with Some n -> n | None -> auto_jobs () in
      let p = create ~jobs in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_m;
  p

let set_default_jobs n =
  let n = clamp_explicit n in
  Mutex.lock default_m;
  default_override := Some n;
  let stale =
    match !default_pool with
    | Some p when p.jobs <> n ->
      default_pool := None;
      Some p
    | _ -> None
  in
  Mutex.unlock default_m;
  Option.iter shutdown stale

let default_jobs () = jobs (default ())

let peek_default () =
  Mutex.lock default_m;
  let p = !default_pool in
  Mutex.unlock default_m;
  p

let () =
  at_exit (fun () ->
      Mutex.lock default_m;
      let p = !default_pool in
      default_pool := None;
      Mutex.unlock default_m;
      Option.iter shutdown p)
