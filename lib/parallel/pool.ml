(* A small fork-join task pool on OCaml 5 domains.

   One shared FIFO protected by a mutex; [jobs - 1] worker domains plus
   the submitting domain itself. [map] enqueues one task per element and
   then *helps*: while its own tasks are outstanding it pops and runs
   whatever is at the head of the queue — including tasks submitted by a
   nested [map] running on a worker — so nested fan-out can never
   deadlock, and a 1-job pool degenerates to plain [List.map] without
   spawning anything.

   Determinism contract: results come back as [(index, result)] pairs
   merged in index order, so a [map] returns exactly what the serial
   [List.map] would — scheduling affects wall-clock only. Exceptions are
   captured per task and the failure with the smallest index is re-raised
   (with its original backtrace) after all tasks of the map have drained,
   again matching what a serial left-to-right run would report first. *)

type jstate = Pending | Running | Done | Cancelled

type job = {
  run : unit -> unit;  (* never raises: failures are captured by the map *)
  submitter : int;  (* Domain.id of the submitting domain, for steal stats *)
  remaining : int ref;  (* outstanding tasks of the owning map; under [m] *)
  state : jstate ref option;  (* submit-job lifecycle, under [m]; None for map tasks *)
}

type priority = High | Normal | Low

type ticket = { tj : job }

type t = {
  m : Mutex.t;
  work_available : Condition.t;  (* queue gained a job, or shutdown *)
  task_done : Condition.t;  (* some job finished (broadcast) *)
  high : job Queue.t;  (* popped before [queue]; [low] popped last *)
  queue : job Queue.t;
  low : job Queue.t;
  jobs : int;
  mutable live : bool;
  mutable workers : unit Domain.t list;
  (* Utilization stats, all under [m]. [tasks.(0)] counts tasks executed
     by helping submitters; [tasks.(i)] for i >= 1 by worker i. *)
  tasks : int array;
  mutable steals : int;  (* tasks executed by a domain other than their submitter *)
  mutable joins : int;
  mutable join_wait : float;  (* wall-clock seconds spent inside joins *)
}

type stats = {
  st_jobs : int;
  st_tasks : int array;
  st_steals : int;
  st_joins : int;
  st_join_wait : float;
}

(* Which participant of a pool this domain is: workers set their 1-based
   index once at spawn; any other domain (the main domain, or a worker of
   a different pool) accounts as participant 0. Stats attribution only —
   scheduling never consults this. *)
let participant : int Support.Tls.t = Support.Tls.make (fun () -> 0)

let self_id () = (Domain.self () :> int)

let exec pool job =
  job.run ();
  let id = Support.Tls.get participant in
  let id = if id >= 0 && id < Array.length pool.tasks then id else 0 in
  Mutex.lock pool.m;
  (match job.state with Some st -> st := Done | None -> ());
  pool.tasks.(id) <- pool.tasks.(id) + 1;
  if self_id () <> job.submitter then pool.steals <- pool.steals + 1;
  decr job.remaining;
  Condition.broadcast pool.task_done;
  Mutex.unlock pool.m

(* Pop the next runnable job in priority order, discarding cancelled ones
   lazily (cancellation just flips the state; the entry stays queued until
   a popper meets it here). Caller holds [m]. *)
let rec pop_job pool =
  let q =
    if not (Queue.is_empty pool.high) then Some pool.high
    else if not (Queue.is_empty pool.queue) then Some pool.queue
    else if not (Queue.is_empty pool.low) then Some pool.low
    else None
  in
  match q with
  | None -> None
  | Some q -> (
    let job = Queue.pop q in
    match job.state with
    | Some st when !st = Cancelled ->
      decr job.remaining;
      Condition.broadcast pool.task_done;
      pop_job pool
    | Some st ->
      st := Running;
      Some job
    | None -> Some job)

let rec worker_loop pool =
  Mutex.lock pool.m;
  let rec next () =
    match pop_job pool with
    | Some job -> Some job
    | None ->
      if pool.live then begin
        Condition.wait pool.work_available pool.m;
        next ()
      end
      else None
  in
  match next () with
  | None -> Mutex.unlock pool.m
  | Some job ->
    Mutex.unlock pool.m;
    exec pool job;
    worker_loop pool

let create ~jobs =
  let jobs = max 1 jobs in
  let pool =
    {
      m = Mutex.create ();
      work_available = Condition.create ();
      task_done = Condition.create ();
      high = Queue.create ();
      queue = Queue.create ();
      low = Queue.create ();
      jobs;
      live = true;
      workers = [];
      tasks = Array.make jobs 0;
      steals = 0;
      joins = 0;
      join_wait = 0.0;
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            Support.Tls.set participant (i + 1);
            worker_loop pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.m;
  if pool.live then begin
    pool.live <- false;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.m;
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end
  else Mutex.unlock pool.m

let stats pool =
  Mutex.lock pool.m;
  let s =
    {
      st_jobs = pool.jobs;
      st_tasks = Array.copy pool.tasks;
      st_steals = pool.steals;
      st_joins = pool.joins;
      st_join_wait = pool.join_wait;
    }
  in
  Mutex.unlock pool.m;
  s

let map pool f xs =
  match xs with
  | [] -> []
  | _ when pool.jobs <= 1 || List.compare_length_with xs 1 = 0 ->
    let r = List.map f xs in
    Mutex.lock pool.m;
    pool.tasks.(0) <- pool.tasks.(0) + List.length r;
    pool.joins <- pool.joins + 1;
    Mutex.unlock pool.m;
    r
  | xs ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n None in
    let failures = Array.make n None in
    let remaining = ref n in
    let me = self_id () in
    let t0 = Unix.gettimeofday () in
    Mutex.lock pool.m;
    pool.joins <- pool.joins + 1;
    for i = 0 to n - 1 do
      let run () =
        match f items.(i) with
        | v -> results.(i) <- Some v
        | exception e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ())
      in
      Queue.add { run; submitter = me; remaining; state = None } pool.queue;
      Condition.signal pool.work_available
    done;
    (* Help until every task of *this* map has finished. The popped job may
       belong to a different (nested) map — or be a background submit job —
       running it anyway is what keeps the queue draining when all
       participants are inside joins. *)
    while !remaining > 0 do
      match pop_job pool with
      | Some job ->
        Mutex.unlock pool.m;
        exec pool job;
        Mutex.lock pool.m
      | None -> Condition.wait pool.task_done pool.m
    done;
    pool.join_wait <- pool.join_wait +. (Unix.gettimeofday () -. t0);
    Mutex.unlock pool.m;
    (* Deterministic merge: index order; first failure by index wins. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures;
    Array.to_list (Array.map (function Some v -> v | None -> assert false) results)

let mapi pool f xs = map pool (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)

(* ------------------------------------------------------------------ *)
(* Fire-and-forget submissions                                         *)
(* ------------------------------------------------------------------ *)

(* [submit] hands one job to the pool without joining on it; the ticket
   supports polling, cancellation (honoured only while still Pending) and
   a helping [await] that drains other queued work rather than blocking.
   On a 1-job pool the job runs inline right here — same observable
   result, no queue traffic. The [run] closure must capture its own result
   and never raise; publication to the awaiting domain is synchronized by
   the pool mutex ([exec] flips the state to Done under [m] after [run]
   returns, and [await]/[poll] read it under [m]). *)
let submit pool ?(priority = Normal) run =
  let state = ref Pending in
  let job = { run; submitter = self_id (); remaining = ref 1; state = Some state } in
  if pool.jobs <= 1 then begin
    state := Running;
    run ();
    Mutex.lock pool.m;
    state := Done;
    pool.tasks.(0) <- pool.tasks.(0) + 1;
    Mutex.unlock pool.m;
    { tj = job }
  end
  else begin
    Mutex.lock pool.m;
    let q = match priority with High -> pool.high | Normal -> pool.queue | Low -> pool.low in
    Queue.add job q;
    Condition.signal pool.work_available;
    Mutex.unlock pool.m;
    { tj = job }
  end

let poll pool { tj } =
  match tj.state with
  | None -> invalid_arg "Pool.poll: not a submitted job"
  | Some st ->
    Mutex.lock pool.m;
    let s = !st in
    Mutex.unlock pool.m;
    s

let cancel pool { tj } =
  match tj.state with
  | None -> invalid_arg "Pool.cancel: not a submitted job"
  | Some st ->
    Mutex.lock pool.m;
    let ok = !st = Pending in
    if ok then st := Cancelled;
    Mutex.unlock pool.m;
    ok

let await pool { tj } =
  match tj.state with
  | None -> invalid_arg "Pool.await: not a submitted job"
  | Some st ->
    Mutex.lock pool.m;
    let rec loop () =
      match !st with
      | Done | Cancelled -> ()
      | Pending | Running -> (
        (* Help — possibly running the awaited job ourselves. *)
        match pop_job pool with
        | Some job ->
          Mutex.unlock pool.m;
          exec pool job;
          Mutex.lock pool.m;
          loop ()
        | None ->
          Condition.wait pool.task_done pool.m;
          loop ())
    in
    loop ();
    Mutex.unlock pool.m

(* ------------------------------------------------------------------ *)
(* The process-default pool                                            *)
(* ------------------------------------------------------------------ *)

(* Explicit --jobs values are taken as given (clamped to a sane ceiling);
   the automatic default is the hardware parallelism, capped so a big
   machine does not oversubscribe the allocator for harness-sized runs. *)
let clamp_explicit n = max 1 (min n 64)
let auto_cap = 8

let env_jobs () =
  match Sys.getenv_opt "VS_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some (clamp_explicit n)
    | _ -> None)

let auto_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> min auto_cap (Domain.recommended_domain_count ())

let default_m = Mutex.create ()
let default_override = ref None
let default_pool = ref None

let default () =
  Mutex.lock default_m;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
      let jobs = match !default_override with Some n -> n | None -> auto_jobs () in
      let p = create ~jobs in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_m;
  p

let set_default_jobs n =
  let n = clamp_explicit n in
  Mutex.lock default_m;
  default_override := Some n;
  let stale =
    match !default_pool with
    | Some p when p.jobs <> n ->
      default_pool := None;
      Some p
    | _ -> None
  in
  Mutex.unlock default_m;
  Option.iter shutdown stale

let default_jobs () = jobs (default ())

let peek_default () =
  Mutex.lock default_m;
  let p = !default_pool in
  Mutex.unlock default_m;
  p

let () =
  at_exit (fun () ->
      Mutex.lock default_m;
      let p = !default_pool in
      default_pool := None;
      Mutex.unlock default_m;
      Option.iter shutdown p)
