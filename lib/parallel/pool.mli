(** Fork-join task pool on OCaml 5 domains, with a deterministic merge.

    The harness, the lint sweep and the fuzzers fan their independent
    (workload, configuration) / seed cells out over one of these pools.
    The contract that makes that safe to do blindly:

    - {b Determinism.} [map pool f xs] returns exactly what
      [List.map f xs] would: results are collected as (index, result)
      pairs and merged in index order, and the first failure {e by index}
      is re-raised after the batch drains. Scheduling affects wall-clock
      time only; every table, figure and JSONL byte is identical at any
      [--jobs].
    - {b Self-contained tasks.} Ambient VM context ({!Support.Tls} slots:
      print hook, PRNG, pipeline checks, fault plans, telemetry sinks,
      diagnostic hooks) does not cross into pool tasks. A task that needs
      context installs it itself ([Runner.quiet], [Pipeline.with_checks],
      [Faults.with_plan], ...).
    - {b Nested fan-out.} A task may itself call [map] on the same pool:
      joining participants help drain the shared queue instead of
      blocking, so the pool cannot deadlock on nested submission.
    - {b Serial escape hatch.} A 1-job pool runs everything inline on the
      caller — no domains are spawned, nothing is enqueued. *)

type t

val create : jobs:int -> t
(** A pool with [jobs] participants total: the calling domain plus
    [jobs - 1] spawned worker domains ([jobs] is clamped to at least 1). *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Run [f] over every element, in parallel, preserving list order.
    Re-raises the smallest-index failure (with its backtrace) after all
    tasks have finished. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a list -> 'b list

val shutdown : t -> unit
(** Drain the queue, stop and join the workers. Idempotent. *)

(** {1 Fire-and-forget submissions}

    The background-compile queue ([lib/bgcompile]) runs on these: one job
    per compile request, submitted at {!Low} priority so harness [map]
    batches are never starved by speculative compiles. Unlike [map] there
    is no implicit join — the submitter keeps going and later polls,
    awaits or cancels through the ticket. *)

type priority = High | Normal | Low
(** Pop order: [High] before [map] tasks (which run at [Normal]) before
    [Low]. Priorities order the queues only — a running job is never
    preempted. *)

type ticket
(** Handle to one submitted job. *)

type jstate = Pending | Running | Done | Cancelled

val submit : t -> ?priority:priority -> (unit -> unit) -> ticket
(** Enqueue one job without joining on it. The closure must capture its
    own result and must not raise. On a 1-job pool the job runs inline
    before [submit] returns (the serial escape hatch, keeping 1-job runs
    free of queue traffic). Default priority: [Normal]. *)

val poll : t -> ticket -> jstate

val cancel : t -> ticket -> bool
(** Try to cancel: succeeds (returns [true]) only while the job is still
    [Pending] — it is then dropped unrun at its next pop. A [Running] or
    [Done] job is left alone ([false]). *)

val await : t -> ticket -> unit
(** Block until the job is [Done] (or was successfully cancelled),
    helping drain other queued work in the meantime — the awaited job may
    end up executed by the awaiting domain itself. Completion is
    published under the pool mutex, so results written by the job are
    safe to read after [await] returns. *)

(** {1 Utilization stats} *)

type stats = {
  st_jobs : int;
  st_tasks : int array;
      (** tasks executed per participant: index 0 = helping submitters,
          index [i >= 1] = worker [i] *)
  st_steals : int;
      (** tasks executed by a domain other than the one that submitted
          them — parallelism actually realized *)
  st_joins : int;  (** [map] batches joined *)
  st_join_wait : float;  (** total wall-clock seconds spent inside joins *)
}

val stats : t -> stats

(** {1 The process-default pool}

    Created lazily on first use. Size: [--jobs]/{!set_default_jobs} if
    given, else the [VS_JOBS] environment variable, else the hardware
    parallelism capped at 8. *)

val default : unit -> t

val set_default_jobs : int -> unit
(** Pin the default pool's size (the [--jobs] flag of the CLIs). Replaces
    an already-created default pool of a different size. *)

val default_jobs : unit -> int

val peek_default : unit -> t option
(** The default pool if one has been created, without creating one —
    for end-of-run utilization reporting. *)
