(* The cycle-accounting profiler: attributes every simulated cycle to the
   origin that caused it, and traces engine lifecycle phases as spans.

   Attribution rides the provenance the IRs already carry: every MIR
   instruction records the bytecode (fid, pc) it derives from and the pass
   that created it ([Mir.origin]); lowering threads those tags into a
   [Code.t.origins] array index-aligned with the native instructions. The
   [Recorder] installs the executors' observation hooks ([Exec.profile_hook],
   [Interp.profile_hook]) and folds each charge into a (origin, tier,
   category) cell; the engine reports its two compile-cycle charges through
   [note_compile]. None of this alters a single charge: with no recorder
   installed the hooks are [None] and the cycle stream is byte-identical to
   an unprofiled run (the [Faults] zero-cost contract). By construction the
   recorder's total equals the engine report's [total_cycles] exactly. *)

(* ------------------------------------------------------------------ *)
(* Tiers and categories                                                *)
(* ------------------------------------------------------------------ *)

(* Which execution tier a cycle was spent in. *)
type tier =
  | T_interp  (* bytecode interpretation *)
  | T_native_gen  (* generic (unspecialized) native code *)
  | T_native_spec  (* value-specialized native code *)
  | T_native_widened  (* tag-specialized (widened polyvariant) native code *)
  | T_compile  (* the JIT itself: pipeline + codegen *)

let tier_to_string = function
  | T_interp -> "interp"
  | T_native_gen -> "native-gen"
  | T_native_spec -> "native-spec"
  | T_native_widened -> "native-widened"
  | T_compile -> "compile"

(* What kind of work the cycle paid for — the guard/ALU/memory split the
   paper's argument is about (which checks does specialization remove?). *)
type category =
  | C_guard  (* type barriers, array checks, bounds checks *)
  | C_alu  (* arithmetic, compares, moves, coercions *)
  | C_mem  (* loads/stores: elements, properties, globals, cells *)
  | C_call  (* call dispatch and its overhead *)
  | C_alloc  (* arrays, objects, closures *)
  | C_control  (* jumps, branches, returns, loop heads *)
  | C_compile  (* compile-time work (tier [T_compile] only) *)

let category_to_string = function
  | C_guard -> "guard"
  | C_alu -> "alu"
  | C_mem -> "mem"
  | C_call -> "call"
  | C_alloc -> "alloc"
  | C_control -> "control"
  | C_compile -> "compile"

let category_of_op : Code.op -> category = function
  | Code.Guard_type _ | Code.Guard_array | Code.Guard_bounds -> C_guard
  | Code.Move | Code.Param _ | Code.Osr_arg _ | Code.Osr_local _ | Code.Bin _
  | Code.Cmp_op _ | Code.Un _ | Code.To_bool_op ->
    C_alu
  | Code.Load_elem_op | Code.Store_elem_op | Code.Elem_gen_op | Code.Store_elem_gen_op
  | Code.Load_prop_op _ | Code.Store_prop_op _ | Code.Arr_len | Code.Str_len
  | Code.Get_global_op _ | Code.Set_global_op _ | Code.Get_cell_op _
  | Code.Set_cell_op _ | Code.Get_upval_op _ | Code.Set_upval_op _
  | Code.Load_captured_op _ | Code.Store_captured_op _ ->
    C_mem
  | Code.Call_dyn | Code.Call_known_op _ | Code.Call_native_op _
  | Code.Method_call_op _ ->
    C_call
  | Code.New_array_op | Code.Construct_op _ | Code.New_object_op _
  | Code.Make_closure_op _ ->
    C_alloc

let category_of_ninstr : Code.ninstr -> category = function
  | Code.Op { op; _ } -> category_of_op op
  | Code.Jump _ | Code.Branch _ | Code.Ret _ -> C_control

let category_of_bytecode : Bytecode.Instr.t -> category = function
  | Bytecode.Instr.Const _ | Bytecode.Instr.Get_arg _ | Bytecode.Instr.Set_arg _
  | Bytecode.Instr.Get_local _ | Bytecode.Instr.Set_local _ | Bytecode.Instr.Pop
  | Bytecode.Instr.Dup | Bytecode.Instr.Binop _ | Bytecode.Instr.Cmp _
  | Bytecode.Instr.Unop _ ->
    C_alu
  | Bytecode.Instr.Get_cell _ | Bytecode.Instr.Set_cell _ | Bytecode.Instr.Get_upval _
  | Bytecode.Instr.Set_upval _ | Bytecode.Instr.Get_global _
  | Bytecode.Instr.Set_global _ | Bytecode.Instr.Get_elem | Bytecode.Instr.Set_elem
  | Bytecode.Instr.Keys | Bytecode.Instr.Get_prop _ | Bytecode.Instr.Set_prop _ ->
    C_mem
  | Bytecode.Instr.Jump _ | Bytecode.Instr.Jump_if_false _
  | Bytecode.Instr.Jump_if_true _ | Bytecode.Instr.Loop_head _ | Bytecode.Instr.Return
  | Bytecode.Instr.Return_undefined ->
    C_control
  | Bytecode.Instr.Call _ | Bytecode.Instr.Method_call _ -> C_call
  | Bytecode.Instr.New_array _ | Bytecode.Instr.New _ | Bytecode.Instr.New_object _
  | Bytecode.Instr.Make_closure _ ->
    C_alloc

(* ------------------------------------------------------------------ *)
(* The recorder                                                        *)
(* ------------------------------------------------------------------ *)

(* One attribution cell per distinct (function, bytecode pc, producing
   pass, tier, category). [pc = -1] marks charges with no bytecode site
   (compile-stage work). *)
type key = {
  k_fid : int;
  k_pc : int;
  k_pass : string;
  k_tier : tier;
  k_cat : category;
  k_ver : int;
      (* version-cache id of the charging binary (polyvariant policy);
         0 = unversioned, so paper-policy cells are unchanged *)
}

type cell = { mutable c_cycles : int; mutable c_count : int }

type row = { r_key : key; r_cycles : int; r_count : int }

module Recorder = struct
  type t = { program : Bytecode.Program.t; cells : (key, cell) Hashtbl.t }

  let create ~program = { program; cells = Hashtbl.create 256 }

  let note r key cycles =
    match Hashtbl.find_opt r.cells key with
    | Some c ->
      c.c_cycles <- c.c_cycles + cycles;
      c.c_count <- c.c_count + 1
    | None -> Hashtbl.replace r.cells key { c_cycles = cycles; c_count = 1 }

  (* The executor-side hook: recover provenance from the code's origin
     array, classify by opcode, bucket by the binary's tier. *)
  let exec_hook r (code : Code.t) pc cycles =
    let org = code.Code.origins.(pc) in
    let tier =
      if code.Code.widened then T_native_widened
      else if code.Code.specialized then T_native_spec
      else T_native_gen
    in
    note r
      {
        k_fid = org.Mir.o_fid;
        k_pc = org.Mir.o_pc;
        k_pass = org.Mir.o_pass;
        k_tier = tier;
        k_cat = category_of_ninstr code.Code.instrs.(pc);
        k_ver = code.Code.version;
      }
      cycles

  (* The interpreter-side hook: one charge of [Cost.interp_per_instr] per
     interpreted instruction, classified from the bytecode itself. Summing
     these reproduces [icount * interp_per_instr] exactly. *)
  let interp_hook r fid pc =
    let func = r.program.Bytecode.Program.funcs.(fid) in
    note r
      {
        k_fid = fid;
        k_pc = pc;
        k_pass = "bytecode";
        k_tier = T_interp;
        k_cat = category_of_bytecode func.Bytecode.Program.code.(pc);
        k_ver = 0;
      }
      Cost.interp_per_instr

  (* Compile-stage charges, reported by the engine right next to each of
     its two [compile_cycles] bumps ("mir" for the pipeline portion,
     "codegen" for lowering + regalloc) — including on compiles that abort
     after charging, so attribution stays exact under faults. *)
  let note_compile r ~fid ~stage cycles =
    note r
      {
        k_fid = fid;
        k_pc = -1;
        k_pass = stage;
        k_tier = T_compile;
        k_cat = C_compile;
        k_ver = 0;
      }
      cycles

  let fname r fid = r.program.Bytecode.Program.funcs.(fid).Bytecode.Program.name

  (* ---------------- queries ---------------- *)

  let total_cycles r = Hashtbl.fold (fun _ c acc -> acc + c.c_cycles) r.cells 0

  (* All cells as rows in a deterministic order (key-sorted), independent
     of hash iteration order — what the folded output and the tests use. *)
  let rows r =
    let all =
      Hashtbl.fold
        (fun k c acc -> { r_key = k; r_cycles = c.c_cycles; r_count = c.c_count } :: acc)
        r.cells []
    in
    List.sort (fun a b -> compare a.r_key b.r_key) all

  let tier_cycles r tier =
    Hashtbl.fold
      (fun k c acc -> if k.k_tier = tier then acc + c.c_cycles else acc)
      r.cells 0

  (* Per-function summary: (fid, total, per-tier, per-category) — category
     totals cover the native tiers only (the guard/ALU/memory split of
     compiled code, which is what specialization changes). *)
  type func_summary = {
    fs_fid : int;
    fs_name : string;
    fs_total : int;
    fs_interp : int;
    fs_native_gen : int;
    fs_native_spec : int;
    fs_native_widened : int;
    fs_compile : int;
    fs_guard : int;
    fs_alu : int;
    fs_mem : int;
    fs_call : int;
    fs_alloc : int;
    fs_control : int;
  }

  let by_function r =
    let tbl = Hashtbl.create 16 in
    Hashtbl.iter
      (fun k c ->
        let s =
          match Hashtbl.find_opt tbl k.k_fid with
          | Some s -> s
          | None ->
            let s =
              ref
                {
                  fs_fid = k.k_fid;
                  fs_name = fname r k.k_fid;
                  fs_total = 0;
                  fs_interp = 0;
                  fs_native_gen = 0;
                  fs_native_spec = 0;
                  fs_native_widened = 0;
                  fs_compile = 0;
                  fs_guard = 0;
                  fs_alu = 0;
                  fs_mem = 0;
                  fs_call = 0;
                  fs_alloc = 0;
                  fs_control = 0;
                }
            in
            Hashtbl.replace tbl k.k_fid s;
            s
        in
        let v = !s in
        let v = { v with fs_total = v.fs_total + c.c_cycles } in
        let v =
          match k.k_tier with
          | T_interp -> { v with fs_interp = v.fs_interp + c.c_cycles }
          | T_native_gen -> { v with fs_native_gen = v.fs_native_gen + c.c_cycles }
          | T_native_spec -> { v with fs_native_spec = v.fs_native_spec + c.c_cycles }
          | T_native_widened ->
            { v with fs_native_widened = v.fs_native_widened + c.c_cycles }
          | T_compile -> { v with fs_compile = v.fs_compile + c.c_cycles }
        in
        let native =
          match k.k_tier with
          | T_native_gen | T_native_spec | T_native_widened -> true
          | T_interp | T_compile -> false
        in
        let v =
          if not native then v
          else
            match k.k_cat with
            | C_guard -> { v with fs_guard = v.fs_guard + c.c_cycles }
            | C_alu -> { v with fs_alu = v.fs_alu + c.c_cycles }
            | C_mem -> { v with fs_mem = v.fs_mem + c.c_cycles }
            | C_call -> { v with fs_call = v.fs_call + c.c_cycles }
            | C_alloc -> { v with fs_alloc = v.fs_alloc + c.c_cycles }
            | C_control -> { v with fs_control = v.fs_control + c.c_cycles }
            | C_compile -> v
        in
        s := v)
      r.cells;
    let all = Hashtbl.fold (fun _ s acc -> !s :: acc) tbl [] in
    List.sort
      (fun a b ->
        match compare b.fs_total a.fs_total with
        | 0 -> compare a.fs_fid b.fs_fid
        | c -> c)
      all

  (* Native-tier cycles per category across all functions — the attribution
     figure's input. *)
  let native_category_cycles r =
    List.map
      (fun cat ->
        let n =
          Hashtbl.fold
            (fun k c acc ->
              let native =
                match k.k_tier with
                | T_native_gen | T_native_spec | T_native_widened -> true
                | T_interp | T_compile -> false
              in
              if native && k.k_cat = cat then acc + c.c_cycles else acc)
            r.cells 0
        in
        (cat, n))
      [ C_guard; C_alu; C_mem; C_call; C_alloc; C_control ]

  (* ---------------- renderings ---------------- *)

  (* Folded-stack flamegraph text: one "frame1;frame2;... value" line per
     aggregate, deterministic order. Collapse with any flamegraph tool. *)
  let folded r =
    let tbl = Hashtbl.create 64 in
    Hashtbl.iter
      (fun k c ->
        (* The version suffix appears only on versioned cells (polyvariant
           policy), so paper-policy folded output is byte-identical. *)
        let tier_frame =
          if k.k_ver > 0 then Printf.sprintf "%s#v%d" (tier_to_string k.k_tier) k.k_ver
          else tier_to_string k.k_tier
        in
        let stack =
          Printf.sprintf "%s;%s;%s;%s" (fname r k.k_fid) tier_frame k.k_pass
            (category_to_string k.k_cat)
        in
        let prev = Option.value (Hashtbl.find_opt tbl stack) ~default:0 in
        Hashtbl.replace tbl stack (prev + c.c_cycles))
      r.cells;
    let lines = Hashtbl.fold (fun s n acc -> (s, n) :: acc) tbl [] in
    let lines = List.sort compare lines in
    String.concat "" (List.map (fun (s, n) -> Printf.sprintf "%s %d\n" s n) lines)

  (* The --profile top-N table. *)
  let table ?(top = 10) r =
    let buf = Buffer.create 1024 in
    let summaries = by_function r in
    let total = total_cycles r in
    Buffer.add_string buf
      (Printf.sprintf "cycle attribution (total %d model cycles)\n" total);
    Buffer.add_string buf
      (Printf.sprintf "%-20s %12s %10s %11s %12s %9s | %5s %5s %5s\n" "function" "total"
         "interp" "native-gen" "native-spec" "compile" "grd%" "alu%" "mem%");
    let shown = ref 0 in
    List.iter
      (fun s ->
        if !shown < top then begin
          incr shown;
          let native = s.fs_native_gen + s.fs_native_spec + s.fs_native_widened in
          let pct n = if native = 0 then 0. else 100. *. float_of_int n /. float_of_int native in
          Buffer.add_string buf
            (Printf.sprintf "%-20s %12d %10d %11d %12d %9d | %5.1f %5.1f %5.1f\n"
               s.fs_name s.fs_total s.fs_interp s.fs_native_gen
               (s.fs_native_spec + s.fs_native_widened)
               s.fs_compile (pct s.fs_guard) (pct s.fs_alu) (pct s.fs_mem))
        end)
      summaries;
    let rest = List.length summaries - !shown in
    if rest > 0 then Buffer.add_string buf (Printf.sprintf "(+%d more functions)\n" rest);
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Installation                                                        *)
(* ------------------------------------------------------------------ *)

(* The active recorder, domain-local like every observation hook: a
   recorder installed by a driver must never leak into engine runs fanned
   out to pool workers. *)
let recorder_slot : Recorder.t option Support.Tls.t = Support.Tls.make (fun () -> None)

let current_recorder () = Support.Tls.get recorder_slot

(* Engine-side entry point for compile-stage charges: a no-op (no
   allocation, one TLS read) when no recorder is installed. *)
let note_compile ~fid ~stage cycles =
  match Support.Tls.get recorder_slot with
  | Some r -> Recorder.note_compile r ~fid ~stage cycles
  | None -> ()

(* Run [f] with [r] recording: installs the recorder and both executor
   hooks, restoring all three afterwards (exception-safe). *)
let with_recorder (r : Recorder.t) f =
  Support.Tls.with_value recorder_slot (Some r) (fun () ->
      Exec.with_profile_hook
        (Some (Recorder.exec_hook r))
        (fun () -> Interp.with_profile_hook (Some (Recorder.interp_hook r)) f))

(* ------------------------------------------------------------------ *)
(* The span tracer                                                     *)
(* ------------------------------------------------------------------ *)

(* Begin/end span bookkeeping over the model-cycle clock. The engine opens
   a span when it enters a lifecycle phase and closes it when the phase
   ends; closing emits a completed [Telemetry.span] (a Chrome-trace "X"
   event). [complete] emits a retroactive span without touching the stack
   (e.g. the bailout penalty, which is only known after it was charged). *)
module Tracer = struct
  type open_span = {
    os_name : string;
    os_cat : string;
    os_fid : int;
    os_fname : string;
    os_start : int;
    os_trace : int;  (* request trace context captured when opened *)
    os_lane : int;
    os_pid : int;
  }

  type t = {
    emit : Telemetry.span -> unit;
    mutable stack : open_span list;
    mutable emitted : int;
  }

  let create ~emit = { emit; stack = []; emitted = 0 }

  let depth t = List.length t.stack

  (* The request identity every span is stamped with: the trace id is the
     Perfetto lane (tid) and the isolate the process group (pid), so one
     request's interpret/compile/OSR/deadline spans land in a single lane
     no matter which engine emitted them. Standalone runs have no context
     and keep the 0 -> 1 rendering (byte-identical to pre-flow traces). *)
  let ctx () =
    match Telemetry.current_trace () with
    | Some c -> (c.Telemetry.tc_trace, c.Telemetry.tc_trace, c.Telemetry.tc_isolate + 1)
    | None -> (0, 0, 0)

  let begin_span t ~name ~cat ~fid ~fname ~now =
    let trace, lane, pid = ctx () in
    t.stack <-
      {
        os_name = name;
        os_cat = cat;
        os_fid = fid;
        os_fname = fname;
        os_start = now;
        os_trace = trace;
        os_lane = lane;
        os_pid = pid;
      }
      :: t.stack

  (* Ends the innermost open span. Unbalanced ends are a bug in the
     instrumentation, not in the workload: fail loudly. *)
  let end_span ?(args = []) t ~now =
    match t.stack with
    | [] -> invalid_arg "Profile.Tracer.end_span: no open span"
    | os :: rest ->
      t.stack <- rest;
      t.emitted <- t.emitted + 1;
      t.emit
        {
          Telemetry.sp_name = os.os_name;
          sp_cat = os.os_cat;
          sp_fid = os.os_fid;
          sp_fname = os.os_fname;
          sp_start = os.os_start;
          sp_dur = now - os.os_start;
          sp_depth = List.length rest;
          sp_args = args;
          sp_ph = Telemetry.Ph_complete;
          sp_flow = 0;
          sp_trace = os.os_trace;
          sp_lane = os.os_lane;
          sp_pid = os.os_pid;
        }

  let complete ?(args = []) t ~name ~cat ~fid ~fname ~start ~dur =
    let trace, lane, pid = ctx () in
    t.emitted <- t.emitted + 1;
    t.emit
      {
        Telemetry.sp_name = name;
        sp_cat = cat;
        sp_fid = fid;
        sp_fname = fname;
        sp_start = start;
        sp_dur = dur;
        sp_depth = List.length t.stack;
        sp_args = args;
        sp_ph = Telemetry.Ph_complete;
        sp_flow = 0;
        sp_trace = trace;
        sp_lane = lane;
        sp_pid = pid;
      }

  (* One flow stitch: a Ph_flow_start on the requesting lane at enqueue, a
     Ph_flow_finish (same id) wherever the artifact lands. [trace] lets the
     finish side re-assert the *requesting* context (the harvest runs under
     some other request's lane). *)
  let flow ?(args = []) ?trace t ~phase ~id ~name ~cat ~fid ~fname ~now =
    let current, lane, pid =
      match trace with
      | Some c -> (c.Telemetry.tc_trace, c.Telemetry.tc_trace, c.Telemetry.tc_isolate + 1)
      | None -> ctx ()
    in
    t.emitted <- t.emitted + 1;
    t.emit
      {
        Telemetry.sp_name = name;
        sp_cat = cat;
        sp_fid = fid;
        sp_fname = fname;
        sp_start = now;
        sp_dur = 0;
        sp_depth = List.length t.stack;
        sp_args = args;
        sp_ph = (match phase with `Start -> Telemetry.Ph_flow_start | `Finish -> Telemetry.Ph_flow_finish);
        sp_flow = id;
        sp_trace = current;
        sp_lane = lane;
        sp_pid = pid;
      }

  let emitted t = t.emitted
end
