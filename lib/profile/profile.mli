(** Cycle-accounting profiler and lifecycle span tracer.

    Attribution rides the origin tags the IRs carry ({!Mir.origin} threaded
    into {!Code.t.origins} by lowering): the {!Recorder} installs the
    executors' observation hooks and charges every model cycle to the
    (function, bytecode pc, producing pass) that caused it, split by
    execution {!tier} and work {!category}. The {!Tracer} turns engine
    lifecycle phases into {!Telemetry.span}s on the model-cycle clock.

    Everything here is observation-only: no charge is altered, and with no
    recorder installed every hook is [None], so a profiled-off run is
    byte-identical to an unprofiled one. By construction the recorder's
    {!Recorder.total_cycles} equals the engine report's [total_cycles]
    exactly. *)

(** Execution tier a cycle was spent in. *)
type tier =
  | T_interp  (** bytecode interpretation *)
  | T_native_gen  (** generic (unspecialized) native code *)
  | T_native_spec  (** value-specialized native code *)
  | T_native_widened
      (** tag-specialized native code: a widened polyvariant version *)
  | T_compile  (** the JIT itself: pipeline + codegen *)

val tier_to_string : tier -> string

(** Kind of work a cycle paid for — the guard/ALU/memory split the paper's
    attribution argument is about. *)
type category =
  | C_guard  (** type barriers, array checks, bounds checks *)
  | C_alu  (** arithmetic, compares, moves, coercions *)
  | C_mem  (** loads/stores: elements, properties, globals, cells *)
  | C_call  (** call dispatch and its overhead *)
  | C_alloc  (** arrays, objects, closures *)
  | C_control  (** jumps, branches, returns, loop heads *)
  | C_compile  (** compile-time work ({!T_compile} only) *)

val category_to_string : category -> string
val category_of_op : Code.op -> category
val category_of_ninstr : Code.ninstr -> category
val category_of_bytecode : Bytecode.Instr.t -> category

type key = {
  k_fid : int;
  k_pc : int;  (** bytecode pc; [-1] for charges with no bytecode site *)
  k_pass : string;  (** producing stage: ["build"], a pass name, ["bytecode"]… *)
  k_tier : tier;
  k_cat : category;
  k_ver : int;
      (** version-cache id of the charging binary under the polyvariant
          policy; [0] = unversioned (paper policy, interpreter, compile) *)
}
(** One attribution cell's identity. *)

type row = { r_key : key; r_cycles : int; r_count : int }

(** The cycle-attribution accumulator. One per profiled run; install with
    {!with_recorder}. *)
module Recorder : sig
  type t

  val create : program:Bytecode.Program.t -> t

  val exec_hook : t -> Code.t -> int -> int -> unit
  (** The {!Exec.set_profile_hook} payload: classifies a native charge via
      [code.origins.(pc)] and the opcode. *)

  val interp_hook : t -> int -> int -> unit
  (** The {!Interp.set_profile_hook} payload: one
      [Cost.interp_per_instr] charge per interpreted instruction. *)

  val note_compile : t -> fid:int -> stage:string -> int -> unit
  (** Record a compile-stage charge ([stage] is ["mir"] or ["codegen"]),
      reported by the engine adjacent to each [compile_cycles] bump —
      including aborted compiles, so attribution stays exact under
      faults. *)

  val total_cycles : t -> int
  (** Sum over all cells — equals the engine report's [total_cycles] when
      the recorder covered the whole run. *)

  val rows : t -> row list
  (** Every cell, key-sorted (deterministic). *)

  val tier_cycles : t -> tier -> int

  type func_summary = {
    fs_fid : int;
    fs_name : string;
    fs_total : int;
    fs_interp : int;
    fs_native_gen : int;
    fs_native_spec : int;
    fs_native_widened : int;
    fs_compile : int;
    fs_guard : int;  (** category fields cover the native tiers only *)
    fs_alu : int;
    fs_mem : int;
    fs_call : int;
    fs_alloc : int;
    fs_control : int;
  }

  val by_function : t -> func_summary list
  (** Per-function rollup, descending total (ties by fid). *)

  val native_category_cycles : t -> (category * int) list
  (** Native-tier cycles per category across all functions — the
      attribution figure's input. *)

  val folded : t -> string
  (** Folded-stack flamegraph text: ["fname;tier;pass;category cycles"]
      lines, sorted (deterministic across job counts). *)

  val table : ?top:int -> t -> string
  (** The [--profile] report: top-N functions by total cycles with
      per-tier columns and the native guard/alu/mem percentage split. *)
end

val current_recorder : unit -> Recorder.t option
(** This domain's installed recorder, if any. *)

val note_compile : fid:int -> stage:string -> int -> unit
(** Engine-side entry point for compile-stage charges: forwards to the
    installed recorder, no-op (one TLS read) when none. *)

val with_recorder : Recorder.t -> (unit -> 'a) -> 'a
(** Run [f] with [r] recording: installs the recorder plus both executor
    hooks, restoring all three afterwards (exception-safe). *)

(** Begin/end span bookkeeping over the model-cycle clock. The engine opens
    a span entering a lifecycle phase and closes it when the phase ends;
    closing emits a completed {!Telemetry.span}. Ends must balance begins —
    {!Tracer.end_span} on an empty stack raises, which is exactly the
    well-formedness property the tests lean on. *)
module Tracer : sig
  type t

  val create : emit:(Telemetry.span -> unit) -> t
  val depth : t -> int
  (** Currently open spans. *)

  val begin_span :
    t -> name:string -> cat:string -> fid:int -> fname:string -> now:int -> unit

  val end_span : ?args:(string * string) list -> t -> now:int -> unit
  (** Close the innermost open span, emitting it with
      [dur = now - start]. @raise Invalid_argument when no span is open. *)

  val complete :
    ?args:(string * string) list ->
    t ->
    name:string ->
    cat:string ->
    fid:int ->
    fname:string ->
    start:int ->
    dur:int ->
    unit
  (** Emit a retroactive span without touching the stack (e.g. the bailout
      penalty, known only after it was charged); its depth is the current
      stack depth. *)

  val flow :
    ?args:(string * string) list ->
    ?trace:Telemetry.trace_ctx ->
    t ->
    phase:[ `Start | `Finish ] ->
    id:int ->
    name:string ->
    cat:string ->
    fid:int ->
    fname:string ->
    now:int ->
    unit
  (** Emit one side of a Perfetto flow stitch ([ph:"s"]/[ph:"f"] sharing
      [id]). Spans and flows stamp the current {!Telemetry.trace_ctx}
      automatically; [trace] overrides it on the finish side so a
      background compile's install is attributed back to the request that
      enqueued it, whichever request harvests it. *)

  val emitted : t -> int
  (** Spans emitted so far. *)
end
