exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* Domain-local ambient state: pool tasks running engine instances on
   worker domains each get their own print sink and Math.random stream, so
   parallel harness cells cannot interleave output or perturb each other's
   random sequences. Tasks are self-contained — a fresh domain starts from
   the same defaults a fresh process would. *)
let print_hook = Support.Tls.make (fun () -> print_endline)

let set_print_hook h = Support.Tls.set print_hook h
let print_line s = (Support.Tls.get print_hook) s
let with_print_hook h f = Support.Tls.with_value print_hook h f

(* Deterministic xorshift for Math.random: reproducible benchmark runs. *)
let random_state = Support.Tls.make (fun () -> 0x2545F4914F6CDD1D)

let reset_random seed = Support.Tls.set random_state (if seed = 0 then 1 else seed)

let next_random () =
  let x = Support.Tls.get random_state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  Support.Tls.set random_state x;
  float_of_int (x land 0x3FFFFFFFFFFFFF) /. float_of_int 0x40000000000000

let arg args i = if i < Array.length args then args.(i) else Value.Undefined
let num args i = Convert.to_number (arg args i)
let int_arg args i = Convert.to_int32 (arg args i)
let str_arg args i = Convert.to_string (arg args i)

let math_unary f args = Value.norm_num (f (num args 0))

let call name args =
  match name with
  | "print" ->
    let parts = Array.to_list (Array.map Convert.to_string args) in
    print_line (String.concat " " parts);
    Value.Undefined
  | "__keys" -> (
    (* Enumerable property names (for-in support): objects in insertion
       order, arrays as index strings, primitives enumerate nothing. *)
    match args with
    | [| Value.Obj o |] ->
      Value.Arr (Value.arr_of_list (List.map (fun k -> Value.Str k) (Value.obj_keys o)))
    | [| Value.Arr a |] ->
      Value.Arr
        (Value.arr_of_list (List.init a.Value.length (fun i -> Value.Str (string_of_int i))))
    | _ -> Value.Arr (Value.arr_of_list []))
  | "Math.floor" -> math_unary Float.floor args
  | "Math.ceil" -> math_unary Float.ceil args
  | "Math.sqrt" -> math_unary Float.sqrt args
  | "Math.abs" -> math_unary Float.abs args
  | "Math.sin" -> math_unary sin args
  | "Math.cos" -> math_unary cos args
  | "Math.tan" -> math_unary tan args
  | "Math.atan" -> math_unary atan args
  | "Math.log" -> math_unary log args
  | "Math.exp" -> math_unary exp args
  | "Math.round" -> math_unary (fun x -> Float.floor (x +. 0.5)) args
  | "Math.atan2" -> Value.norm_num (Float.atan2 (num args 0) (num args 1))
  | "Math.pow" -> Value.norm_num (Float.pow (num args 0) (num args 1))
  | "Math.min" ->
    if Array.length args = 0 then Value.Double Float.infinity
    else Value.norm_num (Array.fold_left (fun acc v -> Float.min acc (Convert.to_number v)) Float.infinity args)
  | "Math.max" ->
    if Array.length args = 0 then Value.Double Float.neg_infinity
    else Value.norm_num (Array.fold_left (fun acc v -> Float.max acc (Convert.to_number v)) Float.neg_infinity args)
  | "Math.random" -> Value.Double (next_random ())
  | "String.fromCharCode" ->
    let buf = Buffer.create (Array.length args) in
    Array.iter (fun v -> Buffer.add_char buf (Char.chr (Convert.to_uint32 v land 0xFF))) args;
    Value.Str (Buffer.contents buf)
  | "parseInt" -> (
    let s = String.trim (str_arg args 0) in
    let radix = if Array.length args > 1 then int_arg args 1 else 10 in
    let parse s = try Some (int_of_string s) with Failure _ -> None in
    let attempt =
      if radix = 16 then parse ("0x" ^ s)
      else if radix = 10 || radix = 0 then (
        (* Longest numeric prefix, as JS does. *)
        let n = String.length s in
        let stop = ref 0 in
        let i0 = if n > 0 && (s.[0] = '-' || s.[0] = '+') then 1 else 0 in
        let j = ref i0 in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        stop := !j;
        if !stop = i0 then None else parse (String.sub s 0 !stop))
      else None
    in
    match attempt with
    | Some n -> Value.of_int n
    | None -> Value.Double Float.nan)
  | "parseFloat" -> (
    match float_of_string_opt (String.trim (str_arg args 0)) with
    | Some f -> Value.norm_num f
    | None -> Value.Double Float.nan)
  | "isNaN" -> Value.Bool (Float.is_nan (num args 0))
  | other -> error "unknown native function %s" other

let is_pure = function
  | "print" | "Math.random" | "__keys" -> false
  | _ -> true

let known_natives =
  [
    "print"; "Math.floor"; "Math.ceil"; "Math.sqrt"; "Math.abs"; "Math.sin";
    "Math.cos"; "Math.tan"; "Math.atan"; "Math.atan2"; "Math.log"; "Math.exp";
    "Math.round"; "Math.pow"; "Math.min"; "Math.max"; "Math.random";
    "String.fromCharCode"; "parseInt"; "parseFloat"; "isNaN";
  ]

let exists name = List.mem name known_natives

let string_method s name args =
  let len = String.length s in
  let clamp i = max 0 (min len i) in
  match name with
  | "charAt" ->
    let i = int_arg args 0 in
    Some (Value.Str (if i >= 0 && i < len then String.make 1 s.[i] else ""))
  | "charCodeAt" ->
    let i = int_arg args 0 in
    if i >= 0 && i < len then Some (Value.Int (Char.code s.[i]))
    else Some (Value.Double Float.nan)
  | "indexOf" -> (
    let needle = str_arg args 0 in
    let nlen = String.length needle in
    let rec find i =
      if i + nlen > len then -1
      else if String.sub s i nlen = needle then i
      else find (i + 1)
    in
    Some (Value.Int (find 0)))
  | "lastIndexOf" -> (
    let needle = str_arg args 0 in
    let nlen = String.length needle in
    let rec find i =
      if i < 0 then -1 else if String.sub s i nlen = needle then i else find (i - 1)
    in
    Some (Value.Int (if nlen > len then -1 else find (len - nlen))))
  | "substring" ->
    let a = clamp (int_arg args 0) in
    let b = if Array.length args > 1 then clamp (int_arg args 1) else len in
    let lo = min a b and hi = max a b in
    Some (Value.Str (String.sub s lo (hi - lo)))
  | "slice" ->
    let resolve i = if i < 0 then clamp (len + i) else clamp i in
    let a = resolve (int_arg args 0) in
    let b = if Array.length args > 1 then resolve (int_arg args 1) else len in
    Some (Value.Str (if b > a then String.sub s a (b - a) else ""))
  | "toUpperCase" -> Some (Value.Str (String.uppercase_ascii s))
  | "toLowerCase" -> Some (Value.Str (String.lowercase_ascii s))
  | "split" ->
    let sep = str_arg args 0 in
    let parts =
      if sep = "" then List.init len (fun i -> String.make 1 s.[i])
      else begin
        let slen = String.length sep in
        let rec go start acc =
          let rec find i =
            if i + slen > len then None
            else if String.sub s i slen = sep then Some i
            else find (i + 1)
          in
          match find start with
          | None -> List.rev (String.sub s start (len - start) :: acc)
          | Some i -> go (i + slen) (String.sub s start (i - start) :: acc)
        in
        go 0 []
      end
    in
    Some (Value.Arr (Value.arr_of_list (List.map (fun p -> Value.Str p) parts)))
  | "concat" ->
    let tail = Array.to_list (Array.map Convert.to_string args) in
    Some (Value.Str (String.concat "" (s :: tail)))
  | "replace" ->
    (* First occurrence only; string patterns only (no regexes in MiniJS). *)
    let pat = str_arg args 0 and repl = str_arg args 1 in
    let plen = String.length pat in
    let rec find i =
      if plen = 0 || i + plen > len then None
      else if String.sub s i plen = pat then Some i
      else find (i + 1)
    in
    (match find 0 with
    | None -> Some (Value.Str s)
    | Some i ->
      Some (Value.Str (String.sub s 0 i ^ repl ^ String.sub s (i + plen) (len - i - plen))))
  | _ -> None

let array_method (a : Value.arr) name args =
  match name with
  | "push" ->
    Array.iter (fun v -> Value.arr_set a a.Value.length v) args;
    Some (Value.Int a.Value.length)
  | "pop" ->
    if a.Value.length = 0 then Some Value.Undefined
    else begin
      let v = Value.arr_get a (a.Value.length - 1) in
      a.Value.length <- a.Value.length - 1;
      Some v
    end
  | "shift" ->
    if a.Value.length = 0 then Some Value.Undefined
    else begin
      let v = Value.arr_get a 0 in
      for i = 0 to a.Value.length - 2 do
        a.Value.elems.(i) <- a.Value.elems.(i + 1)
      done;
      a.Value.length <- a.Value.length - 1;
      Some v
    end
  | "join" ->
    let sep = if Array.length args > 0 then str_arg args 0 else "," in
    let parts = List.init a.Value.length (fun i -> Convert.to_string (Value.arr_get a i)) in
    Some (Value.Str (String.concat sep parts))
  | "indexOf" ->
    let needle = arg args 0 in
    let rec find i =
      if i >= a.Value.length then -1
      else if Ops.strict_eq (Value.arr_get a i) needle then i
      else find (i + 1)
    in
    Some (Value.Int (find 0))
  | "slice" ->
    let len = a.Value.length in
    let resolve i = if i < 0 then max 0 (len + i) else min len i in
    let lo = if Array.length args > 0 then resolve (int_arg args 0) else 0 in
    let hi = if Array.length args > 1 then resolve (int_arg args 1) else len in
    let n = max 0 (hi - lo) in
    Some (Value.Arr (Value.arr_of_list (List.init n (fun i -> Value.arr_get a (lo + i)))))
  | "concat" ->
    let items = List.init a.Value.length (fun i -> Value.arr_get a i) in
    let extra =
      Array.to_list args
      |> List.concat_map (fun v ->
             match v with
             | Value.Arr b -> List.init b.Value.length (fun i -> Value.arr_get b i)
             | other -> [ other ])
    in
    Some (Value.Arr (Value.arr_of_list (items @ extra)))
  | "reverse" ->
    let n = a.Value.length in
    for i = 0 to (n / 2) - 1 do
      let tmp = a.Value.elems.(i) in
      a.Value.elems.(i) <- a.Value.elems.(n - 1 - i);
      a.Value.elems.(n - 1 - i) <- tmp
    done;
    Some (Value.Arr a)
  | "sort" ->
    (* Default JS sort: by string image. User comparators are outside the
       subset; benchmarks carry their own sort routines. *)
    let items = Array.init a.Value.length (fun i -> Value.arr_get a i) in
    Array.sort (fun x y -> String.compare (Convert.to_string x) (Convert.to_string y)) items;
    Array.iteri (fun i v -> a.Value.elems.(i) <- v) items;
    Some (Value.Arr a)
  | _ -> None

(* Higher-order array methods dispatch back into the engine through
   [call]; elements are passed (element, index) like JavaScript does. *)
let array_hof ~call (a : Value.arr) name args =
  let f = arg args 0 in
  let invoke v i = call f [| v; Value.Int i |] in
  let items () = List.init a.Value.length (fun i -> (Value.arr_get a i, i)) in
  match name with
  | "map" ->
    Some (Value.Arr (Value.arr_of_list (List.map (fun (v, i) -> invoke v i) (items ()))))
  | "forEach" ->
    List.iter (fun (v, i) -> ignore (invoke v i)) (items ());
    Some Value.Undefined
  | "filter" ->
    Some
      (Value.Arr
         (Value.arr_of_list
            (List.filter_map
               (fun (v, i) -> if Convert.to_boolean (invoke v i) then Some v else None)
               (items ()))))
  | "some" ->
    Some (Value.Bool (List.exists (fun (v, i) -> Convert.to_boolean (invoke v i)) (items ())))
  | "every" ->
    Some (Value.Bool (List.for_all (fun (v, i) -> Convert.to_boolean (invoke v i)) (items ())))
  | "sort" ->
    (* sort with a user comparator; stable, like the modern spec. *)
    let cmp x y =
      let r = Convert.to_number (call f [| x; y |]) in
      if r < 0.0 then -1 else if r > 0.0 then 1 else 0
    in
    let sorted = List.stable_sort cmp (List.map fst (items ())) in
    List.iteri (fun i v -> a.Value.elems.(i) <- v) sorted;
    Some (Value.Arr a)
  | "reduce" ->
    let with_init = Array.length args > 1 in
    if a.Value.length = 0 && not with_init then
      error "reduce of empty array with no initial value"
    else begin
      let start = if with_init then 0 else 1 in
      let acc = ref (if with_init then args.(1) else Value.arr_get a 0) in
      for i = start to a.Value.length - 1 do
        acc := call f [| !acc; Value.arr_get a i; Value.Int i |]
      done;
      Some !acc
    end
  | _ -> None

let is_array_hof = function
  | "map" | "forEach" | "filter" | "some" | "every" | "reduce" -> true
  | _ -> false

let method_call ?call recv name args =
  match recv with
  | Value.Str s -> string_method s name args
  | Value.Arr a -> (
    (* [sort] is higher-order exactly when handed a comparator. *)
    if is_array_hof name || (name = "sort" && Array.length args > 0) then
      match call with
      | Some call -> array_hof ~call a name args
      | None -> error "array method %s needs a callback-capable caller" name
    else array_method a name args)
  | _ -> None

let get_prop recv name =
  match (recv, name) with
  | Value.Str s, "length" -> Some (Value.Int (String.length s))
  | Value.Arr a, "length" -> Some (Value.Int a.Value.length)
  | _ -> None

let globals () =
  let math =
    Value.obj_with_props
      ([ ("PI", Value.Double Float.pi); ("E", Value.Double (exp 1.0)) ]
      @ List.map
          (fun m -> (m, Value.Native_fun ("Math." ^ m)))
          [
            "floor"; "ceil"; "sqrt"; "abs"; "sin"; "cos"; "tan"; "atan"; "atan2";
            "log"; "exp"; "round"; "pow"; "min"; "max"; "random";
          ])
  in
  let string_obj =
    Value.obj_with_props [ ("fromCharCode", Value.Native_fun "String.fromCharCode") ]
  in
  [
    ("print", Value.Native_fun "print");
    ("Math", Value.Obj math);
    ("String", Value.Obj string_obj);
    ("parseInt", Value.Native_fun "parseInt");
    ("parseFloat", Value.Native_fun "parseFloat");
    ("isNaN", Value.Native_fun "isNaN");
    ("NaN", Value.Double Float.nan);
    ("Infinity", Value.Double Float.infinity);
  ]
