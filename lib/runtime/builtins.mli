(** Native (host-implemented) functions, methods and properties.

    Natives are identified by dotted names (["Math.floor"],
    ["String.fromCharCode"], ["print"]). Pure natives are eligible for
    constant folding in the JIT when all their arguments are compile-time
    constants. *)

exception Runtime_error of string

val set_print_hook : (string -> unit) -> unit
(** Where [print] writes on the current domain; defaults to
    [print_endline]. Domain-local, so pool tasks redirecting their own
    output never race. *)

val with_print_hook : (string -> unit) -> (unit -> 'a) -> 'a
(** Run with this domain's print sink temporarily replaced, restoring it
    afterwards (also on exception). *)

val reset_random : int -> unit
(** Reseed [Math.random]'s deterministic generator (domain-local: each
    pool task reseeds its own stream). *)

val call : string -> Value.t array -> Value.t
(** Invoke a native function by name.
    @raise Runtime_error for unknown natives. *)

val is_pure : string -> bool
(** Whether folding a call to this native at compile time is sound. *)

val exists : string -> bool

val method_call :
  ?call:(Value.t -> Value.t array -> Value.t) ->
  Value.t ->
  string ->
  Value.t array ->
  Value.t option
(** Builtin methods carried by primitive receivers (string and array
    methods). [None] means "not a builtin method": the caller should fall
    back to an own-property lookup on the receiver. [call] invokes user
    callbacks for the higher-order array methods ([map], [filter],
    [forEach], [reduce], [some], [every]); without it those methods report
    a runtime error when handed a closure. *)

val get_prop : Value.t -> string -> Value.t option
(** Builtin properties: [length] of strings and arrays. *)

val globals : unit -> (string * Value.t) list
(** The initial global environment: [print], the [Math] object, the
    [String] object with [fromCharCode], and numeric globals ([NaN],
    [Infinity]). A fresh structure per call. *)
